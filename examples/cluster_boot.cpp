// Elastic scale-out scenario: a web service asks for N more VMs at once.
// Compares the three deployment strategies the paper evaluates on a
// simulated DAS-4 cluster and prints what a user would see.
//
//   $ ./cluster_boot [num_vms] [1gbe|ib]     (default: 32 1gbe)

#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/scenario.hpp"

using namespace vmic;
using namespace vmic::cluster;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 32;
  const bool ib = argc > 2 && std::strcmp(argv[2], "ib") == 0;

  ClusterParams cp;
  cp.compute_nodes = n;
  cp.network = ib ? net::infiniband_qdr() : net::gigabit_ethernet();

  std::printf("Scaling out: %d CentOS VMs, one shared VMI, %s network\n\n",
              n, cp.network.name.c_str());

  ScenarioConfig sc;
  sc.profile = boot::centos63();
  sc.num_vms = n;
  sc.num_vmis = 1;
  sc.cache_quota = 250 * MiB;
  sc.cache_cluster_bits = 9;

  struct Row {
    const char* label;
    CacheMode mode;
    CacheState state;
  };
  const Row rows[] = {
      {"plain QCOW2 over NFS (state of the art)", CacheMode::none,
       CacheState::cold},
      {"VMI caches, first boot (cold, in memory)", CacheMode::compute_disk,
       CacheState::cold},
      {"VMI caches, warm on node disks", CacheMode::compute_disk,
       CacheState::warm},
      {"VMI caches, warm in storage memory", CacheMode::storage_mem,
       CacheState::warm},
  };

  double baseline = 0;
  for (const Row& row : rows) {
    ScenarioConfig cfg = sc;
    cfg.mode = row.mode;
    cfg.state = row.state;
    const auto r = run_scenario(cp, cfg);
    if (baseline == 0) baseline = r.mean_boot;
    std::printf("%-42s mean %6.1f s  (min %5.1f, max %5.1f)  "
                "storage traffic %7.1f MB  speedup %.2fx\n",
                row.label, r.mean_boot, r.min_boot, r.max_boot,
                static_cast<double>(r.storage_payload_bytes) / 1048576.0,
                baseline / r.mean_boot);
  }

  std::printf("\nThe paper's headline: with warm caches, starting %d VMs "
              "costs about the same as starting one.\n", n);
  return 0;
}
