// Boot working-set analysis: what the paper's Table 1 measurement looks
// like from the inside. Generates the boot trace for each OS profile and
// prints the working set, request-size histogram, and how a given cache
// quota would cover the boot.
//
//   $ ./boot_workingset

#include <cstdio>

#include "boot/profile.hpp"
#include "boot/trace.hpp"
#include "util/interval_set.hpp"
#include "util/units.hpp"

using namespace vmic;
using namespace vmic::boot;

int main() {
  for (const auto& p : {centos63(), debian607(), windows2012()}) {
    const auto t = generate_boot_trace(p);

    std::printf("=== %s ===\n", p.name.c_str());
    std::printf("virtual disk          %s\n",
                format_bytes(p.image_size).c_str());
    std::printf("unique read bytes     %s  (Table 1)\n",
                format_bytes(t.unique_read_bytes).c_str());
    std::printf("total read bytes      %s  (incl. re-reads)\n",
                format_bytes(t.total_read_bytes).c_str());
    std::printf("guest writes          %s\n",
                format_bytes(t.total_write_bytes).c_str());
    std::printf("boot CPU time         %.1f s\n", t.cpu_seconds);

    // Request-size histogram.
    std::size_t buckets[6] = {};
    const char* labels[6] = {"<=2K", "4K", "8K", "16K", "32K", ">=64K"};
    std::size_t reads = 0;
    for (const auto& op : t.ops) {
      if (op.kind != BootOp::Kind::read) continue;
      ++reads;
      if (op.length <= 2048) ++buckets[0];
      else if (op.length <= 4096) ++buckets[1];
      else if (op.length <= 8192) ++buckets[2];
      else if (op.length <= 16384) ++buckets[3];
      else if (op.length <= 32768) ++buckets[4];
      else ++buckets[5];
    }
    std::printf("read requests         %zu\n", reads);
    std::printf("request sizes        ");
    for (int i = 0; i < 6; ++i) {
      std::printf(" %s:%4.1f%%", labels[i],
                  100.0 * static_cast<double>(buckets[i]) /
                      static_cast<double>(reads));
    }
    std::printf("\n");

    // Quota coverage: how much of the boot a cache of size Q can serve
    // once warm (prefix of the unique working set, CoR fills in order).
    std::printf("quota coverage       ");
    for (const std::uint64_t q : {25 * MiB, 50 * MiB, 100 * MiB, 200 * MiB}) {
      IntervalSet seen;
      std::uint64_t covered = 0, total = 0;
      for (const auto& op : t.ops) {
        if (op.kind != BootOp::Kind::read) continue;
        total += op.length;
        if (seen.total() + op.length <= q ||
            seen.covers(op.offset, op.offset + op.length)) {
          covered += op.length;
        }
        if (seen.total() + op.length <= q) {
          seen.insert(op.offset, op.offset + op.length);
        }
      }
      std::printf(" %s:%3.0f%%", format_bytes(q).c_str(),
                  100.0 * static_cast<double>(covered) /
                      static_cast<double>(total));
    }
    std::printf("\n\n");
  }
  return 0;
}
