// Quickstart: the paper's image chain on real files, end to end.
//
// Builds base <- cache <- CoW in a temporary directory, shows copy-on-read
// warming the cache, quota enforcement (ENOSPC semantics), immutability of
// the cache under guest writes, and the close()-time size persistence.
//
//   $ ./quickstart [workdir]     (default: ./quickstart-images)

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "io/fs_directory.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace vmic;
using sim::sync_wait;

namespace {

sim::Task<Result<void>> run(io::FsImageDirectory& dir) {
  // 1. A "base VMI": raw, 256 MiB, with recognisable content.
  std::printf("1. creating base image (raw, 256 MiB)\n");
  {
    VMIC_CO_TRY(base, dir.create_file("base.img"));
    std::vector<std::uint8_t> block(1 * MiB);
    Rng rng{42};
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
    VMIC_CO_TRY_VOID(co_await base->pwrite(0, block));  // "boot blocks"
    VMIC_CO_TRY_VOID(co_await base->truncate(256 * MiB));
  }

  // 2. The paper's chaining workflow (§4.4): cache image (quota'd,
  //    512-byte clusters), then a CoW overlay for the VM.
  std::printf("2. chaining: base <- cache(8 MiB quota) <- vm.cow\n");
  VMIC_CO_TRY_VOID(co_await qcow2::create_cache_image(
      dir, "centos.cache", "base.img", 8 * MiB,
      {.cluster_bits = 9, .virtual_size = 0}));
  VMIC_CO_TRY_VOID(co_await qcow2::create_cow_image(dir, "vm.cow",
                                                    "centos.cache"));

  // 3. "Boot": read through the chain; copy-on-read warms the cache.
  VMIC_CO_TRY(dev, co_await qcow2::open_image(dir, "vm.cow"));
  auto* cache = dynamic_cast<qcow2::Qcow2Device*>(dev->backing());
  std::printf("3. reading 1 MiB through the chain (cold cache)\n");
  std::vector<std::uint8_t> buf(1 * MiB);
  VMIC_CO_TRY_VOID(co_await dev->read(0, buf));
  std::printf("   cache now holds %s of data (CoR), file %s\n",
              format_bytes(cache->allocated_data_bytes()).c_str(),
              format_bytes(cache->file_bytes()).c_str());

  // 4. Re-read: served from the cache, base untouched.
  const auto before = cache->stats().backing_reads;
  VMIC_CO_TRY_VOID(co_await dev->read(0, buf));
  std::printf("4. re-read of the same range: %s\n",
              cache->stats().backing_reads == before
                  ? "served from the warm cache (no base access)"
                  : "UNEXPECTED base access");

  // 5. Quota: read far more than the 8 MiB quota allows.
  std::printf("5. reading past the quota (24 MiB more)\n");
  for (std::uint64_t off = 8 * MiB; off < 32 * MiB; off += buf.size()) {
    VMIC_CO_TRY_VOID(co_await dev->read(off, buf));
  }
  std::printf("   cache file: %s (quota %s) — population %s\n",
              format_bytes(cache->file_bytes()).c_str(),
              format_bytes(cache->cache_quota()).c_str(),
              cache->cor_active() ? "still active" : "stopped (ENOSPC)");

  // 6. Guest writes land in the CoW image only.
  std::printf("6. guest write of 64 KiB\n");
  std::vector<std::uint8_t> data(64 * KiB, 0xAB);
  VMIC_CO_TRY_VOID(co_await dev->write(100 * KiB, data));
  std::vector<std::uint8_t> out(64 * KiB);
  VMIC_CO_TRY_VOID(co_await dev->read(100 * KiB, out));
  std::printf("   read-back %s; cache is %s to guest writes\n",
              std::memcmp(data.data(), out.data(), data.size()) == 0
                  ? "matches"
                  : "MISMATCH",
              (co_await cache->write(0, data)).error() == Errc::read_only
                  ? "immutable"
                  : "NOT immutable?!");

  // 7. Close persists the cache's current size into its header extension.
  VMIC_CO_TRY_VOID(co_await dev->close());
  std::printf("7. closed; inspect with: vmi-img info <dir>/centos.cache\n");
  co_return ok_result();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = argc > 1 ? argv[1] : "quickstart-images";
  ::mkdir(workdir.c_str(), 0755);
  io::FsImageDirectory dir{workdir};
  auto r = sync_wait(run(dir));
  if (!r.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n",
                 std::string(to_string(r.error())).c_str());
    return 1;
  }
  std::printf("\nOK — images left in %s/\n", workdir.c_str());
  return 0;
}
