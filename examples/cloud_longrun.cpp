// A day in the life of a small cloud, driven by vmic::cloud: Poisson VM
// arrivals over several simulated hours, a Zipf-skewed VMI popularity
// mix, cache-aware scheduling (§3.4), Algorithm 1 placement (§6), LRU
// eviction under a tight per-node cache budget, plus a node crash and a
// storage outage to show the control plane riding through failures.
//
//   $ ./cloud_longrun [hours]      (default: 2)

#include <cstdio>
#include <cstdlib>

#include "cloud/engine.hpp"

using namespace vmic;
using namespace vmic::cloud;

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 2.0;

  CloudConfig cfg;
  cfg.seed = 2026;
  cfg.horizon_s = hours * 3600.0;
  Rng plan_rng(cfg.seed);
  cfg.failures = plan_failures(/*node_crashes=*/1, /*storage_outages=*/1,
                               cfg.cluster.compute_nodes, cfg.horizon_s,
                               plan_rng);

  const CloudResult r = run_cloud(cfg);

  std::printf("Simulated %.1f h on %d nodes, %d VMIs (zipf popularity), "
              "LRU cache pools of %s per node\n",
              hours, cfg.cluster.compute_nodes, cfg.workload.num_vmis,
              format_bytes(cfg.cluster.node_cache_capacity).c_str());
  std::printf("VMs: %d arrived, %d deployed, %d aborted, %d rejected "
              "(%d retries)\n",
              r.arrivals, r.completed, r.aborted, r.rejected, r.retries);
  std::printf("faults: %d node crash(es) -> %d attempt(s) killed, "
              "%d running VM(s) lost\n",
              r.node_crashes, r.crash_kills, r.vm_crashes);
  std::printf("warm-cache deployments: %d (%.0f%% hit ratio)\n",
              r.warm_hits, 100.0 * r.cache_hit_ratio);
  std::printf("deployment latency: p50 %.1f s, p95 %.1f s, p99 %.1f s\n",
              r.deploy.p50, r.deploy.p95, r.deploy.p99);
  std::printf("cache evictions:   %llu across all node pools\n",
              static_cast<unsigned long long>(r.cache_evictions));
  std::printf("storage served:    %.1f GB over the whole run\n",
              static_cast<double>(r.storage_payload_bytes) / 1e9);
  return r.leaked_slots == 0 ? 0 : 1;
}
