// A day in the life of a small cloud: Poisson VM arrivals over several
// simulated hours, a skewed VMI popularity mix, cache-aware scheduling
// (§3.4), Algorithm 1 placement (§6), and LRU eviction under a tight
// per-node cache budget — the paper's "future work" scheduler pieces
// running together.
//
//   $ ./cloud_longrun [hours]      (default: 2)

#include <cstdio>
#include <string>
#include <vector>

#include "boot/trace.hpp"
#include "boot/vm.hpp"
#include "cluster/placement.hpp"
#include "cluster/scheduler.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

constexpr int kNodes = 8;
constexpr int kVmis = 6;
constexpr int kVmCapacity = 4;

struct World {
  World()
      : params(make_params()), cl(params) {
    prof = boot::centos63();
    prof.image_size = 2 * GiB;
    prof.unique_read_bytes = 24 * MiB;  // scaled-down working set
    prof.cpu_seconds = 6.0;
    prof.write_bytes = 2 * MiB;
    for (int v = 0; v < kVmis; ++v) {
      const std::string img = "img-" + std::to_string(v);
      (void)cl.storage.disk_dir.create_file(img);
      (*cl.storage.disk_dir.buffer(img))->resize(prof.image_size);
      traces.push_back(boot::generate_boot_trace(prof, v));
    }
    sched.resize(kNodes);
    for (int i = 0; i < kNodes; ++i) {
      sched[i].id = i;
      sched[i].vm_capacity = kVmCapacity;
    }
  }

  static ClusterParams make_params() {
    ClusterParams p;
    p.compute_nodes = kNodes;
    p.network = net::gigabit_ethernet();
    // Tight cache budget: ~3 caches per node -> real eviction pressure.
    p.node_cache_capacity = 128 * MiB;
    p.eviction = cache::EvictionPolicy::lru;
    return p;
  }

  ClusterParams params;
  Cluster cl;
  boot::OsProfile prof;
  std::vector<boot::BootTrace> traces;
  std::vector<NodeState> sched;

  // stats
  int launched = 0;
  int warm_hits = 0;
  int rejected = 0;
  Samples warm_boots, cold_boots;
};

/// Zipf-ish VMI pick.
int pick_vmi(Rng& rng) {
  double total = 0;
  for (int k = 0; k < kVmis; ++k) total += 1.0 / (k + 1);
  double u = rng.uniform() * total;
  for (int k = 0; k < kVmis; ++k) {
    u -= 1.0 / (k + 1);
    if (u <= 0) return k;
  }
  return kVmis - 1;
}

sim::Task<void> vm_lifecycle(World& w, int id, int vmi,
                             sim::SimTime lifetime) {
  const std::string img = "img-" + std::to_string(vmi);
  const int ni = pick_node(w.sched, SchedPolicy::striping, img,
                           /*cache_aware=*/true);
  if (ni < 0) {
    ++w.rejected;  // cloud full; a real scheduler would queue
    co_return;
  }
  NodeState& ns = w.sched[static_cast<std::size_t>(ni)];
  ComputeNode& node = *w.cl.nodes[static_cast<std::size_t>(ni)];
  ns.running_vms++;

  auto placed = co_await chain_to_proper_cache(w.cl, node, img, 48 * MiB, 9,
                                               w.prof.image_size);
  if (!placed.ok()) {
    ns.running_vms--;
    co_return;
  }
  const bool warm =
      placed->action == PlacementOutcome::Action::local_warm_hit;
  if (warm) ++w.warm_hits;

  const std::string cow = "disk/vm-" + std::to_string(id) + ".cow";
  const sim::SimTime t0 = w.cl.env.now();
  auto r = co_await qcow2::create_cow_image(
      node.fs, cow, placed->backing,
      {.cluster_bits = 16, .virtual_size = w.prof.image_size});
  if (r.ok()) {
    auto dev = co_await qcow2::open_image(node.fs, cow);
    if (dev.ok()) {
      (void)co_await boot::boot_vm(w.cl.env, **dev,
                                   w.traces[static_cast<std::size_t>(vmi)]);
      (void)co_await (*dev)->close();
      const double boot = sim::to_seconds(w.cl.env.now() - t0);
      (warm ? w.warm_boots : w.cold_boots).add(boot);
      ++w.launched;
    }
  }

  // "Run" the service, then shut down.
  co_await w.cl.env.delay(lifetime);
  node.disk_dir.remove("vm-" + std::to_string(id) + ".cow");
  if (placed->copy_back_on_shutdown &&
      node.disk_dir.exists(cache_file_for(img))) {
    (void)co_await copy_cache_back(w.cl, node, img);
  }
  // Scheduler bookkeeping: this node now (still) has a warm cache for img
  // unless eviction removed it meanwhile.
  if (node.disk_dir.exists(cache_file_for(img))) {
    ns.warm_vmis.insert(img);
  } else {
    ns.warm_vmis.erase(img);
  }
  ns.running_vms--;
}

sim::Task<void> arrival_process(World& w, sim::SimTime horizon,
                                Rng& rng) {
  int id = 0;
  while (w.cl.env.now() < horizon) {
    co_await w.cl.env.delay(
        sim::from_seconds(rng.exponential(45.0)));  // ~80 VMs/hour
    const int vmi = pick_vmi(rng);
    const auto lifetime = sim::from_seconds(60.0 + rng.exponential(240.0));
    w.cl.env.spawn(vm_lifecycle(w, id++, vmi, lifetime));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 2.0;
  World w;
  Rng rng{2026};
  w.cl.env.spawn(arrival_process(w, sim::from_seconds(hours * 3600), rng));
  w.cl.env.run();

  std::printf("Simulated %.1f h on %d nodes, %d VMIs (zipf popularity), "
              "LRU cache pools of %s per node\n",
              hours, kNodes, kVmis,
              format_bytes(w.params.node_cache_capacity).c_str());
  std::printf("VMs launched:      %d (+%d rejected at full capacity)\n",
              w.launched, w.rejected);
  std::printf("warm-cache boots:  %d (%.0f%%), mean %.1f s\n", w.warm_hits,
              100.0 * w.warm_hits / std::max(1, w.launched),
              w.warm_boots.count() ? w.warm_boots.mean() : 0.0);
  std::printf("cold boots:        %d, mean %.1f s\n",
              w.launched - w.warm_hits,
              w.cold_boots.count() ? w.cold_boots.mean() : 0.0);
  std::uint64_t evictions = 0;
  for (const auto& n : w.cl.nodes) evictions += n->pool.evictions();
  std::printf("cache evictions:   %llu across all node pools\n",
              static_cast<unsigned long long>(evictions));
  std::printf("storage served:    %.1f GB over the whole run\n",
              static_cast<double>(
                  w.cl.storage.nfs.stats().total_payload()) / 1e9);
  return 0;
}
