// Cache-aware scheduling + Algorithm 1 placement working together: a
// stream of VM requests for a handful of VMIs arrives at a small cloud;
// the scheduler prefers warm nodes, and each placement runs the paper's
// Algorithm 1 to decide what to chain the VM's CoW image to.
//
//   $ ./cache_placement

#include <cstdio>
#include <string>
#include <vector>

#include "boot/trace.hpp"
#include "boot/vm.hpp"
#include "cluster/placement.hpp"
#include "cluster/scheduler.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

const char* action_str(PlacementOutcome::Action a) {
  switch (a) {
    case PlacementOutcome::Action::local_warm_hit: return "local warm hit";
    case PlacementOutcome::Action::chained_to_storage:
      return "chained to storage-mem cache";
    case PlacementOutcome::Action::created_fresh:
      return "fresh cache (copy back on shutdown)";
  }
  return "?";
}

}  // namespace

int main() {
  ClusterParams cp;
  cp.compute_nodes = 4;
  cp.network = net::gigabit_ethernet();
  Cluster cl(cp);

  // Two registered VMIs on the storage node.
  boot::OsProfile prof = boot::centos63();
  prof.unique_read_bytes = 16 * MiB;  // scaled down to keep this snappy
  prof.cpu_seconds = 4.0;
  for (const char* img : {"centos", "debian"}) {
    (void)cl.storage.disk_dir.create_file(img);
    (*cl.storage.disk_dir.buffer(img))->resize(prof.image_size);
  }

  std::vector<NodeState> sched(static_cast<std::size_t>(cp.compute_nodes));
  for (int i = 0; i < cp.compute_nodes; ++i) {
    sched[static_cast<std::size_t>(i)].id = i;
    sched[static_cast<std::size_t>(i)].vm_capacity = 100;
  }

  // A request stream: mostly centos, some debian.
  const char* reqs[] = {"centos", "centos", "debian", "centos",
                        "centos", "debian", "centos", "centos"};

  int vm_no = 0;
  for (const char* vmi : reqs) {
    // 1. Cache-aware scheduling (§3.4): prefer nodes with a warm cache.
    const int ni = pick_node(sched, SchedPolicy::striping, vmi,
                             /*cache_aware=*/true);
    NodeState& ns = sched[static_cast<std::size_t>(ni)];
    ComputeNode& node = *cl.nodes[static_cast<std::size_t>(ni)];

    // 2. Algorithm 1 (§6): chain to the proper cache.
    auto out = sim::run_sync(
        cl.env, chain_to_proper_cache(cl, node, vmi, 64 * MiB, 9,
                                      prof.image_size));
    if (!out.ok()) return 1;

    // 3. Boot the VM from a CoW overlay on the chosen backing.
    const std::string cow = "disk/vm" + std::to_string(vm_no) + ".cow";
    boot::OsProfile p = prof;
    p.seed ^= static_cast<std::uint64_t>(vmi[0]);  // per-VMI layout
    const auto trace = boot::generate_boot_trace(p);
    auto boot_secs = sim::run_sync(cl.env, [&]() -> sim::Task<double> {
      const sim::SimTime t0 = cl.env.now();
      auto r1 = co_await qcow2::create_cow_image(
          node.fs, cow, out->backing,
          {.cluster_bits = 16, .virtual_size = p.image_size});
      if (!r1.ok()) co_return -1;
      auto dev = co_await qcow2::open_image(node.fs, cow);
      if (!dev.ok()) co_return -1;
      (void)co_await boot::boot_vm(cl.env, **dev, trace);
      (void)co_await (*dev)->close();
      co_return sim::to_seconds(cl.env.now() - t0);
    }());

    // 4. Shutdown bookkeeping: copy a fresh cache back to the storage
    //    node so other nodes can chain to it (Fig 13).
    if (out->copy_back_on_shutdown) {
      (void)sim::run_sync(cl.env, copy_cache_back(cl, node, vmi));
    }
    ns.running_vms++;
    ns.warm_vmis.insert(vmi);

    std::printf("vm%-2d %-7s -> node %d  %-36s boot %5.1f s\n", vm_no, vmi,
                ni, action_str(out->action), boot_secs);
    ++vm_no;
  }

  std::printf("\nNode cache pools:\n");
  for (const auto& node : cl.nodes) {
    std::printf("  node %d: %zu cache image(s), %s used\n", node->id,
                node->pool.size(), format_bytes(node->pool.used_bytes()).c_str());
  }
  std::printf("Storage memory pool: %zu cache image(s), %s used\n",
              cl.storage.mem_pool.size(),
              format_bytes(cl.storage.mem_pool.used_bytes()).c_str());
  return 0;
}
