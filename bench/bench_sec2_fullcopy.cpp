// §2's framing experiment: "The simplest way of deploying a VMI on a
// compute node is to copy the VMI onto the compute node before booting
// the VM from it. As VMIs typically comprise one or more GB of data, this
// approach obviously is slow..." — compared against on-demand (CoW) and
// warm VMI caches. Related work (§7.1.1) reports startup delays "in
// order of tens of minutes" for full-image distribution on commodity
// networks.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

int main() {
  bench::header(
      "§2 — Full pre-copy vs on-demand (CoW) vs warm VMI cache (1 GbE)",
      "Razavi & Kielmann, SC'13, §2 + §7.1.1",
      "full copy of a 10 GiB image takes minutes and scales terribly; "
      "on-demand cuts it to ~boot time; warm caches pin it there");

  bench::row_header(
      {"# nodes", "full-copy(s)", "on-demand(s)", "warm-cache(s)"});
  for (int n : {1, 4, 8}) {
    ScenarioConfig sc;
    sc.profile = boot::centos63();
    sc.num_vms = n;
    sc.num_vmis = 1;
    sc.cache_quota = 250 * MiB;
    sc.cache_cluster_bits = 9;

    sc.mode = CacheMode::full_copy;
    const auto full =
        run_scenario(bench::das4(net::gigabit_ethernet(), n), sc);

    sc.mode = CacheMode::none;
    const auto ondemand =
        run_scenario(bench::das4(net::gigabit_ethernet(), n), sc);

    sc.mode = CacheMode::compute_disk;
    sc.state = CacheState::warm;
    const auto warm =
        run_scenario(bench::das4(net::gigabit_ethernet(), n), sc);

    std::printf("%16d%16.1f%16.1f%16.1f\n", n, full.mean_boot,
                ondemand.mean_boot, warm.mean_boot);
    std::fflush(stdout);
  }
  return 0;
}
