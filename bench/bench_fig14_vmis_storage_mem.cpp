// Figure 14: caching many VMIs in the *storage node's memory* (caches are
// created at a compute node and transferred back, Fig 13), 64 nodes,
// scaling the number of VMIs, over both networks.
//
// 1 GbE: warm caches fix the storage-disk bottleneck but not the network
// one — flat, at the network-bound level. 32 Gb IB: warm caches are flat
// at the single-VM boot time. Cold runs track QCOW2, slightly higher at
// 64 VMIs because the creator VMs pay the cache push-back transfer.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

void run_network(const net::NetworkParams& netp) {
  std::printf("\n--- Network = %s ---\n", netp.name.c_str());
  vmic::bench::row_header({"# VMIs", "warm(s)", "cold(s)", "qcow2(s)"});
  for (int v : vmic::bench::paper_axis()) {
    ScenarioConfig sc;
    sc.profile = boot::centos63();
    sc.num_vms = 64;
    sc.num_vmis = v;
    sc.cache_quota = 250 * MiB;
    sc.cache_cluster_bits = 9;
    sc.storage_cache_prewarmed = false;
    sc.include_transfer_in_boot = true;

    sc.mode = CacheMode::storage_mem;
    sc.state = CacheState::warm;
    const auto warm = run_scenario(vmic::bench::das4(netp), sc);

    sc.state = CacheState::cold;
    const auto cold = run_scenario(vmic::bench::das4(netp), sc);

    sc.mode = CacheMode::none;
    const auto plain = run_scenario(vmic::bench::das4(netp), sc);

    std::printf("%16d%16.1f%16.1f%16.1f\n", v, warm.mean_boot,
                cold.mean_boot, plain.mean_boot);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  vmic::bench::header(
      "Fig 14 — Caching many VMIs in the storage node's memory (64 nodes)",
      "Razavi & Kielmann, SC'13, Figure 14 (two sub-plots)",
      "warm flat on both networks (1GbE at the network-bound level, IB at "
      "the single-VM level); cold ~= QCOW2 + transfer time");
  run_network(net::gigabit_ethernet());
  run_network(net::infiniband_qdr());
  return 0;
}
