// Figure 12: caching many VMIs at the compute nodes' disks, 64 nodes,
// scaling the number of VMIs, over both networks. Warm caches remove both
// the network and the storage-disk bottleneck (flat curve); cold caches
// track plain QCOW2.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

void run_network(const net::NetworkParams& netp) {
  std::printf("\n--- Network = %s ---\n", netp.name.c_str());
  vmic::bench::row_header({"# VMIs", "warm(s)", "cold(s)", "qcow2(s)"});
  for (int v : vmic::bench::paper_axis()) {
    ScenarioConfig sc;
    sc.profile = boot::centos63();
    sc.num_vms = 64;
    sc.num_vmis = v;
    sc.cache_quota = 250 * MiB;
    sc.cache_cluster_bits = 9;
    sc.storage_cache_prewarmed = false;  // fresh image copies

    sc.mode = CacheMode::compute_disk;
    sc.state = CacheState::warm;
    const auto warm = run_scenario(vmic::bench::das4(netp), sc);

    sc.state = CacheState::cold;
    const auto cold = run_scenario(vmic::bench::das4(netp), sc);

    sc.mode = CacheMode::none;
    const auto plain = run_scenario(vmic::bench::das4(netp), sc);

    std::printf("%16d%16.1f%16.1f%16.1f\n", v, warm.mean_boot,
                cold.mean_boot, plain.mean_boot);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  vmic::bench::header(
      "Fig 12 — Caching many VMIs at the compute nodes' disk (64 nodes)",
      "Razavi & Kielmann, SC'13, Figure 12 (two sub-plots)",
      "warm flat & low on both networks; cold ~= QCOW2, rising with #VMIs "
      "(storage-disk bottleneck)");
  run_network(net::gigabit_ethernet());
  run_network(net::infiniband_qdr());
  return 0;
}
