// bench_repair_scaling — the journal's core claim, measured: crash-repair
// I/O for a journaled image is O(journal), flat in the image size, while
// the full refcount rebuild walks L1/L2 and every refcount block and so
// grows linearly. For each image size the same crashed state is repaired
// twice — once by journal replay, once forced onto the rebuild path by
// corrupting the journal header — and the backend I/O of repair() alone
// is counted.
//
// Exits non-zero when the scaling claim does not hold (CI gate):
//   * replay I/O spread (max/min bytes) must stay under kReplayFlatRatio;
//   * rebuild I/O must grow by at least kRebuildGrowth across the 8x
//     size sweep.
//
//   bench_repair_scaling [--json-out FILE]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "io/mem_backend.hpp"
#include "qcow2/device.hpp"
#include "qcow2/format.hpp"
#include "sim/task.hpp"
#include "util/sparse_buffer.hpp"
#include "util/units.hpp"

namespace {

using namespace vmic;
using sim::sync_wait;

constexpr double kReplayFlatRatio = 3.0;
constexpr double kRebuildGrowth = 2.0;

/// BlockBackend wrapper that counts the I/O passing through it.
class CountingBackend final : public io::BlockBackend {
 public:
  explicit CountingBackend(io::BlockBackend& inner) : inner_(inner) {}

  sim::Task<Result<void>> pread(std::uint64_t off,
                                std::span<std::uint8_t> dst) override {
    ++reads_;
    read_bytes_ += dst.size();
    co_return co_await inner_.pread(off, dst);
  }
  sim::Task<Result<void>> pwrite(
      std::uint64_t off, std::span<const std::uint8_t> src) override {
    ++writes_;
    write_bytes_ += src.size();
    co_return co_await inner_.pwrite(off, src);
  }
  sim::Task<Result<void>> flush() override {
    ++flushes_;
    co_return co_await inner_.flush();
  }
  sim::Task<Result<void>> truncate(std::uint64_t n) override {
    co_return co_await inner_.truncate(n);
  }
  [[nodiscard]] std::uint64_t size() const override { return inner_.size(); }
  [[nodiscard]] bool read_only() const noexcept override {
    return inner_.read_only();
  }
  [[nodiscard]] std::string describe() const override {
    return "counting:" + inner_.describe();
  }

  void reset() { reads_ = writes_ = flushes_ = read_bytes_ = write_bytes_ = 0; }
  [[nodiscard]] std::uint64_t ops() const { return reads_ + writes_; }
  [[nodiscard]] std::uint64_t bytes() const {
    return read_bytes_ + write_bytes_;
  }

 private:
  io::BlockBackend& inner_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t read_bytes_ = 0;
  std::uint64_t write_bytes_ = 0;
};

struct RepairCost {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  bool replayed = false;
};

/// Build a crashed journaled image of `image_size`: bulk-allocate half the
/// clusters (the part that scales), then a burst of recent writes whose
/// journal records are the only thing replay should have to pay for, and
/// drop the device without close() — dirty bit set, journal live.
SparseBuffer make_crashed_image(std::uint64_t image_size) {
  SparseBuffer disk;
  constexpr std::uint32_t kClusterBits = 12;
  const std::uint64_t cs = 1ull << kClusterBits;
  {
    io::MemBackend be(&disk);
    qcow2::Qcow2Device::CreateOptions copt;
    copt.virtual_size = image_size;
    copt.cluster_bits = kClusterBits;
    copt.journal_sectors = 256;
    if (!sync_wait(qcow2::Qcow2Device::create(be, copt)).ok()) std::abort();
  }
  block::OpenOptions opt;
  opt.writable = true;
  auto dev = sync_wait(qcow2::open_any(
      io::BackendPtr{std::make_unique<io::MemBackend>(&disk)}, opt));
  if (!dev.ok()) std::abort();
  std::vector<std::uint8_t> buf(cs, 0xAB);
  const std::uint64_t clusters = image_size / cs;
  for (std::uint64_t c = 0; c < clusters; c += 2) {
    buf[0] = static_cast<std::uint8_t>(c);
    if (!sync_wait((*dev)->write(c * cs, buf)).ok()) std::abort();
    if (c % 512 == 0 && !sync_wait((*dev)->flush()).ok()) std::abort();
  }
  if (!sync_wait((*dev)->flush()).ok()) std::abort();
  // Recent dirt: a fixed-size burst regardless of image size.
  for (std::uint64_t i = 0; i < 32; ++i) {
    if (!sync_wait((*dev)->write((1 + 2 * i) * cs, buf)).ok()) std::abort();
  }
  // No close(): the dirty bit and the journal tail stay on disk, exactly
  // the state a power loss leaves behind.
  return disk;
}

RepairCost measure_repair(SparseBuffer disk, bool corrupt_journal_header) {
  if (corrupt_journal_header) {
    std::vector<std::uint8_t> hdr(4096);
    disk.read(0, hdr);
    auto parsed = qcow2::parse_header_area(hdr);
    if (!parsed.ok() || !parsed->journal.has_value()) std::abort();
    disk.write(parsed->journal->offset, std::vector<std::uint8_t>(512, 0xEE));
  }
  io::MemBackend mem(&disk);
  auto counting = std::make_unique<CountingBackend>(mem);
  CountingBackend* cb = counting.get();
  block::OpenOptions opt;
  opt.writable = true;
  opt.auto_repair_dirty = false;
  auto dev = sync_wait(qcow2::open_any(
      io::BackendPtr{std::move(counting)}, opt));
  if (!dev.ok()) std::abort();
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  if (q == nullptr || !q->dirty()) std::abort();
  cb->reset();
  auto rep = sync_wait(q->repair());
  if (!rep.ok()) std::abort();
  RepairCost cost{cb->ops(), cb->bytes(), rep->journal_replayed};
  auto chk = sync_wait(q->check());
  if (!chk.ok() || !chk->clean()) std::abort();
  (void)sync_wait(q->close());
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_repair_scaling [--json-out FILE]\n");
      return 2;
    }
  }

  const std::vector<std::uint64_t> sizes = {16 * MiB, 32 * MiB, 64 * MiB,
                                            128 * MiB};
  std::vector<RepairCost> replay;
  std::vector<RepairCost> rebuild;
  std::printf("%10s %14s %14s %16s %16s\n", "image", "replay-ops",
              "replay-bytes", "rebuild-ops", "rebuild-bytes");
  for (const std::uint64_t size : sizes) {
    const SparseBuffer crashed = make_crashed_image(size);
    RepairCost a = measure_repair(crashed.clone(), false);
    RepairCost b = measure_repair(crashed.clone(), true);
    if (!a.replayed || b.replayed) {
      std::fprintf(stderr, "wrong repair path taken (replay=%d/%d)\n",
                   a.replayed ? 1 : 0, b.replayed ? 1 : 0);
      return 1;
    }
    std::printf("%9lluM %14llu %14llu %16llu %16llu\n",
                static_cast<unsigned long long>(size / MiB),
                static_cast<unsigned long long>(a.ops),
                static_cast<unsigned long long>(a.bytes),
                static_cast<unsigned long long>(b.ops),
                static_cast<unsigned long long>(b.bytes));
    replay.push_back(a);
    rebuild.push_back(b);
  }

  std::uint64_t rmin = ~std::uint64_t{0};
  std::uint64_t rmax = 0;
  for (const RepairCost& c : replay) {
    rmin = std::min(rmin, c.bytes);
    rmax = std::max(rmax, c.bytes);
  }
  const double spread =
      static_cast<double>(rmax) / static_cast<double>(rmin ? rmin : 1);
  const double growth = static_cast<double>(rebuild.back().bytes) /
                        static_cast<double>(rebuild.front().bytes
                                                ? rebuild.front().bytes
                                                : 1);
  std::printf("replay spread (max/min bytes): %.2fx (gate < %.1fx)\n", spread,
              kReplayFlatRatio);
  std::printf("rebuild growth over 8x sizes:  %.2fx (gate >= %.1fx)\n", growth,
              kRebuildGrowth);

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"sizes_mib\": [");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::fprintf(f, "%s%llu", i != 0 ? ", " : "",
                   static_cast<unsigned long long>(sizes[i] / MiB));
    }
    std::fprintf(f, "],\n  \"replay_bytes\": [");
    for (std::size_t i = 0; i < replay.size(); ++i) {
      std::fprintf(f, "%s%llu", i != 0 ? ", " : "",
                   static_cast<unsigned long long>(replay[i].bytes));
    }
    std::fprintf(f, "],\n  \"rebuild_bytes\": [");
    for (std::size_t i = 0; i < rebuild.size(); ++i) {
      std::fprintf(f, "%s%llu", i != 0 ? ", " : "",
                   static_cast<unsigned long long>(rebuild[i].bytes));
    }
    std::fprintf(f, "],\n  \"replay_spread\": %.3f,\n  \"rebuild_growth\":"
                 " %.3f\n}\n", spread, growth);
    std::fclose(f);
  }

  if (spread >= kReplayFlatRatio) {
    std::fprintf(stderr,
                 "GATE FAILED: journal replay I/O is not flat in image size\n");
    return 1;
  }
  if (growth < kRebuildGrowth) {
    std::fprintf(stderr,
                 "GATE FAILED: full rebuild I/O did not grow with image size "
                 "(benchmark no longer separates the paths)\n");
    return 1;
  }
  return 0;
}
