// Restart warmth ablation: what a durable cache manifest is worth when
// the whole cloud power-cycles mid-run (rolling upgrade model).
//
//   ./bench_restart_warmth [hours] [--json-out FILE]
//     (default: 0.5 simulated hours; the restart fires at the midpoint)
//
// The same open-arrival workload runs twice through one full-cloud
// restart: once with the per-node manifest on (power-down publishes,
// power-up re-adopts every cache it can re-verify) and once with it off
// (the legacy scrub — every node comes back cold and re-pays the storage
// node for its working set). Gates (exit 1 on failure, for CI):
//   * manifest-on post-restart storage-node bytes <= 60% of manifest-off
//     (>= 40% reduction: the re-warm traffic the manifest exists to
//     avoid);
//   * manifest-on p99 boot latency no worse than manifest-off + 2%
//     (adoption verification must not stall the boot path);
//   * no leaked VM slots in either run.

#include <string>

#include "bench_common.hpp"
#include "cloud/engine.hpp"

using namespace vmic;
using namespace vmic::cloud;

namespace {

CloudConfig restart_config(double hours, bool manifest_on) {
  CloudConfig cfg;
  cfg.seed = 7;
  cfg.horizon_s = hours * 3600.0;
  cfg.workload.mean_interarrival_s = 3600.0 / 300.0;
  cfg.manifest = manifest_on;
  cfg.restart_at_s.push_back(cfg.horizon_s / 2.0);
  cfg.restart_down_s = 30.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  double hours = 0.5;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (!a.empty() && a[0] != '-') {
      hours = std::atof(a.c_str());
    } else {
      std::fprintf(stderr,
                   "usage: bench_restart_warmth [hours] [--json-out FILE]\n");
      return 2;
    }
  }

  bench::header(
      "Durable cache manifest vs cold re-warm through a full restart",
      "Razavi & Kielmann, SC'13, cache maintenance (§5) under a planned "
      "power cycle",
      "re-adopted caches keep their warm clusters: post-restart storage-"
      "node bytes drop >= 40% at equal p99 boot latency");

  const CloudResult off = run_cloud(restart_config(hours, false));
  const CloudResult on = run_cloud(restart_config(hours, true));

  bench::row_header({"mode", "arrivals", "completed", "readopted", "p99-boot",
                     "post-MiB", "publishes"});
  for (const CloudResult* r : {&off, &on}) {
    const char* tag = r == &off ? "manifest-off" : "manifest-on";
    std::printf("%16s%16d%16d%16d%16.2f%16.1f%16llu\n", tag, r->arrivals,
                r->completed, r->caches_readopted, r->boot.p99,
                static_cast<double>(r->post_restart_storage_bytes) /
                    static_cast<double>(MiB),
                static_cast<unsigned long long>(r->manifest_publishes));
    if (r->leaked_slots != 0) {
      std::fprintf(stderr, "bench: %s leaked %d VM slot(s)\n", tag,
                   r->leaked_slots);
      return 1;
    }
    bench::export_metrics(r->metrics, std::string("restart-warmth-") + tag);
  }

  const double reduction =
      1.0 - static_cast<double>(on.post_restart_storage_bytes) /
                static_cast<double>(off.post_restart_storage_bytes
                                        ? off.post_restart_storage_bytes
                                        : 1);
  std::printf("restart ablation: post-restart storage bytes %.1f -> %.1f "
              "MiB (-%.1f%%, gate >= 40%%), boot p99 %.2f -> %.2f s "
              "(gate <= +2%%), %d readopted / %d failed / %d stale\n",
              static_cast<double>(off.post_restart_storage_bytes) /
                  static_cast<double>(MiB),
              static_cast<double>(on.post_restart_storage_bytes) /
                  static_cast<double>(MiB),
              reduction * 100.0, off.boot.p99, on.boot.p99,
              on.caches_readopted, on.adopt_failures, on.adopt_stale);

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"hours\": %.3f,\n"
        "  \"off_post_restart_bytes\": %llu,\n"
        "  \"on_post_restart_bytes\": %llu,\n"
        "  \"post_restart_reduction\": %.4f,\n"
        "  \"off_boot_p99\": %.4f,\n"
        "  \"on_boot_p99\": %.4f,\n"
        "  \"caches_readopted\": %d,\n"
        "  \"adopt_failures\": %d,\n"
        "  \"adopt_stale\": %d,\n"
        "  \"manifest_publishes\": %llu\n"
        "}\n",
        hours,
        static_cast<unsigned long long>(off.post_restart_storage_bytes),
        static_cast<unsigned long long>(on.post_restart_storage_bytes),
        reduction, off.boot.p99, on.boot.p99, on.caches_readopted,
        on.adopt_failures, on.adopt_stale,
        static_cast<unsigned long long>(on.manifest_publishes));
    std::fclose(f);
  }

  if (reduction < 0.40) {
    std::fprintf(stderr,
                 "bench: manifest cut post-restart storage bytes by only "
                 "%.1f%% (gate >= 40%%)\n",
                 reduction * 100.0);
    return 1;
  }
  if (on.boot.p99 > off.boot.p99 * 1.02) {
    std::fprintf(stderr,
                 "bench: manifest-on p99 boot regressed: %.2f s vs %.2f s "
                 "(gate <= +2%%)\n",
                 on.boot.p99, off.boot.p99);
    return 1;
  }
  return 0;
}
