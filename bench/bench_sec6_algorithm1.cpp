// §6, Algorithm 1: "Chaining to a proper cache VMI". Walks the decision
// tree end-to-end on a simulated cluster and reports what each placement
// decided and how long the associated data movement took.
#include <cinttypes>

#include "bench_common.hpp"
#include "boot/trace.hpp"
#include "boot/vm.hpp"
#include "cluster/placement.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

const char* action_name(PlacementOutcome::Action a) {
  switch (a) {
    case PlacementOutcome::Action::local_warm_hit: return "local-warm-hit";
    case PlacementOutcome::Action::chained_to_storage:
      return "chained-to-storage-mem";
    case PlacementOutcome::Action::created_fresh: return "created-fresh";
  }
  return "?";
}

}  // namespace

int main() {
  bench::header(
      "§6 — Algorithm 1: chaining to a proper cache VMI",
      "Razavi & Kielmann, SC'13, Algorithm 1",
      "fresh create on first node -> copy-back -> storage-mem chaining on "
      "other nodes -> local hits on revisit; disk-resident storage caches "
      "get staged to tmpfs");

  Cluster cl(bench::das4(net::gigabit_ethernet(), 3));
  (void)cl.storage.disk_dir.create_file("centos");
  (*cl.storage.disk_dir.buffer("centos"))->resize(10 * GiB);

  auto place = [&](int node) {
    const sim::SimTime t0 = cl.env.now();
    auto out = sim::run_sync(
        cl.env, chain_to_proper_cache(cl, *cl.nodes[node], "centos",
                                      120 * MiB, 9, 10 * GiB));
    const double secs = sim::to_seconds(cl.env.now() - t0);
    std::printf("  node %d: %-24s backing=%-28s copy-back=%d staged=%d "
                "(%.3f s)\n",
                node, action_name(out->action), out->backing.c_str(),
                out->copy_back_on_shutdown ? 1 : 0,
                out->staged_disk_to_tmpfs ? 1 : 0, secs);
    return *out;
  };

  // The boot workload used to warm caches in this walkthrough.
  boot::OsProfile prof = boot::centos63();
  const auto trace = boot::generate_boot_trace(prof);
  auto boot_from = [&](int node, const std::string& backing) {
    auto& n = *cl.nodes[node];
    const sim::SimTime t0 = cl.env.now();
    auto r = sim::run_sync(cl.env, [&]() -> sim::Task<Result<double>> {
      VMIC_CO_TRY_VOID(co_await qcow2::create_cow_image(
          n.fs, "disk/vm.cow", backing,
          {.cluster_bits = 16, .virtual_size = prof.image_size}));
      VMIC_CO_TRY(dev, co_await qcow2::open_image(n.fs, "disk/vm.cow"));
      VMIC_CO_TRY(ignored, co_await boot::boot_vm(cl.env, *dev, trace));
      (void)ignored;
      VMIC_CO_TRY_VOID(co_await dev->close());
      co_return sim::to_seconds(cl.env.now() - t0);
    }());
    std::printf("  booted VM on node %d from %s in %.1f s\n", node,
                backing.c_str(), r.ok() ? *r : -1.0);
  };

  std::printf("1. First placement on node 0 (no cache anywhere):\n");
  auto first = place(0);
  boot_from(0, first.backing);

  std::printf("2. VM shut down; cache copied back to storage memory:\n");
  {
    const sim::SimTime t0 = cl.env.now();
    auto r = sim::run_sync(cl.env, copy_cache_back(cl, *cl.nodes[0], "centos"));
    std::printf("  copy-back %s in %.3f s; storage mem pool now %" PRIu64
                " bytes\n",
                r.ok() ? "ok" : "FAILED", sim::to_seconds(cl.env.now() - t0),
                cl.storage.mem_pool.used_bytes());
  }

  std::printf("3. Placement on node 1 (cache in storage memory):\n");
  place(1);

  std::printf("4. Placement on node 1 again (now a local warm hit):\n");
  place(1);

  std::printf("5. Drop the tmpfs copy, keep one on the storage *disk*; "
              "node 2 must stage it first:\n");
  (void)storage::SimDirectory::clone_file(cl.storage.mem_dir,
                                          "cache-centos.qcow2",
                                          cl.storage.disk_dir,
                                          "cache-centos.qcow2");
  cl.storage.mem_dir.remove("cache-centos.qcow2");
  place(2);

  return 0;
}
