// Micro-benchmarks (google-benchmark) of the QCOW2 driver itself across
// cluster sizes — the host-side cost of the lookup/allocation machinery.
// Backs the §5.1 claim that the smaller 512 B cache cluster size is
// affordable: "the frequency of lookups does not affect the booting time
// since most reads during boot are small and need a lookup anyway."
#include <benchmark/benchmark.h>

#include <vector>

#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace vmic;
using sim::sync_wait;

struct Rig {
  io::MemImageStore store;
  block::DevicePtr dev;

  explicit Rig(std::uint32_t cluster_bits, bool with_cache = false) {
    {
      auto be = store.create_file("base.img");
      (void)sync_wait((*be)->truncate(1 * GiB));
    }
    auto setup = [&]() -> sim::Task<Result<void>> {
      if (with_cache) {
        VMIC_CO_TRY_VOID(co_await qcow2::create_cache_image(
            store, "c.cache", "base.img", 512 * MiB,
            {.cluster_bits = cluster_bits, .virtual_size = 1 * GiB}));
        VMIC_CO_TRY_VOID(co_await qcow2::create_cow_image(
            store, "vm.cow", "c.cache",
            {.cluster_bits = 16, .virtual_size = 1 * GiB}));
      } else {
        auto be = store.create_file("vm.qcow2");
        qcow2::Qcow2Device::CreateOptions opt;
        opt.virtual_size = 1 * GiB;
        opt.cluster_bits = cluster_bits;
        VMIC_CO_TRY_VOID(co_await qcow2::Qcow2Device::create(**be, opt));
      }
      VMIC_CO_TRY(d, co_await qcow2::open_image(
                         store, with_cache ? "vm.cow" : "vm.qcow2"));
      dev = std::move(d);
      co_return ok_result();
    };
    auto r = sync_wait(setup());
    if (!r.ok()) std::abort();
  }
};

void BM_Qcow2_AllocatingWrite(benchmark::State& state) {
  Rig rig(static_cast<std::uint32_t>(state.range(0)));
  std::vector<std::uint8_t> buf(16 * 1024, 0xAB);
  std::uint64_t off = 0;
  for (auto _ : state) {
    auto r = sync_wait(rig.dev->write(off, buf));
    if (!r.ok()) state.SkipWithError("write failed");
    off = (off + buf.size()) % (768 * MiB);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Qcow2_AllocatingWrite)->Arg(9)->Arg(12)->Arg(16);

void BM_Qcow2_WarmRead(benchmark::State& state) {
  Rig rig(static_cast<std::uint32_t>(state.range(0)));
  std::vector<std::uint8_t> buf(16 * 1024, 0xAB);
  for (std::uint64_t off = 0; off < 64 * MiB; off += buf.size()) {
    (void)sync_wait(rig.dev->write(off, buf));
  }
  Rng rng{7};
  for (auto _ : state) {
    const std::uint64_t off = 512 * rng.below((64 * MiB - buf.size()) / 512);
    auto r = sync_wait(rig.dev->read(off, buf));
    if (!r.ok()) state.SkipWithError("read failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Qcow2_WarmRead)->Arg(9)->Arg(12)->Arg(16);

void BM_Qcow2_CopyOnRead(benchmark::State& state) {
  // Cold-cache read path: miss -> backing fetch -> CoR store.
  Rig rig(static_cast<std::uint32_t>(state.range(0)), /*with_cache=*/true);
  std::vector<std::uint8_t> buf(16 * 1024);
  std::uint64_t off = 0;
  for (auto _ : state) {
    auto r = sync_wait(rig.dev->read(off, buf));
    if (!r.ok()) state.SkipWithError("read failed");
    off = (off + buf.size()) % (256 * MiB);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Qcow2_CopyOnRead)->Arg(9)->Arg(12)->Arg(16);

void BM_Qcow2_AllocAfterTableGrowthRewind(benchmark::State& state) {
  // Allocator regression case: every refcount-table growth frees the old
  // table (low in the file) and rewinds the first-fit cursor, after which
  // the legacy linear scan re-walked the whole allocated prefix per
  // allocation until the cursor caught up again — O(file size) spikes
  // that worsen as the image fills. The free-run index must keep these
  // sector-sized allocating writes flat across the growth points.
  Rig rig(static_cast<std::uint32_t>(state.range(0)));
  std::vector<std::uint8_t> buf(512, 0xCD);
  std::uint64_t off = 0;
  for (auto _ : state) {
    auto r = sync_wait(rig.dev->write(off, buf));
    if (!r.ok()) state.SkipWithError("write failed");
    off += buf.size();
    if (off >= 1 * GiB) off = 0;  // fully allocated from here on
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Qcow2_AllocAfterTableGrowthRewind)->Arg(9)->Arg(12);

void BM_Qcow2_L2LookupOnly(benchmark::State& state) {
  // Pure translation cost: 512 B reads over an allocated region.
  Rig rig(static_cast<std::uint32_t>(state.range(0)));
  std::vector<std::uint8_t> big(1 * MiB, 1);
  for (std::uint64_t off = 0; off < 32 * MiB; off += big.size()) {
    (void)sync_wait(rig.dev->write(off, big));
  }
  std::vector<std::uint8_t> sector(512);
  Rng rng{11};
  for (auto _ : state) {
    const std::uint64_t off = 512 * rng.below(32 * MiB / 512 - 1);
    auto r = sync_wait(rig.dev->read(off, sector));
    if (!r.ok()) state.SkipWithError("read failed");
  }
}
BENCHMARK(BM_Qcow2_L2LookupOnly)->Arg(9)->Arg(12)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
