// Figure 2: booting time of a CentOS VM on 1..64 compute nodes
// simultaneously, single VMI, plain QCOW2 over NFS (reads from the remote
// base, writes to a local CoW image), on 1 GbE vs 32 Gb InfiniBand.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

int main() {
  bench::header(
      "Fig 2 — Scaling the number of nodes (plain QCOW2, single VMI)",
      "Razavi & Kielmann, SC'13, Figure 2",
      "1GbE rises roughly linearly beyond ~8 nodes (network bottleneck); "
      "32GbIB stays flat at the single-VM boot time");

  bench::row_header({"# nodes", "QCOW2-1GbE(s)", "QCOW2-32GbIB(s)"});
  for (int n : bench::paper_axis()) {
    ScenarioConfig sc;
    sc.profile = boot::centos63();
    sc.num_vms = n;
    sc.num_vmis = 1;
    sc.mode = CacheMode::none;

    const auto ge =
        run_scenario(bench::das4(net::gigabit_ethernet(), n), sc);
    const auto ib = run_scenario(bench::das4(net::infiniband_qdr(), n), sc);
    std::printf("%16d%16.1f%16.1f\n", n, ge.mean_boot, ib.mean_boot);
    std::fflush(stdout);
  }
  return 0;
}
