// Long-running cloud workload bench: the vmic::cloud engine under the
// arrival shapes and failure mixes a production deployment would see.
// Not a paper figure — the paper measures one-shot boot storms — but the
// direct answer to its §8 outlook of operating VMI caches inside a real
// cloud scheduler: does the cache layer keep deployment SLOs flat when
// arrivals burst, nodes crash, and storage blips?
//
//   ./bench_cloud_longrun [hours] [--json-out FILE]
//     (default: 1.0 simulated hour per row)
//
// Besides the scenario table, the bench runs the peer-tier ablation: the
// same Zipf multi-image mix, hot enough that popular images spill across
// nodes, once with every cold fill funnelling through the storage node's
// NFS export and once with the vmic::peer tier serving fills from other
// nodes' caches. Gates (exit 1 on failure, for CI):
//   * peer-on storage-node bytes <= 75% of the NFS baseline;
//   * peer-on p99 boot latency no worse than the baseline (2% slack).

#include <string>

#include "bench_common.hpp"
#include "cloud/engine.hpp"

using namespace vmic;
using namespace vmic::cloud;

namespace {

struct Row {
  const char* tag;
  ArrivalProcess process;
  int crashes;
  int outages;
  bool salvage = true;
};

CloudResult run_row(const Row& row, double hours) {
  CloudConfig cfg;
  cfg.seed = 42;
  cfg.horizon_s = hours * 3600.0;
  cfg.workload.process = row.process;
  // Keep the flash inside short horizons.
  cfg.workload.flash_at_s = cfg.horizon_s * 0.4;
  cfg.crash_salvage = row.salvage;
  Rng plan_rng(cfg.seed ^ 0xFA11ull);
  cfg.failures = plan_failures(row.crashes, row.outages,
                               cfg.cluster.compute_nodes, cfg.horizon_s,
                               plan_rng);
  return run_cloud(cfg);
}

/// The peer ablation scenario: a Zipf-skewed multi-image mix arriving
/// fast enough to saturate the warm node's VM slots, so deployments of
/// the popular images spill onto cold nodes — exactly the case where a
/// peer fetch beats a storage-node round trip.
CloudResult run_peer_row(bool peer_on, double hours) {
  CloudConfig cfg;
  cfg.seed = 42;
  cfg.horizon_s = hours * 3600.0;
  cfg.workload.num_vmis = 12;
  cfg.workload.zipf_exponent = 1.1;
  cfg.workload.mean_interarrival_s = 3600.0 / 500.0;
  cfg.peer_transfer = peer_on;
  return run_cloud(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  double hours = 1.0;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (!a.empty() && a[0] != '-') {
      hours = std::atof(a.c_str());
    } else {
      std::fprintf(stderr,
                   "usage: bench_cloud_longrun [hours] [--json-out FILE]\n");
      return 2;
    }
  }

  bench::header(
      "Long-running cloud: deployment SLOs under arrival shapes + faults",
      "beyond the paper's boot storms; §3.4 scheduling + §6 Algorithm 1 "
      "in steady state",
      "warm-hit ratio climbs well past 50% so p50 deploy stays in single "
      "digits; crashes and outages stretch the tail (p99) but abort few "
      "VMs and leak no slots");
  bench::row_header({"scenario", "arrivals", "completed", "aborted",
                     "hit-ratio", "p50-dep", "p99-dep", "stor-MiB"});

  // "crashes" vs "crashes-nosalv" is the crash-recovery ablation: same
  // seed, same failure plan; the only difference is whether a recovered
  // node repairs + re-adopts its surviving caches or invalidates them
  // all. Salvage should show fewer storage-node bytes (stor-MiB).
  const Row rows[] = {
      {"baseline", ArrivalProcess::poisson, 0, 0},
      {"diurnal", ArrivalProcess::diurnal, 0, 0},
      {"flash", ArrivalProcess::flash_crowd, 0, 0},
      {"crashes", ArrivalProcess::poisson, 2, 0},
      {"crashes-nosalv", ArrivalProcess::poisson, 2, 0, /*salvage=*/false},
      {"outage", ArrivalProcess::poisson, 0, 1},
  };
  for (const Row& row : rows) {
    const CloudResult r = run_row(row, hours);
    std::printf("%16s%16d%16d%16d%16.3f%16.2f%16.2f%16.1f\n", row.tag,
                r.arrivals, r.completed, r.aborted, r.cache_hit_ratio,
                r.deploy.p50, r.deploy.p99,
                static_cast<double>(r.storage_payload_bytes) /
                    static_cast<double>(MiB));
    if (row.crashes > 0) {
      std::printf("%16s  %d salvaged, %d invalidated after %d crash(es)\n",
                  "", r.caches_salvaged, r.caches_invalidated,
                  r.node_crashes);
    }
    if (r.leaked_slots != 0) {
      std::fprintf(stderr, "bench: %s leaked %d VM slot(s)\n", row.tag,
                   r.leaked_slots);
      return 1;
    }
    bench::export_metrics(r.metrics, std::string("cloud-longrun-") + row.tag);
  }

  // Peer-tier ablation: same seed, same Zipf mix; the only difference is
  // whether compute nodes serve each other's cold fills.
  const CloudResult nfs = run_peer_row(/*peer_on=*/false, hours);
  const CloudResult peer = run_peer_row(/*peer_on=*/true, hours);
  for (const CloudResult* r : {&nfs, &peer}) {
    const char* tag = r == &nfs ? "zipf-nfs" : "zipf-peer";
    std::printf("%16s%16d%16d%16d%16.3f%16.2f%16.2f%16.1f\n", tag,
                r->arrivals, r->completed, r->aborted, r->cache_hit_ratio,
                r->deploy.p50, r->deploy.p99,
                static_cast<double>(r->storage_payload_bytes) /
                    static_cast<double>(MiB));
    if (r->leaked_slots != 0) {
      std::fprintf(stderr, "bench: %s leaked %d VM slot(s)\n", tag,
                   r->leaked_slots);
      return 1;
    }
    bench::export_metrics(r->metrics, std::string("cloud-longrun-") + tag);
  }
  const double reduction =
      1.0 - static_cast<double>(peer.storage_payload_bytes) /
                static_cast<double>(nfs.storage_payload_bytes
                                        ? nfs.storage_payload_bytes
                                        : 1);
  std::printf("peer ablation: storage-node bytes %.1f -> %.1f MiB "
              "(-%.1f%%, gate >= 25%%), boot p99 %.2f -> %.2f s, "
              "%llu seed hit(s), %llu fallback(s)\n",
              static_cast<double>(nfs.storage_payload_bytes) /
                  static_cast<double>(MiB),
              static_cast<double>(peer.storage_payload_bytes) /
                  static_cast<double>(MiB),
              reduction * 100.0, nfs.boot.p99, peer.boot.p99,
              static_cast<unsigned long long>(peer.peer_seed_hits),
              static_cast<unsigned long long>(peer.peer_fallback_fills));

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"hours\": %.3f,\n"
                 "  \"nfs_storage_bytes\": %llu,\n"
                 "  \"peer_storage_bytes\": %llu,\n"
                 "  \"storage_reduction\": %.4f,\n"
                 "  \"nfs_boot_p99\": %.4f,\n"
                 "  \"peer_boot_p99\": %.4f,\n"
                 "  \"peer_seed_hits\": %llu,\n"
                 "  \"peer_fallback_fills\": %llu,\n"
                 "  \"peer_bytes_served\": %llu,\n"
                 "  \"peer_timeouts\": %llu\n"
                 "}\n",
                 hours,
                 static_cast<unsigned long long>(nfs.storage_payload_bytes),
                 static_cast<unsigned long long>(peer.storage_payload_bytes),
                 reduction, nfs.boot.p99, peer.boot.p99,
                 static_cast<unsigned long long>(peer.peer_seed_hits),
                 static_cast<unsigned long long>(peer.peer_fallback_fills),
                 static_cast<unsigned long long>(peer.peer_bytes_served),
                 static_cast<unsigned long long>(peer.peer_timeouts));
    std::fclose(f);
  }

  if (reduction < 0.25) {
    std::fprintf(stderr,
                 "bench: peer tier cut storage bytes by only %.1f%% "
                 "(gate >= 25%%)\n",
                 reduction * 100.0);
    return 1;
  }
  if (peer.boot.p99 > nfs.boot.p99 * 1.02) {
    std::fprintf(stderr,
                 "bench: peer-on p99 boot regressed: %.2f s vs %.2f s\n",
                 peer.boot.p99, nfs.boot.p99);
    return 1;
  }
  return 0;
}
