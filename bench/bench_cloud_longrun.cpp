// Long-running cloud workload bench: the vmic::cloud engine under the
// arrival shapes and failure mixes a production deployment would see.
// Not a paper figure — the paper measures one-shot boot storms — but the
// direct answer to its §8 outlook of operating VMI caches inside a real
// cloud scheduler: does the cache layer keep deployment SLOs flat when
// arrivals burst, nodes crash, and storage blips?
//
//   ./bench_cloud_longrun [hours]   (default: 1.0 simulated hour per row)

#include "bench_common.hpp"
#include "cloud/engine.hpp"

using namespace vmic;
using namespace vmic::cloud;

namespace {

struct Row {
  const char* tag;
  ArrivalProcess process;
  int crashes;
  int outages;
  bool salvage = true;
};

CloudResult run_row(const Row& row, double hours) {
  CloudConfig cfg;
  cfg.seed = 42;
  cfg.horizon_s = hours * 3600.0;
  cfg.workload.process = row.process;
  // Keep the flash inside short horizons.
  cfg.workload.flash_at_s = cfg.horizon_s * 0.4;
  cfg.crash_salvage = row.salvage;
  Rng plan_rng(cfg.seed ^ 0xFA11ull);
  cfg.failures = plan_failures(row.crashes, row.outages,
                               cfg.cluster.compute_nodes, cfg.horizon_s,
                               plan_rng);
  return run_cloud(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 1.0;

  bench::header(
      "Long-running cloud: deployment SLOs under arrival shapes + faults",
      "beyond the paper's boot storms; §3.4 scheduling + §6 Algorithm 1 "
      "in steady state",
      "warm-hit ratio climbs well past 50% so p50 deploy stays in single "
      "digits; crashes and outages stretch the tail (p99) but abort few "
      "VMs and leak no slots");
  bench::row_header({"scenario", "arrivals", "completed", "aborted",
                     "hit-ratio", "p50-dep", "p99-dep", "stor-MiB"});

  // "crashes" vs "crashes-nosalv" is the crash-recovery ablation: same
  // seed, same failure plan; the only difference is whether a recovered
  // node repairs + re-adopts its surviving caches or invalidates them
  // all. Salvage should show fewer storage-node bytes (stor-MiB).
  const Row rows[] = {
      {"baseline", ArrivalProcess::poisson, 0, 0},
      {"diurnal", ArrivalProcess::diurnal, 0, 0},
      {"flash", ArrivalProcess::flash_crowd, 0, 0},
      {"crashes", ArrivalProcess::poisson, 2, 0},
      {"crashes-nosalv", ArrivalProcess::poisson, 2, 0, /*salvage=*/false},
      {"outage", ArrivalProcess::poisson, 0, 1},
  };
  for (const Row& row : rows) {
    const CloudResult r = run_row(row, hours);
    std::printf("%16s%16d%16d%16d%16.3f%16.2f%16.2f%16.1f\n", row.tag,
                r.arrivals, r.completed, r.aborted, r.cache_hit_ratio,
                r.deploy.p50, r.deploy.p99,
                static_cast<double>(r.storage_payload_bytes) /
                    static_cast<double>(MiB));
    if (row.crashes > 0) {
      std::printf("%16s  %d salvaged, %d invalidated after %d crash(es)\n",
                  "", r.caches_salvaged, r.caches_invalidated,
                  r.node_crashes);
    }
    if (r.leaked_slots != 0) {
      std::fprintf(stderr, "bench: %s leaked %d VM slot(s)\n", row.tag,
                   r.leaked_slots);
      return 1;
    }
    bench::export_metrics(r.metrics, std::string("cloud-longrun-") + row.tag);
  }
  return 0;
}
