// Extension (§7.3 / §8 future work): content-based deduplication of VMI
// cache images. "Since VMIs created from the same operating system
// distribution share content, this method can be deployed to reduce the
// effective size of cache images of different VMIs on the compute nodes
// even further."
//
// Builds warm cache files for several VMIs whose *content* overlaps to a
// controlled degree (identical copies of one distro; a sibling release
// sharing most files; an unrelated distro), then runs the cache files
// through a content-addressed block store and reports the storage saved.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "boot/trace.hpp"
#include "dedup/store.hpp"
#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"

using namespace vmic;
using sim::sync_wait;

namespace {

/// Fill a base image with synthetic "distro content": block i carries
/// pattern(content_seed ^ i) — two images with the same content_seed are
/// bit-identical; `private_fraction` of blocks get image-private content.
void fill_base(io::MemImageStore& store, const std::string& name,
               std::uint64_t size, std::uint64_t shared_seed,
               std::uint64_t private_seed, double private_fraction) {
  auto be = store.create_file(name);
  const std::uint64_t bs = 64 * KiB;
  std::vector<std::uint8_t> block(bs);
  Rng pick{private_seed ^ 0xF00D};
  for (std::uint64_t off = 0; off < size; off += bs) {
    const bool is_private = pick.uniform() < private_fraction;
    Rng content{(is_private ? private_seed : shared_seed) ^ (off / bs)};
    for (auto& b : block) b = static_cast<std::uint8_t>(content.next());
    (void)sync_wait((*be)->pwrite(off, block));
  }
}

/// Warm a cache for `base` by replaying the boot trace, then return the
/// raw cache file bytes.
std::vector<std::uint8_t> warm_cache_bytes(io::MemImageStore& store,
                                           const std::string& base,
                                           const boot::OsProfile& prof,
                                           std::uint64_t salt) {
  const std::string cache = base + ".cache";
  const std::string cow = base + ".cow";
  auto run = [&]() -> sim::Task<Result<void>> {
    VMIC_CO_TRY_VOID(co_await qcow2::create_cache_image(
        store, cache, base, 400 * MiB,
        {.cluster_bits = 9, .virtual_size = prof.image_size}));
    VMIC_CO_TRY_VOID(co_await qcow2::create_cow_image(
        store, cow, cache,
        {.cluster_bits = 16, .virtual_size = prof.image_size}));
    VMIC_CO_TRY(dev, co_await qcow2::open_image(store, cow));
    const auto trace = boot::generate_boot_trace(prof, salt);
    std::vector<std::uint8_t> buf;
    for (const auto& op : trace.ops) {
      if (op.kind != boot::BootOp::Kind::read) continue;
      buf.resize(op.length);
      VMIC_CO_TRY_VOID(co_await dev->read(op.offset, buf));
    }
    VMIC_CO_TRY_VOID(co_await dev->close());
    co_return ok_result();
  };
  if (!sync_wait(run()).ok()) return {};
  auto* sb = *store.buffer(cache);
  std::vector<std::uint8_t> bytes(sb->size());
  sb->read(0, bytes);
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_ext_dedup [--json-out FILE]\n");
      return 2;
    }
  }

  vmic::bench::header(
      "Extension — content-based dedup of VMI caches (§7.3 / §8)",
      "Razavi & Kielmann, SC'13, §7.3 'content-based block caching'",
      "caches of identical VMI copies dedup almost fully; a sibling "
      "release saves most of its shared content; unrelated images don't");

  boot::OsProfile prof = boot::centos63();
  prof.image_size = 1 * GiB;  // keep the content generation snappy
  prof.unique_read_bytes = 48 * MiB;
  prof.cpu_seconds = 1;

  io::MemImageStore store;
  // Two identical copies of one distro (Fig 3's "identical but
  // independent copies"), a sibling release (75 % shared content), and an
  // unrelated distro.
  fill_base(store, "centos-a", prof.image_size, /*shared=*/111, 1001, 0.0);
  fill_base(store, "centos-b", prof.image_size, 111, 1002, 0.0);
  fill_base(store, "centos-sib", prof.image_size, 111, 1003, 0.25);
  fill_base(store, "debian", prof.image_size, /*shared=*/222, 1004, 0.0);

  struct Vmi {
    const char* name;
    std::uint64_t salt;
  };
  const Vmi vmis[] = {
      {"centos-a", 0}, {"centos-b", 0}, {"centos-sib", 0}, {"debian", 1}};

  struct RoundStats {
    std::uint32_t block = 0;
    std::uint64_t raw = 0;
    std::uint64_t stored = 0;
    double ratio = 0;
  };
  std::vector<RoundStats> rounds;

  for (const std::uint32_t dedup_block : {512u, 4096u}) {
    dedup::BlockStore bs{dedup_block};
    std::vector<dedup::DedupFile> files;
    std::uint64_t raw_total = 0;
    std::printf("\ndedup block size = %u B\n", dedup_block);
    vmic::bench::row_header({"cache of", "raw(MB)", "exclusive(MB)"});
    for (const auto& v : vmis) {
      const auto bytes = warm_cache_bytes(store, v.name, prof, v.salt);
      raw_total += bytes.size();
      files.emplace_back(bs);
      files.back().append(bytes);
    }
    for (std::size_t i = 0; i < files.size(); ++i) {
      std::printf("%16s%16.1f%16.1f\n", vmis[i].name,
                  static_cast<double>(files[i].size()) / 1048576.0,
                  static_cast<double>(files[i].exclusive_bytes()) / 1048576.0);
    }
    std::printf("pool: raw %.1f MB -> stored %.1f MB  (dedup ratio %.2fx)\n",
                static_cast<double>(raw_total) / 1048576.0,
                static_cast<double>(bs.stored_bytes()) / 1048576.0,
                bs.dedup_ratio());
    rounds.push_back({dedup_block, raw_total, bs.stored_bytes(),
                      bs.dedup_ratio()});
    // The cache files were rebuilt per block size; drop them for a fair
    // second round.
    for (const auto& v : vmis) {
      store.remove(std::string(v.name) + ".cache");
      store.remove(std::string(v.name) + ".cow");
    }
  }

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"rounds\": [\n");
    for (std::size_t i = 0; i < rounds.size(); ++i) {
      const RoundStats& r = rounds[i];
      std::fprintf(f,
                   "    {\"block_size\": %u, \"raw_bytes\": %llu, "
                   "\"stored_bytes\": %llu, \"dedup_ratio\": %.4f}%s\n",
                   r.block, static_cast<unsigned long long>(r.raw),
                   static_cast<unsigned long long>(r.stored), r.ratio,
                   i + 1 < rounds.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return 0;
}
