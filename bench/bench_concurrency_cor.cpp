// Concurrent copy-on-read bench: races K readers against one cold cache
// image on a sim-timed medium and compares the single-flight in-flight-fill
// protocol against the legacy serialized mode (one device-wide fill at a
// time, duplicate backing fetches).
//
// Two scenarios:
//   * hotspot — every reader wants the same cold cluster. Single-flight
//     must fetch it from the base exactly once (readers queue and are
//     served locally); legacy fetches it once per reader.
//   * cold population — readers fan out over disjoint clusters. Fills
//     must overlap, so the sim-time makespan must beat the serialized
//     baseline.
//
// Emits BENCH_concurrency_cor.json (override with --out <path>): wall-clock
// per run, sim makespan, backing-read counts. Exits non-zero when
// single-flight issues more backing reads than there are unique clusters
// (the dedup guarantee) or when the cold population fails to beat the
// serialized baseline — the CI gate.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/env.hpp"
#include "sim/run.hpp"
#include "storage/disk.hpp"
#include "storage/sim_directory.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace vmic;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

constexpr std::uint64_t kBaseSize = 8_MiB;
constexpr std::uint64_t kSeed = 77;

struct RunResult {
  bool ok = false;
  double wall_ms = 0;        ///< host wall-clock for the whole run
  double makespan_s = 0;     ///< sim time from first spawn to last reader
  std::uint64_t backing_reads = 0;
  std::uint64_t bytes_from_backing = 0;
  std::uint64_t inflight_waits = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t cor_clusters = 0;
};

sim::Task<bool> write_all(io::BlockBackend& be,
                          std::span<const std::uint8_t> data) {
  auto r = co_await be.pwrite(0, data);
  co_return r.ok();
}

sim::Task<void> reader(block::BlockDevice& dev, std::uint64_t off,
                       std::span<std::uint8_t> dst, bool& ok) {
  auto r = co_await dev.read(off, dst);
  ok = r.ok();
}

/// One cold boot of the base <- cache <- cow chain with `k` readers,
/// reader i reading `read_len` bytes at i * stride.
RunResult run_case(bool single_flight, int k, std::uint64_t stride,
                   std::uint64_t read_len) {
  RunResult res;
  const auto wall0 = std::chrono::steady_clock::now();

  sim::SimEnv env;
  storage::MemMedium mem{env, {.latency_us = 200.0, .bandwidth_bps = 200e6}};
  storage::SimDirectory dir{mem};

  std::vector<std::uint8_t> data(kBaseSize);
  Rng rng{kSeed};
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  {
    auto be = dir.create_file("base.img");
    if (!be.ok() || !sim::run_sync(env, write_all(**be, data))) return res;
  }
  if (!sim::run_sync(env, qcow2::create_cache_image(
                              dir, "vmi.cache", "base.img", 4_MiB,
                              {.cluster_bits = 16, .virtual_size = 0}))
           .ok())
    return res;
  if (!sim::run_sync(env, qcow2::create_cow_image(dir, "vm.cow", "vmi.cache"))
           .ok())
    return res;
  auto opened = sim::run_sync(env, qcow2::open_image(dir, "vm.cow"));
  if (!opened.ok()) return res;
  block::DevicePtr cow = std::move(*opened);
  for (block::BlockDevice* b = cow.get(); b != nullptr; b = b->backing())
    if (auto* q = dynamic_cast<qcow2::Qcow2Device*>(b))
      q->set_cor_single_flight(single_flight);
  auto* cache = dynamic_cast<qcow2::Qcow2Device*>(cow->backing());
  if (cache == nullptr) return res;

  std::vector<std::vector<std::uint8_t>> bufs(k);
  std::deque<bool> oks(k, false);
  const sim::SimTime start = env.now();
  for (int i = 0; i < k; ++i) {
    bufs[i].resize(read_len);
    env.spawn(reader(*cow, i * stride, bufs[i], oks[i]));
  }
  env.run();

  res.ok = true;
  for (int i = 0; i < k; ++i) {
    if (!oks[i] || std::memcmp(bufs[i].data(), data.data() + i * stride,
                               read_len) != 0)
      res.ok = false;
  }
  res.makespan_s = sim::to_seconds(env.now() - start);
  const auto& st = cache->stats();
  res.backing_reads = st.backing_reads;
  res.bytes_from_backing = st.bytes_from_backing;
  res.inflight_waits = st.cor_inflight_waits;
  res.dedup_hits = st.cor_dedup_hits;
  res.cor_clusters = st.cor_clusters;
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall0)
                    .count();
  return res;
}

void print_row(const char* scenario, const char* mode, const RunResult& r) {
  std::printf("%16s%16s%16llu%16llu%16llu%16.6f%16.2f\n", scenario, mode,
              static_cast<unsigned long long>(r.backing_reads),
              static_cast<unsigned long long>(r.inflight_waits),
              static_cast<unsigned long long>(r.dedup_hits), r.makespan_s,
              r.wall_ms);
}

void json_run(std::FILE* f, const char* key, const RunResult& r,
              const char* trailing_comma) {
  std::fprintf(f,
               "    \"%s\": {\"ok\": %s, \"backing_reads\": %llu, "
               "\"bytes_from_backing\": %llu, \"inflight_waits\": %llu, "
               "\"dedup_hits\": %llu, \"cor_clusters\": %llu, "
               "\"sim_makespan_s\": %.9f, \"wall_ms\": %.3f}%s\n",
               key, r.ok ? "true" : "false",
               static_cast<unsigned long long>(r.backing_reads),
               static_cast<unsigned long long>(r.bytes_from_backing),
               static_cast<unsigned long long>(r.inflight_waits),
               static_cast<unsigned long long>(r.dedup_hits),
               static_cast<unsigned long long>(r.cor_clusters), r.makespan_s,
               r.wall_ms, trailing_comma);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_concurrency_cor.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }

  bench::header(
      "Concurrent copy-on-read: single-flight fills vs legacy serialization",
      "§4.2 cache population, QEMU-style in-flight COW tracking",
      "hotspot: 1 backing read regardless of reader count; cold "
      "population: makespan below the serialized baseline");

  constexpr int kReaders = 16;
  const auto hot_sf = run_case(true, kReaders, 0, 64_KiB);
  const auto hot_legacy = run_case(false, kReaders, 0, 64_KiB);
  const auto cold_sf = run_case(true, kReaders, 512_KiB, 64_KiB);
  const auto cold_legacy = run_case(false, kReaders, 512_KiB, 64_KiB);

  bench::row_header({"scenario", "mode", "backing_rd", "waits", "dedup",
                     "makespan_s", "wall_ms"});
  print_row("hotspot", "single_flight", hot_sf);
  print_row("hotspot", "legacy", hot_legacy);
  print_row("cold_pop", "single_flight", cold_sf);
  print_row("cold_pop", "legacy", cold_legacy);

  const std::uint64_t hot_unique = 1;
  const std::uint64_t cold_unique = kReaders;
  const bool data_ok =
      hot_sf.ok && hot_legacy.ok && cold_sf.ok && cold_legacy.ok;
  const bool dedup_ok = hot_sf.backing_reads <= hot_unique &&
                        cold_sf.backing_reads <= cold_unique;
  const bool makespan_ok = cold_sf.makespan_s < cold_legacy.makespan_s;
  const bool pass = data_ok && dedup_ok && makespan_ok;

  std::printf("\nGate: dedup %s (hotspot %llu/%llu, cold %llu/%llu), "
              "cold-population speedup %.2fx (%s)\n",
              dedup_ok ? "OK" : "FAIL",
              static_cast<unsigned long long>(hot_sf.backing_reads),
              static_cast<unsigned long long>(hot_unique),
              static_cast<unsigned long long>(cold_sf.backing_reads),
              static_cast<unsigned long long>(cold_unique),
              cold_sf.makespan_s > 0
                  ? cold_legacy.makespan_s / cold_sf.makespan_s
                  : 0.0,
              makespan_ok ? "OK" : "FAIL");

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"concurrency_cor\",\n");
  std::fprintf(f, "  \"readers\": %d,\n", kReaders);
  std::fprintf(f, "  \"hotspot\": {\n    \"unique_clusters\": %llu,\n",
               static_cast<unsigned long long>(hot_unique));
  json_run(f, "single_flight", hot_sf, ",");
  json_run(f, "legacy", hot_legacy, "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"cold_population\": {\n    \"unique_clusters\": %llu,\n",
               static_cast<unsigned long long>(cold_unique));
  json_run(f, "single_flight", cold_sf, ",");
  json_run(f, "legacy", cold_legacy, "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"gate\": {\"data_ok\": %s, \"dedup_ok\": %s, "
               "\"makespan_ok\": %s, \"pass\": %s}\n}\n",
               data_ok ? "true" : "false", dedup_ok ? "true" : "false",
               makespan_ok ? "true" : "false", pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  return pass ? 0 : 1;
}
