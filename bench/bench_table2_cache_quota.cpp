// Table 2: cache quota necessary for various VMIs — the size of the
// warm cache *file* (512 B cache clusters), which exceeds the Table 1
// working set by the QCOW2 metadata (L1 sized by the virtual disk, L2 by
// the cached data, refcounts, header). Also verifies the §5.1 note that
// a 200 MB quota needs only ~3.1 MB of L2 tables at 512 B clusters.
#include "bench_common.hpp"
#include "boot/trace.hpp"
#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "sim/task.hpp"

using namespace vmic;

namespace {

struct WarmResult {
  std::uint64_t file_bytes;
  std::uint64_t data_bytes;
  std::uint64_t l2_bytes;
};

/// Host-side warm-up: build base <- cache <- cow in memory and replay the
/// profile's boot reads through the chain; report the cache file size.
WarmResult warm_cache_for(const boot::OsProfile& p) {
  io::MemImageStore store;
  {
    auto be = store.create_file("base.img");
    (void)sim::sync_wait((*be)->truncate(p.image_size));
  }
  auto setup = [&]() -> sim::Task<Result<WarmResult>> {
    VMIC_CO_TRY_VOID(co_await qcow2::create_cache_image(
        store, "vmi.cache", "base.img", 400 * MiB,
        {.cluster_bits = 9, .virtual_size = p.image_size}));
    VMIC_CO_TRY_VOID(co_await qcow2::create_cow_image(
        store, "vm.cow", "vmi.cache",
        {.cluster_bits = 16, .virtual_size = p.image_size}));
    VMIC_CO_TRY(dev, co_await qcow2::open_image(store, "vm.cow"));
    const auto trace = boot::generate_boot_trace(p);
    std::vector<std::uint8_t> buf;
    for (const auto& op : trace.ops) {
      buf.resize(op.length);
      if (op.kind == boot::BootOp::Kind::read) {
        VMIC_CO_TRY_VOID(co_await dev->read(op.offset, buf));
      } else {
        VMIC_CO_TRY_VOID(co_await dev->write(op.offset, buf));
      }
    }
    auto* cache = dynamic_cast<qcow2::Qcow2Device*>(dev->backing());
    WarmResult out{cache->file_bytes(), cache->allocated_data_bytes(),
                   cache->l2_table_bytes()};
    VMIC_CO_TRY_VOID(co_await dev->close());
    co_return out;
  };
  auto r = sim::sync_wait(setup());
  if (!r.ok()) return {0, 0, 0};
  return *r;
}

}  // namespace

int main() {
  vmic::bench::header(
      "Table 2 — Cache quota necessary for various VMIs (512 B clusters)",
      "Razavi & Kielmann, SC'13, Table 2 (+ §5.1 L2-size note)",
      "CentOS ~93 MB, Windows Server ~201 MB, Debian ~40 MB — each a bit "
      "above its Table 1 working set, the gap being QCOW2 metadata");

  vmic::bench::row_header(
      {"VMI", "warm-cache", "cached-data", "L2-tables"});
  for (const auto& p :
       {boot::centos63(), boot::windows2012(), boot::debian607()}) {
    const auto w = warm_cache_for(p);
    std::printf("%24s %9.1f MB %9.1f MB %9.2f MB\n", p.name.c_str(),
                static_cast<double>(w.file_bytes) / 1048576.0,
                static_cast<double>(w.data_bytes) / 1048576.0,
                static_cast<double>(w.l2_bytes) / 1048576.0);
  }

  // §5.1: "For a cache quota of 200 MB, only 3.1 MB is necessary for
  // L2-tables" — pure format math at 512 B clusters.
  const qcow2::Layout ly{9};
  const double l2_mb =
      static_cast<double>(div_ceil((200 * MiB) / ly.cluster_size(),
                                   ly.l2_entries()) *
                          ly.cluster_size()) /
      1048576.0;
  std::printf("\nL2 tables needed for a 200 MB quota at 512 B clusters: "
              "%.2f MB (paper: 3.1 MB)\n", l2_mb);
  return 0;
}
