// Figure 11: caching a single VMI at the compute nodes over 1 GbE,
// 1..64 nodes booting simultaneously. Warm caches make booting time flat
// at roughly the single-VM time; cold caches cost about the same as plain
// QCOW2 (the cache is built in memory, off the critical path).
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

int main() {
  bench::header(
      "Fig 11 — Caching a single VMI at compute nodes (1 GbE)",
      "Razavi & Kielmann, SC'13, Figure 11",
      "warm cache flat at ~single-VM boot time; cold cache tracks QCOW2's "
      "rising curve");

  bench::row_header({"# nodes", "warm(s)", "cold(s)", "qcow2(s)"});
  for (int n : bench::paper_axis()) {
    ScenarioConfig sc;
    sc.profile = boot::centos63();
    sc.num_vms = n;
    sc.num_vmis = 1;
    sc.cache_quota = 250 * MiB;
    sc.cache_cluster_bits = 9;

    sc.mode = CacheMode::compute_disk;
    sc.state = CacheState::warm;
    const auto warm =
        run_scenario(bench::das4(net::gigabit_ethernet(), n), sc);

    sc.state = CacheState::cold;
    const auto cold =
        run_scenario(bench::das4(net::gigabit_ethernet(), n), sc);

    sc.mode = CacheMode::none;
    const auto plain =
        run_scenario(bench::das4(net::gigabit_ethernet(), n), sc);

    std::printf("%16d%16.1f%16.1f%16.1f\n", n, warm.mean_boot,
                cold.mean_boot, plain.mean_boot);
    std::fflush(stdout);
  }
  return 0;
}
