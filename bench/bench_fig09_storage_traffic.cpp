// Figure 9: observed traffic at the storage node with increasing cache
// quota, comparing cache cluster sizes 512 B and 64 KiB (one compute
// node, 1 GbE, cold caches built in memory).
//
// The headline effect: a *cold* cache with the default 64 KiB clusters
// causes MORE storage traffic than plain QCOW2 — every small read forces
// a full-cluster copy-on-read fill from the base. At 512 B clusters the
// fill is exactly the read. Warm caches shrink traffic as quota grows.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

double run_mb(CacheState state, std::uint32_t bits, std::uint64_t quota) {
  ScenarioConfig sc;
  sc.profile = boot::centos63();
  sc.num_vms = 1;
  sc.num_vmis = 1;
  sc.mode = CacheMode::compute_disk;
  sc.state = state;
  sc.cache_cluster_bits = bits;
  sc.cache_quota = quota;
  const auto r =
      run_scenario(vmic::bench::das4(net::gigabit_ethernet(), 1), sc);
  vmic::bench::export_metrics(
      r.metrics, "fig09-" +
                     std::string(state == CacheState::warm ? "warm" : "cold") +
                     "-" + std::to_string(1u << bits) + "-q" +
                     std::to_string(quota / MiB));
  return static_cast<double>(r.storage_payload_bytes) / 1048576.0;
}

}  // namespace

int main() {
  vmic::bench::header(
      "Fig 9 — Observed traffic at the storage node vs cache quota",
      "Razavi & Kielmann, SC'13, Figure 9",
      "cold@64KiB clusters > QCOW2 (cluster-fill amplification); "
      "cold@512B ~= QCOW2; warm decreases as the quota grows");

  ScenarioConfig plain;
  plain.profile = boot::centos63();
  plain.num_vms = 1;
  plain.num_vmis = 1;
  plain.mode = CacheMode::none;
  const double qcow2_mb =
      static_cast<double>(
          run_scenario(vmic::bench::das4(net::gigabit_ethernet(), 1), plain)
              .storage_payload_bytes) /
      1048576.0;

  vmic::bench::row_header({"quota(MB)", "warm-512(MB)", "warm-64K(MB)",
                           "cold-512(MB)", "cold-64K(MB)", "qcow2(MB)"});
  for (int q : {10, 20, 40, 60, 80, 100, 120, 140}) {
    const std::uint64_t quota = static_cast<std::uint64_t>(q) * MiB;
    std::printf("%16d%16.1f%16.1f%16.1f%16.1f%16.1f\n", q,
                run_mb(CacheState::warm, 9, quota),
                run_mb(CacheState::warm, 16, quota),
                run_mb(CacheState::cold, 9, quota),
                run_mb(CacheState::cold, 16, quota), qcow2_mb);
    std::fflush(stdout);
  }
  return 0;
}
