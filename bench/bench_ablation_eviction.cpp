// Ablation (§3.4): cache-pool eviction policy at the node level. Replays
// a skewed stream of VMI boot requests against a bounded cache pool and
// reports warm-hit rates for LRU, FIFO and no-eviction — quantifying the
// "policy such as LRU" recommendation.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "cache/pool.hpp"
#include "util/rng.hpp"

using namespace vmic;
using cache::CachePool;
using cache::EvictionPolicy;

namespace {

/// Zipf-ish VMI popularity: rank r is requested with weight 1/(r+1).
/// `shift` rotates which VMI holds which rank — real clouds see image
/// popularity drift over time (new releases displace old ones).
int pick_vmi(Rng& rng, int n_vmis, int shift) {
  double total = 0;
  for (int k = 0; k < n_vmis; ++k) total += 1.0 / (k + 1);
  double u = rng.uniform() * total;
  for (int k = 0; k < n_vmis; ++k) {
    u -= 1.0 / (k + 1);
    if (u <= 0) return (k + shift) % n_vmis;
  }
  return (n_vmis - 1 + shift) % n_vmis;
}

struct Outcome {
  double hit_rate;
  std::uint64_t evictions;
  std::uint64_t rejected;
};

Outcome replay(EvictionPolicy policy, std::uint64_t capacity, int n_vmis,
               int requests) {
  CachePool pool{capacity, policy};
  Rng rng{0xCAFE};
  int hits = 0;
  std::uint64_t rejected = 0;
  for (int i = 0; i < requests; ++i) {
    // Popularity drifts twice over the replay; adaptive eviction must
    // follow it, a frozen cache cannot.
    const int shift = (i * 3) / requests * (n_vmis / 3);
    const int v = pick_vmi(rng, n_vmis, shift);
    const std::string vmi = "vmi-" + std::to_string(v);
    // Cache sizes vary per VMI (40..200 MB, like Table 2's spread).
    const std::uint64_t bytes = (40 + 160ull * v / n_vmis) * MiB;
    if (pool.contains(vmi)) {
      ++hits;
      pool.touch(vmi);
    } else if (!pool.admit(vmi, bytes).admitted) {
      ++rejected;
    }
  }
  return {static_cast<double>(hits) / requests, pool.evictions(), rejected};
}

}  // namespace

int main() {
  vmic::bench::header(
      "Ablation — node cache-pool eviction policy (§3.4)",
      "Razavi & Kielmann, SC'13, §3.4 (cache-aware scheduler discussion)",
      "under drifting popularity, LRU adapts and wins; FIFO churns; "
      "no-eviction freezes on the initial popular set and degrades");

  const int kVmis = 32;
  const int kRequests = 20000;
  for (const std::uint64_t cap_mb : {256ull, 512ull, 1024ull, 2048ull}) {
    std::printf("\npool capacity = %llu MiB, %d VMIs, %d boot requests\n",
                static_cast<unsigned long long>(cap_mb), kVmis, kRequests);
    vmic::bench::row_header({"policy", "hit-rate", "evictions", "rejected"});
    for (auto policy : {EvictionPolicy::lru, EvictionPolicy::fifo,
                        EvictionPolicy::none}) {
      const auto o = replay(policy, cap_mb * MiB, kVmis, kRequests);
      std::printf("%16s%15.1f%%%16llu%16llu\n", to_string(policy),
                  100.0 * o.hit_rate,
                  static_cast<unsigned long long>(o.evictions),
                  static_cast<unsigned long long>(o.rejected));
    }
  }
  return 0;
}
