// Ablation (§7.3): boot-time prefetching. The paper: "Our preliminary
// experience with prefetching, however, showed no substantial benefit.
// For example, in the CentOS case, the VM only waits 17% of its total
// boot time on reads and prefetching can only mask that." Reproduced by
// replaying the boot with sequential next-range prefetch through a cold
// cache and comparing boot time and storage traffic.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

void run_cfg(const char* label, std::uint32_t prefetch) {
  ScenarioConfig sc;
  sc.profile = boot::centos63();
  sc.num_vms = 1;
  sc.num_vmis = 1;
  sc.mode = CacheMode::compute_disk;
  sc.state = CacheState::cold;
  sc.cache_quota = 250 * MiB;
  sc.cache_cluster_bits = 9;
  sc.prefetch_bytes = prefetch;
  const auto r = run_scenario(vmic::bench::das4(net::gigabit_ethernet(), 1), sc);
  const auto& b = r.vms[0].boot;
  std::printf("%16s%16.1f%16.1f%16.1f%16.1f\n", label, r.mean_boot,
              b.read_wait_seconds,
              static_cast<double>(r.storage_payload_bytes) / 1048576.0,
              static_cast<double>(b.prefetched_bytes) / 1048576.0);
}

}  // namespace

int main() {
  vmic::bench::header(
      "Ablation — boot-time prefetching (§7.3)",
      "Razavi & Kielmann, SC'13, §7.3 (informed prefetching discussion)",
      "prefetching can only mask the small read-wait share of the boot: "
      "boot time barely moves while storage traffic grows");

  vmic::bench::row_header(
      {"prefetch", "boot(s)", "read-wait(s)", "traffic(MB)", "prefetched(MB)"});
  run_cfg("off", 0);
  run_cfg("32KiB", 32 * 1024);
  run_cfg("128KiB", 128 * 1024);
  run_cfg("512KiB", 512 * 1024);
  return 0;
}
