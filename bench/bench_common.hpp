#pragma once

// Shared plumbing for the per-figure/table bench binaries. Each binary
// prints the series the corresponding paper figure plots, in a fixed
// column layout, plus a short "shape check" note stating what to compare
// against the paper.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/scenario.hpp"
#include "util/units.hpp"

namespace vmic::bench {

inline void header(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper: %s\n", paper_ref.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================="
              "=================\n");
}

inline void row_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

/// The paper's node counts / VMI counts axis: 1, 4, 8, 16, 32, 64.
inline std::vector<int> paper_axis() { return {1, 4, 8, 16, 32, 64}; }

/// DAS-4 cluster with the given network and node count.
inline cluster::ClusterParams das4(const net::NetworkParams& net,
                                   int nodes = 64) {
  cluster::ClusterParams cp;
  cp.compute_nodes = nodes;
  cp.network = net;
  return cp;
}

/// Write a scenario's metrics snapshot to `path` when the bench was run
/// with VMIC_BENCH_METRICS_DIR set — lets a plotting/CI pipeline consume
/// the raw counters behind the printed table. `tag` names the data point
/// (e.g. "fig09-cold-512-q40"). Format follows the extensionless rule of
/// vmi-bootsim: always JSON here, one file per data point.
inline void export_metrics(const obs::MetricsSnapshot& snap,
                           const std::string& tag) {
  const char* dir = std::getenv("VMIC_BENCH_METRICS_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + tag + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  const std::string body = snap.to_json();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace vmic::bench
