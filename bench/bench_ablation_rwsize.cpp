// Ablation (§5 tuning note): "We have tuned the NFS rwsize to 64 KB ...
// as the default NFS rwsize of 1 MB does not match well with the
// small-sized read requests during boot time." Compares plain-QCOW2 boot
// at 64 nodes under a 64 KiB rwsize / 4 KiB fetch quantum against a
// 1 MiB rwsize server that fetches at full-rsize granularity.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

void run_cfg(const char* label, std::uint32_t rwsize,
             std::uint32_t min_fetch) {
  ScenarioConfig sc;
  sc.profile = boot::centos63();
  sc.num_vms = 64;
  sc.num_vmis = 1;
  sc.mode = CacheMode::none;

  ClusterParams cp = vmic::bench::das4(net::gigabit_ethernet());
  cp.nfs.rwsize = rwsize;
  cp.nfs.min_fetch = min_fetch;
  const auto r = run_scenario(cp, sc);
  std::printf("%16s%16.1f%16.1f\n", label, r.mean_boot,
              static_cast<double>(r.storage_payload_bytes) / 1048576.0 / 64);
}

}  // namespace

int main() {
  vmic::bench::header(
      "Ablation — NFS rwsize tuning (64 nodes, 1 GbE, plain QCOW2)",
      "Razavi & Kielmann, SC'13, §5 evaluation setup",
      "the 1 MiB default fetches far more than boot-time reads need: more "
      "traffic per VM and slower boots than the tuned 64 KiB rwsize");

  vmic::bench::row_header({"rwsize", "boot(s)", "MB/VM"});
  run_cfg("64KiB/4KiB", 64 * 1024, 4096);
  run_cfg("1MiB/64KiB", 1024 * 1024, 64 * 1024);
  run_cfg("1MiB/1MiB", 1024 * 1024, 1024 * 1024);
  return 0;
}
