// Image-update churn ablation: what incremental rebase is worth when the
// catalog publishes new base-image versions mid-run.
//
//   ./bench_update_churn [hours] [--json-out FILE] [--ungated]
//     (default: 0.5 simulated hours, ~8 publishes/hour, 10% of clusters
//      changed per version; --ungated skips the perf gates for sanitizer
//      runs where short horizons make the ratios meaningless)
//
// The same open-arrival workload runs twice through the same per-seed
// publish schedule: once with --update-policy invalidate (every warm
// cache of the old version is dropped and refills cold from the new
// base) and once with rebase (only the changed clusters cross the
// network; content-identical ones are patched in from the old cache file
// on local disk). Gates (exit 1 on failure, for CI):
//   * rebase post-publish storage-node bytes <= 75% of invalidate
//     (>= 25% reduction: the refill traffic a rebase exists to avoid);
//   * rebase p99 deploy latency no worse than invalidate + 2% (the
//     patch pass must not stall the boot path);
//   * no leaked VM slots in either run.

#include <string>

#include "bench_common.hpp"
#include "cloud/engine.hpp"

using namespace vmic;
using namespace vmic::cloud;

namespace {

CloudConfig churn_config(double hours, update::Policy policy) {
  CloudConfig cfg;
  cfg.seed = 7;
  cfg.horizon_s = hours * 3600.0;
  cfg.workload.mean_interarrival_s = 3600.0 / 300.0;
  cfg.workload.num_vmis = 4;
  // Small images keep the host-side publish cheap; the churn economics
  // (diff bytes vs refill bytes) are scale-free.
  cfg.profile.image_size = 256 * MiB;
  cfg.content_bytes = 32 * MiB;
  cfg.updates.enabled = true;
  cfg.updates.rate_per_hour = 8.0;
  cfg.updates.changed_frac = 0.10;
  cfg.updates.policy = policy;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  double hours = 0.5;
  std::string json_out;
  bool gated = true;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (a == "--ungated") {
      gated = false;
    } else if (!a.empty() && a[0] != '-') {
      hours = std::atof(a.c_str());
    } else {
      std::fprintf(stderr,
                   "usage: bench_update_churn [hours] [--json-out FILE] "
                   "[--ungated]\n");
      return 2;
    }
  }

  bench::header(
      "Incremental cache rebase vs invalidation under image-update churn",
      "Razavi & Kielmann, SC'13, cache maintenance on image updates (§5) "
      "extended to mid-run catalog publishes",
      "patching only the changed clusters keeps caches warm: post-publish "
      "storage-node bytes drop >= 25% at equal p99 deploy latency");

  const CloudResult inval =
      run_cloud(churn_config(hours, update::Policy::invalidate));
  const CloudResult rebase =
      run_cloud(churn_config(hours, update::Policy::rebase));

  bench::row_header({"mode", "arrivals", "completed", "publishes", "rebased",
                     "p99-deploy", "post-MiB"});
  for (const CloudResult* r : {&inval, &rebase}) {
    const char* tag = r == &inval ? "invalidate" : "rebase";
    std::printf("%16s%16d%16d%16d%16d%16.2f%16.1f\n", tag, r->arrivals,
                r->completed, r->updates_published, r->caches_rebased,
                r->deploy.p99,
                static_cast<double>(r->post_update_storage_bytes) /
                    static_cast<double>(MiB));
    if (r->leaked_slots != 0) {
      std::fprintf(stderr, "bench: %s leaked %d VM slot(s)\n", tag,
                   r->leaked_slots);
      return 1;
    }
    bench::export_metrics(r->metrics, std::string("update-churn-") + tag);
  }

  const double reduction =
      1.0 - static_cast<double>(rebase.post_update_storage_bytes) /
                static_cast<double>(inval.post_update_storage_bytes
                                        ? inval.post_update_storage_bytes
                                        : 1);
  std::printf("churn ablation: post-publish storage bytes %.1f -> %.1f MiB "
              "(-%.1f%%, gate >= 25%%), deploy p99 %.2f -> %.2f s "
              "(gate <= +2%%), %d rebased, %llu patched / %llu reused "
              "cluster(s)\n",
              static_cast<double>(inval.post_update_storage_bytes) /
                  static_cast<double>(MiB),
              static_cast<double>(rebase.post_update_storage_bytes) /
                  static_cast<double>(MiB),
              reduction * 100.0, inval.deploy.p99, rebase.deploy.p99,
              rebase.caches_rebased,
              static_cast<unsigned long long>(rebase.rebase_patched_clusters),
              static_cast<unsigned long long>(rebase.rebase_reused_clusters));

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"hours\": %.3f,\n"
        "  \"updates_published\": %d,\n"
        "  \"invalidate_post_update_bytes\": %llu,\n"
        "  \"rebase_post_update_bytes\": %llu,\n"
        "  \"post_update_reduction\": %.4f,\n"
        "  \"invalidate_deploy_p99\": %.4f,\n"
        "  \"rebase_deploy_p99\": %.4f,\n"
        "  \"caches_rebased\": %d,\n"
        "  \"update_invalidations\": %d,\n"
        "  \"rebase_patched_clusters\": %llu,\n"
        "  \"rebase_reused_clusters\": %llu\n"
        "}\n",
        hours, rebase.updates_published,
        static_cast<unsigned long long>(inval.post_update_storage_bytes),
        static_cast<unsigned long long>(rebase.post_update_storage_bytes),
        reduction, inval.deploy.p99, rebase.deploy.p99, rebase.caches_rebased,
        inval.update_invalidations,
        static_cast<unsigned long long>(rebase.rebase_patched_clusters),
        static_cast<unsigned long long>(rebase.rebase_reused_clusters));
    std::fclose(f);
  }

  if (!gated) return 0;
  if (rebase.updates_published == 0) {
    std::fprintf(stderr, "bench: no publish event fired in %.2f h\n", hours);
    return 1;
  }
  if (reduction < 0.25) {
    std::fprintf(stderr,
                 "bench: rebase cut post-publish storage bytes by only "
                 "%.1f%% (gate >= 25%%)\n",
                 reduction * 100.0);
    return 1;
  }
  if (rebase.deploy.p99 > inval.deploy.p99 * 1.02) {
    std::fprintf(stderr,
                 "bench: rebase p99 deploy regressed: %.2f s vs %.2f s "
                 "(gate <= +2%%)\n",
                 rebase.deploy.p99, inval.deploy.p99);
    return 1;
  }
  return 0;
}
