// Figure 10: the "final arrangement" — cold caches created in compute-node
// memory, cache cluster size 512 B. Booting time is flat for warm, cold
// and plain QCOW2 (cache creation is free); the warm cache's transferred
// size falls towards zero once the quota covers the boot working set,
// while cold and QCOW2 transfer the full working set every time.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

struct Point {
  double boot_s;
  double tx_mb;
};

Point run_point(CacheMode mode, CacheState state, std::uint64_t quota) {
  ScenarioConfig sc;
  sc.profile = boot::centos63();
  sc.num_vms = 1;
  sc.num_vmis = 1;
  sc.mode = mode;
  sc.state = state;
  sc.cache_cluster_bits = 9;
  sc.cache_quota = quota;
  sc.cold_cache_on_mem = true;
  const auto r =
      run_scenario(vmic::bench::das4(net::gigabit_ethernet(), 1), sc);
  return {r.mean_boot,
          static_cast<double>(r.storage_payload_bytes) / 1048576.0};
}

}  // namespace

int main() {
  vmic::bench::header(
      "Fig 10 — Final arrangement: cold cache on memory, 512 B clusters",
      "Razavi & Kielmann, SC'13, Figure 10",
      "boot times flat for all three; warm tx-size drops to ~0 past the "
      "~90 MB working set; cold/QCOW2 tx-size flat");

  const Point plain = run_point(CacheMode::none, CacheState::cold, 64 * MiB);

  vmic::bench::row_header({"quota(MB)", "warm-boot(s)", "cold-boot(s)",
                           "qcow2-boot(s)", "warm-tx(MB)", "cold-tx(MB)",
                           "qcow2-tx(MB)"});
  for (int q : {10, 20, 40, 60, 80, 100, 120, 140}) {
    const std::uint64_t quota = static_cast<std::uint64_t>(q) * MiB;
    const Point warm =
        run_point(CacheMode::compute_disk, CacheState::warm, quota);
    const Point cold =
        run_point(CacheMode::compute_disk, CacheState::cold, quota);
    std::printf("%16d%16.1f%16.1f%16.1f%16.1f%16.1f%16.1f\n", q,
                warm.boot_s, cold.boot_s, plain.boot_s, warm.tx_mb,
                cold.tx_mb, plain.tx_mb);
    std::fflush(stdout);
  }
  return 0;
}
