// Related-work comparison (§7.1.1): P2P distribution strategies vs the
// paper's on-demand + VMI-cache approach, one 10 GiB CentOS VMI, 1 GbE
// NICs everywhere.
//
//  * swarm        — BitTorrent-style full-image distribution [4, 18, 27]:
//                   "the main issue so far has been the considerable delay
//                   of startup time in order of tens of minutes" — the VM
//                   only boots once the whole image arrived;
//  * pipeline     — LANTorrent [17]: the storage node streams the complete
//                   image through a store-and-forward chain of nodes;
//  * vmtorrent    — Reich et al. [24]: boot immediately, demand-fetch
//                   missing chunks from the swarm with priority while a
//                   background stream fills the rest;
//  * on-demand / warm cache — the paper's baseline and contribution, for
//                   reference (shared NFS storage link).
#include "bench_common.hpp"
#include "boot/trace.hpp"
#include "boot/vm.hpp"
#include "io/mount_table.hpp"
#include "p2p/stream_backend.hpp"
#include "p2p/swarm.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"
#include "storage/disk.hpp"
#include "storage/sim_directory.hpp"

using namespace vmic;

namespace {

constexpr double kLocalBootSecs = 33.0;  // boot from a fully local image

double run_full_distribution(int peers, bool pipeline) {
  sim::SimEnv env;
  p2p::Swarm swarm{env, peers, 10 * GiB};
  if (pipeline) {
    sim::run_sync(env, swarm.run_pipeline());
  } else {
    for (int i = 0; i < peers; ++i) env.spawn(swarm.download_all(i));
    env.run();
  }
  return sim::to_seconds(env.now()) + kLocalBootSecs;
}

/// VMTorrent: all peers boot concurrently against streaming backends.
double run_vmtorrent(int peers) {
  sim::SimEnv env;
  p2p::P2pParams pp;
  pp.chunk_size = 1 * MiB;  // stream block size
  p2p::Swarm swarm{env, peers, 10 * GiB, pp};
  SparseBuffer content;  // image bytes (all zero; geometry matters)

  class P2pDir final : public io::ImageDirectory {
   public:
    P2pDir(p2p::Swarm& s, const SparseBuffer& c, int peer)
        : swarm_(s), content_(c), peer_(peer) {}
    Result<io::BackendPtr> open_file(const std::string& name,
                                     bool) override {
      if (name != "base") return Errc::not_found;
      auto be = std::make_unique<p2p::P2pStreamBackend>(swarm_, peer_,
                                                        content_);
      be->start_background_stream();
      return io::BackendPtr{std::move(be)};
    }
    Result<io::BackendPtr> create_file(const std::string&) override {
      return Errc::read_only;
    }
    [[nodiscard]] bool exists(const std::string& name) const override {
      return name == "base";
    }

   private:
    p2p::Swarm& swarm_;
    const SparseBuffer& content_;
    int peer_;
  };

  struct PerPeer {
    std::unique_ptr<P2pDir> p2p_dir;
    std::unique_ptr<storage::MemMedium> mem;
    std::unique_ptr<storage::SimDirectory> local;
    std::unique_ptr<io::MountTable> fs;
    double boot_secs = 0;
  };
  std::vector<PerPeer> ps(static_cast<std::size_t>(peers));
  const auto trace = boot::generate_boot_trace(boot::centos63());

  auto boot_one = [&](int i) -> sim::Task<void> {
    PerPeer& pp_ = ps[static_cast<std::size_t>(i)];
    const sim::SimTime t0 = env.now();
    auto r = co_await qcow2::create_cow_image(
        *pp_.fs, "local/vm.cow", "p2p/base",
        {.cluster_bits = 16, .virtual_size = 10 * GiB});
    if (!r.ok()) co_return;
    auto dev = co_await qcow2::open_image(*pp_.fs, "local/vm.cow");
    if (!dev.ok()) co_return;
    (void)co_await boot::boot_vm(env, **dev, trace);
    (void)co_await (*dev)->close();
    pp_.boot_secs = sim::to_seconds(env.now() - t0);
  };

  for (int i = 0; i < peers; ++i) {
    PerPeer& pp_ = ps[static_cast<std::size_t>(i)];
    pp_.p2p_dir = std::make_unique<P2pDir>(swarm, content, i);
    pp_.mem = std::make_unique<storage::MemMedium>(env);
    pp_.local = std::make_unique<storage::SimDirectory>(*pp_.mem);
    pp_.fs = std::make_unique<io::MountTable>();
    pp_.fs->mount("p2p", pp_.p2p_dir.get());
    pp_.fs->mount("local", pp_.local.get());
    env.spawn(boot_one(i));
  }
  env.run();  // runs until the background streams complete, too
  double sum = 0;
  for (const auto& p : ps) sum += p.boot_secs;
  return sum / peers;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  int max_nodes = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (a == "--max-nodes" && i + 1 < argc) {
      max_nodes = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_related_p2p [--json-out FILE]"
                   " [--max-nodes N]\n");
      return 2;
    }
  }

  bench::header(
      "Related work (§7.1.1) — P2P distribution vs VMI caches (1 GbE)",
      "Razavi & Kielmann, SC'13, §7.1.1",
      "full-image P2P costs minutes (boot only after arrival); VMTorrent "
      "boots sooner but still far above warm caches; warm caches stay at "
      "the single-VM boot time");

  bench::row_header({"# nodes", "swarm(s)", "pipeline(s)", "vmtorrent(s)",
                     "on-demand(s)", "warm-cache(s)"});
  std::string json_rows;
  for (int n : {4, 16, 64}) {
    if (n > max_nodes) continue;
    const double swarm = run_full_distribution(n, /*pipeline=*/false);
    const double pipe = run_full_distribution(n, /*pipeline=*/true);
    const double vmt = run_vmtorrent(n);

    cluster::ScenarioConfig sc;
    sc.profile = boot::centos63();
    sc.num_vms = n;
    sc.num_vmis = 1;
    sc.mode = cluster::CacheMode::none;
    const auto ondemand =
        run_scenario(bench::das4(net::gigabit_ethernet(), n), sc);
    sc.mode = cluster::CacheMode::compute_disk;
    sc.state = cluster::CacheState::warm;
    sc.cache_quota = 250 * MiB;
    sc.cache_cluster_bits = 9;
    const auto warm =
        run_scenario(bench::das4(net::gigabit_ethernet(), n), sc);

    std::printf("%16d%16.1f%16.1f%16.1f%16.1f%16.1f\n", n, swarm, pipe, vmt,
                ondemand.mean_boot, warm.mean_boot);
    std::fflush(stdout);

    char row[256];
    std::snprintf(row, sizeof row,
                  "%s    {\"nodes\": %d, \"swarm_s\": %.1f, "
                  "\"pipeline_s\": %.1f, \"vmtorrent_s\": %.1f, "
                  "\"ondemand_s\": %.1f, \"warm_cache_s\": %.1f}",
                  json_rows.empty() ? "" : ",\n", n, swarm, pipe, vmt,
                  ondemand.mean_boot, warm.mean_boot);
    json_rows += row;

    // Sanity gate on the §7.1.1 qualitative ordering: full-image P2P
    // must cost more than demand-paged VMTorrent, which must cost more
    // than the paper's warm caches.
    if (!(swarm > vmt && vmt > warm.mean_boot)) {
      std::fprintf(stderr,
                   "bench: §7.1.1 ordering violated at n=%d "
                   "(swarm %.1f, vmtorrent %.1f, warm %.1f)\n",
                   n, swarm, vmt, warm.mean_boot);
      return 1;
    }
  }

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"rows\": [\n%s\n  ]\n}\n", json_rows.c_str());
    std::fclose(f);
  }
  return 0;
}
