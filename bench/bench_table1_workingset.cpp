// Table 1: read working set size of various VMIs for booting the VM —
// the amount of *unique* data read from the base image during boot.
// Also reproduces the §7.3 observation that the (CentOS) VM waits only
// ~17 % of its boot time on reads.
#include "bench_common.hpp"
#include "boot/trace.hpp"
#include "util/interval_set.hpp"

using namespace vmic;
using namespace vmic::cluster;

int main() {
  bench::header(
      "Table 1 — Read working set size of various VMIs for booting",
      "Razavi & Kielmann, SC'13, Table 1 (+ §7.3 read-wait note)",
      "CentOS 6.3 ~85.2 MB, Debian 6.0.7 ~24.9 MB, Windows Server 2012 "
      "~195.8 MB of unique reads");

  bench::row_header({"VMI", "unique-reads", "total-reads", "read-ops"});
  for (const auto& p :
       {boot::centos63(), boot::debian607(), boot::windows2012()}) {
    const auto t = boot::generate_boot_trace(p);
    // Recount the unique bytes from the ops themselves (the same way an
    // instrumented block driver would measure it).
    IntervalSet unique;
    std::uint64_t read_ops = 0;
    for (const auto& op : t.ops) {
      if (op.kind != boot::BootOp::Kind::read) continue;
      unique.insert(op.offset, op.offset + op.length);
      ++read_ops;
    }
    std::printf("%24s %9.1f MB %9.1f MB %11llu\n", p.name.c_str(),
                static_cast<double>(unique.total()) / 1048576.0,
                static_cast<double>(t.total_read_bytes) / 1048576.0,
                static_cast<unsigned long long>(read_ops));
  }

  // §7.3: "the VM only waits 17% of its total boot time on reads" —
  // measured on a single CentOS boot over 1 GbE (plain QCOW2).
  ScenarioConfig sc;
  sc.profile = boot::centos63();
  sc.num_vms = 1;
  sc.num_vmis = 1;
  sc.mode = CacheMode::none;
  const auto r = run_scenario(bench::das4(net::gigabit_ethernet(), 1), sc);
  const auto& b = r.vms[0].boot;
  std::printf("\nCentOS single-VM boot over 1GbE: %.1f s, read-wait %.1f s "
              "(%.0f%% of boot; paper reports ~17%%)\n",
              b.boot_seconds, b.read_wait_seconds,
              100.0 * b.read_wait_seconds / b.boot_seconds);
  return 0;
}
