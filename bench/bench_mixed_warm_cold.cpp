// §5.3.1's mixed scenario, which the paper discusses but leaves
// unquantified: "Depending on the cloud node scheduler, it can be that
// some of the nodes start from the cold cache and some from a warm cache.
// ... Regardless of the node allocations, the nodes with a warm cache
// contribute to reducing the network load on the storage node(s)."
//
// 64 nodes, one VMI, 1 GbE; sweep the fraction of warm-cache nodes.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

int main() {
  bench::header(
      "Mixed warm/cold nodes (64 nodes, 1 VMI, 1 GbE)",
      "Razavi & Kielmann, SC'13, §5.3.1 (qualitative discussion)",
      "warm VMs boot at the single-VM time; cold VMs speed up too as the "
      "warm fraction grows (less contention on the storage link)");

  bench::row_header({"warm-frac", "warm-mean(s)", "cold-mean(s)",
                     "overall(s)", "traffic(GB)"});
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ScenarioConfig sc;
    sc.profile = boot::centos63();
    sc.num_vms = 64;
    sc.num_vmis = 1;
    sc.mode = CacheMode::compute_disk;
    sc.state = CacheState::warm;
    sc.warm_node_fraction = frac;
    sc.cache_quota = 250 * MiB;
    sc.cache_cluster_bits = 9;

    const auto r = run_scenario(bench::das4(net::gigabit_ethernet()), sc);
    OnlineStats warm, cold;
    for (const auto& vm : r.vms) {
      (vm.warm ? warm : cold).add(vm.boot.boot_seconds);
    }
    std::printf("%15.0f%%%16.1f%16.1f%16.1f%16.2f\n", frac * 100,
                warm.count() ? warm.mean() : 0.0,
                cold.count() ? cold.mean() : 0.0, r.mean_boot,
                static_cast<double>(r.storage_payload_bytes) / 1e9);
    std::fflush(stdout);
  }
  return 0;
}
