// §6: with a fast network, a VM boots about equally fast from a warm
// cache on the compute node's disk as from one in the storage node's
// memory — the paper measured at most a 1 % difference, which justifies
// Algorithm 1's preference order being driven by load, not raw latency.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

int main() {
  bench::header(
      "§6 — Warm-cache placement: compute-node disk vs storage memory",
      "Razavi & Kielmann, SC'13, Section 6 (placement discussion)",
      "over InfiniBand the two placements differ by ~1% in boot time");

  ScenarioConfig sc;
  sc.profile = boot::centos63();
  sc.num_vms = 1;
  sc.num_vmis = 1;
  sc.state = CacheState::warm;
  sc.cache_quota = 250 * MiB;
  sc.cache_cluster_bits = 9;

  bench::row_header({"network", "disk-cache(s)", "mem-cache(s)", "delta(%)"});
  for (const auto& netp : {net::infiniband_qdr(), net::gigabit_ethernet()}) {
    sc.mode = CacheMode::compute_disk;
    const auto local = run_scenario(bench::das4(netp, 1), sc);
    sc.mode = CacheMode::storage_mem;
    const auto remote = run_scenario(bench::das4(netp, 1), sc);
    const double delta =
        100.0 * (remote.mean_boot - local.mean_boot) / local.mean_boot;
    std::printf("%16s%16.2f%16.2f%16.2f\n", netp.name.c_str(),
                local.mean_boot, remote.mean_boot, delta);
  }
  return 0;
}
