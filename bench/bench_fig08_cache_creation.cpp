// Figure 8: cache-creation overhead with increasing cache quota (one
// storage node, one compute node, 1 GbE, default 64 KiB clusters).
// Warm caches boot like plain QCOW2; a cold cache created *on disk* is
// much slower (synchronous cache writes on the boot's critical path);
// a cold cache created *in memory* is nearly free.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

int main() {
  bench::header(
      "Fig 8 — Cache creation overhead vs cache quota (1 node, 1 GbE)",
      "Razavi & Kielmann, SC'13, Figure 8",
      "warm ~= QCOW2 at every quota; cold-on-disk much slower, growing "
      "with quota; cold-on-mem ~= QCOW2");

  ScenarioConfig base;
  base.profile = boot::centos63();
  base.num_vms = 1;
  base.num_vmis = 1;
  base.cache_cluster_bits = 16;  // Fig 8 predates the 512 B tuning (§5.1)

  ScenarioConfig plain = base;
  plain.mode = CacheMode::none;
  const auto qcow2_ref =
      run_scenario(bench::das4(net::gigabit_ethernet(), 1), plain);

  bench::row_header({"quota(MB)", "warm(s)", "cold-mem(s)", "cold-disk(s)",
                     "qcow2(s)"});
  for (int q : {10, 20, 40, 60, 80, 100, 120, 140}) {
    ScenarioConfig sc = base;
    sc.cache_quota = static_cast<std::uint64_t>(q) * MiB;
    sc.mode = CacheMode::compute_disk;

    sc.state = CacheState::warm;
    const auto warm =
        run_scenario(bench::das4(net::gigabit_ethernet(), 1), sc);

    sc.state = CacheState::cold;
    sc.cold_cache_on_mem = true;
    const auto cold_mem =
        run_scenario(bench::das4(net::gigabit_ethernet(), 1), sc);

    sc.cold_cache_on_mem = false;
    const auto cold_disk =
        run_scenario(bench::das4(net::gigabit_ethernet(), 1), sc);

    std::printf("%16d%16.1f%16.1f%16.1f%16.1f\n", q, warm.mean_boot,
                cold_mem.mean_boot, cold_disk.mean_boot,
                qcow2_ref.mean_boot);
    std::fflush(stdout);
  }
  return 0;
}
