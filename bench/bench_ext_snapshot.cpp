// Extension (§8 future work): "Another interesting line of work is to
// apply our caching scheme to memory snapshots of already booted virtual
// machines, starting from which instead of the VM image could improve
// the VM starting time even further."
//
// Deploys 64 VMs either by booting the OS image or by resuming a memory
// snapshot, each with and without warm VMI caches — the snapshot file is
// just another image in the chain, so the whole mechanism carries over.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

double run_cfg(const boot::OsProfile& prof, CacheMode mode,
               CacheState state) {
  ScenarioConfig sc;
  sc.profile = prof;
  sc.num_vms = 64;
  sc.num_vmis = 1;
  sc.mode = mode;
  sc.state = state;
  sc.cache_quota = 400 * MiB;
  sc.cache_cluster_bits = 9;
  return run_scenario(vmic::bench::das4(net::gigabit_ethernet()), sc)
      .mean_boot;
}

}  // namespace

int main() {
  vmic::bench::header(
      "Extension — caching memory snapshots (§8 future work), 64 nodes, "
      "1 GbE",
      "Razavi & Kielmann, SC'13, §8 (conclusions / future work)",
      "resuming from a snapshot through a warm VMI cache starts 64 VMs in "
      "seconds — far below even the warm-cache cold-boot time");

  const auto os = boot::centos63();
  const auto snap = boot::snapshot_restore_profile(os);

  vmic::bench::row_header({"strategy", "mean-start(s)"});
  std::printf("%32s%16.1f\n", "boot, plain QCOW2",
              run_cfg(os, CacheMode::none, CacheState::cold));
  std::printf("%32s%16.1f\n", "boot, warm cache",
              run_cfg(os, CacheMode::compute_disk, CacheState::warm));
  std::printf("%32s%16.1f\n", "resume, plain QCOW2",
              run_cfg(snap, CacheMode::none, CacheState::cold));
  std::printf("%32s%16.1f\n", "resume, cold cache",
              run_cfg(snap, CacheMode::compute_disk, CacheState::cold));
  std::printf("%32s%16.1f\n", "resume, warm cache",
              run_cfg(snap, CacheMode::compute_disk, CacheState::warm));
  return 0;
}
