// Content-addressed dedup + compressed clusters over a sibling catalog:
// the §7.3 / §8 extension ("VMIs created from the same operating system
// distribution share content") measured end-to-end in the cloud engine.
//
//   ./bench_dedup_catalog [hours] [--json-out FILE]
//     (default: 0.5 simulated hours)
//
// An 8-image catalog of two sibling groups (75% shared content inside a
// group), Zipf 1.1 popularity, 4 KiB cache clusters. The same workload
// runs once with every cold fill funnelling through the storage node and
// once with the fingerprint index + compressed cache clusters on. Gates
// (exit 1 on failure, for CI):
//   * dedup+compress storage-node bytes per unique catalog byte <= 70%
//     of the baseline (>= 30% reduction — the unique-byte denominator is
//     identical in both runs, so the gate compares raw served bytes);
//   * dedup+compress p99 boot latency no worse than baseline + 2%;
//   * no leaked VM slots in either run.

#include <string>

#include "bench_common.hpp"
#include "cloud/engine.hpp"

using namespace vmic;
using namespace vmic::cloud;

namespace {

CloudConfig catalog_config(double hours, bool dedup_on) {
  CloudConfig cfg;
  cfg.seed = 42;
  cfg.horizon_s = hours * 3600.0;
  cfg.workload.num_vmis = 8;
  cfg.workload.zipf_exponent = 1.1;
  cfg.workload.mean_interarrival_s = 3600.0 / 400.0;
  cfg.cache_cluster_bits = 12;
  cfg.sibling_group_size = 4;
  cfg.shared_fraction = 0.75;
  // Small, fully-contented images: every cluster carries real pattern
  // bytes, so dedup earns its reduction from sibling overlap and
  // compression, never from an all-zero freebie.
  cfg.profile.image_size = 64 * MiB;
  cfg.profile.unique_read_bytes = 32 * MiB;
  cfg.content_bytes = cfg.profile.image_size;
  cfg.cache_quota = 32 * MiB;
  cfg.dedup = dedup_on;
  cfg.cache_compress = dedup_on;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  double hours = 0.5;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (!a.empty() && a[0] != '-') {
      hours = std::atof(a.c_str());
    } else {
      std::fprintf(stderr,
                   "usage: bench_dedup_catalog [hours] [--json-out FILE]\n");
      return 2;
    }
  }

  bench::header(
      "Content-addressed dedup + compressed clusters, sibling catalog",
      "Razavi & Kielmann, SC'13, §7.3 content-based block caching / §8",
      "sibling fills come out of the fingerprint index and compressed "
      "caches instead of NFS: storage-node bytes drop >= 30% at equal "
      "p99 boot latency");

  const CloudResult off = run_cloud(catalog_config(hours, false));
  const CloudResult on = run_cloud(catalog_config(hours, true));

  bench::row_header({"mode", "arrivals", "completed", "hit-ratio", "p99-boot",
                     "stor-MiB", "dedup-hits"});
  for (const CloudResult* r : {&off, &on}) {
    const char* tag = r == &off ? "dedup-off" : "dedup-on";
    std::printf("%16s%16d%16d%16.3f%16.2f%16.1f%16llu\n", tag, r->arrivals,
                r->completed, r->cache_hit_ratio, r->boot.p99,
                static_cast<double>(r->storage_payload_bytes) /
                    static_cast<double>(MiB),
                static_cast<unsigned long long>(r->dedup_local_hits +
                                                r->dedup_zero_fills +
                                                r->dedup_peer_hits));
    if (r->leaked_slots != 0) {
      std::fprintf(stderr, "bench: %s leaked %d VM slot(s)\n", tag,
                   r->leaked_slots);
      return 1;
    }
    bench::export_metrics(r->metrics, std::string("dedup-catalog-") + tag);
  }

  const double reduction =
      1.0 - static_cast<double>(on.storage_payload_bytes) /
                static_cast<double>(off.storage_payload_bytes
                                        ? off.storage_payload_bytes
                                        : 1);
  std::printf("dedup ablation: storage-node bytes %.1f -> %.1f MiB "
              "(-%.1f%%, gate >= 30%%), boot p99 %.2f -> %.2f s "
              "(gate <= +2%%), %llu local / %llu zero / %llu peer hit(s), "
              "%llu fallback(s)\n",
              static_cast<double>(off.storage_payload_bytes) /
                  static_cast<double>(MiB),
              static_cast<double>(on.storage_payload_bytes) /
                  static_cast<double>(MiB),
              reduction * 100.0, off.boot.p99, on.boot.p99,
              static_cast<unsigned long long>(on.dedup_local_hits),
              static_cast<unsigned long long>(on.dedup_zero_fills),
              static_cast<unsigned long long>(on.dedup_peer_hits),
              static_cast<unsigned long long>(on.dedup_fallbacks));

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"hours\": %.3f,\n"
        "  \"off_storage_bytes\": %llu,\n"
        "  \"on_storage_bytes\": %llu,\n"
        "  \"storage_reduction\": %.4f,\n"
        "  \"off_boot_p99\": %.4f,\n"
        "  \"on_boot_p99\": %.4f,\n"
        "  \"dedup_local_hits\": %llu,\n"
        "  \"dedup_zero_fills\": %llu,\n"
        "  \"dedup_peer_hits\": %llu,\n"
        "  \"dedup_fallbacks\": %llu,\n"
        "  \"dedup_bytes_served\": %llu\n"
        "}\n",
        hours, static_cast<unsigned long long>(off.storage_payload_bytes),
        static_cast<unsigned long long>(on.storage_payload_bytes), reduction,
        off.boot.p99, on.boot.p99,
        static_cast<unsigned long long>(on.dedup_local_hits),
        static_cast<unsigned long long>(on.dedup_zero_fills),
        static_cast<unsigned long long>(on.dedup_peer_hits),
        static_cast<unsigned long long>(on.dedup_fallbacks),
        static_cast<unsigned long long>(on.dedup_bytes_served));
    std::fclose(f);
  }

  if (reduction < 0.30) {
    std::fprintf(stderr,
                 "bench: dedup+compress cut storage bytes by only %.1f%% "
                 "(gate >= 30%%)\n",
                 reduction * 100.0);
    return 1;
  }
  if (on.boot.p99 > off.boot.p99 * 1.02) {
    std::fprintf(stderr,
                 "bench: dedup-on p99 boot regressed: %.2f s vs %.2f s "
                 "(gate <= +2%%)\n",
                 on.boot.p99, off.boot.p99);
    return 1;
  }
  return 0;
}
