// bench_engine_throughput — the million-VM sim core, measured. Two parts:
//
//  1. Scheduler microbench: the same timer churn (a large pending
//     population with steady fire/reschedule plus far-future
//     cancellations, the shape a 10k-node cloud run produces) is driven
//     through both SimEnv queue implementations — the calendar queue and
//     the legacy binary-heap ablation — and events/sec are compared.
//     The calendar queue's O(1) amortized insert/pop/cancel must beat
//     the heap's O(log n) by at least --min-speedup (CI gates 3x).
//
//  2. Engine workload: a full run_cloud() at --nodes compute nodes and
//     roughly --sessions arrivals (the CloudStress shape: tiny per-VM
//     weight so the run exercises the event core, the placement index
//     and the pooled allocators, not simulated disk bandwidth). Reports
//     end-to-end events/sec from CloudResult::sim_events and the
//     process peak RSS, gated by --min-events-per-sec / --max-rss-mib.
//
// Exits non-zero when any requested gate fails.
//
//   bench_engine_throughput [--nodes N] [--sessions N]
//                           [--micro-pending N] [--micro-fires N]
//                           [--min-speedup X] [--min-events-per-sec X]
//                           [--max-rss-mib X] [--json-out FILE]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "boot/profile.hpp"
#include "cloud/engine.hpp"
#include "obs/metrics.hpp"
#include "sim/env.hpp"
#include "util/units.hpp"

namespace {

using namespace vmic;

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Peak resident set in MiB (0 when the platform has no getrusage).
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0;
#endif
}

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct MicroResult {
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
};

/// Drive one queue implementation through the synthetic churn. The rng
/// stream is identical across implementations, so both fire the exact
/// same event population.
MicroResult run_micro(sim::SimEnv::QueueImpl impl, std::size_t pending,
                      std::uint64_t fires) {
  constexpr std::uint64_t kHorizon = 1 << 16;
  constexpr std::size_t kDoomedRing = 64;

  sim::SimEnv env(impl);
  std::uint64_t rng = 0x5eed;
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::vector<sim::SimEnv::TimerId> doomed(kDoomedRing, 0);
  std::size_t doomed_at = 0;
  std::uint64_t plants = 0;

  std::function<void()> on_fire = [&] {
    ++fired;
    if (scheduled < fires) {
      ++scheduled;
      env.call_at(env.now() + 1 + splitmix(rng) % kHorizon, on_fire);
    }
    // Cancellation churn: every 4th fire plants a far-future timer that
    // is guaranteed still pending when it is cancelled 64 plants later.
    // The calendar unlinks in place; the heap accretes tombstones.
    if ((fired & 3u) == 0) {
      if (plants++ >= kDoomedRing) env.cancel(doomed[doomed_at]);
      doomed[doomed_at] = env.call_at(
          env.now() + 2 * kHorizon + splitmix(rng) % kHorizon, [] {});
      doomed_at = (doomed_at + 1) % kDoomedRing;
    }
  };

  const double t0 = now_s();
  for (std::size_t i = 0; i < pending; ++i) {
    ++scheduled;
    env.call_at(1 + splitmix(rng) % kHorizon, on_fire);
  }
  env.run();
  const double wall = now_s() - t0;

  MicroResult r;
  r.events = env.events_processed();
  r.wall_s = wall;
  r.events_per_sec = wall > 0 ? static_cast<double>(r.events) / wall : 0;
  return r;
}

struct EngineResult {
  int arrivals = 0;
  int completed = 0;
  std::uint64_t sim_events = 0;
  double sim_seconds = 0;
  double wall_s = 0;
  double events_per_sec = 0;
};

/// The CloudStress shape: per-VM weight shrunk so fleet size and session
/// count dominate, i.e. the bench measures the event core and indexes.
EngineResult run_engine(int nodes, int sessions) {
  cloud::CloudConfig cfg;
  cfg.seed = 42;
  cfg.cluster.compute_nodes = nodes;
  cfg.cluster.node_cache_capacity = 8 * MiB;
  cfg.vm_slots_per_node = 4;
  boot::OsProfile p = boot::centos63();
  p.image_size = 1 * MiB;
  p.unique_read_bytes = 16 * KiB;
  p.cpu_seconds = 0.05;
  p.write_bytes = 4 * KiB;
  cfg.profile = p;
  cfg.cache_quota = 2 * MiB;
  cfg.cache_cluster_bits = 12;
  cfg.workload.num_vmis = 16;
  cfg.workload.mean_interarrival_s = 0.1;
  cfg.workload.min_lifetime_s = 20.0;
  cfg.workload.mean_extra_lifetime_s = 40.0;
  cfg.horizon_s = 0.1 * sessions;

  const double t0 = now_s();
  const cloud::CloudResult res = cloud::run_cloud(cfg);
  const double wall = now_s() - t0;

  EngineResult r;
  r.arrivals = res.arrivals;
  r.completed = res.completed;
  r.sim_events = res.sim_events;
  r.sim_seconds = res.sim_seconds;
  r.wall_s = wall;
  r.events_per_sec =
      wall > 0 ? static_cast<double>(res.sim_events) / wall : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 10000;
  int sessions = 100000;
  std::size_t micro_pending = 1u << 21;
  std::uint64_t micro_fires = 1u << 22;
  double min_speedup = 0;
  double min_events_per_sec = 0;
  double max_rss_mib = 0;
  std::string json_out;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--nodes") nodes = std::atoi(next());
    else if (a == "--sessions") sessions = std::atoi(next());
    else if (a == "--micro-pending") micro_pending = std::strtoull(next(), nullptr, 10);
    else if (a == "--micro-fires") micro_fires = std::strtoull(next(), nullptr, 10);
    else if (a == "--min-speedup") min_speedup = std::atof(next());
    else if (a == "--min-events-per-sec") min_events_per_sec = std::atof(next());
    else if (a == "--max-rss-mib") max_rss_mib = std::atof(next());
    else if (a == "--json-out") json_out = next();
    else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }

  std::printf("== scheduler micro: %zu pending, %llu fires ==\n",
              micro_pending,
              static_cast<unsigned long long>(micro_fires));
  const MicroResult cal =
      run_micro(sim::SimEnv::QueueImpl::calendar, micro_pending, micro_fires);
  const MicroResult heap =
      run_micro(sim::SimEnv::QueueImpl::heap, micro_pending, micro_fires);
  if (cal.events != heap.events) {
    std::fprintf(stderr,
                 "impl divergence: calendar fired %llu, heap fired %llu\n",
                 static_cast<unsigned long long>(cal.events),
                 static_cast<unsigned long long>(heap.events));
    return 1;
  }
  const double speedup =
      heap.events_per_sec > 0 ? cal.events_per_sec / heap.events_per_sec : 0;
  std::printf("  calendar: %10.0f events/s  (%.2fs, %llu events)\n",
              cal.events_per_sec, cal.wall_s,
              static_cast<unsigned long long>(cal.events));
  std::printf("  heap:     %10.0f events/s  (%.2fs)\n", heap.events_per_sec,
              heap.wall_s);
  std::printf("  speedup:  %.2fx\n", speedup);

  std::printf("== engine: %d nodes, ~%d sessions ==\n", nodes, sessions);
  const EngineResult eng = run_engine(nodes, sessions);
  const double rss = peak_rss_mib();
  std::printf(
      "  arrivals=%d completed=%d sim_events=%llu sim_s=%.0f wall=%.2fs\n",
      eng.arrivals, eng.completed,
      static_cast<unsigned long long>(eng.sim_events), eng.sim_seconds,
      eng.wall_s);
  std::printf("  engine:   %10.0f events/s   peak_rss=%.0f MiB\n",
              eng.events_per_sec, rss);

  bool pass = true;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GATE FAILED: %s\n", what);
      pass = false;
    }
  };
  if (min_speedup > 0) gate(speedup >= min_speedup, "calendar-vs-heap speedup");
  if (min_events_per_sec > 0) {
    gate(eng.events_per_sec >= min_events_per_sec, "engine events/sec floor");
  }
  if (max_rss_mib > 0 && rss > 0) gate(rss <= max_rss_mib, "peak RSS ceiling");

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"scheduler_micro\": {\n"
                 "    \"pending\": %zu,\n"
                 "    \"events\": %llu,\n"
                 "    \"calendar_events_per_sec\": %.1f,\n"
                 "    \"heap_events_per_sec\": %.1f,\n"
                 "    \"speedup\": %.3f\n"
                 "  },\n"
                 "  \"engine\": {\n"
                 "    \"nodes\": %d,\n"
                 "    \"sessions\": %d,\n"
                 "    \"arrivals\": %d,\n"
                 "    \"completed\": %d,\n"
                 "    \"sim_events\": %llu,\n"
                 "    \"sim_seconds\": %.1f,\n"
                 "    \"wall_s\": %.3f,\n"
                 "    \"events_per_sec\": %.1f,\n"
                 "    \"peak_rss_mib\": %.1f\n"
                 "  },\n"
                 "  \"gate\": {\n"
                 "    \"min_speedup\": %.2f,\n"
                 "    \"min_events_per_sec\": %.1f,\n"
                 "    \"max_rss_mib\": %.1f,\n"
                 "    \"pass\": %s\n"
                 "  }\n"
                 "}\n",
                 micro_pending,
                 static_cast<unsigned long long>(cal.events),
                 cal.events_per_sec, heap.events_per_sec, speedup, nodes,
                 sessions, eng.arrivals, eng.completed,
                 static_cast<unsigned long long>(eng.sim_events),
                 eng.sim_seconds, eng.wall_s, eng.events_per_sec, rss,
                 min_speedup, min_events_per_sec, max_rss_mib,
                 pass ? "true" : "false");
    std::fclose(f);
  }

  return pass ? 0 : 1;
}
