// Figure 3: booting time of 64 CentOS VMs on 64 compute nodes, scaling
// the number of distinct VMIs (64 identical-but-independent base-image
// copies at most). Plain QCOW2 over NFS. The storage node's *disk*
// becomes the bottleneck: booting time rises roughly linearly with the
// number of VMIs, on both networks.
#include "bench_common.hpp"

using namespace vmic;
using namespace vmic::cluster;

int main() {
  bench::header(
      "Fig 3 — Scaling the number of VMIs (plain QCOW2, 64 nodes)",
      "Razavi & Kielmann, SC'13, Figure 3",
      "booting time rises ~linearly with #VMIs on BOTH networks (storage "
      "disk queueing); the two curves nearly coincide at high VMI counts");

  bench::row_header(
      {"# VMIs", "QCOW2-1GbE(s)", "QCOW2-32GbIB(s)", "disk-read(GB)"});
  for (int v : bench::paper_axis()) {
    ScenarioConfig sc;
    sc.profile = boot::centos63();
    sc.num_vms = 64;
    sc.num_vmis = v;
    sc.mode = CacheMode::none;
    // Fresh, independent image copies: their contents are not resident in
    // the storage node's page cache.
    sc.storage_cache_prewarmed = false;

    const auto ge = run_scenario(bench::das4(net::gigabit_ethernet()), sc);
    const auto ib = run_scenario(bench::das4(net::infiniband_qdr()), sc);
    std::printf("%16d%16.1f%16.1f%16.2f\n", v, ge.mean_boot, ib.mean_boot,
                static_cast<double>(ib.storage_disk_bytes_read) / 1e9);
    std::fflush(stdout);
  }
  return 0;
}
