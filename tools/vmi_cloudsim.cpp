// vmi-cloudsim — run the long-running cloud workload engine from the
// command line: an open VM arrival stream against a finite cluster, with
// cache-aware scheduling, node crashes, storage outages, and SLO output.
//
//   vmi-cloudsim [options]
//     --hours H          simulated horizon          (default 2)
//     --seed N           run seed                   (default 7)
//     --nodes N          compute nodes              (default 8)
//     --slots N          VM slots per node          (default 4)
//     --vmis N           distinct base images       (default 6)
//     --rate R           arrivals per hour          (default 80)
//     --process poisson|diurnal|flash               (default poisson)
//     --zipf S           VMI popularity exponent    (default 1.0)
//     --policy packing|striping|load                (default striping)
//     --no-cache-aware   disable warm-cache-first scheduling
//     --quota MiB        cache quota per VMI        (default 48)
//     --cache-cap MiB    per-node cache budget      (default 128)
//     --os centos|debian|windows|scaled             (default scaled)
//     --attempts N       max deployment attempts    (default 4)
//     --backoff S        first retry backoff        (default 5)
//     --fail-nodes N     inject N node crashes      (default 0)
//     --outages N        inject N storage outages   (default 0)
//     --no-salvage       invalidate all caches on crash instead of
//                        repairing + re-adopting clean ones on recovery
//     --peer on|off      peer cache tier: nodes serve each other's
//                        copy-on-read fills, NFS only on miss (default off)
//     --dedup on|off     content-addressed dedup in the cache-fill path:
//                        fills whose content sits in a sibling image's
//                        cache are served locally (or peer-fetched by
//                        fingerprint with --peer on)        (default off)
//     --compress on|off  qcow2 compressed clusters for cache fills
//                        (no-op below 1 KiB cache clusters) (default off)
//     --cluster-bits N   cache image cluster size = 2^N     (default 9)
//     --siblings N       sibling content model: groups of N images share
//                        --shared-frac of their cluster content (default 0)
//     --shared-frac F    shared fraction within a group     (default 0.75)
//     --content-mib M    generated content per image, MiB   (default whole)
//     --amplitude F      diurnal modulation depth (--process diurnal);
//                        troughs clamp at zero when F > 1   (default 0.6)
//     --manifest on|off  durable per-node cache manifests: restarts and
//                        drains re-adopt verified caches instead of
//                        re-warming cold                    (default off)
//     --updates on|off   image-update churn: a deterministic per-seed
//                        schedule publishes new base-image versions
//                        mid-run; warm caches of the old version are
//                        invalidated or incrementally rebased (default off)
//     --update-policy invalidate|rebase|auto   stale-cache handling on a
//                        version bump; auto rebases when --update-frac is
//                        at most the rebase threshold       (default auto)
//     --update-rate R    publish events per hour            (default 2)
//     --update-frac F    fraction of clusters changed per version,
//                        in (0, 1]                          (default 0.1)
//     --restart-at H     restart the whole cloud H simulated hours in
//                        (repeatable)
//     --restart-down S   restart downtime, seconds          (default 30)
//     --drain N          planned drain of node N mid-run    (default none)
//     --drain-at H       drain start, simulated hours       (default 0.5)
//     --drain-down S     drain downtime, seconds            (default 60)
//     --slo-strict       exit non-zero on any SLO violation (aborted or
//                        rejected arrivals, leaked slots, or --slo-p99
//                        exceeded) so CI can gate on the exit code
//     --slo-p99 S        deploy p99 bound for --slo-strict  (default off)
//     --trace FILE       replay a request trace CSV instead of generating
//     --trace-out FILE   write the generated workload as CSV and exit 0
//     --metrics-out F    write the metrics snapshot to F
//                        (.json => JSON, anything else => text exposition)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cloud/engine.hpp"
#include "util/units.hpp"

using namespace vmic;
using namespace vmic::cloud;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: vmi-cloudsim [--hours H] [--seed N] [--nodes N] [--slots N]\n"
      "       [--vmis N] [--rate PER_HOUR] [--process poisson|diurnal|flash]\n"
      "       [--zipf S] [--policy packing|striping|load] [--no-cache-aware]\n"
      "       [--quota MiB] [--cache-cap MiB] "
      "[--os centos|debian|windows|scaled]\n"
      "       [--attempts N] [--backoff S] [--fail-nodes N] [--outages N]\n"
      "       [--no-salvage] [--peer on|off] [--dedup on|off]"
      " [--compress on|off]\n"
      "       [--cluster-bits N] [--siblings N] [--shared-frac F]"
      " [--content-mib M]\n"
      "       [--amplitude F] [--manifest on|off] [--restart-at H]"
      " [--restart-down S]\n"
      "       [--drain N] [--drain-at H] [--drain-down S]\n"
      "       [--updates on|off] [--update-policy invalidate|rebase|auto]\n"
      "       [--update-rate PER_HOUR] [--update-frac F]\n"
      "       [--slo-strict] [--slo-p99 S]\n"
      "       [--trace FILE] [--trace-out FILE] [--metrics-out FILE]\n");
  std::exit(2);
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "vmi-cloudsim: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "vmi-cloudsim: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void print_latency(const char* name, const LatencyStats& l) {
  std::printf("  %-12s n=%-5zu mean %7.2f s  p50 %7.2f s  p95 %7.2f s  "
              "p99 %7.2f s  max %7.2f s\n",
              name, l.count, l.mean, l.p50, l.p95, l.p99, l.max);
}

}  // namespace

int main(int argc, char** argv) {
  CloudConfig cfg;
  cfg.seed = 7;
  int fail_nodes = 0;
  int outages = 0;
  std::string os = "scaled";
  std::string trace_in;
  std::string trace_out;
  std::string metrics_out;
  bool slo_strict = false;
  double slo_p99 = 0;
  /// First --update-* knob seen without --updates on (combo audit).
  const char* update_knob = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--hours") {
      cfg.horizon_s = std::atof(next()) * 3600.0;
    } else if (a == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--nodes") {
      cfg.cluster.compute_nodes = std::atoi(next());
    } else if (a == "--slots") {
      cfg.vm_slots_per_node = std::atoi(next());
    } else if (a == "--vmis") {
      cfg.workload.num_vmis = std::atoi(next());
    } else if (a == "--rate") {
      const double per_hour = std::atof(next());
      if (per_hour <= 0) usage();
      cfg.workload.mean_interarrival_s = 3600.0 / per_hour;
    } else if (a == "--process") {
      const std::string p = next();
      if (p == "poisson") cfg.workload.process = ArrivalProcess::poisson;
      else if (p == "diurnal") cfg.workload.process = ArrivalProcess::diurnal;
      else if (p == "flash") cfg.workload.process = ArrivalProcess::flash_crowd;
      else usage();
    } else if (a == "--zipf") {
      cfg.workload.zipf_exponent = std::atof(next());
    } else if (a == "--policy") {
      const std::string p = next();
      if (p == "packing") cfg.policy = cluster::SchedPolicy::packing;
      else if (p == "striping") cfg.policy = cluster::SchedPolicy::striping;
      else if (p == "load") cfg.policy = cluster::SchedPolicy::load_aware;
      else usage();
    } else if (a == "--no-cache-aware") {
      cfg.cache_aware = false;
    } else if (a == "--quota") {
      cfg.cache_quota = static_cast<std::uint64_t>(std::atoi(next())) * MiB;
    } else if (a == "--cache-cap") {
      cfg.cluster.node_cache_capacity =
          static_cast<std::uint64_t>(std::atoi(next())) * MiB;
    } else if (a == "--os") {
      os = next();
    } else if (a == "--attempts") {
      cfg.max_attempts = std::atoi(next());
    } else if (a == "--backoff") {
      cfg.retry_backoff_s = std::atof(next());
    } else if (a == "--fail-nodes") {
      fail_nodes = std::atoi(next());
    } else if (a == "--outages") {
      outages = std::atoi(next());
    } else if (a == "--no-salvage") {
      cfg.crash_salvage = false;
    } else if (a == "--peer") {
      const std::string p = next();
      if (p == "on") cfg.peer_transfer = true;
      else if (p == "off") cfg.peer_transfer = false;
      else usage();
    } else if (a == "--dedup") {
      const std::string p = next();
      if (p == "on") cfg.dedup = true;
      else if (p == "off") cfg.dedup = false;
      else usage();
    } else if (a == "--compress") {
      const std::string p = next();
      if (p == "on") cfg.cache_compress = true;
      else if (p == "off") cfg.cache_compress = false;
      else usage();
    } else if (a == "--cluster-bits") {
      cfg.cache_cluster_bits = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (a == "--siblings") {
      cfg.sibling_group_size = std::atoi(next());
    } else if (a == "--shared-frac") {
      cfg.shared_fraction = std::atof(next());
    } else if (a == "--content-mib") {
      cfg.content_bytes = static_cast<std::uint64_t>(std::atoi(next())) * MiB;
    } else if (a == "--amplitude") {
      cfg.workload.diurnal_amplitude = std::atof(next());
    } else if (a == "--updates") {
      const std::string p = next();
      if (p == "on") cfg.updates.enabled = true;
      else if (p == "off") cfg.updates.enabled = false;
      else usage();
    } else if (a == "--update-policy") {
      auto pol = update::parse_policy(next());
      if (!pol.ok()) usage();
      cfg.updates.policy = *pol;
      if (update_knob == nullptr) update_knob = "--update-policy";
    } else if (a == "--update-rate") {
      cfg.updates.rate_per_hour = std::atof(next());
      if (update_knob == nullptr) update_knob = "--update-rate";
    } else if (a == "--update-frac") {
      cfg.updates.changed_frac = std::atof(next());
      if (update_knob == nullptr) update_knob = "--update-frac";
    } else if (a == "--manifest") {
      const std::string p = next();
      if (p == "on") cfg.manifest = true;
      else if (p == "off") cfg.manifest = false;
      else usage();
    } else if (a == "--restart-at") {
      cfg.restart_at_s.push_back(std::atof(next()) * 3600.0);
    } else if (a == "--restart-down") {
      cfg.restart_down_s = std::atof(next());
    } else if (a == "--drain") {
      cfg.drain_node = std::atoi(next());
      if (cfg.drain_at_s == 0) cfg.drain_at_s = 0.5 * 3600.0;
    } else if (a == "--drain-at") {
      cfg.drain_at_s = std::atof(next()) * 3600.0;
    } else if (a == "--drain-down") {
      cfg.drain_down_s = std::atof(next());
    } else if (a == "--slo-strict") {
      slo_strict = true;
    } else if (a == "--slo-p99") {
      slo_p99 = std::atof(next());
    } else if (a == "--trace") {
      trace_in = next();
    } else if (a == "--trace-out") {
      trace_out = next();
    } else if (a == "--metrics-out") {
      metrics_out = next();
    } else {
      usage();
    }
  }

  if (os == "centos") cfg.profile = boot::centos63();
  else if (os == "debian") cfg.profile = boot::debian607();
  else if (os == "windows") cfg.profile = boot::windows2012();
  else if (os == "scaled") cfg.profile = scaled_down(boot::centos63());
  else usage();

  // Flag audit: contradictory or out-of-range combinations fail fast
  // with a specific message instead of silently running something else.
  auto die = [](const std::string& msg) {
    std::fprintf(stderr, "vmi-cloudsim: %s\n", msg.c_str());
    std::exit(2);
  };
  if (update_knob != nullptr && !cfg.updates.enabled) {
    die(std::string(update_knob) + " requires --updates on");
  }
  if (cfg.updates.enabled) {
    if (!(cfg.updates.rate_per_hour > 0)) {
      die("--update-rate must be > 0");
    }
    if (!(cfg.updates.changed_frac > 0) || cfg.updates.changed_frac > 1) {
      die("--update-frac must be in (0, 1]");
    }
  }
  if (cfg.drain_node >= cfg.cluster.compute_nodes) {
    die("--drain node " + std::to_string(cfg.drain_node) +
        " out of range (have " + std::to_string(cfg.cluster.compute_nodes) +
        " nodes)");
  }
  if (slo_p99 > 0 && !slo_strict) {
    die("--slo-p99 has no effect without --slo-strict");
  }
  if (auto wl = validate(cfg.workload); !wl.ok()) {
    die("invalid workload config (check --vmis, --rate, --zipf, "
        "--amplitude and the process parameters)");
  }

  // Failure plan and workload draw from forks of the same seed, so
  // --fail-nodes changes nothing about arrival timing.
  Rng plan_rng(cfg.seed ^ 0xFA11'FA11'FA11'FA11ull);
  cfg.failures = plan_failures(fail_nodes, outages, cfg.cluster.compute_nodes,
                               cfg.horizon_s, plan_rng);

  if (!trace_in.empty()) {
    auto parsed = parse_trace_csv(read_file(trace_in));
    if (!parsed.ok()) {
      std::fprintf(stderr, "vmi-cloudsim: malformed trace %s\n",
                   trace_in.c_str());
      return 1;
    }
    cfg.requests = std::move(*parsed);
  }

  if (!trace_out.empty()) {
    Rng wl_rng(cfg.seed);
    const auto reqs = cfg.requests.empty()
                          ? generate_workload(cfg.workload, cfg.horizon_s,
                                              wl_rng)
                          : cfg.requests;
    if (!write_file(trace_out, render_trace_csv(reqs))) return 1;
    std::printf("workload: %zu requests -> %s\n", reqs.size(),
                trace_out.c_str());
    return 0;
  }

  std::printf("cloud: %d node(s) x %d slot(s), %d VMI(s), %s arrivals, "
              "%.1f h horizon, seed %llu\n",
              cfg.cluster.compute_nodes, cfg.vm_slots_per_node,
              cfg.workload.num_vmis, to_string(cfg.workload.process),
              cfg.horizon_s / 3600.0,
              static_cast<unsigned long long>(cfg.seed));
  if (fail_nodes > 0 || outages > 0) {
    std::printf("faults: %d node crash(es), %d storage outage(s)\n",
                fail_nodes, outages);
  }

  const CloudResult r = run_cloud(cfg);

  std::printf("arrivals %d: completed %d, aborted %d, rejected %d "
              "(retries %d, deploy failures %d)\n",
              r.arrivals, r.completed, r.aborted, r.rejected, r.retries,
              r.deploy_failures);
  std::printf("faults: %d crash(es), %d recovery(ies), %d attempt(s) "
              "killed, %d running VM(s) lost, %d copy-back(s) skipped\n",
              r.node_crashes, r.node_recoveries, r.crash_kills, r.vm_crashes,
              r.copyback_skips);
  if (r.node_crashes > 0) {
    std::printf("salvage: %d cache(s) re-adopted after repair, "
                "%d invalidated\n",
                r.caches_salvaged, r.caches_invalidated);
  }
  if (r.restarts > 0 || r.drains > 0) {
    std::printf("restart: %d restart(s), %d drain(s); adoption %d ok, "
                "%d failed, %d stale; %s served post-restart\n",
                r.restarts, r.drains, r.caches_readopted, r.adopt_failures,
                r.adopt_stale,
                format_bytes(r.post_restart_storage_bytes).c_str());
  }
  if (cfg.manifest) {
    std::printf("manifest: %llu publish(es)\n",
                static_cast<unsigned long long>(r.manifest_publishes));
  }
  if (cfg.updates.enabled) {
    std::printf("updates (%s): %d publish(es), %d cache(s) rebased, "
                "%d invalidated; %llu cluster(s) patched, %llu reused; "
                "%s served post-publish\n",
                update::to_string(cfg.updates.policy), r.updates_published,
                r.caches_rebased, r.update_invalidations,
                static_cast<unsigned long long>(r.rebase_patched_clusters),
                static_cast<unsigned long long>(r.rebase_reused_clusters),
                format_bytes(r.post_update_storage_bytes).c_str());
  }
  std::printf("cache: hit ratio %.3f (%d warm hit(s)), %llu eviction(s)\n",
              r.cache_hit_ratio, r.warm_hits,
              static_cast<unsigned long long>(r.cache_evictions));
  std::printf("goodput: %.1f VMs/hour over %.2f h sim; peak queue %zu; "
              "leaked slots %d\n",
              r.goodput_vms_per_hour, r.sim_seconds / 3600.0,
              r.peak_queue_depth, r.leaked_slots);
  std::printf("storage node served %s\n",
              format_bytes(r.storage_payload_bytes).c_str());
  if (cfg.peer_transfer) {
    std::printf("peer: %llu seed hit(s), %llu fallback fill(s), "
                "%llu timeout(s), %s served peer-to-peer\n",
                static_cast<unsigned long long>(r.peer_seed_hits),
                static_cast<unsigned long long>(r.peer_fallback_fills),
                static_cast<unsigned long long>(r.peer_timeouts),
                format_bytes(r.peer_bytes_served).c_str());
  }
  if (cfg.dedup) {
    std::printf("dedup: %llu local hit(s), %llu zero fill(s), "
                "%llu peer hit(s), %llu fallback(s), %s not read from NFS\n",
                static_cast<unsigned long long>(r.dedup_local_hits),
                static_cast<unsigned long long>(r.dedup_zero_fills),
                static_cast<unsigned long long>(r.dedup_peer_hits),
                static_cast<unsigned long long>(r.dedup_fallbacks),
                format_bytes(r.dedup_bytes_served).c_str());
  }
  print_latency("deploy", r.deploy);
  print_latency("queue-wait", r.queue_wait);
  print_latency("prepare", r.prepare);
  print_latency("boot", r.boot);

  if (!metrics_out.empty()) {
    const std::string body = ends_with(metrics_out, ".json")
                                 ? r.metrics.to_json()
                                 : r.metrics.to_text();
    if (!write_file(metrics_out, body)) return 1;
    std::printf("metrics: %zu series -> %s\n", r.metrics.points.size(),
                metrics_out.c_str());
  }

  // --slo-strict: make SLO violations visible in the exit code so CI can
  // gate on the CLI directly instead of parsing the metrics snapshot.
  int violations = 0;
  if (slo_strict) {
    if (r.aborted > 0) {
      std::fprintf(stderr, "SLO violation: %d arrival(s) aborted\n",
                   r.aborted);
      ++violations;
    }
    if (r.rejected > 0) {
      std::fprintf(stderr, "SLO violation: %d arrival(s) rejected\n",
                   r.rejected);
      ++violations;
    }
    if (slo_p99 > 0 && r.deploy.p99 > slo_p99) {
      std::fprintf(stderr,
                   "SLO violation: deploy p99 %.2f s exceeds bound %.2f s\n",
                   r.deploy.p99, slo_p99);
      ++violations;
    }
  }
  if (r.leaked_slots != 0) {
    if (slo_strict) {
      std::fprintf(stderr, "SLO violation: %d leaked VM slot(s)\n",
                   r.leaked_slots);
    }
    return 1;
  }
  return violations == 0 ? 0 : 1;
}
