// vmi-img — qemu-img-style tool for QCOW2 images with the VMI-cache
// extension (paper §4.4). Operates on real files.
//
//   vmi-img create <file> <size>              plain qcow2 image
//     [-b <backing>]                          copy-on-write overlay
//     [-q <quota>]                            VMI cache image (CoR)
//     [-c <cluster>]                          cluster size (512..2M)
//     [-j <sectors>]                          refcount journal (O(journal)
//                                             crash repair; 0 = none)
//     [-f raw]                                raw image instead of qcow2
//   vmi-img info  <file>                      header / cache fields
//     [--json]                                machine-readable report with
//                                             compressed-cluster stats and
//                                             cluster fingerprint stats
//                                             (unique vs total populated)
//   vmi-img check <file>                      metadata consistency walk
//     [--repair]                              journaled images replay the
//                                             journal (O(journal)); others
//                                             rebuild refcounts; both drop
//                                             leaks and clear the dirty bit
//     [--json]                                machine-readable report
//     exit: 0 clean, 2 corruptions, 3 leaks (post-repair state with --repair)
//   vmi-img chain <file>                      print the backing chain
//   vmi-img map   <file>                      allocation map (extents)
//   vmi-img commit <file>                     merge overlay into backing
//   vmi-img resize <file> <size>              grow the virtual disk
//   vmi-img manifest <base>                   inspect a node's durable cache
//                                             manifest (A/B slots <base>.a
//                                             and <base>.b; prints the slot
//                                             states and the winning table)
//     [--json]                                machine-readable report
//     [--init]                                publish an empty manifest
//     [--add IMG CACHE BYTES]                 publish with IMG's entry
//                                             added/replaced (repeatable)
//     exit: 0 a valid generation loads, 1 no slot verifies
//
// Cache chaining (paper workflow):
//   vmi-img create base.img 10G -f raw
//   vmi-img create centos.cache 10G -b base.img -q 250M -c 512
//   vmi-img create vm0.cow 10G -b centos.cache
//   ...boot the VM from vm0.cow...

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "io/fs_directory.hpp"
#include "manifest/manifest.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/task.hpp"
#include "util/bytes.hpp"
#include "util/units.hpp"

namespace {

using namespace vmic;

void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  vmi-img create <file> <size> [-b backing] [-q quota]"
               " [-c cluster] [-j journal-sectors] [-f raw]\n"
               "  vmi-img info  <file> [--json]\n"
               "  vmi-img check <file> [--repair] [--json]\n"
               "  vmi-img chain <file>\n"
               "  vmi-img map   <file>\n"
               "  vmi-img commit <file>\n"
               "  vmi-img resize <file> <size>\n"
               "  vmi-img manifest <base> [--json] [--init]"
               " [--add IMG CACHE BYTES]\n");
  std::exit(2);
}

/// Parse "10G", "512M", "64K", "512" into bytes.
std::uint64_t parse_size(const std::string& s) {
  if (s.empty()) usage();
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  std::uint64_t mult = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': mult = KiB; break;
      case 'm': case 'M': mult = MiB; break;
      case 'g': case 'G': mult = GiB; break;
      case 't': case 'T': mult = TiB; break;
      default:
        std::fprintf(stderr, "bad size suffix: %s\n", s.c_str());
        std::exit(2);
    }
  }
  return static_cast<std::uint64_t>(v * static_cast<double>(mult));
}

/// Split "dir/file" -> {"dir", "file"} ({"", name} when no slash).
std::pair<std::string, std::string> split_path(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return {"", path};
  return {path.substr(0, slash + 1), path.substr(slash + 1)};
}

int cmd_create(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  const std::string path = args[0];
  const std::uint64_t size = parse_size(args[1]);
  std::string backing;
  std::uint64_t quota = 0;
  std::uint32_t cluster = 64 * KiB;
  std::uint32_t journal_sectors = 0;
  bool raw = false;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "-b" && i + 1 < args.size()) {
      backing = args[++i];
    } else if (args[i] == "-q" && i + 1 < args.size()) {
      quota = parse_size(args[++i]);
    } else if (args[i] == "-c" && i + 1 < args.size()) {
      cluster = static_cast<std::uint32_t>(parse_size(args[++i]));
    } else if ((args[i] == "-j" || args[i] == "--journal") &&
               i + 1 < args.size()) {
      journal_sectors = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "-f" && i + 1 < args.size()) {
      raw = (args[++i] == "raw");
    } else {
      usage();
    }
  }

  auto [dir_path, name] = split_path(path);
  io::FsImageDirectory dir{dir_path};

  if (raw) {
    auto be = dir.create_file(name);
    if (!be.ok() || !sim::sync_wait((*be)->truncate(size)).ok()) {
      std::fprintf(stderr, "cannot create raw image %s\n", path.c_str());
      return 1;
    }
    std::printf("created raw image %s, %s\n", path.c_str(),
                format_bytes(size).c_str());
    return 0;
  }

  if (!is_pow2(cluster)) {
    std::fprintf(stderr, "cluster size must be a power of two\n");
    return 1;
  }
  auto be = dir.create_file(name);
  if (!be.ok()) {
    std::fprintf(stderr, "cannot create %s\n", path.c_str());
    return 1;
  }
  qcow2::Qcow2Device::CreateOptions opt;
  opt.virtual_size = size;
  opt.cluster_bits = log2_exact(cluster);
  opt.backing_file = backing;
  opt.cache_quota = quota;
  opt.journal_sectors = journal_sectors;
  auto r = sim::sync_wait(qcow2::Qcow2Device::create(**be, opt));
  if (!r.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 std::string(to_string(r.error())).c_str());
    return 1;
  }
  std::printf("created %s image %s, virtual size %s, cluster %s%s%s%s\n",
              quota != 0 ? "VMI-cache" : "qcow2", path.c_str(),
              format_bytes(size).c_str(), format_bytes(cluster).c_str(),
              backing.empty() ? "" : ", backing ",
              backing.c_str(),
              quota != 0
                  ? (", quota " + format_bytes(quota)).c_str()
                  : "");
  return 0;
}

Result<block::DevicePtr> open_path(const std::string& path, bool writable) {
  auto [dir_path, name] = split_path(path);
  static io::FsImageDirectory* dir = nullptr;
  // The directory must outlive the devices; leak one per invocation (the
  // tool is short-lived).
  dir = new io::FsImageDirectory{dir_path};
  return sim::sync_wait(qcow2::open_image(*dir, name, writable));
}

/// Populated-cluster fingerprint statistics: how much of the allocated
/// content is duplicate at cluster granularity (the dedup tier's raw
/// opportunity), plus physical vs logical bytes for compressed clusters.
struct ContentStats {
  std::uint64_t populated_clusters = 0;
  std::uint64_t unique_fingerprints = 0;
  std::uint64_t logical_bytes = 0;     ///< populated_clusters * cluster_size
  std::uint64_t duplicate_bytes = 0;   ///< (populated - unique) * cluster_size
};

Result<ContentStats> scan_content(qcow2::Qcow2Device* q) {
  ContentStats out;
  const std::uint64_t cs = q->cluster_size();
  std::vector<std::uint8_t> buf(cs);
  std::set<std::uint64_t> fps;
  std::uint64_t pos = 0;
  while (pos < q->size()) {
    auto st = sim::sync_wait(q->map_status(pos, q->size() - pos));
    if (!st.ok()) return st.error();
    if (st->kind == qcow2::Qcow2Device::MapKind::data ||
        st->kind == qcow2::Qcow2Device::MapKind::compressed) {
      for (std::uint64_t off = pos; off < pos + st->len; off += cs) {
        const std::uint64_t n = std::min(cs, q->size() - off);
        std::fill(buf.begin(), buf.end(), 0);  // zero-padded tail cluster
        auto r = sim::sync_wait(
            q->read(off, {buf.data(), static_cast<std::size_t>(n)}));
        if (!r.ok()) return r.error();
        ++out.populated_clusters;
        fps.insert(fnv1a(buf));
      }
    }
    pos += st->len;
  }
  out.unique_fingerprints = fps.size();
  out.logical_bytes = out.populated_clusters * cs;
  out.duplicate_bytes =
      (out.populated_clusters - out.unique_fingerprints) * cs;
  return out;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const std::string path = args[0];
  bool json = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--json") json = true;
    else usage();
  }
  auto dev = open_path(path, /*writable=*/false);
  if (!dev.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                 std::string(to_string(dev.error())).c_str());
    return 1;
  }
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  if (json) {
    std::printf("{\n  \"image\": \"%s\",\n  \"format\": \"%s\",\n"
                "  \"virtual_size\": %llu",
                path.c_str(), (*dev)->format_name().c_str(),
                static_cast<unsigned long long>((*dev)->size()));
    if (q != nullptr) {
      std::printf(",\n  \"cluster_size\": %llu",
                  static_cast<unsigned long long>(q->cluster_size()));
      if (!q->backing_file().empty()) {
        std::printf(",\n  \"backing_file\": \"%s\"",
                    q->backing_file().c_str());
      }
      if (q->is_cache_image()) {
        std::printf(",\n  \"cache_quota\": %llu,\n  \"cache_size\": %llu",
                    static_cast<unsigned long long>(q->cache_quota()),
                    static_cast<unsigned long long>(q->file_bytes()));
      }
      auto comp = sim::sync_wait(q->compression_stats());
      if (comp.ok()) {
        std::printf(",\n  \"compressed\": {\"clusters\": %llu, "
                    "\"physical_bytes\": %llu, \"logical_bytes\": %llu}",
                    static_cast<unsigned long long>(comp->compressed_clusters),
                    static_cast<unsigned long long>(comp->physical_bytes),
                    static_cast<unsigned long long>(comp->logical_bytes));
      }
      auto cst = scan_content(q);
      if (cst.ok()) {
        std::printf(",\n  \"fingerprints\": {\"populated_clusters\": %llu, "
                    "\"unique\": %llu, \"logical_bytes\": %llu, "
                    "\"duplicate_bytes\": %llu}",
                    static_cast<unsigned long long>(cst->populated_clusters),
                    static_cast<unsigned long long>(cst->unique_fingerprints),
                    static_cast<unsigned long long>(cst->logical_bytes),
                    static_cast<unsigned long long>(cst->duplicate_bytes));
      }
    }
    std::printf("\n}\n");
    (void)sim::sync_wait((*dev)->close());
    return 0;
  }
  std::printf("image: %s\n", path.c_str());
  std::printf("format: %s\n", (*dev)->format_name().c_str());
  std::printf("virtual size: %s\n", format_bytes((*dev)->size()).c_str());
  if (q != nullptr) {
    std::printf("cluster size: %s\n",
                format_bytes(q->cluster_size()).c_str());
    if (!q->backing_file().empty()) {
      std::printf("backing file: %s\n", q->backing_file().c_str());
    }
    if (q->has_journal()) {
      std::printf("refcount journal: %u sectors\n",
                  static_cast<unsigned>(q->journal_sector_count()));
    }
    if (q->is_cache_image()) {
      std::printf("VMI cache: yes\n");
      std::printf("cache quota: %s\n",
                  format_bytes(q->cache_quota()).c_str());
      std::printf("cache current size: %s\n",
                  format_bytes(q->file_bytes()).c_str());
    }
    auto comp = sim::sync_wait(q->compression_stats());
    if (comp.ok() && comp->compressed_clusters > 0) {
      std::printf("compressed clusters: %llu (%s physical of %s logical)\n",
                  static_cast<unsigned long long>(comp->compressed_clusters),
                  format_bytes(comp->physical_bytes).c_str(),
                  format_bytes(comp->logical_bytes).c_str());
    }
  }
  (void)sim::sync_wait((*dev)->close());
  return 0;
}

void print_check_json(const char* key, const qcow2::CheckResult& c) {
  std::printf("  \"%s\": {\"data_clusters\": %llu, "
              "\"metadata_clusters\": %llu, \"compressed_clusters\": %llu, "
              "\"leaked_clusters\": %llu, "
              "\"corruptions\": %llu},\n",
              key, static_cast<unsigned long long>(c.data_clusters),
              static_cast<unsigned long long>(c.metadata_clusters),
              static_cast<unsigned long long>(c.compressed_clusters),
              static_cast<unsigned long long>(c.leaked_clusters),
              static_cast<unsigned long long>(c.corruptions));
}

int cmd_check(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const std::string path = args[0];
  bool do_repair = false;
  bool json = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--repair") {
      do_repair = true;
    } else if (args[i] == "--json") {
      json = true;
    } else {
      usage();
    }
  }

  // Open without auto-repair so the pre-repair damage is reportable;
  // writable only when asked to fix it (qemu-img check semantics).
  auto [dir_path, name] = split_path(path);
  // Declared before the device so scope unwinding destroys it after.
  auto dir = std::make_unique<io::FsImageDirectory>(dir_path);
  auto be = dir->open_file(name, /*writable=*/do_repair);
  if (!be.ok()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  auto opt = qcow2::chain_options(*dir, /*writable=*/do_repair);
  opt.auto_repair_dirty = false;
  auto dev = sim::sync_wait(qcow2::open_any(std::move(*be), opt));
  if (!dev.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                 std::string(to_string(dev.error())).c_str());
    return 1;
  }
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  if (q == nullptr) {
    std::printf("%s: raw image, nothing to check\n", path.c_str());
    return 0;
  }
  const bool was_dirty = q->dirty();
  auto pre = sim::sync_wait(q->check());
  if (!pre.ok()) {
    std::fprintf(stderr, "check failed to run: %s\n",
                 std::string(to_string(pre.error())).c_str());
    return 1;
  }
  qcow2::RepairReport rep;
  qcow2::CheckResult post = *pre;
  if (do_repair) {
    auto r = sim::sync_wait(q->repair());
    if (!r.ok()) {
      std::fprintf(stderr, "repair failed: %s\n",
                   std::string(to_string(r.error())).c_str());
      return 1;
    }
    rep = *r;
    auto pc = sim::sync_wait(q->check());
    if (!pc.ok()) {
      std::fprintf(stderr, "post-repair check failed: %s\n",
                   std::string(to_string(pc.error())).c_str());
      return 1;
    }
    post = *pc;
  }
  (void)sim::sync_wait(q->close());

  if (json) {
    std::printf("{\n  \"image\": \"%s\",\n  \"dirty\": %d,\n"
                "  \"journal_sectors\": %u,\n",
                path.c_str(), was_dirty ? 1 : 0,
                q->has_journal() ? static_cast<unsigned>(
                                       q->journal_sector_count())
                                 : 0u);
    print_check_json("check", *pre);
    std::printf("  \"repaired\": %d,\n", do_repair ? 1 : 0);
    if (do_repair) {
      std::printf("  \"repair\": {\"entries_cleared\": %llu, "
                  "\"leaks_dropped\": %llu, \"corruptions_fixed\": %llu, "
                  "\"journal_replayed\": %d, \"journal_fallback\": %d, "
                  "\"journal_entries\": %llu},\n",
                  static_cast<unsigned long long>(rep.entries_cleared),
                  static_cast<unsigned long long>(rep.leaks_dropped),
                  static_cast<unsigned long long>(rep.corruptions_fixed),
                  rep.journal_replayed ? 1 : 0, rep.journal_fallback ? 1 : 0,
                  static_cast<unsigned long long>(rep.journal_entries));
      print_check_json("post", post);
    }
    std::printf("  \"clean\": %d\n}\n", post.clean() ? 1 : 0);
  } else {
    if (was_dirty) {
      std::printf("%s: image is dirty (unclean shutdown)\n", path.c_str());
    }
    std::printf("%s: %llu data clusters, %llu metadata clusters, "
                "%llu leaked, %llu corruptions\n",
                path.c_str(),
                static_cast<unsigned long long>(pre->data_clusters),
                static_cast<unsigned long long>(pre->metadata_clusters),
                static_cast<unsigned long long>(pre->leaked_clusters),
                static_cast<unsigned long long>(pre->corruptions));
    if (do_repair && rep.journal_replayed) {
      std::printf("%s: repaired by journal replay (%llu records)\n",
                  path.c_str(),
                  static_cast<unsigned long long>(rep.journal_entries));
    } else if (do_repair && rep.journal_fallback) {
      std::printf("%s: journal replay could not prove consistency; "
                  "fell back to full rebuild\n", path.c_str());
    }
    if (do_repair && rep.changed_anything()) {
      std::printf("%s: repaired — %llu entries cleared, %llu leaks dropped, "
                  "%llu refcounts fixed; now %llu leaked, %llu corruptions\n",
                  path.c_str(),
                  static_cast<unsigned long long>(rep.entries_cleared),
                  static_cast<unsigned long long>(rep.leaks_dropped),
                  static_cast<unsigned long long>(rep.corruptions_fixed),
                  static_cast<unsigned long long>(post.leaked_clusters),
                  static_cast<unsigned long long>(post.corruptions));
    }
  }
  if (post.corruptions != 0) return 2;
  if (post.leaked_clusters != 0) return 3;
  return 0;
}

int cmd_chain(const std::string& path) {
  auto dev = open_path(path, /*writable=*/false);
  if (!dev.ok()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const block::BlockDevice* d = dev->get();
  std::string name = path;
  int depth = 0;
  while (d != nullptr) {
    std::printf("%*s%s (%s%s%s)\n", depth * 2, "", name.c_str(),
                d->format_name().c_str(),
                d->is_cache_image() ? ", VMI cache" : "",
                d->read_only() ? ", ro" : ", rw");
    if (auto* q = dynamic_cast<const qcow2::Qcow2Device*>(d)) {
      name = q->backing_file();
    } else {
      name = "?";
    }
    d = d->backing();
    ++depth;
  }
  return 0;
}

int cmd_map(const std::string& path) {
  auto dev = open_path(path, /*writable=*/false);
  if (!dev.ok()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  if (q == nullptr) {
    std::printf("%s: raw image, fully allocated\n", path.c_str());
    return 0;
  }
  std::uint64_t pos = 0;
  std::uint64_t data = 0, zero = 0, comp = 0;
  while (pos < q->size()) {
    auto st = sim::sync_wait(q->map_status(pos, q->size() - pos));
    if (!st.ok()) return 1;
    const char* kind = "backing";
    switch (st->kind) {
      case qcow2::Qcow2Device::MapKind::data: kind = "data"; break;
      case qcow2::Qcow2Device::MapKind::zero: kind = "zero"; break;
      case qcow2::Qcow2Device::MapKind::compressed: kind = "compressed"; break;
      default: break;
    }
    if (st->kind != qcow2::Qcow2Device::MapKind::unallocated) {
      std::printf("  [%12llu, %12llu)  %s\n",
                  static_cast<unsigned long long>(pos),
                  static_cast<unsigned long long>(pos + st->len), kind);
    }
    if (st->kind == qcow2::Qcow2Device::MapKind::data) data += st->len;
    if (st->kind == qcow2::Qcow2Device::MapKind::zero) zero += st->len;
    if (st->kind == qcow2::Qcow2Device::MapKind::compressed) comp += st->len;
    pos += st->len;
  }
  std::printf("%s: %s data, %s compressed, %s zero, "
              "rest from backing/unallocated\n",
              path.c_str(), format_bytes(data).c_str(),
              format_bytes(comp).c_str(), format_bytes(zero).c_str());
  return 0;
}

int cmd_commit(const std::string& path) {
  auto [dir_path, name] = split_path(path);
  io::FsImageDirectory dir{dir_path};
  auto r = sim::sync_wait(qcow2::commit_image(dir, name));
  if (!r.ok()) {
    std::fprintf(stderr, "commit failed: %s\n",
                 std::string(to_string(r.error())).c_str());
    return 1;
  }
  std::printf("committed %s into its backing file\n",
              format_bytes(*r).c_str());
  return 0;
}

int cmd_resize(const std::string& path, const std::string& size_str) {
  const std::uint64_t new_size = parse_size(size_str);
  auto dev = open_path(path, /*writable=*/true);
  if (!dev.ok()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  if (q == nullptr) {
    std::fprintf(stderr, "resize only supports qcow2 images\n");
    return 1;
  }
  auto r = sim::sync_wait(q->resize(new_size));
  if (!r.ok()) {
    std::fprintf(stderr, "resize failed: %s\n",
                 std::string(to_string(r.error())).c_str());
    return 1;
  }
  (void)sim::sync_wait(q->close());
  std::printf("resized %s to %s\n", path.c_str(),
              format_bytes(new_size).c_str());
  return 0;
}

/// Decode one manifest slot file on its own (the Store picks the winner;
/// this reports why the loser lost: missing, torn, or just older).
std::string slot_state(io::FsImageDirectory& dir, const std::string& name) {
  if (!dir.exists(name)) return "missing";
  auto be = dir.open_file(name, /*writable=*/false);
  if (!be.ok()) return "unreadable";
  std::vector<std::uint8_t> buf((*be)->size());
  if (!sim::sync_wait((*be)->pread(0, buf)).ok()) return "unreadable";
  auto m = manifest::decode(buf);
  if (!m.ok()) return std::string(to_string(m.error()));
  return "generation " + std::to_string(m->generation);
}

int cmd_manifest(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const std::string base = args[0];
  bool json = false;
  bool mutate = false;
  std::vector<manifest::CacheEntry> add;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--init") {
      mutate = true;
    } else if (args[i] == "--add" && i + 3 < args.size()) {
      manifest::CacheEntry e;
      e.image = args[++i];
      e.cache_file = args[++i];
      e.bytes = parse_size(args[++i]);
      add.push_back(std::move(e));
      mutate = true;
    } else {
      usage();
    }
  }

  auto [dir_path, name] = split_path(base);
  io::FsImageDirectory dir{dir_path};
  manifest::Store store{&dir, name};
  auto loaded = sim::sync_wait(store.load());
  manifest::NodeManifest m;
  if (loaded.ok() && loaded->has_value()) m = std::move(**loaded);

  if (mutate) {
    for (auto& e : add) {
      auto it = std::find_if(m.entries.begin(), m.entries.end(),
                             [&](const manifest::CacheEntry& x) {
                               return x.image == e.image;
                             });
      if (it != m.entries.end()) {
        *it = std::move(e);
      } else {
        m.entries.push_back(std::move(e));
      }
    }
    auto pr = sim::sync_wait(store.publish(std::move(m)));
    if (!pr.ok()) {
      std::fprintf(stderr, "manifest publish failed: %s\n",
                   std::string(to_string(pr.error())).c_str());
      return 1;
    }
    loaded = sim::sync_wait(store.load());
    m = loaded.ok() && loaded->has_value() ? std::move(**loaded)
                                           : manifest::NodeManifest{};
  }

  const bool have = loaded.ok() && loaded->has_value();
  if (json) {
    std::printf("{\n  \"valid\": %s,\n  \"generation\": %llu,\n",
                have ? "true" : "false",
                static_cast<unsigned long long>(m.generation));
    std::printf("  \"slot_a\": \"%s\",\n  \"slot_b\": \"%s\",\n",
                slot_state(dir, name + ".a").c_str(),
                slot_state(dir, name + ".b").c_str());
    std::printf("  \"entries\": [\n");
    for (std::size_t i = 0; i < m.entries.size(); ++i) {
      const auto& e = m.entries[i];
      std::uint64_t covered = 0;
      for (const auto& [lo, hi] : e.coverage) covered += hi - lo;
      std::printf("    {\"image\": \"%s\", \"cache\": \"%s\", "
                  "\"bytes\": %llu, \"fill_generation\": %llu, "
                  "\"check_generation\": %llu, \"dedup_indexed\": %s, "
                  "\"coverage_extents\": %zu, \"coverage_bytes\": %llu}%s\n",
                  e.image.c_str(), e.cache_file.c_str(),
                  static_cast<unsigned long long>(e.bytes),
                  static_cast<unsigned long long>(e.fill_generation),
                  static_cast<unsigned long long>(e.check_generation),
                  e.dedup_indexed ? "true" : "false", e.coverage.size(),
                  static_cast<unsigned long long>(covered),
                  i + 1 < m.entries.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("manifest:   %s.{a,b}\n", base.c_str());
    std::printf("slot a:     %s\n", slot_state(dir, name + ".a").c_str());
    std::printf("slot b:     %s\n", slot_state(dir, name + ".b").c_str());
    if (!have) {
      std::printf("state:      no valid generation\n");
      return 1;
    }
    std::printf("generation: %llu\n",
                static_cast<unsigned long long>(m.generation));
    std::printf("entries:    %zu\n", m.entries.size());
    for (const auto& e : m.entries) {
      std::uint64_t covered = 0;
      for (const auto& [lo, hi] : e.coverage) covered += hi - lo;
      const std::string cov =
          covered > 0 ? "  coverage " + format_bytes(covered) : "";
      std::printf("  %-12s %-24s %10s  fill-gen %llu  check-gen %llu%s%s\n",
                  e.image.c_str(), e.cache_file.c_str(),
                  format_bytes(e.bytes).c_str(),
                  static_cast<unsigned long long>(e.fill_generation),
                  static_cast<unsigned long long>(e.check_generation),
                  e.dedup_indexed ? "  dedup" : "", cov.c_str());
    }
  }
  return have ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "create") return cmd_create(args);
  if (cmd == "info") return cmd_info(args);
  if (cmd == "check") return cmd_check(args);
  if (cmd == "chain") return cmd_chain(args[0]);
  if (cmd == "map") return cmd_map(args[0]);
  if (cmd == "commit") return cmd_commit(args[0]);
  if (cmd == "resize" && args.size() >= 2) return cmd_resize(args[0], args[1]);
  if (cmd == "manifest") return cmd_manifest(args);
  usage();
  return 2;
}
