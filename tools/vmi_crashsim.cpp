// vmi-crashsim — exhaustive power-loss sweep over the qcow2 durability
// design (src/crash). Replays a scripted guest workload, cuts the power
// at every backend event (drop/tear semantics per seed), then reopens,
// repairs and verifies. Exit 0 only if every crash point of every mode
// upholds the invariants: no pre-repair corruption, a fully clean image
// after repair, and every flushed guest write intact.
//
//   vmi-crashsim [--seed N] [--ops N] [--points N] [--cluster-bits N]
//                [--image-size SZ] [--mode eager|lazy|cor|all]
//                [--json-out FILE]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "crash/explore.hpp"
#include "util/units.hpp"

namespace {

using namespace vmic;

void usage() {
  std::fprintf(stderr,
               "usage: vmi-crashsim [--seed N] [--ops N] [--points N]\n"
               "                    [--cluster-bits N] [--image-size SZ]\n"
               "                    [--mode eager|lazy|cor|all]"
               " [--json-out FILE]\n");
  std::exit(2);
}

std::uint64_t parse_size(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  std::uint64_t mult = 1;
  switch (*end) {
    case '\0': break;
    case 'k': case 'K': mult = KiB; break;
    case 'm': case 'M': mult = MiB; break;
    case 'g': case 'G': mult = GiB; break;
    default: usage();
  }
  return static_cast<std::uint64_t>(v * static_cast<double>(mult));
}

struct Mode {
  const char* name;
  bool lazy;
  bool cor;
};

}  // namespace

int main(int argc, char** argv) {
  crash::ExploreConfig base;
  std::string mode = "all";
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--seed") {
      base.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--ops") {
      base.guest_ops = std::atoi(next().c_str());
    } else if (a == "--points") {
      base.max_crash_points = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--cluster-bits") {
      base.cluster_bits = static_cast<std::uint32_t>(std::atoi(next().c_str()));
    } else if (a == "--image-size") {
      base.image_size = parse_size(next());
    } else if (a == "--mode") {
      mode = next();
    } else if (a == "--json-out") {
      json_out = next();
    } else {
      usage();
    }
  }

  std::vector<Mode> modes;
  if (mode == "eager" || mode == "all") modes.push_back({"eager", false, false});
  if (mode == "lazy" || mode == "all") modes.push_back({"lazy", true, false});
  if (mode == "cor" || mode == "all") modes.push_back({"cor-chain", false, true});
  if (modes.empty()) usage();

  std::printf("%-10s %8s %8s %10s %10s %8s %8s %12s %6s\n", "mode", "events",
              "points", "pre-corr", "pre-leaks", "dropped", "fixed",
              "lost-bytes", "pass");
  std::string json = "[\n";
  bool all_pass = true;
  for (std::size_t m = 0; m < modes.size(); ++m) {
    crash::ExploreConfig cfg = base;
    cfg.lazy_refcounts = modes[m].lazy;
    cfg.cor_chain = modes[m].cor;
    const crash::ExploreReport rep = crash::explore(cfg);
    all_pass = all_pass && rep.pass();
    std::printf("%-10s %8llu %8llu %10llu %10llu %8llu %8llu %12llu %6s\n",
                modes[m].name,
                static_cast<unsigned long long>(rep.total_events),
                static_cast<unsigned long long>(rep.crash_points),
                static_cast<unsigned long long>(rep.pre_repair_corruptions),
                static_cast<unsigned long long>(rep.pre_repair_leaks),
                static_cast<unsigned long long>(rep.leaks_dropped),
                static_cast<unsigned long long>(rep.corruptions_fixed),
                static_cast<unsigned long long>(rep.lost_flushed_bytes),
                rep.pass() ? "yes" : "NO");
    json += crash::to_json(rep, cfg);
    if (m + 1 < modes.size()) json += ",\n";
  }
  json += "]\n";
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  if (!all_pass) {
    std::fprintf(stderr, "crash sweep FAILED: an invariant did not hold\n");
    return 1;
  }
  return 0;
}
