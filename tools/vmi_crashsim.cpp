// vmi-crashsim — exhaustive power-loss sweep over the qcow2 durability
// design (src/crash). Replays a scripted guest workload, cuts the power
// at every backend event (drop/tear semantics per seed), then reopens,
// repairs and verifies. Exit 0 only if every crash point of every mode
// upholds the invariants: no pre-repair corruption, a fully clean image
// after repair, and every flushed guest write intact.
//
//   vmi-crashsim [--seed N] [--ops N] [--points N] [--cluster-bits N]
//                [--image-size SZ] [--journal-sectors N]
//                [--mode eager|lazy|cor|journal|repair|twofile|all]
//                [--json-out FILE]
//   vmi-crashsim --child-writer FILE [--seed N] [--journal-sectors N]
//
// The journal mode sweeps a journaled image (O(journal) replay repair),
// repair mode re-cuts the power at every instant *inside* the repair
// (repair-of-repair), and twofile fells an overlay+cache pair behind one
// shared power rail.
//
// --child-writer is the host-side half of the kill-9 smoke test: it
// creates a journaled image at FILE, prints "ready" once the first
// barrier is durable, then keeps writing/flushing until it is killed.
// The parent SIGKILLs it mid-write and verifies that vmi-img check
// --repair replays the journal on the real file.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "crash/explore.hpp"
#include "io/fs_directory.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace vmic;

void usage() {
  std::fprintf(stderr,
               "usage: vmi-crashsim [--seed N] [--ops N] [--points N]\n"
               "                    [--cluster-bits N] [--image-size SZ]\n"
               "                    [--journal-sectors N]\n"
               "                    [--mode eager|lazy|cor|journal|repair|"
               "twofile|all]\n"
               "                    [--json-out FILE]\n"
               "       vmi-crashsim --child-writer FILE [--seed N]\n"
               "                    [--journal-sectors N]\n");
  std::exit(2);
}

std::uint64_t parse_size(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  std::uint64_t mult = 1;
  switch (*end) {
    case '\0': break;
    case 'k': case 'K': mult = KiB; break;
    case 'm': case 'M': mult = MiB; break;
    case 'g': case 'G': mult = GiB; break;
    default: usage();
  }
  return static_cast<std::uint64_t>(v * static_cast<double>(mult));
}

/// Kill-9 torture child: real-file writer that never exits on its own.
int child_writer(const std::string& path, std::uint64_t seed,
                 std::uint32_t journal_sectors) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const auto slash = path.find_last_of('/');
  const std::string dir_path =
      slash == std::string::npos ? "" : path.substr(0, slash + 1);
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  io::FsImageDirectory dir{dir_path};
  {
    auto be = dir.create_file(name);
    if (!be.ok()) {
      std::fprintf(stderr, "cannot create %s\n", path.c_str());
      return 1;
    }
    qcow2::Qcow2Device::CreateOptions copt;
    copt.virtual_size = 32 * MiB;
    copt.cluster_bits = 16;
    copt.journal_sectors = journal_sectors != 0 ? journal_sectors : 64;
    if (!sim::sync_wait(qcow2::Qcow2Device::create(**be, copt)).ok()) {
      std::fprintf(stderr, "create failed\n");
      return 1;
    }
  }
  auto dev = sim::sync_wait(qcow2::open_image(dir, name, /*writable=*/true));
  if (!dev.ok()) {
    std::fprintf(stderr, "open failed\n");
    return 1;
  }
  Rng rng(seed ^ 0xC41D);
  std::vector<std::uint8_t> buf;
  for (std::uint64_t op = 0;; ++op) {
    const std::uint64_t len = (1 + rng.below(16)) * 4 * KiB;
    const std::uint64_t off =
        rng.below((32 * MiB - len) / 512) * 512;
    buf.assign(len, static_cast<std::uint8_t>(op));
    if (!sim::sync_wait((*dev)->write(off, buf)).ok()) return 1;
    if (op % 4 == 3) {
      if (!sim::sync_wait((*dev)->flush()).ok()) return 1;
      if (op == 3) std::printf("ready\n");  // first durable barrier
    }
  }
}

struct Mode {
  const char* name;
  bool lazy = false;
  bool cor = false;
  std::uint32_t journal_sectors = 0;
  bool crash_during_repair = false;
  bool two_file = false;
};

}  // namespace

int main(int argc, char** argv) {
  crash::ExploreConfig base;
  std::string mode = "all";
  std::string json_out;
  std::string child_writer_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--seed") {
      base.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--ops") {
      base.guest_ops = std::atoi(next().c_str());
    } else if (a == "--points") {
      base.max_crash_points = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--cluster-bits") {
      base.cluster_bits = static_cast<std::uint32_t>(std::atoi(next().c_str()));
    } else if (a == "--image-size") {
      base.image_size = parse_size(next());
    } else if (a == "--journal-sectors") {
      base.journal_sectors =
          static_cast<std::uint32_t>(std::atoi(next().c_str()));
    } else if (a == "--mode") {
      mode = next();
    } else if (a == "--json-out") {
      json_out = next();
    } else if (a == "--child-writer") {
      child_writer_path = next();
    } else {
      usage();
    }
  }

  if (!child_writer_path.empty()) {
    return child_writer(child_writer_path, base.seed, base.journal_sectors);
  }

  // Journaled modes default to a small journal so checkpoint-under-crash
  // windows are swept too; --journal-sectors overrides.
  const std::uint32_t js =
      base.journal_sectors != 0 ? base.journal_sectors : 16;
  std::vector<Mode> modes;
  if (mode == "eager" || mode == "all") modes.push_back({.name = "eager"});
  if (mode == "lazy" || mode == "all")
    modes.push_back({.name = "lazy", .lazy = true});
  if (mode == "cor" || mode == "all")
    modes.push_back({.name = "cor-chain", .cor = true});
  if (mode == "journal" || mode == "all")
    modes.push_back({.name = "journal", .journal_sectors = js});
  if (mode == "repair" || mode == "all")
    modes.push_back({.name = "repair", .crash_during_repair = true});
  if (mode == "twofile" || mode == "all")
    modes.push_back({.name = "two-file", .two_file = true});
  if (modes.empty()) usage();

  std::printf("%-10s %8s %8s %10s %10s %8s %8s %12s %6s\n", "mode", "events",
              "points", "pre-corr", "pre-leaks", "dropped", "fixed",
              "lost-bytes", "pass");
  std::string json = "[\n";
  bool all_pass = true;
  for (std::size_t m = 0; m < modes.size(); ++m) {
    crash::ExploreConfig cfg = base;
    cfg.lazy_refcounts = modes[m].lazy;
    cfg.cor_chain = modes[m].cor;
    cfg.journal_sectors = modes[m].journal_sectors;
    cfg.crash_during_repair = modes[m].crash_during_repair;
    cfg.two_file = modes[m].two_file;
    const crash::ExploreReport rep = crash::explore(cfg);
    all_pass = all_pass && rep.pass();
    std::printf("%-10s %8llu %8llu %10llu %10llu %8llu %8llu %12llu %6s\n",
                modes[m].name,
                static_cast<unsigned long long>(rep.total_events),
                static_cast<unsigned long long>(rep.crash_points),
                static_cast<unsigned long long>(rep.pre_repair_corruptions),
                static_cast<unsigned long long>(rep.pre_repair_leaks),
                static_cast<unsigned long long>(rep.leaks_dropped),
                static_cast<unsigned long long>(rep.corruptions_fixed),
                static_cast<unsigned long long>(rep.lost_flushed_bytes),
                rep.pass() ? "yes" : "NO");
    if (rep.journal_replays != 0 || rep.journal_fallbacks != 0 ||
        rep.repair_crash_points != 0) {
      std::printf("%-10s   journal replays=%llu fallbacks=%llu"
                  " nested-repair-cuts=%llu\n",
                  "", static_cast<unsigned long long>(rep.journal_replays),
                  static_cast<unsigned long long>(rep.journal_fallbacks),
                  static_cast<unsigned long long>(rep.repair_crash_points));
    }
    json += crash::to_json(rep, cfg);
    if (m + 1 < modes.size()) json += ",\n";
  }
  json += "]\n";
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  if (!all_pass) {
    std::fprintf(stderr, "crash sweep FAILED: an invariant did not hold\n");
    return 1;
  }
  return 0;
}
