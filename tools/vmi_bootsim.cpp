// vmi-bootsim — drive one cluster deployment scenario from the command
// line and print per-VM results. The benches wrap the same engine; this
// tool is for interactive exploration.
//
//   vmi-bootsim [options]
//     --vms N            number of VMs             (default 64)
//     --nodes N          compute nodes             (default = vms)
//     --vmis N           distinct base images      (default 1)
//     --net 1gbe|ib      network                   (default 1gbe)
//     --mode none|fullcopy|disk|mem                (default none)
//     --state cold|warm                            (default cold)
//     --quota BYTES_MB   cache quota in MiB        (default 250)
//     --cluster BYTES    cache cluster size        (default 512)
//     --os centos|debian|windows|snapshot          (default centos)
//     --prefetch KB      boot-time prefetch        (default 0)
//     --warmfrac F       fraction of warm nodes    (default 1.0)
//     --fresh            storage page cache starts cold
//     --per-vm           print one line per VM
//     --metrics-out F    write the metrics snapshot to F
//                        (.json => JSON, anything else => text exposition)
//     --trace-out F      record a sim-time trace and write Chrome
//                        trace_event JSON to F (load in chrome://tracing
//                        or https://ui.perfetto.dev)

#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/scenario.hpp"
#include "obs/hub.hpp"
#include "util/align.hpp"

using namespace vmic;
using namespace vmic::cluster;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: vmi-bootsim [--vms N] [--nodes N] [--vmis N] "
               "[--net 1gbe|ib]\n"
               "       [--mode none|fullcopy|disk|mem] [--state cold|warm]\n"
               "       [--quota MiB] [--cluster BYTES] "
               "[--os centos|debian|windows|snapshot]\n"
               "       [--prefetch KB] [--warmfrac F] [--fresh] [--per-vm]\n"
               "       [--metrics-out FILE] [--trace-out FILE]\n");
  std::exit(2);
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "vmi-bootsim: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig sc;
  ClusterParams cp;
  int nodes = -1;
  bool per_vm = false;
  std::string os = "centos";
  std::string metrics_out;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--vms") {
      sc.num_vms = std::atoi(next());
    } else if (a == "--nodes") {
      nodes = std::atoi(next());
    } else if (a == "--vmis") {
      sc.num_vmis = std::atoi(next());
    } else if (a == "--net") {
      const std::string n = next();
      if (n == "1gbe") {
        cp.network = net::gigabit_ethernet();
      } else if (n == "ib") {
        cp.network = net::infiniband_qdr();
      } else {
        usage();
      }
    } else if (a == "--mode") {
      const std::string m = next();
      if (m == "none") sc.mode = CacheMode::none;
      else if (m == "fullcopy") sc.mode = CacheMode::full_copy;
      else if (m == "disk") sc.mode = CacheMode::compute_disk;
      else if (m == "mem") sc.mode = CacheMode::storage_mem;
      else usage();
    } else if (a == "--state") {
      const std::string s = next();
      if (s == "cold") sc.state = CacheState::cold;
      else if (s == "warm") sc.state = CacheState::warm;
      else usage();
    } else if (a == "--quota") {
      sc.cache_quota = static_cast<std::uint64_t>(std::atoi(next())) * MiB;
    } else if (a == "--cluster") {
      const std::uint64_t c = static_cast<std::uint64_t>(std::atoi(next()));
      if (!is_pow2(c) || c < 512) usage();
      sc.cache_cluster_bits = log2_exact(c);
    } else if (a == "--os") {
      os = next();
    } else if (a == "--prefetch") {
      sc.prefetch_bytes =
          static_cast<std::uint32_t>(std::atoi(next())) * 1024;
    } else if (a == "--warmfrac") {
      sc.warm_node_fraction = std::atof(next());
    } else if (a == "--fresh") {
      sc.storage_cache_prewarmed = false;
    } else if (a == "--per-vm") {
      per_vm = true;
    } else if (a == "--metrics-out") {
      metrics_out = next();
    } else if (a == "--trace-out") {
      trace_out = next();
    } else {
      usage();
    }
  }

  if (os == "centos") sc.profile = boot::centos63();
  else if (os == "debian") sc.profile = boot::debian607();
  else if (os == "windows") sc.profile = boot::windows2012();
  else if (os == "snapshot") {
    sc.profile = boot::snapshot_restore_profile(boot::centos63());
  } else {
    usage();
  }

  cp.compute_nodes = nodes > 0 ? nodes : sc.num_vms;

  // The hub outlives the scenario's Cluster: counters are snapshotted
  // inside run_scenario, trace events stay valid until we write them.
  obs::Hub hub;
  cp.hub = &hub;
  if (!trace_out.empty()) hub.tracer.set_enabled(true);

  std::printf("scenario: %d VM(s) / %d node(s) / %d VMI(s), %s, os=%s\n",
              sc.num_vms, cp.compute_nodes, sc.num_vmis,
              cp.network.name.c_str(), sc.profile.name.c_str());
  const auto r = run_scenario(cp, sc);

  if (per_vm) {
    for (const auto& vm : r.vms) {
      std::printf("  vm %3d node %3d vmi %3d  boot %7.2f s  read-wait "
                  "%6.2f s%s%s\n",
                  vm.vm, vm.node, vm.vmi, vm.boot.boot_seconds,
                  vm.boot.read_wait_seconds, vm.warm ? "  [warm]" : "",
                  vm.cache_transfer_seconds > 0 ? "  [+transfer]" : "");
    }
  }
  std::printf("boot time: mean %.2f s, min %.2f s, max %.2f s\n",
              r.mean_boot, r.min_boot, r.max_boot);
  std::printf("storage node: %.1f MB served, %llu disk reads\n",
              static_cast<double>(r.storage_payload_bytes) / 1048576.0,
              static_cast<unsigned long long>(r.storage_disk_reads));
  if (r.warm_cache_file_bytes != 0) {
    std::printf("warm cache file: %s\n",
                format_bytes(r.warm_cache_file_bytes).c_str());
  }
  if (!metrics_out.empty()) {
    const std::string body = ends_with(metrics_out, ".json")
                                 ? r.metrics.to_json()
                                 : r.metrics.to_text();
    if (!write_file(metrics_out, body)) return 1;
    std::printf("metrics: %zu series -> %s\n", r.metrics.points.size(),
                metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!write_file(trace_out, hub.tracer.to_chrome_json())) return 1;
    std::printf("trace: %zu events -> %s\n", hub.tracer.size(),
                trace_out.c_str());
  }
  return 0;
}
