#pragma once

// vmic::obs — the unified observability layer's metrics half.
//
// Every figure in the paper is a metrics readout (storage-node traffic,
// boot-time distributions, cache file sizes), so the simulator keeps one
// registry of named, labeled instruments instead of ad-hoc counters
// scattered across subsystems. Components own their instruments by value
// (an unbound Counter is just a uint64 — zero overhead when no registry
// is attached) and *bind* them into a Registry under a metric name plus a
// label set, e.g. nfs.server.bytes_tx{node="storage0"}. The registry can
// then render a byte-stable snapshot (the sim is single-threaded and
// deterministic), which is what the golden-metrics tests diff.

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vmic::obs {

/// Monotonic counter. Implicitly converts to its value so existing
/// `stats().bytes == x` call sites keep working after the migration from
/// plain uint64 fields.
class Counter {
 public:
  constexpr Counter() = default;

  void inc(std::uint64_t n = 1) noexcept { v_ += n; }
  Counter& operator++() noexcept {
    ++v_;
    return *this;
  }
  Counter& operator+=(std::uint64_t n) noexcept {
    v_ += n;
    return *this;
  }
  void reset() noexcept { v_ = 0; }

  [[nodiscard]] std::uint64_t value() const noexcept { return v_; }
  constexpr operator std::uint64_t() const noexcept { return v_; }  // NOLINT

 private:
  std::uint64_t v_ = 0;
};

/// Point-in-time value (occupancy, peak depth). Double-valued, like
/// Prometheus gauges.
class Gauge {
 public:
  constexpr Gauge() = default;

  void set(double v) noexcept { v_ = v; }
  void add(double d) noexcept { v_ += d; }
  /// Retain the maximum seen (peak trackers).
  void set_max(double v) noexcept {
    if (v > v_) v_ = v;
  }
  void reset() noexcept { v_ = 0; }

  [[nodiscard]] double value() const noexcept { return v_; }
  constexpr operator double() const noexcept { return v_; }  // NOLINT

 private:
  double v_ = 0;
};

/// Fixed-bucket histogram (latency / size distributions). Bounds are
/// inclusive upper edges; an implicit +inf bucket catches the rest.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void observe(double x) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && x > bounds_[i]) ++i;
    ++counts_[i];
    sum_ += x;
    ++count_;
  }

  void reset() noexcept {
    for (auto& c : counts_) c = 0;
    sum_ = 0;
    count_ = 0;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; size() == bounds().size() + 1 (+inf last).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  double sum_ = 0;
  std::uint64_t count_ = 0;
};

/// Label set: key/value pairs, normalized (sorted by key) on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// `{k="v",k2="v2"}` rendering (empty string for no labels).
std::string render_labels(const Labels& labels);

/// Shortest decimal rendering of `v` that round-trips exactly —
/// deterministic across runs, which keeps snapshots byte-stable.
std::string fmt_double(double v);

enum class Kind { counter, gauge, histogram };

[[nodiscard]] constexpr const char* to_string(Kind k) noexcept {
  switch (k) {
    case Kind::counter: return "counter";
    case Kind::gauge: return "gauge";
    case Kind::histogram: return "histogram";
  }
  return "?";
}

/// One exported metric value, decoupled from the live instruments.
struct MetricPoint {
  std::string name;
  Labels labels;
  Kind kind = Kind::counter;
  std::uint64_t counter = 0;  ///< kind == counter
  double gauge = 0;           ///< kind == gauge
  // kind == histogram:
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  double sum = 0;
  std::uint64_t count = 0;
};

/// A frozen, sorted view of a registry. Byte-stable for a deterministic
/// simulation: rendering the same scenario twice yields identical text.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;  // sorted by (name, rendered labels)

  /// `name{k="v"} value` lines, one instrument per line (histograms
  /// expand to _bucket/_sum/_count lines, Prometheus-style).
  [[nodiscard]] std::string to_text() const;
  /// `{"metrics":[{...}]}` JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Exact lookup; labels are normalized before matching. Returns nullptr
  /// if absent.
  [[nodiscard]] const MetricPoint* find(std::string_view name,
                                        Labels labels = {}) const;
  /// Sum of all counter points with this name, across label sets.
  [[nodiscard]] std::uint64_t counter_total(std::string_view name) const;
};

/// The instrument index. Two usage modes:
///  * owned instruments: counter()/gauge()/histogram() return a stable
///    reference, deduplicated by (name, labels) — for scenario-level
///    metrics and aggregates shared by short-lived objects (QCOW2
///    devices come and go per VM);
///  * attached instruments: components that already own their counters
///    register pointers with attach_*() and detach(owner) on
///    destruction — per-instance stats stay exact even when two
///    instances share a name.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels,
                       std::vector<double> bounds);

  void attach_counter(const std::string& name, Labels labels,
                      const Counter* c, const void* owner);
  void attach_gauge(const std::string& name, Labels labels, const Gauge* g,
                    const void* owner);
  /// Gauge computed at snapshot time (e.g. cache occupancy).
  void attach_gauge_fn(const std::string& name, Labels labels,
                       std::function<double()> fn, const void* owner);
  void attach_histogram(const std::string& name, Labels labels,
                        const Histogram* h, const void* owner);
  /// Drop every instrument attached with this owner token.
  void detach(const void* owner);

  /// Zero all *owned* instruments (attached ones belong to components).
  void reset_owned();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    const Counter* c = nullptr;
    const Gauge* g = nullptr;
    const Histogram* h = nullptr;
    std::function<double()> gauge_fn;  // kind == gauge, when set
    const void* owner = nullptr;       // nullptr => registry-owned
  };

  Entry& add_entry(const std::string& name, Labels labels, Kind kind,
                   const void* owner);
  [[nodiscard]] static std::string key_of(const std::string& name,
                                          const Labels& labels);

  // Insertion-ordered (snapshot ties break on it); a list so detach can
  // erase one owner's entries without shifting anyone else's.
  std::list<Entry> entries_;
  // owner token -> that owner's entries, for O(per-owner) detach. A
  // vector scan here made teardown of a 10k-node cluster quadratic.
  std::unordered_map<const void*, std::vector<std::list<Entry>::iterator>>
      owner_index_;
  // Owned instruments need stable addresses: deque, never erased.
  std::deque<Counter> owned_counters_;
  std::deque<Gauge> owned_gauges_;
  std::deque<Histogram> owned_histograms_;
  // (name + labels) -> entry, for owned dedup (owned entries are never
  // erased, so the pointers stay valid).
  std::vector<std::pair<std::string, const Entry*>> owned_index_;
};

}  // namespace vmic::obs
