#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/env.hpp"

namespace vmic::obs {

Span& Span::operator=(Span&& o) noexcept {
  if (this != &o) {
    end();
    t_ = o.t_;
    track_ = o.track_;
    start_ = o.start_;
    name_ = std::move(o.name_);
    cat_ = std::move(o.cat_);
    args_ = std::move(o.args_);
    o.t_ = nullptr;
  }
  return *this;
}

void Span::end() {
  if (t_ == nullptr) return;
  t_->complete(track_, std::move(name_), std::move(cat_), start_, t_->now(),
               std::move(args_));
  t_ = nullptr;
}

sim::SimTime Tracer::now() const noexcept {
  return env_ != nullptr ? env_->now() : 0;
}

std::uint32_t Tracer::track(const std::string& name) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<std::uint32_t>(i);
  }
  tracks_.push_back(name);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void Tracer::complete(std::uint32_t track, std::string name, std::string cat,
                      sim::SimTime start, sim::SimTime end, std::string args) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{track, start, end, std::move(name),
                               std::move(cat), std::move(args)});
}

void Tracer::instant(std::uint32_t track, std::string name, std::string cat,
                     std::string args) {
  if (!enabled_) return;
  const sim::SimTime t = now();
  events_.push_back(TraceEvent{track, t, t, std::move(name), std::move(cat),
                               std::move(args)});
}

Span Tracer::span(std::uint32_t track, std::string name, std::string cat,
                  std::string args) {
  if (!enabled_) return {};
  return Span{this,          track, std::move(name), std::move(cat),
              std::move(args), now()};
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
}

/// Nanoseconds -> microsecond timestamp string with exact fraction.
void append_us(std::string& out, sim::SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  // Sort a copy of the indexes by (start, insertion order) so nested
  // spans appear outermost-first, which the viewers expect.
  std::vector<std::size_t> order(events_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return events_[a].start < events_[b].start;
                   });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(i) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(out, tracks_[i]);
    out += "\"}}";
  }
  for (std::size_t idx : order) {
    const TraceEvent& e = events_[idx];
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += e.end > e.start ? 'X' : 'i';
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(e.track);
    out += ",\"ts\":";
    append_us(out, e.start);
    if (e.end > e.start) {
      out += ",\"dur\":";
      append_us(out, e.end - e.start);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"cat\":\"";
    append_escaped(out, e.cat);
    out += "\",\"name\":\"";
    append_escaped(out, e.name);
    out += '"';
    if (!e.args.empty()) {
      out += ",\"args\":{";
      out += e.args;
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace vmic::obs
