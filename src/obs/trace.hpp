#pragma once

// vmic::obs — the observability layer's tracing half: a sim-time span
// recorder exporting Chrome trace_event JSON (chrome://tracing /
// https://ui.perfetto.dev). Spans are recorded against named *tracks*
// (one per component instance or VM), in simulated nanoseconds, so a
// 64-VM deployment renders as 64 parallel boot lanes plus the shared
// storage-side lanes underneath.
//
// Disabled by default: span() returns an inert guard and record paths
// return immediately, so instrumented hot paths cost one branch.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace vmic::sim {
class SimEnv;
}

namespace vmic::obs {

struct TraceEvent {
  std::uint32_t track = 0;
  sim::SimTime start = 0;
  sim::SimTime end = 0;  ///< == start for instant events
  std::string name;
  std::string cat;
  /// Pre-rendered JSON object body for "args" (without braces), e.g.
  /// `"bytes":4096` — empty for none.
  std::string args;
};

class Tracer;

/// RAII span: records one complete event from construction to end() (or
/// destruction). Inert when default-constructed or when the tracer was
/// disabled at open time.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept;
  ~Span() { end(); }

  void end();

  /// Attach/replace the span's args JSON (rendered without braces).
  void set_args(std::string args) { args_ = std::move(args); }

 private:
  friend class Tracer;
  Span(Tracer* t, std::uint32_t track, std::string name, std::string cat,
       std::string args, sim::SimTime start)
      : t_(t), track_(track), start_(start), name_(std::move(name)),
        cat_(std::move(cat)), args_(std::move(args)) {}

  Tracer* t_ = nullptr;
  std::uint32_t track_ = 0;
  sim::SimTime start_ = 0;
  std::string name_;
  std::string cat_;
  std::string args_;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Point the tracer at the simulation clock. Must be called before
  /// recording; a Cluster binds its env automatically.
  void bind(sim::SimEnv* env) noexcept { env_ = env; }

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Deterministic track id for a display name ("vm3", "storage0/disk").
  /// First use assigns the next id; exported as thread metadata.
  std::uint32_t track(const std::string& name);

  /// Record a complete event over [start, end].
  void complete(std::uint32_t track, std::string name, std::string cat,
                sim::SimTime start, sim::SimTime end, std::string args = {});

  /// Record a zero-duration event at the current sim time.
  void instant(std::uint32_t track, std::string name, std::string cat,
               std::string args = {});

  /// Open a span at the current sim time; inert if disabled.
  [[nodiscard]] Span span(std::uint32_t track, std::string name,
                          std::string cat, std::string args = {});

  [[nodiscard]] sim::SimTime now() const noexcept;

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// `{"traceEvents":[...]}` with events sorted by (start, insertion),
  /// preceded by thread_name metadata for every track. Timestamps are
  /// microseconds (Chrome's unit) with nanosecond fractions.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  sim::SimEnv* env_ = nullptr;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  std::vector<std::string> tracks_;  // index == id
};

}  // namespace vmic::obs
