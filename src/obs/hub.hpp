#pragma once

// The two halves of vmic::obs under one handle. Components take an
// optional `Hub*` (null = observability off, zero further cost); a
// Cluster owns one and threads it through every layer it builds.

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vmic::obs {

struct Hub {
  Registry registry;
  Tracer tracer;
};

/// Null-safe tracer access: `if (auto* t = tracer_of(hub)) ...`.
[[nodiscard]] inline Tracer* tracer_of(Hub* hub) noexcept {
  return hub != nullptr ? &hub->tracer : nullptr;
}

/// True when span recording is live (the only case worth paying string
/// construction for).
[[nodiscard]] inline bool tracing(const Hub* hub) noexcept {
  return hub != nullptr && hub->tracer.enabled();
}

}  // namespace vmic::obs
