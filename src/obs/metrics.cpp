#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace vmic::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
}

Labels normalized(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

void append_json_labels(std::string& out, const Labels& labels) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, k);
    out += "\":\"";
    append_escaped(out, v);
    out += '"';
  }
  out += '}';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string fmt_double(double v) {
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

// ===========================================================================
// Registry
// ===========================================================================

std::string Registry::key_of(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

Registry::Entry& Registry::add_entry(const std::string& name, Labels labels,
                                     Kind kind, const void* owner) {
  Entry e;
  e.name = name;
  e.labels = normalized(std::move(labels));
  e.kind = kind;
  e.owner = owner;
  entries_.push_back(std::move(e));
  if (owner != nullptr) {
    owner_index_[owner].push_back(std::prev(entries_.end()));
  }
  return entries_.back();
}

Counter& Registry::counter(const std::string& name, Labels labels) {
  labels = normalized(std::move(labels));
  const std::string key = key_of(name, labels);
  for (const auto& [k, ent] : owned_index_) {
    if (k == key && ent->kind == Kind::counter) {
      return *const_cast<Counter*>(ent->c);
    }
  }
  owned_counters_.emplace_back();
  Entry& e = add_entry(name, std::move(labels), Kind::counter, nullptr);
  e.c = &owned_counters_.back();
  owned_index_.emplace_back(key, &e);
  return owned_counters_.back();
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  labels = normalized(std::move(labels));
  const std::string key = key_of(name, labels);
  for (const auto& [k, ent] : owned_index_) {
    if (k == key && ent->kind == Kind::gauge) {
      return *const_cast<Gauge*>(ent->g);
    }
  }
  owned_gauges_.emplace_back();
  Entry& e = add_entry(name, std::move(labels), Kind::gauge, nullptr);
  e.g = &owned_gauges_.back();
  owned_index_.emplace_back(key, &e);
  return owned_gauges_.back();
}

Histogram& Registry::histogram(const std::string& name, Labels labels,
                               std::vector<double> bounds) {
  labels = normalized(std::move(labels));
  const std::string key = key_of(name, labels);
  for (const auto& [k, ent] : owned_index_) {
    if (k == key && ent->kind == Kind::histogram) {
      return *const_cast<Histogram*>(ent->h);
    }
  }
  owned_histograms_.emplace_back(std::move(bounds));
  Entry& e = add_entry(name, std::move(labels), Kind::histogram, nullptr);
  e.h = &owned_histograms_.back();
  owned_index_.emplace_back(key, &e);
  return owned_histograms_.back();
}

void Registry::attach_counter(const std::string& name, Labels labels,
                              const Counter* c, const void* owner) {
  add_entry(name, std::move(labels), Kind::counter, owner).c = c;
}

void Registry::attach_gauge(const std::string& name, Labels labels,
                            const Gauge* g, const void* owner) {
  add_entry(name, std::move(labels), Kind::gauge, owner).g = g;
}

void Registry::attach_gauge_fn(const std::string& name, Labels labels,
                               std::function<double()> fn,
                               const void* owner) {
  add_entry(name, std::move(labels), Kind::gauge, owner).gauge_fn =
      std::move(fn);
}

void Registry::attach_histogram(const std::string& name, Labels labels,
                                const Histogram* h, const void* owner) {
  add_entry(name, std::move(labels), Kind::histogram, owner).h = h;
}

void Registry::detach(const void* owner) {
  if (owner == nullptr) return;
  auto it = owner_index_.find(owner);
  if (it == owner_index_.end()) return;
  for (auto ent : it->second) entries_.erase(ent);
  owner_index_.erase(it);
}

void Registry::reset_owned() {
  for (auto& c : owned_counters_) c.reset();
  for (auto& g : owned_gauges_) g.reset();
  for (auto& h : owned_histograms_) h.reset();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  snap.points.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricPoint p;
    p.name = e.name;
    p.labels = e.labels;
    p.kind = e.kind;
    switch (e.kind) {
      case Kind::counter:
        p.counter = e.c->value();
        break;
      case Kind::gauge:
        p.gauge = e.gauge_fn ? e.gauge_fn() : e.g->value();
        break;
      case Kind::histogram:
        p.bounds = e.h->bounds();
        p.bucket_counts = e.h->bucket_counts();
        p.sum = e.h->sum();
        p.count = e.h->count();
        break;
    }
    snap.points.push_back(std::move(p));
  }
  std::stable_sort(snap.points.begin(), snap.points.end(),
                   [](const MetricPoint& a, const MetricPoint& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return render_labels(a.labels) < render_labels(b.labels);
                   });
  return snap;
}

// ===========================================================================
// MetricsSnapshot
// ===========================================================================

const MetricPoint* MetricsSnapshot::find(std::string_view name,
                                         Labels labels) const {
  labels = normalized(std::move(labels));
  for (const auto& p : points) {
    if (p.name == name && p.labels == labels) return &p;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& p : points) {
    if (p.kind == Kind::counter && p.name == name) total += p.counter;
  }
  return total;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  for (const auto& p : points) {
    const std::string ls = render_labels(p.labels);
    switch (p.kind) {
      case Kind::counter:
        out += p.name;
        out += ls;
        out += ' ';
        append_u64(out, p.counter);
        out += '\n';
        break;
      case Kind::gauge:
        out += p.name;
        out += ls;
        out += ' ';
        out += fmt_double(p.gauge);
        out += '\n';
        break;
      case Kind::histogram: {
        // Prometheus le-buckets are cumulative; the instrument stores
        // per-bucket counts.
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < p.bucket_counts.size(); ++i) {
          Labels bl = p.labels;
          bl.emplace_back("le", i < p.bounds.size() ? fmt_double(p.bounds[i])
                                                    : "+inf");
          cum += p.bucket_counts[i];
          out += p.name;
          out += "_bucket";
          out += render_labels(bl);
          out += ' ';
          append_u64(out, cum);
          out += '\n';
        }
        out += p.name;
        out += "_sum";
        out += ls;
        out += ' ';
        out += fmt_double(p.sum);
        out += '\n';
        out += p.name;
        out += "_count";
        out += ls;
        out += ' ';
        append_u64(out, p.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& p : points) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, p.name);
    out += "\",\"type\":\"";
    out += to_string(p.kind);
    out += "\",\"labels\":";
    append_json_labels(out, p.labels);
    switch (p.kind) {
      case Kind::counter:
        out += ",\"value\":";
        append_u64(out, p.counter);
        break;
      case Kind::gauge:
        out += ",\"value\":";
        out += fmt_double(p.gauge);
        break;
      case Kind::histogram: {
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < p.bucket_counts.size(); ++i) {
          if (i) out += ',';
          out += "{\"le\":";
          out += i < p.bounds.size() ? fmt_double(p.bounds[i]) : "\"+inf\"";
          out += ",\"count\":";
          append_u64(out, p.bucket_counts[i]);
          out += '}';
        }
        out += "],\"sum\":";
        out += fmt_double(p.sum);
        out += ",\"count\":";
        append_u64(out, p.count);
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace vmic::obs
