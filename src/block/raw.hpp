#pragma once

#include <utility>

#include "block/device.hpp"

namespace vmic::block {

/// Raw driver: the virtual disk is the file, byte for byte. Base VMIs in
/// the evaluation are raw images (the paper: "the base image can be of any
/// supported format").
class RawDevice final : public BlockDevice {
 public:
  /// Wrap an existing file as a raw device. `virtual_size` 0 means "use
  /// the file's current size".
  static Result<DevicePtr> open(io::BackendPtr backend,
                                std::uint64_t virtual_size = 0) {
    if (backend == nullptr) return Errc::invalid_argument;
    const std::uint64_t size =
        virtual_size != 0 ? virtual_size : backend->size();
    return DevicePtr{new RawDevice(std::move(backend), size)};
  }

  sim::Task<Result<void>> read(std::uint64_t off,
                               std::span<std::uint8_t> dst) override {
    if (off + dst.size() > size_) co_return Errc::out_of_range;
    ++stats_.guest_reads;
    stats_.bytes_read += dst.size();
    co_return co_await backend_->pread(off, dst);
  }

  sim::Task<Result<void>> write(std::uint64_t off,
                                std::span<const std::uint8_t> src) override {
    if (off + src.size() > size_) co_return Errc::out_of_range;
    if (backend_->read_only()) co_return Errc::read_only;
    ++stats_.guest_writes;
    stats_.bytes_written += src.size();
    co_return co_await backend_->pwrite(off, src);
  }

  sim::Task<Result<void>> flush() override {
    co_return co_await backend_->flush();
  }

  sim::Task<Result<void>> close() override {
    co_return co_await backend_->flush();
  }

  [[nodiscard]] std::uint64_t size() const override { return size_; }
  [[nodiscard]] bool read_only() const override {
    return backend_->read_only();
  }
  void set_read_only_mode(bool ro) override { backend_->set_read_only(ro); }
  [[nodiscard]] std::string format_name() const override { return "raw"; }

  [[nodiscard]] io::BlockBackend& backend() noexcept { return *backend_; }

 private:
  RawDevice(io::BackendPtr backend, std::uint64_t size)
      : backend_(std::move(backend)), size_(size) {}

  io::BackendPtr backend_;
  std::uint64_t size_;
};

}  // namespace vmic::block
