#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "io/backend.hpp"
#include "obs/hub.hpp"
#include "sim/task.hpp"
#include "util/result.hpp"

namespace vmic::block {

class BlockDevice;
using DevicePtr = std::unique_ptr<BlockDevice>;

/// Per-device operation counters. The evaluation reads these off the
/// storage-node / device stack (e.g. Fig 9's "observed traffic at the
/// storage node" is the byte counters of the base image's backend).
struct DeviceStats {
  obs::Counter guest_reads;       ///< read() calls served
  obs::Counter guest_writes;      ///< write() calls served
  obs::Counter bytes_read;        ///< payload bytes returned
  obs::Counter bytes_written;     ///< payload bytes accepted
  obs::Counter backing_reads;     ///< recursions into the backing image
  obs::Counter bytes_from_backing;
  obs::Counter cor_fills;         ///< CoR population passes that stored data
  obs::Counter cor_clusters;      ///< clusters copied into a cache (CoR)
  obs::Counter cor_bytes;         ///< bytes copied into a cache (CoR)
  obs::Counter cor_stopped;       ///< quota exhaustion events (ENOSPC)
  obs::Counter cor_inflight_waits;  ///< readers that queued behind a fill
  obs::Counter cor_dedup_hits;    ///< clusters served locally after a wait
                                  ///< instead of a duplicate backing fetch
  obs::Counter alloc_lock_waits;  ///< contended allocator-mutex acquisitions
};

/// A virtual block device: what the guest (or an overlay image) reads and
/// writes. Drivers: RawDevice (src/block/raw.hpp) and Qcow2Device
/// (src/qcow2), the latter optionally acting as the paper's cache image.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual sim::Task<Result<void>> read(std::uint64_t off,
                                       std::span<std::uint8_t> dst) = 0;
  virtual sim::Task<Result<void>> write(std::uint64_t off,
                                        std::span<const std::uint8_t> src) = 0;
  virtual sim::Task<Result<void>> flush() = 0;

  /// Orderly shutdown; cache images persist their current-size header
  /// field here (paper §4.3 "close"). The destructor must not be relied
  /// on for this — it cannot perform (simulated) I/O.
  virtual sim::Task<Result<void>> close() = 0;

  /// Virtual disk size in bytes.
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  [[nodiscard]] virtual bool read_only() const = 0;

  /// Demote/promote writability (backing-image reopen dance, §4.3).
  virtual void set_read_only_mode(bool ro) = 0;

  /// True for images carrying the paper's cache extension.
  [[nodiscard]] virtual bool is_cache_image() const { return false; }

  /// Driver name ("raw", "qcow2").
  [[nodiscard]] virtual std::string format_name() const = 0;

  /// Backing device, or nullptr for standalone images.
  [[nodiscard]] virtual BlockDevice* backing() const { return nullptr; }

  [[nodiscard]] const DeviceStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = DeviceStats{}; }

 protected:
  DeviceStats stats_;
};

/// Resolves a backing-file reference found inside an image into an opened
/// device. The host resolver opens files relative to the referring image;
/// the simulated resolver looks the path up on a node's mounts. `writable`
/// communicates the paper's open-RW-first behaviour: the callee opens the
/// image writable, and the caller demotes it afterwards if it turns out
/// not to be a cache image.
using BackingResolver =
    std::function<sim::Task<Result<DevicePtr>>(const std::string& path,
                                               bool writable)>;

/// Options shared by all drivers' open paths.
struct OpenOptions {
  bool writable = true;
  /// Resolver for backing images; required when the image may have one.
  BackingResolver resolver;
  /// Maximum backing-chain depth (defence against cycles).
  int max_chain_depth = 8;
  /// Force cache-image backings read-only too (normally they keep write
  /// permission for copy-on-read). Used when a *shared* warm cache is
  /// attached by many VMs at once — a fully-warm cache takes no CoR
  /// writes anyway, and this guards the single-writer invariant.
  bool cache_backing_ro = false;
  /// Observability sink. When set, drivers mirror per-device counters
  /// into registry-owned aggregates (qcow2.*{image=...}) and trace CoR
  /// fills; devices are too short-lived for per-instance attachment.
  obs::Hub* hub = nullptr;
  /// Coalesce concurrent copy-on-read fills per cluster range: readers of
  /// an in-flight cluster wait for the fill and are served locally instead
  /// of issuing a duplicate backing fetch. Off = the legacy serialized
  /// behaviour (one device-wide fill at a time, duplicate fetches) — kept
  /// as an ablation baseline for bench_concurrency_cor. Applies to every
  /// qcow2 device in the opened chain.
  bool cor_single_flight = true;
  /// Defer refcount *decrements* to memory while the image is dirty; the
  /// clean-close path (or `repair()`) persists them. A crash can then
  /// leave stale-high on-disk refcounts — leaks, never corruption — in
  /// exchange for fewer metadata writes on the free/discard path.
  bool lazy_refcounts = false;
  /// Opening an image whose header carries the dirty bit writable runs
  /// `repair()` automatically (qemu semantics). Tools that want to
  /// observe or report the damage first (vmi-img check, crash::explore)
  /// turn this off and call repair() explicitly.
  bool auto_repair_dirty = true;
  /// Do not resolve or open the backing chain even when the header names
  /// one: the device stands alone and unallocated clusters read as zeros.
  /// Safe for any caller that only reads allocated extents (map_status
  /// tells which). The peer cache tier opens a seed's cache file this way
  /// — serving another node's fill must never recurse into the seed's own
  /// NFS-mounted backing image.
  bool no_backing = false;
};

}  // namespace vmic::block
