#include "manifest/manifest.hpp"

#include <cstring>

#include "util/bytes.hpp"

namespace vmic::manifest {

namespace {

constexpr std::uint8_t kMagic[8] = {'V', 'M', 'I', 'C', 'M', 'A', 'N', '1'};
constexpr std::uint32_t kVersion = 1;
// magic 8 + version 4 + generation 8 + count 4 + body len 4 + body fnv 8
// + header fnv 8.
constexpr std::size_t kHeaderSize = 44;
constexpr std::size_t kHeaderFnvAt = kHeaderSize - 8;

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  std::uint8_t b[2];
  store_be16(b, v);
  out.insert(out.end(), b, b + 2);
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t b[4];
  store_be32(b, v);
  out.insert(out.end(), b, b + 4);
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t b[8];
  store_be64(b, v);
  out.insert(out.end(), b, b + 8);
}

/// Bounded big-endian reader over the body; any read past the end trips
/// the `bad` flag instead of running off the buffer (a torn length field
/// must fail decode, not fault).
struct Reader {
  std::span<const std::uint8_t> buf;
  std::size_t pos = 0;
  bool bad = false;

  [[nodiscard]] bool need(std::size_t n) {
    if (buf.size() - pos < n) {
      bad = true;
      return false;
    }
    return true;
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = load_be16(buf.data() + pos);
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    const std::uint32_t v = load_be32(buf.data() + pos);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    const std::uint64_t v = load_be64(buf.data() + pos);
    pos += 8;
    return v;
  }
  std::string str(std::size_t n) {
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(buf.data() + pos), n);
    pos += n;
    return s;
  }
};

}  // namespace

std::vector<std::uint8_t> encode(const NodeManifest& m) {
  std::vector<std::uint8_t> body;
  for (const CacheEntry& e : m.entries) {
    const std::size_t start = body.size();
    put16(body, static_cast<std::uint16_t>(e.image.size()));
    body.insert(body.end(), e.image.begin(), e.image.end());
    put16(body, static_cast<std::uint16_t>(e.cache_file.size()));
    body.insert(body.end(), e.cache_file.begin(), e.cache_file.end());
    put64(body, e.bytes);
    put64(body, e.fill_generation);
    put64(body, e.check_generation);
    body.push_back(e.dedup_indexed ? 1 : 0);
    put32(body, static_cast<std::uint32_t>(e.coverage.size()));
    for (const auto& [lo, hi] : e.coverage) {
      put64(body, lo);
      put64(body, hi);
    }
    put64(body, fnv1a({body.data() + start, body.size() - start}));
  }

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + body.size());
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put32(out, kVersion);
  put64(out, m.generation);
  put32(out, static_cast<std::uint32_t>(m.entries.size()));
  put32(out, static_cast<std::uint32_t>(body.size()));
  put64(out, fnv1a(body));
  put64(out, fnv1a({out.data(), kHeaderFnvAt}));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<NodeManifest> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) return Errc::invalid_format;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Errc::invalid_format;
  }
  if (fnv1a(bytes.subspan(0, kHeaderFnvAt)) !=
      load_be64(bytes.data() + kHeaderFnvAt)) {
    return Errc::corrupt;
  }
  if (load_be32(bytes.data() + 8) != kVersion) return Errc::unsupported;
  NodeManifest m;
  m.generation = load_be64(bytes.data() + 12);
  const std::uint32_t count = load_be32(bytes.data() + 20);
  const std::uint32_t body_len = load_be32(bytes.data() + 24);
  if (bytes.size() - kHeaderSize < body_len) return Errc::corrupt;
  const auto body = bytes.subspan(kHeaderSize, body_len);
  if (fnv1a(body) != load_be64(bytes.data() + 28)) return Errc::corrupt;

  Reader r{body};
  m.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t start = r.pos;
    CacheEntry e;
    e.image = r.str(r.u16());
    e.cache_file = r.str(r.u16());
    e.bytes = r.u64();
    e.fill_generation = r.u64();
    e.check_generation = r.u64();
    if (r.need(1)) e.dedup_indexed = body[r.pos++] != 0;
    const std::uint32_t nc = r.u32();
    // Bound before reserving: a torn count must not balloon allocation.
    if (!r.need(static_cast<std::size_t>(nc) * 16)) return Errc::corrupt;
    e.coverage.reserve(nc);
    for (std::uint32_t c = 0; c < nc; ++c) {
      const std::uint64_t lo = r.u64();
      const std::uint64_t hi = r.u64();
      e.coverage.emplace_back(lo, hi);
    }
    const std::uint64_t want = fnv1a({body.data() + start, r.pos - start});
    if (r.bad || r.u64() != want) return Errc::corrupt;
    m.entries.push_back(std::move(e));
  }
  if (r.bad || r.pos != body.size()) return Errc::corrupt;
  return m;
}

sim::Task<std::optional<NodeManifest>> Store::load_slot(
    const std::string& name) {
  if (!dir_->exists(name)) co_return std::nullopt;
  auto be = dir_->open_file(name, /*writable=*/false);
  if (!be.ok()) co_return std::nullopt;
  const std::uint64_t sz = (*be)->size();
  if (sz < kHeaderSize) co_return std::nullopt;
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(sz));
  auto rr = co_await (*be)->pread(0, buf);
  if (!rr.ok()) co_return std::nullopt;
  auto m = decode(buf);
  if (!m.ok()) co_return std::nullopt;
  co_return std::move(*m);
}

sim::Task<Result<std::optional<NodeManifest>>> Store::load() {
  auto a = co_await load_slot(slot_a());
  auto b = co_await load_slot(slot_b());
  gen_ = 0;
  active_ = -1;
  std::optional<NodeManifest> best;
  if (a) {
    best = std::move(a);
    active_ = 0;
  }
  if (b && (!best || b->generation > best->generation)) {
    best = std::move(b);
    active_ = 1;
  }
  if (best) gen_ = best->generation;
  co_return best;
}

sim::Task<Result<void>> Store::publish(NodeManifest m) {
  m.generation = ++gen_;
  const std::vector<std::uint8_t> bytes = encode(m);
  // Write the slot the last valid generation does NOT live in: a cut at
  // any point of this sequence leaves the active slot untouched.
  const int target = active_ == 0 ? 1 : 0;
  const std::string name = target == 0 ? slot_a() : slot_b();
  auto be = dir_->exists(name) ? dir_->open_file(name, /*writable=*/true)
                               : dir_->create_file(name);
  if (!be.ok()) co_return be.error();
  // Payload, then truncate any stale tail, then one flush barrier. Order
  // within the unflushed window does not matter — nothing is trusted
  // until the flush — and the checksums reject any torn subset.
  VMIC_CO_TRY_VOID(co_await (*be)->pwrite(0, bytes));
  VMIC_CO_TRY_VOID(co_await (*be)->truncate(bytes.size()));
  VMIC_CO_TRY_VOID(co_await (*be)->flush());
  active_ = target;
  co_return ok_result();
}

}  // namespace vmic::manifest
