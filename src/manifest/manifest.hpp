#pragma once

// vmic::manifest — the durable control plane's per-node cache manifest.
//
// A compute node's warm caches are worth real storage-node traffic, but
// until this module the knowledge of *which* qcow2 files are verified
// caches lived only in the engine's in-memory bookkeeping (CachePool,
// SeedRegistry, FingerprintIndex). A cloud restart threw all of it away
// and re-paid the full cold-population cost. The manifest persists that
// bookkeeping next to the cache files themselves so a restarted engine
// can re-adopt the caches it can still verify.
//
// Durability discipline (same as the refcount journal, PR 5):
//   * every record is checksummed (fnv1a) so a torn sector is detected,
//     never trusted;
//   * publication is atomic-by-replacement over two slot files
//     (`<base>.a` / `<base>.b`): a publish writes the *other* slot in
//     full — payload first, then one flush barrier — and the load picks
//     the highest-generation slot whose checksums verify. A power cut at
//     any write boundary leaves at least the previously published
//     generation intact (SimDirectory has no rename, and a real node
//     would want the same two-slot scheme on filesystems where rename
//     durability is subtle anyway);
//   * the manifest is advisory, never authoritative: adoption re-opens
//     and re-checks every listed cache through the crash-salvage path,
//     so a stale entry degrades to a cold cache, never to corruption.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "io/directory.hpp"
#include "sim/task.hpp"
#include "util/result.hpp"

namespace vmic::manifest {

/// One cached image as recorded at the last publish.
struct CacheEntry {
  std::string image;       ///< base image id ("img-3")
  std::string cache_file;  ///< qcow2 cache path in the node's namespace
  std::uint64_t bytes = 0;  ///< pool accounting (quota charge) at publish
  /// Bumped every time the engine observed the cache's coverage grow
  /// (CoR fills); a reader can tell "same file, more content" apart from
  /// "untouched since".
  std::uint64_t fill_generation = 0;
  /// Bumped on every verified `check` (salvage or adoption); 0 = the
  /// cache was never independently verified on this node.
  std::uint64_t check_generation = 0;
  /// Cluster fingerprints were indexed for dedup at last publish.
  bool dedup_indexed = false;
  /// Peer-seed coverage (guest byte extents, half-open) advertised at
  /// last publish. Advisory: adoption re-derives real coverage from the
  /// post-repair allocation map.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> coverage;

  friend bool operator==(const CacheEntry&, const CacheEntry&) = default;
};

/// Everything one publish writes: a generation stamp plus the node's
/// cache table.
struct NodeManifest {
  std::uint64_t generation = 0;  ///< monotonic publish counter
  std::vector<CacheEntry> entries;

  friend bool operator==(const NodeManifest&, const NodeManifest&) = default;
};

/// Serialise to the on-disk record format:
///
///   header (44 B): magic "VMICMAN1" | version u32 | generation u64 |
///                  entry count u32 | body length u32 | body fnv64 |
///                  header fnv64 (over the preceding 36 bytes)
///   body: per entry — image len u16 + bytes, cache len u16 + bytes,
///         bytes u64, fill gen u64, check gen u64, flags u8,
///         coverage count u32 + (lo u64, hi u64)*, entry fnv64
///
/// Three checksum scopes (header, per-entry, whole body) so a torn
/// multi-sector write — CrashBackend persists arbitrary per-sector
/// subsets — can never decode: any mix of old and new bytes fails at
/// least one scope.
std::vector<std::uint8_t> encode(const NodeManifest& m);

/// Strict inverse of encode(): any checksum/length/magic mismatch is
/// Errc::corrupt (callers fall back to the other slot), a buffer too
/// short for a header is Errc::invalid_format.
Result<NodeManifest> decode(std::span<const std::uint8_t> bytes);

/// A/B-slot manifest store over an ImageDirectory. One Store per node;
/// all I/O goes through BlockBackend so the flush-barrier contract (and
/// CrashBackend's power-cut model) applies to every mutation.
class Store {
 public:
  /// `base` names the slot pair: `<base>.a` and `<base>.b`.
  explicit Store(io::ImageDirectory* dir, std::string base = "manifest")
      : dir_(dir), base_(std::move(base)) {}

  /// Publish `m` as the next generation: assign generation = last + 1,
  /// write the inactive slot in full (truncate, payload, flush), and
  /// remember it as active. The previously active slot is untouched, so
  /// a cut anywhere in here still loads the old generation.
  sim::Task<Result<void>> publish(NodeManifest m);

  /// Load the highest-generation slot that decodes cleanly. nullopt =
  /// neither slot exists or verifies (fresh node, or both torn — the
  /// caller treats either as "no durable state, start cold"). Also
  /// resynchronises the store's generation counter and active slot, so
  /// load() then publish() continues the on-disk sequence.
  sim::Task<Result<std::optional<NodeManifest>>> load();

  /// Highest generation seen by this store (0 = nothing published yet).
  [[nodiscard]] std::uint64_t generation() const noexcept { return gen_; }

  [[nodiscard]] std::string slot_a() const { return base_ + ".a"; }
  [[nodiscard]] std::string slot_b() const { return base_ + ".b"; }

 private:
  sim::Task<std::optional<NodeManifest>> load_slot(const std::string& name);

  io::ImageDirectory* dir_;
  std::string base_;
  std::uint64_t gen_ = 0;
  /// Slot index (0 = .a, 1 = .b) holding the highest valid generation;
  /// publish writes the other one. -1 = unknown (publish writes .a).
  int active_ = -1;
};

}  // namespace vmic::manifest
