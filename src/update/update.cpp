#include "update/update.hpp"

#include <algorithm>

namespace vmic::update {

namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Result<Policy> parse_policy(std::string_view text) {
  if (text == "invalidate") return Policy::invalidate;
  if (text == "rebase") return Policy::rebase;
  if (text == "auto") return Policy::auto_;
  return Errc::invalid_argument;
}

std::vector<UpdateEvent> generate_schedule(const UpdateParams& params,
                                           int num_vmis, double horizon_s,
                                           Rng& rng) {
  std::vector<UpdateEvent> out;
  if (!params.enabled || num_vmis <= 0 || !(params.rate_per_hour > 0)) {
    return out;
  }
  const double mean_gap_s = 3600.0 / params.rate_per_hour;
  std::vector<std::uint32_t> next_version(static_cast<std::size_t>(num_vmis),
                                          1);
  double t = 0;
  int i = 0;
  while (true) {
    t += rng.exponential(mean_gap_s);
    if (t >= horizon_s) break;
    if (params.max_events > 0 &&
        static_cast<int>(out.size()) >= params.max_events) {
      break;
    }
    // Round-robin over the catalog: the Zipf head (image 0) updates
    // first, so even a short run exercises churn on a busy image.
    const int vmi = i++ % num_vmis;
    UpdateEvent e;
    e.at_s = t;
    e.vmi = vmi;
    e.to_version = next_version[static_cast<std::size_t>(vmi)]++;
    out.push_back(e);
  }
  return out;
}

bool cluster_changed(int vmi, std::uint64_t cluster, std::uint32_t version,
                     double changed_frac) noexcept {
  if (version == 0) return false;
  if (changed_frac >= 1.0) return true;
  if (!(changed_frac > 0)) return false;
  // Decide per aligned run so changed content clumps into whole host
  // pages instead of scattering 512-byte islands across the image.
  const std::uint64_t run = cluster / kChangedRunClusters;
  const std::uint64_t h =
      mix64(mix64(0x75bcd15ull ^ static_cast<std::uint64_t>(vmi)) ^
            (static_cast<std::uint64_t>(version) << 40) ^ run);
  // Map the hash to [0, 1) and compare against the target fraction.
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  return u < changed_frac;
}

std::uint64_t changed_content_seed(int vmi, std::uint64_t cluster,
                                   std::uint32_t version) noexcept {
  return mix64(mix64(0xc0ffee ^ static_cast<std::uint64_t>(vmi)) ^
               (static_cast<std::uint64_t>(version) << 32) ^ cluster);
}

std::string versioned_name(const std::string& base, std::uint32_t version) {
  if (version == 0) return base;
  return base + "@" + std::to_string(version);
}

std::uint32_t version_of(std::string_view name) noexcept {
  const std::size_t at = name.rfind('@');
  if (at == std::string_view::npos) return 0;
  std::uint32_t v = 0;
  for (std::size_t i = at + 1; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return 0;
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return v;
}

std::string_view base_name(std::string_view name) noexcept {
  const std::size_t at = name.rfind('@');
  if (at == std::string_view::npos) return name;
  return name.substr(0, at);
}

}  // namespace vmic::update
