#pragma once

// vmic::update — image-update (catalog churn) subsystem. Real fleets do
// not boot one immutable catalog forever: base images get patched and
// republished mid-run, and every warm cache built against the old
// version is suddenly suspect. This module owns the *schedule* side of
// that story — when each image publishes a new version, and which
// clusters that version actually changes — so the engine can decide per
// node between invalidating the warm cache (refill cold) and
// incrementally rebasing it (patch only the changed clusters).
//
// Everything here is deterministic per seed: the event times come from
// a dedicated Rng stream forked off the run seed, and the changed-
// cluster set is a pure hash of (image, version, cluster-run), so two
// runs with the same seed see byte-identical churn regardless of
// policy. Changed clusters are clumped into page-aligned runs (8
// clusters = one 4 KiB SparseBuffer page) so publishing a version
// materialises host memory proportional to the bytes that actually
// changed, and so a rebase patches contiguous extents rather than
// confetti.

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/rng.hpp"

namespace vmic::update {

/// What the engine does to a warm cache when its base image publishes a
/// new version.
enum class Policy {
  invalidate,  ///< drop the warm cache, refill cold from the new base
  rebase,      ///< patch only changed clusters into the existing cache
  auto_,       ///< rebase when the changed fraction is small, else drop
};

constexpr const char* to_string(Policy p) noexcept {
  switch (p) {
    case Policy::invalidate: return "invalidate";
    case Policy::rebase: return "rebase";
    case Policy::auto_: return "auto";
  }
  return "?";
}

/// Parse "invalidate" | "rebase" | "auto". Fails with
/// Errc::invalid_argument on anything else.
Result<Policy> parse_policy(std::string_view text);

struct UpdateParams {
  bool enabled = false;
  /// Mean catalog-wide publish rate (Poisson), in updates per simulated
  /// hour. Each event bumps exactly one image's version.
  double rate_per_hour = 2.0;
  /// Fraction of the image's clusters a new version rewrites.
  double changed_frac = 0.10;
  Policy policy = Policy::auto_;
  /// auto_: rebase iff changed_frac <= this threshold.
  double rebase_threshold = 0.5;
  /// Cap on the number of publish events (0 = unlimited).
  int max_events = 0;
};

/// One catalog event: image `vmi` publishes version `to_version` at
/// simulated time `at_s`. Versions per image count 1, 2, 3, ...
struct UpdateEvent {
  double at_s = 0;
  int vmi = 0;
  std::uint32_t to_version = 0;
};

/// Materialise the publish schedule over [0, horizon_s). Event times are
/// Poisson at `rate_per_hour`; images are assigned round-robin so the
/// most popular (Zipf rank 0) image updates first and every image
/// churns eventually. All draws come from `rng` in a fixed order.
std::vector<UpdateEvent> generate_schedule(const UpdateParams& params,
                                           int num_vmis, double horizon_s,
                                           Rng& rng);

/// Clusters change in aligned runs of this many clusters (at 512-byte
/// sim clusters: 8 * 512 = 4096 bytes = exactly one SparseBuffer page).
constexpr std::uint64_t kChangedRunClusters = 8;

/// Deterministically decide whether `cluster` of image `vmi` is
/// rewritten by version `version` (versions count from 1). The decision
/// is made per aligned run of kChangedRunClusters so changes clump into
/// whole pages; ~`changed_frac` of all clusters change per version,
/// independently across versions.
bool cluster_changed(int vmi, std::uint64_t cluster, std::uint32_t version,
                     double changed_frac) noexcept;

/// Content seed for a cluster the given version rewrote. Mixing the
/// version in guarantees rewritten bytes differ from every earlier
/// version of the same cluster.
std::uint64_t changed_content_seed(int vmi, std::uint64_t cluster,
                                   std::uint32_t version) noexcept;

/// Versioned image naming: version 0 keeps the bare name (so runs with
/// updates off are byte-identical to the pre-update engine), version
/// k > 0 appends "@k". "img-3" -> "img-3@2".
std::string versioned_name(const std::string& base, std::uint32_t version);

/// Parse the version suffix back out of a (possibly bare) image name.
std::uint32_t version_of(std::string_view name) noexcept;

/// Strip the version suffix: "img-3@2" -> "img-3".
std::string_view base_name(std::string_view name) noexcept;

}  // namespace vmic::update
