#pragma once

// vmic::peer — the peer cache tier's seed directory. A compute node whose
// cache image holds populated clusters of a VMI registers here as a seed;
// other nodes' copy-on-read fills then fetch cluster ranges from the
// least-loaded seed instead of funnelling through the storage node's NFS
// export (the centralized-transfer bottleneck §7.1.1's P2P systems exist
// to avoid). The registry is pure bookkeeping: per-(image, node) coverage
// intervals plus per-node upload load — the owner (cloud::Engine) drives
// the lifecycle (adopt/evict/crash/salvage) and the transfers themselves
// go through peer::Fabric.

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "util/interval_set.hpp"

namespace vmic::peer {

class SeedRegistry {
 public:
  /// Enroll `node` as a seed for `img` (idempotent). Coverage starts
  /// empty; add_coverage / the CoR fill observer grow it.
  /// Returns true if this was a new registration.
  bool register_seed(int node, const std::string& img) {
    return seeds_[img].emplace(node, IntervalSet{}).second;
  }

  [[nodiscard]] bool is_seed(int node, const std::string& img) const {
    auto it = seeds_.find(img);
    return it != seeds_.end() && it->second.count(node) != 0;
  }

  /// Guest byte range [lo, hi) of `img` became servable from `node`'s
  /// cache file. No-op unless the node is registered.
  void add_coverage(int node, const std::string& img, std::uint64_t lo,
                    std::uint64_t hi) {
    auto it = seeds_.find(img);
    if (it == seeds_.end()) return;
    auto ns = it->second.find(node);
    if (ns != it->second.end() && lo < hi) ns->second.insert(lo, hi);
  }

  /// Coverage of one seed, or nullptr when not registered.
  [[nodiscard]] const IntervalSet* coverage(int node,
                                            const std::string& img) const {
    auto it = seeds_.find(img);
    if (it == seeds_.end()) return nullptr;
    auto ns = it->second.find(node);
    return ns == it->second.end() ? nullptr : &ns->second;
  }

  /// The node's cache of `img` is gone (evicted, scrubbed, or reclaimed).
  /// Returns true if it was registered.
  bool deregister(int node, const std::string& img) {
    auto it = seeds_.find(img);
    if (it == seeds_.end()) return false;
    const bool had = it->second.erase(node) != 0;
    if (it->second.empty()) seeds_.erase(it);
    return had;
  }

  /// The node crashed: every cache it held is suspect. Returns how many
  /// seed entries were dropped.
  std::size_t deregister_node(int node) {
    std::size_t dropped = 0;
    for (auto it = seeds_.begin(); it != seeds_.end();) {
      dropped += it->second.erase(node);
      it = it->second.empty() ? seeds_.erase(it) : std::next(it);
    }
    return dropped;
  }

  /// Least-loaded seed among `candidates` whose coverage fully contains
  /// [lo, hi); -1 when none qualifies. Skips `exclude` (the requester —
  /// its own cache already missed) and seeds at or above `max_uploads`.
  /// Ties go to the lowest node id — deterministic, unlike p2p::Swarm's
  /// randomized tie-break, because the cloud engine pins byte-identical
  /// runs.
  [[nodiscard]] int pick_seed(const std::set<int>& candidates,
                              const std::string& img, std::uint64_t lo,
                              std::uint64_t hi, int exclude,
                              int max_uploads) const {
    auto it = seeds_.find(img);
    if (it == seeds_.end()) return -1;
    int best = -1;
    int best_load = 0;
    for (int node : candidates) {
      if (node == exclude) continue;
      auto ns = it->second.find(node);
      if (ns == it->second.end() || !ns->second.covers(lo, hi)) continue;
      const int load = active_uploads(node);
      if (load >= max_uploads) continue;
      if (best < 0 || load < best_load) {
        best = node;
        best_load = load;
      }
    }
    return best;
  }

  // Upload-load accounting (the pick_seed balancing signal).
  void begin_upload(int node) { ++uploads_[node]; }
  void end_upload(int node) {
    auto it = uploads_.find(node);
    if (it != uploads_.end() && --it->second == 0) uploads_.erase(it);
  }
  [[nodiscard]] int active_uploads(int node) const {
    auto it = uploads_.find(node);
    return it == uploads_.end() ? 0 : it->second;
  }

  // Per-node payload bytes served to peers (the "storage bytes avoided").
  void add_bytes_served(int node, std::uint64_t n) { bytes_served_[node] += n; }
  [[nodiscard]] std::uint64_t bytes_served(int node) const {
    auto it = bytes_served_.find(node);
    return it == bytes_served_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::size_t seed_count(const std::string& img) const {
    auto it = seeds_.find(img);
    return it == seeds_.end() ? 0 : it->second.size();
  }
  [[nodiscard]] std::size_t image_count() const { return seeds_.size(); }

 private:
  /// img -> (node -> covered guest byte ranges). Ordered maps: iteration
  /// order is part of the engine's determinism contract.
  std::map<std::string, std::map<int, IntervalSet>> seeds_;
  std::map<int, int> uploads_;
  std::map<int, std::uint64_t> bytes_served_;
};

}  // namespace vmic::peer
