#pragma once

// vmic::peer — the peer cache tier's seed directory. A compute node whose
// cache image holds populated clusters of a VMI registers here as a seed;
// other nodes' copy-on-read fills then fetch cluster ranges from the
// least-loaded seed instead of funnelling through the storage node's NFS
// export (the centralized-transfer bottleneck §7.1.1's P2P systems exist
// to avoid). The registry is pure bookkeeping: per-(image, node) coverage
// intervals plus per-node upload load — the owner (cloud::Engine) drives
// the lifecycle (adopt/evict/crash/salvage) and the transfers themselves
// go through peer::Fabric.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "util/interval_set.hpp"

namespace vmic::peer {

class SeedRegistry {
 public:
  /// Enroll `node` as a seed for `img` (idempotent). Coverage starts
  /// empty; add_coverage / the CoR fill observer grow it.
  /// Returns true if this was a new registration.
  bool register_seed(int node, const std::string& img) {
    return seeds_[img].emplace(node, IntervalSet{}).second;
  }

  [[nodiscard]] bool is_seed(int node, const std::string& img) const {
    auto it = seeds_.find(img);
    return it != seeds_.end() && it->second.count(node) != 0;
  }

  /// Guest byte range [lo, hi) of `img` became servable from `node`'s
  /// cache file. No-op unless the node is registered.
  void add_coverage(int node, const std::string& img, std::uint64_t lo,
                    std::uint64_t hi) {
    auto it = seeds_.find(img);
    if (it == seeds_.end()) return;
    auto ns = it->second.find(node);
    if (ns != it->second.end() && lo < hi) ns->second.insert(lo, hi);
  }

  /// Coverage of one seed, or nullptr when not registered.
  [[nodiscard]] const IntervalSet* coverage(int node,
                                            const std::string& img) const {
    auto it = seeds_.find(img);
    if (it == seeds_.end()) return nullptr;
    auto ns = it->second.find(node);
    return ns == it->second.end() ? nullptr : &ns->second;
  }

  /// The node's cache of `img` is gone (evicted, scrubbed, or reclaimed).
  /// Returns true if it was registered.
  bool deregister(int node, const std::string& img) {
    auto it = seeds_.find(img);
    if (it == seeds_.end()) return false;
    const bool had = it->second.erase(node) != 0;
    if (it->second.empty()) seeds_.erase(it);
    return had;
  }

  /// The node crashed: every cache it held is suspect. Returns how many
  /// seed entries were dropped.
  std::size_t deregister_node(int node) {
    std::size_t dropped = 0;
    for (auto it = seeds_.begin(); it != seeds_.end();) {
      dropped += it->second.erase(node);
      it = it->second.empty() ? seeds_.erase(it) : std::next(it);
    }
    return dropped;
  }

  /// Least-loaded seed among `candidates` whose coverage fully contains
  /// [lo, hi); -1 when none qualifies. Skips `exclude` (the requester —
  /// its own cache already missed) and seeds at or above `max_uploads`.
  /// Ties go to the lowest node id — deterministic, unlike p2p::Swarm's
  /// randomized tie-break, because the cloud engine pins byte-identical
  /// runs.
  [[nodiscard]] int pick_seed(const std::set<int>& candidates,
                              const std::string& img, std::uint64_t lo,
                              std::uint64_t hi, int exclude,
                              int max_uploads) const {
    auto it = seeds_.find(img);
    if (it == seeds_.end()) return -1;
    int best = -1;
    int best_load = 0;
    for (int node : candidates) {
      if (node == exclude) continue;
      auto ns = it->second.find(node);
      if (ns == it->second.end() || !ns->second.covers(lo, hi)) continue;
      const int load = active_uploads(node);
      if (load >= max_uploads) continue;
      if (best < 0 || load < best_load) {
        best = node;
        best_load = load;
      }
    }
    return best;
  }

  // Upload-load accounting (the pick_seed balancing signal).
  void begin_upload(int node) { ++uploads_[node]; }
  void end_upload(int node) {
    auto it = uploads_.find(node);
    if (it != uploads_.end() && --it->second == 0) uploads_.erase(it);
  }
  [[nodiscard]] int active_uploads(int node) const {
    auto it = uploads_.find(node);
    return it == uploads_.end() ? 0 : it->second;
  }

  // Per-node payload bytes served to peers (the "storage bytes avoided").
  void add_bytes_served(int node, std::uint64_t n) { bytes_served_[node] += n; }
  [[nodiscard]] std::uint64_t bytes_served(int node) const {
    auto it = bytes_served_.find(node);
    return it == bytes_served_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::size_t seed_count(const std::string& img) const {
    auto it = seeds_.find(img);
    return it == seeds_.end() ? 0 : it->second.size();
  }
  [[nodiscard]] std::size_t image_count() const { return seeds_.size(); }

  // --- content-keyed tier (cluster fingerprints) -----------------------
  //
  // Extends the (image, cluster-range) directory above to content: a
  // node advertising fingerprint fp can serve a CoR fill for *any* image
  // whose missing cluster hashes to fp (§7.3 cross-VMI sharing). Entries
  // are advisory — the requester verifies the fingerprint of the bytes
  // it receives and falls back on mismatch, so staleness degrades to a
  // miss, never to corruption.

  struct ContentHit {
    int node = -1;
    std::string img;          ///< cache image on `node` holding the bytes
    std::uint64_t cluster = 0;  ///< cache-cluster index within that image
  };

  /// `node`'s cache of `img` holds content `fp` at cluster index
  /// `cluster`. One location per (fp, node); the first registration wins.
  void register_content(std::uint64_t fp, int node, const std::string& img,
                        std::uint64_t cluster) {
    auto [it, fresh] = content_[fp].try_emplace(node, ContentHit{});
    if (!fresh) return;
    it->second = ContentHit{node, img, cluster};
    content_by_node_[node][img].insert(fp);
    ++content_locations_;
  }

  /// `node`'s cache of `img` is gone: drop the content it advertised
  /// through that image. Returns how many entries were dropped.
  std::size_t deregister_content(int node, const std::string& img) {
    auto bn = content_by_node_.find(node);
    if (bn == content_by_node_.end()) return 0;
    auto bi = bn->second.find(img);
    if (bi == bn->second.end()) return 0;
    std::size_t dropped = 0;
    for (const std::uint64_t fp : bi->second) {
      auto it = content_.find(fp);
      if (it == content_.end()) continue;
      dropped += it->second.erase(node);
      if (it->second.empty()) content_.erase(it);
    }
    content_locations_ -= dropped;
    bn->second.erase(bi);
    if (bn->second.empty()) content_by_node_.erase(bn);
    return dropped;
  }

  /// The node crashed: drop everything it advertised. Returns how many
  /// content entries were dropped.
  std::size_t deregister_content_node(int node) {
    auto bn = content_by_node_.find(node);
    if (bn == content_by_node_.end()) return 0;
    std::size_t dropped = 0;
    for (const auto& [img, fps] : bn->second) {
      for (const std::uint64_t fp : fps) {
        auto it = content_.find(fp);
        if (it == content_.end()) continue;
        dropped += it->second.erase(node);
        if (it->second.empty()) content_.erase(it);
      }
    }
    content_locations_ -= dropped;
    content_by_node_.erase(bn);
    return dropped;
  }

  /// Least-loaded node among `candidates` advertising `fp`, skipping
  /// `exclude` and nodes at or above `max_uploads`. Lowest node id wins
  /// ties (deterministic, same contract as pick_seed).
  [[nodiscard]] std::optional<ContentHit> find_content(
      std::uint64_t fp, const std::set<int>& candidates, int exclude,
      int max_uploads) const {
    auto it = content_.find(fp);
    if (it == content_.end()) return std::nullopt;
    const ContentHit* best = nullptr;
    int best_load = 0;
    for (int node : candidates) {
      if (node == exclude) continue;
      auto ns = it->second.find(node);
      if (ns == it->second.end()) continue;
      const int load = active_uploads(node);
      if (load >= max_uploads) continue;
      if (best == nullptr || load < best_load) {
        best = &ns->second;
        best_load = load;
      }
    }
    if (best == nullptr) return std::nullopt;
    return *best;
  }

  [[nodiscard]] std::uint64_t content_locations() const noexcept {
    return content_locations_;
  }

 private:
  /// img -> (node -> covered guest byte ranges). Ordered maps: iteration
  /// order is part of the engine's determinism contract.
  std::map<std::string, std::map<int, IntervalSet>> seeds_;
  std::map<int, int> uploads_;
  std::map<int, std::uint64_t> bytes_served_;
  /// fp -> (node -> location). Ordered for deterministic iteration.
  std::map<std::uint64_t, std::map<int, ContentHit>> content_;
  /// Reverse map for deregistration: node -> img -> advertised fps.
  std::map<int, std::map<std::string, std::set<std::uint64_t>>>
      content_by_node_;
  std::uint64_t content_locations_ = 0;
};

}  // namespace vmic::peer
