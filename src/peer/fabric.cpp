#include "peer/fabric.hpp"

#include <cassert>
#include <string>

namespace vmic::peer {

namespace {

/// Shared between the caller and the detached transfer: the caller waits
/// on `wake` (triggered by completion or the deadline timer, whichever
/// fires first) and reads `completed` to tell which.
struct TransferState {
  explicit TransferState(sim::SimEnv& env) : wake(env) {}
  bool completed = false;
  sim::Event wake;
};

struct Join {
  explicit Join(sim::SimEnv& env) : done(env) {}
  int remaining = 2;
  sim::Event done;
};

// Coroutine parameters, not lambda captures: the closures die before the
// first resume (see test_p2p.cpp for the idiom).
sim::Task<void> leg(net::Link* link, std::uint64_t bytes,
                    std::shared_ptr<Join> j) {
  co_await link->transfer(bytes);
  if (--j->remaining == 0) j->done.trigger();
}

}  // namespace

Fabric::Fabric(sim::SimEnv& env, std::size_t num_nodes, PeerParams p)
    : env_(env), p_(p) {
  assert(num_nodes > 0);
  nics_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nics_.push_back(
        std::make_unique<Nic>(env, p_, "peer" + std::to_string(i)));
  }
}

void Fabric::bind_obs(obs::Hub* hub) {
  for (auto& nic : nics_) {
    nic->up.bind_obs(hub);
    nic->down.bind_obs(hub);
  }
}

sim::Task<bool> Fabric::transfer(int src, int dst, std::uint64_t bytes) {
  assert(src != dst);
  Nic& s = *nics_[static_cast<std::size_t>(src)];
  Nic& d = *nics_[static_cast<std::size_t>(dst)];
  auto st = std::make_shared<TransferState>(env_);
  ++s.active_uploads;

  // The transfer proper runs detached so a timed-out caller can walk away
  // while the legs drain; the upload slot and byte accounting settle when
  // the slower leg finishes, not when the caller gives up.
  auto run = [](Fabric* f, Nic* sn, Nic* dn, std::uint64_t n,
                std::shared_ptr<TransferState> ts) -> sim::Task<void> {
    auto join = std::make_shared<Join>(f->env_);
    f->env_.spawn(leg(&sn->up, n, join));
    f->env_.spawn(leg(&dn->down, n, join));
    co_await join->done.wait();
    --sn->active_uploads;
    f->bytes_transferred_ += n;
    ts->completed = true;
    ts->wake.trigger();
  };
  env_.spawn(run(this, &s, &d, bytes, st));

  if (p_.timeout_s <= 0) {
    co_await st->wake.wait();
    co_return true;
  }
  const auto timer =
      env_.call_at(env_.now() + sim::from_seconds(p_.timeout_s),
                   [st] { st->wake.trigger(); });
  co_await st->wake.wait();
  if (st->completed) {
    env_.cancel(timer);  // exact no-op if it already fired this tick
    co_return true;
  }
  ++timeouts_;
  co_return false;
}

}  // namespace vmic::peer
