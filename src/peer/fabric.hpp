#pragma once

// vmic::peer — per-node NIC fabric for peer-to-peer cache fills. Same
// topology as p2p::Swarm (every compute node has its own full-duplex
// 1 GbE NIC behind a non-blocking switch; a transfer occupies the
// source's uplink and the destination's downlink concurrently and
// completes when the slower leg drains), plus the one thing a demand
// path needs that bulk distribution doesn't: a deadline. A fetch that
// outlives the timeout reports failure so the caller can fall back to
// NFS, while the in-flight legs keep draining in the background — the
// NICs stay genuinely busy, exactly like an abandoned TCP transfer.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "obs/hub.hpp"
#include "sim/env.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vmic::peer {

struct PeerParams {
  double nic_bandwidth_Bps = 125e6;  ///< 1 GbE per node (DAS-4 commodity)
  sim::SimTime latency = sim::from_micros(50);
  std::uint32_t per_fetch_overhead = 512;  ///< protocol bytes per fetch
  /// Give up on a peer fetch after this long and fall back to the storage
  /// node; <= 0 disables the deadline.
  double timeout_s = 2.0;
  /// Seeds with this many concurrent uploads are skipped by pick_seed —
  /// past that point the shared NFS link is usually faster than another
  /// slice of a saturated NIC.
  int max_uploads_per_seed = 8;
};

class Fabric {
 public:
  Fabric(sim::SimEnv& env, std::size_t num_nodes, PeerParams p = {});

  /// Export per-NIC link counters as net.link.*{link=peerN.up/down}.
  void bind_obs(obs::Hub* hub);

  /// Move `bytes` from node `src` to node `dst`. Returns true when the
  /// transfer finished inside the deadline; false = timed out (the legs
  /// keep draining in the background and the upload slot stays occupied
  /// until they do).
  sim::Task<bool> transfer(int src, int dst, std::uint64_t bytes);

  [[nodiscard]] int active_uploads(int node) const {
    return nics_[static_cast<std::size_t>(node)]->active_uploads;
  }
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept {
    return bytes_transferred_;
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] const PeerParams& params() const noexcept { return p_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nics_.size();
  }

 private:
  struct Nic {
    Nic(sim::SimEnv& env, const PeerParams& p, const std::string& name)
        : up(env, p.nic_bandwidth_Bps, p.latency, name + ".up"),
          down(env, p.nic_bandwidth_Bps, p.latency, name + ".down") {}
    net::Link up;
    net::Link down;
    int active_uploads = 0;
  };

  sim::SimEnv& env_;
  PeerParams p_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::uint64_t bytes_transferred_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace vmic::peer
