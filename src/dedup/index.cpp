#include "dedup/index.hpp"

namespace vmic::dedup {

void FingerprintIndex::add(std::uint64_t fp, const std::string& image,
                           std::uint64_t cluster) {
  if (by_fp_[fp].insert(Loc{image, cluster}).second) {
    by_image_[image][fp].insert(cluster);
    ++locations_;
  }
}

void FingerprintIndex::remove(std::uint64_t fp, const std::string& image,
                              std::uint64_t cluster) {
  auto it = by_fp_.find(fp);
  if (it == by_fp_.end()) return;
  if (it->second.erase(Loc{image, cluster}) == 0) return;
  if (it->second.empty()) by_fp_.erase(it);
  --locations_;
  auto im = by_image_.find(image);
  if (im != by_image_.end()) {
    auto fpit = im->second.find(fp);
    if (fpit != im->second.end()) {
      fpit->second.erase(cluster);
      if (fpit->second.empty()) im->second.erase(fpit);
    }
    if (im->second.empty()) by_image_.erase(im);
  }
}

void FingerprintIndex::remove_image(const std::string& image) {
  auto im = by_image_.find(image);
  if (im == by_image_.end()) return;
  for (const auto& [fp, clusters] : im->second) {
    auto it = by_fp_.find(fp);
    if (it == by_fp_.end()) continue;
    for (const std::uint64_t c : clusters) {
      if (it->second.erase(Loc{image, c}) != 0) --locations_;
    }
    if (it->second.empty()) by_fp_.erase(it);
  }
  by_image_.erase(im);
}

const FingerprintIndex::Loc* FingerprintIndex::find(std::uint64_t fp) const {
  auto it = by_fp_.find(fp);
  if (it == by_fp_.end() || it->second.empty()) return nullptr;
  return &*it->second.begin();
}

}  // namespace vmic::dedup
