#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace vmic::dedup {

/// Per-node fingerprint index over the local cache pool (§7.3: "VMIs
/// created from the same operating system distribution share content" —
/// a CoR fill for image B whose cluster content already sits in a
/// sibling image's cache can be served locally instead of from the
/// storage node).
///
/// Maps a cluster fingerprint to the set of (image, cluster) locations
/// in the node's cache pool that currently hold bytes with that
/// fingerprint. Lookups are content-verified by the caller (the
/// fingerprint only nominates a candidate; the bytes decide), so a hash
/// collision degrades to a miss, never to corruption.
///
/// Ordered containers throughout — lookup results must be deterministic
/// across runs (the sim's determinism contract).
class FingerprintIndex {
 public:
  struct Loc {
    std::string image;
    std::uint64_t cluster = 0;
    auto operator<=>(const Loc&) const = default;
  };

  /// Record that `image`'s cache holds content with fingerprint `fp` at
  /// cluster index `cluster`. Idempotent.
  void add(std::uint64_t fp, const std::string& image, std::uint64_t cluster);

  /// Forget one location (cluster evicted or overwritten).
  void remove(std::uint64_t fp, const std::string& image,
              std::uint64_t cluster);

  /// Forget every location of `image` (cache file evicted / destroyed).
  void remove_image(const std::string& image);

  /// Deterministic candidate for `fp`: the smallest (image, cluster)
  /// location, or nullptr if none is indexed.
  [[nodiscard]] const Loc* find(std::uint64_t fp) const;

  /// True when any location of `image` is indexed.
  [[nodiscard]] bool has_image(const std::string& image) const {
    return by_image_.count(image) != 0;
  }

  /// Total (fp, location) entries indexed.
  [[nodiscard]] std::uint64_t locations() const noexcept {
    return locations_;
  }
  /// Distinct fingerprints indexed.
  [[nodiscard]] std::uint64_t unique_fingerprints() const noexcept {
    return by_fp_.size();
  }

 private:
  std::map<std::uint64_t, std::set<Loc>> by_fp_;
  // Reverse map for remove_image: image -> fp -> clusters.
  std::map<std::string, std::map<std::uint64_t, std::set<std::uint64_t>>>
      by_image_;
  std::uint64_t locations_ = 0;
};

}  // namespace vmic::dedup
