#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/bytes.hpp"

namespace vmic::dedup {

/// Content-addressed, reference-counted block store.
///
/// §8 future work: "investigate data compression and deduplication
/// techniques that have been developed for VMI storage in the context of
/// VMI caches to gain even more storage efficacy"; §7.3 (content-based
/// block caching): "since VMIs created from the same operating system
/// distribution share content, this method can be deployed to reduce the
/// effective size of cache images of different VMIs on the compute nodes
/// even further."
///
/// Blocks are fixed-size; identical contents are stored once and shared
/// through reference counts. Collision handling is content-verified: the
/// digest only selects a bucket, the bytes decide.
class BlockStore {
 public:
  explicit BlockStore(std::uint32_t block_size = 4096)
      : block_size_(block_size) {}

  using BlockId = std::uint64_t;

  [[nodiscard]] std::uint32_t block_size() const noexcept {
    return block_size_;
  }

  /// Store one block (must be exactly block_size() bytes, except the last
  /// block of a file which may be shorter — short tails are canonicalized
  /// to their zero-padded full block so they dedup against identical
  /// padded content). Returns the id; identical content returns the same
  /// id with its refcount bumped.
  BlockId put(std::span<const std::uint8_t> data);

  /// Fetch a block's bytes.
  [[nodiscard]] std::span<const std::uint8_t> get(BlockId id) const;

  /// Drop one reference; frees the block at zero.
  void release(BlockId id);

  [[nodiscard]] std::uint64_t ref_count(BlockId id) const;

  /// Number of distinct stored blocks.
  [[nodiscard]] std::uint64_t unique_blocks() const noexcept {
    return blocks_.size();
  }
  /// Bytes of actual storage used (unique content only).
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept {
    return stored_bytes_;
  }
  /// Bytes callers have put() in total (logical size incl. duplicates).
  [[nodiscard]] std::uint64_t logical_bytes() const noexcept {
    return logical_bytes_;
  }
  /// logical / stored — the §7.3 "efficacy" gain.
  [[nodiscard]] double dedup_ratio() const noexcept {
    return stored_bytes_ == 0
               ? 1.0
               : static_cast<double>(logical_bytes_) /
                     static_cast<double>(stored_bytes_);
  }

 private:
  struct Block {
    std::vector<std::uint8_t> data;
    std::uint64_t refs = 0;
    std::uint64_t digest = 0;
  };

  std::uint32_t block_size_;
  std::unordered_map<BlockId, Block> blocks_;
  // digest -> candidate ids (chained for collisions).
  std::unordered_multimap<std::uint64_t, BlockId> index_;
  BlockId next_id_ = 1;
  std::uint64_t stored_bytes_ = 0;
  std::uint64_t logical_bytes_ = 0;
};

/// A file deduplicated into a BlockStore: an ordered list of block refs.
/// Supports building from a byte stream and reading back; the unit the
/// dedup benchmarks use to measure cross-VMI cache redundancy.
class DedupFile {
 public:
  explicit DedupFile(BlockStore& store) : store_(&store) {}
  DedupFile(DedupFile&&) noexcept = default;
  DedupFile& operator=(DedupFile&&) noexcept = default;
  DedupFile(const DedupFile&) = delete;
  DedupFile& operator=(const DedupFile&) = delete;
  ~DedupFile() { clear(); }

  /// Append bytes (chunked into store blocks internally).
  void append(std::span<const std::uint8_t> data);

  /// Read [off, off+dst.size()) back out.
  void read(std::uint64_t off, std::span<std::uint8_t> dst) const;

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  /// Bytes of store content this file references that are NOT shared
  /// with any other file (refcount == 1) — what deleting it would free.
  [[nodiscard]] std::uint64_t exclusive_bytes() const;

  void clear();

 private:
  BlockStore* store_;
  std::vector<BlockStore::BlockId> blocks_;
  std::uint64_t size_ = 0;
  std::vector<std::uint8_t> pending_;  // partial tail block
};

}  // namespace vmic::dedup
