#include "dedup/store.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace vmic::dedup {

BlockStore::BlockId BlockStore::put(std::span<const std::uint8_t> data) {
  assert(data.size() <= block_size_ && !data.empty());
  logical_bytes_ += data.size();

  // Canonicalize: a short tail is hashed and stored as its zero-padded
  // full block. A file tail whose padded bytes equal an existing full
  // block must dedup against it — hashing the raw short span would give
  // the identical content two different digests.
  std::vector<std::uint8_t> padded;
  std::span<const std::uint8_t> blk = data;
  if (data.size() < block_size_) {
    padded.assign(block_size_, 0);
    std::memcpy(padded.data(), data.data(), data.size());
    blk = padded;
  }
  const std::uint64_t digest = fnv1a(blk);

  // Digest selects candidates; bytes decide (collision-safe dedup).
  auto [lo, hi] = index_.equal_range(digest);
  for (auto it = lo; it != hi; ++it) {
    Block& b = blocks_.at(it->second);
    if (b.data.size() == blk.size() &&
        std::memcmp(b.data.data(), blk.data(), blk.size()) == 0) {
      ++b.refs;
      return it->second;
    }
  }

  const BlockId id = next_id_++;
  Block b;
  b.data.assign(blk.begin(), blk.end());
  b.refs = 1;
  b.digest = digest;
  stored_bytes_ += blk.size();
  blocks_.emplace(id, std::move(b));
  index_.emplace(digest, id);
  return id;
}

std::span<const std::uint8_t> BlockStore::get(BlockId id) const {
  const Block& b = blocks_.at(id);
  return {b.data.data(), b.data.size()};
}

void BlockStore::release(BlockId id) {
  auto it = blocks_.find(id);
  assert(it != blocks_.end());
  if (--it->second.refs > 0) return;
  // Remove the index entry pointing at this id, then the block.
  auto [lo, hi] = index_.equal_range(it->second.digest);
  for (auto ix = lo; ix != hi; ++ix) {
    if (ix->second == id) {
      index_.erase(ix);
      break;
    }
  }
  stored_bytes_ -= it->second.data.size();
  blocks_.erase(it);
}

std::uint64_t BlockStore::ref_count(BlockId id) const {
  auto it = blocks_.find(id);
  return it == blocks_.end() ? 0 : it->second.refs;
}

void DedupFile::append(std::span<const std::uint8_t> data) {
  size_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  const std::uint32_t bs = store_->block_size();

  // Fill a pending partial block first.
  if (!pending_.empty()) {
    const std::size_t take = std::min<std::size_t>(n, bs - pending_.size());
    pending_.insert(pending_.end(), p, p + take);
    p += take;
    n -= take;
    if (pending_.size() == bs) {
      blocks_.push_back(store_->put(pending_));
      pending_.clear();
    }
  }
  while (n >= bs) {
    blocks_.push_back(store_->put({p, bs}));
    p += bs;
    n -= bs;
  }
  if (n > 0) pending_.assign(p, p + n);
}

void DedupFile::read(std::uint64_t off, std::span<std::uint8_t> dst) const {
  assert(off + dst.size() <= size_);
  const std::uint32_t bs = store_->block_size();
  std::uint8_t* out = dst.data();
  std::uint64_t pos = off;
  std::uint64_t remaining = dst.size();
  while (remaining > 0) {
    const std::uint64_t bi = pos / bs;
    const std::uint64_t in_block = pos % bs;
    const std::uint64_t take = std::min<std::uint64_t>(remaining, bs - in_block);
    if (bi < blocks_.size()) {
      const auto block = store_->get(blocks_[bi]);
      std::memcpy(out, block.data() + in_block, take);
    } else {
      // Tail bytes still in pending_.
      std::memcpy(out, pending_.data() + in_block, take);
    }
    out += take;
    pos += take;
    remaining -= take;
  }
}

std::uint64_t DedupFile::exclusive_bytes() const {
  std::uint64_t total = 0;
  for (const auto id : blocks_) {
    if (store_->ref_count(id) == 1) total += store_->get(id).size();
  }
  return total + pending_.size();
}

void DedupFile::clear() {
  for (const auto id : blocks_) store_->release(id);
  blocks_.clear();
  pending_.clear();
  size_ = 0;
}

}  // namespace vmic::dedup
