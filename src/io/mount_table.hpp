#pragma once

#include <map>
#include <string>

#include "io/directory.hpp"

namespace vmic::io {

/// Prefix-routing ImageDirectory: "disk/vm0.cow" goes to the directory
/// mounted at "disk", etc. This is a compute node's file-system view —
/// local disk, local tmpfs, and NFS mounts all appear under one namespace,
/// so image backing-file references like "nfs-base/centos.img" resolve
/// naturally through the block layer's chain opener.
class MountTable final : public ImageDirectory {
 public:
  void mount(const std::string& prefix, ImageDirectory* dir) {
    mounts_[prefix] = dir;
  }

  Result<BackendPtr> open_file(const std::string& name,
                               bool writable) override {
    VMIC_TRY(m, resolve(name));
    return m.dir->open_file(m.rest, writable);
  }

  Result<BackendPtr> create_file(const std::string& name) override {
    VMIC_TRY(m, resolve(name));
    return m.dir->create_file(m.rest);
  }

  [[nodiscard]] bool exists(const std::string& name) const override {
    auto m = const_cast<MountTable*>(this)->resolve(name);
    return m.ok() && m->dir->exists(m->rest);
  }

 private:
  struct Resolved {
    ImageDirectory* dir;
    std::string rest;
  };

  Result<Resolved> resolve(const std::string& name) {
    const auto slash = name.find('/');
    if (slash == std::string::npos) return Errc::not_found;
    auto it = mounts_.find(name.substr(0, slash));
    if (it == mounts_.end()) return Errc::not_found;
    return Resolved{it->second, name.substr(slash + 1)};
  }

  std::map<std::string, ImageDirectory*> mounts_;
};

}  // namespace vmic::io
