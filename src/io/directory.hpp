#pragma once

#include <string>

#include "io/backend.hpp"

namespace vmic::io {

/// A place image files live: a host directory (tools), an in-memory store
/// (tests), or a simulated medium / NFS mount (cluster experiments).
/// Block-driver chain helpers resolve backing-file references through this
/// interface.
class ImageDirectory {
 public:
  virtual ~ImageDirectory() = default;

  /// Open an existing file.
  virtual Result<BackendPtr> open_file(const std::string& name,
                                       bool writable) = 0;

  /// Create (or truncate) a file.
  virtual Result<BackendPtr> create_file(const std::string& name) = 0;

  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;
};

}  // namespace vmic::io
