#pragma once

#include <string>

#include "io/directory.hpp"
#include "io/file_backend.hpp"

namespace vmic::io {

/// ImageDirectory over a real host directory: files are opened with POSIX
/// I/O. Backing-file references inside images resolve relative to this
/// directory, like qemu-img resolves them relative to the referring image.
class FsImageDirectory final : public ImageDirectory {
 public:
  /// `root` may be empty ("" = current directory) or a path with or
  /// without a trailing slash.
  explicit FsImageDirectory(std::string root) : root_(std::move(root)) {
    if (!root_.empty() && root_.back() != '/') root_ += '/';
  }

  Result<BackendPtr> open_file(const std::string& name,
                               bool writable) override {
    return FileBackend::open(root_ + name, writable
                                               ? FileBackend::Mode::open_rw
                                               : FileBackend::Mode::open_ro);
  }

  Result<BackendPtr> create_file(const std::string& name) override {
    return FileBackend::open(root_ + name, FileBackend::Mode::create_trunc);
  }

  [[nodiscard]] bool exists(const std::string& name) const override {
    auto r = FileBackend::open(root_ + name, FileBackend::Mode::open_ro);
    return r.ok();
  }

  [[nodiscard]] const std::string& root() const noexcept { return root_; }

 private:
  std::string root_;
};

}  // namespace vmic::io
