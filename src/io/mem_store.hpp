#pragma once

#include <map>
#include <memory>
#include <string>

#include "io/directory.hpp"
#include "io/mem_backend.hpp"
#include "util/sparse_buffer.hpp"

namespace vmic::io {

/// A named collection of in-memory files — a minimal ImageDirectory used
/// by the format tests and host-side examples; the cluster simulator has
/// its own media-backed equivalent.
class MemImageStore final : public ImageDirectory {
 public:
  Result<BackendPtr> create_file(const std::string& name) override {
    auto& slot = files_[name];
    slot = std::make_unique<SparseBuffer>();
    return BackendPtr{std::make_unique<MemBackend>(slot.get())};
  }

  Result<BackendPtr> open_file(const std::string& name,
                               bool writable) override {
    auto it = files_.find(name);
    if (it == files_.end()) return Errc::not_found;
    auto be = std::make_unique<MemBackend>(it->second.get());
    if (!writable) be->set_read_only(true);
    return BackendPtr{std::move(be)};
  }

  [[nodiscard]] bool exists(const std::string& name) const override {
    return files_.count(name) != 0;
  }

  /// Raw access to a file's bytes (tests: digests, corruption injection).
  Result<SparseBuffer*> buffer(const std::string& name) {
    auto it = files_.find(name);
    if (it == files_.end()) return Errc::not_found;
    return it->second.get();
  }

  void remove(const std::string& name) { files_.erase(name); }

 private:
  std::map<std::string, std::unique_ptr<SparseBuffer>> files_;
};

}  // namespace vmic::io
