#pragma once

#include <memory>
#include <string>
#include <utility>

#include "io/backend.hpp"
#include "sim/env.hpp"
#include "util/sparse_buffer.hpp"

namespace vmic::io {

/// In-memory backend over a zero-eliding sparse buffer. Completes all
/// operations synchronously (no simulated time) — the workhorse of the
/// format unit tests and the host-side tools.
///
/// A MemBackend can either own its buffer or borrow one (several backends
/// may view the same underlying "file", e.g. to model reopening).
class MemBackend final : public BlockBackend {
 public:
  /// Owning constructor (fresh empty file).
  MemBackend() : owned_(std::make_unique<SparseBuffer>()), buf_(owned_.get()) {}

  /// Borrowing constructor: operate on an externally owned buffer, which
  /// must outlive this backend.
  explicit MemBackend(SparseBuffer* shared) : buf_(shared) {}

  sim::Task<Result<void>> pread(std::uint64_t off,
                                std::span<std::uint8_t> dst) override {
    buf_->read(off, dst);
    co_return ok_result();
  }

  sim::Task<Result<void>> pwrite(std::uint64_t off,
                                 std::span<const std::uint8_t> src) override {
    VMIC_CO_TRY_VOID(check_writable());
    buf_->write(off, src);
    co_return ok_result();
  }

  sim::Task<Result<void>> flush() override {
    ++flushes_;
    if (flush_env_ != nullptr && flush_cost_ns_ > 0) {
      co_await flush_env_->delay(flush_cost_ns_);
    }
    co_return ok_result();
  }

  /// Barriers are free by default (memory is always "durable"). When the
  /// backend is driven under a sim environment, charge `cost_ns` per
  /// flush so barrier ordering becomes visible in sim time. Must not be
  /// set for host-side use (sync_wait aborts on suspension).
  void set_flush_barrier(sim::SimEnv* env, sim::SimTime cost_ns) noexcept {
    flush_env_ = env;
    flush_cost_ns_ = cost_ns;
  }

  /// Number of flush barriers issued against this backend.
  [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }

  sim::Task<Result<void>> truncate(std::uint64_t new_size) override {
    VMIC_CO_TRY_VOID(check_writable());
    buf_->resize(new_size);
    co_return ok_result();
  }

  [[nodiscard]] std::uint64_t size() const override { return buf_->size(); }

  [[nodiscard]] std::string describe() const override { return "mem:"; }

  [[nodiscard]] SparseBuffer& buffer() noexcept { return *buf_; }

 private:
  std::unique_ptr<SparseBuffer> owned_;
  SparseBuffer* buf_;
  std::uint64_t flushes_ = 0;
  sim::SimEnv* flush_env_ = nullptr;
  sim::SimTime flush_cost_ns_ = 0;
};

}  // namespace vmic::io
