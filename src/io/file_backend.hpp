#pragma once

#include <string>

#include "io/backend.hpp"

namespace vmic::io {

/// POSIX file backend: real blocking I/O, completes without simulated
/// time. Used by the vmi-img tool and the host-side examples, which
/// operate on genuine on-disk image files.
class FileBackend final : public BlockBackend {
 public:
  enum class Mode {
    create,        ///< create new file; fail if it exists
    create_trunc,  ///< create or truncate
    open_rw,       ///< open existing read-write
    open_ro,       ///< open existing read-only
  };

  static Result<BackendPtr> open(const std::string& path, Mode mode);

  ~FileBackend() override;
  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  sim::Task<Result<void>> pread(std::uint64_t off,
                                std::span<std::uint8_t> dst) override;
  sim::Task<Result<void>> pwrite(std::uint64_t off,
                                 std::span<const std::uint8_t> src) override;
  sim::Task<Result<void>> flush() override;
  sim::Task<Result<void>> truncate(std::uint64_t new_size) override;
  [[nodiscard]] std::uint64_t size() const override { return size_; }
  [[nodiscard]] std::string describe() const override { return path_; }

 private:
  FileBackend(int fd, std::string path, std::uint64_t size, bool ro)
      : fd_(fd), path_(std::move(path)), size_(size) {
    ro_ = ro;
  }

  int fd_ = -1;
  std::string path_;
  std::uint64_t size_ = 0;
};

}  // namespace vmic::io
