#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "sim/task.hpp"
#include "util/result.hpp"

namespace vmic::io {

/// Byte-addressable storage for an image *file* — the thing a block driver
/// sits on. Implementations:
///  * MemBackend   — host RAM (tests, tools, tmpfs-like uses);
///  * FileBackend  — a real POSIX file (vmi-img, quickstart example);
///  * SimDiskBackend / SimMemBackend (src/storage) — a file on a simulated
///    medium, charging simulated service time per operation;
///  * NfsFileBackend (src/nfs) — a file reached through the simulated
///    NFS client, charging network + server time.
///
/// All operations are coroutines; host backends complete without
/// suspending, simulated ones suspend on simulated time. This mirrors how
/// QEMU's block drivers run the same code over files, NBD, etc.
class BlockBackend {
 public:
  virtual ~BlockBackend() = default;

  /// Read dst.size() bytes at `off`. Ranges beyond end-of-file read as
  /// zeros (sparse-file semantics, which QCOW2 relies on).
  virtual sim::Task<Result<void>> pread(std::uint64_t off,
                                        std::span<std::uint8_t> dst) = 0;

  /// Write src at `off`, extending the file as needed.
  virtual sim::Task<Result<void>> pwrite(
      std::uint64_t off, std::span<const std::uint8_t> src) = 0;

  /// Durability barrier. When flush() returns ok, every pwrite()/
  /// truncate() that completed before the call is durable: a power cut
  /// after the barrier cannot drop, reorder, or tear them (crash::
  /// CrashBackend enforces exactly this model). Writes issued after the
  /// barrier carry no ordering guarantee among themselves until the next
  /// flush — individual writes may land partially (sector granularity)
  /// or not at all. The qcow2 driver's crash consistency (DESIGN.md
  /// "Durability") is built solely on this contract. The barrier covers
  /// data plus whatever metadata is needed to read it back (file size on
  /// extension); implementations need not persist timestamps, so
  /// fdatasync() suffices for files.
  virtual sim::Task<Result<void>> flush() = 0;

  /// Grow or shrink the file.
  virtual sim::Task<Result<void>> truncate(std::uint64_t new_size) = 0;

  /// Current file length in bytes.
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  [[nodiscard]] virtual bool read_only() const noexcept { return ro_; }

  /// Switch writability. Supports the paper's §4.3 permission dance: a
  /// backing image is opened read-write, then demoted to read-only once it
  /// turns out not to be a cache image.
  virtual void set_read_only(bool ro) noexcept { ro_ = ro; }

  /// Diagnostic name ("mem:", path, "nfs:/export/centos.qcow2", ...).
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  /// Shared writability check for implementations.
  [[nodiscard]] Result<void> check_writable() const {
    if (ro_) return Errc::read_only;
    return ok_result();
  }

  bool ro_ = false;
};

using BackendPtr = std::unique_ptr<BlockBackend>;

}  // namespace vmic::io
