#include "io/file_backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/log.hpp"

namespace vmic::io {

Result<BackendPtr> FileBackend::open(const std::string& path, Mode mode) {
  int flags = 0;
  bool ro = false;
  switch (mode) {
    case Mode::create:
      flags = O_RDWR | O_CREAT | O_EXCL;
      break;
    case Mode::create_trunc:
      flags = O_RDWR | O_CREAT | O_TRUNC;
      break;
    case Mode::open_rw:
      flags = O_RDWR;
      break;
    case Mode::open_ro:
      flags = O_RDONLY;
      ro = true;
      break;
  }
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    VMIC_LOG_WARN("open(%s) failed: %s", path.c_str(), std::strerror(errno));
    if (errno == ENOENT) return Errc::not_found;
    if (errno == EEXIST) return Errc::already_exists;
    return Errc::io_error;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errc::io_error;
  }
  return BackendPtr{new FileBackend(
      fd, path, static_cast<std::uint64_t>(st.st_size), ro)};
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
}

sim::Task<Result<void>> FileBackend::pread(std::uint64_t off,
                                           std::span<std::uint8_t> dst) {
  std::uint8_t* p = dst.data();
  std::size_t remaining = dst.size();
  std::uint64_t pos = off;
  while (remaining > 0) {
    const ssize_t n =
        ::pread(fd_, p, remaining, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      co_return Errc::io_error;
    }
    if (n == 0) {
      // Past EOF: zero-fill (sparse-file semantics).
      std::memset(p, 0, remaining);
      break;
    }
    p += n;
    pos += static_cast<std::uint64_t>(n);
    remaining -= static_cast<std::size_t>(n);
  }
  co_return ok_result();
}

sim::Task<Result<void>> FileBackend::pwrite(
    std::uint64_t off, std::span<const std::uint8_t> src) {
  VMIC_CO_TRY_VOID(check_writable());
  const std::uint8_t* p = src.data();
  std::size_t remaining = src.size();
  std::uint64_t pos = off;
  while (remaining > 0) {
    const ssize_t n =
        ::pwrite(fd_, p, remaining, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      co_return Errc::io_error;
    }
    p += n;
    pos += static_cast<std::uint64_t>(n);
    remaining -= static_cast<std::size_t>(n);
  }
  size_ = std::max(size_, off + src.size());
  co_return ok_result();
}

sim::Task<Result<void>> FileBackend::flush() {
  // fdatasync: the durability barrier needs the data and any metadata
  // required to read it back (file size on extension — POSIX guarantees
  // that much). Skipping mtime/atime journaling roughly halves barrier
  // latency on ext4, and qcow2 ordering never depends on timestamps.
  if (::fdatasync(fd_) != 0) co_return Errc::io_error;
  co_return ok_result();
}

sim::Task<Result<void>> FileBackend::truncate(std::uint64_t new_size) {
  VMIC_CO_TRY_VOID(check_writable());
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    co_return Errc::io_error;
  }
  size_ = new_size;
  co_return ok_result();
}

}  // namespace vmic::io
