#pragma once

#include <cassert>
#include <cstdint>

namespace vmic {

constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Round `v` down to a multiple of `a` (a must be a power of two).
constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t a) noexcept {
  assert(is_pow2(a));
  return v & ~(a - 1);
}

/// Round `v` up to a multiple of `a` (a must be a power of two).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) noexcept {
  assert(is_pow2(a));
  return (v + a - 1) & ~(a - 1);
}

constexpr bool is_aligned(std::uint64_t v, std::uint64_t a) noexcept {
  assert(is_pow2(a));
  return (v & (a - 1)) == 0;
}

/// ceil(n / d) for unsigned integers.
constexpr std::uint64_t div_ceil(std::uint64_t n, std::uint64_t d) noexcept {
  assert(d != 0);
  return (n + d - 1) / d;
}

/// Integer log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v) noexcept {
  assert(is_pow2(v));
  unsigned bits = 0;
  while ((v >> bits) != 1) ++bits;
  return bits;
}

}  // namespace vmic
