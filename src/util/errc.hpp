#pragma once

#include <string_view>

namespace vmic {

/// Error codes used across the block/driver/simulation layers.
///
/// The block layer deliberately uses recoverable error codes instead of
/// exceptions: the paper's cache-quota mechanism depends on `no_space`
/// being an ordinary, expected outcome of a cache write (QEMU's -ENOSPC),
/// which the read path catches to stop populating the cache.
enum class Errc : int {
  ok = 0,
  /// Write rejected because it would exceed a quota (cache images) or the
  /// capacity of the underlying medium.
  no_space,
  /// Underlying medium failed (host I/O error, closed backend, ...).
  io_error,
  /// Image/file content is not in the expected format.
  invalid_format,
  /// Feature bits or version the implementation does not support.
  unsupported,
  /// Named entity (file, export, driver, node) does not exist.
  not_found,
  /// Entity already exists and overwrite was not requested.
  already_exists,
  /// Operation not allowed in the current state (e.g. write to a
  /// read-only device, write from the guest to a cache image).
  read_only,
  /// Offset/length outside the virtual disk.
  out_of_range,
  /// Caller passed inconsistent arguments.
  invalid_argument,
  /// Image is corrupt (metadata self-checks failed).
  corrupt,
  /// Operation interrupted / simulation stopped.
  cancelled,
};

constexpr std::string_view to_string(Errc e) noexcept {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::no_space: return "no_space";
    case Errc::io_error: return "io_error";
    case Errc::invalid_format: return "invalid_format";
    case Errc::unsupported: return "unsupported";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::read_only: return "read_only";
    case Errc::out_of_range: return "out_of_range";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::corrupt: return "corrupt";
    case Errc::cancelled: return "cancelled";
  }
  return "unknown";
}

}  // namespace vmic
