#pragma once

#include <cassert>
#include <cstdint>

namespace vmic {

/// SplitMix64: used to seed Xoshiro and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Xoshiro256** — fast, high-quality, deterministic PRNG.
///
/// The whole evaluation pipeline depends on determinism: the same seed
/// must generate the same boot trace and the same simulated timings on
/// every run (tested in test_determinism.cpp), so we own the generator
/// instead of relying on unspecified std::mt19937 distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept {
    assert(bound > 0);
    // 128-bit multiply-shift; the tiny residual bias (< 2^-64) is
    // irrelevant for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Log-normal-ish positive value with the given mean and sigma of the
  /// underlying normal; used for service-time jitter.
  double lognormal(double mean, double sigma) noexcept;

  /// Fork a statistically independent child stream (for per-VM streams
  /// whose draws must not depend on scheduling order).
  Rng fork() noexcept { return Rng(next() ^ 0x9e3779b97f4a7c15ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace vmic
