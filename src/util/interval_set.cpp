#include "util/interval_set.hpp"

#include <cassert>

namespace vmic {

void IntervalSet::insert(std::uint64_t begin, std::uint64_t end) {
  assert(begin <= end);
  if (begin == end) return;

  // Find the first interval whose end >= begin (candidate for merging).
  auto it = map_.lower_bound(begin);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;
  }

  // Absorb every interval overlapping or touching [begin, end).
  while (it != map_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    total_ -= it->second - it->first;
    it = map_.erase(it);
  }

  map_.emplace(begin, end);
  total_ += end - begin;
}

bool IntervalSet::covers(std::uint64_t begin, std::uint64_t end) const {
  assert(begin <= end);
  if (begin == end) return true;
  auto it = map_.upper_bound(begin);
  if (it == map_.begin()) return false;
  --it;
  return it->first <= begin && end <= it->second;
}

bool IntervalSet::intersects(std::uint64_t begin, std::uint64_t end) const {
  assert(begin <= end);
  if (begin == end) return false;
  auto it = map_.lower_bound(begin);
  if (it != map_.end() && it->first < end) return true;
  if (it == map_.begin()) return false;
  --it;
  return it->second > begin;
}

}  // namespace vmic
