#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace vmic {

/// Streaming mean/variance/min/max (Welford). Used for per-experiment
/// summaries (e.g. average boot time over 64 VMs).
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact-sample percentile tracker (stores all samples; experiments have
/// at most a few thousand).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  /// Nearest-rank percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double mean() const;

 private:
  std::vector<double> xs_;
};

}  // namespace vmic
