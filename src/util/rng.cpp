#include "util/rng.hpp"

#include <cmath>

namespace vmic {

double Rng::exponential(double mean) noexcept {
  assert(mean > 0);
  // Inverse-CDF; clamp the argument away from 0 so log() stays finite.
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

double Rng::lognormal(double mean, double sigma) noexcept {
  assert(mean > 0);
  // Box-Muller on two independent uniforms.
  double u1 = uniform();
  double u2 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  // Parameterise so that the *median* is `mean`; keeps tails modest.
  return mean * std::exp(sigma * z);
}

}  // namespace vmic
