#pragma once

#include <cstdint>
#include <string>

namespace vmic {

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;
inline constexpr std::uint64_t TiB = 1024 * GiB;

/// The disk sector size used throughout (and the minimum QCOW2 cluster
/// size, the one the paper recommends for cache images).
inline constexpr std::uint64_t kSectorSize = 512;

namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * KiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * MiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * GiB; }
}  // namespace literals

/// "93.0 MiB", "1.4 GiB", "512 B" — human-readable byte counts.
std::string format_bytes(std::uint64_t bytes);

/// "1.25 s", "830 ms", "17.0 us" — human-readable durations in seconds.
std::string format_seconds(double seconds);

}  // namespace vmic
