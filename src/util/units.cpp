#include "util/units.hpp"

#include <array>
#include <cstdio>

namespace vmic {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> suffix = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t i = 0;
  while (v >= 1024.0 && i + 1 < suffix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[64];
  if (i == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, suffix[i]);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace vmic
