#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vmic {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("VMIC_LOG");
  if (env == nullptr) return LogLevel::warn;
  if (std::strcmp(env, "off") == 0) return LogLevel::off;
  if (std::strcmp(env, "error") == 0) return LogLevel::error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::debug;
  return LogLevel::warn;
}

LogLevel g_level = initial_level();

constexpr const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::error: return "E";
    case LogLevel::warn: return "W";
    case LogLevel::info: return "I";
    case LogLevel::debug: return "D";
    case LogLevel::off: return "?";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

void log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[vmic:%s] ", tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace vmic
