#include "util/compress.hpp"

#include <cstring>

namespace vmic {

namespace {

constexpr std::size_t kWindowBits = 12;
constexpr std::size_t kWindow = 1u << kWindowBits;  // 4096
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = kMinMatch + 15;  // 4-bit length field

constexpr std::size_t kHashBits = 13;
constexpr std::size_t kHashSize = 1u << kHashBits;

inline std::uint32_t hash3(const std::uint8_t* p) {
  // 3-byte multiplicative hash; deterministic and platform-independent.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::size_t lzss_compress(std::span<const std::uint8_t> src,
                          std::span<std::uint8_t> dst, std::size_t max_out) {
  const std::size_t n = src.size();
  if (n == 0 || max_out == 0 || dst.size() < max_out) return 0;

  // head[h] = most recent source position with hash h (+1; 0 = empty).
  std::vector<std::uint32_t> head(kHashSize, 0);

  std::size_t out = 0;
  std::size_t pos = 0;
  while (pos < n) {
    // Reserve the flag byte for the next (up to) 8 tokens.
    if (out >= max_out) return 0;
    const std::size_t flag_at = out++;
    std::uint8_t flags = 0;
    for (int bit = 0; bit < 8 && pos < n; ++bit) {
      std::size_t best_len = 0;
      std::size_t best_off = 0;
      if (pos + kMinMatch <= n) {
        const std::uint32_t h = hash3(src.data() + pos);
        const std::uint32_t cand1 = head[h];
        if (cand1 != 0) {
          const std::size_t cand = cand1 - 1;
          if (cand < pos && pos - cand <= kWindow) {
            const std::size_t limit =
                (n - pos) < kMaxMatch ? (n - pos) : kMaxMatch;
            std::size_t len = 0;
            while (len < limit && src[cand + len] == src[pos + len]) ++len;
            if (len >= kMinMatch) {
              best_len = len;
              best_off = pos - cand;
            }
          }
        }
        head[h] = static_cast<std::uint32_t>(pos + 1);
      }
      if (best_len >= kMinMatch) {
        if (out + 2 > max_out) return 0;
        flags |= static_cast<std::uint8_t>(1u << bit);
        // 12-bit offset-1 in the low bits, 4-bit length-3 in the top.
        const std::uint32_t tok =
            static_cast<std::uint32_t>(best_off - 1) |
            (static_cast<std::uint32_t>(best_len - kMinMatch) << kWindowBits);
        dst[out++] = static_cast<std::uint8_t>(tok & 0xff);
        dst[out++] = static_cast<std::uint8_t>((tok >> 8) & 0xff);
        // Index the interior of the match too (cheaply: every position),
        // so runs keep matching against their own tail.
        const std::size_t end = pos + best_len;
        for (std::size_t p = pos + 1; p + kMinMatch <= n && p < end; ++p) {
          head[hash3(src.data() + p)] = static_cast<std::uint32_t>(p + 1);
        }
        pos = end;
      } else {
        if (out + 1 > max_out) return 0;
        dst[out++] = src[pos++];
      }
    }
    dst[flag_at] = flags;
  }
  return out < n ? out : 0;
}

bool lzss_decompress(std::span<const std::uint8_t> src,
                     std::span<std::uint8_t> dst) {
  const std::size_t n = dst.size();
  std::size_t in = 0;
  std::size_t out = 0;
  while (out < n) {
    if (in >= src.size()) return false;
    const std::uint8_t flags = src[in++];
    for (int bit = 0; bit < 8 && out < n; ++bit) {
      if ((flags >> bit) & 1u) {
        if (in + 2 > src.size()) return false;
        const std::uint32_t tok =
            static_cast<std::uint32_t>(src[in]) |
            (static_cast<std::uint32_t>(src[in + 1]) << 8);
        in += 2;
        const std::size_t off = (tok & (kWindow - 1)) + 1;
        const std::size_t len = (tok >> kWindowBits) + kMinMatch;
        if (off > out || out + len > n) return false;
        // Byte-by-byte: matches may overlap their own output (RLE).
        for (std::size_t i = 0; i < len; ++i) {
          dst[out] = dst[out - off];
          ++out;
        }
      } else {
        if (in >= src.size()) return false;
        dst[out++] = src[in++];
      }
    }
  }
  // Trailing input bytes are tolerated: compressed payloads are stored
  // sector-padded, so the stream may be followed by zero fill.
  return out == n;
}

}  // namespace vmic
