#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

#include "util/errc.hpp"

namespace vmic {

/// Result<T>: value-or-Errc, in the spirit of std::expected (C++23).
///
/// Used pervasively on the block-layer hot paths where errors such as
/// Errc::no_space are part of normal control flow and must not unwind.
/// T must be movable; Result<void> carries only the status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit on purpose,
  // mirrors std::expected's converting constructors.
  Result(T value) : ok_(true) { new (&storage_) T(std::move(value)); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Errc err) : ok_(false), err_(err) {
    assert(err != Errc::ok && "error Result must carry a real error");
  }

  Result(const Result& other) : ok_(other.ok_), err_(other.err_) {
    if (ok_) new (&storage_) T(other.ref());
  }
  Result(Result&& other) noexcept : ok_(other.ok_), err_(other.err_) {
    if (ok_) new (&storage_) T(std::move(other.ref()));
  }
  Result& operator=(const Result& other) {
    if (this != &other) {
      destroy();
      ok_ = other.ok_;
      err_ = other.err_;
      if (ok_) new (&storage_) T(other.ref());
    }
    return *this;
  }
  Result& operator=(Result&& other) noexcept {
    if (this != &other) {
      destroy();
      ok_ = other.ok_;
      err_ = other.err_;
      if (ok_) new (&storage_) T(std::move(other.ref()));
    }
    return *this;
  }
  ~Result() { destroy(); }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }

  [[nodiscard]] Errc error() const noexcept { return ok_ ? Errc::ok : err_; }

  T& value() & {
    check();
    return ref();
  }
  const T& value() const& {
    check();
    return ref();
  }
  T&& value() && {
    check();
    return std::move(ref());
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& { return ok_ ? ref() : std::move(fallback); }

 private:
  void check() const {
    if (!ok_) {
      std::fprintf(stderr, "Result::value() on error: %.*s\n",
                   static_cast<int>(to_string(err_).size()),
                   to_string(err_).data());
      std::abort();
    }
  }
  T& ref() noexcept { return *std::launder(reinterpret_cast<T*>(&storage_)); }
  const T& ref() const noexcept {
    return *std::launder(reinterpret_cast<const T*>(&storage_));
  }
  void destroy() noexcept {
    if (ok_) ref().~T();
  }

  alignas(T) unsigned char storage_[sizeof(T)];
  bool ok_;
  Errc err_ = Errc::ok;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Errc err) : err_(err) {}

  [[nodiscard]] bool ok() const noexcept { return err_ == Errc::ok; }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] Errc error() const noexcept { return err_; }

 private:
  Errc err_ = Errc::ok;
};

/// Convenience: success for Result<void>.
inline Result<void> ok_result() { return Result<void>{}; }

/// Propagate an error from a Result expression, binding the value to a
/// fresh `auto` variable on success. Usage:
///   VMIC_TRY(n, backend.pread(off, buf));   // declares `auto n`
#define VMIC_TRY_CAT2(a, b) a##b
#define VMIC_TRY_CAT(a, b) VMIC_TRY_CAT2(a, b)

#define VMIC_TRY(var, expr)                                            \
  auto VMIC_TRY_CAT(vmic_try_, var) = (expr);                          \
  if (!VMIC_TRY_CAT(vmic_try_, var).ok())                              \
    return VMIC_TRY_CAT(vmic_try_, var).error();                       \
  auto var = std::move(VMIC_TRY_CAT(vmic_try_, var)).value()

/// Propagate an error from a Result<void> (or any Result whose value is
/// discarded).
#define VMIC_TRY_VOID(expr)                                            \
  do {                                                                 \
    auto vmic_try_tmp_ = (expr);                                       \
    if (!vmic_try_tmp_.ok()) return vmic_try_tmp_.error();             \
  } while (0)

/// Coroutine flavours: same as above but usable inside Task<> coroutines,
/// where plain `return` is ill-formed. The expression must yield a Result
/// (typically `co_await some_task`).
#define VMIC_CO_TRY(var, expr)                                         \
  auto VMIC_TRY_CAT(vmic_try_, var) = (expr);                          \
  if (!VMIC_TRY_CAT(vmic_try_, var).ok())                              \
    co_return VMIC_TRY_CAT(vmic_try_, var).error();                    \
  auto var = std::move(VMIC_TRY_CAT(vmic_try_, var)).value()

#define VMIC_CO_TRY_VOID(expr)                                         \
  do {                                                                 \
    auto vmic_try_tmp_ = (expr);                                       \
    if (!vmic_try_tmp_.ok()) co_return vmic_try_tmp_.error();          \
  } while (0)

}  // namespace vmic
