#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

namespace vmic {

/// Growable sparse byte buffer with zero-page elision.
///
/// Backs every simulated file (image files, cache files) in the cluster
/// experiments. Pages are materialised only when non-zero data is written
/// to a page that does not exist yet; all-zero writes to absent pages are
/// free. This matters: a 64-node scenario moves ~6 GiB of (all-zero)
/// simulated VM-image payload, while the QCOW2 *metadata* written by the
/// drivers — headers, L1/L2 tables, refcounts — is non-zero and is stored
/// faithfully so the format code round-trips bit-exactly.
class SparseBuffer {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  SparseBuffer() = default;
  SparseBuffer(SparseBuffer&&) noexcept = default;
  SparseBuffer& operator=(SparseBuffer&&) noexcept = default;
  SparseBuffer(const SparseBuffer&) = delete;
  SparseBuffer& operator=(const SparseBuffer&) = delete;

  /// Copy out [off, off+dst.size()); absent pages read as zeros. Reads
  /// beyond size() also read as zeros (the logical size only grows via
  /// writes or resize()).
  void read(std::uint64_t off, std::span<std::uint8_t> dst) const;

  /// Write src at off, growing the logical size as needed.
  void write(std::uint64_t off, std::span<const std::uint8_t> src);

  /// Logical size: high-water mark of writes/resize.
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  /// Grow (or truncate) the logical size. Truncation drops whole pages
  /// beyond the new size and zero-fills the tail of the boundary page.
  void resize(std::uint64_t new_size);

  /// Bytes of actually materialised storage (diagnostics / tests).
  [[nodiscard]] std::uint64_t materialized_bytes() const noexcept {
    return pages_.size() * kPageSize;
  }

  /// Deep copy (the type is move-only to keep accidental copies out of
  /// hot paths; crash exploration clones disks deliberately, e.g. to
  /// replay repair-time cuts against one post-crash state).
  [[nodiscard]] SparseBuffer clone() const;

 private:
  using Page = std::unique_ptr<std::uint8_t[]>;
  std::unordered_map<std::uint64_t, Page> pages_;  // key: page index
  std::uint64_t size_ = 0;
};

}  // namespace vmic
