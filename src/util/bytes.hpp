#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

namespace vmic {

// ---------------------------------------------------------------------------
// Endian helpers. The QCOW2 on-disk format is big-endian; the simulator's
// own structures use native order. All loads/stores are alignment-safe.
// ---------------------------------------------------------------------------

inline std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

inline void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

// ---------------------------------------------------------------------------
// Buffer utilities.
// ---------------------------------------------------------------------------

/// True if every byte in `data` is zero. Used by the sparse store to avoid
/// materialising the (all-zero) data payload of simulated VM images.
bool is_all_zero(std::span<const std::uint8_t> data) noexcept;

/// FNV-1a 64-bit digest; used by tests to compare whole-image contents
/// cheaply (e.g. the cache-immutability property on the base image).
std::uint64_t fnv1a(std::span<const std::uint8_t> data) noexcept;

/// Hex string of a small buffer (diagnostics).
std::string hex(std::span<const std::uint8_t> data, std::size_t max_bytes = 64);

}  // namespace vmic
