#pragma once

#include <cstdarg>

namespace vmic {

enum class LogLevel : int { off = 0, error = 1, warn = 2, info = 3, debug = 4 };

/// Global log threshold; defaults to `warn`, override with VMIC_LOG
/// (off|error|warn|info|debug). Single-threaded simulator, so no locking.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// printf-style logging; no-op when below the threshold.
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define VMIC_LOG_DEBUG(...) ::vmic::log(::vmic::LogLevel::debug, __VA_ARGS__)
#define VMIC_LOG_INFO(...) ::vmic::log(::vmic::LogLevel::info, __VA_ARGS__)
#define VMIC_LOG_WARN(...) ::vmic::log(::vmic::LogLevel::warn, __VA_ARGS__)
#define VMIC_LOG_ERROR(...) ::vmic::log(::vmic::LogLevel::error, __VA_ARGS__)

}  // namespace vmic
