#include "util/stats.hpp"

#include <cassert>
#include <cmath>

namespace vmic {

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double Samples::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  // Like mean(): an empty sample set reports 0.0 instead of tripping
  // undefined behaviour on sorted.front() when the assert compiles out.
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(rank, sorted.size()) - 1];
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs_) sum += x;
  return sum / static_cast<double>(xs_.size());
}

}  // namespace vmic
