#pragma once

#include <cstdint>
#include <map>

namespace vmic {

/// Set of disjoint half-open byte intervals [begin, end).
///
/// Two uses in this project:
///  * working-set accounting — "size of unique reads" (Table 1) is the
///    total covered length after inserting every guest read;
///  * written-extent tracking in the sparse store, so reads of
///    never-written ranges are recognised without materialising zeros.
class IntervalSet {
 public:
  /// Insert [begin, end); overlapping/adjacent intervals are coalesced.
  void insert(std::uint64_t begin, std::uint64_t end);

  /// True if [begin, end) is fully covered.
  [[nodiscard]] bool covers(std::uint64_t begin, std::uint64_t end) const;

  /// True if [begin, end) overlaps any interval.
  [[nodiscard]] bool intersects(std::uint64_t begin, std::uint64_t end) const;

  /// Total covered length in bytes.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] std::size_t interval_count() const noexcept {
    return map_.size();
  }

  void clear() {
    map_.clear();
    total_ = 0;
  }

  /// Iteration over [begin, end) pairs, ordered by begin.
  [[nodiscard]] auto begin() const { return map_.begin(); }
  [[nodiscard]] auto end() const { return map_.end(); }

 private:
  // key = interval begin, value = interval end (exclusive).
  std::map<std::uint64_t, std::uint64_t> map_;
  std::uint64_t total_ = 0;
};

}  // namespace vmic
