#include "util/bytes.hpp"

#include <cstdio>

namespace vmic {

bool is_all_zero(std::span<const std::uint8_t> data) noexcept {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // Word-at-a-time scan; memcpy keeps it alignment-safe and the compiler
  // lowers it to a plain load.
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    if (w != 0) return false;
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    if (*p != 0) return false;
    ++p;
    --n;
  }
  return true;
}

std::uint64_t fnv1a(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex(std::span<const std::uint8_t> data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  out.reserve(n * 2 + 4);
  char buf[4];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof buf, "%02x", data[i]);
    out += buf;
  }
  if (n < data.size()) out += "...";
  return out;
}

}  // namespace vmic
