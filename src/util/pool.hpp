#pragma once

// Slab/pool allocators backing the discrete-event hot path.
//
//  * SlotPool<T>  — slab-backed object pool with stable 32-bit slot
//    indices and per-slot generation counters. SimEnv keeps its timer
//    entries here: a TimerId embeds (slot, generation), so cancellation
//    is an O(1) in-slot operation and a stale id (already fired or
//    cancelled) is detected exactly instead of tombstoned.
//  * FramePool    — size-classed free-list allocator for coroutine
//    frames. Task<T> promises and SimEnv's spawned-task wrappers route
//    their frame allocation here; a simulation that churns millions of
//    short-lived coroutines stops hammering the global heap.
//
// Both are single-threaded by design (the simulator is single-threaded);
// FramePool uses thread_local state so concurrent simulations in
// different threads stay independent. Under ASan/MSan builds both pools
// degrade to plain new/delete so the sanitizer sees every lifetime —
// pooled reuse would otherwise mask use-after-free on frames/entries.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define VMIC_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(memory_sanitizer)
#define VMIC_POOL_PASSTHROUGH 1
#endif
#endif
#ifndef VMIC_POOL_PASSTHROUGH
#define VMIC_POOL_PASSTHROUGH 0
#endif

namespace vmic::util {

/// Slab-backed pool of default-constructed T with stable addresses and
/// 32-bit slot indices. alloc()/free() are O(1); freed slots are reused
/// LIFO. Objects are never destroyed on free() — the caller resets any
/// heavy members (e.g. moves a std::function out) and reuses the slot in
/// place, so steady-state operation performs no heap traffic at all.
template <typename T, std::size_t SlabSize = 1024>
class SlotPool {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  SlotPool() = default;
  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  [[nodiscard]] std::uint32_t alloc() {
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    const std::uint32_t idx = size_++;
    if ((idx % SlabSize) == 0) {
      slabs_.push_back(std::make_unique<T[]>(SlabSize));
    }
    return idx;
  }

  void free(std::uint32_t idx) { free_.push_back(idx); }

  [[nodiscard]] T& operator[](std::uint32_t idx) {
    return slabs_[idx / SlabSize][idx % SlabSize];
  }
  [[nodiscard]] const T& operator[](std::uint32_t idx) const {
    return slabs_[idx / SlabSize][idx % SlabSize];
  }

  /// Total slots ever created (live + free).
  [[nodiscard]] std::uint32_t capacity() const noexcept { return size_; }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    return free_.size();
  }

 private:
  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<std::uint32_t> free_;
  std::uint32_t size_ = 0;
};

/// Size-classed free-list allocator for coroutine frames. Blocks are
/// bucketed in 64-byte classes up to 4 KiB; larger frames (rare) fall
/// through to the global heap. Freed blocks are retained per class and
/// reused LIFO, so the steady-state frame churn of a simulation performs
/// zero heap allocation. Retention is bounded by the peak number of
/// concurrently-live frames per class.
class FramePool {
 public:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = 64;  // up to 4 KiB pooled

  static void* allocate(std::size_t n) {
#if VMIC_POOL_PASSTHROUGH
    return ::operator new(n);
#else
    const std::size_t cls = class_of(n);
    if (cls >= kClasses) return ::operator new(n);
    State& st = state();
    ++st.allocs;
    void* head = st.heads[cls];
    if (head != nullptr) {
      ++st.reuses;
      st.heads[cls] = *static_cast<void**>(head);
      return head;
    }
    return ::operator new((cls + 1) * kGranularity);
#endif
  }

  static void deallocate(void* p, std::size_t n) noexcept {
#if VMIC_POOL_PASSTHROUGH
    ::operator delete(p);
#else
    const std::size_t cls = class_of(n);
    if (cls >= kClasses) {
      ::operator delete(p);
      return;
    }
    State& st = state();
    *static_cast<void**>(p) = st.heads[cls];
    st.heads[cls] = p;
#endif
  }

  /// Pooled allocations / free-list reuses on this thread (test hook;
  /// both 0 in sanitizer builds where the pool is a passthrough).
  static std::uint64_t allocations() { return state().allocs; }
  static std::uint64_t reuses() { return state().reuses; }

 private:
  struct State {
    void* heads[kClasses] = {};
    std::uint64_t allocs = 0;
    std::uint64_t reuses = 0;
  };
  static State& state() {
    static thread_local State st;
    return st;
  }
  static std::size_t class_of(std::size_t n) noexcept {
    return (n + kGranularity - 1) / kGranularity - 1;
  }
};

}  // namespace vmic::util
