#include "util/sparse_buffer.hpp"

#include <algorithm>
#include <cstring>

#include "util/bytes.hpp"

namespace vmic {

void SparseBuffer::read(std::uint64_t off, std::span<std::uint8_t> dst) const {
  std::uint8_t* out = dst.data();
  std::uint64_t remaining = dst.size();
  std::uint64_t pos = off;
  while (remaining > 0) {
    const std::uint64_t page = pos / kPageSize;
    const std::uint64_t in_page = pos % kPageSize;
    const std::uint64_t n = std::min(remaining, kPageSize - in_page);
    auto it = pages_.find(page);
    if (it != pages_.end()) {
      std::memcpy(out, it->second.get() + in_page, n);
    } else {
      std::memset(out, 0, n);
    }
    out += n;
    pos += n;
    remaining -= n;
  }
}

void SparseBuffer::write(std::uint64_t off, std::span<const std::uint8_t> src) {
  const std::uint8_t* in = src.data();
  std::uint64_t remaining = src.size();
  std::uint64_t pos = off;
  while (remaining > 0) {
    const std::uint64_t page = pos / kPageSize;
    const std::uint64_t in_page = pos % kPageSize;
    const std::uint64_t n = std::min(remaining, kPageSize - in_page);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
      // Zero-page elision: absent pages already read back as zeros.
      if (!is_all_zero({in, static_cast<std::size_t>(n)})) {
        auto p = std::make_unique<std::uint8_t[]>(kPageSize);
        std::memset(p.get(), 0, kPageSize);
        std::memcpy(p.get() + in_page, in, n);
        pages_.emplace(page, std::move(p));
      }
    } else {
      std::memcpy(it->second.get() + in_page, in, n);
    }
    in += n;
    pos += n;
    remaining -= n;
  }
  size_ = std::max(size_, off + src.size());
}

SparseBuffer SparseBuffer::clone() const {
  SparseBuffer out;
  out.size_ = size_;
  out.pages_.reserve(pages_.size());
  for (const auto& [idx, page] : pages_) {
    auto p = std::make_unique<std::uint8_t[]>(kPageSize);
    std::memcpy(p.get(), page.get(), kPageSize);
    out.pages_.emplace(idx, std::move(p));
  }
  return out;
}

void SparseBuffer::resize(std::uint64_t new_size) {
  if (new_size < size_) {
    // Drop whole pages past the boundary, zero the boundary tail.
    const std::uint64_t first_dead_page =
        (new_size + kPageSize - 1) / kPageSize;
    for (auto it = pages_.begin(); it != pages_.end();) {
      if (it->first >= first_dead_page) {
        it = pages_.erase(it);
      } else {
        ++it;
      }
    }
    const std::uint64_t in_page = new_size % kPageSize;
    if (in_page != 0) {
      auto it = pages_.find(new_size / kPageSize);
      if (it != pages_.end()) {
        std::memset(it->second.get() + in_page, 0, kPageSize - in_page);
      }
    }
  }
  size_ = new_size;
}

}  // namespace vmic
