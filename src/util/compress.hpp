#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vmic {

// ---------------------------------------------------------------------------
// Deterministic LZSS codec for qcow2 compressed clusters.
//
// QEMU stores compressed clusters as raw deflate streams; pulling in zlib
// is not an option here, so the device uses this self-contained LZSS
// variant instead: a 4 KiB sliding window, one flag byte per 8 tokens,
// literals as single bytes and matches as 2-byte (offset, length) pairs
// (12-bit offset, 4-bit length-3, i.e. match lengths 3..18). Greedy
// matching over a 3-byte hash chain keeps it fast and — critically for
// the simulator's golden pins — bit-exact across platforms and runs.
// ---------------------------------------------------------------------------

/// Compress `src` into `dst`. Returns the compressed size, or 0 when the
/// input does not shrink below `max_out` bytes (caller then stores the
/// cluster uncompressed). `dst` must hold at least `max_out` bytes.
std::size_t lzss_compress(std::span<const std::uint8_t> src,
                          std::span<std::uint8_t> dst, std::size_t max_out);

/// Decompress exactly `src` into `dst`, whose size is the known
/// decompressed length. Returns false when the stream is malformed or
/// does not produce exactly dst.size() bytes.
bool lzss_decompress(std::span<const std::uint8_t> src,
                     std::span<std::uint8_t> dst);

}  // namespace vmic
