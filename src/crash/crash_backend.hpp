#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "io/backend.hpp"
#include "obs/hub.hpp"
#include "util/rng.hpp"

namespace vmic::crash {

/// Deterministic power-loss schedule for a CrashBackend. Events are
/// successful mutating operations against the backend (pwrite, truncate,
/// flush — reads are free); `cut_after_events = k` means the first k
/// events complete and the power fails *instead of* event k+1.
struct CrashPlan {
  /// Event index at which the power cut fires (default: never).
  std::uint64_t cut_after_events = ~std::uint64_t{0};
  /// Seed for the drop/reorder/tear decisions at cut time.
  std::uint64_t seed = 1;
  /// Tear granularity: writes of at most this many bytes land atomically
  /// (sector semantics); larger writes may persist per-sector subsets.
  std::uint32_t sector = 512;
};

class CrashBackend;

/// One shared power rail for several CrashBackends (several files of one
/// system — e.g. a cache image and a CoW overlay). The domain owns the
/// event clock: event k is the k-th successful mutating operation on ANY
/// member, and when the cut fires every member's unflushed window is
/// destroyed at the same instant. That is what a host power loss does —
/// per-file cuts cannot catch ordering bugs that span files.
///
/// Members register themselves at construction and must outlive the
/// domain's last use; the domain is borrowed, not owned.
struct CrashDomain {
  std::uint64_t cut_after_events = ~std::uint64_t{0};
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  bool dead = false;
  std::vector<CrashBackend*> members;
};

/// What a power cut did to the unflushed window (for counters/tests).
struct CrashStats {
  std::uint64_t events = 0;         ///< mutating ops completed
  std::uint64_t flushes = 0;        ///< flush barriers completed
  std::uint64_t power_cuts = 0;     ///< 0 or 1
  std::uint64_t writes_kept = 0;    ///< unflushed writes fully persisted
  std::uint64_t writes_dropped = 0; ///< unflushed writes fully lost
  std::uint64_t writes_torn = 0;    ///< unflushed writes partially persisted
};

/// Volatile write-back cache over an `io::BlockBackend`: pwrite/truncate
/// buffer in a pending window (the writer reads its own writes), and only
/// flush() applies the window to the inner backend — which makes flush()
/// exactly the durability barrier the BlockBackend contract promises.
///
/// A power cut (scheduled via CrashPlan, or forced with power_cut())
/// destroys the pending window non-deterministically but reproducibly:
/// each unflushed write is kept, dropped, or torn at sector granularity,
/// driven by Rng(seed). Afterwards the backend is dead — every operation
/// returns Errc::io_error — and the inner backend holds one of the states
/// a real disk could expose after the crash.
///
/// The inner backend is borrowed and must outlive this wrapper.
class CrashBackend final : public io::BlockBackend {
 public:
  CrashBackend(io::BlockBackend& inner, CrashPlan plan,
               obs::Hub* hub = nullptr)
      : inner_(inner), plan_(plan), shadow_size_(inner.size()) {
    ro_ = inner.read_only();
    bind_hub(hub);
  }

  /// Domain member: the cut schedule and event clock live in `dom`,
  /// shared with every other member; `plan.sector` still applies
  /// per-backend. `dom` must outlive this wrapper.
  CrashBackend(io::BlockBackend& inner, CrashDomain& dom,
               std::uint32_t sector = 512, obs::Hub* hub = nullptr)
      : inner_(inner),
        plan_{dom.cut_after_events, dom.seed, sector},
        shadow_size_(inner.size()),
        domain_(&dom) {
    ro_ = inner.read_only();
    dom.members.push_back(this);
    bind_hub(hub);
  }

  void bind_hub(obs::Hub* hub) {
    if (hub != nullptr) {
      c_cuts_ = &hub->registry.counter("crash.power_cuts", {});
      c_kept_ = &hub->registry.counter("crash.writes_kept", {});
      c_dropped_ = &hub->registry.counter("crash.writes_dropped", {});
      c_torn_ = &hub->registry.counter("crash.writes_torn", {});
      c_flushes_ = &hub->registry.counter("crash.flushes", {});
    }
  }

  sim::Task<Result<void>> pread(std::uint64_t off,
                                std::span<std::uint8_t> dst) override {
    if (dead_) co_return Errc::io_error;
    VMIC_CO_TRY_VOID(co_await inner_.pread(off, dst));
    // Overlay the pending window in order, so the writer observes its own
    // unflushed writes (and truncates).
    for (const Op& op : pending_) overlay(op, off, dst);
    // Bytes beyond the (possibly shrunk) shadow size read as zero.
    if (off + dst.size() > shadow_size_) {
      const std::uint64_t from =
          off >= shadow_size_ ? 0 : shadow_size_ - off;
      std::memset(dst.data() + from, 0, dst.size() - from);
    }
    co_return ok_result();
  }

  sim::Task<Result<void>> pwrite(
      std::uint64_t off, std::span<const std::uint8_t> src) override {
    VMIC_CO_TRY_VOID(co_await gate());
    VMIC_CO_TRY_VOID(check_writable());
    pending_.push_back(
        Op{false, off, {src.begin(), src.end()}});
    shadow_size_ = std::max(shadow_size_, off + src.size());
    tick();
    co_return ok_result();
  }

  sim::Task<Result<void>> flush() override {
    VMIC_CO_TRY_VOID(co_await gate());
    for (const Op& op : pending_) {
      if (op.is_trunc) {
        VMIC_CO_TRY_VOID(co_await inner_.truncate(op.off));
      } else {
        VMIC_CO_TRY_VOID(co_await inner_.pwrite(op.off, op.data));
      }
    }
    pending_.clear();
    VMIC_CO_TRY_VOID(co_await inner_.flush());
    tick();
    ++stats_.flushes;
    bump(c_flushes_);
    co_return ok_result();
  }

  sim::Task<Result<void>> truncate(std::uint64_t new_size) override {
    VMIC_CO_TRY_VOID(co_await gate());
    VMIC_CO_TRY_VOID(check_writable());
    pending_.push_back(Op{true, new_size, {}});
    shadow_size_ = new_size;
    tick();
    co_return ok_result();
  }

  [[nodiscard]] std::uint64_t size() const override { return shadow_size_; }

  [[nodiscard]] std::string describe() const override {
    return "crash:" + inner_.describe();
  }

  /// Cut the power now, regardless of the schedule. Idempotent. For a
  /// domain member this fells the whole domain — one rail, one cut.
  sim::Task<Result<void>> power_cut() {
    if (domain_ != nullptr) {
      if (!domain_->dead) {
        VMIC_CO_TRY_VOID(co_await cut_domain());
      }
    } else if (!dead_) {
      VMIC_CO_TRY_VOID(co_await apply_cut());
    }
    co_return ok_result();
  }

  [[nodiscard]] bool alive() const noexcept { return !dead_; }
  [[nodiscard]] const CrashStats& stats() const noexcept { return stats_; }
  /// Mutating events completed so far (the crash-point coordinate).
  [[nodiscard]] std::uint64_t events() const noexcept { return stats_.events; }

 private:
  struct Op {
    bool is_trunc;
    std::uint64_t off;  ///< write offset, or truncate size
    std::vector<std::uint8_t> data;
  };

  static void bump(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr) c->inc(n);
  }

  void overlay(const Op& op, std::uint64_t off,
               std::span<std::uint8_t> dst) const {
    if (op.is_trunc) {
      // Shrinks zero the tail of the view; grows change nothing (absent
      // bytes already read as zero).
      if (op.off < off + dst.size()) {
        const std::uint64_t from = op.off > off ? op.off - off : 0;
        std::memset(dst.data() + from, 0, dst.size() - from);
      }
      return;
    }
    const std::uint64_t lo = std::max(op.off, off);
    const std::uint64_t hi =
        std::min(op.off + op.data.size(), off + dst.size());
    if (lo < hi) {
      std::memcpy(dst.data() + (lo - off), op.data.data() + (lo - op.off),
                  hi - lo);
    }
  }

  /// Count a completed mutating op on the local and (if any) domain clock.
  void tick() {
    ++stats_.events;
    if (domain_ != nullptr) ++domain_->events;
  }

  /// Check the schedule before a mutating op; fires the cut when due.
  sim::Task<Result<void>> gate() {
    if (domain_ != nullptr) {
      if (!domain_->dead && domain_->events >= domain_->cut_after_events) {
        VMIC_CO_TRY_VOID(co_await cut_domain());
      }
    } else if (!dead_ && stats_.events >= plan_.cut_after_events) {
      VMIC_CO_TRY_VOID(co_await apply_cut());
    }
    if (dead_) co_return Errc::io_error;
    co_return ok_result();
  }

  /// Fell every member of the domain at this instant.
  sim::Task<Result<void>> cut_domain() {
    domain_->dead = true;
    for (std::size_t i = 0; i < domain_->members.size(); ++i) {
      CrashBackend* m = domain_->members[i];
      if (!m->dead_) {
        VMIC_CO_TRY_VOID(co_await m->apply_cut_seeded(
            domain_->seed ^ 0xCA54C0DEull ^ domain_->events ^
            (i * 0x9E3779B97F4A7C15ull)));
      }
    }
    co_return ok_result();
  }

  /// Destroy the pending window: apply a seed-chosen subset of it to the
  /// inner backend, with per-sector tearing for multi-sector writes, then
  /// go dead. The window is applied in issue order, so a kept later write
  /// still overwrites a kept earlier one (reordering only manifests as
  /// drops in between — the observable difference on a linear store).
  sim::Task<Result<void>> apply_cut() {
    co_return co_await apply_cut_seeded(plan_.seed ^ 0xCA54C0DEull ^
                                        stats_.events);
  }

  sim::Task<Result<void>> apply_cut_seeded(std::uint64_t seed) {
    Rng rng(seed);
    for (const Op& op : pending_) {
      if (op.is_trunc) {
        if (rng.chance(0.5)) {
          VMIC_CO_TRY_VOID(co_await inner_.truncate(op.off));
        }
        continue;
      }
      const auto roll = rng.below(4);
      if (roll == 0) {
        ++stats_.writes_dropped;
        bump(c_dropped_);
        continue;
      }
      if (roll == 3 && op.data.size() > plan_.sector) {
        // Tear: persist a per-sector subset (sector grid is absolute, so
        // an unaligned write tears at its intersections with the grid).
        bool any = false;
        bool all = true;
        std::uint64_t p = op.off;
        const std::uint64_t end = op.off + op.data.size();
        while (p < end) {
          const std::uint64_t next = std::min<std::uint64_t>(
              end, (p / plan_.sector + 1) * plan_.sector);
          if (rng.chance(0.5)) {
            VMIC_CO_TRY_VOID(co_await inner_.pwrite(
                p, std::span(op.data.data() + (p - op.off), next - p)));
            any = true;
          } else {
            all = false;
          }
          p = next;
        }
        if (any && !all) {
          ++stats_.writes_torn;
          bump(c_torn_);
        } else if (all) {
          ++stats_.writes_kept;
          bump(c_kept_);
        } else {
          ++stats_.writes_dropped;
          bump(c_dropped_);
        }
        continue;
      }
      VMIC_CO_TRY_VOID(co_await inner_.pwrite(op.off, op.data));
      ++stats_.writes_kept;
      bump(c_kept_);
    }
    pending_.clear();
    VMIC_CO_TRY_VOID(co_await inner_.flush());
    dead_ = true;
    ++stats_.power_cuts;
    bump(c_cuts_);
    co_return ok_result();
  }

  io::BlockBackend& inner_;
  CrashPlan plan_;
  std::uint64_t shadow_size_;
  CrashDomain* domain_ = nullptr;
  std::vector<Op> pending_;
  bool dead_ = false;
  CrashStats stats_;
  obs::Counter* c_cuts_ = nullptr;
  obs::Counter* c_kept_ = nullptr;
  obs::Counter* c_dropped_ = nullptr;
  obs::Counter* c_torn_ = nullptr;
  obs::Counter* c_flushes_ = nullptr;
};

}  // namespace vmic::crash
