#pragma once

#include <cstdint>
#include <string>

#include "obs/hub.hpp"

namespace vmic::crash {

/// Configuration for the exhaustive crash-point sweep.
struct ExploreConfig {
  std::uint64_t seed = 1;
  std::uint32_t cluster_bits = 12;
  std::uint64_t image_size = 1ull << 20;
  /// Scripted guest operations per replay (writes / flushes, plus
  /// occasional write_zeroes and discard to exercise the free path).
  int guest_ops = 40;
  double flush_probability = 0.2;
  double zero_probability = 0.08;
  double discard_probability = 0.05;
  /// Run the image with deferred refcount decrements.
  bool lazy_refcounts = false;
  /// Crash the *cache* of a copy-on-read chain instead of a standalone
  /// image: the workload is guest reads through a warming cache, and the
  /// invariant is a clean cache whose contents still match the base.
  bool cor_chain = false;
  /// Cap on crash points explored (sampled evenly); 0 = every event of
  /// the recording run, i.e. every flush boundary and every point in
  /// between (intra-write states are covered by sector tearing).
  std::uint64_t max_crash_points = 0;
  /// Create the image with a refcount journal of this many sectors
  /// (0 = no journal). Small values force checkpoints under the sweep,
  /// so checkpoint-under-crash windows get covered too.
  std::uint32_t journal_sectors = 0;
  /// After each primary cut, also cut the power at every event *inside*
  /// the auto-repair that follows (repair-of-repair): repair itself must
  /// be crash-safe at every instant.
  bool crash_during_repair = false;
  /// Two-file chain: a CoW overlay (guest writes) over a cache image
  /// (copy-on-read) over a raw base, with BOTH qcow2 files behind one
  /// CrashDomain — the cut fells them at the same instant, the only way
  /// to catch ordering bugs that span files.
  bool two_file = false;
  /// Optional sink for crash.* counters.
  obs::Hub* hub = nullptr;
};

/// Aggregated sweep outcome. The invariant of the durability design is
/// pass(): no crash point may yield a pre-repair corruption, a post-repair
/// blemish of any kind, or a lost flushed guest write.
struct ExploreReport {
  std::uint64_t total_events = 0;  ///< events in the full (uncut) run
  std::uint64_t crash_points = 0;  ///< points actually replayed
  std::uint64_t power_cuts = 0;
  std::uint64_t replay_failures = 0;    ///< replay/reopen/repair errors
  std::uint64_t pre_repair_corruptions = 0;   ///< must be 0 (barriers)
  std::uint64_t pre_repair_leaks = 0;         ///< informational
  std::uint64_t dirty_images = 0;       ///< reopened with the dirty bit set
  std::uint64_t entries_cleared = 0;
  std::uint64_t leaks_dropped = 0;
  std::uint64_t corruptions_fixed = 0;
  std::uint64_t post_repair_corruptions = 0;  ///< must be 0
  std::uint64_t post_repair_leaks = 0;        ///< must be 0
  std::uint64_t lost_flushed_bytes = 0;       ///< must be 0
  std::uint64_t verified_points = 0;   ///< points whose content verified
  std::uint64_t journal_replays = 0;   ///< repairs served by O(journal) replay
  std::uint64_t journal_fallbacks = 0; ///< repairs that fell back to rebuild
  std::uint64_t repair_crash_points = 0;  ///< nested cuts inside repair
  /// Journal images may keep leaks across replay (a free record that never
  /// became durable — the dereference did, so it is a leak, never a
  /// corruption; the next full check/rebuild drops it). explore() sets
  /// this so pass() tolerates exactly that.
  bool leaks_allowed = false;
  std::uint64_t digest = 0;  ///< FNV-1a over per-point outcomes (determinism)

  [[nodiscard]] bool pass() const noexcept {
    return replay_failures == 0 && pre_repair_corruptions == 0 &&
           post_repair_corruptions == 0 &&
           (post_repair_leaks == 0 || leaks_allowed) &&
           lost_flushed_bytes == 0 && verified_points == crash_points;
  }
};

/// Replay the scripted workload once to enumerate crash points, then for
/// each point: re-run against a fresh image, cut the power, reopen,
/// repair, check, and verify surviving content. Host-side and
/// deterministic for a fixed config.
ExploreReport explore(const ExploreConfig& cfg);

/// JSON rendering of a report (CI artifact).
std::string to_json(const ExploreReport& r, const ExploreConfig& cfg);

}  // namespace vmic::crash
