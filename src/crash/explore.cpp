#include "crash/explore.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <vector>

#include "block/raw.hpp"
#include "crash/crash_backend.hpp"
#include "io/mem_backend.hpp"
#include "qcow2/device.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/sparse_buffer.hpp"

namespace vmic::crash {

namespace {

constexpr std::size_t kNoFlush = ~std::size_t{0};

/// One scripted guest operation. The same list replays against every
/// crash point, so every run takes the identical path up to its cut.
struct GuestOp {
  enum class Kind { write, flush, zeroes, discard, read };
  Kind kind;
  std::uint64_t off = 0;
  std::uint64_t len = 0;
  std::uint64_t tag = 0;  ///< pattern seed for writes
};

void fill_pattern(std::uint64_t tag, std::span<std::uint8_t> dst) {
  std::uint64_t sm = tag;
  for (auto& b : dst) b = static_cast<std::uint8_t>(splitmix64(sm));
}

std::vector<GuestOp> make_ops(const ExploreConfig& cfg) {
  std::vector<GuestOp> ops;
  Rng rng(cfg.seed ^ 0x0b5e55edull);
  const std::uint64_t cs = 1ull << cfg.cluster_bits;
  for (int i = 0; i < cfg.guest_ops; ++i) {
    const double roll = rng.uniform();
    if (roll < cfg.flush_probability) {
      ops.push_back({GuestOp::Kind::flush});
      continue;
    }
    if (cfg.cor_chain) {
      // Cache images reject guest writes; the workload that matters is
      // reads pulling clusters in through copy-on-read.
      const std::uint64_t len = 512 * rng.range(1, (2 * cs) / 512);
      const std::uint64_t off = 512 * rng.below((cfg.image_size - len) / 512 + 1);
      ops.push_back({GuestOp::Kind::read, off, len});
      continue;
    }
    if (cfg.two_file) {
      // Overlay-over-cache: reads pull clusters into the cache (CoR
      // writes file 1), writes CoW into the overlay (writes file 2) —
      // both files mutate, so a shared cut exercises their interplay.
      const std::uint64_t len = 512 * rng.range(1, (2 * cs) / 512);
      const std::uint64_t off = 512 * rng.below((cfg.image_size - len) / 512 + 1);
      if (rng.chance(0.5)) {
        ops.push_back({GuestOp::Kind::read, off, len});
      } else {
        ops.push_back({GuestOp::Kind::write, off, len, rng.next()});
      }
      continue;
    }
    if (roll < cfg.flush_probability + cfg.zero_probability ||
        roll < cfg.flush_probability + cfg.zero_probability +
                   cfg.discard_probability) {
      const bool zero = roll < cfg.flush_probability + cfg.zero_probability;
      // Cluster-aligned so the guest-visible effect is exactly
      // "range reads zero" in both the zero-flag and deallocation paths.
      const std::uint64_t clusters = rng.range(1, 3);
      const std::uint64_t off =
          cs * rng.below(cfg.image_size / cs - clusters + 1);
      ops.push_back({zero ? GuestOp::Kind::zeroes : GuestOp::Kind::discard, off,
                     clusters * cs});
      continue;
    }
    const std::uint64_t len = 512 * rng.range(1, (3 * cs) / 512);
    const std::uint64_t off = 512 * rng.below((cfg.image_size - len) / 512 + 1);
    ops.push_back({GuestOp::Kind::write, off, len, rng.next()});
  }
  // End on a barrier so the final crash point verifies the full content.
  ops.push_back({GuestOp::Kind::flush});
  return ops;
}

Result<void> create_image(SparseBuffer& disk, const ExploreConfig& cfg) {
  io::MemBackend direct(&disk);
  qcow2::Qcow2Device::CreateOptions copt;
  copt.virtual_size = cfg.image_size;
  copt.cluster_bits = cfg.cluster_bits;
  copt.journal_sectors = cfg.journal_sectors;
  if (cfg.cor_chain) {
    copt.backing_file = "base";
    copt.cache_quota = cfg.image_size * 4;
  }
  return sim::sync_wait(qcow2::Qcow2Device::create(direct, copt));
}

/// Two files: a copy-on-read cache over the raw base, and a CoW overlay
/// whose backing is the cache.
Result<void> create_two_file(SparseBuffer& cache_disk,
                             SparseBuffer& overlay_disk,
                             const ExploreConfig& cfg) {
  {
    io::MemBackend direct(&cache_disk);
    qcow2::Qcow2Device::CreateOptions copt;
    copt.virtual_size = cfg.image_size;
    copt.cluster_bits = cfg.cluster_bits;
    copt.journal_sectors = cfg.journal_sectors;
    copt.backing_file = "base";
    copt.cache_quota = cfg.image_size * 4;
    auto r = sim::sync_wait(qcow2::Qcow2Device::create(direct, copt));
    if (!r.ok()) return r;
  }
  io::MemBackend direct(&overlay_disk);
  qcow2::Qcow2Device::CreateOptions copt;
  copt.virtual_size = cfg.image_size;
  copt.cluster_bits = cfg.cluster_bits;
  copt.journal_sectors = cfg.journal_sectors;
  copt.backing_file = "cache";
  return sim::sync_wait(qcow2::Qcow2Device::create(direct, copt));
}

sim::Task<Result<block::DevicePtr>> open_base(SparseBuffer* buf,
                                              std::uint64_t size) {
  co_return block::RawDevice::open(
      io::BackendPtr{std::make_unique<io::MemBackend>(buf)}, size);
}

Result<block::DevicePtr> open_image(io::BackendPtr file,
                                    const ExploreConfig& cfg, SparseBuffer* base,
                                    bool auto_repair) {
  block::OpenOptions opt;
  opt.writable = true;
  opt.lazy_refcounts = cfg.lazy_refcounts;
  opt.auto_repair_dirty = auto_repair;
  opt.hub = cfg.hub;
  if (cfg.cor_chain) {
    opt.resolver = [base, size = cfg.image_size](const std::string&, bool) {
      return open_base(base, size);
    };
  }
  return sim::sync_wait(qcow2::Qcow2Device::open(std::move(file), opt));
}

/// Middle link of the two-file chain (everything by value: the coroutine
/// must not reference a resolver lambda that may be gone by resume time).
sim::Task<Result<block::DevicePtr>> open_cache_link(io::BackendPtr file,
                                                    std::uint64_t size,
                                                    SparseBuffer* base,
                                                    bool lazy, bool auto_repair,
                                                    obs::Hub* hub) {
  block::OpenOptions opt;
  opt.writable = true;
  opt.lazy_refcounts = lazy;
  opt.auto_repair_dirty = auto_repair;
  opt.hub = hub;
  opt.resolver = [base, size](const std::string&, bool) {
    return open_base(base, size);
  };
  co_return co_await qcow2::Qcow2Device::open(std::move(file), opt);
}

Result<block::DevicePtr> open_overlay_chain(io::BackendPtr overlay_file,
                                            io::BackendPtr cache_file,
                                            const ExploreConfig& cfg,
                                            SparseBuffer* base,
                                            bool auto_repair) {
  block::OpenOptions opt;
  opt.writable = true;
  opt.lazy_refcounts = cfg.lazy_refcounts;
  opt.auto_repair_dirty = auto_repair;
  opt.hub = cfg.hub;
  auto holder = std::make_shared<io::BackendPtr>(std::move(cache_file));
  opt.resolver = [holder, size = cfg.image_size, base,
                  lazy = cfg.lazy_refcounts, auto_repair,
                  hub = cfg.hub](const std::string&, bool) {
    return open_cache_link(std::move(*holder), size, base, lazy, auto_repair,
                           hub);
  };
  return sim::sync_wait(qcow2::Qcow2Device::open(std::move(overlay_file), opt));
}

struct RunOutcome {
  std::size_t completed = 0;  ///< guest ops that returned ok
  Errc err = Errc::ok;        ///< first failure (io_error = the cut)
};

RunOutcome run_ops(block::BlockDevice& dev, const std::vector<GuestOp>& ops,
                   const SparseBuffer* base) {
  auto& q = static_cast<qcow2::Qcow2Device&>(dev);
  RunOutcome out;
  std::vector<std::uint8_t> buf;
  std::vector<std::uint8_t> want;
  for (const GuestOp& op : ops) {
    Result<void> r = ok_result();
    switch (op.kind) {
      case GuestOp::Kind::write:
        buf.resize(op.len);
        fill_pattern(op.tag, buf);
        r = sim::sync_wait(dev.write(op.off, buf));
        break;
      case GuestOp::Kind::read:
        buf.resize(op.len);
        r = sim::sync_wait(dev.read(op.off, buf));
        if (r.ok() && base != nullptr) {
          // Pre-crash reads through the cache must already be faithful.
          want.resize(op.len);
          base->read(op.off, want);
          if (buf != want) r = Errc::corrupt;
        }
        break;
      case GuestOp::Kind::flush:
        r = sim::sync_wait(dev.flush());
        break;
      case GuestOp::Kind::zeroes:
        r = sim::sync_wait(q.write_zeroes(op.off, op.len));
        break;
      case GuestOp::Kind::discard:
        r = sim::sync_wait(q.discard(op.off, op.len));
        break;
    }
    if (!r.ok()) {
      out.err = r.error();
      return out;
    }
    ++out.completed;
  }
  return out;
}

/// Bytes of flush-covered guest data the reopened (repaired) image gets
/// wrong. In cor_chain mode every byte must match the base — lost CoR
/// fills are refetched through the backing chain, so there is no dirty
/// window at all.
std::uint64_t verify_content(block::BlockDevice& dev, const ExploreConfig& cfg,
                             const std::vector<GuestOp>& ops,
                             std::size_t completed, const SparseBuffer* base) {
  const auto n = static_cast<std::size_t>(cfg.image_size);
  std::vector<std::uint8_t> expect(n, 0);
  std::vector<std::uint8_t> dirty(n, 0);
  // Unwritten regions read as the base through the chain (or as zeros
  // standalone). A flush makes every guest op *before* it durable;
  // anything after the last completed flush (including the op the cut
  // interrupted) may hold old, new, or torn content — excluded from
  // comparison. Pure-read workloads (cor_chain) mark nothing dirty, so
  // every byte must match the base.
  if (base != nullptr) base->read(0, expect);
  std::size_t last_flush = kNoFlush;
  for (std::size_t i = 0; i < completed; ++i) {
    if (ops[i].kind == GuestOp::Kind::flush) last_flush = i;
  }
  const std::size_t attempted = std::min(completed + 1, ops.size());
  for (std::size_t i = 0; i < attempted; ++i) {
    const GuestOp& op = ops[i];
    if (op.kind == GuestOp::Kind::flush || op.kind == GuestOp::Kind::read) {
      continue;
    }
    if (last_flush != kNoFlush && i < last_flush) {
      if (op.kind == GuestOp::Kind::write) {
        fill_pattern(op.tag, {expect.data() + op.off,
                              static_cast<std::size_t>(op.len)});
      } else {
        std::memset(expect.data() + op.off, 0,
                    static_cast<std::size_t>(op.len));
      }
    } else {
      std::memset(dirty.data() + op.off, 1, static_cast<std::size_t>(op.len));
    }
  }
  std::vector<std::uint8_t> buf(64 * 1024);
  std::uint64_t mismatches = 0;
  for (std::size_t off = 0; off < n; off += buf.size()) {
    const std::size_t len = std::min(buf.size(), n - off);
    auto r = sim::sync_wait(dev.read(off, {buf.data(), len}));
    if (!r.ok()) {
      mismatches += len;
      continue;
    }
    for (std::size_t j = 0; j < len; ++j) {
      if (!dirty.empty() && dirty[off + j] != 0) continue;
      if (buf[j] != expect[off + j]) ++mismatches;
    }
  }
  return mismatches;
}

ExploreReport explore_two_file(const ExploreConfig& cfg);

}  // namespace

ExploreReport explore(const ExploreConfig& cfg) {
  assert(cfg.image_size % (1ull << cfg.cluster_bits) == 0);
  if (cfg.two_file) return explore_two_file(cfg);
  ExploreReport rep;
  rep.leaks_allowed = cfg.journal_sectors > 0;
  const std::vector<GuestOp> ops = make_ops(cfg);

  SparseBuffer base;
  if (cfg.cor_chain) {
    std::vector<std::uint8_t> tmp(64 * 1024);
    std::uint64_t sm = cfg.seed ^ 0xba5eba11ull;
    for (std::uint64_t off = 0; off < cfg.image_size; off += tmp.size()) {
      for (auto& b : tmp) b = static_cast<std::uint8_t>(splitmix64(sm));
      base.write(off, tmp);
    }
  }
  SparseBuffer* base_p = cfg.cor_chain ? &base : nullptr;

  // Recording run: never cut, count the backend events the workload
  // produces. Every crash point k in [0, total] replays identically up to
  // its cut (k = total models a crash after the last op, before close).
  {
    SparseBuffer disk;
    if (!create_image(disk, cfg).ok()) {
      ++rep.replay_failures;
      return rep;
    }
    io::MemBackend inner(&disk);
    auto cb = std::make_unique<CrashBackend>(inner, CrashPlan{}, nullptr);
    CrashBackend* cbp = cb.get();
    auto dev = open_image(io::BackendPtr{std::move(cb)}, cfg, base_p,
                          /*auto_repair=*/true);
    if (!dev.ok()) {
      ++rep.replay_failures;
      return rep;
    }
    const RunOutcome out = run_ops(**dev, ops, base_p);
    if (out.err != Errc::ok) {
      ++rep.replay_failures;
      return rep;
    }
    rep.total_events = cbp->events();
  }

  std::vector<std::uint64_t> points;
  const std::uint64_t all = rep.total_events + 1;
  if (cfg.max_crash_points > 0 && all > cfg.max_crash_points) {
    for (std::uint64_t i = 0; i + 1 < cfg.max_crash_points; ++i) {
      points.push_back(i * all / cfg.max_crash_points);
    }
    points.push_back(rep.total_events);
  } else {
    for (std::uint64_t k = 0; k < all; ++k) points.push_back(k);
  }
  rep.crash_points = points.size();

  std::uint64_t fnv = 0xcbf29ce484222325ull;
  const auto mix = [&fnv](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fnv ^= (v >> (8 * i)) & 0xff;
      fnv *= 0x100000001b3ull;
    }
  };

  for (const std::uint64_t k : points) {
    bool point_ok = true;
    SparseBuffer disk;
    if (!create_image(disk, cfg).ok()) {
      ++rep.replay_failures;
      continue;
    }
    CrashStats cstats;
    std::size_t completed = 0;
    {
      io::MemBackend inner(&disk);
      auto cb = std::make_unique<CrashBackend>(
          inner, CrashPlan{.cut_after_events = k, .seed = cfg.seed}, cfg.hub);
      CrashBackend* cbp = cb.get();
      auto dev = open_image(io::BackendPtr{std::move(cb)}, cfg, base_p,
                            /*auto_repair=*/true);
      if (!dev.ok()) {
        ++rep.replay_failures;
        continue;
      }
      const RunOutcome out = run_ops(**dev, ops, base_p);
      completed = out.completed;
      if (out.err != Errc::ok && out.err != Errc::io_error) {
        ++rep.replay_failures;
        point_ok = false;
      }
      // Points at/after the workload's end: force the cut, then drop the
      // device without close() — the process just died.
      if (cbp->alive()) (void)sim::sync_wait(cbp->power_cut());
      cstats = cbp->stats();
    }
    rep.power_cuts += cstats.power_cuts;

    // Snapshot the crashed state before the primary repair mutates it —
    // the repair-of-repair loop below replays repair from this state.
    SparseBuffer crashed;
    if (cfg.crash_during_repair) crashed = disk.clone();

    auto reopened =
        open_image(io::BackendPtr{std::make_unique<io::MemBackend>(&disk)}, cfg,
                   base_p, /*auto_repair=*/false);
    if (!reopened.ok()) {
      ++rep.replay_failures;
      continue;
    }
    auto* q = static_cast<qcow2::Qcow2Device*>(reopened->get());
    if (q->dirty()) ++rep.dirty_images;

    const auto pre = sim::sync_wait(q->check());
    if (!pre.ok()) {
      ++rep.replay_failures;
      continue;
    }
    rep.pre_repair_corruptions += pre->corruptions;
    rep.pre_repair_leaks += pre->leaked_clusters;
    if (pre->corruptions != 0) point_ok = false;

    const auto fixed = sim::sync_wait(q->repair());
    if (!fixed.ok()) {
      ++rep.replay_failures;
      continue;
    }
    rep.entries_cleared += fixed->entries_cleared;
    rep.leaks_dropped += fixed->leaks_dropped;
    rep.corruptions_fixed += fixed->corruptions_fixed;
    if (fixed->journal_replayed) ++rep.journal_replays;
    if (fixed->journal_fallback) ++rep.journal_fallbacks;

    const auto post = sim::sync_wait(q->check());
    if (!post.ok()) {
      ++rep.replay_failures;
      continue;
    }
    rep.post_repair_corruptions += post->corruptions;
    rep.post_repair_leaks += post->leaked_clusters;
    if (post->corruptions != 0 ||
        (post->leaked_clusters != 0 && !rep.leaks_allowed)) {
      point_ok = false;
    }

    const std::uint64_t lost =
        verify_content(**reopened, cfg, ops, completed, base_p);
    rep.lost_flushed_bytes += lost;
    if (lost != 0) point_ok = false;
    (void)sim::sync_wait((*reopened)->close());

    // Repair-of-repair: the power can fail again at any instant of the
    // repair the crash forced. Replay that repair against a clone of the
    // crashed disk, cutting at every one of its own mutating events; the
    // half-repaired image must reopen, repair, and verify like any other
    // crash state.
    if (cfg.crash_during_repair) {
      for (std::uint64_t j = 0; j < 100000; ++j) {
        SparseBuffer rdisk = crashed.clone();
        bool cut_fired = false;
        {
          io::MemBackend rinner(&rdisk);
          auto rcb = std::make_unique<CrashBackend>(
              rinner,
              CrashPlan{.cut_after_events = j, .seed = cfg.seed ^ 0x5ec0ecull},
              nullptr);
          CrashBackend* rcbp = rcb.get();
          auto rdev = open_image(io::BackendPtr{std::move(rcb)}, cfg, base_p,
                                 /*auto_repair=*/true);
          if (rdev.ok()) {
            cut_fired = !rcbp->alive();
            // Drop without close(): the process died with the cut (or we
            // only cared about the repair window).
          } else if (rdev.error() == Errc::io_error) {
            cut_fired = true;
          } else {
            ++rep.replay_failures;
            point_ok = false;
            break;
          }
        }
        if (!cut_fired) break;  // repair ran to completion before event j
        ++rep.repair_crash_points;
        auto r2 = open_image(
            io::BackendPtr{std::make_unique<io::MemBackend>(&rdisk)}, cfg,
            base_p, /*auto_repair=*/true);
        if (!r2.ok()) {
          ++rep.replay_failures;
          point_ok = false;
          break;
        }
        auto* q2 = static_cast<qcow2::Qcow2Device*>(r2->get());
        const auto chk = sim::sync_wait(q2->check());
        if (!chk.ok()) {
          ++rep.replay_failures;
          point_ok = false;
          break;
        }
        rep.post_repair_corruptions += chk->corruptions;
        rep.post_repair_leaks += chk->leaked_clusters;
        if (chk->corruptions != 0 ||
            (chk->leaked_clusters != 0 && !rep.leaks_allowed)) {
          point_ok = false;
        }
        const std::uint64_t rlost =
            verify_content(**r2, cfg, ops, completed, base_p);
        rep.lost_flushed_bytes += rlost;
        if (rlost != 0) point_ok = false;
        (void)sim::sync_wait((*r2)->close());
      }
    }

    if (point_ok) ++rep.verified_points;
    mix(k);
    mix(cstats.writes_kept);
    mix(cstats.writes_dropped);
    mix(cstats.writes_torn);
    mix(pre->leaked_clusters);
    mix(pre->corruptions);
    mix(fixed->entries_cleared);
    mix(fixed->leaks_dropped);
    mix(fixed->corruptions_fixed);
    mix(lost);
    if (cfg.journal_sectors > 0) {
      mix(fixed->journal_replayed ? 1 : 0);
      mix(fixed->journal_entries);
    }
  }
  rep.digest = fnv;
  return rep;
}

namespace {

/// Two-file sweep: overlay + cache fall off the same power rail. The
/// invariants are the single-file ones on *both* images, plus content:
/// flushed guest writes survive in the overlay, and everything else must
/// still read as the base through the (repaired) chain.
ExploreReport explore_two_file(const ExploreConfig& cfg) {
  ExploreReport rep;
  rep.leaks_allowed = cfg.journal_sectors > 0;
  const std::vector<GuestOp> ops = make_ops(cfg);

  SparseBuffer base;
  {
    std::vector<std::uint8_t> tmp(64 * 1024);
    std::uint64_t sm = cfg.seed ^ 0xba5eba11ull;
    for (std::uint64_t off = 0; off < cfg.image_size; off += tmp.size()) {
      for (auto& b : tmp) b = static_cast<std::uint8_t>(splitmix64(sm));
      base.write(off, tmp);
    }
  }

  // Recording run across the shared event clock.
  {
    SparseBuffer cache_disk;
    SparseBuffer overlay_disk;
    if (!create_two_file(cache_disk, overlay_disk, cfg).ok()) {
      ++rep.replay_failures;
      return rep;
    }
    CrashDomain dom;
    io::MemBackend cache_inner(&cache_disk);
    io::MemBackend overlay_inner(&overlay_disk);
    auto ccb = std::make_unique<CrashBackend>(cache_inner, dom);
    auto ocb = std::make_unique<CrashBackend>(overlay_inner, dom);
    auto dev = open_overlay_chain(io::BackendPtr{std::move(ocb)},
                                  io::BackendPtr{std::move(ccb)}, cfg, &base,
                                  /*auto_repair=*/true);
    if (!dev.ok()) {
      ++rep.replay_failures;
      return rep;
    }
    const RunOutcome out = run_ops(**dev, ops, nullptr);
    if (out.err != Errc::ok) {
      ++rep.replay_failures;
      return rep;
    }
    rep.total_events = dom.events;
  }

  std::vector<std::uint64_t> points;
  const std::uint64_t all = rep.total_events + 1;
  if (cfg.max_crash_points > 0 && all > cfg.max_crash_points) {
    for (std::uint64_t i = 0; i + 1 < cfg.max_crash_points; ++i) {
      points.push_back(i * all / cfg.max_crash_points);
    }
    points.push_back(rep.total_events);
  } else {
    for (std::uint64_t k = 0; k < all; ++k) points.push_back(k);
  }
  rep.crash_points = points.size();

  std::uint64_t fnv = 0xcbf29ce484222325ull;
  const auto mix = [&fnv](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fnv ^= (v >> (8 * i)) & 0xff;
      fnv *= 0x100000001b3ull;
    }
  };

  for (const std::uint64_t k : points) {
    bool point_ok = true;
    SparseBuffer cache_disk;
    SparseBuffer overlay_disk;
    if (!create_two_file(cache_disk, overlay_disk, cfg).ok()) {
      ++rep.replay_failures;
      continue;
    }
    CrashStats cache_stats;
    CrashStats overlay_stats;
    std::size_t completed = 0;
    {
      CrashDomain dom;
      dom.cut_after_events = k;
      dom.seed = cfg.seed;
      io::MemBackend cache_inner(&cache_disk);
      io::MemBackend overlay_inner(&overlay_disk);
      auto ccb = std::make_unique<CrashBackend>(cache_inner, dom, 512,
                                                cfg.hub);
      auto ocb = std::make_unique<CrashBackend>(overlay_inner, dom, 512,
                                                cfg.hub);
      CrashBackend* ccbp = ccb.get();
      CrashBackend* ocbp = ocb.get();
      auto dev = open_overlay_chain(io::BackendPtr{std::move(ocb)},
                                    io::BackendPtr{std::move(ccb)}, cfg, &base,
                                    /*auto_repair=*/true);
      if (!dev.ok()) {
        ++rep.replay_failures;
        continue;
      }
      const RunOutcome out = run_ops(**dev, ops, nullptr);
      completed = out.completed;
      if (out.err != Errc::ok && out.err != Errc::io_error) {
        ++rep.replay_failures;
        point_ok = false;
      }
      if (ocbp->alive()) (void)sim::sync_wait(ocbp->power_cut());
      cache_stats = ccbp->stats();
      overlay_stats = ocbp->stats();
      rep.power_cuts += 1;
    }

    auto reopened = open_overlay_chain(
        io::BackendPtr{std::make_unique<io::MemBackend>(&overlay_disk)},
        io::BackendPtr{std::make_unique<io::MemBackend>(&cache_disk)}, cfg,
        &base, /*auto_repair=*/false);
    if (!reopened.ok()) {
      ++rep.replay_failures;
      continue;
    }
    auto* overlay = static_cast<qcow2::Qcow2Device*>(reopened->get());
    auto* cache = static_cast<qcow2::Qcow2Device*>(overlay->backing());
    if (overlay->dirty()) ++rep.dirty_images;
    if (cache->dirty()) ++rep.dirty_images;

    bool failed = false;
    for (qcow2::Qcow2Device* q : {overlay, cache}) {
      const auto pre = sim::sync_wait(q->check());
      if (!pre.ok()) {
        ++rep.replay_failures;
        failed = true;
        break;
      }
      rep.pre_repair_corruptions += pre->corruptions;
      rep.pre_repair_leaks += pre->leaked_clusters;
      if (pre->corruptions != 0) point_ok = false;
      mix(pre->leaked_clusters);
      mix(pre->corruptions);

      const auto fixed = sim::sync_wait(q->repair());
      if (!fixed.ok()) {
        ++rep.replay_failures;
        failed = true;
        break;
      }
      rep.entries_cleared += fixed->entries_cleared;
      rep.leaks_dropped += fixed->leaks_dropped;
      rep.corruptions_fixed += fixed->corruptions_fixed;
      if (fixed->journal_replayed) ++rep.journal_replays;
      if (fixed->journal_fallback) ++rep.journal_fallbacks;
      mix(fixed->entries_cleared);
      mix(fixed->leaks_dropped);
      mix(fixed->corruptions_fixed);

      const auto post = sim::sync_wait(q->check());
      if (!post.ok()) {
        ++rep.replay_failures;
        failed = true;
        break;
      }
      rep.post_repair_corruptions += post->corruptions;
      rep.post_repair_leaks += post->leaked_clusters;
      if (post->corruptions != 0 ||
          (post->leaked_clusters != 0 && !rep.leaks_allowed)) {
        point_ok = false;
      }
    }
    if (failed) continue;

    const std::uint64_t lost =
        verify_content(**reopened, cfg, ops, completed, &base);
    rep.lost_flushed_bytes += lost;
    if (lost != 0) point_ok = false;
    (void)sim::sync_wait((*reopened)->close());

    if (point_ok) ++rep.verified_points;
    mix(k);
    mix(cache_stats.writes_kept + overlay_stats.writes_kept);
    mix(cache_stats.writes_dropped + overlay_stats.writes_dropped);
    mix(cache_stats.writes_torn + overlay_stats.writes_torn);
    mix(lost);
  }
  rep.digest = fnv;
  return rep;
}

}  // namespace

std::string to_json(const ExploreReport& r, const ExploreConfig& cfg) {
  std::string s = "{\n";
  const auto field = [&s](const char* k, std::uint64_t v, bool comma = true) {
    s += "  \"";
    s += k;
    s += "\": ";
    s += std::to_string(v);
    if (comma) s += ",";
    s += "\n";
  };
  field("seed", cfg.seed);
  field("cluster_bits", cfg.cluster_bits);
  field("image_size", cfg.image_size);
  field("guest_ops", static_cast<std::uint64_t>(cfg.guest_ops));
  field("lazy_refcounts", cfg.lazy_refcounts ? 1 : 0);
  field("cor_chain", cfg.cor_chain ? 1 : 0);
  field("journal_sectors", cfg.journal_sectors);
  field("crash_during_repair", cfg.crash_during_repair ? 1 : 0);
  field("two_file", cfg.two_file ? 1 : 0);
  field("max_crash_points", cfg.max_crash_points);
  field("total_events", r.total_events);
  field("crash_points", r.crash_points);
  field("power_cuts", r.power_cuts);
  field("replay_failures", r.replay_failures);
  field("pre_repair_corruptions", r.pre_repair_corruptions);
  field("pre_repair_leaks", r.pre_repair_leaks);
  field("dirty_images", r.dirty_images);
  field("entries_cleared", r.entries_cleared);
  field("leaks_dropped", r.leaks_dropped);
  field("corruptions_fixed", r.corruptions_fixed);
  field("post_repair_corruptions", r.post_repair_corruptions);
  field("post_repair_leaks", r.post_repair_leaks);
  field("lost_flushed_bytes", r.lost_flushed_bytes);
  field("verified_points", r.verified_points);
  field("journal_replays", r.journal_replays);
  field("journal_fallbacks", r.journal_fallbacks);
  field("repair_crash_points", r.repair_crash_points);
  field("leaks_allowed", r.leaks_allowed ? 1 : 0);
  field("digest", r.digest);
  field("pass", r.pass() ? 1 : 0, /*comma=*/false);
  s += "}\n";
  return s;
}

}  // namespace vmic::crash
