#pragma once

#include <map>
#include <memory>
#include <string>

#include "io/directory.hpp"
#include "storage/medium.hpp"
#include "util/sparse_buffer.hpp"

namespace vmic::storage {

/// A directory of files living on a simulated medium: contents in sparse
/// buffers (zero-eliding), timing charged to the medium. This is what a
/// node's local disk or tmpfs looks like to the block layer.
class SimDirectory final : public io::ImageDirectory {
 public:
  /// `sync_writes`: charge every write as a synchronous one (QEMU image
  /// metadata semantics); the key knob behind Fig 8's cold-cache-on-disk
  /// penalty.
  SimDirectory(Medium& medium, bool sync_writes = true)
      : medium_(medium), sync_writes_(sync_writes) {}

  Result<io::BackendPtr> open_file(const std::string& name,
                                   bool writable) override;
  Result<io::BackendPtr> create_file(const std::string& name) override;
  [[nodiscard]] bool exists(const std::string& name) const override {
    return files_.count(name) != 0;
  }

  /// Host-side helpers (no simulated time; for setup and inspection).
  Result<SparseBuffer*> buffer(const std::string& name);
  Result<std::uint64_t> file_size(const std::string& name) const;
  /// Stable file identity used for physical-position salting.
  Result<std::uint64_t> file_id(const std::string& name) const;
  void remove(const std::string& name) { files_.erase(name); }
  [[nodiscard]] Medium& medium() noexcept { return medium_; }

  /// Cost of a flush barrier, expressed as a synchronous write of this
  /// many bytes charged to the medium (0 = barriers are free, the
  /// default — sim media persist every write immediately, so a barrier
  /// only orders). Making it non-zero makes flush ordering visible in
  /// sim time, e.g. to measure what the qcow2 barrier discipline costs.
  void set_flush_cost_bytes(std::uint64_t n) noexcept { flush_cost_bytes_ = n; }

  /// Instant, timing-free copy of a file's bytes between directories
  /// (setup plumbing; timed transfers go through NFS / links).
  static Result<void> clone_file(SimDirectory& from, const std::string& src,
                                 SimDirectory& to, const std::string& dst);

 private:
  friend class SimFileBackend;
  struct File {
    SparseBuffer data;
    std::uint64_t id;
  };

  Medium& medium_;
  bool sync_writes_;
  std::uint64_t flush_cost_bytes_ = 0;
  std::map<std::string, std::unique_ptr<File>> files_;
  std::uint64_t next_id_ = 1;
};

/// BlockBackend over a SimDirectory file: every operation charges the
/// directory's medium before touching the bytes.
class SimFileBackend final : public io::BlockBackend {
 public:
  SimFileBackend(SimDirectory& dir, SimDirectory::File& file, bool writable)
      : dir_(dir), file_(file) {
    ro_ = !writable;
  }

  sim::Task<Result<void>> pread(std::uint64_t off,
                                std::span<std::uint8_t> dst) override {
    co_await dir_.medium_.read(file_pos(file_.id, off), dst.size());
    file_.data.read(off, dst);
    co_return ok_result();
  }

  sim::Task<Result<void>> pwrite(std::uint64_t off,
                                 std::span<const std::uint8_t> src) override {
    VMIC_CO_TRY_VOID(check_writable());
    co_await dir_.medium_.write(file_pos(file_.id, off), src.size(),
                                dir_.sync_writes_);
    file_.data.write(off, src);
    co_return ok_result();
  }

  sim::Task<Result<void>> flush() override {
    if (dir_.flush_cost_bytes_ > 0) {
      co_await dir_.medium_.write(file_pos(file_.id, 0),
                                  dir_.flush_cost_bytes_, /*sync=*/true);
    }
    co_return ok_result();
  }

  sim::Task<Result<void>> truncate(std::uint64_t new_size) override {
    VMIC_CO_TRY_VOID(check_writable());
    file_.data.resize(new_size);
    co_return ok_result();
  }

  [[nodiscard]] std::uint64_t size() const override {
    return file_.data.size();
  }
  [[nodiscard]] std::string describe() const override {
    return "sim:" + dir_.medium_.name();
  }

 private:
  SimDirectory& dir_;
  SimDirectory::File& file_;
};

inline Result<io::BackendPtr> SimDirectory::open_file(const std::string& name,
                                                      bool writable) {
  auto it = files_.find(name);
  if (it == files_.end()) return Errc::not_found;
  return io::BackendPtr{
      std::make_unique<SimFileBackend>(*this, *it->second, writable)};
}

inline Result<io::BackendPtr> SimDirectory::create_file(
    const std::string& name) {
  auto& slot = files_[name];
  slot = std::make_unique<File>();
  slot->id = next_id_++;
  return io::BackendPtr{
      std::make_unique<SimFileBackend>(*this, *slot, /*writable=*/true)};
}

inline Result<SparseBuffer*> SimDirectory::buffer(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return Errc::not_found;
  return &it->second->data;
}

inline Result<std::uint64_t> SimDirectory::file_size(
    const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Errc::not_found;
  return it->second->data.size();
}

inline Result<std::uint64_t> SimDirectory::file_id(
    const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Errc::not_found;
  return it->second->id;
}

inline Result<void> SimDirectory::clone_file(SimDirectory& from,
                                             const std::string& src,
                                             SimDirectory& to,
                                             const std::string& dst) {
  auto it = from.files_.find(src);
  if (it == from.files_.end()) return Errc::not_found;
  auto& slot = to.files_[dst];
  slot = std::make_unique<File>();
  slot->id = to.next_id_++;
  const SparseBuffer& s = it->second->data;
  std::vector<std::uint8_t> tmp(1 << 20);
  for (std::uint64_t off = 0; off < s.size(); off += tmp.size()) {
    const std::uint64_t n = std::min<std::uint64_t>(tmp.size(), s.size() - off);
    s.read(off, {tmp.data(), static_cast<std::size_t>(n)});
    slot->data.write(off, {tmp.data(), static_cast<std::size_t>(n)});
  }
  return Result<void>{};
}

}  // namespace vmic::storage
