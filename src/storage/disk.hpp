#pragma once

#include "sim/sync.hpp"
#include "storage/medium.hpp"

namespace vmic::storage {

/// Rotational-disk parameters. Defaults model the DAS-4 storage setup:
/// two WD 7200-RPM SATA drives in software RAID-0 — a single FCFS request
/// queue with one positioning cost per non-sequential request and the
/// streaming rate of the two spindles combined.
struct DiskParams {
  /// Average positioning time (seek + rotational) for a random access.
  double positioning_ms = 8.5;
  /// Streaming transfer rate in bytes/second (2 x ~120 MB/s).
  double transfer_bps = 240e6;
  /// A request starting within this many bytes after the previous one is
  /// serviced as (near-)sequential: no positioning, just the gap skipped
  /// at transfer speed. Models track locality + kernel readahead.
  std::uint64_t seq_window = 256 * 1024;
  /// Extra fixed latency for sync writes (FUA/flush handling).
  double sync_write_ms = 0.5;
  /// Fixed overhead for async (write-cached) writes.
  double async_write_ms = 0.05;
};

/// FCFS rotational disk. Requests queue on a FIFO mutex (the disk services
/// one request at a time); each non-sequential request pays the
/// positioning cost — which is exactly why "the read requests coming from
/// different VMs are mostly random in nature and rotational disks do not
/// handle this well" (§3.3) and why the storage node's disk is the Fig 3
/// bottleneck.
class RotationalDisk final : public Medium {
 public:
  RotationalDisk(sim::SimEnv& env, DiskParams p = {})
      : env_(env), p_(p), queue_(env) {}

  sim::Task<void> read(std::uint64_t pos, std::uint64_t len) override {
    auto guard = co_await queue_.lock();
    ++stats_.reads;
    stats_.bytes_read += len;
    obs::Span sp;
    if (obs::tracing(hub_)) {
      sp = hub_->tracer.span(track_, "disk.read", "storage",
                             "\"bytes\":" + std::to_string(len));
    }
    const sim::SimTime t = service_time(pos, len, /*write=*/false);
    if (hub_ != nullptr) service_hist_.observe(sim::to_seconds(t));
    co_await env_.delay(t);
    last_end_ = pos + len;
  }

  sim::Task<void> write(std::uint64_t pos, std::uint64_t len,
                        bool sync) override {
    auto guard = co_await queue_.lock();
    ++stats_.writes;
    stats_.bytes_written += len;
    obs::Span sp;
    if (obs::tracing(hub_)) {
      sp = hub_->tracer.span(track_, "disk.write", "storage",
                             "\"bytes\":" + std::to_string(len));
    }
    if (sync) {
      // O_SYNC/flush-per-write: full positioning + media commit. This is
      // what a cache image created directly on disk pays (Fig 8).
      sim::SimTime t = service_time(pos, len, /*write=*/true);
      t += sim::from_millis(p_.sync_write_ms);
      co_await env_.delay(t);
      last_end_ = pos + len;
    } else {
      // Writeback: absorbed by the page/drive cache, flushed in the
      // background — the caller only pays a copy-and-queue cost.
      co_await env_.delay(
          sim::from_millis(p_.async_write_ms) +
          sim::from_seconds(static_cast<double>(len) / p_.transfer_bps));
    }
  }

  [[nodiscard]] std::string name() const override { return "disk"; }

  [[nodiscard]] std::size_t queue_length() const noexcept {
    return queue_.queue_length();
  }

 private:
  void on_bind_obs(const obs::Labels& labels) override {
    hub_->registry.attach_histogram("storage.disk.service_seconds", labels,
                                    &service_hist_, this);
  }

  [[nodiscard]] sim::SimTime service_time(std::uint64_t pos,
                                          std::uint64_t len, bool write) {
    double seconds = static_cast<double>(len) / p_.transfer_bps;
    const bool sequential =
        pos >= last_end_ && pos - last_end_ <= p_.seq_window;
    if (sequential) {
      // Skip the gap at streaming speed (readahead already has it).
      seconds += static_cast<double>(pos - last_end_) / p_.transfer_bps;
    } else {
      seconds += p_.positioning_ms * 1e-3;
      ++stats_.positioning_ops;
    }
    (void)write;
    return sim::from_seconds(seconds);
  }

  sim::SimEnv& env_;
  DiskParams p_;
  sim::Mutex queue_;
  std::uint64_t last_end_ = ~0ull;
  /// Per-request service time distribution (seek-vs-stream mix).
  obs::Histogram service_hist_{
      {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0}};
};

/// Memory / tmpfs medium: latency + bandwidth, no queueing (memory
/// serves our request rates effectively in parallel).
struct MemParams {
  double latency_us = 0.5;
  double bandwidth_bps = 6e9;
};

class MemMedium final : public Medium {
 public:
  MemMedium(sim::SimEnv& env, MemParams p = {}) : env_(env), p_(p) {}

  sim::Task<void> read(std::uint64_t pos, std::uint64_t len) override {
    (void)pos;
    ++stats_.reads;
    stats_.bytes_read += len;
    co_await env_.delay(cost(len));
  }

  sim::Task<void> write(std::uint64_t pos, std::uint64_t len,
                        bool sync) override {
    (void)pos;
    (void)sync;
    ++stats_.writes;
    stats_.bytes_written += len;
    co_await env_.delay(cost(len));
  }

  [[nodiscard]] std::string name() const override { return "mem"; }

 private:
  [[nodiscard]] sim::SimTime cost(std::uint64_t len) const {
    return sim::from_seconds(p_.latency_us * 1e-6 +
                             static_cast<double>(len) / p_.bandwidth_bps);
  }

  sim::SimEnv& env_;
  MemParams p_;
};

}  // namespace vmic::storage
