#pragma once

#include <memory>
#include <unordered_map>

#include "sim/sync.hpp"
#include "storage/disk.hpp"
#include "storage/medium.hpp"
#include "storage/page_cache.hpp"

namespace vmic::storage {

/// A disk fronted by an OS-style page cache (the storage node's RAM).
///
/// This is what makes the paper's baseline curves have their shape:
///  * Fig 2 (one VMI, InfiniBand): the first reader faults a block from
///    disk, the other 63 hit memory — flat booting time;
///  * Fig 3 (many VMIs): every additional VMI adds a disk-unique working
///    set, so the total disk time grows linearly with the number of VMIs.
///
/// Concurrent misses on the same block are coalesced: one disk access,
/// everyone else waits on it — like the kernel's locked page I/O.
class CachedMedium final : public Medium {
 public:
  CachedMedium(sim::SimEnv& env, Medium& backing, std::uint64_t cache_bytes,
               MemParams mem = {})
      : env_(env),
        backing_(backing),
        mem_(env, mem),
        cache_(cache_bytes) {}

  sim::Task<void> read(std::uint64_t pos, std::uint64_t len) override {
    ++stats_.reads;
    stats_.bytes_read += len;
    const std::uint64_t bs = cache_.block_size();
    const std::uint64_t first = pos / bs;
    const std::uint64_t last = (pos + (len == 0 ? 0 : len - 1)) / bs;

    // Walk the blocks; group contiguous misses into one disk access.
    std::uint64_t miss_start = 0;
    std::uint64_t miss_count = 0;
    for (std::uint64_t b = first; b <= last; ++b) {
      if (auto it = inflight_.find(b); it != inflight_.end()) {
        // Someone is already faulting this block in; wait for them.
        if (miss_count > 0) {
          co_await fault(miss_start, miss_count);
          miss_count = 0;
        }
        auto ev = it->second;  // keep alive across the wait
        co_await ev->wait();
        continue;
      }
      if (cache_.lookup(b * bs)) {
        if (miss_count > 0) {
          co_await fault(miss_start, miss_count);
          miss_count = 0;
        }
        co_await mem_.read(b * bs, std::min(bs, pos + len - b * bs));
        continue;
      }
      if (miss_count == 0) miss_start = b;
      ++miss_count;
    }
    if (miss_count > 0) co_await fault(miss_start, miss_count);
  }

  sim::Task<void> write(std::uint64_t pos, std::uint64_t len,
                        bool sync) override {
    ++stats_.writes;
    stats_.bytes_written += len;
    // Write-through to the disk; the written blocks become resident.
    co_await backing_.write(pos, len, sync);
    const std::uint64_t bs = cache_.block_size();
    for (std::uint64_t b = pos / bs; b <= (pos + len) / bs; ++b) {
      cache_.insert(b * bs);
    }
  }

  [[nodiscard]] std::string name() const override {
    return backing_.name() + "+pagecache";
  }

  [[nodiscard]] PageCache& page_cache() noexcept { return cache_; }

 private:
  void on_bind_obs(const obs::Labels& labels) override {
    cache_.bind_obs(hub_, labels);
  }

  sim::Task<void> fault(std::uint64_t first_block, std::uint64_t count) {
    const std::uint64_t bs = cache_.block_size();
    auto ev = std::make_shared<sim::Event>(env_);
    for (std::uint64_t b = first_block; b < first_block + count; ++b) {
      inflight_.emplace(b, ev);
    }
    co_await backing_.read(first_block * bs, count * bs);
    for (std::uint64_t b = first_block; b < first_block + count; ++b) {
      cache_.insert(b * bs);
      inflight_.erase(b);
    }
    ev->trigger();
  }

  sim::SimEnv& env_;
  Medium& backing_;
  MemMedium mem_;
  PageCache cache_;
  std::unordered_map<std::uint64_t, std::shared_ptr<sim::Event>> inflight_;
};

}  // namespace vmic::storage
