#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "obs/hub.hpp"

namespace vmic::storage {

/// Byte-capacity LRU page cache index (presence only — the simulator
/// keeps actual file bytes elsewhere). Block-granular.
class PageCache {
 public:
  explicit PageCache(std::uint64_t capacity_bytes,
                     std::uint64_t block_size = 64 * 1024)
      : capacity_(capacity_bytes), block_(block_size) {}

  ~PageCache() {
    if (hub_ != nullptr) hub_->registry.detach(this);
  }

  /// Export hit/miss/eviction counters and an occupancy gauge as
  /// storage.page_cache.* under the given labels.
  void bind_obs(obs::Hub* hub, const obs::Labels& labels) {
    hub_ = hub;
    if (hub_ == nullptr) return;
    hub_->registry.attach_counter("storage.page_cache.hits", labels, &hits_,
                                  this);
    hub_->registry.attach_counter("storage.page_cache.misses", labels,
                                  &misses_, this);
    hub_->registry.attach_counter("storage.page_cache.evictions", labels,
                                  &evictions_, this);
    hub_->registry.attach_gauge_fn(
        "storage.page_cache.used_bytes", labels,
        [this] { return static_cast<double>(used_bytes()); }, this);
  }

  [[nodiscard]] std::uint64_t block_size() const noexcept { return block_; }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept {
    return lru_.size() * block_;
  }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// True (and refreshed) if the block holding `pos` is resident.
  bool lookup(std::uint64_t pos) {
    auto it = map_.find(pos / block_);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  /// Insert the block holding `pos`, evicting LRU blocks as needed.
  void insert(std::uint64_t pos) {
    const std::uint64_t key = pos / block_;
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (block_ > capacity_) return;  // degenerate: one block cannot ever
                                     // fit — do not evict the resident set
    while (used_bytes() + block_ > capacity_ && !lru_.empty()) {
      map_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
    lru_.push_front(key);
    map_[key] = lru_.begin();
  }

  void drop(std::uint64_t pos) {
    auto it = map_.find(pos / block_);
    if (it == map_.end()) return;
    lru_.erase(it->second);
    map_.erase(it);
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t block_;
  std::list<std::uint64_t> lru_;  // front = most recent; holds block keys
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Hub* hub_ = nullptr;
};

}  // namespace vmic::storage
