#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

namespace vmic::storage {

/// Byte-capacity LRU page cache index (presence only — the simulator
/// keeps actual file bytes elsewhere). Block-granular.
class PageCache {
 public:
  explicit PageCache(std::uint64_t capacity_bytes,
                     std::uint64_t block_size = 64 * 1024)
      : capacity_(capacity_bytes), block_(block_size) {}

  [[nodiscard]] std::uint64_t block_size() const noexcept { return block_; }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept {
    return lru_.size() * block_;
  }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// True (and refreshed) if the block holding `pos` is resident.
  bool lookup(std::uint64_t pos) {
    auto it = map_.find(pos / block_);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  /// Insert the block holding `pos`, evicting LRU blocks as needed.
  void insert(std::uint64_t pos) {
    const std::uint64_t key = pos / block_;
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    while (used_bytes() + block_ > capacity_ && !lru_.empty()) {
      map_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
    if (block_ > capacity_) return;  // degenerate: cache too small
    lru_.push_front(key);
    map_[key] = lru_.begin();
  }

  void drop(std::uint64_t pos) {
    auto it = map_.find(pos / block_);
    if (it == map_.end()) return;
    lru_.erase(it->second);
    map_.erase(it);
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t block_;
  std::list<std::uint64_t> lru_;  // front = most recent; holds block keys
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace vmic::storage
