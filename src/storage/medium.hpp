#pragma once

#include <cstdint>
#include <string>

#include "sim/env.hpp"
#include "sim/task.hpp"

namespace vmic::storage {

/// Per-medium operation counters.
struct MediumStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t positioning_ops = 0;  ///< ops that paid a seek (disks)
};

/// Timing model for a byte-addressable storage medium at a node. Callers
/// pass *physical positions* (a file-id-salted offset) so the model can
/// detect sequential access. The actual bytes live elsewhere (the
/// simulator keeps file contents in sparse buffers); a Medium only
/// charges simulated time.
class Medium {
 public:
  virtual ~Medium() = default;

  /// Charge the time for reading `len` bytes at `pos`.
  virtual sim::Task<void> read(std::uint64_t pos, std::uint64_t len) = 0;

  /// Charge the time for writing. `sync` models O_SYNC/flush-per-write
  /// semantics (what makes cold caches on disk slow, Fig 8).
  virtual sim::Task<void> write(std::uint64_t pos, std::uint64_t len,
                                bool sync) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const MediumStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = MediumStats{}; }

 protected:
  MediumStats stats_;
};

/// Compose a physical position from a file identity and an offset, so
/// that different files never look sequential to a disk model.
constexpr std::uint64_t file_pos(std::uint64_t file_id,
                                 std::uint64_t off) noexcept {
  return (file_id << 40) + off;
}

}  // namespace vmic::storage
