#pragma once

#include <cstdint>
#include <string>

#include "obs/hub.hpp"
#include "sim/env.hpp"
#include "sim/task.hpp"

namespace vmic::storage {

/// Per-medium operation counters, registry-backed (exported as
/// storage.*{medium=...,node=...} when the medium is bound to a hub).
struct MediumStats {
  obs::Counter reads;
  obs::Counter writes;
  obs::Counter bytes_read;
  obs::Counter bytes_written;
  obs::Counter positioning_ops;  ///< ops that paid a seek (disks)
};

/// Timing model for a byte-addressable storage medium at a node. Callers
/// pass *physical positions* (a file-id-salted offset) so the model can
/// detect sequential access. The actual bytes live elsewhere (the
/// simulator keeps file contents in sparse buffers); a Medium only
/// charges simulated time.
class Medium {
 public:
  virtual ~Medium() {
    if (hub_ != nullptr) hub_->registry.detach(this);
  }

  /// Charge the time for reading `len` bytes at `pos`.
  virtual sim::Task<void> read(std::uint64_t pos, std::uint64_t len) = 0;

  /// Charge the time for writing. `sync` models O_SYNC/flush-per-write
  /// semantics (what makes cold caches on disk slow, Fig 8).
  virtual sim::Task<void> write(std::uint64_t pos, std::uint64_t len,
                                bool sync) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const MediumStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = MediumStats{}; }

  /// Export this medium's counters under the given labels (a
  /// `medium=<name()>` label is added automatically) and open a trace
  /// track named `<track>` for per-request spans.
  void bind_obs(obs::Hub* hub, obs::Labels labels, const std::string& track) {
    hub_ = hub;
    if (hub_ == nullptr) return;
    labels.emplace_back("medium", name());
    hub_->registry.attach_counter("storage.reads", labels, &stats_.reads,
                                  this);
    hub_->registry.attach_counter("storage.writes", labels, &stats_.writes,
                                  this);
    hub_->registry.attach_counter("storage.bytes_read", labels,
                                  &stats_.bytes_read, this);
    hub_->registry.attach_counter("storage.bytes_written", labels,
                                  &stats_.bytes_written, this);
    hub_->registry.attach_counter("storage.positioning_ops", labels,
                                  &stats_.positioning_ops, this);
    track_ = hub_->tracer.track(track);
    on_bind_obs(labels);
  }

 protected:
  /// Hook for subclasses to attach extra instruments (histograms) under
  /// the same labels; called only when a hub is bound.
  virtual void on_bind_obs(const obs::Labels& labels) { (void)labels; }

  MediumStats stats_;
  obs::Hub* hub_ = nullptr;     ///< null = observability off
  std::uint32_t track_ = 0;     ///< trace track when bound
};

/// Compose a physical position from a file identity and an offset, so
/// that different files never look sequential to a disk model.
constexpr std::uint64_t file_pos(std::uint64_t file_id,
                                 std::uint64_t off) noexcept {
  return (file_id << 40) + off;
}

}  // namespace vmic::storage
