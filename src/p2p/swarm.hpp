#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "sim/env.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"
#include "util/sparse_buffer.hpp"

namespace vmic::p2p {

/// Peer-to-peer VMI distribution substrate — the §7.1.1 related-work
/// baselines the paper positions VMI caches against:
///  * LANTorrent-style store-and-forward pipeline (Nimbus [17]): the
///    storage node streams the complete image through a chain of nodes;
///  * BitTorrent-style swarm ([4, 18, 27]): chunks spread rarest-first
///    between peers, the full image lands on every node before boot;
///  * VMTorrent-style on-demand streaming (Reich et al. [24]): the VM
///    boots immediately, missing chunks are fetched with priority and a
///    background stream fills the rest (see P2pStreamBackend).
///
/// Unlike the NFS path (one shared storage link), every peer here has its
/// own full-duplex NIC behind a non-blocking switch — the topology that
/// makes P2P attractive in the first place.
struct P2pParams {
  std::uint64_t chunk_size = 4 * 1024 * 1024;
  int parallel_fetches = 4;       ///< concurrent downloads per peer (swarm)
  double nic_bandwidth_Bps = 125e6;  ///< 1 GbE per node
  sim::SimTime latency = sim::from_micros(50);
  std::uint32_t per_chunk_overhead = 512;  ///< protocol bytes per chunk
};

/// Monotone counter with waiters — "wake me when progress reaches n".
/// Drives the pipeline: each hop waits for its predecessor to have the
/// next chunk.
class Progress {
 public:
  explicit Progress(sim::SimEnv& env) : env_(env) {}

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  void advance_to(std::uint64_t n) {
    if (n <= count_) return;
    count_ = n;
    while (!waiters_.empty() && waiters_.begin()->first <= count_) {
      env_.schedule_at(env_.now(), waiters_.begin()->second);
      waiters_.erase(waiters_.begin());
    }
  }

  struct Awaiter {
    Progress& p;
    std::uint64_t need;
    bool await_ready() const noexcept { return p.count_ >= need; }
    void await_suspend(std::coroutine_handle<> h) {
      p.waiters_.emplace(need, h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter wait_for(std::uint64_t n) { return {*this, n}; }

 private:
  sim::SimEnv& env_;
  std::uint64_t count_ = 0;
  std::multimap<std::uint64_t, std::coroutine_handle<>> waiters_;
};

/// One VMI being distributed from a seed (the storage node) to N peers.
class Swarm {
 public:
  Swarm(sim::SimEnv& env, int num_peers, std::uint64_t image_size,
        P2pParams params = {}, std::uint64_t seed = 0x5EED);

  [[nodiscard]] std::uint32_t num_chunks() const noexcept {
    return num_chunks_;
  }
  [[nodiscard]] std::uint64_t image_size() const noexcept {
    return image_size_;
  }
  [[nodiscard]] int num_peers() const noexcept {
    return static_cast<int>(peer_nics_.size());
  }
  [[nodiscard]] const P2pParams& params() const noexcept { return p_; }
  [[nodiscard]] sim::SimEnv& env() noexcept { return env_; }

  [[nodiscard]] bool peer_has(int peer, std::uint32_t chunk) const {
    return have_[static_cast<std::size_t>(peer)][chunk];
  }
  [[nodiscard]] std::uint32_t peer_chunk_count(int peer) const {
    return have_count_[static_cast<std::size_t>(peer)];
  }
  [[nodiscard]] bool peer_complete(int peer) const {
    return peer_chunk_count(peer) == num_chunks_;
  }

  /// Fetch one chunk for `peer` from the best source (a peer that has it
  /// with the fewest active uploads, else the seed). Coalesces with an
  /// in-flight fetch of the same chunk by the same peer. No-op if
  /// already present.
  sim::Task<void> fetch_chunk(int peer, std::uint32_t chunk);

  /// Swarm mode: download every chunk, rarest-first, with
  /// params().parallel_fetches concurrent transfers. Returns when this
  /// peer is complete.
  sim::Task<void> download_all(int peer);

  /// LANTorrent mode: run the whole pipeline seed -> peer 0 -> peer 1 ->
  /// ... storing and forwarding chunk by chunk. Returns when the last
  /// peer is complete. (Call instead of download_all, not in addition.)
  sim::Task<void> run_pipeline();

  /// Total bytes moved between any two parties.
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept {
    return bytes_transferred_;
  }

  // --- demand priority (VMTorrent's key mechanism) -----------------------
  /// Mark a demand (boot-critical) fetch in flight for `peer`; background
  /// streamers yield while any demand is outstanding.
  void begin_demand(int peer) {
    ++demand_count_[static_cast<std::size_t>(peer)];
  }
  void end_demand(int peer);
  /// Suspend until `peer` has no outstanding demand fetches.
  struct DemandIdleAwaiter {
    Swarm& s;
    int peer;
    bool await_ready() const noexcept {
      return s.demand_count_[static_cast<std::size_t>(peer)] == 0;
    }
    void await_suspend(std::coroutine_handle<> h) {
      s.demand_waiters_[static_cast<std::size_t>(peer)].push_back(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] DemandIdleAwaiter wait_demand_idle(int peer) {
    return {*this, peer};
  }

 private:
  struct Nic {
    Nic(sim::SimEnv& env, const P2pParams& p, const std::string& name)
        : up(env, p.nic_bandwidth_Bps, p.latency, name + ".up"),
          down(env, p.nic_bandwidth_Bps, p.latency, name + ".down") {}
    net::Link up;
    net::Link down;
    int active_uploads = 0;
  };

  /// Move `bytes` from `src`'s uplink to `dst`'s downlink: both links
  /// carry the payload concurrently; the transfer completes when the
  /// slower one finishes.
  sim::Task<void> transfer_via(Nic& src, Nic& dst, std::uint64_t bytes);

  /// -1 = seed. Chooses the least-busy holder of `chunk`.
  int pick_source(int peer, std::uint32_t chunk);
  Nic& nic_of(int id) {
    return id < 0 ? *seed_nic_ : *peer_nics_[static_cast<std::size_t>(id)];
  }

  void mark_have(int peer, std::uint32_t chunk);

  sim::SimEnv& env_;
  P2pParams p_;
  std::uint64_t image_size_;
  std::uint32_t num_chunks_;
  Rng rng_;

  std::unique_ptr<Nic> seed_nic_;
  std::vector<std::unique_ptr<Nic>> peer_nics_;
  std::vector<std::vector<bool>> have_;       // [peer][chunk]
  std::vector<std::uint32_t> have_count_;     // per peer
  std::vector<std::uint32_t> availability_;   // holders per chunk (peers only)
  // In-flight fetch coalescing per (peer, chunk).
  std::map<std::pair<int, std::uint32_t>, std::shared_ptr<sim::Event>>
      inflight_;
  std::vector<std::unique_ptr<Progress>> progress_;  // pipeline mode
  std::uint64_t bytes_transferred_ = 0;
  std::vector<std::uint32_t> demand_count_;
  std::vector<std::vector<std::coroutine_handle<>>> demand_waiters_;
};

}  // namespace vmic::p2p
