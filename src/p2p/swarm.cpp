#include "p2p/swarm.hpp"

#include <algorithm>
#include <cassert>

#include "util/align.hpp"

namespace vmic::p2p {

Swarm::Swarm(sim::SimEnv& env, int num_peers, std::uint64_t image_size,
             P2pParams params, std::uint64_t seed)
    : env_(env),
      p_(params),
      image_size_(image_size),
      num_chunks_(static_cast<std::uint32_t>(
          div_ceil(image_size, params.chunk_size))),
      rng_(seed) {
  assert(num_peers > 0 && image_size > 0);
  seed_nic_ = std::make_unique<Nic>(env, p_, "seed");
  for (int i = 0; i < num_peers; ++i) {
    peer_nics_.push_back(
        std::make_unique<Nic>(env, p_, "peer" + std::to_string(i)));
    have_.emplace_back(num_chunks_, false);
    have_count_.push_back(0);
    progress_.push_back(std::make_unique<Progress>(env));
  }
  availability_.assign(num_chunks_, 0);
  demand_count_.assign(static_cast<std::size_t>(num_peers), 0);
  demand_waiters_.resize(static_cast<std::size_t>(num_peers));
}

void Swarm::end_demand(int peer) {
  auto& n = demand_count_[static_cast<std::size_t>(peer)];
  assert(n > 0);
  if (--n == 0) {
    auto& ws = demand_waiters_[static_cast<std::size_t>(peer)];
    for (auto h : ws) env_.schedule_at(env_.now(), h);
    ws.clear();
  }
}

sim::Task<void> Swarm::transfer_via(Nic& src, Nic& dst,
                                    std::uint64_t bytes) {
  // Both access links carry the payload; completion is the slower of the
  // two. Fork the two PS transfers and join.
  struct Join {
    explicit Join(sim::SimEnv& env) : done(env) {}
    int remaining = 2;
    sim::Event done;
  };
  auto join = std::make_shared<Join>(env_);
  auto leg = [](net::Link& link, std::uint64_t n,
                std::shared_ptr<Join> j) -> sim::Task<void> {
    co_await link.transfer(n);
    if (--j->remaining == 0) j->done.trigger();
  };
  env_.spawn(leg(src.up, bytes, join));
  env_.spawn(leg(dst.down, bytes, join));
  ++src.active_uploads;
  co_await join->done.wait();
  --src.active_uploads;
  bytes_transferred_ += bytes;
}

int Swarm::pick_source(int peer, std::uint32_t chunk) {
  int best = -1;  // seed is always a holder
  int best_load = seed_nic_->active_uploads;
  for (std::size_t i = 0; i < peer_nics_.size(); ++i) {
    if (static_cast<int>(i) == peer || !have_[i][chunk]) continue;
    const int load = peer_nics_[i]->active_uploads;
    if (best == -1 || load < best_load ||
        (load == best_load && rng_.chance(0.5))) {
      best = static_cast<int>(i);
      best_load = load;
    }
  }
  // Prefer a peer over the seed at equal load: offload the origin.
  return best;
}

void Swarm::mark_have(int peer, std::uint32_t chunk) {
  auto& h = have_[static_cast<std::size_t>(peer)];
  if (h[chunk]) return;
  h[chunk] = true;
  ++have_count_[static_cast<std::size_t>(peer)];
  ++availability_[chunk];
}

sim::Task<void> Swarm::fetch_chunk(int peer, std::uint32_t chunk) {
  assert(chunk < num_chunks_);
  if (peer_has(peer, chunk)) co_return;
  const auto key = std::make_pair(peer, chunk);
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    auto ev = it->second;
    co_await ev->wait();
    co_return;
  }
  auto ev = std::make_shared<sim::Event>(env_);
  inflight_.emplace(key, ev);

  const int src = pick_source(peer, chunk);
  const std::uint64_t bytes =
      std::min<std::uint64_t>(p_.chunk_size,
                              image_size_ - std::uint64_t{chunk} *
                                                p_.chunk_size) +
      p_.per_chunk_overhead;
  co_await transfer_via(nic_of(src), nic_of(peer), bytes);

  mark_have(peer, chunk);
  inflight_.erase(key);
  ev->trigger();
}

sim::Task<void> Swarm::download_all(int peer) {
  sim::Semaphore slots{env_, static_cast<std::size_t>(p_.parallel_fetches)};
  struct State {
    explicit State(sim::SimEnv& env) : all_done(env) {}
    std::uint32_t outstanding = 0;
    bool queued_all = false;
    sim::Event all_done;
  };
  auto st = std::make_shared<State>(env_);

  auto one = [this, peer](std::uint32_t chunk, sim::Semaphore* sem,
                          std::shared_ptr<State> s) -> sim::Task<void> {
    co_await fetch_chunk(peer, chunk);
    sem->release();
    if (--s->outstanding == 0 && s->queued_all) s->all_done.trigger();
  };

  // Rarest-first: repeatedly take the needed chunk with the lowest peer
  // availability (ties broken randomly), limited by the fetch slots.
  std::vector<std::uint32_t> needed;
  needed.reserve(num_chunks_);
  for (std::uint32_t c = 0; c < num_chunks_; ++c) {
    if (!peer_has(peer, c)) needed.push_back(c);
  }
  while (!needed.empty()) {
    co_await slots.acquire();
    // Re-evaluate rarity at claim time (availability changes constantly).
    std::size_t best = 0;
    std::uint32_t best_avail = ~0u;
    for (std::size_t i = 0; i < needed.size(); ++i) {
      const std::uint32_t a = availability_[needed[i]];
      if (a < best_avail || (a == best_avail && rng_.chance(0.3))) {
        best_avail = a;
        best = i;
      }
    }
    const std::uint32_t chunk = needed[best];
    needed[best] = needed.back();
    needed.pop_back();
    ++st->outstanding;
    env_.spawn(one(chunk, &slots, st));
  }
  st->queued_all = true;
  if (st->outstanding > 0) co_await st->all_done.wait();
}

sim::Task<void> Swarm::run_pipeline() {
  // Hop i receives chunk c from hop i-1 (or the seed) once available,
  // stores it, and signals its own progress so hop i+1 can pull it.
  struct Join {
    explicit Join(sim::SimEnv& env, std::size_t n) : done(env), left(n) {}
    sim::Event done;
    std::size_t left;
  };
  auto join = std::make_shared<Join>(env_, peer_nics_.size());

  auto hop = [this](int peer, std::shared_ptr<Join> j) -> sim::Task<void> {
    for (std::uint32_t c = 0; c < num_chunks_; ++c) {
      if (peer > 0) {
        co_await progress_[static_cast<std::size_t>(peer - 1)]->wait_for(
            std::uint64_t{c} + 1);
      }
      const int src = peer == 0 ? -1 : peer - 1;
      const std::uint64_t bytes =
          std::min<std::uint64_t>(p_.chunk_size,
                                  image_size_ - std::uint64_t{c} *
                                                    p_.chunk_size) +
          p_.per_chunk_overhead;
      co_await transfer_via(nic_of(src), nic_of(peer), bytes);
      mark_have(peer, c);
      progress_[static_cast<std::size_t>(peer)]->advance_to(
          std::uint64_t{c} + 1);
    }
    if (--j->left == 0) j->done.trigger();
  };

  for (std::size_t i = 0; i < peer_nics_.size(); ++i) {
    env_.spawn(hop(static_cast<int>(i), join));
  }
  co_await join->done.wait();
}

}  // namespace vmic::p2p
