#pragma once

#include <algorithm>

#include "io/backend.hpp"
#include "p2p/swarm.hpp"

namespace vmic::p2p {

/// VMTorrent-style on-demand P2P streaming (Reich et al. [24], the
/// paper's closest related work): the VM boots immediately against this
/// backend; a read that touches a chunk the peer does not yet hold
/// triggers a priority fetch from the swarm, while (optionally) a
/// background task streams the remaining chunks in order. Demand fetches
/// and the stream coalesce through the swarm's in-flight table.
///
/// Plugs in as the *base image* of a normal CoW (or cache) chain, so the
/// paper's mechanisms and this baseline compose exactly as §7.1.1
/// describes.
class P2pStreamBackend final : public io::BlockBackend {
 public:
  /// `content` is the seed-side byte source (the real image data);
  /// `peer` identifies this node in the swarm.
  P2pStreamBackend(Swarm& swarm, int peer, const SparseBuffer& content)
      : swarm_(swarm), peer_(peer), content_(content) {
    ro_ = true;
  }

  /// Launch the background sequential streamer (fills every chunk). The
  /// streamer only references the swarm (not this backend), so it safely
  /// outlives a VM that shuts down mid-stream.
  void start_background_stream() {
    swarm_.env().spawn(stream_all(swarm_, peer_));
  }

  sim::Task<Result<void>> pread(std::uint64_t off,
                                std::span<std::uint8_t> dst) override {
    if (off + dst.size() > swarm_.image_size()) co_return Errc::out_of_range;
    const std::uint64_t cs = swarm_.params().chunk_size;
    const std::uint32_t first = static_cast<std::uint32_t>(off / cs);
    const std::uint32_t last =
        static_cast<std::uint32_t>((off + dst.size() - 1) / cs);
    for (std::uint32_t c = first; c <= last; ++c) {
      if (!swarm_.peer_has(peer_, c)) {
        ++demand_fetches_;
        swarm_.begin_demand(peer_);
        co_await swarm_.fetch_chunk(peer_, c);
        swarm_.end_demand(peer_);
      }
    }
    content_.read(off, dst);
    co_return ok_result();
  }

  sim::Task<Result<void>> pwrite(std::uint64_t,
                                 std::span<const std::uint8_t>) override {
    co_return Errc::read_only;
  }
  sim::Task<Result<void>> flush() override { co_return ok_result(); }
  sim::Task<Result<void>> truncate(std::uint64_t) override {
    co_return Errc::read_only;
  }
  [[nodiscard]] std::uint64_t size() const override {
    return swarm_.image_size();
  }
  [[nodiscard]] std::string describe() const override {
    return "p2p-stream:peer" + std::to_string(peer_);
  }

  /// Reads that had to wait for a swarm fetch (vs. already-present data).
  [[nodiscard]] std::uint64_t demand_fetches() const noexcept {
    return demand_fetches_;
  }

 private:
  static sim::Task<void> stream_all(Swarm& swarm, int peer) {
    // Each peer streams from a different starting offset (spreads chunk
    // availability across the swarm, so peers serve each other and the
    // seed decongests), and yields to boot-critical demand fetches —
    // VMTorrent's profile-driven prioritisation, simplified.
    const std::uint32_t n = swarm.num_chunks();
    const std::uint32_t start = static_cast<std::uint32_t>(
        (std::uint64_t{static_cast<std::uint32_t>(peer)} * n) /
        static_cast<std::uint32_t>(std::max(1, swarm.num_peers())));
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint32_t c = (start + k) % n;
      co_await swarm.wait_demand_idle(peer);
      co_await swarm.fetch_chunk(peer, c);
    }
  }

  Swarm& swarm_;
  int peer_;
  const SparseBuffer& content_;
  std::uint64_t demand_fetches_ = 0;
};

}  // namespace vmic::p2p
