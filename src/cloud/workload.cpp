#include "cloud/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vmic::cloud {

ZipfPicker::ZipfPicker(int n, double s) {
  // An empty catalog has no valid pick: lower_bound over an empty CDF
  // used to fall through to index -1 and callers indexed vmis[-1].
  if (n <= 0) {
    throw std::invalid_argument("ZipfPicker: catalog size must be >= 1");
  }
  cdf_.reserve(static_cast<std::size_t>(n));
  double total = 0;
  for (int k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

int ZipfPicker::pick(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  // Rounding can leave u above the last CDF entry; clamp to the tail.
  if (it == cdf_.end()) {
    return cdf_.empty() ? 0 : static_cast<int>(cdf_.size()) - 1;
  }
  return static_cast<int>(it - cdf_.begin());
}

namespace {

/// Instantaneous arrival rate at time t, in requests per second.
double rate_at(const WorkloadConfig& cfg, double t) {
  const double base = 1.0 / cfg.mean_interarrival_s;
  switch (cfg.process) {
    case ArrivalProcess::poisson:
      return base;
    case ArrivalProcess::diurnal:
      // Amplitudes above 1 would drive the sinusoid negative at the
      // trough; a negative rate breaks the thinning acceptance test
      // (rng.chance rejects p < 0 semantics). Clamp at zero: the trough
      // simply goes quiet instead.
      return std::max(0.0, base * (1.0 + cfg.diurnal_amplitude *
                                             std::sin(2.0 * M_PI * t /
                                                      cfg.diurnal_period_s)));
    case ArrivalProcess::flash_crowd:
      return t >= cfg.flash_at_s &&
                     t < cfg.flash_at_s + cfg.flash_duration_s
                 ? base * cfg.flash_factor
                 : base;
  }
  return base;
}

/// Upper bound on rate_at over the whole horizon (the thinning envelope).
double peak_rate(const WorkloadConfig& cfg) {
  const double base = 1.0 / cfg.mean_interarrival_s;
  switch (cfg.process) {
    case ArrivalProcess::poisson: return base;
    case ArrivalProcess::diurnal: return base * (1.0 + cfg.diurnal_amplitude);
    case ArrivalProcess::flash_crowd: return base * cfg.flash_factor;
  }
  return base;
}

}  // namespace

Result<void> validate(const WorkloadConfig& cfg) {
  if (cfg.num_vmis < 1) return Errc::invalid_argument;
  if (!(cfg.mean_interarrival_s > 0)) return Errc::invalid_argument;
  if (cfg.zipf_exponent < 0) return Errc::invalid_argument;
  if (cfg.min_lifetime_s < 0 || cfg.mean_extra_lifetime_s < 0) {
    return Errc::invalid_argument;
  }
  if (cfg.process == ArrivalProcess::diurnal) {
    if (cfg.diurnal_amplitude < 0 || !(cfg.diurnal_period_s > 0)) {
      return Errc::invalid_argument;
    }
  }
  if (cfg.process == ArrivalProcess::flash_crowd) {
    if (cfg.flash_at_s < 0 || cfg.flash_duration_s < 0 ||
        cfg.flash_factor < 1.0) {
      return Errc::invalid_argument;
    }
  }
  return {};
}

std::vector<VmRequest> generate_workload(const WorkloadConfig& cfg,
                                         double horizon_s, Rng& rng) {
  std::vector<VmRequest> out;
  const ZipfPicker zipf(cfg.num_vmis, cfg.zipf_exponent);
  const double lambda_max = peak_rate(cfg);
  double t = 0;
  while (true) {
    t += rng.exponential(1.0 / lambda_max);
    if (t >= horizon_s) break;
    // Lewis-Shedler thinning: accept with probability rate(t)/lambda_max.
    if (!rng.chance(rate_at(cfg, t) / lambda_max)) continue;
    VmRequest r;
    r.arrival_s = t;
    r.vmi = zipf.pick(rng);
    r.lifetime_s =
        cfg.min_lifetime_s + rng.exponential(cfg.mean_extra_lifetime_s);
    out.push_back(r);
  }
  return out;
}

Result<std::vector<VmRequest>> parse_trace_csv(std::string_view csv) {
  std::vector<VmRequest> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t eol = csv.find('\n', pos);
    if (eol == std::string_view::npos) eol = csv.size();
    std::string_view line = csv.substr(pos, eol - pos);
    pos = eol + 1;
    // Trim trailing CR, skip blanks and comments.
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string_view::npos) continue;
    if (line[first] == '#') continue;
    const std::string row(line);
    double arrival = 0, lifetime = 0;
    int vmi = 0;
    char tail = 0;
    if (std::sscanf(row.c_str(), " %lf , %d , %lf %c", &arrival, &vmi,
                    &lifetime, &tail) != 3) {
      return Errc::invalid_argument;
    }
    if (arrival < 0 || vmi < 0 || lifetime < 0) {
      return Errc::invalid_argument;
    }
    out.push_back(VmRequest{arrival, vmi, lifetime});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const VmRequest& a, const VmRequest& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  return out;
}

std::string render_trace_csv(const std::vector<VmRequest>& reqs) {
  std::string out = "# arrival_s,vmi,lifetime_s\n";
  char buf[96];
  for (const auto& r : reqs) {
    std::snprintf(buf, sizeof buf, "%.6f,%d,%.6f\n", r.arrival_s, r.vmi,
                  r.lifetime_s);
    out += buf;
  }
  return out;
}

}  // namespace vmic::cloud
