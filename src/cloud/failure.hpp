#pragma once

// vmic::cloud failure injection: scheduled node crashes and transient
// storage outages. A crash kills the node's in-flight VMs and invalidates
// its compute-disk caches (the paper's caches are not crash-consistent —
// a half-warmed cache after power loss is garbage). A storage outage makes
// the NFS-reached storage node error out for a window, exercising the
// engine's retry-with-backoff path. The I/O wrappers follow the
// FaultyBackend pattern from tests/test_fault_injection.cpp, but gate on
// simulated wall-clock windows instead of operation budgets.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "io/backend.hpp"
#include "io/directory.hpp"
#include "sim/env.hpp"
#include "sim/task.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace vmic::cloud {

/// One scheduled node failure: at `at_s` the node drops every running VM
/// and loses its cache contents; after `down_s` seconds it rejoins empty.
struct NodeCrash {
  double at_s = 0;
  double down_s = 0;
  int node = 0;
};

/// One transient storage-layer outage: every NFS read/write/open against
/// the storage node fails with Errc::io_error inside the window.
struct StorageOutage {
  double at_s = 0;
  double duration_s = 0;
};

struct FailurePlan {
  std::vector<NodeCrash> crashes;
  std::vector<StorageOutage> outages;
};

/// Draw a failure plan up front (like the workload: pre-materialised so
/// the runtime draws nothing and stays deterministic). Crashes land in the
/// middle [10%, 80%] of the horizon so their recoveries are observable.
inline FailurePlan plan_failures(int node_crashes, int storage_outages,
                                 int nodes, double horizon_s, Rng& rng) {
  FailurePlan plan;
  for (int i = 0; i < node_crashes; ++i) {
    NodeCrash c;
    c.at_s = horizon_s * (0.1 + 0.7 * rng.uniform());
    c.down_s = 600.0 + rng.exponential(300.0);
    c.node = static_cast<int>(rng.below(static_cast<std::uint64_t>(nodes)));
    plan.crashes.push_back(c);
  }
  for (int i = 0; i < storage_outages; ++i) {
    StorageOutage o;
    o.at_s = horizon_s * (0.1 + 0.7 * rng.uniform());
    o.duration_s = 30.0 + 90.0 * rng.uniform();
    plan.outages.push_back(o);
  }
  return plan;
}

/// Answers "is the storage layer down right now?" against the simulated
/// clock. Shared by every wrapped backend/directory of a run.
class OutageGate {
 public:
  OutageGate(sim::SimEnv* env, std::vector<StorageOutage> outages)
      : env_(env), outages_(std::move(outages)) {}

  [[nodiscard]] bool down() const {
    const double now = sim::to_seconds(env_->now());
    for (const auto& o : outages_) {
      if (now >= o.at_s && now < o.at_s + o.duration_s) return true;
    }
    return false;
  }

 private:
  sim::SimEnv* env_;
  std::vector<StorageOutage> outages_;
};

/// BlockBackend wrapper that fails reads and writes while the gate is
/// down. Metadata ops (flush/truncate) fail too — the medium is gone.
class GatedBackend final : public io::BlockBackend {
 public:
  GatedBackend(io::BackendPtr inner, const OutageGate* gate)
      : inner_(std::move(inner)), gate_(gate) {}

  sim::Task<Result<void>> pread(std::uint64_t off,
                                std::span<std::uint8_t> dst) override {
    if (gate_->down()) co_return Errc::io_error;
    co_return co_await inner_->pread(off, dst);
  }
  sim::Task<Result<void>> pwrite(std::uint64_t off,
                                 std::span<const std::uint8_t> src) override {
    if (gate_->down()) co_return Errc::io_error;
    co_return co_await inner_->pwrite(off, src);
  }
  sim::Task<Result<void>> flush() override {
    if (gate_->down()) co_return Errc::io_error;
    co_return co_await inner_->flush();
  }
  sim::Task<Result<void>> truncate(std::uint64_t s) override {
    if (gate_->down()) co_return Errc::io_error;
    co_return co_await inner_->truncate(s);
  }
  [[nodiscard]] std::uint64_t size() const override { return inner_->size(); }
  [[nodiscard]] bool read_only() const noexcept override {
    return inner_->read_only();
  }
  void set_read_only(bool ro) noexcept override { inner_->set_read_only(ro); }
  [[nodiscard]] std::string describe() const override {
    return "gated:" + inner_->describe();
  }

 private:
  io::BackendPtr inner_;
  const OutageGate* gate_;
};

/// ImageDirectory wrapper: opens and creates fail outright while the gate
/// is down; otherwise every opened backend is gated, so an outage starting
/// mid-transfer also fails in-flight chains.
class FlakyDirectory final : public io::ImageDirectory {
 public:
  FlakyDirectory(io::ImageDirectory* inner, const OutageGate* gate)
      : inner_(inner), gate_(gate) {}

  Result<io::BackendPtr> open_file(const std::string& name,
                                   bool writable) override {
    if (gate_->down()) return Errc::io_error;
    VMIC_TRY(be, inner_->open_file(name, writable));
    return io::BackendPtr{
        std::make_unique<GatedBackend>(std::move(be), gate_)};
  }
  Result<io::BackendPtr> create_file(const std::string& name) override {
    if (gate_->down()) return Errc::io_error;
    VMIC_TRY(be, inner_->create_file(name));
    return io::BackendPtr{
        std::make_unique<GatedBackend>(std::move(be), gate_)};
  }
  [[nodiscard]] bool exists(const std::string& name) const override {
    return inner_->exists(name);
  }

 private:
  io::ImageDirectory* inner_;
  const OutageGate* gate_;
};

}  // namespace vmic::cloud
