#pragma once

// vmic::cloud workload generation: deterministic VM arrival streams over a
// Zipf-skewed VMI popularity mix. The paper evaluates one-shot boot storms;
// the long-running engine needs the workload shape of a real cloud instead
// (López García et al.: skewed image popularity, bursty request streams).
// Arrivals are materialised up front into a request list, so the draws
// never interleave with simulation scheduling — same seed, same workload,
// regardless of what the engine does with it.

#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"
#include "util/rng.hpp"

namespace vmic::cloud {

/// Shape of the arrival process.
enum class ArrivalProcess {
  poisson,      ///< homogeneous Poisson at the base rate
  diurnal,      ///< Poisson with a sinusoidal day/night rate modulation
  flash_crowd,  ///< Poisson plus one rate spike (a release-day stampede)
};

constexpr const char* to_string(ArrivalProcess p) noexcept {
  switch (p) {
    case ArrivalProcess::poisson: return "poisson";
    case ArrivalProcess::diurnal: return "diurnal";
    case ArrivalProcess::flash_crowd: return "flash_crowd";
  }
  return "?";
}

/// One VM request: when it arrives, which VMI it boots, how long it runs
/// after a successful deployment.
struct VmRequest {
  double arrival_s = 0;
  int vmi = 0;
  double lifetime_s = 0;
};

struct WorkloadConfig {
  ArrivalProcess process = ArrivalProcess::poisson;
  /// Base mean inter-arrival gap (45 s ~= 80 VMs/hour).
  double mean_interarrival_s = 45.0;
  /// Diurnal modulation: rate(t) = base * (1 + A * sin(2*pi*t/period)).
  /// The default period compresses a "day" into 4 h so short runs still
  /// see both the peak and the trough.
  double diurnal_period_s = 4 * 3600.0;
  double diurnal_amplitude = 0.6;  ///< A >= 0; troughs clamp at rate 0
                                   ///< when A > 1
  /// Flash crowd: the rate is multiplied by `flash_factor` inside
  /// [flash_at_s, flash_at_s + flash_duration_s).
  double flash_at_s = 1800.0;
  double flash_duration_s = 300.0;
  double flash_factor = 6.0;
  /// VMI popularity: Zipf over `num_vmis` images with this exponent
  /// (1.0 = classic Zipf; 0 = uniform).
  int num_vmis = 6;
  double zipf_exponent = 1.0;
  /// Service lifetime after boot: min + Exp(mean_extra).
  double min_lifetime_s = 60.0;
  double mean_extra_lifetime_s = 240.0;
};

/// Zipf-distributed index picker over [0, n): P(k) proportional to
/// 1/(k+1)^s, drawn by inverting a precomputed CDF. Throws
/// std::invalid_argument when n <= 0 — an empty catalog has nothing to
/// pick and silently returning -1 sent callers indexing vmis[-1].
class ZipfPicker {
 public:
  ZipfPicker(int n, double s);
  [[nodiscard]] int pick(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Reject configs the generator cannot honour: an empty catalog, a
/// non-positive mean inter-arrival gap, a negative Zipf exponent or
/// lifetime, a diurnal amplitude below 0 (amplitudes above 1 are legal —
/// the trough clamps to a quiet period), or a flash factor below 1
/// (which would invert the thinning envelope).
Result<void> validate(const WorkloadConfig& cfg);

/// Materialise the arrival stream over [0, horizon_s). Non-homogeneous
/// processes use Lewis-Shedler thinning against the peak rate, so every
/// draw comes from `rng` in a fixed order — deterministic per seed.
std::vector<VmRequest> generate_workload(const WorkloadConfig& cfg,
                                         double horizon_s, Rng& rng);

/// Parse a request trace from CSV text: one `arrival_s,vmi,lifetime_s`
/// line per request; blank lines and `#` comments ignored. Requests are
/// sorted by arrival time. Fails with Errc::invalid_argument on malformed
/// lines, negative times, or a negative VMI index.
Result<std::vector<VmRequest>> parse_trace_csv(std::string_view csv);

/// Render a request list back to the CSV format parse_trace_csv accepts.
std::string render_trace_csv(const std::vector<VmRequest>& reqs);

}  // namespace vmic::cloud
