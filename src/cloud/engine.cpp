#include "cloud/engine.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>

#include "boot/trace.hpp"
#include "boot/vm.hpp"
#include "cluster/node_index.hpp"
#include "cluster/placement.hpp"
#include "dedup/index.hpp"
#include "manifest/manifest.hpp"
#include "peer/registry.hpp"
#include "qcow2/chain.hpp"
#include "sim/sync.hpp"
#include "util/bytes.hpp"
#include "util/stats.hpp"

namespace vmic::cloud {

namespace {

std::string img_name(int vmi) { return "img-" + std::to_string(vmi); }

/// Versioned cache key: the engine's per-node bookkeeping (open-file
/// refcounts, zombies, the disk mirror, manifest generations) is keyed by
/// (VMI, catalog version) packed into one integer, because during an
/// image update a node legitimately holds cache files for *two* versions
/// of the same VMI at once — the old one draining under in-flight
/// deployments, the new one filling. Version 0 is the unversioned
/// catalog: its keys, names, and iteration order are bit-identical to the
/// pre-update engine, which is what keeps updates-off runs pinned.
using VKey = std::uint64_t;
constexpr VKey vkey(int vmi, std::uint32_t ver) {
  return (static_cast<std::uint64_t>(ver) << 32) |
         static_cast<std::uint32_t>(vmi);
}
constexpr int vk_vmi(VKey k) {
  return static_cast<int>(static_cast<std::uint32_t>(k));
}
constexpr std::uint32_t vk_ver(VKey k) {
  return static_cast<std::uint32_t>(k >> 32);
}
std::string img_name(VKey k) {
  return update::versioned_name(img_name(vk_vmi(k)), vk_ver(k));
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic compressible cluster content for the sibling model: a
/// seed-derived 32-byte pattern tiled across the cluster (LZSS-friendly,
/// like real filesystem metadata), plus one raw seed stamp so distinct
/// seeds can never produce byte-identical clusters.
void fill_cluster_pattern(std::span<std::uint8_t> out, std::uint64_t seed) {
  std::uint8_t tile[32];
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t w = splitmix64(seed + static_cast<std::uint64_t>(i));
    std::memcpy(tile + i * 8, &w, 8);
  }
  for (std::size_t off = 0; off < out.size(); off += sizeof(tile)) {
    const std::size_t n = std::min(sizeof(tile), out.size() - off);
    std::memcpy(out.data() + off, tile, n);
  }
  const std::uint64_t stamp = splitmix64(seed ^ 0xc0ffee);
  std::memcpy(out.data(), &stamp, std::min<std::size_t>(8, out.size()));
}

/// Inverse of img_name ("img-7" -> 7, "img-7@2" -> 7); the cache pool
/// reports victims by image name, the engine indexes its bookkeeping by
/// VMI id (std::stoi stops at the '@', so versioned names parse too).
int vmi_of(const std::string& img) { return std::stoi(img.substr(4)); }

/// Full inverse: "img-7@2" -> vkey(7, 2), "img-7" -> vkey(7, 0).
VKey vkey_of(const std::string& img) {
  return vkey(vmi_of(img), update::version_of(img));
}

LatencyStats summarize(const Samples& s) {
  LatencyStats l;
  l.count = s.count();
  l.mean = s.mean();
  l.p50 = s.percentile(50);
  l.p95 = s.percentile(95);
  l.p99 = s.percentile(99);
  l.max = s.percentile(100);
  return l;
}

/// The control plane. One instance per run_cloud() call; everything is
/// event-driven off the cluster's SimEnv, and the only coroutines left
/// suspended when env.run() returns are none — arrivals finish, VM tasks
/// drain, crash tasks expire — so the run leaks nothing.
class Engine {
 public:
  Engine(const CloudConfig& cfg, std::vector<VmRequest> reqs, int num_vmis)
      : cfg_(cfg),
        num_vmis_(num_vmis),
        reqs_(std::move(reqs)),
        cl_(cfg.cluster),
        gate_(&cl_.env, cfg.failures.outages) {
    // Base images on the storage node + one boot trace per VMI, exactly
    // like cluster::run_scenario sets them up.
    for (int v = 0; v < num_vmis_; ++v) {
      const std::string img = img_name(v);
      (void)cl_.storage.disk_dir.create_file(img);
      (*cl_.storage.disk_dir.buffer(img))->resize(cfg_.profile.image_size);
      traces_.push_back(boot::generate_boot_trace(
          cfg_.profile, static_cast<std::uint64_t>(v)));
    }
    // Sibling content model: write deterministic per-cluster content into
    // the base images host-side (no sim cost — base images exist before
    // the run starts). Sibling groups share `shared_fraction` of their
    // clusters; the rest is image-private, so dedup has real structure to
    // find rather than an all-zero freebie.
    if (cfg_.sibling_group_size > 0) {
      const std::uint64_t ccs = 1ull << cfg_.cache_cluster_bits;
      const std::uint64_t limit =
          cfg_.content_bytes == 0
              ? cfg_.profile.image_size
              : std::min(cfg_.content_bytes, cfg_.profile.image_size);
      std::vector<std::uint8_t> cluster(ccs);
      for (int v = 0; v < num_vmis_; ++v) {
        SparseBuffer* buf = *cl_.storage.disk_dir.buffer(img_name(v));
        const std::uint64_t group =
            static_cast<std::uint64_t>(v / cfg_.sibling_group_size);
        for (std::uint64_t off = 0; off < limit; off += ccs) {
          const std::uint64_t c = off / ccs;
          const bool shared =
              static_cast<double>(splitmix64(c ^ (group << 20)) % 1000) <
              cfg_.shared_fraction * 1000.0;
          const std::uint64_t seed =
              shared ? splitmix64((group << 42) ^ c ^ 0x5eedull)
                     : splitmix64((static_cast<std::uint64_t>(v) << 42) ^ c ^
                                  0x0ddull);
          cluster.assign(ccs, 0);
          fill_cluster_pattern(
              {cluster.data(),
               static_cast<std::size_t>(std::min(ccs, limit - off))},
              seed);
          buf->write(off, cluster);
        }
      }
    }
    // Interpose the outage gate on every node's view of the storage node:
    // re-mounting the nfs-* prefixes swaps the wrapped directory in for
    // every subsequent open/create on that node.
    for (auto& node : cl_.nodes) {
      flaky_.push_back(
          std::make_unique<FlakyDirectory>(&node->base_mount, &gate_));
      node->fs.mount("nfs-base", flaky_.back().get());
      flaky_.push_back(
          std::make_unique<FlakyDirectory>(&node->tmpfs_mount, &gate_));
      node->fs.mount("nfs-mem", flaky_.back().get());
    }
    sched_.resize(cl_.nodes.size());
    rt_.resize(cl_.nodes.size());
    for (std::size_t i = 0; i < sched_.size(); ++i) {
      sched_[i].id = static_cast<int>(i);
      sched_[i].running_vms = 0;
      sched_[i].vm_capacity = cfg_.vm_slots_per_node;
    }
    idx_.emplace(&sched_);
    auto& reg = cl_.obs->registry;
    c_arrivals_ = &reg.counter("cloud.arrivals");
    c_completed_ = &reg.counter("cloud.completed");
    c_aborted_ = &reg.counter("cloud.aborted");
    c_rejected_ = &reg.counter("cloud.rejected");
    c_retries_ = &reg.counter("cloud.retries");
    c_deploy_failures_ = &reg.counter("cloud.deploy_failures");
    c_crash_kills_ = &reg.counter("cloud.crash_kills");
    c_vm_crashes_ = &reg.counter("cloud.vm_crashes");
    c_warm_hits_ = &reg.counter("cloud.warm_hits");
    c_copyback_skips_ = &reg.counter("cloud.copyback_skips");
    c_node_crashes_ = &reg.counter("cloud.node_crashes");
    c_node_recoveries_ = &reg.counter("cloud.node_recoveries");
    c_cache_salvaged_ = &reg.counter("cloud.cache_salvaged");
    c_cache_invalidated_ = &reg.counter("cloud.cache_invalidated");
    const std::vector<double> bounds{0.5, 1,  2,  5,   10,  20,
                                     30,  60, 120, 300, 600};
    h_deploy_ = &reg.histogram("cloud.deploy_seconds", {}, bounds);
    h_queue_wait_ = &reg.histogram("cloud.queue_wait_seconds", {}, bounds);
    h_prepare_ = &reg.histogram("cloud.prepare_seconds", {}, bounds);
    h_boot_ = &reg.histogram("cloud.boot_seconds", {}, bounds);
    // Peer tier state and metrics exist only when the tier is on: a
    // peer-off run must produce the exact snapshot it produced before the
    // tier existed (the golden cloud.* pins).
    if (cfg_.peer_transfer) {
      fabric_.emplace(cl_.env, cl_.nodes.size(), cfg_.peer);
      fabric_->bind_obs(cl_.obs);
      c_peer_hits_ = &reg.counter("peer.seed_hits");
      c_peer_fallback_ = &reg.counter("peer.fallback_fills");
      c_peer_fb_miss_ = &reg.counter("peer.fallback", {{"reason", "miss"}});
      c_peer_fb_timeout_ =
          &reg.counter("peer.fallback", {{"reason", "timeout"}});
      c_peer_fb_crash_ = &reg.counter("peer.fallback", {{"reason", "crash"}});
      c_peer_fb_error_ = &reg.counter("peer.fallback", {{"reason", "error"}});
      c_peer_bytes_avoided_ = &reg.counter("peer.storage_bytes_avoided");
      c_peer_reg_ = &reg.counter("peer.registrations");
      c_peer_dereg_ = &reg.counter("peer.deregistrations");
      for (std::size_t i = 0; i < cl_.nodes.size(); ++i) {
        c_peer_node_bytes_.push_back(&reg.counter(
            "peer.bytes_served", {{"node", "compute" + std::to_string(i)}}));
      }
    }
    // Durable control plane: per-node manifest stores plus the restart /
    // drain / adoption instruments. Same golden-pin rule as the tiers —
    // a run that configures none of it must not create any of these.
    if (cfg_.manifest) {
      mgen_.resize(cl_.nodes.size());
      mmx_.resize(cl_.nodes.size());
      for (auto& node : cl_.nodes) {
        mstores_.push_back(
            std::make_unique<manifest::Store>(&node->disk_dir));
      }
      c_manifest_pub_ = &reg.counter("manifest.publishes");
    }
    if (cfg_.manifest || !cfg_.restart_at_s.empty() || cfg_.drain_node >= 0) {
      c_restarts_ = &reg.counter("cloud.restart.count");
      c_drains_ = &reg.counter("cloud.drain.count");
      c_adopt_ok_ = &reg.counter("cloud.adopt.ok");
      c_adopt_failed_ = &reg.counter("cloud.adopt.failed");
      c_adopt_stale_ = &reg.counter("cloud.adopt.stale");
      h_adopt_seconds_ = &reg.histogram("cloud.adopt.seconds", {},
                                        {0.01, 0.05, 0.1, 0.5, 1, 5, 30});
    }
    // Dedup tier: same golden-pin rule as the peer tier — a dedup-off run
    // must not even create the dedup.* instruments.
    if (cfg_.dedup) {
      didx_.resize(cl_.nodes.size());
      fp_memo_.resize(static_cast<std::size_t>(num_vmis_));
      c_dedup_local_ = &reg.counter("dedup.local_hits");
      c_dedup_zero_ = &reg.counter("dedup.zero_fills");
      c_dedup_peer_ = &reg.counter("dedup.peer_hits");
      c_dedup_fallback_ = &reg.counter("dedup.fallbacks");
      c_dedup_bytes_local_ =
          &reg.counter("dedup.bytes_served", {{"source", "local"}});
      c_dedup_bytes_zero_ =
          &reg.counter("dedup.bytes_served", {{"source", "zero"}});
      c_dedup_bytes_peer_ =
          &reg.counter("dedup.bytes_served", {{"source", "peer"}});
    }
    // Image-update churn: the publish schedule and its instruments exist
    // only when the workload is on (golden-pin rule). The schedule draws
    // from its own fork of the run seed, so --updates never perturbs the
    // arrival or failure streams. The fingerprint memo doubles as the
    // rebase diff oracle, so it is sized even when the dedup tier is off.
    catalog_ver_.assign(static_cast<std::size_t>(num_vmis_), 0);
    if (cfg_.updates.enabled) {
      if (fp_memo_.empty()) {
        fp_memo_.resize(static_cast<std::size_t>(num_vmis_));
      }
      Rng urng(cfg_.seed ^ 0x1ba5e'ca7a'f00dull);
      update_events_ = update::generate_schedule(cfg_.updates, num_vmis_,
                                                 cfg_.horizon_s, urng);
      c_upd_published_ = &reg.counter("update.published");
      c_upd_invalidated_ = &reg.counter("update.invalidated");
      c_upd_rebased_ = &reg.counter("update.rebased");
      c_upd_patched_ = &reg.counter("update.rebase.patched_clusters");
      c_upd_reused_ = &reg.counter("update.rebase.reused_clusters");
    }
  }

  CloudResult run() {
    for (const auto& c : cfg_.failures.crashes) {
      if (c.node >= 0 && c.node < static_cast<int>(cl_.nodes.size())) {
        cl_.env.spawn(crash_task(c));
      }
    }
    for (const double at_s : cfg_.restart_at_s) {
      cl_.env.spawn(restart_task(at_s));
    }
    if (cfg_.drain_node >= 0 &&
        cfg_.drain_node < static_cast<int>(cl_.nodes.size())) {
      cl_.env.spawn(drain_task());
    }
    if (!update_events_.empty()) cl_.env.spawn(update_task());
    cl_.env.spawn(arrivals());
    cl_.env.run();

    for (std::size_t i = 0; i < sched_.size(); ++i) {
      res_.leaked_slots += sched_[i].running_vms + rt_[i].inflight;
    }
    res_.sim_seconds = sim::to_seconds(cl_.env.now());
    res_.sim_events = cl_.env.events_processed();
    res_.cache_hit_ratio =
        res_.completed > 0
            ? static_cast<double>(res_.warm_hits) /
                  static_cast<double>(res_.completed)
            : 0.0;
    res_.goodput_vms_per_hour =
        res_.sim_seconds > 0
            ? static_cast<double>(res_.completed) / (res_.sim_seconds / 3600.0)
            : 0.0;
    for (const auto& node : cl_.nodes) {
      res_.cache_evictions += node->pool.evictions();
    }
    res_.storage_payload_bytes = cl_.storage.nfs.stats().total_payload();
    if (!cfg_.restart_at_s.empty()) {
      res_.post_restart_storage_bytes =
          res_.storage_payload_bytes - restart_storage_mark_;
    }
    if (res_.updates_published > 0) {
      res_.post_update_storage_bytes =
          res_.storage_payload_bytes - update_storage_mark_;
    }
    res_.deploy = summarize(deploy_);
    res_.queue_wait = summarize(qwait_);
    res_.prepare = summarize(prep_);
    res_.boot = summarize(boot_);

    auto& reg = cl_.obs->registry;
    reg.gauge("cloud.cache_hit_ratio").set(res_.cache_hit_ratio);
    reg.gauge("cloud.goodput_vms_per_hour").set(res_.goodput_vms_per_hour);
    reg.gauge("cloud.peak_queue_depth")
        .set(static_cast<double>(res_.peak_queue_depth));
    reg.gauge("cloud.leaked_slots")
        .set(static_cast<double>(res_.leaked_slots));
    if (cfg_.dedup) {
      std::uint64_t locs = 0;
      for (const auto& di : didx_) locs += di.locations();
      reg.gauge("dedup.index_locations").set(static_cast<double>(locs));
    }
    if (!cfg_.restart_at_s.empty()) {
      reg.gauge("cloud.restart.post_storage_bytes")
          .set(static_cast<double>(res_.post_restart_storage_bytes));
    }
    if (cfg_.updates.enabled) {
      reg.gauge("update.post_storage_bytes")
          .set(static_cast<double>(res_.post_update_storage_bytes));
    }
    res_.metrics = reg.snapshot();
    return std::move(res_);
  }

 private:
  /// One queued deployment request (a VmRequest plus retry state).
  struct Pending {
    int id = 0;
    int vmi = 0;
    double lifetime_s = 0;
    int attempts = 0;
    sim::SimTime enqueued = 0;        ///< last (re-)enqueue
    sim::SimTime first_enqueued = 0;  ///< original arrival
  };

  /// Per-node control-plane state the scheduler view doesn't carry.
  struct NodeRuntime {
    bool up = true;
    /// Bumped on every crash; a task that captured an older epoch knows
    /// its node died under it after any co_await.
    std::uint64_t epoch = 0;
    /// Tasks placed on this node that have not exited yet (slot audit).
    int inflight = 0;
    /// Open-file refcount per versioned cache file: a crash must not
    /// delete a file some coroutine still has open (SimDirectory::remove
    /// destroys the buffer under the open backend).
    std::map<VKey, int> cache_users;
    /// Versioned caches a crash (or an image update) invalidated but
    /// could not delete because they were in use; reclaimed when the last
    /// user drops them, or re-registered if a post-recovery placement
    /// warm-hits them first.
    std::set<VKey> zombies;
    /// Mirror of the cache files present on this node's disk, updated at
    /// every file mutation the engine observes (placement outcomes carry
    /// their evictions). refresh_warm and the crash sweep iterate this
    /// instead of probing the directory once per known VMI, so per-node
    /// bookkeeping costs O(cached files), not O(num_vmis).
    std::set<VKey> disk_caches;
  };

  // --- small helpers ---------------------------------------------------------

  sim::Mutex& prep_mutex(int ni, int vmi) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ni)) << 32) |
        static_cast<std::uint32_t>(vmi);
    auto& p = prep_mx_[key];
    if (!p) p = std::make_unique<sim::Mutex>(cl_.env);
    return *p;
  }
  sim::Mutex& push_mutex(int vmi) {
    auto& p = push_mx_[vmi];
    if (!p) p = std::make_unique<sim::Mutex>(cl_.env);
    return *p;
  }

  void track_peak() {
    res_.peak_queue_depth = std::max(res_.peak_queue_depth, queue_.size());
  }

  /// A node's slot occupancy changed: re-index it for placement queries.
  void slots_changed(int ni) { idx_->node_changed(ni); }

  void hold_file(int ni, VKey vk) {
    ++rt_[static_cast<std::size_t>(ni)].cache_users[vk];
  }

  /// Drop one user of a cache file; the last user out reclaims a zombie.
  void drop_file(int ni, VKey vk) {
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    auto it = rt.cache_users.find(vk);
    if (it != rt.cache_users.end()) {
      if (--it->second > 0) return;
      rt.cache_users.erase(it);
    }
    if (rt.zombies.count(vk) != 0) {
      rt.zombies.erase(vk);
      auto& dd = cl_.nodes[static_cast<std::size_t>(ni)]->disk_dir;
      const std::string cache = cluster::cache_file_for(img_name(vk));
      if (dd.exists(cache)) dd.remove(cache);
      rt.disk_caches.erase(vk);
    }
  }

  void release_cache(int ni, VKey vk, bool pinned) {
    if (pinned) {
      cl_.nodes[static_cast<std::size_t>(ni)]->pool.unpin(img_name(vk));
    }
    drop_file(ni, vk);
  }

  /// A warm hit on a file the pool does not account for: either a zombie
  /// on a recovered node, or a file whose admission was once rejected.
  /// Re-register it (the file is a valid cache; only the bookkeeping was
  /// lost) and enforce any eviction the admission decides, mirroring
  /// placement's apply_eviction. Victims are unpinned by construction,
  /// so their files are safe to delete.
  void readopt(int ni, VKey vk) {
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(ni)];
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    const std::string img = img_name(vk);
    const std::string cache = cluster::cache_file_for(img);
    rt.zombies.erase(vk);
    rt.disk_caches.insert(vk);
    auto size = node.disk_dir.file_size(cache);
    const auto ar =
        node.pool.admit(img, size.ok() ? *size : cfg_.cache_quota);
    for (const auto& victim : ar.evicted) {
      const std::string vf = cluster::cache_file_for(victim);
      if (node.disk_dir.exists(vf)) node.disk_dir.remove(vf);
      rt.disk_caches.erase(vkey_of(victim));
      peer_deregister(ni, victim);
      dedup_forget(ni, victim);
    }
  }

  /// After a failed placement: a partially-created cache file must not
  /// masquerade as a warm cache on the next attempt. Only removable once
  /// nobody holds it and the pool never admitted it.
  void scrub_failed_cache(int ni, VKey vk) {
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(ni)];
    const std::string img = img_name(vk);
    const std::string cache = cluster::cache_file_for(img);
    if (rt.cache_users.count(vk) != 0) return;
    if (!node.pool.contains(img) && node.disk_dir.exists(cache)) {
      rt.zombies.erase(vk);
      node.disk_dir.remove(cache);
      rt.disk_caches.erase(vk);
      peer_deregister(ni, img);
      dedup_forget(ni, img);
    }
  }

  /// Rebuild the scheduler's warm-cache view of a node (evictions happen
  /// inside placement, out of the scheduler's sight). The disk mirror is
  /// the source: only VMIs with an in-flight holder — whose cache file
  /// may be mid-creation, a state the mirror cannot yet know — are probed
  /// against the directory, so the rebuild costs O(cached + held files)
  /// instead of O(num_vmis) probes. Zombies don't count: the crash
  /// invalidated them.
  void refresh_warm(int ni) {
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    if (!rt.up) return;
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(ni)];
    std::set<std::string> warm;
    for (VKey v : rt.disk_caches) {
      if (rt.zombies.count(v) == 0) warm.insert(img_name(v));
    }
    for (const auto& [v, users] : rt.cache_users) {
      (void)users;
      if (rt.disk_caches.count(v) != 0 || rt.zombies.count(v) != 0) continue;
      const std::string img = img_name(v);
      if (node.disk_dir.exists(cluster::cache_file_for(img))) {
        warm.insert(img);
      }
    }
    auto& ws = sched_[static_cast<std::size_t>(ni)].warm_vmis;
    for (const auto& img : ws) {
      if (warm.count(img) == 0) idx_->warm_removed(ni, img);
    }
    for (const auto& img : warm) {
      if (ws.count(img) == 0) idx_->warm_added(ni, img);
    }
    ws = std::move(warm);
  }

  // --- peer cache tier -------------------------------------------------------

  using MapKind = qcow2::Qcow2Device::MapKind;

  /// Drop one (node, image) seed registration. Safe to call on the
  /// eviction/scrub paths unconditionally: a no-op when the tier is off
  /// or the node never registered.
  void peer_deregister(int ni, const std::string& img) {
    if (!cfg_.peer_transfer) return;
    if (seeds_.deregister(ni, img)) c_peer_dereg_->inc();
  }

  /// Crash: every cache the node held is suspect, so its whole seed
  /// footprint vanishes at once. Salvage re-registers the survivors.
  void peer_deregister_node(int ni) {
    if (!cfg_.peer_transfer) return;
    const std::size_t n = seeds_.deregister_node(ni);
    if (n > 0) c_peer_dereg_->inc(n);
  }

  /// Open a seed's cache file read-only with no backing chain: the peer
  /// path must serve only locally-allocated clusters and must never
  /// recurse into the seed's own NFS-mounted base image.
  sim::Task<Result<block::DevicePtr>> open_cache_standalone(
      cluster::ComputeNode& node, const std::string& cache) {
    auto backend = node.fs.open_file("disk/" + cache, /*writable=*/false);
    if (!backend.ok()) co_return backend.error();
    block::OpenOptions o;
    o.writable = false;
    o.no_backing = true;
    o.hub = cl_.obs;
    co_return co_await qcow2::open_any(std::move(*backend), o);
  }

  /// Hook a freshly-opened deployment chain into the peer and dedup
  /// tiers. The CoW overlay's backing device is this node's cache image:
  /// enable compression, register it as a peer seed / index its content,
  /// bootstrap from its on-disk allocation (a warm hit starts with
  /// clusters earlier deployments populated), and install the fetch hook
  /// + fill observer so future backing fetches try dedup and peers first
  /// and completed fills extend the advertised coverage and index.
  sim::Task<void> attach_tiers(int ni, VKey vk, block::BlockDevice* dev) {
    auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->backing());
    if (q == nullptr || !q->is_cache_image()) co_return;
    if (cfg_.cache_compress) q->set_cor_compress(true);
    if (!cfg_.peer_transfer && !cfg_.dedup && !cfg_.manifest) co_return;
    const std::string img = img_name(vk);
    bool want_cov = false;
    if (cfg_.peer_transfer) {
      if (seeds_.register_seed(ni, img)) c_peer_reg_->inc();
      const IntervalSet* cov = seeds_.coverage(ni, img);
      want_cov = cov != nullptr && cov->total() == 0;
    }
    const bool want_idx =
        cfg_.dedup && !didx_[static_cast<std::size_t>(ni)].has_image(img);
    if (want_cov || want_idx) {
      std::uint64_t off = 0;
      while (off < q->size()) {
        auto ms = co_await q->map_status(off, q->size() - off);
        if (!ms.ok() || ms->len == 0) break;
        if (ms->kind != MapKind::unallocated) {
          if (want_cov) seeds_.add_coverage(ni, img, off, off + ms->len);
          if (want_idx) index_fill(ni, vk, off, off + ms->len);
        }
        off += ms->len;
      }
    }
    q->set_cor_fill_observer(
        [this, ni, vk, img](std::uint64_t lo, std::uint64_t hi) {
          if (cfg_.peer_transfer) seeds_.add_coverage(ni, img, lo, hi);
          if (cfg_.dedup) index_fill(ni, vk, lo, hi);
          // The manifest's fill generation: "this cache gained content
          // since the last publish" is what a restarted reader needs to
          // distinguish from "untouched".
          if (cfg_.manifest) {
            ++mgen_[static_cast<std::size_t>(ni)][vk].fill;
          }
        });
    if (!cfg_.peer_transfer && !cfg_.dedup) co_return;
    q->set_backing_fetch_hook(
        [this, ni, vk](std::uint64_t vaddr, std::span<std::uint8_t> dst)
            -> sim::Task<Result<bool>> {
          if (cfg_.dedup) {
            auto served = co_await dedup_fetch(ni, vk, vaddr, dst);
            if (served.ok() && *served) co_return true;
          }
          if (cfg_.peer_transfer) {
            co_return co_await peer_fetch(ni, vk, vaddr, dst);
          }
          co_return false;
        });
  }

  // --- content-addressed dedup tier -------------------------------------

  [[nodiscard]] std::uint64_t cache_cluster_bytes() const {
    return 1ull << cfg_.cache_cluster_bits;
  }

  struct FpEntry {
    std::uint64_t fp = 0;
    bool zero = false;
  };

  /// Fingerprint of one cache cluster of a versioned image's base content
  /// (zero-padded to the full cluster). Host-side and memoized: manifests
  /// ship with the images in the modelled system, so computing them costs
  /// the simulation nothing. The memo key folds the catalog version into
  /// the high bits (cluster counts stay far below 2^40 at any profile).
  FpEntry fp_of(VKey vk, std::uint64_t cluster) {
    auto& memo = fp_memo_[static_cast<std::size_t>(vk_vmi(vk))];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(vk_ver(vk)) << 40) | cluster;
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    const std::uint64_t ccs = cache_cluster_bytes();
    std::vector<std::uint8_t> buf(ccs, 0);
    SparseBuffer* base = *cl_.storage.disk_dir.buffer(img_name(vk));
    const std::uint64_t off = cluster * ccs;
    if (off < base->size()) {
      base->read(off, {buf.data(),
                       static_cast<std::size_t>(
                           std::min<std::uint64_t>(ccs, base->size() - off))});
    }
    FpEntry e;
    e.fp = fnv1a(buf);
    e.zero = std::all_of(buf.begin(), buf.end(),
                         [](std::uint8_t b) { return b == 0; });
    memo.emplace(key, e);
    return e;
  }

  /// Authoritative verification of candidate bytes against the
  /// requester's base content at the version it deployed (host memcmp —
  /// models the collision-free strong hash a real deployment would use;
  /// the fnv1a fingerprint only nominates candidates).
  [[nodiscard]] bool verify_content(VKey vk, std::uint64_t pos,
                                    std::span<const std::uint8_t> bytes) {
    SparseBuffer* base = *cl_.storage.disk_dir.buffer(img_name(vk));
    std::vector<std::uint8_t> want(bytes.size(), 0);
    if (pos < base->size()) {
      base->read(pos, {want.data(),
                       static_cast<std::size_t>(std::min<std::uint64_t>(
                           bytes.size(), base->size() - pos))});
    }
    return std::memcmp(want.data(), bytes.data(), bytes.size()) == 0;
  }

  /// Guest range [lo, hi) of `vk`'s cache on node `ni` became servable:
  /// index every whole cache cluster it covers, and advertise the
  /// fingerprints to peers when the peer tier is on.
  void index_fill(int ni, VKey vk, std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t ccs = cache_cluster_bytes();
    const std::string img = img_name(vk);
    auto& di = didx_[static_cast<std::size_t>(ni)];
    const std::uint64_t first = lo / ccs;
    for (std::uint64_t c = first; c * ccs < hi; ++c) {
      const FpEntry e = fp_of(vk, c);
      if (e.zero) continue;  // zeros are served by detection, not lookup
      di.add(e.fp, img, c);
      if (cfg_.peer_transfer) seeds_.register_content(e.fp, ni, img, c);
    }
  }

  /// The node's cache of `img` is gone: forget its indexed content.
  void dedup_forget(int ni, const std::string& img) {
    if (!cfg_.dedup) return;
    didx_[static_cast<std::size_t>(ni)].remove_image(img);
    if (cfg_.peer_transfer) seeds_.deregister_content(ni, img);
  }

  /// Crash: the node's whole index is suspect, like its seed footprint.
  void dedup_forget_node(int ni) {
    if (!cfg_.dedup) return;
    didx_[static_cast<std::size_t>(ni)] = dedup::FingerprintIndex{};
    if (cfg_.peer_transfer) seeds_.deregister_content_node(ni);
  }

  /// Serve one backing fetch by content: per overlapped cluster, zero
  /// detection, then the local fingerprint index (a sibling image's
  /// cache on this node), then — with the peer tier on — a peer
  /// advertising the fingerprint. Clusters nothing advertises are topped
  /// up from the storage node's NFS export inside the call, so one cold
  /// private cluster does not forfeit the dedup win for the rest of the
  /// range. False (whole-range fallthrough to peer_fetch / the backing
  /// chain) only when nothing resolves, or when a serving tier fails
  /// mid-flight (stale index, seed crash, NFS error).
  sim::Task<Result<bool>> dedup_fetch(int ni, VKey vk, std::uint64_t vaddr,
                                      std::span<std::uint8_t> dst) {
    const std::uint64_t ccs = cache_cluster_bytes();
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(ni)];
    auto& di = didx_[static_cast<std::size_t>(ni)];
    const std::string self = img_name(vk);

    struct Chunk {
      std::uint64_t dst_off = 0;  ///< offset into dst
      std::uint64_t src_pos = 0;  ///< byte position in the source cache
      std::uint64_t len = 0;
    };
    std::uint64_t zero_bytes = 0;
    std::uint64_t zero_hits = 0;
    std::map<std::string, std::vector<Chunk>> local;  // source image -> chunks
    std::map<std::pair<int, std::string>, std::vector<Chunk>> remote;
    std::vector<Chunk> nfs;  // src_pos is the base-image byte position

    // A serving tier failed (or nothing resolved): bump the per-cluster
    // fallback count for the whole range and let the caller fall through.
    const std::uint64_t end = vaddr + dst.size();
    const std::uint64_t range_clusters = (end - 1) / ccs - vaddr / ccs + 1;
    auto fallthrough = [&]() {
      res_.dedup_fallbacks += range_clusters;
      c_dedup_fallback_->inc(range_clusters);
      return false;
    };

    // Resolve phase: no suspension, so the index cannot shift under it.
    std::set<int> up_nodes;
    if (cfg_.peer_transfer && fabric_) {
      for (std::size_t i = 0; i < rt_.size(); ++i) {
        if (rt_[i].up) up_nodes.insert(static_cast<int>(i));
      }
    }
    for (std::uint64_t pos = vaddr; pos < end;) {
      const std::uint64_t c = pos / ccs;
      const std::uint64_t take = std::min(end, (c + 1) * ccs) - pos;
      const std::uint64_t in_cl = pos - c * ccs;
      const FpEntry e = fp_of(vk, c);
      if (e.zero) {
        std::memset(dst.data() + (pos - vaddr), 0,
                    static_cast<std::size_t>(take));
        zero_bytes += take;
        ++zero_hits;
      } else if (const auto* loc = di.find(e.fp); loc != nullptr) {
        local[loc->image].push_back(
            Chunk{pos - vaddr, loc->cluster * ccs + in_cl, take});
      } else if (!up_nodes.empty()) {
        const auto hit = seeds_.find_content(e.fp, up_nodes, ni,
                                             cfg_.peer.max_uploads_per_seed);
        if (hit) {
          remote[{hit->node, hit->img}].push_back(
              Chunk{pos - vaddr, hit->cluster * ccs + in_cl, take});
        } else {
          nfs.push_back(Chunk{pos - vaddr, pos, take});
        }
      } else {
        nfs.push_back(Chunk{pos - vaddr, pos, take});
      }
      pos += take;
    }
    if (local.empty() && remote.empty() && zero_hits == 0) {
      // Nothing dedup can add — let the ordinary fallback chain handle
      // the whole range in one read.
      co_return fallthrough();
    }

    // Serve phase. Zero chunks are already memset. Local groups read the
    // sibling cache through a standalone read-only device — charging this
    // node's own disk, which is the point: a local copy beats an NFS
    // round-trip. The verify guards against index staleness (an evicted-
    // then-recreated file) the same way the peer path re-verifies.
    std::uint64_t local_bytes = 0;
    std::uint64_t local_hits = 0;
    for (const auto& [src_img, chunks] : local) {
      const VKey sv = vkey_of(src_img);
      if (!node.pool.contains(src_img)) {
        co_return fallthrough();
      }
      node.pool.pin(src_img);
      hold_file(ni, sv);
      bool good = false;
      auto dv =
          co_await open_cache_standalone(node, cluster::cache_file_for(src_img));
      if (dv.ok()) {
        auto* q = dynamic_cast<qcow2::Qcow2Device*>(dv->get());
        if (q != nullptr) {
          good = true;
          for (const Chunk& ch : chunks) {
            auto sub = dst.subspan(static_cast<std::size_t>(ch.dst_off),
                                   static_cast<std::size_t>(ch.len));
            auto rr = co_await q->read(ch.src_pos, sub);
            if (!rr.ok() || !verify_content(vk, vaddr + ch.dst_off, sub)) {
              good = false;
              break;
            }
            local_bytes += ch.len;
            ++local_hits;
          }
        }
        (void)co_await (*dv)->close();
      }
      drop_file(ni, sv);
      node.pool.unpin(src_img);
      if (!good) {
        co_return fallthrough();
      }
    }

    // Remote groups: fingerprint-keyed peer fetch — same pin/hold/epoch
    // discipline as peer_fetch, but addressed by content, so the serving
    // image need not be the requested one.
    std::uint64_t peer_bytes = 0;
    std::uint64_t peer_hits = 0;
    for (const auto& [key, chunks] : remote) {
      const auto& [sn, src_img] = key;
      NodeRuntime& srt = rt_[static_cast<std::size_t>(sn)];
      ComputeNode& snode = *cl_.nodes[static_cast<std::size_t>(sn)];
      if (!srt.up || !snode.pool.contains(src_img)) {
        co_return fallthrough();
      }
      const std::uint64_t seed_epoch = srt.epoch;
      const VKey sv = vkey_of(src_img);
      snode.pool.pin(src_img);
      hold_file(sn, sv);
      seeds_.begin_upload(sn);
      bool good = false;
      std::uint64_t moved = 0;
      auto dv = co_await open_cache_standalone(
          snode, cluster::cache_file_for(src_img));
      if (dv.ok()) {
        auto* q = dynamic_cast<qcow2::Qcow2Device*>(dv->get());
        if (q != nullptr && srt.epoch == seed_epoch) {
          good = true;
          for (const Chunk& ch : chunks) {
            auto sub = dst.subspan(static_cast<std::size_t>(ch.dst_off),
                                   static_cast<std::size_t>(ch.len));
            auto rr = co_await q->read(ch.src_pos, sub);
            if (!rr.ok() || srt.epoch != seed_epoch ||
                !verify_content(vk, vaddr + ch.dst_off, sub)) {
              good = false;
              break;
            }
            moved += ch.len;
          }
          if (good) {
            const bool done = co_await fabric_->transfer(
                sn, ni, moved + cfg_.peer.per_fetch_overhead);
            good = done && srt.epoch == seed_epoch;
            if (!done) ++res_.peer_timeouts;
          }
        }
        (void)co_await (*dv)->close();
      }
      seeds_.end_upload(sn);
      drop_file(sn, sv);
      snode.pool.unpin(src_img);
      if (!good) {
        co_return fallthrough();
      }
      peer_bytes += moved;
      peer_hits += chunks.size();
      seeds_.add_bytes_served(sn, moved);
      c_peer_node_bytes_[static_cast<std::size_t>(sn)]->inc(moved);
      c_peer_bytes_avoided_->inc(moved);
    }

    // NFS top-up: clusters no tier advertises still come from the storage
    // node, but only those clusters — the rest of the range keeps its
    // dedup win. Adjacent chunks coalesce into one pread (dst_off tracks
    // src_pos exactly, so source contiguity implies destination
    // contiguity). These clusters count as fallbacks: they are the bytes
    // dedup could not keep off the storage node.
    if (!nfs.empty()) {
      auto bf = node.fs.open_file("nfs-base/" + self, /*writable=*/false);
      if (!bf.ok()) {
        co_return fallthrough();
      }
      bool good = true;
      for (std::size_t i = 0; i < nfs.size() && good;) {
        std::size_t j = i + 1;
        std::uint64_t len = nfs[i].len;
        while (j < nfs.size() &&
               nfs[j].src_pos == nfs[j - 1].src_pos + nfs[j - 1].len) {
          len += nfs[j].len;
          ++j;
        }
        auto rr = co_await (*bf)->pread(
            nfs[i].src_pos,
            dst.subspan(static_cast<std::size_t>(nfs[i].dst_off),
                        static_cast<std::size_t>(len)));
        good = rr.ok();
        i = j;
      }
      if (!good) {
        co_return fallthrough();
      }
      res_.dedup_fallbacks += nfs.size();
      c_dedup_fallback_->inc(nfs.size());
    }

    // Whole range served — commit the accounting.
    res_.dedup_local_hits += local_hits;
    res_.dedup_peer_hits += peer_hits;
    res_.dedup_zero_fills += zero_hits;
    res_.dedup_bytes_served += zero_bytes + local_bytes + peer_bytes;
    if (local_hits > 0) c_dedup_local_->inc(local_hits);
    if (peer_hits > 0) c_dedup_peer_->inc(peer_hits);
    if (zero_hits > 0) {
      c_dedup_zero_->inc(zero_hits);
      c_dedup_bytes_zero_->inc(zero_bytes);
    }
    if (local_bytes > 0) c_dedup_bytes_local_->inc(local_bytes);
    if (peer_bytes > 0) c_dedup_bytes_peer_->inc(peer_bytes);
    co_return true;
  }

  /// Account one fetch that fell back to the storage node's NFS mount.
  void peer_fallback(obs::Counter* reason) {
    ++res_.peer_fallback_fills;
    c_peer_fallback_->inc();
    reason->inc();
  }

  /// Serve one backing fetch from the least-loaded covering seed; true =
  /// `dst` filled peer-to-peer, false = fall back to NFS (coverage miss,
  /// every seed loaded, transfer timeout, or the seed crashing
  /// mid-transfer). Lock order: the requester holds only its own device's
  /// CoR in-flight range; the seed side is a fresh read-only standalone
  /// device (own lock hierarchy, never takes an alloc lock), so the two
  /// nodes' orders cannot interleave with lock_alloc()/RangeLock.
  sim::Task<Result<bool>> peer_fetch(int ni, VKey vk, std::uint64_t vaddr,
                                     std::span<std::uint8_t> dst) {
    const std::string img = img_name(vk);
    const std::set<int>* holders = idx_->warm_holders(img);
    if (holders == nullptr) {
      peer_fallback(c_peer_fb_miss_);
      co_return false;
    }
    const int seed =
        seeds_.pick_seed(*holders, img, vaddr, vaddr + dst.size(), ni,
                         cfg_.peer.max_uploads_per_seed);
    if (seed < 0 || !rt_[static_cast<std::size_t>(seed)].up) {
      peer_fallback(c_peer_fb_miss_);
      co_return false;
    }
    NodeRuntime& srt = rt_[static_cast<std::size_t>(seed)];
    const std::uint64_t seed_epoch = srt.epoch;
    ComputeNode& snode = *cl_.nodes[static_cast<std::size_t>(seed)];
    // Pin: eviction must not yank the file mid-upload. Hold: a crash must
    // not delete it under the open backend (the zombie machinery). No
    // suspension between pick_seed and these, so the pin cannot race the
    // eviction it guards against.
    snode.pool.pin(img);
    hold_file(seed, vk);
    seeds_.begin_upload(seed);
    bool served = false;
    obs::Counter* fb = c_peer_fb_error_;
    auto dv =
        co_await open_cache_standalone(snode, cluster::cache_file_for(img));
    if (dv.ok()) {
      auto* q = dynamic_cast<qcow2::Qcow2Device*>(dv->get());
      if (q != nullptr && srt.epoch == seed_epoch) {
        // Re-verify allocation against the file itself: registry coverage
        // is advisory and may lag a repair. An unallocated cluster on a
        // no_backing device would read as zeros — never serve those.
        bool allocated = true;
        std::uint64_t off = vaddr;
        const std::uint64_t end = vaddr + dst.size();
        while (off < end) {
          auto ms = co_await q->map_status(off, end - off);
          if (!ms.ok() || ms->len == 0 || ms->kind == MapKind::unallocated) {
            allocated = false;
            break;
          }
          off += ms->len;
        }
        if (!allocated) fb = c_peer_fb_miss_;
        if (allocated && srt.epoch == seed_epoch) {
          auto rr = co_await q->read(vaddr, dst);  // charges the seed's disk
          if (rr.ok() && srt.epoch == seed_epoch) {
            const bool done = co_await fabric_->transfer(
                seed, ni, dst.size() + cfg_.peer.per_fetch_overhead);
            if (done && srt.epoch == seed_epoch) {
              served = true;
            } else if (!done) {
              fb = c_peer_fb_timeout_;
              ++res_.peer_timeouts;
            }
          }
        }
      }
      // Close before drop_file: reclaiming a zombie removes the file, and
      // SimDirectory::remove under an open backend is forbidden.
      (void)co_await (*dv)->close();
    }
    if (!served && srt.epoch != seed_epoch) fb = c_peer_fb_crash_;
    seeds_.end_upload(seed);
    drop_file(seed, vk);
    snode.pool.unpin(img);
    if (served) {
      ++res_.peer_seed_hits;
      c_peer_hits_->inc();
      res_.peer_bytes_served += dst.size();
      seeds_.add_bytes_served(seed, dst.size());
      c_peer_node_bytes_[static_cast<std::size_t>(seed)]->inc(dst.size());
      c_peer_bytes_avoided_->inc(dst.size());
      co_return true;
    }
    peer_fallback(fb);
    co_return false;
  }

  // --- queueing --------------------------------------------------------------

  /// Grant queued requests to nodes while capacity lasts. Plain function,
  /// not a coroutine: called after every state change (arrival, VM exit,
  /// requeue, node recovery), so no dispatcher task ever idles suspended.
  /// FIFO with head-of-line blocking — if the head can't be placed,
  /// nothing behind it jumps the queue (deterministic and fair).
  void dispatch() {
    while (!queue_.empty()) {
      // Placement scores warmth against the *current* catalog version of
      // the request's image; caches of superseded versions never match.
      const int front_vmi = queue_.front().vmi;
      const int ni = idx_->pick(
          cfg_.policy,
          img_name(vkey(front_vmi,
                        catalog_ver_[static_cast<std::size_t>(front_vmi)])),
          cfg_.cache_aware);
      if (ni < 0) return;
      Pending r = queue_.front();
      queue_.pop_front();
      ++sched_[static_cast<std::size_t>(ni)].running_vms;
      slots_changed(ni);
      ++rt_[static_cast<std::size_t>(ni)].inflight;
      const double wait_s = sim::to_seconds(cl_.env.now() - r.enqueued);
      qwait_.add(wait_s);
      h_queue_wait_->observe(wait_s);
      cl_.env.spawn(vm_task(r, ni));
    }
  }

  /// Attempt failed: retry with exponential backoff, or abort for good.
  void fail_attempt(Pending r) {
    if (r.attempts >= cfg_.max_attempts) {
      ++res_.aborted;
      c_aborted_->inc();
      return;
    }
    ++res_.retries;
    c_retries_->inc();
    cl_.env.spawn(requeue_after(r));
  }

  sim::Task<void> requeue_after(Pending r) {
    const double backoff =
        cfg_.retry_backoff_s *
        static_cast<double>(1u << static_cast<unsigned>(r.attempts - 1));
    co_await cl_.env.delay(sim::from_seconds(backoff));
    // Retries always re-enter the queue: the depth bound applies to fresh
    // arrivals only, so an admitted request cannot be bounced later.
    r.enqueued = cl_.env.now();
    queue_.push_back(r);
    track_peak();
    dispatch();
  }

  // --- failure injection -----------------------------------------------------

  sim::Task<void> crash_task(NodeCrash c) {
    co_await cl_.env.delay(sim::from_seconds(c.at_s));
    NodeRuntime& rt = rt_[static_cast<std::size_t>(c.node)];
    if (!rt.up) co_return;  // overlapping crash on a down node: no-op
    ++res_.node_crashes;
    c_node_crashes_->inc();
    rt.up = false;
    ++rt.epoch;
    cluster::NodeState& ns = sched_[static_cast<std::size_t>(c.node)];
    ns.running_vms = 0;  // every running VM died with the node
    ns.vm_capacity = 0;  // no placements while down
    slots_changed(c.node);
    for (const auto& img : ns.warm_vmis) idx_->warm_removed(c.node, img);
    ns.warm_vmis.clear();
    peer_deregister_node(c.node);
    dedup_forget_node(c.node);
    // Cache invalidation: a crashed node's caches are not trustworthy.
    // In-use files become zombies either way (SimDirectory::remove under
    // an open backend is the one thing the engine must never do, and a
    // writer died mid-operation on them). Idle files are deleted outright
    // in legacy mode; with crash_salvage they stay on disk as suspects
    // for the recovery-time repair + check pass below. Only VMIs the
    // mirror or a holder knows about can have state here — everything
    // else has no pool entry and no file, so the sweep is O(tracked),
    // not O(num_vmis).
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(c.node)];
    std::vector<VKey> suspects;
    std::set<VKey> tracked = rt.disk_caches;
    for (const auto& [v, users] : rt.cache_users) {
      (void)users;
      tracked.insert(v);
    }
    for (VKey v : tracked) {
      const std::string img = img_name(v);
      const std::string cache = cluster::cache_file_for(img);
      node.pool.remove(img);
      if (!node.disk_dir.exists(cache)) {
        rt.disk_caches.erase(v);
        continue;
      }
      rt.disk_caches.insert(v);
      if (rt.cache_users.count(v) != 0) {
        rt.zombies.insert(v);
      } else if (cfg_.crash_salvage) {
        suspects.push_back(v);
      } else {
        node.disk_dir.remove(cache);
        rt.disk_caches.erase(v);
      }
    }
    co_await cl_.env.delay(sim::from_seconds(c.down_s));
    rt.up = true;
    ++rt.epoch;  // a task that slept across down+up still sees a change
    const std::uint64_t recovery_epoch = rt.epoch;
    // Salvage pass (capacity still 0, so no placements race it): open each
    // suspect writable — a dirty image auto-repairs — then check; clean
    // caches are re-adopted with their warm clusters intact, anything else
    // is deleted. The open/check reads charge the node's disk, so salvage
    // pays a verification cost instead of the full re-warm cost.
    for (VKey v : suspects) {
      const std::string cache = cluster::cache_file_for(img_name(v));
      if (!node.disk_dir.exists(cache) || rt.zombies.count(v) != 0) {
        continue;
      }
      // A cache of a superseded catalog version is stale no matter how
      // clean its qcow2 state is: delete instead of re-verifying.
      if (vk_ver(v) !=
          catalog_ver_[static_cast<std::size_t>(vk_vmi(v))]) {
        if (rt.cache_users.count(v) == 0) {
          node.disk_dir.remove(cache);
          rt.disk_caches.erase(v);
        } else {
          rt.zombies.insert(v);
        }
        ++res_.caches_invalidated;
        c_cache_invalidated_->inc();
        continue;
      }
      hold_file(c.node, v);
      bool good = false;
      // Allocation extents gathered while the device is open: a salvaged
      // cache re-registers as a peer seed with the coverage repair left
      // behind, not the (possibly stale) pre-crash advertisement.
      std::vector<std::pair<std::uint64_t, std::uint64_t>> salvage_cov;
      auto dv = co_await qcow2::open_image(node.fs, "disk/" + cache,
                                           /*writable=*/true,
                                           /*cache_backing_ro=*/false, cl_.obs);
      if (dv.ok()) {
        auto* q = dynamic_cast<qcow2::Qcow2Device*>(dv->get());
        if (q != nullptr) {
          auto chk = co_await q->check();
          good = chk.ok() && chk->clean();
          if (good && (cfg_.peer_transfer || cfg_.dedup)) {
            std::uint64_t off = 0;
            while (off < q->size()) {
              auto ms = co_await q->map_status(off, q->size() - off);
              if (!ms.ok() || ms->len == 0) break;
              if (ms->kind != MapKind::unallocated) {
                salvage_cov.emplace_back(off, off + ms->len);
              }
              off += ms->len;
            }
          }
        }
        (void)co_await (*dv)->close();
      }
      drop_file(c.node, v);
      if (rt.epoch != recovery_epoch) co_return;  // crashed again mid-pass
      // An update can land while the check was in flight; re-validate.
      if (good &&
          vk_ver(v) != catalog_ver_[static_cast<std::size_t>(vk_vmi(v))]) {
        good = false;
      }
      if (good) {
        readopt(c.node, v);
        if (cfg_.peer_transfer) {
          if (seeds_.register_seed(c.node, img_name(v))) c_peer_reg_->inc();
          for (const auto& [lo, hi] : salvage_cov) {
            seeds_.add_coverage(c.node, img_name(v), lo, hi);
          }
        }
        if (cfg_.dedup) {
          // Re-index the salvaged clusters: the crash dropped the node's
          // whole index, and these are the survivors repair vouched for.
          for (const auto& [lo, hi] : salvage_cov) {
            index_fill(c.node, v, lo, hi);
          }
        }
        if (cfg_.manifest) {
          ++mgen_[static_cast<std::size_t>(c.node)][v].check;
        }
        ++res_.caches_salvaged;
        c_cache_salvaged_->inc();
      } else {
        if (node.disk_dir.exists(cache)) node.disk_dir.remove(cache);
        rt.disk_caches.erase(v);
        ++res_.caches_invalidated;
        c_cache_invalidated_->inc();
      }
    }
    // The on-disk manifest went stale the instant the node lost power
    // (crashes get no SIGTERM window); bring it back in line with what
    // salvage actually vouched for before accepting load again.
    co_await publish_manifest(c.node);
    if (rt.epoch != recovery_epoch) co_return;
    ns.vm_capacity = cfg_.vm_slots_per_node;
    slots_changed(c.node);
    ++res_.node_recoveries;
    c_node_recoveries_->inc();
    refresh_warm(c.node);
    dispatch();
  }

  // --- durable control plane: manifest publish, restart, drain, adoption ----

  struct MGen {
    std::uint64_t fill = 0;
    std::uint64_t check = 0;
  };

  /// Publish node `ni`'s current verified cache table to its durable
  /// manifest: every non-zombie cache the pool accounts for, with the
  /// engine's fill/check generations and — when the tiers are on — the
  /// advertised seed coverage and dedup-indexed flag. Serialised per
  /// node: two interleaved publishes would stripe one slot file with a
  /// mix of generations, which is exactly the torn state the A/B scheme
  /// exists to survive, not to create. No-op when the manifest is off or
  /// the node is down.
  sim::Task<void> publish_manifest(int ni) {
    if (!cfg_.manifest) co_return;
    if (!mmx_[static_cast<std::size_t>(ni)]) {
      mmx_[static_cast<std::size_t>(ni)] =
          std::make_unique<sim::Mutex>(cl_.env);
    }
    auto lk = co_await mmx_[static_cast<std::size_t>(ni)]->lock();
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    if (!rt.up) co_return;
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(ni)];
    manifest::NodeManifest m;
    for (VKey v : rt.disk_caches) {
      if (rt.zombies.count(v) != 0) continue;
      const std::string img = img_name(v);
      if (!node.pool.contains(img)) continue;  // never verified/admitted
      manifest::CacheEntry e;
      e.image = img;  // versioned name: adoption validates it on restart
      e.cache_file = cluster::cache_file_for(img);
      auto sz = node.disk_dir.file_size(e.cache_file);
      e.bytes = sz.ok() ? *sz : cfg_.cache_quota;
      const MGen& g = mgen_[static_cast<std::size_t>(ni)][v];
      e.fill_generation = g.fill;
      e.check_generation = g.check;
      e.dedup_indexed =
          cfg_.dedup && didx_[static_cast<std::size_t>(ni)].has_image(img);
      if (cfg_.peer_transfer) {
        if (const IntervalSet* cov = seeds_.coverage(ni, img)) {
          for (const auto& [lo, hi] : *cov) e.coverage.emplace_back(lo, hi);
        }
      }
      m.entries.push_back(std::move(e));
    }
    auto r = co_await mstores_[static_cast<std::size_t>(ni)]->publish(
        std::move(m));
    if (r.ok()) {
      ++res_.manifest_publishes;
      c_manifest_pub_->inc();
    }
  }

  /// Planned power-off of one node (restart or drain): placements stop,
  /// anything running dies (tasks see the epoch change), the peer /
  /// dedup / pool bookkeeping forgets the node. With `keep_files`
  /// (manifest on — an orderly shutdown leaves consistent files) the
  /// cache files stay on disk for the adoption pass; otherwise they are
  /// scrubbed like a legacy crash: in-use files become zombies, idle
  /// files are deleted, and the node re-warms from zero.
  void power_down(int ni, bool keep_files) {
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    rt.up = false;
    ++rt.epoch;
    cluster::NodeState& ns = sched_[static_cast<std::size_t>(ni)];
    ns.running_vms = 0;
    ns.vm_capacity = 0;
    slots_changed(ni);
    for (const auto& img : ns.warm_vmis) idx_->warm_removed(ni, img);
    ns.warm_vmis.clear();
    peer_deregister_node(ni);
    dedup_forget_node(ni);
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(ni)];
    std::set<VKey> tracked = rt.disk_caches;
    for (const auto& [v, users] : rt.cache_users) {
      (void)users;
      tracked.insert(v);
    }
    for (VKey v : tracked) {
      const std::string img = img_name(v);
      const std::string cache = cluster::cache_file_for(img);
      node.pool.remove(img);
      if (!node.disk_dir.exists(cache)) {
        rt.disk_caches.erase(v);
        continue;
      }
      rt.disk_caches.insert(v);
      if (keep_files) continue;
      if (rt.cache_users.count(v) != 0) {
        rt.zombies.insert(v);
      } else {
        node.disk_dir.remove(cache);
        rt.disk_caches.erase(v);
      }
    }
  }

  /// Cold rejoin (manifest off): capacity back, whatever files survived
  /// (held ones a dying task has not dropped yet) stay unaccounted until
  /// a warm hit readopts them.
  void rejoin_cold(int ni) {
    sched_[static_cast<std::size_t>(ni)].vm_capacity = cfg_.vm_slots_per_node;
    slots_changed(ni);
    refresh_warm(ni);
  }

  /// The re-adoption pass: read the node's manifest and re-verify every
  /// listed cache through the salvage discipline — open writable (a
  /// dirty image auto-repairs), `check`, walk the post-repair allocation
  /// map — then re-register survivors with the pool, seed registry, and
  /// fingerprint index. The manifest is advisory throughout: a vanished
  /// file is stale, a failed check degrades to cold, and nothing is
  /// trusted that the qcow2 layer cannot vouch for. Capacity is restored
  /// only after the pass, so no placement races a half-adopted table.
  ///
  /// A node crash while this is in flight is legal: the crash sweep
  /// bumps the epoch and makes peer + dedup + pool forget the node
  /// (including entries adopted so far); every resumption point below
  /// re-checks the epoch and bails without touching anything further.
  sim::Task<void> adopt_node(int ni) {
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(ni)];
    const std::uint64_t adopt_epoch = rt.epoch;
    const sim::SimTime t0 = cl_.env.now();
    auto lm = co_await mstores_[static_cast<std::size_t>(ni)]->load();
    if (rt.epoch != adopt_epoch) co_return;  // crashed mid-load
    if (lm.ok() && lm->has_value()) {
      for (const manifest::CacheEntry& e : (*lm)->entries) {
        // Only engine-shaped records are adoptable; anything else is a
        // stale manifest from a different layout.
        int v = -1;
        if (e.image.size() > 4 && e.image.compare(0, 4, "img-") == 0) {
          v = vmi_of(e.image);
        }
        if (v < 0 || v >= num_vmis_ ||
            e.cache_file != cluster::cache_file_for(e.image) ||
            !node.disk_dir.exists(e.cache_file)) {
          ++res_.adopt_stale;
          c_adopt_stale_->inc();
          continue;
        }
        const VKey k = vkey_of(e.image);
        // A record against a superseded image version is dead weight: the
        // catalog moved on while the node was down, so the bytes are
        // wrong even if the qcow2 file is pristine. Delete the file (it
        // would otherwise linger unaccounted) and degrade to cold.
        if (vk_ver(k) != catalog_ver_[static_cast<std::size_t>(v)]) {
          if (rt.cache_users.count(k) == 0 && rt.zombies.count(k) == 0 &&
              node.disk_dir.exists(e.cache_file)) {
            node.disk_dir.remove(e.cache_file);
          }
          rt.disk_caches.erase(k);
          ++res_.adopt_stale;
          c_adopt_stale_->inc();
          continue;
        }
        if (rt.cache_users.count(k) != 0 || rt.zombies.count(k) != 0) {
          // Held by a task that outlived the shutdown (or a zombie from
          // an earlier crash): leave it; a later warm hit readopts it
          // through the existing pool path once the holder drops it.
          continue;
        }
        hold_file(ni, k);
        bool good = false;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> adopt_cov;
        auto dv = co_await qcow2::open_image(node.fs, "disk/" + e.cache_file,
                                             /*writable=*/true,
                                             /*cache_backing_ro=*/false,
                                             cl_.obs);
        if (dv.ok()) {
          auto* q = dynamic_cast<qcow2::Qcow2Device*>(dv->get());
          if (q != nullptr) {
            auto chk = co_await q->check();
            good = chk.ok() && chk->clean();
            if (good && (cfg_.peer_transfer || cfg_.dedup)) {
              std::uint64_t off = 0;
              while (off < q->size()) {
                auto ms = co_await q->map_status(off, q->size() - off);
                if (!ms.ok() || ms->len == 0) break;
                if (ms->kind != MapKind::unallocated) {
                  adopt_cov.emplace_back(off, off + ms->len);
                }
                off += ms->len;
              }
            }
          }
          (void)co_await (*dv)->close();
        }
        drop_file(ni, k);
        if (rt.epoch != adopt_epoch) co_return;  // crashed mid-verify
        // An update can land while the check was in flight; re-validate.
        if (good && vk_ver(k) != catalog_ver_[static_cast<std::size_t>(v)]) {
          good = false;
        }
        if (good) {
          readopt(ni, k);
          if (cfg_.peer_transfer) {
            if (seeds_.register_seed(ni, e.image)) c_peer_reg_->inc();
            for (const auto& [lo, hi] : adopt_cov) {
              seeds_.add_coverage(ni, e.image, lo, hi);
            }
          }
          if (cfg_.dedup) {
            for (const auto& [lo, hi] : adopt_cov) {
              index_fill(ni, k, lo, hi);
            }
          }
          MGen& g = mgen_[static_cast<std::size_t>(ni)][k];
          g.fill = e.fill_generation;
          g.check = e.check_generation + 1;
          ++res_.caches_readopted;
          c_adopt_ok_->inc();
        } else {
          if (node.disk_dir.exists(e.cache_file) &&
              rt.cache_users.count(k) == 0) {
            node.disk_dir.remove(e.cache_file);
          }
          rt.disk_caches.erase(k);
          ++res_.adopt_failures;
          c_adopt_failed_->inc();
        }
      }
    }
    // Publish the post-adoption truth (failed entries are gone) before
    // accepting load: a crash right after power-up must not re-read the
    // pre-restart table and re-verify caches adoption already rejected.
    co_await publish_manifest(ni);
    if (rt.epoch != adopt_epoch) co_return;
    sched_[static_cast<std::size_t>(ni)].vm_capacity = cfg_.vm_slots_per_node;
    slots_changed(ni);
    refresh_warm(ni);
    h_adopt_seconds_->observe(sim::to_seconds(cl_.env.now() - t0));
    dispatch();
  }

  /// Planned full-cloud restart (the rolling-upgrade model): publish
  /// every manifest inside the SIGTERM window, power every up node down
  /// together, wait out the downtime, then bring them back — through the
  /// adoption pass when manifests are on, cold when off. Nodes already
  /// down (mid-crash) are skipped; their own recovery task restores them.
  sim::Task<void> restart_task(double at_s) {
    co_await cl_.env.delay(sim::from_seconds(at_s));
    ++res_.restarts;
    c_restarts_->inc();
    std::vector<int> members;
    for (std::size_t i = 0; i < rt_.size(); ++i) {
      if (rt_[i].up) members.push_back(static_cast<int>(i));
    }
    if (cfg_.manifest) {
      for (const int ni : members) co_await publish_manifest(ni);
      // A node can crash during the publishes; it is no longer ours to
      // restart.
      std::erase_if(members, [this](int ni) {
        return !rt_[static_cast<std::size_t>(ni)].up;
      });
    }
    for (const int ni : members) power_down(ni, /*keep_files=*/cfg_.manifest);
    co_await cl_.env.delay(sim::from_seconds(cfg_.restart_down_s));
    // Everything the storage node serves from here on is traffic the
    // restart caused: the re-warm bill a durable manifest avoids.
    restart_storage_mark_ = cl_.storage.nfs.stats().total_payload();
    for (const int ni : members) {
      rt_[static_cast<std::size_t>(ni)].up = true;
      ++rt_[static_cast<std::size_t>(ni)].epoch;
    }
    if (cfg_.manifest) {
      for (const int ni : members) cl_.env.spawn(adopt_node(ni));
    } else {
      for (const int ni : members) rejoin_cold(ni);
      dispatch();
    }
  }

  /// Planned drain of one node: stop accepting placements, let the
  /// running VMs and in-flight deployments finish naturally, publish the
  /// manifest, power down, and rejoin through adoption. A crash mid-
  /// drain hands the node over to the crash machinery (epoch check).
  sim::Task<void> drain_task() {
    co_await cl_.env.delay(sim::from_seconds(cfg_.drain_at_s));
    const int ni = cfg_.drain_node;
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    if (!rt.up) co_return;  // crashed at drain time: nothing to drain
    ++res_.drains;
    c_drains_->inc();
    const std::uint64_t drain_epoch = rt.epoch;
    cluster::NodeState& ns = sched_[static_cast<std::size_t>(ni)];
    ns.vm_capacity = 0;
    slots_changed(ni);
    while (ns.running_vms > 0 || rt.inflight > 0) {
      co_await cl_.env.delay(sim::from_seconds(1.0));
      if (rt.epoch != drain_epoch) co_return;  // crashed mid-drain
    }
    co_await publish_manifest(ni);
    if (rt.epoch != drain_epoch) co_return;
    power_down(ni, /*keep_files=*/cfg_.manifest);
    co_await cl_.env.delay(sim::from_seconds(cfg_.drain_down_s));
    rt.up = true;
    ++rt.epoch;
    if (cfg_.manifest) {
      co_await adopt_node(ni);
    } else {
      rejoin_cold(ni);
      dispatch();
    }
  }

  // --- image-update churn ----------------------------------------------------

  /// Cap on one rebase carry-over read: big enough to amortise the CoR
  /// run overhead, small enough that other work interleaves.
  static constexpr std::uint64_t kRebaseRunBytes = 1ull << 20;

  /// Does the configured policy rebase warm caches on a version bump?
  /// `auto_` predicts from the knobs: patching pays when the changed
  /// fraction is at most the threshold; beyond it a cold refill moves
  /// fewer total bytes than diff + patch + carry-over.
  [[nodiscard]] bool rebase_policy() const {
    switch (cfg_.updates.policy) {
      case update::Policy::invalidate:
        return false;
      case update::Policy::rebase:
        return true;
      case update::Policy::auto_:
        return cfg_.updates.changed_frac <= cfg_.updates.rebase_threshold;
    }
    return false;
  }

  /// Drop every trace of a superseded cache version on one node: pool
  /// entry, peer seed, dedup index, manifest generations, and the file
  /// itself — deferred to the last holder (zombie) when a running VM
  /// still has it open, exactly like the crash sweep.
  void retire_old(int ni, VKey old_vk) {
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(ni)];
    const std::string img = img_name(old_vk);
    const std::string cache = cluster::cache_file_for(img);
    node.pool.remove(img);
    peer_deregister(ni, img);
    dedup_forget(ni, img);
    if (cfg_.manifest) mgen_[static_cast<std::size_t>(ni)].erase(old_vk);
    if (rt.cache_users.count(old_vk) != 0) {
      rt.zombies.insert(old_vk);  // last user out deletes the file
    } else {
      if (node.disk_dir.exists(cache)) node.disk_dir.remove(cache);
      rt.disk_caches.erase(old_vk);
    }
  }

  /// Host-side publication of one image version: clone the previous
  /// version's base content and overwrite the changed clusters with new
  /// deterministic patterns. Changes land in whole
  /// `update::kChangedRunClusters` runs (page-aligned at the default
  /// cache-cluster size), modelling package-update locality rather than
  /// uniformly sprayed single-cluster churn. Free in simulated time:
  /// base images live on the storage node before any compute node reads
  /// them, like the sibling content model.
  void publish_base(int vmi, std::uint32_t old_ver, std::uint32_t new_ver) {
    const std::string old_img = img_name(vkey(vmi, old_ver));
    const std::string new_img = img_name(vkey(vmi, new_ver));
    (void)cl_.storage.disk_dir.create_file(new_img);
    SparseBuffer* nb = *cl_.storage.disk_dir.buffer(new_img);
    *nb = (*cl_.storage.disk_dir.buffer(old_img))->clone();
    nb->resize(cfg_.profile.image_size);
    const std::uint64_t ccs = cache_cluster_bytes();
    const std::uint64_t run_bytes = ccs * update::kChangedRunClusters;
    const std::uint64_t limit =
        cfg_.content_bytes == 0
            ? cfg_.profile.image_size
            : std::min(cfg_.content_bytes, cfg_.profile.image_size);
    std::vector<std::uint8_t> run(run_bytes);
    for (std::uint64_t off = 0; off < limit; off += run_bytes) {
      const std::uint64_t c0 = off / ccs;
      if (!update::cluster_changed(vmi, c0, new_ver,
                                   cfg_.updates.changed_frac)) {
        continue;
      }
      const std::uint64_t len = std::min(run_bytes, limit - off);
      run.assign(run_bytes, 0);
      for (std::uint64_t coff = 0; coff < len; coff += ccs) {
        fill_cluster_pattern(
            {run.data() + coff,
             static_cast<std::size_t>(std::min(ccs, len - coff))},
            update::changed_content_seed(vmi, c0 + coff / ccs, new_ver));
      }
      nb->write(off, {run.data(), static_cast<std::size_t>(len)});
    }
  }

  /// One catalog publish settling: bump the version, forget the storage
  /// node's mem-tier copy of the superseded cache (the file stays — an
  /// open nfs-mem backing may still be reading it), then sweep every up
  /// node holding a stale warm cache and either invalidate it or spawn a
  /// rebase. Down nodes are left alone: the salvage and adoption passes
  /// version-check whatever they find when the node returns.
  sim::Task<void> apply_update(const update::UpdateEvent& ev) {
    const std::uint32_t old_ver =
        catalog_ver_[static_cast<std::size_t>(ev.vmi)];
    if (ev.to_version <= old_ver) co_return;
    if (res_.updates_published == 0) {
      // Everything the storage node serves from here on is traffic the
      // churn caused: the refill bill a rebase exists to shrink.
      update_storage_mark_ = cl_.storage.nfs.stats().total_payload();
    }
    publish_base(ev.vmi, old_ver, ev.to_version);
    catalog_ver_[static_cast<std::size_t>(ev.vmi)] = ev.to_version;
    ++res_.updates_published;
    c_upd_published_->inc();
    cl_.storage.mem_pool.remove(img_name(vkey(ev.vmi, old_ver)));

    const bool rebase = rebase_policy();
    std::vector<int> touched;
    for (int ni = 0; ni < static_cast<int>(rt_.size()); ++ni) {
      NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
      if (!rt.up) continue;
      std::vector<VKey> stale;
      for (VKey v : rt.disk_caches) {
        if (vk_vmi(v) != ev.vmi) continue;
        if (vk_ver(v) == ev.to_version) continue;
        if (rt.zombies.count(v) != 0) continue;  // already dying
        stale.push_back(v);
      }
      bool invalidated = false;
      for (VKey v : stale) {
        // Only a pool-verified cache of the immediately preceding version
        // is worth patching; anything else (unadmitted stragglers, a
        // version a downed node somehow kept) is dropped outright.
        if (rebase && vk_ver(v) == old_ver &&
            cl_.nodes[static_cast<std::size_t>(ni)]->pool.contains(
                img_name(v))) {
          cl_.env.spawn(rebase_task(ni, ev.vmi, old_ver, ev.to_version));
        } else {
          retire_old(ni, v);
          ++res_.update_invalidations;
          c_upd_invalidated_->inc();
          invalidated = true;
        }
      }
      if (invalidated) {
        refresh_warm(ni);
        touched.push_back(ni);
      }
    }
    for (const int ni : touched) co_await publish_manifest(ni);
    dispatch();
  }

  sim::Task<void> update_task() {
    for (const update::UpdateEvent& ev : update_events_) {
      const sim::SimTime t = sim::from_seconds(ev.at_s);
      if (t > cl_.env.now()) co_await cl_.env.delay(t - cl_.env.now());
      co_await apply_update(ev);
    }
  }

  /// Incremental rebase of one node's warm cache from `old_ver` to
  /// `new_ver`: create the new version's cache image and drive reads
  /// over the old cache's allocated extents through the ordinary CoR
  /// machinery (range-locked single-flight fills, one flush barrier per
  /// fill run). A backing-fetch hook serves content-identical clusters
  /// from the old cache file on local disk; changed clusters fall
  /// through to the NFS read of the new base, so only the diff crosses
  /// the network. Holds the (node, VMI) prepare lock throughout — a
  /// rebase serialises against placements exactly like a cold-miss
  /// creation — and degrades to plain invalidation on any failure.
  sim::Task<void> rebase_task(int ni, int vmi, std::uint32_t old_ver,
                              std::uint32_t new_ver) {
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(ni)];
    const VKey old_vk = vkey(vmi, old_ver);
    const VKey new_vk = vkey(vmi, new_ver);
    const std::string old_img = img_name(old_vk);
    const std::string new_img = img_name(new_vk);
    const std::string old_cache = cluster::cache_file_for(old_img);
    const std::string new_cache = cluster::cache_file_for(new_img);
    const std::uint64_t epoch = rt.epoch;

    auto lk = co_await prep_mutex(ni, vmi).lock();
    if (rt.epoch != epoch || !rt.up) co_return;  // node died while queued
    if (catalog_ver_[static_cast<std::size_t>(vmi)] != new_ver) {
      co_return;  // superseded while queued; the newer sweep owns cleanup
    }
    if (rt.zombies.count(old_vk) != 0 || rt.disk_caches.count(old_vk) == 0 ||
        !node.disk_dir.exists(old_cache) || !node.pool.contains(old_img)) {
      co_return;  // evicted or scrubbed while we waited: nothing to patch
    }
    if (node.disk_dir.exists(new_cache)) {
      // A placement built the new version's cache while we queued; the
      // old one is a plain drop.
      retire_old(ni, old_vk);
      ++res_.update_invalidations;
      c_upd_invalidated_->inc();
      refresh_warm(ni);
      co_await publish_manifest(ni);
      co_return;
    }

    hold_file(ni, old_vk);
    node.pool.pin(old_img);  // the source must survive the whole copy
    bool held_new = false;
    bool ok = true;
    block::DevicePtr old_dev;
    block::DevicePtr new_dev;
    std::uint64_t patched = 0;
    std::uint64_t reused = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;

    // 1. Open the old cache standalone (read-only, no backing chain):
    //    carry-over reads must hit only its allocated clusters and never
    //    recurse into its own NFS-mounted base.
    {
      auto od = co_await open_cache_standalone(node, old_cache);
      if (od.ok()) {
        old_dev = std::move(*od);
      } else {
        ok = false;
      }
    }
    auto* oq =
        ok ? dynamic_cast<qcow2::Qcow2Device*>(old_dev.get()) : nullptr;
    if (oq == nullptr) ok = false;

    // 2. Its allocated extents are the warmth worth carrying over.
    if (ok && rt.epoch == epoch) {
      std::uint64_t off = 0;
      while (off < oq->size()) {
        auto ms = co_await oq->map_status(off, oq->size() - off);
        if (!ms.ok() || ms->len == 0) break;
        if (ms->kind != MapKind::unallocated) {
          extents.emplace_back(off, off + ms->len);
        }
        off += ms->len;
      }
    }

    // 3. Create the new versioned cache backed by the new base export.
    if (ok && rt.epoch == epoch) {
      qcow2::ChainImageOptions copt{.cluster_bits = cfg_.cache_cluster_bits,
                                    .virtual_size = cfg_.profile.image_size};
      auto cr = co_await qcow2::create_cache_image(node.fs,
                                                   "disk/" + new_cache,
                                                   "nfs-base/" + new_img,
                                                   cfg_.cache_quota, copt);
      if (cr.ok() && rt.epoch == epoch) {
        rt.disk_caches.insert(new_vk);
        hold_file(ni, new_vk);
        held_new = true;
      } else if (!cr.ok()) {
        ok = false;
      }
    }

    // 4. Open it writable and drive the carry-over through the CoR path.
    if (ok && rt.epoch == epoch) {
      auto nd = co_await qcow2::open_image(node.fs, "disk/" + new_cache,
                                           /*writable=*/true,
                                           /*cache_backing_ro=*/false,
                                           cl_.obs);
      if (nd.ok()) {
        new_dev = std::move(*nd);
      } else {
        ok = false;
      }
    }
    if (ok && rt.epoch == epoch) {
      auto* nq = dynamic_cast<qcow2::Qcow2Device*>(new_dev.get());
      if (nq == nullptr) {
        ok = false;
      } else {
        if (cfg_.cache_compress) nq->set_cor_compress(true);
        const std::uint64_t ccs = cache_cluster_bytes();
        nq->set_backing_fetch_hook(
            [this, oq, old_vk, new_vk, ccs](std::uint64_t vaddr,
                                            std::span<std::uint8_t> dst)
                -> sim::Task<Result<bool>> {
              // Serve a range from the old cache only when every cache
              // cluster it covers is content-identical across the two
              // versions; anything else falls through to the NFS read
              // of the new base.
              const std::uint64_t lo = vaddr / ccs;
              const std::uint64_t hi = (vaddr + dst.size() + ccs - 1) / ccs;
              for (std::uint64_t c = lo; c < hi; ++c) {
                if (fp_of(old_vk, c).fp != fp_of(new_vk, c).fp) {
                  co_return false;
                }
              }
              auto rr = co_await oq->read(vaddr, dst);
              if (!rr.ok()) co_return rr.error();
              co_return true;
            });
        // Drive the fills in homogeneous changed/unchanged runs so each
        // CoR pass resolves one way (and pays its one flush barrier for
        // one kind of traffic).
        std::vector<std::uint8_t> buf;
        for (const auto& [elo, ehi] : extents) {
          std::uint64_t pos = elo;
          while (ok && pos < ehi) {
            const std::uint64_t c0 = pos / ccs;
            const bool changed =
                fp_of(old_vk, c0).fp != fp_of(new_vk, c0).fp;
            std::uint64_t end = std::min(ehi, (c0 + 1) * ccs);
            while (end < ehi && end - pos < kRebaseRunBytes) {
              const std::uint64_t c = end / ccs;
              const bool ch = fp_of(old_vk, c).fp != fp_of(new_vk, c).fp;
              if (ch != changed) break;
              end = std::min(ehi, (c + 1) * ccs);
            }
            buf.resize(static_cast<std::size_t>(end - pos));
            auto rr = co_await nq->read(pos, buf);
            if (rt.epoch != epoch ||
                catalog_ver_[static_cast<std::size_t>(vmi)] != new_ver ||
                !rr.ok()) {
              ok = false;
              break;
            }
            const std::uint64_t n = (end - pos + ccs - 1) / ccs;
            if (changed) {
              patched += n;
            } else {
              reused += n;
            }
            pos = end;
          }
          if (!ok) break;
        }
        // The hook captures the old device; it must not outlive it.
        nq->set_backing_fetch_hook({});
      }
    }

    // 5. Close before any drop can delete a file (close-before-drop).
    if (new_dev) {
      (void)co_await new_dev->close();
      new_dev.reset();
    }
    if (old_dev) {
      (void)co_await old_dev->close();
      old_dev.reset();
    }
    if (rt.epoch != epoch) {
      // Crashed under us: the crash sweep already disowned the node's
      // caches; just release our holds (reclaiming any zombies).
      node.pool.unpin(old_img);
      drop_file(ni, old_vk);
      if (held_new) drop_file(ni, new_vk);
      co_return;
    }

    node.pool.unpin(old_img);
    if (ok && catalog_ver_[static_cast<std::size_t>(vmi)] == new_ver) {
      // Retire first so the old quota is free before the new admission.
      retire_old(ni, old_vk);
      readopt(ni, new_vk);
      if (cfg_.manifest) {
        ++mgen_[static_cast<std::size_t>(ni)][new_vk].fill;
      }
      if (cfg_.peer_transfer &&
          seeds_.register_seed(ni, new_img)) {
        c_peer_reg_->inc();
      }
      for (const auto& [lo, hi] : extents) {
        if (cfg_.peer_transfer) seeds_.add_coverage(ni, new_img, lo, hi);
        if (cfg_.dedup) index_fill(ni, new_vk, lo, hi);
      }
      ++res_.caches_rebased;
      c_upd_rebased_->inc();
      res_.rebase_patched_clusters += patched;
      res_.rebase_reused_clusters += reused;
      c_upd_patched_->inc(patched);
      c_upd_reused_->inc(reused);
    } else {
      // Failed or superseded mid-flight: degrade to invalidation. The
      // partial new cache must not masquerade as warm, and the old one
      // is stale either way.
      if (held_new) {
        drop_file(ni, new_vk);
        held_new = false;
        scrub_failed_cache(ni, new_vk);
      }
      retire_old(ni, old_vk);
      ++res_.update_invalidations;
      c_upd_invalidated_->inc();
    }
    drop_file(ni, old_vk);
    if (held_new) drop_file(ni, new_vk);
    refresh_warm(ni);
    co_await publish_manifest(ni);
    dispatch();
  }

  // --- the deployment itself -------------------------------------------------

  /// Exit paths for a task whose node crashed before its boot finished:
  /// the slot count was already zeroed by the crash, so only the inflight
  /// audit and the retry decision remain.
  void exit_killed(Pending r, int ni) {
    ++res_.crash_kills;
    c_crash_kills_->inc();
    --rt_[static_cast<std::size_t>(ni)].inflight;
    fail_attempt(r);
  }

  /// Exit path for an attempt that failed on an I/O error while the node
  /// stayed up: give the slot back and retry.
  void exit_failed(Pending r, int ni) {
    ++res_.deploy_failures;
    c_deploy_failures_->inc();
    --sched_[static_cast<std::size_t>(ni)].running_vms;
    slots_changed(ni);
    --rt_[static_cast<std::size_t>(ni)].inflight;
    refresh_warm(ni);
    fail_attempt(r);
    dispatch();
  }

  sim::Task<void> vm_task(Pending r, int ni) {
    ComputeNode& node = *cl_.nodes[static_cast<std::size_t>(ni)];
    NodeRuntime& rt = rt_[static_cast<std::size_t>(ni)];
    const std::uint64_t epoch = rt.epoch;
    ++r.attempts;
    // Attempt-scoped CoW name: a retry of the same request must never
    // create over a file a crashed-but-not-yet-cleaned attempt still has
    // open somewhere.
    const std::string cow_file = "vm-" + std::to_string(r.id) + "-a" +
                                 std::to_string(r.attempts) + ".cow";
    const std::string cow_path = "disk/" + cow_file;

    const sim::SimTime prep0 = cl_.env.now();
    cluster::PlacementOutcome outcome;
    bool pinned = false;
    block::DevicePtr dev;
    // The image version is read under the prepare lock (an update sweep
    // or rebase of this VMI holds the same lock), so one attempt sees one
    // consistent version end to end.
    VKey vk = 0;
    std::string img, cache;
    {
      // Serialise the whole prepare per (node, VMI): two concurrent cold
      // misses must not both create the node cache; the loser waits and
      // then warm-hits the winner's file.
      auto lk = co_await prep_mutex(ni, r.vmi).lock();
      vk = vkey(r.vmi, catalog_ver_[static_cast<std::size_t>(r.vmi)]);
      img = img_name(vk);
      cache = cluster::cache_file_for(img);
      hold_file(ni, vk);
      auto placed = co_await cluster::chain_to_proper_cache(
          cl_, node, img, cfg_.cache_quota, cfg_.cache_cluster_bits,
          cfg_.profile.image_size);
      // Sync the disk mirror with what placement did: one probe for our
      // own cache file, plus the evictions the outcome reports. Nothing
      // ran between placement's return and here (symmetric transfer), so
      // this is atomic with the mutation.
      if (node.disk_dir.exists(cache)) {
        rt.disk_caches.insert(vk);
      } else {
        rt.disk_caches.erase(vk);
      }
      if (placed.ok()) {
        for (const auto& victim : placed->evicted) {
          rt.disk_caches.erase(vkey_of(victim));
          peer_deregister(ni, victim);
          dedup_forget(ni, victim);
        }
      }
      if (rt.epoch != epoch) {
        drop_file(ni, vk);
        exit_killed(r, ni);
        co_return;
      }
      if (!placed.ok()) {
        drop_file(ni, vk);
        scrub_failed_cache(ni, vk);
        exit_failed(r, ni);
        co_return;
      }
      outcome = *placed;
      // No suspension between placement returning and the pin: nothing
      // can evict the entry in between (single-threaded simulation).
      if (!node.pool.contains(img)) readopt(ni, vk);
      node.pool.pin(img);
      pinned = true;
      const bool shared_ro = rt.cache_users[vk] > 1;
      qcow2::ChainImageOptions cow_opt{
          .cluster_bits = 16, .virtual_size = cfg_.profile.image_size};
      auto rcow = co_await qcow2::create_cow_image(node.fs, cow_path,
                                                   outcome.backing, cow_opt);
      if (rt.epoch != epoch || !rcow.ok()) {
        if (node.disk_dir.exists(cow_file)) node.disk_dir.remove(cow_file);
        release_cache(ni, vk, pinned);
        if (rt.epoch != epoch) {
          exit_killed(r, ni);
        } else {
          exit_failed(r, ni);
        }
        co_return;
      }
      auto dv = co_await qcow2::open_image(node.fs, cow_path,
                                           /*writable=*/true, shared_ro,
                                           cl_.obs);
      if (rt.epoch != epoch || !dv.ok()) {
        if (node.disk_dir.exists(cow_file)) node.disk_dir.remove(cow_file);
        release_cache(ni, vk, pinned);
        if (rt.epoch != epoch) {
          exit_killed(r, ni);
        } else {
          exit_failed(r, ni);
        }
        co_return;
      }
      dev = std::move(*dv);
      co_await attach_tiers(ni, vk, dev.get());
      // Cache state settled under the prepare lock (admission, eviction,
      // readoption): make it durable before the VM builds on it. Warm
      // hits with no evictions change nothing and publish nothing.
      if (cfg_.manifest &&
          (outcome.action !=
               cluster::PlacementOutcome::Action::local_warm_hit ||
           !outcome.evicted.empty())) {
        co_await publish_manifest(ni);
      }
    }  // prepare lock released
    const double prep_s = sim::to_seconds(cl_.env.now() - prep0);
    prep_.add(prep_s);
    h_prepare_->observe(prep_s);
    refresh_warm(ni);

    const sim::SimTime boot0 = cl_.env.now();
    auto br = co_await boot::boot_vm(cl_.env, *dev, traces_[
        static_cast<std::size_t>(r.vmi)]);
    (void)co_await dev->close();
    dev.reset();
    if (rt.epoch != epoch) {
      if (node.disk_dir.exists(cow_file)) node.disk_dir.remove(cow_file);
      release_cache(ni, vk, pinned);
      exit_killed(r, ni);
      co_return;
    }
    if (!br.ok()) {
      if (node.disk_dir.exists(cow_file)) node.disk_dir.remove(cow_file);
      release_cache(ni, vk, pinned);
      exit_failed(r, ni);
      co_return;
    }

    // Deployed. The SLO clock stops here: completed even if the node
    // later crashes under the running VM.
    const double boot_s = sim::to_seconds(cl_.env.now() - boot0);
    boot_.add(boot_s);
    h_boot_->observe(boot_s);
    const double deploy_s =
        sim::to_seconds(cl_.env.now() - r.first_enqueued);
    deploy_.add(deploy_s);
    h_deploy_->observe(deploy_s);
    ++res_.completed;
    c_completed_->inc();
    if (outcome.action == cluster::PlacementOutcome::Action::local_warm_hit) {
      ++res_.warm_hits;
      c_warm_hits_->inc();
    }

    co_await cl_.env.delay(sim::from_seconds(r.lifetime_s));
    if (rt.epoch != epoch) {
      // Killed while running: already counted completed; just audit.
      ++res_.vm_crashes;
      c_vm_crashes_->inc();
      if (node.disk_dir.exists(cow_file)) node.disk_dir.remove(cow_file);
      release_cache(ni, vk, pinned);
      --rt.inflight;
      co_return;
    }

    // Orderly shutdown: drop the CoW layer, push a freshly-created cache
    // to the storage node (Algorithm 1's deferred copy-back), free the
    // slot. Skip the push when the catalog moved past this version while
    // the VM ran — shipping a superseded cache would only waste storage
    // bandwidth and can never be served again.
    if (node.disk_dir.exists(cow_file)) node.disk_dir.remove(cow_file);
    if (outcome.copy_back_on_shutdown && node.disk_dir.exists(cache) &&
        vk_ver(vk) == catalog_ver_[static_cast<std::size_t>(r.vmi)]) {
      if (gate_.down()) {
        // Best-effort: the cache stays node-local; a later shutdown of
        // another fresh creator (or a re-placement) tries again.
        ++res_.copyback_skips;
        c_copyback_skips_->inc();
      } else {
        // Serialised per VMI so two creators never write the storage-side
        // file concurrently; the loser finds it present and skips.
        auto plk = co_await push_mutex(r.vmi).lock();
        if (rt.epoch == epoch && node.disk_dir.exists(cache) &&
            !cl_.storage.mem_dir.exists(cache)) {
          (void)co_await cluster::copy_cache_back(cl_, node, img);
        } else if (cl_.storage.mem_dir.exists(cache)) {
          cl_.storage.mem_pool.touch(img);
        }
        if (rt.epoch != epoch) {
          ++res_.vm_crashes;
          c_vm_crashes_->inc();
          release_cache(ni, vk, pinned);
          --rt.inflight;
          co_return;
        }
      }
    }
    --sched_[static_cast<std::size_t>(ni)].running_vms;
    slots_changed(ni);
    release_cache(ni, vk, pinned);
    refresh_warm(ni);
    // The VM's lifetime of CoR fills grew the cache; persist the final
    // coverage and fill generation now that the file is quiescent.
    co_await publish_manifest(ni);
    --rt.inflight;
    dispatch();
  }

  // --- arrivals --------------------------------------------------------------

  sim::Task<void> arrivals() {
    for (const auto& req : reqs_) {
      const sim::SimTime t = sim::from_seconds(req.arrival_s);
      if (t > cl_.env.now()) co_await cl_.env.delay(t - cl_.env.now());
      ++res_.arrivals;
      c_arrivals_->inc();
      if (queue_.size() >= cfg_.max_queue_depth) {
        ++res_.rejected;
        c_rejected_->inc();
        continue;
      }
      Pending p;
      p.id = next_id_++;
      p.vmi = req.vmi;
      p.lifetime_s = req.lifetime_s;
      p.enqueued = p.first_enqueued = cl_.env.now();
      queue_.push_back(p);
      track_peak();
      dispatch();
    }
  }

  const CloudConfig& cfg_;
  int num_vmis_;
  std::vector<VmRequest> reqs_;
  cluster::Cluster cl_;
  OutageGate gate_;
  std::vector<std::unique_ptr<FlakyDirectory>> flaky_;
  std::vector<boot::BootTrace> traces_;
  std::vector<cluster::NodeState> sched_;
  /// Placement index over sched_ (constructed once sched_ is sized).
  std::optional<cluster::NodeIndex> idx_;
  std::vector<NodeRuntime> rt_;
  std::deque<Pending> queue_;
  std::unordered_map<std::uint64_t, std::unique_ptr<sim::Mutex>> prep_mx_;
  std::unordered_map<int, std::unique_ptr<sim::Mutex>> push_mx_;
  int next_id_ = 0;
  CloudResult res_;
  Samples deploy_, qwait_, prep_, boot_;
  obs::Counter* c_arrivals_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_aborted_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_deploy_failures_ = nullptr;
  obs::Counter* c_crash_kills_ = nullptr;
  obs::Counter* c_vm_crashes_ = nullptr;
  obs::Counter* c_warm_hits_ = nullptr;
  obs::Counter* c_copyback_skips_ = nullptr;
  obs::Counter* c_node_crashes_ = nullptr;
  obs::Counter* c_node_recoveries_ = nullptr;
  obs::Counter* c_cache_salvaged_ = nullptr;
  obs::Counter* c_cache_invalidated_ = nullptr;
  // Peer cache tier (all dormant unless cfg_.peer_transfer).
  peer::SeedRegistry seeds_;
  std::optional<peer::Fabric> fabric_;
  obs::Counter* c_peer_hits_ = nullptr;
  obs::Counter* c_peer_fallback_ = nullptr;
  obs::Counter* c_peer_fb_miss_ = nullptr;
  obs::Counter* c_peer_fb_timeout_ = nullptr;
  obs::Counter* c_peer_fb_crash_ = nullptr;
  obs::Counter* c_peer_fb_error_ = nullptr;
  obs::Counter* c_peer_bytes_avoided_ = nullptr;
  obs::Counter* c_peer_reg_ = nullptr;
  obs::Counter* c_peer_dereg_ = nullptr;
  std::vector<obs::Counter*> c_peer_node_bytes_;
  // Dedup tier (all dormant unless cfg_.dedup).
  std::vector<dedup::FingerprintIndex> didx_;  ///< one per node
  /// Per-VMI memoized cluster fingerprints (host-side manifests).
  std::vector<std::unordered_map<std::uint64_t, FpEntry>> fp_memo_;
  obs::Counter* c_dedup_local_ = nullptr;
  obs::Counter* c_dedup_zero_ = nullptr;
  obs::Counter* c_dedup_peer_ = nullptr;
  obs::Counter* c_dedup_fallback_ = nullptr;
  obs::Counter* c_dedup_bytes_local_ = nullptr;
  obs::Counter* c_dedup_bytes_zero_ = nullptr;
  obs::Counter* c_dedup_bytes_peer_ = nullptr;
  // Durable control plane (all dormant unless cfg_.manifest or a
  // restart/drain is configured).
  std::vector<std::unique_ptr<manifest::Store>> mstores_;  ///< one per node
  /// Per-node fill/check generations per versioned image, as last
  /// published.
  std::vector<std::map<VKey, MGen>> mgen_;
  /// Per-node publish serialisation (lazily created like prep_mx_).
  std::vector<std::unique_ptr<sim::Mutex>> mmx_;
  /// Storage payload served before the last restart's power-up.
  std::uint64_t restart_storage_mark_ = 0;
  // Image-update churn (all dormant unless cfg_.updates.enabled).
  /// Current published version per VMI; always sized, always 0 with
  /// updates off, so version-0 name/key round-trips stay bit-identical
  /// to the pre-update engine.
  std::vector<std::uint32_t> catalog_ver_;
  std::vector<update::UpdateEvent> update_events_;
  /// Storage payload served before the first catalog publish.
  std::uint64_t update_storage_mark_ = 0;
  obs::Counter* c_upd_published_ = nullptr;
  obs::Counter* c_upd_invalidated_ = nullptr;
  obs::Counter* c_upd_rebased_ = nullptr;
  obs::Counter* c_upd_patched_ = nullptr;
  obs::Counter* c_upd_reused_ = nullptr;
  obs::Counter* c_manifest_pub_ = nullptr;
  obs::Counter* c_restarts_ = nullptr;
  obs::Counter* c_drains_ = nullptr;
  obs::Counter* c_adopt_ok_ = nullptr;
  obs::Counter* c_adopt_failed_ = nullptr;
  obs::Counter* c_adopt_stale_ = nullptr;
  obs::Histogram* h_adopt_seconds_ = nullptr;
  obs::Histogram* h_deploy_ = nullptr;
  obs::Histogram* h_queue_wait_ = nullptr;
  obs::Histogram* h_prepare_ = nullptr;
  obs::Histogram* h_boot_ = nullptr;

  using ComputeNode = cluster::ComputeNode;
};

}  // namespace

CloudResult run_cloud(const CloudConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<VmRequest> reqs = cfg.requests;
  if (reqs.empty()) {
    reqs = generate_workload(cfg.workload, cfg.horizon_s, rng);
  }
  int num_vmis = cfg.workload.num_vmis;
  for (const auto& r : reqs) num_vmis = std::max(num_vmis, r.vmi + 1);
  Engine eng(cfg, std::move(reqs), num_vmis);
  return eng.run();
}

}  // namespace vmic::cloud
