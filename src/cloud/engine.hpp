#pragma once

// vmic::cloud — a long-running cloud control plane over the paper's
// cluster model. Where cluster::run_scenario measures one synchronized
// boot storm (the paper's experiments), this engine runs an open arrival
// stream against a finite cluster for hours of simulated time: admission
// queueing, cache-aware scheduling, Algorithm 1 placement, cache
// lifecycle under eviction pressure, node crashes, storage outages, and
// retry-with-backoff — reporting deployment SLOs instead of a single
// mean boot time.

#include <cstdint>
#include <vector>

#include "boot/profile.hpp"
#include "cloud/failure.hpp"
#include "cloud/workload.hpp"
#include "cluster/cluster.hpp"
#include "cluster/scheduler.hpp"
#include "obs/metrics.hpp"
#include "peer/fabric.hpp"
#include "update/update.hpp"

namespace vmic::cloud {

/// Cluster sizing for long cloud runs: far smaller than the paper's
/// 64-node DAS-4 so multi-hour horizons stay fast, with a cache budget
/// tight enough that eviction pressure actually occurs.
inline cluster::ClusterParams default_cloud_cluster() {
  cluster::ClusterParams p;
  p.compute_nodes = 8;
  p.node_cache_capacity = 128 * MiB;
  p.eviction = cache::EvictionPolicy::lru;
  return p;
}

/// Shrink an OS profile so thousands of boots simulate quickly while
/// keeping the shape (CoW chain, working set, CPU share) intact.
inline boot::OsProfile scaled_down(boot::OsProfile p) {
  p.image_size = 2 * GiB;
  p.unique_read_bytes = 24 * MiB;
  p.cpu_seconds = 6.0;
  p.write_bytes = 2 * MiB;
  return p;
}

struct CloudConfig {
  cluster::ClusterParams cluster = default_cloud_cluster();
  /// VM slots per compute node (the admission capacity unit).
  int vm_slots_per_node = 4;
  boot::OsProfile profile = scaled_down(boot::centos63());
  WorkloadConfig workload;
  /// Pre-materialised request list; empty = generate from `workload`
  /// over [0, horizon_s) with the run's seed.
  std::vector<VmRequest> requests;
  double horizon_s = 2 * 3600.0;
  cluster::SchedPolicy policy = cluster::SchedPolicy::striping;
  bool cache_aware = true;
  std::uint64_t cache_quota = 48 * MiB;
  std::uint32_t cache_cluster_bits = 9;
  /// Deployment attempts per request before it is aborted.
  int max_attempts = 4;
  /// First retry delay; doubles per subsequent attempt.
  double retry_backoff_s = 5.0;
  /// Admission queue bound; arrivals beyond it are rejected outright.
  std::size_t max_queue_depth = 1024;
  FailurePlan failures;
  /// On node recovery, run qcow2 repair + check over the caches that
  /// survived the crash on disk and re-adopt the clean ones, instead of
  /// wholesale invalidation at crash time. Salvaged caches keep their
  /// warm clusters, cutting post-recovery backing-store traffic. Off =
  /// the legacy invalidate-everything behaviour (ablation baseline).
  bool crash_salvage = true;
  /// Peer cache tier (vmic::peer): nodes holding populated cache clusters
  /// register as seeds, and other nodes' copy-on-read fills fetch those
  /// cluster ranges peer-to-peer over per-node NICs instead of through
  /// the storage node's NFS mount — falling back to NFS on a coverage
  /// miss, transfer timeout, or seed crash mid-transfer. Off = every cold
  /// read funnels through the storage node (the paper's baseline); no
  /// peer.* metrics exist then, so snapshots stay pin-identical.
  bool peer_transfer = false;
  peer::PeerParams peer;
  /// Content-addressed dedup in the cache-fill path (§7.3 / §8 future
  /// work): clusters are fingerprinted at cache-cluster granularity and
  /// a per-node index over the cache pool lets a CoR fill for image B
  /// whose content already sits in a sibling image's cache be served
  /// locally — or, with peer_transfer also on, from a peer advertising
  /// the fingerprint — instead of from the storage node's NFS export.
  /// Off = no dedup.* metrics exist, so snapshots stay pin-identical.
  bool dedup = false;
  /// Compress CoR fills into the cache images (qcow2 compressed
  /// clusters): disk quota and peer/NFS-refill bytes shrink to physical
  /// size. No-op below 1-KiB cache clusters (payloads are sector-
  /// granular) and on journaled images. Off = no qcow2.compressed.*
  /// metrics.
  bool cache_compress = false;
  /// Cross-VMI content model: when > 0, consecutive VMIs form sibling
  /// groups of this size (same OS distribution) whose base images share
  /// `shared_fraction` of their per-cluster content; the rest is image-
  /// private. Content is a deterministic compressible pattern written
  /// host-side into the base images. 0 = images stay all-zero (legacy;
  /// required for the golden metric pins).
  int sibling_group_size = 0;
  double shared_fraction = 0.75;
  /// Bytes of generated content per image, from offset 0 (bounds host
  /// memory for big images). 0 = the whole image.
  std::uint64_t content_bytes = 0;
  /// Durable control plane (vmic::manifest): each node keeps a crash-safe
  /// A/B-slot manifest of its verified caches on its own disk, published
  /// after every cache mutation the engine settles (placement, eviction,
  /// salvage, copy-back release). Restarts and drains then *re-adopt*
  /// listed caches — open → auto-repair → check, exactly the salvage
  /// path — instead of re-warming cold; entries that fail verification
  /// degrade to cold, never to corruption. Off = no manifest files, no
  /// manifest.* / cloud.adopt.* metrics, snapshots stay pin-identical.
  bool manifest = false;
  /// Planned full-cloud restarts (rolling upgrade model): at each time
  /// every node publishes its manifest (when `manifest` is on), powers
  /// down — running VMs die, in-flight deployments are killed and
  /// retried — stays down `restart_down_s`, then powers up and runs the
  /// re-adoption pass before accepting placements again. With `manifest`
  /// off the restart is the cold baseline: every cache file is scrubbed.
  std::vector<double> restart_at_s;
  double restart_down_s = 30.0;
  /// Planned drain of one node: at `drain_at_s` the node stops accepting
  /// placements, waits for its running VMs and in-flight deployments to
  /// finish, publishes its manifest, powers down `drain_down_s`, then
  /// re-adopts and rejoins. -1 = no drain.
  int drain_node = -1;
  double drain_at_s = 0;
  double drain_down_s = 60.0;
  /// Image-update churn (vmic::update): a deterministic per-seed schedule
  /// publishes new base-image versions mid-run. On a version bump every
  /// node holding the old version's warm cache either *invalidates* it
  /// (drop, refill cold from the new base) or *rebases* it (diff new vs
  /// old base per cluster via the fingerprint hash, patch only changed
  /// clusters into a new versioned cache through the CoR path — range
  /// lock + one flush barrier per patch run). Versioned image names key
  /// the cache pool, seed registry, fingerprint index, and manifest
  /// records, so peer/dedup never serve a stale version and restart
  /// re-adoption drops entries recorded against a superseded version.
  /// Off = no update.* metrics exist, so snapshots stay pin-identical.
  update::UpdateParams updates;
  std::uint64_t seed = 1;
};

/// Summary of one latency distribution (seconds).
struct LatencyStats {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

struct CloudResult {
  // Terminal accounting: every arrival ends in exactly one of
  // completed / aborted / rejected.
  int arrivals = 0;
  int completed = 0;  ///< deployed successfully (even if later crashed)
  int aborted = 0;    ///< gave up after max_attempts
  int rejected = 0;   ///< bounced off a full admission queue
  int retries = 0;          ///< re-queued attempts
  int deploy_failures = 0;  ///< attempts failed by I/O errors
  int crash_kills = 0;      ///< attempts killed mid-deployment by a crash
  int vm_crashes = 0;       ///< running VMs killed by a node crash
  int warm_hits = 0;        ///< deployments served by a local warm cache
  int copyback_skips = 0;   ///< cache push-backs skipped (storage down)
  int node_crashes = 0;
  int node_recoveries = 0;
  int caches_salvaged = 0;     ///< post-crash caches verified and re-adopted
  int caches_invalidated = 0;  ///< post-crash caches deleted (failed check)
  // Durable control plane accounting (all zero when manifest is off and
  // no restart/drain is configured).
  int restarts = 0;            ///< planned full-cloud restarts executed
  int drains = 0;              ///< planned node drains executed
  int caches_readopted = 0;    ///< manifest entries verified and re-adopted
  int adopt_failures = 0;      ///< entries that failed check (degraded cold)
  int adopt_stale = 0;         ///< entries whose cache file had vanished
  std::uint64_t manifest_publishes = 0;  ///< durable manifest writes
  /// Storage-node payload bytes served after the last restart's power-up
  /// (the re-warm cost a durable manifest exists to avoid). 0 = no
  /// restart configured.
  std::uint64_t post_restart_storage_bytes = 0;
  /// VM slots still held after the run drained; must be 0.
  int leaked_slots = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t storage_payload_bytes = 0;
  // Peer cache tier accounting (all zero when peer_transfer is off).
  std::uint64_t peer_seed_hits = 0;  ///< backing fetches served by a seed
  std::uint64_t peer_fallback_fills = 0;  ///< fetches that fell back to NFS
  std::uint64_t peer_bytes_served = 0;  ///< payload bytes moved peer-to-peer
  std::uint64_t peer_timeouts = 0;  ///< transfers abandoned past the deadline
  // Content-addressed dedup accounting (all zero when dedup is off).
  std::uint64_t dedup_local_hits = 0;  ///< clusters filled from a sibling cache
  std::uint64_t dedup_zero_fills = 0;  ///< clusters satisfied by zero detection
  std::uint64_t dedup_peer_hits = 0;   ///< clusters fetched by fingerprint p2p
  std::uint64_t dedup_fallbacks = 0;   ///< fetches that fell through to NFS/peer
  std::uint64_t dedup_bytes_served = 0;  ///< bytes not read from the NFS export
  // Image-update churn accounting (all zero when updates are off).
  int updates_published = 0;       ///< catalog publish events executed
  int caches_rebased = 0;          ///< warm caches incrementally rebased
  int update_invalidations = 0;    ///< warm caches dropped on version bump
  std::uint64_t rebase_patched_clusters = 0;  ///< clusters refetched (changed)
  std::uint64_t rebase_reused_clusters = 0;   ///< clusters copied from old cache
  /// Storage-node payload bytes served after the first catalog publish
  /// (the refill cost a rebase exists to avoid). 0 = no update fired.
  std::uint64_t post_update_storage_bytes = 0;
  double cache_hit_ratio = 0;  ///< warm_hits / completed
  double goodput_vms_per_hour = 0;
  double sim_seconds = 0;
  /// Discrete events the simulation core fired during the run
  /// (scheduler-throughput accounting for benches).
  std::uint64_t sim_events = 0;
  std::size_t peak_queue_depth = 0;
  LatencyStats deploy;      ///< first enqueue -> boot complete
  LatencyStats queue_wait;  ///< enqueue -> slot granted, per attempt
  LatencyStats prepare;     ///< placement + image chain setup
  LatencyStats boot;        ///< boot trace replay
  /// Full cluster + cloud.* metrics snapshot at end of run.
  obs::MetricsSnapshot metrics;
};

/// Run the cloud to completion (every arrival resolved, every surviving
/// VM shut down). Deterministic: the same config produces a byte-identical
/// metrics snapshot.
CloudResult run_cloud(const CloudConfig& cfg);

}  // namespace vmic::cloud
