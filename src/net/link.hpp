#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>

#include "obs/hub.hpp"
#include "sim/env.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vmic::net {

/// Per-link counters, registry-backed (obs instruments owned here; a
/// bound registry exports them as net.link.*{link=<name>}).
struct LinkStats {
  obs::Counter transfers;
  obs::Counter bytes;
  obs::Gauge peak_flows;
};

/// One direction of a shared network link, modelled as fluid processor
/// sharing: n active transfers each progress at bandwidth/n. This is the
/// mechanism behind Fig 2's 1 GbE curve — booting time grows linearly
/// once the concurrent on-demand streams saturate the storage node's
/// link.
///
/// Implementation: on every arrival/departure the remaining byte counts
/// are advanced and the single pending completion timer is rescheduled
/// for the earliest-finishing flow. O(active flows) per event.
class Link {
 public:
  /// `bandwidth_bps` in *bytes* per second; `latency` one-way.
  Link(sim::SimEnv& env, double bandwidth_Bps, sim::SimTime latency,
       std::string name = "link")
      : env_(env), bw_(bandwidth_Bps), latency_(latency),
        name_(std::move(name)) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  ~Link() {
    if (hub_ != nullptr) hub_->registry.detach(this);
  }

  /// Export this link's counters as net.link.*{link=<name>} and trace
  /// transfers onto a per-link track.
  void bind_obs(obs::Hub* hub) {
    hub_ = hub;
    if (hub_ == nullptr) return;
    const obs::Labels ls{{"link", name_}};
    hub_->registry.attach_counter("net.link.transfers", ls, &stats_.transfers,
                                  this);
    hub_->registry.attach_counter("net.link.bytes", ls, &stats_.bytes, this);
    hub_->registry.attach_gauge("net.link.peak_flows", ls, &stats_.peak_flows,
                                this);
    track_ = hub_->tracer.track("net/" + name_);
  }

  /// Move `bytes` across the link: one-way latency, then a fair share of
  /// the bandwidth until completion.
  sim::Task<void> transfer(std::uint64_t bytes) {
    ++stats_.transfers;
    stats_.bytes += bytes;
    obs::Span sp;
    if (obs::tracing(hub_)) {
      sp = hub_->tracer.span(track_, "link.transfer", "net",
                             "\"bytes\":" + std::to_string(bytes));
    }
    co_await env_.delay(latency_);
    if (bytes == 0) co_return;

    advance();
    auto flow = std::make_shared<Flow>(static_cast<double>(bytes), env_);
    flows_.push_back(flow);
    stats_.peak_flows.set_max(static_cast<double>(flows_.size()));
    reschedule();
    co_await flow->done.wait();
  }

  [[nodiscard]] std::size_t active_flows() const noexcept {
    return flows_.size();
  }
  [[nodiscard]] double bandwidth() const noexcept { return bw_; }
  [[nodiscard]] sim::SimTime latency() const noexcept { return latency_; }
  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = LinkStats{}; }

 private:
  struct Flow {
    Flow(double bytes, sim::SimEnv& env) : remaining(bytes), done(env) {}
    double remaining;  // bytes
    sim::Event done;
  };

  [[nodiscard]] double rate() const noexcept {
    return flows_.empty() ? bw_ : bw_ / static_cast<double>(flows_.size());
  }

  /// Progress all flows from last_update_ to now.
  void advance() {
    const sim::SimTime now = env_.now();
    if (!flows_.empty() && now > last_update_) {
      const double progressed =
          rate() * sim::to_seconds(now - last_update_);
      for (auto& f : flows_) f->remaining -= progressed;
    }
    last_update_ = now;
  }

  void reschedule() {
    if (timer_ != 0) {
      env_.cancel(timer_);
      timer_ = 0;
    }
    if (flows_.empty()) return;
    double min_remaining = flows_.front()->remaining;
    for (const auto& f : flows_) {
      min_remaining = std::min(min_remaining, f->remaining);
    }
    const double secs = std::max(0.0, min_remaining) / rate();
    // +1ns guards against an infinite zero-step loop from rounding.
    timer_ = env_.call_at(env_.now() + sim::from_seconds(secs) + 1,
                          [this] { on_timer(); });
  }

  void on_timer() {
    timer_ = 0;
    advance();
    // Complete every flow that has (numerically) drained.
    for (auto it = flows_.begin(); it != flows_.end();) {
      if ((*it)->remaining <= 0.5) {
        (*it)->done.trigger();
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    reschedule();
  }

  sim::SimEnv& env_;
  double bw_;
  sim::SimTime latency_;
  std::string name_;
  std::list<std::shared_ptr<Flow>> flows_;
  sim::SimTime last_update_ = 0;
  sim::SimEnv::TimerId timer_ = 0;
  LinkStats stats_;
  obs::Hub* hub_ = nullptr;
  std::uint32_t track_ = 0;
};

/// A full-duplex network between the storage node and the compute nodes:
/// `down` carries storage->compute payloads (the hot direction for VM
/// boot), `up` carries requests and compute->storage pushes (cache
/// write-back, Fig 13).
struct NetworkParams {
  double bandwidth_Bps;
  sim::SimTime latency;
  std::string name;
};

class Network {
 public:
  Network(sim::SimEnv& env, const NetworkParams& p)
      : down(env, p.bandwidth_Bps, p.latency, p.name + ".down"),
        up(env, p.bandwidth_Bps, p.latency, p.name + ".up"),
        name_(p.name) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void bind_obs(obs::Hub* hub) {
    down.bind_obs(hub);
    up.bind_obs(hub);
  }

  Link down;
  Link up;

 private:
  std::string name_;
};

/// DAS-4's commodity network: 1 Gb/s Ethernet, ~125 MB/s usable, ~50 us
/// one-way latency.
inline NetworkParams gigabit_ethernet() {
  return {125e6, sim::from_micros(50), "1GbE"};
}

/// DAS-4's premium network: QDR InfiniBand, 32 Gb/s theoretical; ~3.2
/// GB/s effective with ~2 us latency (IPoIB-ish, conservative).
inline NetworkParams infiniband_qdr() {
  return {3.2e9, sim::from_micros(2), "32GbIB"};
}

}  // namespace vmic::net
