#include "boot/vm.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/sync.hpp"

namespace vmic::boot {

namespace {

/// Shared state between a boot and its outstanding prefetch tasks.
struct PrefetchState {
  explicit PrefetchState(sim::SimEnv& env) : drained(env) {}
  int inflight = 0;
  bool closing = false;  // boot finished, waiting for stragglers
  std::uint64_t bytes = 0;
  sim::Event drained;    // one-shot: triggered only during closing
};

sim::Task<void> prefetch_one(block::BlockDevice& dev, std::uint64_t off,
                             std::uint32_t len,
                             std::shared_ptr<PrefetchState> st) {
  std::vector<std::uint8_t> buf(len);
  // Best effort: a failing prefetch must not disturb the boot.
  (void)co_await dev.read(off, buf);
  st->bytes += len;
  if (--st->inflight == 0 && st->closing) st->drained.trigger();
}

}  // namespace

sim::Task<Result<BootResult>> boot_vm(sim::SimEnv& env,
                                      block::BlockDevice& dev,
                                      const BootTrace& trace,
                                      BootOptions opts) {
  BootResult res;
  const sim::SimTime start = env.now();
  std::vector<std::uint8_t> buf;
  auto prefetch = std::make_shared<PrefetchState>(env);

  for (const BootOp& op : trace.ops) {
    if (op.cpu_gap > 0) co_await env.delay(op.cpu_gap);
    buf.resize(op.length);
    const sim::SimTime io_start = env.now();
    if (op.kind == BootOp::Kind::read) {
      VMIC_CO_TRY_VOID(co_await dev.read(op.offset, buf));
      res.read_wait_seconds += sim::to_seconds(env.now() - io_start);
      res.bytes_read += op.length;
      ++res.read_ops;
      // Sequential next-range prefetch (§7.3), off the guest's critical
      // path.
      if (opts.prefetch_bytes > 0 &&
          prefetch->inflight < opts.max_inflight_prefetch) {
        const std::uint64_t next = op.offset + op.length;
        if (next + opts.prefetch_bytes <= dev.size()) {
          ++prefetch->inflight;
          env.spawn(prefetch_one(dev, next, opts.prefetch_bytes, prefetch));
        }
      }
    } else {
      VMIC_CO_TRY_VOID(co_await dev.write(op.offset, buf));
      res.write_wait_seconds += sim::to_seconds(env.now() - io_start);
      res.bytes_written += op.length;
    }
  }

  // The device is closed by the caller right after the boot: wait for any
  // stragglers so nothing touches a dying device.
  prefetch->closing = true;
  if (prefetch->inflight > 0) co_await prefetch->drained.wait();
  res.prefetched_bytes = prefetch->bytes;

  // "Connect back" to the deployment service: one small network-ish beat.
  co_await env.delay(sim::from_millis(5));
  res.boot_seconds = sim::to_seconds(env.now() - start);
  co_return res;
}

}  // namespace vmic::boot
