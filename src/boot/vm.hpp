#pragma once

#include <cstdint>

#include "block/device.hpp"
#include "boot/trace.hpp"
#include "sim/env.hpp"

namespace vmic::boot {

/// Outcome of one simulated VM boot.
struct BootResult {
  double boot_seconds = 0;       ///< KVM start -> "connect back" (§5)
  double read_wait_seconds = 0;  ///< time blocked on reads (§7.3: ~17 %)
  double write_wait_seconds = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t prefetched_bytes = 0;  ///< issued by the prefetcher, if any
};

/// Optional boot-time behaviours.
struct BootOptions {
  /// Sequential next-range prefetching (§7.3): after each guest read,
  /// asynchronously read this many following bytes through the chain,
  /// warming caches ahead of the guest. 0 disables. The paper's
  /// "preliminary experience with prefetching showed no substantial
  /// benefit" — bench_ablation_prefetch measures exactly that.
  std::uint32_t prefetch_bytes = 0;
  /// Cap on concurrently outstanding prefetch reads.
  int max_inflight_prefetch = 4;
};

/// Replay a boot trace through a block-device chain inside the simulation:
/// each op waits its cpu gap, then performs blocking guest I/O against the
/// device — exactly the boot-time behaviour the paper measures ("from
/// invoking KVM until the VM connects back").
sim::Task<Result<BootResult>> boot_vm(sim::SimEnv& env,
                                      block::BlockDevice& dev,
                                      const BootTrace& trace,
                                      BootOptions opts = {});

}  // namespace vmic::boot
