#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace vmic::boot {

/// Statistical description of one OS's boot-time I/O behaviour, calibrated
/// against the paper:
///  * `unique_read_bytes` — Table 1 (read working set);
///  * `image_size` — chosen so that working set + QCOW2 metadata (L1
///    sized by the *virtual* disk, L2 by the cached data) reproduces the
///    warm cache sizes of Table 2;
///  * `cpu_seconds` — sized so a single-node boot takes the paper's
///    ~30-40 s with read-wait ≈ 17 % of boot (§7.3 for CentOS).
struct OsProfile {
  std::string name;
  std::uint64_t image_size;         ///< virtual disk size
  std::uint64_t unique_read_bytes;  ///< Table 1 target
  double cpu_seconds;               ///< non-I/O boot work
  std::uint64_t write_bytes;        ///< guest writes during boot (logs, tmp)
  std::uint64_t mean_run_bytes;     ///< contiguous read-run length
  std::uint64_t max_read_bytes;     ///< single read request cap
  double reread_fraction;           ///< ops that re-read earlier data
  int parallel_streams;             ///< concurrently-read "files"
  std::uint64_t seed;               ///< base RNG seed for this OS
};

/// CentOS 6.3 — Table 1: 85.2 MB unique reads; Table 2: 93 MB warm cache.
inline OsProfile centos63() {
  return {
      .name = "CentOS 6.3",
      .image_size = 10 * GiB,
      .unique_read_bytes = static_cast<std::uint64_t>(85.2 * MiB),
      .cpu_seconds = 32.0,
      .write_bytes = 8 * MiB,
      .mean_run_bytes = 32 * KiB,
      .max_read_bytes = 128 * KiB,
      .reread_fraction = 0.22,
      .parallel_streams = 4,
      .seed = 0xCE27'0563,
  };
}

/// Debian 6.0.7 (the ConPaaS services image) — Table 1: 24.9 MB; Table 2:
/// 40 MB warm cache. The large virtual size (fully-allocated L1) is what
/// accounts for the Table 2 gap.
inline OsProfile debian607() {
  return {
      .name = "Debian 6.0.7",
      .image_size = 50 * GiB,
      .unique_read_bytes = static_cast<std::uint64_t>(24.9 * MiB),
      .cpu_seconds = 21.0,
      .write_bytes = 4 * MiB,
      .mean_run_bytes = 64 * KiB,
      .max_read_bytes = 128 * KiB,
      .reread_fraction = 0.10,
      .parallel_streams = 4,
      .seed = 0xDEB1'0607,
  };
}

/// Windows Server 2012 — Table 1: 195.8 MB; Table 2: 201 MB warm cache.
inline OsProfile windows2012() {
  return {
      .name = "Windows Server 2012",
      .image_size = 12 * GiB,
      .unique_read_bytes = static_cast<std::uint64_t>(195.8 * MiB),
      .cpu_seconds = 68.0,
      .write_bytes = 24 * MiB,
      .mean_run_bytes = 96 * KiB,
      .max_read_bytes = 256 * KiB,
      .reread_fraction = 0.15,
      .parallel_streams = 6,
      .seed = 0x3112'2012,
  };
}

/// §8 future work: "apply our caching scheme to memory snapshots of
/// already booted virtual machines, starting from which instead of the VM
/// image could improve the VM starting time even further."
///
/// A resume-from-snapshot is modelled as another block workload: the
/// "image" is the snapshot file (guest RAM + device state), the working
/// set is the pages the guest touches right after resume, and the CPU
/// share is tiny — resuming skips the init work that dominates a boot.
/// The same cache chain (snapshot <- cache <- CoW) applies unchanged.
inline OsProfile snapshot_restore_profile(const OsProfile& os) {
  OsProfile p = os;
  p.name = os.name + " (snapshot resume)";
  p.image_size = 2 * GiB;  // guest RAM size
  // Post-resume page working set: the resident set of the freshly booted
  // services, on the order of the boot working set.
  p.unique_read_bytes = os.unique_read_bytes + os.unique_read_bytes / 3;
  p.cpu_seconds = 2.5;  // device re-plumbing + first scheduling beats
  p.write_bytes = os.write_bytes / 2;  // dirtied pages go to the CoW layer
  p.mean_run_bytes = 16 * KiB;  // page-in is choppier than file reads
  p.max_read_bytes = 64 * KiB;
  p.reread_fraction = 0.05;  // resumed pages stay resident
  p.parallel_streams = 8;
  p.seed = os.seed ^ 0x5AAF0000ull;
  return p;
}

}  // namespace vmic::boot
