#pragma once

#include <cstdint>
#include <vector>

#include "boot/profile.hpp"
#include "sim/time.hpp"

namespace vmic::boot {

/// One guest block-I/O operation during boot, preceded by `cpu_gap` of
/// compute.
struct BootOp {
  enum class Kind : std::uint8_t { read, write };
  Kind kind;
  std::uint64_t offset;
  std::uint32_t length;
  sim::SimTime cpu_gap;
};

/// A deterministic boot trace: replaying it through a block device (with
/// the cpu gaps) reproduces the OS's boot behaviour against any image
/// chain.
struct BootTrace {
  std::vector<BootOp> ops;
  std::uint64_t unique_read_bytes = 0;  ///< measured working set (Table 1)
  std::uint64_t total_read_bytes = 0;
  std::uint64_t total_write_bytes = 0;
  double cpu_seconds = 0;
};

/// Generate the boot trace for `profile`. Deterministic in
/// (profile.seed, salt): the same VMI always boots the same way — which is
/// also what makes sharing a warm cache across VMs of one VMI sound.
/// `salt` differentiates *distinct* VMIs built from the same OS (Fig 3's
/// 64 identical-but-independent copies).
BootTrace generate_boot_trace(const OsProfile& profile,
                              std::uint64_t salt = 0);

}  // namespace vmic::boot
