#include "boot/trace.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "util/align.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"

namespace vmic::boot {

namespace {

constexpr std::uint64_t kAlign = 512;  // guest I/O is sector-aligned

struct Run {
  std::uint64_t start;
  std::uint64_t len;
};

/// Read-request size distribution during boot: mostly small (page-sized
/// and a bit above), occasionally larger readahead-shaped requests.
std::uint64_t pick_read_size(Rng& rng, std::uint64_t cap) {
  const double u = rng.uniform();
  std::uint64_t size;
  if (u < 0.15) {
    size = 512 * (1 + rng.below(4));  // 512 B .. 2 KiB (metadata-ish)
  } else if (u < 0.45) {
    size = 4096;
  } else if (u < 0.65) {
    size = 8192;
  } else if (u < 0.80) {
    size = 16 * 1024;
  } else if (u < 0.92) {
    size = 32 * 1024;
  } else {
    size = 64 * 1024;
  }
  size = std::min<std::uint64_t>(size, cap);
  return std::max<std::uint64_t>(kAlign, align_down(size, kAlign));
}

}  // namespace

BootTrace generate_boot_trace(const OsProfile& p, std::uint64_t salt) {
  std::uint64_t seed_state = p.seed;
  const std::uint64_t mixed = splitmix64(seed_state) ^ (salt * 0x9E3779B97F4A7C15ull);
  Rng rng{mixed};

  BootTrace trace;
  trace.cpu_seconds = p.cpu_seconds;

  // ---- 1. Lay out the read working set as contiguous runs scattered
  // across the image (files the OS touches while booting).
  IntervalSet unique;
  std::deque<Run> runs;
  while (unique.total() < p.unique_read_bytes) {
    std::uint64_t len = align_down(
        static_cast<std::uint64_t>(
            rng.lognormal(static_cast<double>(p.mean_run_bytes), 0.9)),
        kAlign);
    len = std::clamp<std::uint64_t>(len, 4 * 1024, 1024 * 1024);
    len = std::min(len, p.unique_read_bytes - unique.total() + 4 * 1024);
    len = std::max<std::uint64_t>(align_down(len, kAlign), kAlign);
    const std::uint64_t start =
        align_down(rng.below(p.image_size - len), kAlign);
    unique.insert(start, start + len);
    runs.push_back(Run{start, len});
  }
  trace.unique_read_bytes = unique.total();

  // ---- 2. Interleave the runs through a few concurrent streams
  // (parallel readers during boot), chopping each run into sector-aligned
  // requests; sprinkle re-reads and guest writes in between.
  struct Stream {
    Run run{0, 0};
    std::uint64_t done = 0;
    bool active = false;
  };
  std::vector<Stream> streams(
      static_cast<std::size_t>(std::max(1, p.parallel_streams)));

  std::uint64_t writes_left = align_down(p.write_bytes, kAlign);
  std::vector<BootOp> completed_reads;  // re-read candidates
  std::vector<BootOp> write_targets;    // the boot's few writable files

  auto refill = [&](Stream& s) {
    if (runs.empty()) {
      s.active = false;
      return;
    }
    s.run = runs.front();
    runs.pop_front();
    s.done = 0;
    s.active = true;
  };
  for (auto& s : streams) refill(s);

  auto any_active = [&] {
    for (const auto& s : streams) {
      if (s.active) return true;
    }
    return false;
  };

  while (any_active()) {
    Stream& s = streams[rng.below(streams.size())];
    if (!s.active) continue;
    const std::uint64_t remaining = s.run.len - s.done;
    const std::uint64_t size = pick_read_size(rng, remaining);
    BootOp op{BootOp::Kind::read, s.run.start + s.done,
              static_cast<std::uint32_t>(size), 0};
    trace.ops.push_back(op);
    trace.total_read_bytes += size;
    completed_reads.push_back(op);
    s.done += size;
    if (s.done >= s.run.len) refill(s);

    // Occasional re-read of something already fetched (guest page cache
    // misses on shared libraries, config re-parses, ...).
    if (!completed_reads.empty() && rng.chance(p.reread_fraction)) {
      const BootOp& prev = completed_reads[rng.below(completed_reads.size())];
      BootOp rr = prev;
      rr.length = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(prev.length, pick_read_size(rng, prev.length)));
      trace.ops.push_back(rr);
      trace.total_read_bytes += rr.length;
    }

    // Guest writes (logs, state files) interleave at a low rate. Boot
    // writes overwhelmingly target files the boot already touched
    // (/var/log, /var/run, ...), i.e. they fall inside the read working
    // set — which is why the Table 2 warm-cache sizes track the Table 1
    // working sets so closely (copy-on-write fills add no new data).
    if (writes_left > 0 && !completed_reads.empty() && rng.chance(0.08)) {
      // A boot writes to a handful of files, repeatedly — not to hundreds
      // of scattered locations. Keep a small set of write targets.
      if (write_targets.size() < 12) {
        write_targets.push_back(
            completed_reads[rng.below(completed_reads.size())]);
      }
      const BootOp& near = write_targets[rng.below(write_targets.size())];
      std::uint64_t wlen = std::min<std::uint64_t>(
          writes_left, 4096 * (1 + rng.below(12)));
      wlen = std::min<std::uint64_t>(wlen, near.length);
      wlen = std::max<std::uint64_t>(align_down(wlen, kAlign), kAlign);
      trace.ops.push_back(BootOp{BootOp::Kind::write, near.offset,
                                 static_cast<std::uint32_t>(wlen), 0});
      trace.total_write_bytes += wlen;
      writes_left -= wlen;
    }
  }

  // ---- 3. Distribute the CPU work across the ops: exponential gaps
  // normalised to sum exactly to cpu_seconds.
  std::vector<double> gaps(trace.ops.size());
  double total = 0;
  for (auto& g : gaps) {
    g = rng.exponential(1.0);
    total += g;
  }
  const double scale = total > 0 ? p.cpu_seconds / total : 0.0;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    trace.ops[i].cpu_gap = sim::from_seconds(gaps[i] * scale);
  }

  return trace;
}

}  // namespace vmic::boot
