#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace vmic::cluster {

/// What Algorithm 1 decided and did.
struct PlacementOutcome {
  enum class Action {
    local_warm_hit,       ///< node already had the cache (line 1-2)
    chained_to_storage,   ///< new node cache chained to the storage-memory
                          ///< cache (lines 3-8)
    created_fresh,        ///< no cache anywhere: create + copy back later
  };
  Action action;
  /// Backing path (in the node's namespace) the CoW image should chain to.
  std::string backing;
  /// The cache must be pushed to the storage node after VM shutdown.
  bool copy_back_on_shutdown = false;
  /// A disk-resident storage-side cache was staged into tmpfs first.
  bool staged_disk_to_tmpfs = false;
  /// Base images whose node caches the admission evicted (their files
  /// were removed from the node's disk inside placement). Lets callers
  /// that mirror per-node disk state stay consistent without re-listing
  /// the directory.
  std::vector<std::string> evicted;
};

/// The paper's Algorithm 1: "Chaining to a proper cache VMI" (§6).
///
///   if Cache_base exists in C:            return it (local, cheapest)
///   if Cache_base exists in S:
///     if it is on S's disk:               copy it to tmpfs
///     create NewCache on C chained to S's cache; return NewCache
///   create Cache on C chained to Base; copy it to S on VM shutdown
///
/// `base` is the base image's file name on the storage node ("img-0");
/// the returned backing path is relative to the compute node's mounts.
sim::Task<Result<PlacementOutcome>> chain_to_proper_cache(
    Cluster& cl, ComputeNode& node, const std::string& base,
    std::uint64_t quota, std::uint32_t cache_cluster_bits = 9,
    std::uint64_t virtual_size = 0);

/// The copy-back step of Algorithm 1's last branch, run after VM shutdown
/// (Fig 13): streams the node's cache image into the storage node's tmpfs
/// and registers it in the storage memory pool.
sim::Task<Result<void>> copy_cache_back(Cluster& cl, ComputeNode& node,
                                        const std::string& base);

/// Canonical cache file name for a base image.
inline std::string cache_file_for(const std::string& base) {
  return "cache-" + base + ".qcow2";
}

}  // namespace vmic::cluster
