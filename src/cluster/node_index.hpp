#pragma once

// Incremental index over a scheduler's NodeState vector, replacing the
// O(nodes) linear scan in pick_node() with O(log n) bucket lookups. The
// engine drives it: whenever a node's running_vms / vm_capacity / load /
// warm set changes, the owner calls node_changed() / warm_added() /
// warm_removed(), and pick() then answers placement queries from sorted
// buckets. pick() returns exactly what cluster::pick_node would return
// on the same NodeState vector — a differential test in test_cluster.cpp
// pins that equivalence on randomized states.

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/scheduler.hpp"

namespace vmic::cluster {

class NodeIndex {
 public:
  explicit NodeIndex(const std::vector<NodeState>* nodes) : nodes_(nodes) {
    slots_.resize(nodes_->size());
    for (std::size_t i = 0; i < nodes_->size(); ++i) {
      index_node(static_cast<int>(i));
    }
  }

  /// Re-slot one node after its running_vms, vm_capacity or load changed.
  void node_changed(int ni) {
    deindex_node(ni);
    index_node(ni);
  }

  /// Node `ni` gained / lost a warm cache for `vmi`.
  void warm_added(int ni, const std::string& vmi) { warm_[vmi].insert(ni); }
  void warm_removed(int ni, const std::string& vmi) {
    auto it = warm_.find(vmi);
    if (it == warm_.end()) return;
    it->second.erase(ni);
    if (it->second.empty()) warm_.erase(it);
  }

  /// Nodes currently holding a warm cache of `vmi`, or nullptr when none
  /// do. The peer cache tier uses this as its cluster-wide seed lookup —
  /// the warm-holder map doubles as the seed directory, so only adopted
  /// caches on live nodes ever serve (crashes clear a node's warm set).
  [[nodiscard]] const std::set<int>* warm_holders(
      const std::string& vmi) const {
    auto it = warm_.find(vmi);
    return it == warm_.end() ? nullptr : &it->second;
  }

  /// Equivalent of pick_node(*nodes, policy, vmi, cache_aware): node index
  /// with spare capacity, or -1. Warm-cache nodes dominate cold ones when
  /// cache_aware; within a tier the policy's preference order decides,
  /// ties to the lowest id.
  [[nodiscard]] int pick(SchedPolicy policy, const std::string& vmi,
                         bool cache_aware) const {
    if (cache_aware) {
      if (auto it = warm_.find(vmi); it != warm_.end()) {
        // Warm holders of one VMI are few; a linear pass over them keeps
        // the index free of per-(vmi, policy) structures.
        int best = -1;
        for (int ni : it->second) {
          const NodeState& n = (*nodes_)[static_cast<std::size_t>(ni)];
          if (n.running_vms >= n.vm_capacity) continue;
          if (best < 0 ||
              better(policy, n, (*nodes_)[static_cast<std::size_t>(best)])) {
            best = ni;
          }
        }
        if (best >= 0) return best;
      }
    }
    switch (policy) {
      case SchedPolicy::packing:
        return by_count_.empty() ? -1 : *by_count_.rbegin()->second.begin();
      case SchedPolicy::striping:
        return by_count_.empty() ? -1 : *by_count_.begin()->second.begin();
      case SchedPolicy::load_aware:
        return by_load_.empty() ? -1 : *by_load_.begin()->second.begin();
    }
    return -1;
  }

 private:
  /// pick_node's `better` predicate: true if a is strictly preferred.
  static bool better(SchedPolicy policy, const NodeState& a,
                     const NodeState& b) {
    switch (policy) {
      case SchedPolicy::packing:
        if (a.running_vms != b.running_vms) {
          return a.running_vms > b.running_vms;
        }
        return a.id < b.id;
      case SchedPolicy::striping:
        if (a.running_vms != b.running_vms) {
          return a.running_vms < b.running_vms;
        }
        return a.id < b.id;
      case SchedPolicy::load_aware:
        if (a.load != b.load) return a.load < b.load;
        return a.id < b.id;
    }
    return a.id < b.id;
  }

  void index_node(int ni) {
    const NodeState& n = (*nodes_)[static_cast<std::size_t>(ni)];
    Slot& s = slots_[static_cast<std::size_t>(ni)];
    s.eligible = n.running_vms < n.vm_capacity;
    if (!s.eligible) return;
    s.running = n.running_vms;
    s.load = n.load;
    by_count_[s.running].insert(ni);
    by_load_[s.load].insert(ni);
  }

  void deindex_node(int ni) {
    Slot& s = slots_[static_cast<std::size_t>(ni)];
    if (!s.eligible) return;
    auto ci = by_count_.find(s.running);
    ci->second.erase(ni);
    if (ci->second.empty()) by_count_.erase(ci);
    auto li = by_load_.find(s.load);
    li->second.erase(ni);
    if (li->second.empty()) by_load_.erase(li);
    s.eligible = false;
  }

  /// The keys a node was indexed under (so node_changed can unindex it
  /// after the underlying NodeState already moved on).
  struct Slot {
    bool eligible = false;
    int running = 0;
    double load = 0.0;
  };

  const std::vector<NodeState>* nodes_;
  std::vector<Slot> slots_;
  /// Nodes with spare capacity, bucketed by running_vms (striping scans
  /// from the front, packing from the back) and by load (load_aware).
  std::map<int, std::set<int>> by_count_;
  std::map<double, std::set<int>> by_load_;
  /// vmi -> nodes holding a warm cache for it.
  std::unordered_map<std::string, std::set<int>> warm_;
};

}  // namespace vmic::cluster
