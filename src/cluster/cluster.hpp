#pragma once

#include <memory>
#include <vector>

#include "cache/pool.hpp"
#include "io/mount_table.hpp"
#include "net/link.hpp"
#include "nfs/nfs.hpp"
#include "obs/hub.hpp"
#include "sim/env.hpp"
#include "storage/cached_medium.hpp"
#include "storage/disk.hpp"
#include "storage/sim_directory.hpp"
#include "util/units.hpp"

namespace vmic::cluster {

/// DAS-4-shaped cluster description (§5): one storage node running an NFS
/// server, N compute nodes, one shared network between them.
struct ClusterParams {
  int compute_nodes = 64;
  net::NetworkParams network = net::gigabit_ethernet();
  nfs::NfsParams nfs = {};
  /// DAS-4 nodes run two 7200-RPM spindles in software RAID-0: under
  /// load the two arms position concurrently, so the *effective*
  /// per-request positioning is about half a single drive's 8.5 ms.
  storage::DiskParams storage_disk = {.positioning_ms = 4.5};
  storage::DiskParams compute_disk = {.positioning_ms = 4.5};
  /// Storage node page cache (24 GB RAM, ~20 GB usable for file cache).
  std::uint64_t storage_page_cache = 20 * GiB;
  /// Per-compute-node budget for VMI cache images (§3.3).
  std::uint64_t node_cache_capacity = 4 * GiB;
  /// Compute-node page cache over its local disk (24 GB RAM nodes).
  std::uint64_t node_page_cache = 16 * GiB;
  cache::EvictionPolicy eviction = cache::EvictionPolicy::lru;
  /// External observability hub; nullptr = the Cluster owns a private one
  /// (reachable via Cluster::obs). Counters are always live; tracing is
  /// opt-in via hub->tracer.set_enabled(true).
  obs::Hub* hub = nullptr;
};

/// The storage node: RAID-0 disks behind a page cache, tmpfs, and an NFS
/// server exporting both ("base" from disk, "tmpfs" from memory — the
/// paper's tmpfs exports).
class StorageNode {
 public:
  StorageNode(sim::SimEnv& env, const ClusterParams& p)
      : disk_raw(env, p.storage_disk),
        disk(env, disk_raw, p.storage_page_cache),
        mem(env),
        disk_dir(disk),
        mem_dir(mem),
        nfs(env, p.nfs),
        mem_pool(p.storage_page_cache / 2, p.eviction) {
    nfs.add_export("base", &disk_dir);
    nfs.add_export("tmpfs", &mem_dir);
  }

  /// Attach every component's counters under node="storage0" labels.
  void bind_obs(obs::Hub* hub) {
    const obs::Labels ls{{"node", "storage0"}};
    disk_raw.bind_obs(hub, ls, "storage0/disk");
    disk.bind_obs(hub, ls, "storage0/pagecache");
    mem.bind_obs(hub, ls, "storage0/mem");
    nfs.bind_obs(hub, "storage0");
    mem_pool.bind_obs(hub, obs::Labels{{"node", "storage0"},
                                       {"tier", "mem"}});
  }

  storage::RotationalDisk disk_raw;
  storage::CachedMedium disk;
  storage::MemMedium mem;
  storage::SimDirectory disk_dir;
  storage::SimDirectory mem_dir;
  nfs::NfsServer nfs;
  /// Accounting for cache images held in storage-node memory (§6).
  cache::CachePool mem_pool;
};

/// A compute node: local disk + tmpfs, NFS mounts of the storage node's
/// exports, one unified file namespace for the block layer:
///   disk/...      local disk (writeback)
///   disksync/...  local disk with synchronous writes
///   mem/...       local tmpfs
///   nfs-base/...  storage node's disk export
///   nfs-mem/...   storage node's tmpfs export
class ComputeNode {
 public:
  ComputeNode(sim::SimEnv& env, int node_id, StorageNode& storage,
              net::Network& network, const ClusterParams& p)
      : id(node_id),
        disk_raw(env, p.compute_disk),
        disk(env, disk_raw, p.node_page_cache),
        mem(env),
        disk_dir(disk, /*sync_writes=*/false),
        disk_sync_dir(disk, /*sync_writes=*/true),
        mem_dir(mem),
        base_mount(storage.nfs, network, "base"),
        tmpfs_mount(storage.nfs, network, "tmpfs"),
        pool(p.node_cache_capacity, p.eviction) {
    fs.mount("disk", &disk_dir);
    fs.mount("disksync", &disk_sync_dir);
    fs.mount("mem", &mem_dir);
    fs.mount("nfs-base", &base_mount);
    fs.mount("nfs-mem", &tmpfs_mount);
  }

  /// Attach every component's counters under node="compute<id>" labels.
  void bind_obs(obs::Hub* hub) {
    const std::string node = "compute" + std::to_string(id);
    const obs::Labels ls{{"node", node}};
    disk_raw.bind_obs(hub, ls, node + "/disk");
    disk.bind_obs(hub, ls, node + "/pagecache");
    mem.bind_obs(hub, ls, node + "/mem");
    pool.bind_obs(hub, ls);
  }

  int id;
  storage::RotationalDisk disk_raw;
  /// The node's disk behind its own page cache (readahead + residency).
  storage::CachedMedium disk;
  storage::MemMedium mem;
  /// Local-disk files under the kernel's writeback cache (QEMU's default
  /// cache mode): writes are absorbed asynchronously.
  storage::SimDirectory disk_dir;
  /// Same disk, O_SYNC semantics — what a cold cache *created on disk*
  /// experiences (Fig 8's slow variant).
  storage::SimDirectory disk_sync_dir;
  storage::SimDirectory mem_dir;
  nfs::NfsMount base_mount;
  nfs::NfsMount tmpfs_mount;
  io::MountTable fs;
  /// Accounting for cache images on this node's disk (§3.3/§3.4).
  cache::CachePool pool;
};

/// The whole testbed: environment, network, storage node, compute nodes.
class Cluster {
 public:
  explicit Cluster(const ClusterParams& p) : params(p), net(env, p.network),
                                             storage(env, p) {
    obs = p.hub != nullptr ? p.hub : &obs_own_;
    obs->tracer.bind(&env);
    net.bind_obs(obs);
    storage.bind_obs(obs);
    nodes.reserve(static_cast<std::size_t>(p.compute_nodes));
    for (int i = 0; i < p.compute_nodes; ++i) {
      nodes.push_back(std::make_unique<ComputeNode>(env, i, storage, net, p));
      nodes.back()->bind_obs(obs);
    }
  }

  ClusterParams params;

 private:
  /// Declared before every bound component so it is destroyed after them
  /// (their destructors detach from obs->registry).
  obs::Hub obs_own_;

 public:
  /// The hub all components report into (params.hub or obs_own_).
  obs::Hub* obs = nullptr;
  sim::SimEnv env;
  net::Network net;
  StorageNode storage;
  std::vector<std::unique_ptr<ComputeNode>> nodes;
};

}  // namespace vmic::cluster
