#pragma once

#include <string>
#include <vector>

#include "boot/profile.hpp"
#include "boot/vm.hpp"
#include "cluster/cluster.hpp"
#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace vmic::cluster {

/// Where VMI caches live (§3.3/§6); `none` is the plain-QCOW2 baseline
/// and `full_copy` is §2's naive pre-copy deployment (transfer the whole
/// VMI to the node, then boot locally).
enum class CacheMode { none, full_copy, compute_disk, storage_mem };

/// Whether the measured boots start from pre-warmed caches or create them
/// on the fly (copy-on-read during the measured boot).
enum class CacheState { cold, warm };

struct ScenarioConfig {
  boot::OsProfile profile = boot::centos63();
  int num_vms = 64;
  int num_vmis = 1;  ///< independent base-image copies (Fig 3/12/14)
  CacheMode mode = CacheMode::none;
  CacheState state = CacheState::cold;
  std::uint64_t cache_quota = 250 * MiB;
  std::uint32_t cache_cluster_bits = 9;  ///< the paper's 512 B pick (§5.1)
  /// Cold caches are created in compute-node memory and flushed to disk
  /// after shutdown (§5.1 "final arrangement"); false puts them directly
  /// on the compute disk — the slow variant of Fig 8.
  bool cold_cache_on_mem = true;
  /// Fig 14: add the cache push-back transfer to the creator's boot time.
  bool include_transfer_in_boot = true;
  /// Pre-load the storage node's page cache with the base images' boot
  /// working sets. Models the steady state of the paper's single-VMI
  /// experiments (the base stays resident across repeated runs). The
  /// many-VMI experiments (Fig 3/12/14) use fresh image copies whose
  /// contents were long evicted — set this to false there.
  bool storage_cache_prewarmed = true;
  /// Boot-time sequential prefetching (§7.3 ablation); 0 = off.
  std::uint32_t prefetch_bytes = 0;
  /// With state == warm and mode == compute_disk: the fraction of nodes
  /// that actually hold a warm cache; the rest boot from a cold one
  /// (§5.3.1's mixed scenario, which the paper discusses but does not
  /// quantify).
  double warm_node_fraction = 1.0;
};

struct VmOutcome {
  int vm = 0;
  int node = 0;
  int vmi = 0;
  boot::BootResult boot;
  double cache_transfer_seconds = 0;  ///< Fig 13/14 push-back, if any
  bool warm = false;                  ///< booted from a warm cache
};

struct ScenarioResult {
  std::vector<VmOutcome> vms;
  double mean_boot = 0;
  double min_boot = 0;
  double max_boot = 0;
  /// Traffic observed at the storage node during the measured phase
  /// (Fig 9/10's y-axis).
  std::uint64_t storage_payload_bytes = 0;
  std::uint64_t storage_disk_reads = 0;
  std::uint64_t storage_disk_bytes_read = 0;
  /// Warm cache image size per VMI after warming (Table 2), 0 if n/a.
  std::uint64_t warm_cache_file_bytes = 0;
  /// Full metrics snapshot of the cluster's hub at scenario end — every
  /// component counter (nfs.server.*, storage.*, qcow2.*, cache.pool.*,
  /// net.link.*) plus the cluster.boot_seconds histogram.
  obs::MetricsSnapshot metrics;
};

/// Build a cluster, deploy `num_vms` VMs booting from `num_vmis` base
/// images under the given caching configuration, and measure. This is the
/// engine behind every scalability figure in the paper (Figs 2, 3, 8-12,
/// 14).
ScenarioResult run_scenario(const ClusterParams& cp, const ScenarioConfig& sc);

}  // namespace vmic::cluster
