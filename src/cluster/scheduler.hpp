#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace vmic::cluster {

/// Node-selection policies modelled on OpenNebula's scheduler (§3.4).
enum class SchedPolicy { packing, striping, load_aware };

constexpr const char* to_string(SchedPolicy p) noexcept {
  switch (p) {
    case SchedPolicy::packing: return "packing";
    case SchedPolicy::striping: return "striping";
    case SchedPolicy::load_aware: return "load_aware";
  }
  return "?";
}

/// Scheduler-visible node state.
struct NodeState {
  int id = 0;
  int running_vms = 0;
  int vm_capacity = 8;
  double load = 0.0;  ///< external load metric (load-aware policy)
  std::set<std::string> warm_vmis;  ///< VMIs with a warm cache on this node
};

/// Pick a node for a VM booting `vmi`. Returns the node index in `nodes`,
/// or -1 if no node has capacity.
///
/// `cache_aware` applies the paper's heuristic on top of any base policy:
/// "allocation of VMs to nodes with an existing warm cache ... can be used
/// in conjunction with any of the above desired strategies" (§3.4) — the
/// candidate set is first narrowed to warm-cache nodes when any exist.
inline int pick_node(const std::vector<NodeState>& nodes, SchedPolicy policy,
                     const std::string& vmi, bool cache_aware) {
  auto has_capacity = [](const NodeState& n) {
    return n.running_vms < n.vm_capacity;
  };

  auto better = [&](const NodeState& a, const NodeState& b) {
    // true if a is strictly preferred over b under `policy`.
    switch (policy) {
      case SchedPolicy::packing:
        // Fullest non-full node first; ties to the lowest id.
        if (a.running_vms != b.running_vms) {
          return a.running_vms > b.running_vms;
        }
        return a.id < b.id;
      case SchedPolicy::striping:
        if (a.running_vms != b.running_vms) {
          return a.running_vms < b.running_vms;
        }
        return a.id < b.id;
      case SchedPolicy::load_aware:
        if (a.load != b.load) return a.load < b.load;
        return a.id < b.id;
    }
    return a.id < b.id;
  };

  int best = -1;
  bool best_warm = false;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeState& n = nodes[i];
    if (!has_capacity(n)) continue;
    const bool warm = cache_aware && n.warm_vmis.count(vmi) != 0;
    if (best < 0) {
      best = static_cast<int>(i);
      best_warm = warm;
      continue;
    }
    // Warm-cache nodes dominate cold ones; within a tier, the base
    // policy decides.
    if (warm != best_warm) {
      if (warm) {
        best = static_cast<int>(i);
        best_warm = true;
      }
      continue;
    }
    if (better(n, nodes[static_cast<std::size_t>(best)])) {
      best = static_cast<int>(i);
      best_warm = warm;
    }
  }
  return best;
}

}  // namespace vmic::cluster
