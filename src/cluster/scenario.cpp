#include "cluster/scenario.hpp"

#include <algorithm>
#include <cassert>

#include "boot/trace.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"
#include "util/align.hpp"
#include "util/log.hpp"

namespace vmic::cluster {

namespace {

std::string img_name(int vmi) { return "img-" + std::to_string(vmi); }
std::string cache_name(int vmi) {
  return "cache-" + std::to_string(vmi) + ".qcow2";
}

/// Timed, chunked copy between two (possibly remote) files.
sim::Task<Result<void>> copy_file(io::ImageDirectory& from_dir,
                                  const std::string& from,
                                  io::ImageDirectory& to_dir,
                                  const std::string& to) {
  VMIC_CO_TRY(src, from_dir.open_file(from, /*writable=*/false));
  VMIC_CO_TRY(dst, to_dir.create_file(to));
  const std::uint64_t size = src->size();
  std::vector<std::uint8_t> buf(1 << 20);
  for (std::uint64_t off = 0; off < size; off += buf.size()) {
    const std::uint64_t n = std::min<std::uint64_t>(buf.size(), size - off);
    std::span<std::uint8_t> chunk{buf.data(), static_cast<std::size_t>(n)};
    VMIC_CO_TRY_VOID(co_await src->pread(off, chunk));
    VMIC_CO_TRY_VOID(co_await dst->pwrite(off, chunk));
  }
  co_return ok_result();
}

/// Copy a finished cache image from a compute node to the storage node's
/// tmpfs over the network (Fig 13): reads the local file, streams it
/// through the up-link via an NFS write. Returns the transferred bytes.
sim::Task<Result<std::uint64_t>> push_cache_to_storage(
    ComputeNode& node, const std::string& local_path,
    const std::string& remote_name) {
  VMIC_CO_TRY(src, node.fs.open_file(local_path, /*writable=*/false));
  VMIC_CO_TRY(dst, node.tmpfs_mount.create_file(remote_name));
  const std::uint64_t size = src->size();
  std::vector<std::uint8_t> buf(1 << 20);
  for (std::uint64_t off = 0; off < size; off += buf.size()) {
    const std::uint64_t n =
        std::min<std::uint64_t>(buf.size(), size - off);
    std::span<std::uint8_t> chunk{buf.data(), static_cast<std::size_t>(n)};
    VMIC_CO_TRY_VOID(co_await src->pread(off, chunk));
    VMIC_CO_TRY_VOID(co_await dst->pwrite(off, chunk));
  }
  VMIC_CO_TRY_VOID(co_await dst->flush());
  co_return size;
}

struct Runner {
  Cluster cl;
  const ScenarioConfig& sc;
  std::vector<boot::BootTrace> traces;
  std::vector<VmOutcome> outcomes;
  std::uint64_t warm_cache_file_bytes = 0;
  int failures = 0;

  Runner(const ClusterParams& cp, const ScenarioConfig& sc_) : cl(cp), sc(sc_) {
    // Base images: raw, all-zero content (the trace only cares about
    // geometry), placed on the storage node's disk. Independent copies
    // per VMI (Fig 3: "64 identical but independent copies").
    for (int v = 0; v < sc.num_vmis; ++v) {
      auto be = cl.storage.disk_dir.create_file(img_name(v));
      assert(be.ok());
      (*cl.storage.disk_dir.buffer(img_name(v)))->resize(sc.profile.image_size);
      traces.push_back(
          boot::generate_boot_trace(sc.profile, static_cast<std::uint64_t>(v)));
    }
    outcomes.resize(static_cast<std::size_t>(sc.num_vms));
    if (sc.storage_cache_prewarmed) prewarm_storage_cache();
  }

  /// Mark the blocks each trace will read as resident in the storage
  /// node's page cache (steady state of repeated single-VMI runs).
  void prewarm_storage_cache() {
    storage::PageCache& pc = cl.storage.disk.page_cache();
    const std::uint64_t bs = pc.block_size();
    for (int v = 0; v < sc.num_vmis; ++v) {
      const std::uint64_t id = *cl.storage.disk_dir.file_id(img_name(v));
      for (const auto& op : traces[static_cast<std::size_t>(v)].ops) {
        // Reads hit the base directly; writes trigger copy-on-write
        // cluster fills from the base — in steady state both kinds of
        // base region are resident, so pre-warm the write ranges too
        // (expanded to the CoW cluster granularity).
        std::uint64_t lo = op.offset;
        std::uint64_t hi = op.offset + op.length;
        if (op.kind == boot::BootOp::Kind::write) {
          lo = align_down(lo, 64 * KiB);
          hi = align_up(hi, 64 * KiB);
        }
        for (std::uint64_t b = lo / bs; b <= (hi - 1) / bs; ++b) {
          pc.insert(storage::file_pos(id, b * bs));
        }
      }
    }
  }

  ComputeNode& node_for(int vm) {
    return *cl.nodes[static_cast<std::size_t>(vm) % cl.nodes.size()];
  }
  int vmi_for(int vm) const { return vm % sc.num_vmis; }

  // --- warm phase ---------------------------------------------------------

  /// Warm one cache per VMI by booting a sample VM against a cold cache
  /// (§3.2 "the system can boot a sample VM upon a new VMI registration"),
  /// then distribute the warmed file to where the scenario needs it.
  void warm_caches() {
    for (int v = 0; v < sc.num_vmis; ++v) {
      ComputeNode& node = node_for(v);
      sim::run_sync(cl.env, warm_one(node, v));
      // Distribute (setup plumbing, not part of any measured boot).
      auto size = *node.mem_dir.file_size("warm-" + cache_name(v));
      warm_cache_file_bytes = std::max(warm_cache_file_bytes, size);
      if (sc.mode == CacheMode::compute_disk) {
        const int warm_nodes = static_cast<int>(
            sc.warm_node_fraction * static_cast<double>(cl.nodes.size()) +
            0.5);
        for (int i = 0; i < sc.num_vms; ++i) {
          if (vmi_for(i) != v) continue;
          ComputeNode& n = node_for(i);
          if (n.id >= warm_nodes) continue;  // this node stays cold
          if (n.disk_dir.exists(cache_name(v))) continue;
          (void)storage::SimDirectory::clone_file(
              node.mem_dir, "warm-" + cache_name(v), n.disk_dir,
              cache_name(v));
          n.pool.admit(img_name(v), size);
        }
      } else if (sc.mode == CacheMode::storage_mem) {
        (void)storage::SimDirectory::clone_file(node.mem_dir,
                                                "warm-" + cache_name(v),
                                                cl.storage.mem_dir,
                                                cache_name(v));
        cl.storage.mem_pool.admit(img_name(v), size);
      }
      node.mem_dir.remove("warm-" + cache_name(v));
      node.mem_dir.remove("warm.cow");
    }
  }

  sim::Task<void> warm_one(ComputeNode& node, int v) {
    qcow2::ChainImageOptions copt{.cluster_bits = sc.cache_cluster_bits,
                                  .virtual_size = sc.profile.image_size};
    auto r1 = co_await qcow2::create_cache_image(
        node.fs, "mem/warm-" + cache_name(v), "nfs-base/" + img_name(v),
        sc.cache_quota, copt);
    qcow2::ChainImageOptions wopt{.cluster_bits = 16,
                                  .virtual_size = sc.profile.image_size};
    auto r2 = co_await qcow2::create_cow_image(
        node.fs, "mem/warm.cow", "mem/warm-" + cache_name(v), wopt);
    if (!r1.ok() || !r2.ok()) {
      ++failures;
      co_return;
    }
    auto dev = co_await qcow2::open_image(node.fs, "mem/warm.cow",
                                          /*writable=*/true,
                                          /*cache_backing_ro=*/false, cl.obs);
    if (!dev.ok()) {
      ++failures;
      co_return;
    }
    auto res = co_await boot::boot_vm(cl.env, **dev, traces[v]);
    if (!res.ok()) ++failures;
    (void)co_await (*dev)->close();
  }

  // --- measured phase -------------------------------------------------------

  sim::Task<void> deploy_vm(int i) {
    // The measured window covers the whole deployment a user perceives:
    // image preparation (qemu-img invocations, full pre-copy if any),
    // then the boot until "connect back".
    const sim::SimTime t0 = cl.env.now();
    ComputeNode& node = node_for(i);
    const int v = vmi_for(i);
    std::uint32_t vm_track = 0;
    obs::Span deploy_span;
    obs::Span prep_span;
    if (obs::tracing(cl.obs)) {
      vm_track = cl.obs->tracer.track("vm/" + std::to_string(i));
      deploy_span = cl.obs->tracer.span(vm_track, "vm.deploy", "cluster",
                                        "\"vmi\":" + std::to_string(v));
      prep_span = cl.obs->tracer.span(vm_track, "vm.prepare", "cluster");
    }
    const std::string cow = "disk/vm-" + std::to_string(i) + ".cow";
    // Cold caches built on the compute disk see synchronous writes
    // (Fig 8's slow case); memory-built ones are flushed after shutdown.
    const std::string my_cache =
        (sc.cold_cache_on_mem ? "mem/" : "disksync/") +
        ("vm" + std::to_string(i) + "-" + cache_name(v));
    qcow2::ChainImageOptions cow_opt{.cluster_bits = 16,
                                     .virtual_size = sc.profile.image_size};
    qcow2::ChainImageOptions cache_opt{.cluster_bits = sc.cache_cluster_bits,
                                       .virtual_size = sc.profile.image_size};

    std::string backing;
    bool creator = false;  // storage_mem cold: this VM builds the cache
    bool shared_cache_ro = false;
    bool warm_hit = false;

    switch (sc.mode) {
      case CacheMode::none:
        backing = "nfs-base/" + img_name(v);
        break;
      case CacheMode::full_copy: {
        // §2's naive deployment: stream the complete VMI to the node's
        // disk before booting ("obviously slow"). Counted in the boot
        // window, like the paper's tens-of-minutes P2P numbers (§7.1.1).
        const std::string local = "disk/full-" + img_name(v);
        auto rc = co_await copy_file(node.fs, "nfs-base/" + img_name(v),
                                     node.fs, local);
        if (!rc.ok()) {
          ++failures;
          co_return;
        }
        backing = local;
        break;
      }
      case CacheMode::compute_disk:
        if (sc.state == CacheState::warm &&
            node.disk_dir.exists(cache_name(v))) {
          warm_hit = true;
          backing = "disk/" + cache_name(v);
          node.pool.touch(img_name(v));
        } else {
          auto r = co_await qcow2::create_cache_image(
              node.fs, my_cache, "nfs-base/" + img_name(v), sc.cache_quota,
              cache_opt);
          if (!r.ok()) {
            ++failures;
            co_return;
          }
          backing = my_cache;
        }
        break;
      case CacheMode::storage_mem:
        if (sc.state == CacheState::warm) {
          backing = "nfs-mem/" + cache_name(v);
          shared_cache_ro = true;
          cl.storage.mem_pool.touch(img_name(v));
        } else {
          // Only one VM per VMI creates + pushes back the cache; the
          // others proceed with plain QCOW2 (§5.3.2).
          creator = (i == v);
          if (creator) {
            auto r = co_await qcow2::create_cache_image(
                node.fs, my_cache, "nfs-base/" + img_name(v), sc.cache_quota,
                cache_opt);
            if (!r.ok()) {
              ++failures;
              co_return;
            }
            backing = my_cache;
          } else {
            backing = "nfs-base/" + img_name(v);
          }
        }
        break;
    }

    auto rcow = co_await qcow2::create_cow_image(node.fs, cow, backing,
                                                 cow_opt);
    if (!rcow.ok()) {
      ++failures;
      co_return;
    }
    auto dev = co_await qcow2::open_image(node.fs, cow, /*writable=*/true,
                                          shared_cache_ro, cl.obs);
    if (!dev.ok()) {
      ++failures;
      co_return;
    }
    prep_span.end();
    boot::BootOptions bopt;
    bopt.prefetch_bytes = sc.prefetch_bytes;
    obs::Span boot_span;
    if (obs::tracing(cl.obs)) {
      boot_span = cl.obs->tracer.span(vm_track, "vm.boot", "cluster");
    }
    auto res = co_await boot::boot_vm(cl.env, **dev, traces[v], bopt);
    (void)co_await (*dev)->close();
    boot_span.end();
    if (!res.ok()) {
      ++failures;
      co_return;
    }

    VmOutcome& out = outcomes[static_cast<std::size_t>(i)];
    out.vm = i;
    out.node = node.id;
    out.vmi = v;
    out.warm = warm_hit || (sc.mode == CacheMode::storage_mem &&
                            sc.state == CacheState::warm);
    out.boot = *res;
    out.boot.boot_seconds = sim::to_seconds(cl.env.now() - t0);

    // Post-boot (after "shutdown") steps.
    if (sc.mode == CacheMode::compute_disk && sc.state == CacheState::cold &&
        sc.cold_cache_on_mem) {
      // Flush the memory-built cache to the local disk, off the boot's
      // critical path (§5.1: "we delay this actual write to the moment
      // after the VM has been shut down"; < 1 s for cache-sized files).
      if (!node.disk_dir.exists(cache_name(v))) {
        (void)storage::SimDirectory::clone_file(node.mem_dir,
                                                my_cache.substr(4),
                                                node.disk_dir, cache_name(v));
        node.pool.admit(img_name(v), *node.disk_dir.file_size(cache_name(v)));
      }
    }
    if (sc.mode == CacheMode::storage_mem && sc.state == CacheState::cold &&
        creator) {
      const sim::SimTime tx0 = cl.env.now();
      obs::Span push_span;
      if (obs::tracing(cl.obs)) {
        push_span = cl.obs->tracer.span(vm_track, "vm.cache_push", "cluster");
      }
      auto pushed = co_await push_cache_to_storage(node, my_cache,
                                                   cache_name(v));
      push_span.end();
      if (pushed.ok()) {
        out.cache_transfer_seconds = sim::to_seconds(cl.env.now() - tx0);
        cl.storage.mem_pool.admit(img_name(v), *pushed);
        if (sc.include_transfer_in_boot) {
          // Fig 14: the transfer is a necessary part of the system; the
          // paper charges it to the cold boot time.
          out.boot.boot_seconds += out.cache_transfer_seconds;
        }
      }
    }
  }
};

}  // namespace

ScenarioResult run_scenario(const ClusterParams& cp, const ScenarioConfig& sc) {
  Runner r(cp, sc);

  if (sc.mode != CacheMode::none && sc.state == CacheState::warm) {
    r.warm_caches();
  }

  // Measured phase: reset the storage-side counters, then start every VM
  // simultaneously (the paper's simultaneous-startup experiments).
  r.cl.storage.nfs.reset_stats();
  r.cl.storage.disk_raw.reset_stats();
  r.cl.storage.disk.reset_stats();
  for (int i = 0; i < sc.num_vms; ++i) {
    r.cl.env.spawn(r.deploy_vm(i));
  }
  r.cl.env.run();

  assert(r.failures == 0 && "scenario had failing VMs");

  ScenarioResult out;
  out.vms = std::move(r.outcomes);
  out.warm_cache_file_bytes = r.warm_cache_file_bytes;
  out.storage_payload_bytes = r.cl.storage.nfs.stats().total_payload();
  out.storage_disk_reads = r.cl.storage.disk_raw.stats().reads;
  out.storage_disk_bytes_read = r.cl.storage.disk_raw.stats().bytes_read;
  double sum = 0;
  out.min_boot = out.vms.empty() ? 0 : out.vms[0].boot.boot_seconds;
  obs::Histogram& boot_hist = r.cl.obs->registry.histogram(
      "cluster.boot_seconds", {},
      {1, 2, 5, 10, 20, 30, 60, 120, 300, 600});
  for (const auto& vm : out.vms) {
    const double b = vm.boot.boot_seconds;
    boot_hist.observe(b);
    sum += b;
    out.min_boot = std::min(out.min_boot, b);
    out.max_boot = std::max(out.max_boot, b);
  }
  out.mean_boot = out.vms.empty() ? 0 : sum / static_cast<double>(out.vms.size());
  out.metrics = r.cl.obs->registry.snapshot();
  return out;
}

}  // namespace vmic::cluster
