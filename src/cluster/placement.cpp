#include "cluster/placement.hpp"

#include <vector>

#include "qcow2/chain.hpp"

namespace vmic::cluster {

namespace {

/// Timed storage-local copy: disk -> tmpfs on the storage node (no
/// network involved; both media charge their own time).
sim::Task<Result<void>> stage_to_tmpfs(Cluster& cl, const std::string& name) {
  VMIC_CO_TRY(src, cl.storage.disk_dir.open_file(name, /*writable=*/false));
  VMIC_CO_TRY(dst, cl.storage.mem_dir.create_file(name));
  const std::uint64_t size = src->size();
  std::vector<std::uint8_t> buf(1 << 20);
  for (std::uint64_t off = 0; off < size; off += buf.size()) {
    const std::uint64_t n = std::min<std::uint64_t>(buf.size(), size - off);
    std::span<std::uint8_t> chunk{buf.data(), static_cast<std::size_t>(n)};
    VMIC_CO_TRY_VOID(co_await src->pread(off, chunk));
    VMIC_CO_TRY_VOID(co_await dst->pwrite(off, chunk));
  }
  co_return ok_result();
}

/// The §3.4 eviction policy, enforced: when the pool decides to evict,
/// the victims' cache files leave the node's disk.
void apply_eviction(ComputeNode& node,
                    const cache::CachePool::AdmitResult& r) {
  for (const auto& victim : r.evicted) {
    node.disk_dir.remove(cache_file_for(victim));
  }
}

}  // namespace

sim::Task<Result<PlacementOutcome>> chain_to_proper_cache(
    Cluster& cl, ComputeNode& node, const std::string& base,
    std::uint64_t quota, std::uint32_t cache_cluster_bits,
    std::uint64_t virtual_size) {
  const std::string cache = cache_file_for(base);
  qcow2::ChainImageOptions copt{.cluster_bits = cache_cluster_bits,
                                .virtual_size = virtual_size};

  // Line 1-2: a warm cache on the node itself wins outright.
  if (node.disk_dir.exists(cache)) {
    node.pool.touch(base);
    co_return PlacementOutcome{PlacementOutcome::Action::local_warm_hit,
                               "disk/" + cache, false, false};
  }

  // Lines 3-8: the storage node has the cache (memory, or disk — then
  // stage it into tmpfs first). Chain a fresh node-local cache to it: the
  // node warms its own copy while reads are served from storage memory,
  // avoiding the storage disk entirely.
  const bool in_mem = cl.storage.mem_dir.exists(cache);
  const bool on_disk = cl.storage.disk_dir.exists(cache);
  if (in_mem || on_disk) {
    bool staged = false;
    if (!in_mem) {
      VMIC_CO_TRY_VOID(co_await stage_to_tmpfs(cl, cache));
      cl.storage.mem_pool.admit(base, *cl.storage.mem_dir.file_size(cache));
      staged = true;
    } else {
      cl.storage.mem_pool.touch(base);
    }
    VMIC_CO_TRY_VOID(co_await qcow2::create_cache_image(
        node.fs, "disk/" + cache, "nfs-mem/" + cache, quota, copt));
    auto ar = node.pool.admit(base, quota);
    apply_eviction(node, ar);
    co_return PlacementOutcome{PlacementOutcome::Action::chained_to_storage,
                               "disk/" + cache, false, staged,
                               std::move(ar.evicted)};
  }

  // Last branch: no cache anywhere. Create one against the base and
  // remember to push it to the storage node after shutdown.
  VMIC_CO_TRY_VOID(co_await qcow2::create_cache_image(
      node.fs, "disk/" + cache, "nfs-base/" + base, quota, copt));
  auto ar = node.pool.admit(base, quota);
  apply_eviction(node, ar);
  co_return PlacementOutcome{PlacementOutcome::Action::created_fresh,
                             "disk/" + cache, true, false,
                             std::move(ar.evicted)};
}

sim::Task<Result<void>> copy_cache_back(Cluster& cl, ComputeNode& node,
                                        const std::string& base) {
  const std::string cache = cache_file_for(base);
  VMIC_CO_TRY(src, node.fs.open_file("disk/" + cache, /*writable=*/false));
  VMIC_CO_TRY(dst, node.tmpfs_mount.create_file(cache));
  const std::uint64_t size = src->size();
  std::vector<std::uint8_t> buf(1 << 20);
  for (std::uint64_t off = 0; off < size; off += buf.size()) {
    const std::uint64_t n = std::min<std::uint64_t>(buf.size(), size - off);
    std::span<std::uint8_t> chunk{buf.data(), static_cast<std::size_t>(n)};
    VMIC_CO_TRY_VOID(co_await src->pread(off, chunk));
    VMIC_CO_TRY_VOID(co_await dst->pwrite(off, chunk));
  }
  VMIC_CO_TRY_VOID(co_await dst->flush());
  cl.storage.mem_pool.admit(base, size);
  co_return ok_result();
}

}  // namespace vmic::cluster
