#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "sim/env.hpp"

namespace vmic::sim {

/// One-shot broadcast event. Waiters suspend until trigger(); waiting on a
/// triggered event completes immediately. Resumptions go through the event
/// queue (FIFO), never inline, to keep stacks shallow and ordering
/// deterministic.
class Event {
 public:
  explicit Event(SimEnv& env) noexcept : env_(env) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    for (auto h : waiters_) env_.schedule_at(env_.now(), h);
    waiters_.clear();
  }

  struct Awaiter {
    Event& ev;
    bool await_ready() const noexcept { return ev.triggered_; }
    void await_suspend(std::coroutine_handle<> h) {
      ev.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter wait() noexcept { return {*this}; }

 private:
  SimEnv& env_;
  std::deque<std::coroutine_handle<>> waiters_;
  bool triggered_ = false;
};

class Mutex;

/// RAII unlock for Mutex; returned by `co_await mutex.lock()`.
class [[nodiscard]] LockGuard {
 public:
  explicit LockGuard(Mutex* m) noexcept : m_(m) {}
  LockGuard(LockGuard&& o) noexcept : m_(o.m_) { o.m_ = nullptr; }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  LockGuard& operator=(LockGuard&&) = delete;
  ~LockGuard();

 private:
  Mutex* m_;
};

/// FIFO mutex: contenders acquire in arrival order. Models the FCFS queue
/// of serially-serviced resources (a disk spindle) and protects multi-step
/// metadata updates in drivers that interleave across coroutines.
class Mutex {
 public:
  explicit Mutex(SimEnv& env) noexcept : env_(env) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  struct Awaiter {
    Mutex& m;
    bool await_ready() const noexcept { return !m.locked_; }
    void await_suspend(std::coroutine_handle<> h) { m.waiters_.push_back(h); }
    LockGuard await_resume() noexcept {
      m.locked_ = true;
      return LockGuard{&m};
    }
  };
  [[nodiscard]] Awaiter lock() noexcept { return {*this}; }

  [[nodiscard]] bool locked() const noexcept { return locked_; }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return waiters_.size();
  }

 private:
  friend class LockGuard;
  void unlock() {
    assert(locked_);
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    // Hand off directly: the next waiter's await_resume re-asserts
    // locked_ when it runs. Keep locked_ true so no one barges in.
    auto h = waiters_.front();
    waiters_.pop_front();
    env_.schedule_at(env_.now(), h);
  }

  SimEnv& env_;
  std::deque<std::coroutine_handle<>> waiters_;
  bool locked_ = false;
};

inline LockGuard::~LockGuard() {
  if (m_ != nullptr) m_->unlock();
}

class InlineMutex;

/// RAII unlock for InlineMutex.
class [[nodiscard]] InlineLockGuard {
 public:
  explicit InlineLockGuard(InlineMutex* m) noexcept : m_(m) {}
  InlineLockGuard(InlineLockGuard&& o) noexcept : m_(o.m_) { o.m_ = nullptr; }
  InlineLockGuard(const InlineLockGuard&) = delete;
  InlineLockGuard& operator=(const InlineLockGuard&) = delete;
  InlineLockGuard& operator=(InlineLockGuard&&) = delete;
  ~InlineLockGuard();

 private:
  InlineMutex* m_;
};

/// Environment-free FIFO mutex: waiters are resumed inline from unlock()
/// instead of through an event queue, so it works in host-side
/// (sync_wait) contexts too. Used by the QCOW2 driver to serialise
/// copy-on-read/copy-on-write allocation when multiple coroutines
/// (guest I/O + prefetch) share one device.
class InlineMutex {
 public:
  InlineMutex() = default;
  InlineMutex(const InlineMutex&) = delete;
  InlineMutex& operator=(const InlineMutex&) = delete;

  struct Awaiter {
    InlineMutex& m;
    bool await_ready() noexcept {
      if (!m.locked_) {
        m.locked_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { m.waiters_.push_back(h); }
    InlineLockGuard await_resume() noexcept {
      // On the slow path, ownership was transferred by unlock().
      return InlineLockGuard{&m};
    }
  };
  [[nodiscard]] Awaiter lock() noexcept { return {*this}; }
  [[nodiscard]] bool locked() const noexcept { return locked_; }

 private:
  friend class InlineLockGuard;
  void unlock() {
    assert(locked_);
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    auto h = waiters_.front();
    waiters_.pop_front();
    h.resume();  // locked_ stays true: ownership handed to the waiter
  }

  std::deque<std::coroutine_handle<>> waiters_;
  bool locked_ = false;
};

inline InlineLockGuard::~InlineLockGuard() {
  if (m_ != nullptr) m_->unlock();
}

class RangeLock;

/// RAII release for RangeLock; returned by `co_await lock.acquire(lo, hi)`.
/// `waited()` tells the owner whether it had to queue behind an
/// overlapping holder — the single-flight signal: a waiter should
/// re-examine shared state (it may have been filled meanwhile) instead of
/// repeating the holder's work.
class [[nodiscard]] RangeGuard {
 public:
  RangeGuard() = default;
  RangeGuard(RangeLock* l, std::uint64_t lo, std::uint64_t hi,
             bool waited) noexcept
      : l_(l), lo_(lo), hi_(hi), waited_(waited) {}
  RangeGuard(RangeGuard&& o) noexcept
      : l_(o.l_), lo_(o.lo_), hi_(o.hi_), waited_(o.waited_) {
    o.l_ = nullptr;
  }
  RangeGuard(const RangeGuard&) = delete;
  RangeGuard& operator=(const RangeGuard&) = delete;
  RangeGuard& operator=(RangeGuard&&) = delete;
  ~RangeGuard();

  /// True when acquisition had to wait for an overlapping holder.
  [[nodiscard]] bool waited() const noexcept { return waited_; }

 private:
  RangeLock* l_ = nullptr;
  std::uint64_t lo_ = 0;
  std::uint64_t hi_ = 0;
  bool waited_ = false;
};

/// Exclusive lock over half-open [lo, hi) ranges, the in-flight map behind
/// single-flight fills: disjoint ranges are held concurrently, overlapping
/// acquisitions queue FIFO and are granted (deterministically, in arrival
/// order) as soon as no held range overlaps theirs. Environment-free like
/// InlineMutex — waiters resume inline from release(), so it works in
/// host-side (sync_wait) contexts where there is no event queue. Used by
/// the QCOW2 driver to coalesce concurrent copy-on-read fills per cluster
/// range (QEMU-style in-flight COW tracking).
class RangeLock {
 public:
  RangeLock() = default;
  RangeLock(const RangeLock&) = delete;
  RangeLock& operator=(const RangeLock&) = delete;

  struct Awaiter {
    RangeLock& l;
    std::uint64_t lo, hi;
    bool waited = false;

    bool await_ready() {
      if (l.overlaps(lo, hi)) return false;
      l.held_.emplace(lo, hi);
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      waited = true;
      l.waiters_.push_back({lo, hi, h});
    }
    RangeGuard await_resume() noexcept {
      // On the slow path release() inserted our range before resuming us.
      return RangeGuard{&l, lo, hi, waited};
    }
  };

  /// Acquire exclusive ownership of [lo, hi); hi must be > lo.
  [[nodiscard]] Awaiter acquire(std::uint64_t lo, std::uint64_t hi) noexcept {
    assert(lo < hi);
    return Awaiter{*this, lo, hi};
  }

  [[nodiscard]] std::size_t held_count() const noexcept {
    return held_.size();
  }
  [[nodiscard]] std::size_t waiting_count() const noexcept {
    return waiters_.size();
  }
  [[nodiscard]] bool overlaps(std::uint64_t lo, std::uint64_t hi) const {
    auto it = held_.upper_bound(lo);  // first held range starting past lo
    if (it != held_.begin()) {
      auto p = std::prev(it);
      if (p->second > lo) return true;  // predecessor reaches into [lo, hi)
    }
    return it != held_.end() && it->first < hi;
  }

 private:
  friend class RangeGuard;

  struct Waiter {
    std::uint64_t lo, hi;
    std::coroutine_handle<> h;
  };

  void release(std::uint64_t lo, std::uint64_t hi) {
    auto it = held_.find(lo);
    assert(it != held_.end() && it->second == hi);
    (void)hi;
    held_.erase(it);
    // FIFO grant pass: admit every queued waiter whose range is now clear,
    // marking each range held *before* resuming anyone so later waiters in
    // the same pass observe the grants. Resume after the scan — resuming
    // inline mid-scan could re-enter release() and invalidate iterators.
    std::vector<std::coroutine_handle<>> ready;
    for (auto w = waiters_.begin(); w != waiters_.end();) {
      if (!overlaps(w->lo, w->hi)) {
        held_.emplace(w->lo, w->hi);
        ready.push_back(w->h);
        w = waiters_.erase(w);
      } else {
        ++w;
      }
    }
    for (auto h : ready) h.resume();
  }

  std::map<std::uint64_t, std::uint64_t> held_;  // lo -> hi, disjoint
  std::deque<Waiter> waiters_;
};

inline RangeGuard::~RangeGuard() {
  if (l_ != nullptr) l_->release(lo_, hi_);
}

/// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(SimEnv& env, std::size_t count) noexcept
      : env_(env), count_(count) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct Awaiter {
    Semaphore& s;
    // Grab a unit in await_ready so the fast path never suspends; on the
    // slow path release() hands its unit to the queued waiter directly.
    bool await_ready() noexcept {
      if (s.count_ > 0) {
        --s.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter acquire() noexcept { return {*this}; }

  void release() {
    if (!waiters_.empty()) {
      // Transfer the unit to the first waiter without touching count_.
      auto h = waiters_.front();
      waiters_.pop_front();
      env_.schedule_at(env_.now(), h);
      return;
    }
    ++count_;
  }

  [[nodiscard]] std::size_t available() const noexcept { return count_; }

 private:
  SimEnv& env_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::size_t count_;
};

}  // namespace vmic::sim
