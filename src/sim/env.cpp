#include "sim/env.hpp"

#include <cassert>

namespace vmic::sim {

SimEnv::TimerId SimEnv::schedule_at(SimTime t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule in the past");
  const TimerId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id, h, {}});
  return id;
}

SimEnv::TimerId SimEnv::call_at(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  const TimerId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id, nullptr, std::move(fn)});
  return id;
}

void SimEnv::cancel(TimerId id) { cancelled_.insert(id); }

bool SimEnv::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(e.time >= now_);
    now_ = e.time;
    if (e.handle) {
      e.handle.resume();
    } else {
      e.fn();
    }
    return true;
  }
  return false;
}

void SimEnv::run() {
  while (step()) {
  }
}

bool SimEnv::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Peek past cancelled entries without consuming live ones.
    Entry e = queue_.top();
    if (cancelled_.count(e.id) != 0) {
      queue_.pop();
      cancelled_.erase(e.id);
      continue;
    }
    if (e.time > deadline) {
      now_ = deadline;
      return false;
    }
    step();
  }
  return true;
}

SimEnv::SpawnedTask SimEnv::run_spawned(SimEnv* env, Task<void> task) {
  co_await std::move(task);
  --env->live_tasks_;
}

void SimEnv::spawn(Task<void> task) {
  ++live_tasks_;
  SpawnedTask wrapper = run_spawned(this, std::move(task));
  schedule_at(now_, wrapper.handle);
}

}  // namespace vmic::sim
