#include "sim/env.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>

namespace vmic::sim {

namespace {

constexpr std::uint32_t kMinBuckets = 64;
constexpr std::uint32_t kMaxBuckets = 1u << 20;
/// Bucket width is clamped so year arithmetic can never overflow SimTime
/// even at the largest wheel size.
constexpr SimTime kMaxWidth = SimTime{1} << 42;

SimEnv::QueueImpl default_impl() {
  const char* v = std::getenv("VMIC_SIM_QUEUE");
  if (v != nullptr && std::strcmp(v, "heap") == 0) {
    return SimEnv::QueueImpl::heap;
  }
  return SimEnv::QueueImpl::calendar;
}

}  // namespace

SimEnv::SimEnv() : SimEnv(default_impl()) {}

SimEnv::SimEnv(QueueImpl impl) : impl_(impl) {
  if (impl_ == QueueImpl::calendar) {
    nbuckets_ = kMinBuckets;
    mask_ = nbuckets_ - 1;
    buckets_.assign(nbuckets_, Bucket{});
    cur_ = 0;
    cur_top_ = width_;
  }
}

// --- calendar queue ---------------------------------------------------------

void SimEnv::link_sorted(std::uint32_t idx) {
  Entry& e = pool_[idx];
  const std::uint32_t b = bucket_of(e.time);
  e.bucket = b;
  Bucket& bk = buckets_[b];
  // Walk from the tail: the common cases (a later time, or an equal time
  // with a larger seq) insert at the tail immediately, preserving FIFO
  // order for same-time events because seq is globally monotone.
  std::uint32_t after = bk.tail;
  while (after != kNil) {
    const Entry& a = pool_[after];
    if (a.time < e.time || (a.time == e.time && a.seq < e.seq)) break;
    after = a.prev;
  }
  if (after == kNil) {
    e.prev = kNil;
    e.next = bk.head;
    if (bk.head != kNil) pool_[bk.head].prev = idx;
    bk.head = idx;
    if (bk.tail == kNil) bk.tail = idx;
  } else {
    Entry& a = pool_[after];
    e.prev = after;
    e.next = a.next;
    if (a.next != kNil) pool_[a.next].prev = idx;
    a.next = idx;
    if (bk.tail == after) bk.tail = idx;
  }
}

void SimEnv::unlink(std::uint32_t idx) {
  Entry& e = pool_[idx];
  Bucket& bk = buckets_[e.bucket];
  if (e.prev != kNil) {
    pool_[e.prev].next = e.next;
  } else {
    bk.head = e.next;
  }
  if (e.next != kNil) {
    pool_[e.next].prev = e.prev;
  } else {
    bk.tail = e.prev;
  }
  e.prev = e.next = kNil;
  --live_count_;
}

void SimEnv::release(std::uint32_t idx) {
  Entry& e = pool_[idx];
  ++e.gen;  // stale TimerIds for this slot stop matching
  e.live = false;
  e.handle = {};
  e.fn = nullptr;  // drop captured state now, not at slot reuse
  pool_.free(idx);
}

SimEnv::TimerId SimEnv::insert_entry(SimTime t, std::coroutine_handle<> h,
                                     std::function<void()> fn) {
  const std::uint32_t idx = pool_.alloc();
  Entry& e = pool_[idx];
  e.time = t;
  e.seq = next_seq_++;
  e.handle = h;
  e.fn = std::move(fn);
  e.live = true;
  const TimerId id = ((e.gen << kSlotBits) | idx);
  // An event earlier than the current scan window would be missed for a
  // whole lap: rewind the year scan to its bucket. Also (re)anchor the
  // scan when the wheel was empty.
  if (live_count_ == 0 || t < cur_top_ - width_) {
    cur_ = bucket_of(t);
    cur_top_ =
        (static_cast<SimTime>(static_cast<std::uint64_t>(t) /
                              static_cast<std::uint64_t>(width_)) +
         1) *
        width_;
  }
  link_sorted(idx);
  ++live_count_;
  maybe_resize();
  return id;
}

std::uint32_t SimEnv::find_min() {
  if (live_count_ == 0) return kNil;
  std::uint32_t scanned = 0;
  for (;;) {
    const std::uint32_t h = buckets_[cur_].head;
    if (h != kNil && pool_[h].time < cur_top_) return h;
    cur_ = static_cast<std::uint32_t>((cur_ + 1) & mask_);
    cur_top_ += width_;
    if (++scanned > nbuckets_) {
      // Sparse year: no event within a full lap of the wheel. Find the
      // global minimum directly and jump the scan to its year.
      std::uint32_t best = kNil;
      for (std::uint32_t b = 0; b < nbuckets_; ++b) {
        const std::uint32_t bh = buckets_[b].head;
        if (bh == kNil) continue;
        if (best == kNil) {
          best = bh;
          continue;
        }
        const Entry& cand = pool_[bh];
        const Entry& cur_best = pool_[best];
        if (cand.time < cur_best.time ||
            (cand.time == cur_best.time && cand.seq < cur_best.seq)) {
          best = bh;
        }
      }
      assert(best != kNil);
      const Entry& e = pool_[best];
      cur_ = e.bucket;
      cur_top_ =
          (static_cast<SimTime>(static_cast<std::uint64_t>(e.time) /
                                static_cast<std::uint64_t>(width_)) +
           1) *
          width_;
      return best;
    }
  }
}

void SimEnv::rebuild(std::uint32_t new_buckets) {
  // Collect every live entry, walking the ring from the scan cursor.
  // When the live span fits inside one calendar year (the common case)
  // this visits entries already in (time, seq) order, and the sort
  // below collapses to an O(n) is_sorted check.
  std::vector<std::uint32_t> all;
  all.reserve(live_count_);
  for (std::uint32_t b = 0; b < nbuckets_; ++b) {
    const Bucket& bk = buckets_[(cur_ + b) & mask_];
    for (std::uint32_t i = bk.head; i != kNil; i = pool_[i].next) {
      all.push_back(i);
    }
  }
  // New width: four times the mean inter-event gap over the earliest
  // ~64 events (Brown's sampling, integer arithmetic — deterministic
  // and platform-independent because only the time *values* matter).
  const std::size_t k = std::min<std::size_t>(all.size(), 64);
  if (k >= 2) {
    std::vector<SimTime> times;
    times.reserve(all.size());
    for (std::uint32_t i : all) times.push_back(pool_[i].time);
    std::nth_element(times.begin(), times.begin() + (k - 1), times.end());
    std::sort(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k));
    // Mean gap per *event*, duplicates included: when many events share
    // a timestamp the right width is at most one tick, so same-time
    // arrivals land in their own bucket and insert as O(1) tail appends
    // (seq is monotone). Averaging only distinct times here once picked
    // a width 4 ticks wide and turned every insert into a sorted-list
    // walk across ~4 ticks of events.
    const SimTime span = times[k - 1] - times[0];
    width_ = std::clamp<SimTime>(
        4 * (span / static_cast<SimTime>(k - 1)), 1, kMaxWidth);
  }
  nbuckets_ = new_buckets;
  mask_ = nbuckets_ - 1;
  buckets_.assign(nbuckets_, Bucket{});
  // Relink in (time, seq) order: every insert is then a tail append, so
  // the rebuild is one sort (skipped when the ring walk above already
  // produced sorted order) plus O(n) links.
  const auto by_time_seq = [this](std::uint32_t a, std::uint32_t b) {
    const Entry& ea = pool_[a];
    const Entry& eb = pool_[b];
    if (ea.time != eb.time) return ea.time < eb.time;
    return ea.seq < eb.seq;
  };
  if (!std::is_sorted(all.begin(), all.end(), by_time_seq)) {
    std::sort(all.begin(), all.end(), by_time_seq);
  }
  for (std::uint32_t i : all) link_sorted(i);
  if (!all.empty()) {
    const Entry& e = pool_[all.front()];
    cur_ = e.bucket;
    cur_top_ =
        (static_cast<SimTime>(static_cast<std::uint64_t>(e.time) /
                              static_cast<std::uint64_t>(width_)) +
         1) *
        width_;
  } else {
    cur_ = 0;
    cur_top_ = width_;
  }
}

void SimEnv::maybe_resize() {
  // Jump straight to the target size rather than doubling/halving one
  // step at a time: a bulk load of n events then costs one O(n) rebuild
  // instead of a log(n) cascade of them.
  if (live_count_ > 2 * static_cast<std::size_t>(nbuckets_) &&
      nbuckets_ < kMaxBuckets) {
    std::uint64_t target = std::bit_ceil(live_count_);
    rebuild(static_cast<std::uint32_t>(
        std::min<std::uint64_t>(target, kMaxBuckets)));
  } else if (nbuckets_ > kMinBuckets &&
             live_count_ * 8 < static_cast<std::size_t>(nbuckets_)) {
    std::uint64_t target = std::bit_ceil(std::max<std::size_t>(
        live_count_ * 2, static_cast<std::size_t>(kMinBuckets)));
    rebuild(static_cast<std::uint32_t>(
        std::min<std::uint64_t>(target, kMaxBuckets)));
  }
}

void SimEnv::fire(std::uint32_t idx) {
  Entry& e = pool_[idx];
  assert(e.time >= now_);
  now_ = e.time;
  const std::coroutine_handle<> h = e.handle;
  std::function<void()> fn = std::move(e.fn);
  unlink(idx);
  release(idx);
  ++events_processed_;
  maybe_resize();
  // Resume last: the slot is already recycled, so whatever the handler
  // schedules can reuse it immediately.
  if (h) {
    h.resume();
  } else {
    fn();
  }
}

// --- public API -------------------------------------------------------------

SimEnv::TimerId SimEnv::schedule_at(SimTime t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule in the past");
  if (t < now_) t = now_;
  if (impl_ == QueueImpl::heap) {
    const TimerId id = next_id_++;
    heap_.push(HeapEntry{t, next_seq_++, id, h, {}});
    return id;
  }
  return insert_entry(t, h, nullptr);
}

SimEnv::TimerId SimEnv::call_at(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  if (t < now_) t = now_;
  if (impl_ == QueueImpl::heap) {
    const TimerId id = next_id_++;
    heap_.push(HeapEntry{t, next_seq_++, id, nullptr, std::move(fn)});
    return id;
  }
  return insert_entry(t, nullptr, std::move(fn));
}

void SimEnv::cancel(TimerId id) {
  if (impl_ == QueueImpl::heap) {
    cancelled_.insert(id);
    return;
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(id & kSlotMask);
  if (idx >= pool_.capacity()) return;
  Entry& e = pool_[idx];
  if (!e.live || (e.gen << kSlotBits | idx) != id) return;
  unlink(idx);
  release(idx);
  maybe_resize();
}

bool SimEnv::step() {
  if (impl_ == QueueImpl::heap) {
    while (!heap_.empty()) {
      HeapEntry e = heap_.top();
      heap_.pop();
      if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      assert(e.time >= now_);
      now_ = e.time;
      ++events_processed_;
      if (e.handle) {
        e.handle.resume();
      } else {
        e.fn();
      }
      return true;
    }
    return false;
  }
  const std::uint32_t idx = find_min();
  if (idx == kNil) return false;
  fire(idx);
  return true;
}

void SimEnv::run() {
  while (step()) {
  }
}

bool SimEnv::run_until(SimTime deadline) {
  if (impl_ == QueueImpl::heap) {
    while (!heap_.empty()) {
      // Peek past cancelled entries without consuming live ones.
      const HeapEntry& e = heap_.top();
      if (cancelled_.count(e.id) != 0) {
        cancelled_.erase(e.id);
        heap_.pop();
        continue;
      }
      if (e.time > deadline) {
        now_ = deadline;
        return false;
      }
      step();
    }
    return true;
  }
  std::uint32_t idx;
  while ((idx = find_min()) != kNil) {
    if (pool_[idx].time > deadline) {
      now_ = deadline;
      return false;
    }
    fire(idx);
  }
  return true;
}

SimEnv::SpawnedTask SimEnv::run_spawned(SimEnv* env, Task<void> task) {
  co_await std::move(task);
  --env->live_tasks_;
}

void SimEnv::spawn(Task<void> task) {
  ++live_tasks_;
  SpawnedTask wrapper = run_spawned(this, std::move(task));
  schedule_at(now_, wrapper.handle);
}

}  // namespace vmic::sim
