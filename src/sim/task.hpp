#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "util/pool.hpp"

namespace vmic::sim {

/// Lazy coroutine task, the unit of concurrency in the simulator and the
/// block layer. Mirrors the structure of QEMU's block-driver coroutines:
/// every driver entry point (read/write/flush/...) is a Task and either
/// completes synchronously (host file/memory backends) or suspends on
/// simulated time (simulated disks, NFS, networks).
///
/// Semantics:
///  * lazy start — the body runs only when the task is awaited (or spawned
///    onto a SimEnv / driven by sync_wait);
///  * symmetric transfer — completion resumes the awaiter directly;
///  * single consumer — a Task may be awaited at most once.
template <typename T>
class [[nodiscard]] Task;

namespace detail {

template <typename T>
struct TaskPromiseBase {
  // Coroutine frames come from the size-classed frame pool: simulations
  // churn millions of short-lived tasks and the global heap was a
  // measurable fraction of event cost.
  static void* operator new(std::size_t n) {
    return util::FramePool::allocate(n);
  }
  static void operator delete(void* p, std::size_t n) noexcept {
    util::FramePool::deallocate(p, n);
  }

  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      return h.promise().continuation;
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    std::optional<T> value;
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  ~Task() {
    if (h_) h_.destroy();
  }

  // --- awaiter interface -------------------------------------------------
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> awaiter) noexcept {
    h_.promise().continuation = awaiter;
    return h_;  // start the child coroutine
  }
  T await_resume() {
    auto& p = h_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    assert(p.value.has_value() && "task finished without a value");
    return std::move(*p.value);
  }

  /// Internal: release the handle (spawn/sync_wait plumbing).
  Handle release() noexcept { return std::exchange(h_, {}); }

 private:
  explicit Task(Handle h) noexcept : h_(h) {}
  Handle h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  ~Task() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> awaiter) noexcept {
    h_.promise().continuation = awaiter;
    return h_;
  }
  void await_resume() {
    auto& p = h_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

  Handle release() noexcept { return std::exchange(h_, {}); }

 private:
  explicit Task(Handle h) noexcept : h_(h) {}
  Handle h_;
};

/// Run a task that is expected to complete without suspending on simulated
/// time (host-side paths: FileBackend/MemBackend under qcow2). Aborts if
/// the task suspends — that would mean host code touched a simulated
/// resource.
template <typename T>
T sync_wait(Task<T> task) {
  auto h = task.release();
  h.promise().continuation = std::noop_coroutine();
  h.resume();
  if (!h.done()) {
    assert(false && "sync_wait: task suspended on simulated time");
    std::terminate();
  }
  auto& p = h.promise();
  if (p.exception) {
    auto e = p.exception;
    h.destroy();
    std::rethrow_exception(e);
  }
  if constexpr (std::is_void_v<T>) {
    h.destroy();
  } else {
    T out = std::move(*p.value);
    h.destroy();
    return out;
  }
}

}  // namespace vmic::sim
