#pragma once

#include <cstdint>

namespace vmic::sim {

/// Simulated time in integer nanoseconds.
///
/// Integer time keeps the event queue ordering exact and the whole
/// simulation bit-reproducible across platforms; doubles are converted at
/// the edges only.
using SimTime = std::int64_t;

constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * 1e9);
}
constexpr SimTime from_millis(double ms) noexcept {
  return static_cast<SimTime>(ms * 1e6);
}
constexpr SimTime from_micros(double us) noexcept {
  return static_cast<SimTime>(us * 1e3);
}
constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) * 1e-9;
}

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

}  // namespace vmic::sim
