#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "sim/env.hpp"
#include "sim/task.hpp"

namespace vmic::sim {

namespace detail {

template <typename T>
Task<void> capture_result(Task<T> task, std::optional<T>& out) {
  out.emplace(co_await std::move(task));
}

inline Task<void> capture_void(Task<void> task, bool& done) {
  co_await std::move(task);
  done = true;
}

}  // namespace detail

/// Spawn `task` on `env`, run the event loop to completion, and return the
/// task's result. The standard way tests and benches execute simulated
/// scenarios.
template <typename T>
T run_sync(SimEnv& env, Task<T> task) {
  std::optional<T> out;
  env.spawn(detail::capture_result(std::move(task), out));
  env.run();
  assert(out.has_value() && "task did not complete (deadlock?)");
  return std::move(*out);
}

inline void run_sync(SimEnv& env, Task<void> task) {
  bool done = false;
  env.spawn(detail::capture_void(std::move(task), done));
  env.run();
  assert(done && "task did not complete (deadlock?)");
  (void)done;
}

}  // namespace vmic::sim
