#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace vmic::sim {

/// Single-threaded discrete-event simulation environment.
///
/// Coroutines suspend on awaitables (Delay, Event, Mutex, resources); the
/// environment resumes them in (time, insertion-sequence) order, which
/// makes every run deterministic for a fixed seed and spawn order.
class SimEnv {
 public:
  using TimerId = std::uint64_t;

  SimEnv() = default;
  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `h` to resume at absolute time `t` (>= now). Returns an id
  /// that can be passed to cancel().
  TimerId schedule_at(SimTime t, std::coroutine_handle<> h);

  /// Schedule a plain callback (used by resources that need to recompute
  /// state at a future instant without a dedicated coroutine).
  TimerId call_at(SimTime t, std::function<void()> fn);

  /// Cancel a pending timer. Cancelling an already-fired or unknown id is
  /// a no-op.
  void cancel(TimerId id);

  /// Run until the event queue is empty.
  void run();

  /// Run until the queue is empty or `deadline` is reached (events at
  /// exactly `deadline` are processed). Returns true if the queue drained.
  bool run_until(SimTime deadline);

  /// Process a single event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size() - cancelled_.size();
  }

  /// Number of spawned, still-running detached tasks.
  [[nodiscard]] std::size_t live_tasks() const noexcept { return live_tasks_; }

  // --- awaitables ----------------------------------------------------------

  struct DelayAwaiter {
    SimEnv& env;
    SimTime delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      env.schedule_at(env.now_ + (delay < 0 ? 0 : delay), h);
    }
    void await_resume() const noexcept {}
  };

  /// `co_await env.delay(t)` — resume after `t` simulated nanoseconds.
  /// A zero delay still round-trips through the queue (a deterministic
  /// yield point).
  [[nodiscard]] DelayAwaiter delay(SimTime t) noexcept { return {*this, t}; }

  /// `co_await env.yield()` — let other ready coroutines run first.
  [[nodiscard]] DelayAwaiter yield() noexcept { return {*this, 0}; }

  // --- detached tasks --------------------------------------------------------

  /// Launch a detached task. It starts running at the next event-loop
  /// iteration (scheduled at the current time). The task's result is
  /// discarded; exceptions terminate (simulation code reports failures
  /// through Result<>, not exceptions).
  void spawn(Task<void> task);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    TimerId id;
    std::coroutine_handle<> handle;           // either handle...
    std::function<void()> fn;                 // ...or callback
    bool operator>(const Entry& o) const noexcept {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  // Wrapper coroutine that owns a spawned task for its whole lifetime.
  // Lazily started (spawn schedules it), self-destroying on completion.
  struct SpawnedTask {
    struct promise_type {
      SpawnedTask get_return_object() noexcept {
        return {std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() noexcept {}
      void unhandled_exception() noexcept { std::terminate(); }
    };
    std::coroutine_handle<promise_type> handle;
  };
  static SpawnedTask run_spawned(SimEnv* env, Task<void> task);

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<TimerId> cancelled_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  std::size_t live_tasks_ = 0;
};

}  // namespace vmic::sim
