#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/pool.hpp"

namespace vmic::sim {

/// Single-threaded discrete-event simulation environment.
///
/// Coroutines suspend on awaitables (Delay, Event, Mutex, resources); the
/// environment resumes them in (time, insertion-sequence) order, which
/// makes every run deterministic for a fixed seed and spawn order.
///
/// The event queue is a calendar queue (Brown 1988): an open-hashed ring
/// of time-sorted buckets whose width/size adapt to the live event
/// population, giving O(1) amortized insert/pop where the old binary
/// heap paid O(log n) sift costs per operation. Timer entries live in a
/// slab pool (util::SlotPool) and TimerIds embed (slot, generation), so
/// cancel() unlinks the entry in place in O(1) and `pending_events()` is
/// exact — there is no tombstone set. The pre-change binary-heap queue
/// is retained as an ablation (`QueueImpl::heap`, or environment
/// variable `VMIC_SIM_QUEUE=heap`) so benches can measure the swap and
/// differential tests can pit the two implementations against each
/// other; both produce the identical event fire order.
class SimEnv {
 public:
  using TimerId = std::uint64_t;

  /// Event-queue implementation selector (ablation switch).
  enum class QueueImpl { calendar, heap };

  /// Default: calendar queue, unless VMIC_SIM_QUEUE=heap is set in the
  /// environment (process-wide ablation without touching call sites).
  SimEnv();
  explicit SimEnv(QueueImpl impl);
  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  [[nodiscard]] QueueImpl queue_impl() const noexcept { return impl_; }

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `h` to resume at absolute time `t` (>= now; an earlier `t`
  /// is clamped to now). Returns an id that can be passed to cancel().
  TimerId schedule_at(SimTime t, std::coroutine_handle<> h);

  /// Schedule a plain callback (used by resources that need to recompute
  /// state at a future instant without a dedicated coroutine).
  TimerId call_at(SimTime t, std::function<void()> fn);

  /// Cancel a pending timer: O(1), the entry is unlinked from its bucket
  /// and its slot recycled immediately. Cancelling an already-fired,
  /// already-cancelled, or unknown id is a no-op (the slot's generation
  /// no longer matches).
  void cancel(TimerId id);

  /// Run until the event queue is empty.
  void run();

  /// Run until the queue is empty or `deadline` is reached (events at
  /// exactly `deadline` are processed). Returns true if the queue drained.
  bool run_until(SimTime deadline);

  /// Process a single event; returns false if the queue is empty.
  bool step();

  /// Live (schedulable) events. Exact under the calendar queue even
  /// after cancellations. Under the legacy heap ablation this keeps the
  /// pre-change contract: a cancel() of an id that is not actually
  /// pending makes it an overcount.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return impl_ == QueueImpl::calendar ? live_count_
                                        : heap_.size() - cancelled_.size();
  }

  /// Events fired since construction (throughput accounting).
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  /// Number of spawned, still-running detached tasks.
  [[nodiscard]] std::size_t live_tasks() const noexcept { return live_tasks_; }

  // --- awaitables ----------------------------------------------------------

  struct DelayAwaiter {
    SimEnv& env;
    SimTime delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      env.schedule_at(env.now_ + (delay < 0 ? 0 : delay), h);
    }
    void await_resume() const noexcept {}
  };

  /// `co_await env.delay(t)` — resume after `t` simulated nanoseconds.
  /// A zero delay still round-trips through the queue (a deterministic
  /// yield point).
  [[nodiscard]] DelayAwaiter delay(SimTime t) noexcept { return {*this, t}; }

  /// `co_await env.yield()` — let other ready coroutines run first.
  [[nodiscard]] DelayAwaiter yield() noexcept { return {*this, 0}; }

  // --- detached tasks --------------------------------------------------------

  /// Launch a detached task. It starts running at the next event-loop
  /// iteration (scheduled at the current time). The task's result is
  /// discarded; exceptions terminate (simulation code reports failures
  /// through Result<>, not exceptions).
  void spawn(Task<void> task);

 private:
  static constexpr std::uint32_t kNil = util::SlotPool<int>::kNil;
  /// TimerId layout (calendar): low kSlotBits = pool slot, high bits =
  /// slot generation at allocation. 2^28 concurrent timers, 2^36
  /// generations per slot before an id could alias.
  static constexpr std::uint32_t kSlotBits = 28;
  static constexpr TimerId kSlotMask = (TimerId{1} << kSlotBits) - 1;

  /// Pooled timer entry, intrusively linked into its calendar bucket
  /// (doubly, so cancel() unlinks in O(1)). Buckets are kept sorted by
  /// (time, seq); seq is globally monotone, so same-time entries fire in
  /// schedule order.
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint64_t gen = 0;  ///< bumped on release; ids embed it
    std::coroutine_handle<> handle;   // either handle...
    std::function<void()> fn;         // ...or callback
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t bucket = 0;
    bool live = false;
  };

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  /// Pre-change heap entry (ablation path), byte-for-byte the old queue.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    TimerId id;
    std::coroutine_handle<> handle;
    std::function<void()> fn;
    bool operator>(const HeapEntry& o) const noexcept {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  // Wrapper coroutine that owns a spawned task for its whole lifetime.
  // Lazily started (spawn schedules it), self-destroying on completion.
  // Frames come from the coroutine frame pool.
  struct SpawnedTask {
    struct promise_type {
      static void* operator new(std::size_t n) {
        return util::FramePool::allocate(n);
      }
      static void operator delete(void* p, std::size_t n) noexcept {
        util::FramePool::deallocate(p, n);
      }
      SpawnedTask get_return_object() noexcept {
        return {std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() noexcept {}
      void unhandled_exception() noexcept { std::terminate(); }
    };
    std::coroutine_handle<promise_type> handle;
  };
  static SpawnedTask run_spawned(SimEnv* env, Task<void> task);

  // --- calendar queue internals ---------------------------------------------

  [[nodiscard]] std::uint32_t bucket_of(SimTime t) const noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(t) / static_cast<std::uint64_t>(width_)) &
        mask_);
  }
  TimerId insert_entry(SimTime t, std::coroutine_handle<> h,
                       std::function<void()> fn);
  void link_sorted(std::uint32_t idx);
  void unlink(std::uint32_t idx);
  void release(std::uint32_t idx);
  /// Advance the year scan to the next dequeueable entry; kNil if empty.
  std::uint32_t find_min();
  void rebuild(std::uint32_t new_buckets);
  void maybe_resize();
  /// Fire one entry (calendar path): set the clock, recycle the slot,
  /// then resume/invoke.
  void fire(std::uint32_t idx);

  QueueImpl impl_;

  // Calendar queue state.
  util::SlotPool<Entry> pool_;
  std::vector<Bucket> buckets_;
  SimTime width_ = 1024;        ///< bucket time width (ns)
  std::uint64_t mask_ = 0;      ///< nbuckets - 1 (nbuckets power of two)
  std::uint32_t nbuckets_ = 0;
  std::uint32_t cur_ = 0;       ///< year-scan position (bucket index)
  SimTime cur_top_ = 0;         ///< upper time bound of bucket cur_'s window
  std::size_t live_count_ = 0;

  // Heap (ablation) state.
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_set<TimerId> cancelled_;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;  ///< heap-mode ids (monotone, like pre-change)
  std::uint64_t events_processed_ = 0;
  std::size_t live_tasks_ = 0;
};

}  // namespace vmic::sim
