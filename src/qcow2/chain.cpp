#include "qcow2/chain.hpp"

namespace vmic::qcow2 {

namespace {

sim::Task<Result<block::DevicePtr>> resolve_in_dir(io::ImageDirectory* dir,
                                                   std::string name,
                                                   bool writable,
                                                   bool cache_backing_ro,
                                                   obs::Hub* hub,
                                                   int depth_left) {
  if (depth_left <= 0) co_return Errc::invalid_format;  // cycle / too deep
  VMIC_CO_TRY(backend, dir->open_file(name, writable));
  block::OpenOptions o = chain_options(*dir, writable, cache_backing_ro, hub);
  o.max_chain_depth = depth_left;
  io::ImageDirectory* dirp = dir;
  o.resolver = [dirp, cache_backing_ro, hub, depth_left](const std::string& n,
                                                         bool w) {
    return resolve_in_dir(dirp, n, w, cache_backing_ro, hub, depth_left - 1);
  };
  co_return co_await open_any(std::move(backend), o);
}

/// Open the backing image briefly to determine the virtual size a new
/// overlay must have (qemu-img inherits it the same way).
sim::Task<Result<std::uint64_t>> backing_virtual_size(
    io::ImageDirectory& dir, const std::string& backing_name) {
  VMIC_CO_TRY(dev, co_await open_image(dir, backing_name, /*writable=*/false));
  const std::uint64_t size = dev->size();
  VMIC_CO_TRY_VOID(co_await dev->close());
  co_return size;
}

}  // namespace

block::OpenOptions chain_options(io::ImageDirectory& dir, bool writable,
                                 bool cache_backing_ro, obs::Hub* hub) {
  block::OpenOptions o;
  o.writable = writable;
  o.cache_backing_ro = cache_backing_ro;
  o.hub = hub;
  io::ImageDirectory* dirp = &dir;
  const int depth = o.max_chain_depth;
  o.resolver = [dirp, cache_backing_ro, hub, depth](const std::string& name,
                                                    bool w) {
    return resolve_in_dir(dirp, name, w, cache_backing_ro, hub, depth - 1);
  };
  return o;
}

sim::Task<Result<block::DevicePtr>> open_image(io::ImageDirectory& dir,
                                               const std::string& name,
                                               bool writable,
                                               bool cache_backing_ro,
                                               obs::Hub* hub) {
  VMIC_CO_TRY(backend, dir.open_file(name, writable));
  co_return co_await open_any(
      std::move(backend), chain_options(dir, writable, cache_backing_ro, hub));
}

sim::Task<Result<void>> create_cow_image(io::ImageDirectory& dir,
                                         const std::string& name,
                                         const std::string& backing_name,
                                         ChainImageOptions opt) {
  std::uint64_t size = opt.virtual_size;
  if (size == 0) {
    VMIC_CO_TRY(s, co_await backing_virtual_size(dir, backing_name));
    size = s;
  }
  VMIC_CO_TRY(backend, dir.create_file(name));
  Qcow2Device::CreateOptions c;
  c.virtual_size = size;
  c.cluster_bits = opt.cluster_bits;
  c.backing_file = backing_name;
  c.journal_sectors = opt.journal_sectors;
  co_return co_await Qcow2Device::create(*backend, c);
}

sim::Task<Result<void>> create_cache_image(io::ImageDirectory& dir,
                                           const std::string& name,
                                           const std::string& backing_name,
                                           std::uint64_t quota,
                                           ChainImageOptions opt) {
  if (quota == 0) co_return Errc::invalid_argument;
  std::uint64_t size = opt.virtual_size;
  if (size == 0) {
    VMIC_CO_TRY(s, co_await backing_virtual_size(dir, backing_name));
    size = s;
  }
  VMIC_CO_TRY(backend, dir.create_file(name));
  Qcow2Device::CreateOptions c;
  c.virtual_size = size;
  c.cluster_bits = opt.cluster_bits;
  c.backing_file = backing_name;
  c.cache_quota = quota;
  c.journal_sectors = opt.journal_sectors;
  c.expected_file_size = quota + 16 * 1024 * 1024;
  co_return co_await Qcow2Device::create(*backend, c);
}


sim::Task<Result<std::uint64_t>> commit_image(io::ImageDirectory& dir,
                                              const std::string& name) {
  // Open the overlay read-only (we only read its clusters) and find its
  // direct backing, which we open writable *separately* — the chain
  // opener would have demoted it.
  VMIC_CO_TRY(overlay, co_await open_image(dir, name, /*writable=*/false));
  auto* q = dynamic_cast<Qcow2Device*>(overlay.get());
  if (q == nullptr) co_return Errc::invalid_argument;  // raw has no backing
  if (q->backing_file().empty()) co_return Errc::invalid_argument;
  if (q->is_cache_image()) {
    // Committing a cache would be a no-op by design (its content equals
    // the base's); reject to avoid surprises.
    co_return Errc::invalid_argument;
  }
  VMIC_CO_TRY(base, co_await open_image(dir, q->backing_file(),
                                        /*writable=*/true));
  if (base->read_only()) co_return Errc::read_only;

  std::uint64_t committed = 0;
  std::vector<std::uint8_t> buf;
  const std::uint64_t step = 4 * 1024 * 1024;
  std::uint64_t pos = 0;
  const std::uint64_t end = std::min(q->size(), base->size());
  while (pos < end) {
    VMIC_CO_TRY(st, co_await q->map_status(pos, std::min(step, end - pos)));
    if (st.kind != Qcow2Device::MapKind::unallocated) {
      buf.assign(st.len, 0);
      if (st.kind == Qcow2Device::MapKind::data ||
          st.kind == Qcow2Device::MapKind::compressed) {
        VMIC_CO_TRY_VOID(co_await q->read(pos, buf));
      }
      VMIC_CO_TRY_VOID(co_await base->write(pos, buf));
      committed += st.len;
    }
    pos += st.len;
  }
  VMIC_CO_TRY_VOID(co_await base->close());
  VMIC_CO_TRY_VOID(co_await overlay->close());
  co_return committed;
}

}  // namespace vmic::qcow2
