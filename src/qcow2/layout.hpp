#pragma once

#include <cstdint>

#include "qcow2/format.hpp"
#include "util/align.hpp"

namespace vmic::qcow2 {

/// Address-translation math for a given cluster size (paper §4.1: the
/// virtual block address splits into n L1 bits, m L2 bits, d cluster
/// bits, with m = cluster_bits - 3 because an L2 table occupies exactly
/// one cluster of 8-byte entries).
struct Layout {
  std::uint32_t cluster_bits;

  explicit constexpr Layout(std::uint32_t bits) : cluster_bits(bits) {}

  [[nodiscard]] constexpr std::uint64_t cluster_size() const {
    return 1ull << cluster_bits;
  }
  /// m: log2 of entries per L2 table.
  [[nodiscard]] constexpr std::uint32_t l2_bits() const {
    return cluster_bits - 3;
  }
  [[nodiscard]] constexpr std::uint64_t l2_entries() const {
    return 1ull << l2_bits();
  }
  /// Bytes of virtual disk covered by one L2 table.
  [[nodiscard]] constexpr std::uint64_t bytes_per_l2() const {
    return cluster_size() << l2_bits();
  }

  [[nodiscard]] constexpr std::uint64_t l1_index(std::uint64_t vaddr) const {
    return vaddr >> (cluster_bits + l2_bits());
  }
  [[nodiscard]] constexpr std::uint64_t l2_index(std::uint64_t vaddr) const {
    return (vaddr >> cluster_bits) & (l2_entries() - 1);
  }
  [[nodiscard]] constexpr std::uint64_t in_cluster(std::uint64_t vaddr) const {
    return vaddr & (cluster_size() - 1);
  }
  [[nodiscard]] constexpr std::uint64_t cluster_of(std::uint64_t vaddr) const {
    return vaddr >> cluster_bits;
  }

  /// Number of L1 entries needed for a virtual disk of `size` bytes.
  [[nodiscard]] constexpr std::uint32_t l1_entries_for(
      std::uint64_t size) const {
    return static_cast<std::uint32_t>(div_ceil(size, bytes_per_l2()));
  }

  // --- compressed cluster descriptors (L2 entries with bit 62 set) ------
  //
  // Layout follows the real qcow2 split: with x = 62 - (cluster_bits - 8),
  // bits [0, x) hold the host byte offset of the payload and bits [x, 62)
  // hold the payload's 512-byte sector count minus one. Unlike QEMU we
  // only ever emit sector-aligned payloads that never straddle a host
  // cluster boundary, so each descriptor references exactly one host
  // cluster (whose refcount counts one per referencing L2 entry).

  struct CompressedDesc {
    std::uint64_t offset = 0;   ///< host byte offset (512-aligned)
    std::uint64_t sectors = 0;  ///< payload length in 512-byte sectors
  };

  /// x: number of offset bits in a compressed descriptor.
  [[nodiscard]] constexpr std::uint32_t comp_offset_bits() const {
    return 62 - (cluster_bits - 8);
  }
  [[nodiscard]] constexpr std::uint64_t comp_offset_mask() const {
    return (1ull << comp_offset_bits()) - 1;
  }
  [[nodiscard]] constexpr std::uint64_t comp_sectors_mask() const {
    return (1ull << (62 - comp_offset_bits())) - 1;
  }

  [[nodiscard]] constexpr std::uint64_t encode_compressed(
      CompressedDesc d) const {
    return kFlagCompressed | (d.offset & comp_offset_mask()) |
           (((d.sectors - 1) & comp_sectors_mask()) << comp_offset_bits());
  }
  [[nodiscard]] constexpr CompressedDesc decode_compressed(
      std::uint64_t entry) const {
    return CompressedDesc{
        entry & comp_offset_mask(),
        ((entry >> comp_offset_bits()) & comp_sectors_mask()) + 1};
  }

  /// Our writer's invariant for a well-formed descriptor: sector-aligned
  /// payload contained in a single host cluster.
  [[nodiscard]] constexpr bool compressed_desc_sane(CompressedDesc d) const {
    if (d.offset % 512 != 0 || d.sectors == 0) return false;
    const std::uint64_t end = d.offset + d.sectors * 512;
    return (d.offset >> cluster_bits) == ((end - 1) >> cluster_bits);
  }

  // --- refcount structures (refcount_order = 4, 16-bit entries) ---------

  /// Refcount entries per refcount block (one cluster of u16).
  [[nodiscard]] constexpr std::uint64_t refcounts_per_block() const {
    return cluster_size() / 2;
  }
  /// Refcount-table entries (u64 block pointers) per table cluster.
  [[nodiscard]] constexpr std::uint64_t rt_entries_per_cluster() const {
    return cluster_size() / 8;
  }
  /// Host clusters covered by one refcount-table cluster.
  [[nodiscard]] constexpr std::uint64_t clusters_per_rt_cluster() const {
    return refcounts_per_block() * rt_entries_per_cluster();
  }
};

}  // namespace vmic::qcow2
