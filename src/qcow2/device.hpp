#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "block/device.hpp"
#include "io/backend.hpp"
#include "qcow2/format.hpp"
#include "sim/sync.hpp"
#include "qcow2/layout.hpp"

namespace vmic::qcow2 {

/// Result of a metadata consistency walk (vmi-img check, tests).
struct CheckResult {
  std::uint64_t data_clusters = 0;      ///< reachable guest-data clusters
  std::uint64_t metadata_clusters = 0;  ///< header/L1/L2/refcount clusters
  std::uint64_t leaked_clusters = 0;    ///< refcount > references
  std::uint64_t corruptions = 0;        ///< refcount < references, overlaps,
                                        ///< out-of-file pointers
  std::uint64_t compressed_clusters = 0;  ///< L2 entries with the
                                          ///< compressed bit set
  [[nodiscard]] bool clean() const noexcept {
    return leaked_clusters == 0 && corruptions == 0;
  }
};

/// What repair() did to an image (vmi-img check --repair, crash sweep).
struct RepairReport {
  bool was_dirty = false;             ///< dirty bit was set on entry
  std::uint64_t entries_cleared = 0;  ///< invalid L1/L2/refcount-table
                                      ///< pointers zeroed
  std::uint64_t leaks_dropped = 0;    ///< clusters whose refcount was
                                      ///< rebuilt downward (freed)
  std::uint64_t corruptions_fixed = 0;  ///< clusters whose refcount was
                                        ///< rebuilt upward
  bool journal_replayed = false;  ///< O(journal) replay fast path taken
  bool journal_fallback = false;  ///< replay found an inconsistency and
                                  ///< fell back to the full rebuild
  std::uint64_t journal_entries = 0;  ///< valid records replayed
  [[nodiscard]] bool changed_anything() const noexcept {
    return was_dirty || entries_cleared != 0 || leaks_dropped != 0 ||
           corruptions_fixed != 0;
  }
};

/// QCOW2 block driver with the paper's VMI-cache extension.
///
/// A device is a *cache image* when its header carries the cache extension
/// (created with cache_quota != 0). Cache images:
///  * serve reads from their own clusters when present ("warm");
///  * recurse to the backing image on a miss and copy the fetched data
///    into themselves (copy-on-read, §3.2), expanded to cluster
///    granularity — the source of the Fig 9 traffic amplification at
///    64 KiB clusters;
///  * stop populating (permanently, for this open) on the first quota
///    failure (§4.3 read/write);
///  * reject guest writes — only the CoW overlay above them is written,
///    which keeps them immutable w.r.t. the base (§3, third requirement);
///  * persist their current size into the header extension on close().
class Qcow2Device final : public block::BlockDevice {
 public:
  struct CreateOptions {
    std::uint64_t virtual_size = 0;
    std::uint32_t cluster_bits = kDefaultClusterBits;
    /// Backing file reference stored in the header (empty = standalone).
    std::string backing_file;
    /// Non-zero turns the new image into a cache image with this quota
    /// (maximum file size in bytes, §3 second requirement).
    std::uint64_t cache_quota = 0;
    /// Refcount-table sizing hint: expected maximum file size. 0 = derive
    /// from virtual_size (the table itself is cheap; it can also grow at
    /// runtime).
    std::uint64_t expected_file_size = 0;
    /// Non-zero adds a refcount journal of this many 512-byte sectors
    /// (sector 0 is the journal header, the rest hold one record each;
    /// minimum 2). Refcount mutations append records instead of writing
    /// refcount blocks in place, and a dirty image is repaired by
    /// replaying the journal — O(journal) instead of O(image). Sets the
    /// kIncompatJournal feature bit.
    std::uint32_t journal_sectors = 0;
  };

  /// Format `file` as a new QCOW2 image. Writes header (+ cache
  /// extension), refcount table/blocks and an all-unallocated L1.
  static sim::Task<Result<void>> create(io::BlockBackend& file,
                                        CreateOptions opt);

  /// Open an image, recursively opening its backing chain through
  /// `opt.resolver`. Implements the paper's permission dance: backing
  /// images are resolved writable, then demoted to read-only unless they
  /// are cache images (§4.3).
  static sim::Task<Result<block::DevicePtr>> open(
      io::BackendPtr file, const block::OpenOptions& opt);

  ~Qcow2Device() override = default;

  // --- BlockDevice -----------------------------------------------------
  sim::Task<Result<void>> read(std::uint64_t off,
                               std::span<std::uint8_t> dst) override;
  sim::Task<Result<void>> write(std::uint64_t off,
                                std::span<const std::uint8_t> src) override;
  sim::Task<Result<void>> flush() override;
  sim::Task<Result<void>> close() override;
  [[nodiscard]] std::uint64_t size() const override { return h_.size; }
  [[nodiscard]] bool read_only() const override {
    return ro_mode_ || file_->read_only();
  }
  void set_read_only_mode(bool ro) override { ro_mode_ = ro; }
  [[nodiscard]] bool is_cache_image() const override {
    return cache_.has_value();
  }
  [[nodiscard]] std::string format_name() const override { return "qcow2"; }
  [[nodiscard]] block::BlockDevice* backing() const override {
    return backing_.get();
  }

  // --- cache-image introspection ----------------------------------------
  [[nodiscard]] std::uint64_t cache_quota() const noexcept {
    return cache_ ? cache_->quota : 0;
  }
  /// Current cache size = file high-water mark (the quantity the paper's
  /// quota bounds and close() persists).
  [[nodiscard]] std::uint64_t file_bytes() const noexcept {
    if (!refcounts_loaded_) {
      // Read-only open: no allocation mirror; derive from the file.
      return align_up(file_->size(), ly_.cluster_size());
    }
    return static_cast<std::uint64_t>(refcounts_.size()) * ly_.cluster_size();
  }
  /// False once a CoR write hit the quota (no further population).
  [[nodiscard]] bool cor_active() const noexcept { return cor_enabled_; }

  /// Per-cluster-range single-flight CoR fills (default on): readers of an
  /// in-flight cluster wait for the fill and are served locally. Off =
  /// legacy behaviour — every reader fetches from the backing image
  /// (duplicates possible) and fills serialise device-wide. Kept as an
  /// ablation baseline for bench_concurrency_cor.
  void set_cor_single_flight(bool on) noexcept { cor_single_flight_ = on; }
  [[nodiscard]] bool cor_single_flight() const noexcept {
    return cor_single_flight_;
  }

  // --- compressed clusters (cache CoR fills) ------------------------------
  /// Opt CoR fills into compressed-cluster storage: compressible clusters
  /// are stored as LZSS payloads packed sector-aligned into shared host
  /// clusters (the qcow2 compressed bit/offset-mask layout), so the cache
  /// file's physical footprint — what the quota bounds — shrinks.
  /// Incompressible clusters fall back to the plain path. Ignored (stays
  /// off) on journaled images: the refcount journal's verified-recompute
  /// replay assumes one reference slot per cluster run, which shared
  /// compressed host clusters break. No effect below 2 KiB clusters
  /// (payloads are sector-granular; nothing can shrink).
  void set_cor_compress(bool on);
  [[nodiscard]] bool cor_compress() const noexcept { return cor_compress_; }

  /// Physical-vs-logical footprint of compressed clusters (an L1/L2 walk;
  /// used by vmi-img info and the benches).
  struct CompressionStats {
    std::uint64_t compressed_clusters = 0;  ///< L2 entries, logical
    std::uint64_t physical_bytes = 0;       ///< sector-padded payload bytes
    std::uint64_t logical_bytes = 0;        ///< compressed_clusters * cs
  };
  sim::Task<Result<CompressionStats>> compression_stats();

  // --- peer cache tier (vmic::peer) --------------------------------------
  /// Interceptor for backing-image fetches: given a guest byte range,
  /// either fill `dst` entirely and return true, or return false (or an
  /// error) to fall back to the normal backing-chain read. Every fetch
  /// that would hit the backing image funnels through it — CoR fills,
  /// their cluster-edge expansions, and plain read-through on caches that
  /// stopped populating — so one hook diverts all of a device's backing
  /// traffic. The hook runs under whatever locks the caller holds (for
  /// CoR fills, this device's in-flight range); it must not re-enter this
  /// device.
  using BackingFetchHook = std::function<sim::Task<Result<bool>>(
      std::uint64_t vaddr, std::span<std::uint8_t> dst)>;
  void set_backing_fetch_hook(BackingFetchHook hook) {
    fetch_hook_ = std::move(hook);
  }

  /// Observer of CoR publication: fires with the cluster-aligned guest
  /// byte range a completed fill pass just made locally servable (after
  /// the L2 entries were published, so a concurrent reader of the range
  /// would be served from this file). The peer tier feeds its seed
  /// coverage from it.
  using CorFillObserver =
      std::function<void(std::uint64_t lo, std::uint64_t hi)>;
  void set_cor_fill_observer(CorFillObserver obs) {
    fill_observer_ = std::move(obs);
  }

  // --- format introspection ----------------------------------------------
  [[nodiscard]] std::uint32_t cluster_bits() const noexcept {
    return h_.cluster_bits;
  }
  [[nodiscard]] std::uint64_t cluster_size() const noexcept {
    return ly_.cluster_size();
  }
  [[nodiscard]] const std::string& backing_file() const noexcept {
    return backing_path_;
  }
  [[nodiscard]] const Header& header() const noexcept { return h_; }
  /// Reachable guest-data bytes (allocated data clusters * cluster size).
  [[nodiscard]] std::uint64_t allocated_data_bytes() const noexcept {
    return data_clusters_ * ly_.cluster_size();
  }
  /// Bytes spent on L2 tables (paper §5.1: 3.1 MB for a 200 MB quota at
  /// 512 B clusters).
  [[nodiscard]] std::uint64_t l2_table_bytes() const noexcept {
    return l2_clusters_ * ly_.cluster_size();
  }

  /// True if the cluster containing `vaddr` is allocated locally (not in
  /// the backing chain).
  sim::Task<Result<bool>> is_allocated(std::uint64_t vaddr);

  /// Metadata consistency walk. Read-only; safe on any open image.
  sim::Task<Result<CheckResult>> check();

  /// In-place repair (requires a writable image): clears invalid L1/L2/
  /// refcount-table pointers, rebuilds every refcount from L1/L2
  /// reachability (dropping leaks, fixing under-counts), persists the
  /// rebuilt metadata and clears the dirty bit. Handles every state a
  /// power cut can leave behind (see DESIGN.md "Durability"); it does
  /// not untangle cross-linked clusters (two L2 entries sharing a data
  /// cluster), which barrier ordering makes unreachable by crash.
  sim::Task<Result<RepairReport>> repair();

  /// True while the on-disk header carries the dirty bit.
  [[nodiscard]] bool dirty() const noexcept { return dirty_; }
  /// True when refcount decrements are deferred behind the dirty bit.
  [[nodiscard]] bool lazy_refcounts() const noexcept { return lazy_; }

  // --- journal introspection --------------------------------------------
  /// True when the image carries a refcount journal (kIncompatJournal).
  [[nodiscard]] bool has_journal() const noexcept {
    return journal_.has_value();
  }
  /// Total journal sectors (header + record slots); 0 without a journal.
  [[nodiscard]] std::uint64_t journal_sector_count() const noexcept {
    return journal_sector_count_;
  }
  /// Current journal generation (from the on-disk journal header).
  [[nodiscard]] std::uint64_t journal_generation() const noexcept {
    return journal_gen_;
  }

  /// Allocation classes a virtual range can be in.
  enum class MapKind { unallocated, zero, data, compressed };

  /// Public mapping query: the allocation status at `vaddr` and the
  /// length of the extent sharing it (capped at `max_len`). Used by
  /// commit and by tools that walk an image's allocation.
  struct MapStatus {
    MapKind kind;
    std::uint64_t len;
  };
  sim::Task<Result<MapStatus>> map_status(std::uint64_t vaddr,
                                          std::uint64_t max_len);

  /// Mark [off, off+len) as reading zero. Whole clusters get the v3
  /// zero flag (releasing any data cluster they held); partial head/tail
  /// clusters are zero-filled through the normal write path.
  sim::Task<Result<void>> write_zeroes(std::uint64_t off, std::uint64_t len);

  /// Drop [off, off+len). Without a backing image whole clusters become
  /// unallocated (read as zero); with one they get the zero flag instead,
  /// so discarded data does not resurface from the backing chain.
  sim::Task<Result<void>> discard(std::uint64_t off, std::uint64_t len);

  /// Grow the virtual disk to `new_size` (>= current size). Relocates the
  /// L1 table if the new size needs more entries.
  sim::Task<Result<void>> resize(std::uint64_t new_size);

 private:
  Qcow2Device(io::BackendPtr file, ParsedHeader parsed);

  /// Registry-owned aggregate counters, shared by every device of the
  /// same kind (label image="cache"/"plain"). Devices come and go with
  /// each VM deployment, so per-instance attachment would churn the
  /// registry; aggregates survive the device.
  struct AggCounters {
    obs::Counter* guest_reads = nullptr;
    obs::Counter* guest_writes = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* backing_reads = nullptr;
    obs::Counter* bytes_from_backing = nullptr;
    obs::Counter* cor_fills = nullptr;
    obs::Counter* cor_clusters = nullptr;
    obs::Counter* cor_bytes = nullptr;
    obs::Counter* cor_stopped = nullptr;
    obs::Counter* cor_inflight_waits = nullptr;
    obs::Counter* cor_dedup_hits = nullptr;
    obs::Counter* alloc_lock_waits = nullptr;
    obs::Counter* repair_runs = nullptr;
    obs::Counter* repair_dirty_opens = nullptr;
    obs::Counter* repair_entries_cleared = nullptr;
    obs::Counter* repair_leaks_dropped = nullptr;
    obs::Counter* repair_corruptions_fixed = nullptr;
    obs::Counter* journal_appends = nullptr;
    obs::Counter* journal_checkpoints = nullptr;
    obs::Counter* journal_replays = nullptr;
    obs::Counter* journal_entries_replayed = nullptr;
    obs::Counter* journal_fallbacks = nullptr;
    // qcow2.compressed.* — created lazily by set_cor_compress(true), not
    // bind_obs, so compression-off runs keep their metrics snapshots
    // byte-identical to the pre-compression golden pins.
    obs::Counter* comp_clusters = nullptr;
    obs::Counter* comp_bytes_saved = nullptr;
    obs::Counter* comp_fallbacks = nullptr;
    obs::Counter* comp_reads = nullptr;
  };
  static void bump(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr) c->inc(n);
  }

  /// Fetch/Create the aggregates for this device's kind and open the
  /// "qcow2" trace track. Called from open() once cache-ness is known.
  void bind_obs(obs::Hub* hub);

  struct Extent {
    MapKind kind;
    std::uint64_t host_off;  // valid when kind == data
    std::uint64_t len;
    std::uint64_t entry = 0;  // raw L2 entry when kind == compressed
  };

  /// Where the table slot(s) referencing a cluster run live on disk —
  /// recorded in journal entries so replay can *verify* each reference
  /// instead of trusting a count delta. `run` means one 8-byte slot whose
  /// pointer covers the whole run (L1 entry, refcount-table entry, or a
  /// header pointer field); otherwise slot k of the run is the 8-byte
  /// entry at ref_off + k*8 (contiguous L2 entries). Ignored without a
  /// journal.
  struct RefHint {
    std::uint64_t ref_off = 0;
    bool run = false;
  };

  /// Release a contiguous run of clusters (refcounts to zero) — used when
  /// data clusters are replaced by a zero flag or deallocated. One ranged
  /// refcount write per run: a per-cluster loop of awaits can exhaust the
  /// native stack when symmetric transfer is not a tail call (sanitizers).
  sim::Task<Result<void>> free_clusters(std::uint64_t host_off,
                                        std::uint64_t count, RefHint hint);
  /// Set raw L2 entry values for `count` clusters from `vaddr` (no
  /// COPIED/offset packing — caller passes the exact entry).
  sim::Task<Result<void>> set_l2_raw(std::uint64_t vaddr, std::uint64_t entry,
                                     std::uint64_t count);
  /// Set one distinct raw L2 entry per cluster for a virtually-contiguous
  /// run from `vaddr`. One metadata write per touched L2 table, not per
  /// entry (the compressed fill path publishes whole runs).
  sim::Task<Result<void>> set_l2_raw_run(std::uint64_t vaddr,
                                         std::span<const std::uint64_t> entries);

  // Address translation / metadata.
  sim::Task<Result<std::vector<std::uint64_t>*>> load_l2(
      std::uint64_t l2_host_off);
  sim::Task<Result<Extent>> map_range(std::uint64_t vaddr, std::uint64_t len);
  /// Make sure the L2 table covering `vaddr` exists (allocating it before
  /// any data clusters keeps quota failures leak-free).
  sim::Task<Result<void>> ensure_l2_table(std::uint64_t vaddr);
  sim::Task<Result<void>> set_l2_entries(std::uint64_t vaddr,
                                         std::uint64_t host_off,
                                         std::uint64_t count);

  /// Make sure the on-disk header carries the dirty bit before the first
  /// metadata mutation of this session (pwrite + flush barrier, then the
  /// mutation may proceed). Caller holds alloc_mutex_.
  sim::Task<Result<void>> ensure_dirty();
  /// Write every allocated refcount block back from the in-memory mirror
  /// (the lazy-refcounts clean-close path).
  sim::Task<Result<void>> persist_refcounts();
  /// Clear the dirty bit after a flush barrier (clean close / repair).
  sim::Task<Result<void>> write_clean_bit();

  // Allocation.
  sim::Task<Result<std::uint64_t>> alloc_clusters(std::uint64_t n,
                                                  RefHint hint);
  sim::Task<Result<void>> ensure_refcount_block(std::uint64_t cluster_idx);
  sim::Task<Result<void>> write_refcount_entries(std::uint64_t first,
                                                 std::uint64_t count);
  sim::Task<Result<void>> grow_refcount_table(std::uint64_t min_block_index);
  [[nodiscard]] std::optional<std::uint64_t> find_free_run(std::uint64_t n);
  [[nodiscard]] Result<void> quota_check(std::uint64_t end_cluster) const;

  // Refcount journal (see qcow2/journal.hpp and DESIGN.md).
  /// Append one record for a cluster run (caller holds alloc_mutex_).
  /// Checkpoints first when the journal is full. Rides the caller's
  /// flush barriers — no flush of its own.
  sim::Task<Result<void>> journal_append(std::uint32_t flags,
                                         std::uint64_t first_cluster,
                                         std::uint64_t count,
                                         RefHint hint);
  /// Write the journaled refcount blocks back from the mirror, flush,
  /// then retire every record by bumping the header generation.
  sim::Task<Result<void>> journal_checkpoint();
  /// Rewrite the journal header sector (atomic 512-byte publish).
  sim::Task<Result<void>> journal_write_header();

  /// One pass over the journal region: decoded header + the *verified*
  /// effective refcount of every cluster touched by a current-generation
  /// record (1 iff some recorded table slot durably references it).
  struct JournalScan {
    bool header_ok = false;
    std::uint64_t generation = 0;
    std::uint64_t entries = 0;  ///< valid current-generation records
    std::map<std::uint64_t, std::uint16_t> effective;
    bool inconsistent = false;  ///< record out of bounds — needs rebuild
  };
  sim::Task<Result<JournalScan>> journal_scan();
  /// O(journal) repair: replay the journal into the refcount blocks.
  /// Returns false when replay cannot prove consistency (bad journal
  /// header, record out of bounds, touched cluster without a covering
  /// refcount block) — the caller falls back to the full rebuild.
  sim::Task<Result<bool>> journal_repair_fast(RepairReport& rep);

  // Free-run index maintenance (mirror of zero entries in refcounts_).
  void claim_run(std::uint64_t first, std::uint64_t end);
  void release_run(std::uint64_t first, std::uint64_t end);
  void index_free_runs();

  /// Contention-counting acquisition of alloc_mutex_.
  [[nodiscard]] sim::InlineMutex::Awaiter lock_alloc() noexcept;

  // Copy-on-read population (cache images).
  sim::Task<Result<void>> cor_fill_read(std::uint64_t pos,
                                        std::span<std::uint8_t> dst);
  sim::Task<Result<void>> cor_read_after_wait(std::uint64_t pos,
                                              std::span<std::uint8_t> dst);
  sim::Task<Result<void>> cor_store(std::uint64_t vaddr,
                                    std::span<const std::uint8_t> data);
  /// Store a run of cluster-aligned fill clusters as compressed payloads
  /// (plain single clusters where incompressible). Batched like the plain
  /// run store: all payloads land, then ONE flush barrier, then all L2
  /// entries publish — per-cluster flushes would make compression pay a
  /// positioning cost per 4 KiB and dominate the fill latency.
  sim::Task<Result<void>> cor_store_compressed_run(
      std::uint64_t vaddr, std::span<const std::uint8_t> data);
  /// Serve a read that maps to a compressed extent: load + decompress the
  /// payload, copy the requested sub-range.
  sim::Task<Result<void>> read_compressed(std::uint64_t pos,
                                          const Extent& ext,
                                          std::span<std::uint8_t> dst);
  /// Bump the refcount of one already-allocated host cluster by one (a
  /// second compressed payload packed into it). Caller holds alloc_mutex_.
  sim::Task<Result<void>> incref_cluster(std::uint64_t cluster_idx);
  /// Decompress-modify-write: replace a compressed cluster with a plain
  /// data cluster carrying `sub` at `pos` (guest write / zero path).
  sim::Task<Result<void>> rewrite_compressed(std::uint64_t pos,
                                             const Extent& ext,
                                             std::span<const std::uint8_t> sub);
  /// Drop one compressed L2 reference: decrement the payload's host
  /// cluster (freeing it when the last sharer leaves). Caller holds
  /// alloc_mutex_ and already published the new L2 entry + barrier.
  sim::Task<Result<void>> free_compressed_entry(std::uint64_t entry,
                                                RefHint hint);
  /// Disable population permanently for this open (first failure wins;
  /// concurrent failures count once).
  void cor_stop(Errc cause);

  // Copy-on-write allocation for guest writes; `fill_from_backing` is
  // false when overwriting zero-flagged clusters (edges fill with zeros).
  sim::Task<Result<void>> cow_write(std::uint64_t vaddr,
                                    std::span<const std::uint8_t> src,
                                    bool fill_from_backing = true);

  sim::Task<Result<void>> read_from_backing(std::uint64_t vaddr,
                                            std::span<std::uint8_t> dst);

  io::BackendPtr file_;
  block::DevicePtr backing_;
  Header h_;
  Layout ly_;
  std::optional<CacheExtension> cache_;
  std::optional<JournalExtension> journal_;
  std::uint64_t cache_ext_payload_offset_ = 0;
  std::string backing_path_;
  bool cor_enabled_ = true;
  bool ro_mode_ = false;
  bool dirty_ = false;  ///< on-disk header carries kIncompatDirty
  /// The dirty bit predates this session (opened with auto_repair_dirty
  /// off and not yet repaired): close() must NOT clear it — only a
  /// repair() earns a clean mark for damage we merely inherited.
  bool dirty_inherited_ = false;
  bool lazy_ = false;  ///< defer refcount decrements while dirty

  // Journal session state. journal_head_ is the next record sector
  // (1-based; sector 0 is the header); journal_dirty_blocks_ holds the
  // refcount-block indices with journaled-but-not-checkpointed changes —
  // exactly what a checkpoint must write back.
  std::uint64_t journal_sector_count_ = 0;
  std::uint64_t journal_gen_ = 0;
  std::uint64_t journal_seq_ = 0;
  std::uint64_t journal_head_ = 1;
  std::set<std::uint64_t> journal_dirty_blocks_;
  bool journal_header_bad_ = false;  ///< on-disk header failed to decode

  std::vector<std::uint64_t> l1_;  // host-endian mirror of the L1 table
  // L2 tables cached for the lifetime of the device (QEMU caches these
  // too; the paper relies on lookups being memory-speed, §5.1).
  std::unordered_map<std::uint64_t, std::unique_ptr<std::vector<std::uint64_t>>>
      l2_tables_;
  std::vector<std::uint64_t> rt_;       // refcount-table entries (block ptrs)
  std::vector<std::uint16_t> refcounts_;  // per-host-cluster mirror
  bool refcounts_loaded_ = false;
  std::uint64_t free_guess_ = 0;
  /// Maximal runs of free clusters (first -> end, exclusive), kept in sync
  /// with refcounts_ so find_free_run is O(log n + runs skipped) instead
  /// of a linear rescan — the old scan degraded to O(file clusters) per
  /// allocation after any free rewound free_guess_ (refcount-table growth
  /// does exactly that).
  std::map<std::uint64_t, std::uint64_t> free_runs_;
  std::uint64_t data_clusters_ = 0;
  std::uint64_t l2_clusters_ = 0;
  /// Serialises metadata mutation (cluster allocation/free, L2 publish)
  /// when several coroutines share this device — e.g. guest reads racing
  /// boot-time prefetch. Payload writes happen outside it.
  sim::InlineMutex alloc_mutex_;
  /// In-flight CoR fill tracking: cluster ranges being populated. The
  /// fill owner holds its range; overlapping readers queue and are served
  /// locally afterwards (single-flight, QEMU-style in-flight COW).
  sim::RangeLock cor_inflight_;
  bool cor_single_flight_ = true;
  BackingFetchHook fetch_hook_;
  CorFillObserver fill_observer_;

  /// Compressed CoR fills (off by default; see set_cor_compress).
  bool cor_compress_ = false;
  /// The "open" packing cluster: host byte offset of the cluster new
  /// compressed payloads are appended into (0 = none), and the next free
  /// 512-byte sector inside it. Session-local — a reopen wastes the open
  /// tail, it never dangles (the cluster's refcount covers the published
  /// references only).
  std::uint64_t comp_cluster_off_ = 0;
  std::uint64_t comp_next_sector_ = 0;

  obs::Hub* hub_ = nullptr;
  std::uint32_t track_ = 0;
  AggCounters agg_;

  sim::Task<Result<void>> load_refcounts();
};

/// Probe `file` and open it with the matching driver (qcow2 by magic,
/// raw otherwise).
sim::Task<Result<block::DevicePtr>> open_any(io::BackendPtr file,
                                             const block::OpenOptions& opt);

}  // namespace vmic::qcow2
