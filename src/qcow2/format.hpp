#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace vmic::qcow2 {

// ---------------------------------------------------------------------------
// QCOW2 on-disk format (version 3), per "The QCOW2 Image Format"
// [McLoughlin 2008] and the QEMU docs/interop specification, plus the
// paper's cache header extension (§4.3).
//
// All on-disk integers are big-endian.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kMagic = 0x514649FB;  // "QFI\xfb"
inline constexpr std::uint32_t kVersion = 3;
inline constexpr std::uint32_t kHeaderLength = 104;  // v3 base header

inline constexpr std::uint32_t kMinClusterBits = 9;   // 512 B (paper's pick)
inline constexpr std::uint32_t kMaxClusterBits = 21;  // 2 MiB
inline constexpr std::uint32_t kDefaultClusterBits = 16;  // 64 KiB (QEMU)

/// refcount_order = 4 -> 16-bit refcount entries, QEMU's default.
inline constexpr std::uint32_t kRefcountOrder = 4;

/// Header-extension magics. Extensions sit between the header struct and
/// the backing file name; each is {u32 magic, u32 len, len bytes, pad to 8}.
inline constexpr std::uint32_t kExtEnd = 0x00000000;
/// The paper's cache extension: {u64 quota, u64 current_size}. Implemented
/// as an *extension* for backward compatibility with plain QCOW2 readers
/// (§4.3: "to ensure backward compatibility with normal QCOW2 images").
inline constexpr std::uint32_t kExtVmiCache = 0x76634143;  // "vcAC"
/// Refcount-journal extension: {u64 journal_offset, u64 journal_size}.
/// Points at a fixed-size region of sector-aligned journal records (see
/// qcow2/journal.hpp). Always paired with kIncompatJournal: a reader that
/// skipped the extension would trust stale refcount blocks.
inline constexpr std::uint32_t kExtVmiJournal = 0x764A524E;  // "vJRN"

/// Incompatible-feature bits (header offset 72). Bit 0 is the QCOW2
/// "dirty bit": set before the first metadata mutation of a writable
/// session and cleared on clean close. An image carrying it was not shut
/// down cleanly — its refcounts may be stale (always over-counted, never
/// under-counted, thanks to flush-barrier ordering; see DESIGN.md) and
/// must be rebuilt by `repair()` before the image is trusted again.
inline constexpr std::uint64_t kIncompatDirty = 1ull << 0;

/// Refcount-journal feature bit (incompatible): refcount mutations are
/// appended to the on-disk journal region and written back into the
/// refcount blocks only at checkpoints, so a reader that ignored the
/// journal would see stale refcounts. Repair of a dirty journaled image
/// replays the journal (O(journal)) instead of rebuilding every refcount
/// from L1/L2 reachability (O(image)).
inline constexpr std::uint64_t kIncompatJournal = 1ull << 1;

/// Compatible-feature bits (header offset 80). Lazy refcounts defer
/// refcount *decrements* behind the dirty bit; readers that don't know
/// the bit can still open the image safely (leaks only, never
/// corruption), which is what makes it a compatible feature.
inline constexpr std::uint64_t kCompatLazyRefcounts = 1ull << 0;

/// L1/L2 table entry bit layout.
inline constexpr std::uint64_t kOffsetMask = 0x00fffffffffffe00ull;
inline constexpr std::uint64_t kFlagCopied = 1ull << 63;
inline constexpr std::uint64_t kFlagCompressed = 1ull << 62;
/// v3 "all zeroes" cluster flag (L2 bit 0): the cluster reads as zeros
/// regardless of the backing chain — what write_zeroes/discard leave
/// behind on backed images.
inline constexpr std::uint64_t kFlagZero = 1ull << 0;

/// The fixed v3 header fields, in file order.
struct Header {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint64_t backing_file_offset = 0;
  std::uint32_t backing_file_size = 0;
  std::uint32_t cluster_bits = kDefaultClusterBits;
  std::uint64_t size = 0;  ///< virtual disk size
  std::uint32_t crypt_method = 0;
  std::uint32_t l1_size = 0;  ///< number of L1 entries
  std::uint64_t l1_table_offset = 0;
  std::uint64_t refcount_table_offset = 0;
  std::uint32_t refcount_table_clusters = 0;
  std::uint32_t nb_snapshots = 0;
  std::uint64_t snapshots_offset = 0;
  std::uint64_t incompatible_features = 0;
  std::uint64_t compatible_features = 0;
  std::uint64_t autoclear_features = 0;
  std::uint32_t refcount_order = kRefcountOrder;
  std::uint32_t header_length = kHeaderLength;
};

/// The paper's cache extension payload.
struct CacheExtension {
  std::uint64_t quota = 0;         ///< max file size the cache may grow to
  std::uint64_t current_size = 0;  ///< persisted on close (§4.3 "close")
};

/// Refcount-journal extension payload.
struct JournalExtension {
  std::uint64_t offset = 0;  ///< cluster-aligned start of the journal region
  std::uint64_t size = 0;    ///< region size in bytes (multiple of 512)
};

/// Fully parsed header area: fixed fields + extensions + backing name.
struct ParsedHeader {
  Header h;
  std::optional<CacheExtension> cache;
  std::optional<JournalExtension> journal;
  std::string backing_file;  ///< empty if none
  /// File offset of the cache extension's payload, so close() can update
  /// current_size in place without rewriting the whole header.
  std::uint64_t cache_ext_payload_offset = 0;
  /// Unknown extensions encountered (magic values), preserved for
  /// diagnostics; we skip them like QEMU does.
  std::vector<std::uint32_t> unknown_extensions;
};

/// Serialise a header area (fixed header, optional cache/journal
/// extensions, end marker, backing file name) into `out`, which the
/// caller sizes to at least header_area_size(). Returns the payload
/// offset of the cache extension (0 if absent).
std::uint64_t write_header_area(const Header& h,
                                const std::optional<CacheExtension>& cache,
                                const std::optional<JournalExtension>& journal,
                                const std::string& backing_file,
                                std::span<std::uint8_t> out);

/// Bytes needed for the serialized header area.
std::uint64_t header_area_size(const std::optional<CacheExtension>& cache,
                               const std::optional<JournalExtension>& journal,
                               const std::string& backing_file);

/// Parse and validate a header area read from the start of a file.
/// `buf` must hold at least the first cluster (or the whole file if
/// smaller).
Result<ParsedHeader> parse_header_area(std::span<const std::uint8_t> buf);

}  // namespace vmic::qcow2
