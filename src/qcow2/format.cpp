#include "qcow2/format.hpp"

#include <cassert>
#include <cstring>

#include "util/align.hpp"
#include "util/bytes.hpp"

namespace vmic::qcow2 {

namespace {

constexpr std::uint64_t kExtHeaderBytes = 8;  // magic + length
constexpr std::uint64_t kCacheExtPayload = 16;
constexpr std::uint64_t kJournalExtPayload = 16;

}  // namespace

std::uint64_t header_area_size(const std::optional<CacheExtension>& cache,
                               const std::optional<JournalExtension>& journal,
                               const std::string& backing_file) {
  std::uint64_t n = kHeaderLength;
  if (cache.has_value()) {
    n += kExtHeaderBytes + align_up(kCacheExtPayload, 8);
  }
  if (journal.has_value()) {
    n += kExtHeaderBytes + align_up(kJournalExtPayload, 8);
  }
  n += kExtHeaderBytes;  // end-of-extensions marker
  n += backing_file.size();
  return n;
}

std::uint64_t write_header_area(const Header& h,
                                const std::optional<CacheExtension>& cache,
                                const std::optional<JournalExtension>& journal,
                                const std::string& backing_file,
                                std::span<std::uint8_t> out) {
  assert(out.size() >= header_area_size(cache, journal, backing_file));
  std::memset(out.data(), 0, out.size());
  std::uint8_t* p = out.data();

  store_be32(p + 0, h.magic);
  store_be32(p + 4, h.version);
  store_be64(p + 8, h.backing_file_offset);
  store_be32(p + 16, h.backing_file_size);
  store_be32(p + 20, h.cluster_bits);
  store_be64(p + 24, h.size);
  store_be32(p + 32, h.crypt_method);
  store_be32(p + 36, h.l1_size);
  store_be64(p + 40, h.l1_table_offset);
  store_be64(p + 48, h.refcount_table_offset);
  store_be32(p + 56, h.refcount_table_clusters);
  store_be32(p + 60, h.nb_snapshots);
  store_be64(p + 64, h.snapshots_offset);
  store_be64(p + 72, h.incompatible_features);
  store_be64(p + 80, h.compatible_features);
  store_be64(p + 88, h.autoclear_features);
  store_be32(p + 96, h.refcount_order);
  store_be32(p + 100, h.header_length);

  std::uint64_t off = kHeaderLength;
  std::uint64_t cache_payload_off = 0;
  if (cache.has_value()) {
    store_be32(p + off, kExtVmiCache);
    store_be32(p + off + 4, static_cast<std::uint32_t>(kCacheExtPayload));
    cache_payload_off = off + kExtHeaderBytes;
    store_be64(p + cache_payload_off, cache->quota);
    store_be64(p + cache_payload_off + 8, cache->current_size);
    off = cache_payload_off + align_up(kCacheExtPayload, 8);
  }
  if (journal.has_value()) {
    store_be32(p + off, kExtVmiJournal);
    store_be32(p + off + 4, static_cast<std::uint32_t>(kJournalExtPayload));
    store_be64(p + off + kExtHeaderBytes, journal->offset);
    store_be64(p + off + kExtHeaderBytes + 8, journal->size);
    off += kExtHeaderBytes + align_up(kJournalExtPayload, 8);
  }
  store_be32(p + off, kExtEnd);
  store_be32(p + off + 4, 0);
  off += kExtHeaderBytes;

  if (!backing_file.empty()) {
    std::memcpy(p + off, backing_file.data(), backing_file.size());
  }
  return cache_payload_off;
}

Result<ParsedHeader> parse_header_area(std::span<const std::uint8_t> buf) {
  if (buf.size() < kHeaderLength) return Errc::invalid_format;
  const std::uint8_t* p = buf.data();

  ParsedHeader out;
  Header& h = out.h;
  h.magic = load_be32(p + 0);
  if (h.magic != kMagic) return Errc::invalid_format;
  h.version = load_be32(p + 4);
  if (h.version != 2 && h.version != 3) return Errc::unsupported;
  h.backing_file_offset = load_be64(p + 8);
  h.backing_file_size = load_be32(p + 16);
  h.cluster_bits = load_be32(p + 20);
  if (h.cluster_bits < kMinClusterBits || h.cluster_bits > kMaxClusterBits) {
    return Errc::invalid_format;
  }
  h.size = load_be64(p + 24);
  h.crypt_method = load_be32(p + 32);
  if (h.crypt_method != 0) return Errc::unsupported;  // no encryption
  h.l1_size = load_be32(p + 36);
  h.l1_table_offset = load_be64(p + 40);
  h.refcount_table_offset = load_be64(p + 48);
  h.refcount_table_clusters = load_be32(p + 56);
  h.nb_snapshots = load_be32(p + 60);
  h.snapshots_offset = load_be64(p + 64);
  if (h.nb_snapshots != 0) return Errc::unsupported;  // no snapshots
  if (h.version >= 3) {
    h.incompatible_features = load_be64(p + 72);
    h.compatible_features = load_be64(p + 80);
    h.autoclear_features = load_be64(p + 88);
    h.refcount_order = load_be32(p + 96);
    h.header_length = load_be32(p + 100);
    // Incompatible features we understand: the dirty bit (unclean
    // shutdown, handled by open()/repair()) and the refcount journal
    // (stale refcount blocks, replayed by repair()).
    if ((h.incompatible_features & ~(kIncompatDirty | kIncompatJournal)) != 0)
      return Errc::unsupported;
    if (h.refcount_order != kRefcountOrder) return Errc::unsupported;
    if (h.header_length < kHeaderLength) return Errc::invalid_format;
  } else {
    h.refcount_order = kRefcountOrder;
    h.header_length = 72;
  }

  const std::uint64_t cluster_size = 1ull << h.cluster_bits;
  // Basic sanity on table placement.
  if (!is_aligned(h.l1_table_offset, cluster_size) ||
      !is_aligned(h.refcount_table_offset, cluster_size)) {
    return Errc::corrupt;
  }

  // Walk the extension list (v3; v2 has none).
  std::uint64_t off = h.header_length;
  while (h.version >= 3) {
    if (off + 8 > buf.size()) return Errc::corrupt;
    const std::uint32_t magic = load_be32(p + off);
    const std::uint32_t len = load_be32(p + off + 4);
    off += 8;
    if (magic == kExtEnd) break;
    if (off + len > buf.size()) return Errc::corrupt;
    if (magic == kExtVmiCache) {
      if (len != 16) return Errc::corrupt;
      CacheExtension ce;
      ce.quota = load_be64(p + off);
      ce.current_size = load_be64(p + off + 8);
      out.cache = ce;
      out.cache_ext_payload_offset = off;
    } else if (magic == kExtVmiJournal) {
      if (len != 16) return Errc::corrupt;
      JournalExtension je;
      je.offset = load_be64(p + off);
      je.size = load_be64(p + off + 8);
      out.journal = je;
    } else {
      out.unknown_extensions.push_back(magic);
    }
    off += align_up(len, 8);
  }

  // The journal bit and extension travel together: the bit without the
  // region (or vice versa) means a writer only half-understood us.
  const bool journal_bit = (h.incompatible_features & kIncompatJournal) != 0;
  if (journal_bit != out.journal.has_value()) return Errc::corrupt;
  if (out.journal.has_value()) {
    if (!is_aligned(out.journal->offset, cluster_size) ||
        out.journal->size == 0 || out.journal->size % 512 != 0) {
      return Errc::corrupt;
    }
  }

  if (h.backing_file_offset != 0) {
    if (h.backing_file_size == 0 || h.backing_file_size > 1023) {
      return Errc::corrupt;
    }
    if (h.backing_file_offset + h.backing_file_size > buf.size()) {
      return Errc::corrupt;
    }
    out.backing_file.assign(
        reinterpret_cast<const char*>(p + h.backing_file_offset),
        h.backing_file_size);
  }

  return out;
}

}  // namespace vmic::qcow2
