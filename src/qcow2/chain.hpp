#pragma once

#include <string>

#include "block/device.hpp"
#include "io/directory.hpp"
#include "qcow2/device.hpp"

namespace vmic::qcow2 {

/// Open options whose backing resolver looks files up in `dir` (which
/// must outlive every device opened through it) and probes their format.
/// `hub`, when set, flows to every device in the chain (obs aggregates).
block::OpenOptions chain_options(io::ImageDirectory& dir, bool writable = true,
                                 bool cache_backing_ro = false,
                                 obs::Hub* hub = nullptr);

/// Open `name` from `dir`, probing the format and recursively opening the
/// backing chain. `cache_backing_ro` forces cache backings read-only —
/// use it when many VMs attach a shared warm cache (see OpenOptions).
sim::Task<Result<block::DevicePtr>> open_image(io::ImageDirectory& dir,
                                               const std::string& name,
                                               bool writable = true,
                                               bool cache_backing_ro = false,
                                               obs::Hub* hub = nullptr);

/// qemu-img-style chaining helpers (paper §4.4).
///
/// With plain QCOW2: create_cow_image(dir, "vm0.cow", base) and boot from
/// "vm0.cow". With a VMI cache:
///   1. create_cache_image(dir, "centos.cache", base, quota, 512-byte
///      clusters)  — cache image backed by the base image;
///   2. create_cow_image(dir, "vm0.cow", "centos.cache") — CoW image
///      backed by the cache;
///   3. boot from "vm0.cow".
/// The virtual size is inherited from the backing image, like qemu-img.

struct ChainImageOptions {
  std::uint32_t cluster_bits = kDefaultClusterBits;
  /// Override for the virtual size; 0 = inherit from the backing image.
  std::uint64_t virtual_size = 0;
  /// Refcount-journal sectors (0 = no journal). Off by default so the
  /// cloud-sim golden metrics stay byte-stable; deployments that want
  /// O(journal) crash repair opt in per image.
  std::uint32_t journal_sectors = 0;
};

/// Create a copy-on-write overlay backed by `backing_name`.
sim::Task<Result<void>> create_cow_image(io::ImageDirectory& dir,
                                         const std::string& name,
                                         const std::string& backing_name,
                                         ChainImageOptions opt = {});

/// Create a cache image (quota > 0) backed by `backing_name`. The paper
/// recommends 512-byte clusters for cache images (§5.1), so that is the
/// default here.
sim::Task<Result<void>> create_cache_image(io::ImageDirectory& dir,
                                           const std::string& name,
                                           const std::string& backing_name,
                                           std::uint64_t quota,
                                           ChainImageOptions opt = {
                                               .cluster_bits = 9,
                                               .virtual_size = 0});

/// qemu-img-style commit: write the overlay's local modifications (data
/// and zero clusters) into its direct backing file. Returns the number of
/// bytes committed. The overlay itself is left unchanged; callers usually
/// recreate or delete it afterwards.
sim::Task<Result<std::uint64_t>> commit_image(io::ImageDirectory& dir,
                                              const std::string& name);

}  // namespace vmic::qcow2
