#include "qcow2/device.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "block/raw.hpp"
#include "qcow2/journal.hpp"
#include "util/align.hpp"
#include "util/bytes.hpp"
#include "util/compress.hpp"
#include "util/log.hpp"

namespace vmic::qcow2 {

namespace {

/// Serialise host-endian u64 entries to a big-endian byte buffer.
void pack_be64(const std::uint64_t* src, std::size_t n,
               std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) store_be64(out + i * 8, src[i]);
}

}  // namespace

// ===========================================================================
// create
// ===========================================================================

sim::Task<Result<void>> Qcow2Device::create(io::BlockBackend& file,
                                            CreateOptions opt) {
  if (opt.virtual_size == 0) co_return Errc::invalid_argument;
  if (opt.cluster_bits < kMinClusterBits ||
      opt.cluster_bits > kMaxClusterBits) {
    co_return Errc::invalid_argument;
  }
  if (opt.backing_file.size() > 1023) co_return Errc::invalid_argument;
  if (file.read_only()) co_return Errc::read_only;

  const Layout ly{opt.cluster_bits};
  const std::uint64_t cs = ly.cluster_size();

  std::optional<CacheExtension> cache;
  if (opt.cache_quota != 0) {
    cache = CacheExtension{opt.cache_quota, 0};
  }
  std::optional<JournalExtension> journal;
  if (opt.journal_sectors != 0) {
    if (opt.journal_sectors < 2) co_return Errc::invalid_argument;
    // Offset is filled in below once the layout is known; the header-area
    // size only depends on the extension's presence.
    journal = JournalExtension{
        0, std::uint64_t{opt.journal_sectors} * kJournalSectorSize};
  }

  const std::uint64_t header_bytes =
      header_area_size(cache, journal, opt.backing_file);
  const std::uint64_t header_clusters = div_ceil(header_bytes, cs);

  const std::uint32_t l1_entries = ly.l1_entries_for(opt.virtual_size);
  const std::uint64_t l1_clusters =
      div_ceil(std::uint64_t{l1_entries} * 8, cs);

  // Refcount-table sizing: cover the expected maximum file size with some
  // slack; the table can still grow at runtime if exceeded.
  std::uint64_t expected_file = opt.expected_file_size;
  if (expected_file == 0) {
    const std::uint64_t l2_estimate = opt.virtual_size / 64;
    expected_file = opt.cache_quota != 0
                        ? opt.cache_quota * 2 + 16 * 1024 * 1024
                        : opt.virtual_size + l2_estimate + 16 * 1024 * 1024;
  }
  const std::uint64_t expected_clusters = div_ceil(expected_file, cs);
  const std::uint64_t rt_clusters = std::max<std::uint64_t>(
      1, div_ceil(div_ceil(expected_clusters, ly.refcounts_per_block()),
                  ly.rt_entries_per_cluster()));

  const std::uint64_t journal_clusters =
      journal ? div_ceil(journal->size, cs) : 0;

  // Initial refcount blocks must cover all initial clusters, whose count
  // depends on the block count — iterate to the fixed point.
  std::uint64_t nrb = 1;
  std::uint64_t total = 0;
  for (int iter = 0; iter < 8; ++iter) {
    total =
        header_clusters + rt_clusters + nrb + l1_clusters + journal_clusters;
    const std::uint64_t need = div_ceil(total, ly.refcounts_per_block());
    if (need == nrb) break;
    nrb = need;
  }
  total = header_clusters + rt_clusters + nrb + l1_clusters + journal_clusters;

  if (opt.cache_quota != 0 && opt.cache_quota < total * cs) {
    // Quota cannot even hold the metadata skeleton.
    co_return Errc::invalid_argument;
  }

  const std::uint64_t rt_off = header_clusters * cs;
  const std::uint64_t rb_off = rt_off + rt_clusters * cs;
  const std::uint64_t l1_off = rb_off + nrb * cs;
  const std::uint64_t journal_off = l1_off + l1_clusters * cs;
  if (journal) journal->offset = journal_off;

  Header h;
  h.cluster_bits = opt.cluster_bits;
  h.size = opt.virtual_size;
  h.l1_size = l1_entries;
  h.l1_table_offset = l1_off;
  h.refcount_table_offset = rt_off;
  h.refcount_table_clusters = static_cast<std::uint32_t>(rt_clusters);
  if (journal) h.incompatible_features |= kIncompatJournal;
  if (!opt.backing_file.empty()) {
    h.backing_file_offset = header_bytes - opt.backing_file.size();
    h.backing_file_size =
        static_cast<std::uint32_t>(opt.backing_file.size());
  }
  if (cache) cache->current_size = total * cs;

  // Header area (cluster 0 .. header_clusters-1).
  std::vector<std::uint8_t> hdr(header_clusters * cs, 0);
  write_header_area(h, cache, journal, opt.backing_file, hdr);
  VMIC_CO_TRY_VOID(co_await file.pwrite(0, hdr));

  // Refcount table: first nrb entries point at the initial blocks.
  {
    std::vector<std::uint8_t> rt(rt_clusters * cs, 0);
    for (std::uint64_t j = 0; j < nrb; ++j) {
      store_be64(rt.data() + j * 8, rb_off + j * cs);
    }
    VMIC_CO_TRY_VOID(co_await file.pwrite(rt_off, rt));
  }

  // Refcount blocks: clusters [0, total) have refcount 1.
  {
    std::vector<std::uint8_t> rb(cs, 0);
    for (std::uint64_t j = 0; j < nrb; ++j) {
      std::memset(rb.data(), 0, cs);
      const std::uint64_t first = j * ly.refcounts_per_block();
      for (std::uint64_t k = 0; k < ly.refcounts_per_block(); ++k) {
        if (first + k < total) store_be16(rb.data() + k * 2, 1);
      }
      VMIC_CO_TRY_VOID(co_await file.pwrite(rb_off + j * cs, rb));
    }
  }

  // L1 table: all zero (fully unallocated).
  {
    std::vector<std::uint8_t> zeros(l1_clusters * cs, 0);
    VMIC_CO_TRY_VOID(co_await file.pwrite(l1_off, zeros));
  }

  // Journal region: header sector at generation 0, all record slots
  // zeroed (zero sectors fail the record magic check and are ignored).
  if (journal) {
    std::vector<std::uint8_t> jr(journal_clusters * cs, 0);
    encode_journal_header(
        JournalHeader{0, journal->size / kJournalSectorSize},
        std::span(jr.data(), kJournalSectorSize));
    VMIC_CO_TRY_VOID(co_await file.pwrite(journal_off, jr));
  }

  VMIC_CO_TRY_VOID(co_await file.truncate(total * cs));
  VMIC_CO_TRY_VOID(co_await file.flush());
  co_return ok_result();
}

// ===========================================================================
// open
// ===========================================================================

Qcow2Device::Qcow2Device(io::BackendPtr file, ParsedHeader parsed)
    : file_(std::move(file)),
      h_(parsed.h),
      ly_(parsed.h.cluster_bits),
      cache_(parsed.cache),
      journal_(parsed.journal),
      cache_ext_payload_offset_(parsed.cache_ext_payload_offset),
      backing_path_(std::move(parsed.backing_file)) {
  if (journal_) journal_sector_count_ = journal_->size / kJournalSectorSize;
}

sim::Task<Result<block::DevicePtr>> Qcow2Device::open(
    io::BackendPtr file, const block::OpenOptions& opt) {
  if (file == nullptr) co_return Errc::invalid_argument;
  if (opt.max_chain_depth <= 0) co_return Errc::invalid_format;

  // The header area always fits in the first 4 KiB (our create() keeps
  // extensions + backing name short); reading a bit of L1 alongside is
  // harmless.
  std::vector<std::uint8_t> hdr(
      std::min<std::uint64_t>(4096, file->size()), 0);
  if (hdr.size() < kHeaderLength) co_return Errc::invalid_format;
  VMIC_CO_TRY_VOID(co_await file->pread(0, hdr));
  VMIC_CO_TRY(parsed, parse_header_area(hdr));

  auto dev = std::unique_ptr<Qcow2Device>(
      new Qcow2Device(std::move(file), std::move(parsed)));
  dev->ro_mode_ = !opt.writable;
  dev->cor_single_flight_ = opt.cor_single_flight;

  // Load the L1 table (QEMU keeps the whole L1 in memory as well).
  {
    const std::uint64_t bytes = std::uint64_t{dev->h_.l1_size} * 8;
    std::vector<std::uint8_t> buf(bytes, 0);
    VMIC_CO_TRY_VOID(co_await dev->file_->pread(dev->h_.l1_table_offset, buf));
    dev->l1_.resize(dev->h_.l1_size);
    for (std::uint32_t i = 0; i < dev->h_.l1_size; ++i) {
      dev->l1_[i] = load_be64(buf.data() + std::uint64_t{i} * 8);
    }
  }

  // Load the refcount table; the per-cluster mirror is loaded lazily on
  // first allocation (read-only consumers never pay for it).
  {
    const std::uint64_t bytes =
        std::uint64_t{dev->h_.refcount_table_clusters} * dev->ly_.cluster_size();
    std::vector<std::uint8_t> buf(bytes, 0);
    VMIC_CO_TRY_VOID(
        co_await dev->file_->pread(dev->h_.refcount_table_offset, buf));
    dev->rt_.resize(bytes / 8);
    for (std::size_t i = 0; i < dev->rt_.size(); ++i) {
      dev->rt_[i] = load_be64(buf.data() + i * 8);
    }
  }

  dev->lazy_ = opt.lazy_refcounts;
  if (opt.hub != nullptr) dev->bind_obs(opt.hub);

  // Read the journal header (one sector). It is only ever rewritten as a
  // single atomic sector, so a crash leaves either the old or the new
  // header — a failed decode means external corruption and forces repair
  // onto the full-rebuild path.
  if (dev->journal_) {
    std::uint8_t sec[kJournalSectorSize];
    VMIC_CO_TRY_VOID(co_await dev->file_->pread(dev->journal_->offset, sec));
    JournalHeader jh;
    if (decode_journal_header(sec, jh) &&
        jh.sector_count == dev->journal_sector_count_) {
      dev->journal_gen_ = jh.generation;
    } else {
      dev->journal_header_bad_ = true;
      // Recover a safe generation floor: any future bump must not
      // collide with a surviving record's generation (a collision could
      // replay a stale record against state it no longer describes).
      std::vector<std::uint8_t> region(dev->journal_->size, 0);
      VMIC_CO_TRY_VOID(co_await dev->file_->pread(dev->journal_->offset,
                                                  region));
      for (std::uint64_t s = 1; s < dev->journal_sector_count_; ++s) {
        JournalRecord r;
        if (decode_journal_record(
                std::span(region.data() + s * kJournalSectorSize,
                          kJournalSectorSize),
                r)) {
          dev->journal_gen_ = std::max(dev->journal_gen_, r.generation);
        }
      }
    }
  }

  // The dirty bit marks an unclean shutdown: on-disk refcounts may be
  // stale (over-counted only — see the barrier argument in DESIGN.md).
  // Writable opens rebuild them before trusting the allocator (qemu
  // auto-repairs dirty images the same way); journaled images replay the
  // journal instead — O(journal), which is why repair runs *before*
  // load_refcounts pays the O(image) mirror load. Tools that want to
  // report the damage first pass auto_repair_dirty = false.
  if ((dev->h_.incompatible_features & kIncompatDirty) != 0) {
    dev->dirty_ = true;
    dev->dirty_inherited_ = true;
    bump(dev->agg_.repair_dirty_opens);
    if (opt.writable && !dev->file_->read_only() && opt.auto_repair_dirty) {
      VMIC_CO_TRY(rep, co_await dev->repair());
      (void)rep;
    }
  }

  if (opt.writable && !dev->file_->read_only()) {
    VMIC_CO_TRY_VOID(co_await dev->load_refcounts());
  }

  // Open the backing chain. Per the paper (§4.3): open writable first —
  // a cache image needs write permission for copy-on-read — then demote
  // to read-only if it turns out not to be a cache image.
  if (!dev->backing_path_.empty() && !opt.no_backing) {
    if (!opt.resolver) co_return Errc::invalid_argument;
    VMIC_CO_TRY(backing, co_await opt.resolver(dev->backing_path_,
                                               /*writable=*/true));
    if (!backing->is_cache_image() || opt.cache_backing_ro) {
      backing->set_read_only_mode(true);
    }
    dev->backing_ = std::move(backing);
    if (dev->backing_->size() < dev->h_.size &&
        !dev->is_cache_image()) {
      // A CoW overlay may be larger than its backing (reads past the end
      // of the backing are zeros) — that is fine; nothing to check.
    }
    // Resolvers rebuild their own OpenOptions, so push the fill-coalescing
    // mode down the chain by hand — it must be uniform: a cache image in
    // the middle of the chain does the actual CoR.
    for (block::BlockDevice* b = dev->backing_.get(); b != nullptr;
         b = b->backing()) {
      if (b->format_name() == "qcow2") {
        static_cast<Qcow2Device*>(b)->cor_single_flight_ =
            opt.cor_single_flight;
      }
    }
  }

  co_return block::DevicePtr{std::move(dev)};
}

void Qcow2Device::bind_obs(obs::Hub* hub) {
  hub_ = hub;
  const obs::Labels ls{{"image", is_cache_image() ? "cache" : "plain"}};
  auto& r = hub_->registry;
  agg_.guest_reads = &r.counter("qcow2.guest_reads", ls);
  agg_.guest_writes = &r.counter("qcow2.guest_writes", ls);
  agg_.bytes_read = &r.counter("qcow2.bytes_read", ls);
  agg_.bytes_written = &r.counter("qcow2.bytes_written", ls);
  agg_.backing_reads = &r.counter("qcow2.backing_reads", ls);
  agg_.bytes_from_backing = &r.counter("qcow2.bytes_from_backing", ls);
  agg_.cor_fills = &r.counter("qcow2.cor_fills", ls);
  agg_.cor_clusters = &r.counter("qcow2.cor_clusters", ls);
  agg_.cor_bytes = &r.counter("qcow2.cor_bytes", ls);
  agg_.cor_stopped = &r.counter("qcow2.cor_stopped", ls);
  agg_.cor_inflight_waits = &r.counter("qcow2.cor.inflight_waits", ls);
  agg_.cor_dedup_hits = &r.counter("qcow2.cor.dedup_hits", ls);
  agg_.alloc_lock_waits = &r.counter("qcow2.alloc_lock_waits", ls);
  agg_.repair_runs = &r.counter("qcow2.repair.runs", ls);
  agg_.repair_dirty_opens = &r.counter("qcow2.repair.dirty_opens", ls);
  agg_.repair_entries_cleared = &r.counter("qcow2.repair.entries_cleared", ls);
  agg_.repair_leaks_dropped = &r.counter("qcow2.repair.leaks_dropped", ls);
  agg_.repair_corruptions_fixed =
      &r.counter("qcow2.repair.corruptions_fixed", ls);
  agg_.journal_appends = &r.counter("qcow2.journal.appends", ls);
  agg_.journal_checkpoints = &r.counter("qcow2.journal.checkpoints", ls);
  agg_.journal_replays = &r.counter("qcow2.journal.replays", ls);
  agg_.journal_entries_replayed =
      &r.counter("qcow2.journal.entries_replayed", ls);
  agg_.journal_fallbacks = &r.counter("qcow2.journal.fallbacks", ls);
  track_ = hub_->tracer.track("qcow2");
}

sim::Task<Result<void>> Qcow2Device::load_refcounts() {
  if (refcounts_loaded_) co_return ok_result();
  const std::uint64_t cs = ly_.cluster_size();
  refcounts_.assign(div_ceil(file_->size(), cs), 0);
  std::vector<std::uint8_t> buf(cs, 0);
  for (std::size_t bi = 0; bi < rt_.size(); ++bi) {
    const std::uint64_t block_off = rt_[bi] & kOffsetMask;
    if (block_off == 0) continue;
    VMIC_CO_TRY_VOID(co_await file_->pread(block_off, buf));
    const std::uint64_t first = bi * ly_.refcounts_per_block();
    for (std::uint64_t k = 0; k < ly_.refcounts_per_block(); ++k) {
      const std::uint64_t idx = first + k;
      if (idx >= refcounts_.size()) break;
      refcounts_[idx] = load_be16(buf.data() + k * 2);
    }
  }
  // Dirty journaled image: the on-disk blocks are stale for every
  // journaled mutation since the last checkpoint. Overlay the journal's
  // verified effective counts so the mirror (and check()) see the real
  // durable state mid-window.
  if (journal_ && (h_.incompatible_features & kIncompatDirty) != 0 &&
      !journal_header_bad_) {
    VMIC_CO_TRY(scan, co_await journal_scan());
    if (scan.header_ok) {
      for (const auto& [c, v] : scan.effective) {
        if (c >= refcounts_.size()) refcounts_.resize(c + 1, 0);
        refcounts_[c] = v;
      }
    }
  }
  refcounts_loaded_ = true;
  index_free_runs();
  co_return ok_result();
}

// ===========================================================================
// address translation
// ===========================================================================

sim::Task<Result<std::vector<std::uint64_t>*>> Qcow2Device::load_l2(
    std::uint64_t l2_host_off) {
  auto it = l2_tables_.find(l2_host_off);
  if (it != l2_tables_.end()) co_return it->second.get();

  const std::uint64_t cs = ly_.cluster_size();
  std::vector<std::uint8_t> buf(cs, 0);
  VMIC_CO_TRY_VOID(co_await file_->pread(l2_host_off, buf));
  // Another coroutine may have loaded (and possibly mutated) this table
  // while we awaited the read — keep theirs, or emplace() would silently
  // fail and return a pointer the caller believes is cached.
  if (auto again = l2_tables_.find(l2_host_off); again != l2_tables_.end()) {
    co_return again->second.get();
  }
  auto table = std::make_unique<std::vector<std::uint64_t>>(ly_.l2_entries());
  for (std::uint64_t i = 0; i < ly_.l2_entries(); ++i) {
    (*table)[i] = load_be64(buf.data() + i * 8);
  }
  auto* raw = table.get();
  l2_tables_.emplace(l2_host_off, std::move(table));
  co_return raw;
}

sim::Task<Result<Qcow2Device::Extent>> Qcow2Device::map_range(
    std::uint64_t vaddr, std::uint64_t len) {
  assert(vaddr < h_.size);
  len = std::min(len, h_.size - vaddr);
  // Cap at the coverage boundary of one L2 table.
  const std::uint64_t l2_span = ly_.bytes_per_l2();
  len = std::min(len, l2_span - (vaddr & (l2_span - 1)));

  const std::uint64_t i1 = ly_.l1_index(vaddr);
  if (i1 >= l1_.size()) co_return Errc::corrupt;
  const std::uint64_t l2_off = l1_[i1] & kOffsetMask;
  if (l2_off == 0) co_return Extent{MapKind::unallocated, 0, len};

  VMIC_CO_TRY(l2, co_await load_l2(l2_off));
  const std::uint64_t cs = ly_.cluster_size();
  std::uint64_t i2 = ly_.l2_index(vaddr);
  const std::uint64_t in_cl = ly_.in_cluster(vaddr);

  auto classify = [](std::uint64_t entry) {
    // Compressed before anything else: a compressed descriptor's offset
    // and sector-count fields overlap both kFlagZero and kOffsetMask.
    if ((entry & kFlagCompressed) != 0) return MapKind::compressed;
    if ((entry & kFlagZero) != 0) return MapKind::zero;
    if ((entry & kOffsetMask) == 0) return MapKind::unallocated;
    return MapKind::data;
  };

  const std::uint64_t first_entry = (*l2)[i2];
  const MapKind kind = classify(first_entry);
  const std::uint64_t first = first_entry & kOffsetMask;

  std::uint64_t run = cs - in_cl;
  if (kind == MapKind::compressed) {
    // Compressed extents never coalesce: each carries its own descriptor.
    co_return Extent{MapKind::compressed, 0, std::min(len, run), first_entry};
  }
  if (kind != MapKind::data) {
    while (run < len && ++i2 < ly_.l2_entries() &&
           classify((*l2)[i2]) == kind) {
      run += cs;
    }
    co_return Extent{kind, 0, std::min(len, run)};
  }
  std::uint64_t expect = first + cs;
  while (run < len && ++i2 < ly_.l2_entries() &&
         classify((*l2)[i2]) == MapKind::data &&
         ((*l2)[i2] & kOffsetMask) == expect) {
    run += cs;
    expect += cs;
  }
  co_return Extent{MapKind::data, first + in_cl, std::min(len, run)};
}

sim::Task<Result<Qcow2Device::MapStatus>> Qcow2Device::map_status(
    std::uint64_t vaddr, std::uint64_t max_len) {
  if (vaddr >= h_.size) co_return Errc::out_of_range;
  VMIC_CO_TRY(ext, co_await map_range(vaddr, max_len));
  co_return MapStatus{ext.kind, ext.len};
}

sim::Task<Result<bool>> Qcow2Device::is_allocated(std::uint64_t vaddr) {
  if (vaddr >= h_.size) co_return Errc::out_of_range;
  VMIC_CO_TRY(ext, co_await map_range(vaddr, 1));
  co_return ext.kind != MapKind::unallocated;
}

sim::Task<Result<void>> Qcow2Device::ensure_l2_table(std::uint64_t vaddr) {
  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t i1 = ly_.l1_index(vaddr);
  if (i1 >= l1_.size()) co_return Errc::corrupt;
  if ((l1_[i1] & kOffsetMask) != 0) co_return ok_result();

  // Allocate and zero a fresh L2 table, then hook it into the L1.
  VMIC_CO_TRY(l2_off,
              co_await alloc_clusters(
                  1, RefHint{h_.l1_table_offset + i1 * 8, /*run=*/true}));
  std::vector<std::uint8_t> zeros(cs, 0);
  VMIC_CO_TRY_VOID(co_await file_->pwrite(l2_off, zeros));
  // Barrier: the table must be durably zeroed before the L1 publishes it
  // (a crash must never expose a table of leftover garbage entries).
  VMIC_CO_TRY_VOID(co_await file_->flush());
  l2_tables_.emplace(
      l2_off, std::make_unique<std::vector<std::uint64_t>>(ly_.l2_entries()));
  l1_[i1] = l2_off | kFlagCopied;
  ++l2_clusters_;
  std::uint8_t be[8];
  store_be64(be, l1_[i1]);
  VMIC_CO_TRY_VOID(co_await file_->pwrite(h_.l1_table_offset + i1 * 8, be));
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::set_l2_entries(std::uint64_t vaddr,
                                                    std::uint64_t host_off,
                                                    std::uint64_t count) {
  const std::uint64_t cs = ly_.cluster_size();
  VMIC_CO_TRY_VOID(co_await ensure_l2_table(vaddr));
  const std::uint64_t i1 = ly_.l1_index(vaddr);
  const std::uint64_t l2_off = l1_[i1] & kOffsetMask;
  VMIC_CO_TRY(l2, co_await load_l2(l2_off));
  const std::uint64_t i2 = ly_.l2_index(vaddr);
  assert(i2 + count <= ly_.l2_entries());

  std::vector<std::uint8_t> be(count * 8);
  for (std::uint64_t k = 0; k < count; ++k) {
    (*l2)[i2 + k] = (host_off + k * cs) | kFlagCopied;
    store_be64(be.data() + k * 8, (*l2)[i2 + k]);
  }
  VMIC_CO_TRY_VOID(co_await file_->pwrite(l2_off + i2 * 8, be));
  co_return ok_result();
}

// ===========================================================================
// allocation & refcounts
// ===========================================================================

Result<void> Qcow2Device::quota_check(std::uint64_t end_cluster) const {
  if (!cache_) return ok_result();
  if (end_cluster * ly_.cluster_size() > cache_->quota) {
    return Errc::no_space;
  }
  return ok_result();
}

void Qcow2Device::index_free_runs() {
  free_runs_.clear();
  const std::uint64_t size = refcounts_.size();
  std::uint64_t i = 0;
  while (i < size) {
    if (refcounts_[i] != 0) {
      ++i;
      continue;
    }
    std::uint64_t j = i + 1;
    while (j < size && refcounts_[j] == 0) ++j;
    free_runs_.emplace(i, j);
    i = j;
  }
}

void Qcow2Device::claim_run(std::uint64_t first, std::uint64_t end) {
  // Remove [first, end) from the index; runs are maximal and disjoint, so
  // at most the straddling edges survive as clipped remainders.
  auto it = free_runs_.upper_bound(first);
  if (it != free_runs_.begin()) --it;
  while (it != free_runs_.end() && it->first < end) {
    const std::uint64_t s = it->first;
    const std::uint64_t e = it->second;
    if (e <= first) {
      ++it;
      continue;
    }
    it = free_runs_.erase(it);
    if (s < first) free_runs_.emplace(s, first);
    if (e > end) {
      free_runs_.emplace(end, e);
      break;
    }
  }
}

void Qcow2Device::release_run(std::uint64_t first, std::uint64_t end) {
  // Insert [first, end), merging with adjacent or overlapping runs so the
  // index stays maximal.
  auto next = free_runs_.lower_bound(first);
  if (next != free_runs_.begin()) {
    auto prev = std::prev(next);
    if (prev->second >= first) {
      first = prev->first;
      end = std::max(end, prev->second);
      free_runs_.erase(prev);
    }
  }
  while (next != free_runs_.end() && next->first <= end) {
    end = std::max(end, next->second);
    next = free_runs_.erase(next);
  }
  free_runs_.emplace(first, end);
}

std::optional<std::uint64_t> Qcow2Device::find_free_run(std::uint64_t n) {
  // First fit over the free-run index, reproducing the placement of the
  // legacy linear scan exactly: candidates are considered from
  // max(run start, free_guess_) upwards, and the run touching the end of
  // the file always fits (the file grows underneath it). The region
  // beyond the end of the file counts as free.
  const std::uint64_t size = refcounts_.size();
  auto it = free_runs_.upper_bound(free_guess_);
  if (it != free_runs_.begin()) {
    auto p = std::prev(it);
    if (p->second > free_guess_) it = p;
  }
  for (; it != free_runs_.end(); ++it) {
    const std::uint64_t s = std::max(it->first, free_guess_);
    if (it->second == size) return s;  // trailing run: append/straddle
    if (it->second - s >= n) return s;
  }
  return size;  // append at the end of the file
}

sim::Task<Result<std::uint64_t>> Qcow2Device::alloc_clusters(
    std::uint64_t n, RefHint hint) {
  assert(n > 0);
  assert(alloc_mutex_.locked() && "allocation requires alloc_mutex_");
  if (!refcounts_loaded_) {
    VMIC_CO_TRY_VOID(co_await load_refcounts());
  }
  VMIC_CO_TRY_VOID(co_await ensure_dirty());
  const auto found = find_free_run(n);
  assert(found.has_value());
  const std::uint64_t idx = *found;
  const std::uint64_t end = idx + n;
  VMIC_CO_TRY_VOID(quota_check(std::max<std::uint64_t>(end, refcounts_.size())));

  const std::uint64_t old_size = refcounts_.size();
  if (end > refcounts_.size()) refcounts_.resize(end, 0);
  for (std::uint64_t i = idx; i < end; ++i) refcounts_[i] = 1;
  claim_run(idx, end);

  // Make sure every touched refcount block exists, then persist entries.
  const std::uint64_t rpb = ly_.refcounts_per_block();
  for (std::uint64_t bi = idx / rpb; bi <= (end - 1) / rpb; ++bi) {
    auto r = co_await ensure_refcount_block(bi * rpb);
    if (!r.ok()) {
      // Roll back the marks so the mirror stays consistent. The rare
      // failure path just rebuilds the free-run index from scratch.
      for (std::uint64_t i = idx; i < end; ++i) refcounts_[i] = 0;
      refcounts_.resize(std::max(old_size, idx));
      index_free_runs();
      co_return r.error();
    }
  }
  if (journal_) {
    // Journal mode: the record IS the persistence — the blocks are only
    // written back at checkpoints. Rides the caller's publish barrier.
    VMIC_CO_TRY_VOID(co_await journal_append(
        kJournalOpAlloc | (hint.run ? kJournalRefRun : 0), idx, n, hint));
  } else {
    VMIC_CO_TRY_VOID(co_await write_refcount_entries(idx, n));
  }
  free_guess_ = end;
  co_return idx * ly_.cluster_size();
}

sim::Task<Result<void>> Qcow2Device::ensure_refcount_block(
    std::uint64_t cluster_idx) {
  const std::uint64_t rpb = ly_.refcounts_per_block();
  const std::uint64_t bi = cluster_idx / rpb;
  if (bi >= rt_.size()) {
    VMIC_CO_TRY_VOID(co_await grow_refcount_table(bi));
  }
  if ((rt_[bi] & kOffsetMask) != 0) co_return ok_result();

  // Allocate a cluster for the new block by hand (cannot recurse through
  // alloc_clusters: that is what calls us).
  const auto found = find_free_run(1);
  assert(found.has_value());
  const std::uint64_t b = *found;
  VMIC_CO_TRY_VOID(
      quota_check(std::max<std::uint64_t>(b + 1, refcounts_.size())));
  if (b + 1 > refcounts_.size()) refcounts_.resize(b + 1, 0);
  refcounts_[b] = 1;
  claim_run(b, b + 1);
  rt_[bi] = b * ly_.cluster_size();

  // If the new block's own cluster is covered by a different (absent)
  // block, create that one too; recursion terminates because each level
  // covers rpb clusters.
  if (b / rpb != bi) {
    VMIC_CO_TRY_VOID(co_await ensure_refcount_block(b));
    // b's own refcount lives in the covering block. When the recursion
    // created that block just now it snapshotted the mirror (including
    // b); but when the block already existed nothing persisted b's
    // count — write it explicitly (idempotent in the first case).
    if (journal_) {
      VMIC_CO_TRY_VOID(co_await journal_append(
          kJournalOpAlloc | kJournalRefRun, b, 1,
          RefHint{h_.refcount_table_offset + bi * 8, /*run=*/true}));
    } else {
      VMIC_CO_TRY_VOID(co_await write_refcount_entries(b, 1));
    }
  } else if (journal_) {
    // b is covered by the very block being created: the full-block write
    // below persists it, but the record still retires correctly at the
    // next checkpoint and lets replay verify the allocation.
    VMIC_CO_TRY_VOID(co_await journal_append(
        kJournalOpAlloc | kJournalRefRun, b, 1,
        RefHint{h_.refcount_table_offset + bi * 8, /*run=*/true}));
  }

  // Persist the whole new block from the mirror, then its table entry.
  const std::uint64_t cs = ly_.cluster_size();
  std::vector<std::uint8_t> buf(cs, 0);
  const std::uint64_t first = bi * rpb;
  for (std::uint64_t k = 0; k < rpb; ++k) {
    const std::uint64_t i = first + k;
    if (i < refcounts_.size() && refcounts_[i] != 0) {
      store_be16(buf.data() + k * 2, refcounts_[i]);
    }
  }
  VMIC_CO_TRY_VOID(co_await file_->pwrite(rt_[bi], buf));
  // Barrier: the block's contents must be durable before the table entry
  // publishes it.
  VMIC_CO_TRY_VOID(co_await file_->flush());
  std::uint8_t be[8];
  store_be64(be, rt_[bi]);
  VMIC_CO_TRY_VOID(
      co_await file_->pwrite(h_.refcount_table_offset + bi * 8, be));
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::write_refcount_entries(
    std::uint64_t first, std::uint64_t count) {
  const std::uint64_t rpb = ly_.refcounts_per_block();
  std::uint64_t i = first;
  const std::uint64_t end = first + count;
  while (i < end) {
    const std::uint64_t bi = i / rpb;
    const std::uint64_t block_end = std::min(end, (bi + 1) * rpb);
    const std::uint64_t block_off = rt_[bi] & kOffsetMask;
    assert(block_off != 0 && "refcount block must exist");
    std::vector<std::uint8_t> buf((block_end - i) * 2);
    for (std::uint64_t k = 0; k < block_end - i; ++k) {
      store_be16(buf.data() + k * 2, refcounts_[i + k]);
    }
    VMIC_CO_TRY_VOID(
        co_await file_->pwrite(block_off + (i - bi * rpb) * 2, buf));
    i = block_end;
  }
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::grow_refcount_table(
    std::uint64_t min_block_index) {
  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t needed_entries =
      std::max<std::uint64_t>(min_block_index + 1, rt_.size() * 2);
  const std::uint64_t new_clusters = div_ceil(needed_entries * 8, cs);

  const auto found = find_free_run(new_clusters);
  assert(found.has_value());
  const std::uint64_t idx = *found;
  const std::uint64_t end = idx + new_clusters;
  VMIC_CO_TRY_VOID(
      quota_check(std::max<std::uint64_t>(end, refcounts_.size())));
  if (end > refcounts_.size()) refcounts_.resize(end, 0);
  for (std::uint64_t i = idx; i < end; ++i) refcounts_[i] = 1;
  claim_run(idx, end);

  const std::uint64_t old_off = h_.refcount_table_offset;
  const std::uint64_t old_clusters = h_.refcount_table_clusters;

  rt_.resize(new_clusters * (cs / 8), 0);
  h_.refcount_table_offset = idx * cs;
  h_.refcount_table_clusters = static_cast<std::uint32_t>(new_clusters);

  // The new table's own clusters (and possibly blocks for them) must be
  // refcounted; rt_ now has capacity for any block index.
  const std::uint64_t rpb = ly_.refcounts_per_block();
  for (std::uint64_t bi = idx / rpb; bi <= (end - 1) / rpb; ++bi) {
    VMIC_CO_TRY_VOID(co_await ensure_refcount_block(bi * rpb));
  }
  if (journal_) {
    // The new table's clusters are referenced by the header's own
    // refcount-table pointer (offset 48) once the switch-over publishes.
    VMIC_CO_TRY_VOID(co_await journal_append(
        kJournalOpAlloc | kJournalRefRun, idx, new_clusters,
        RefHint{48, /*run=*/true}));
  } else {
    VMIC_CO_TRY_VOID(co_await write_refcount_entries(idx, new_clusters));
  }

  // Persist the full new table.
  {
    std::vector<std::uint8_t> buf(new_clusters * cs, 0);
    pack_be64(rt_.data(), rt_.size(), buf.data());
    VMIC_CO_TRY_VOID(co_await file_->pwrite(h_.refcount_table_offset, buf));
  }
  // Barrier: the new table must be durable before the header points at it.
  VMIC_CO_TRY_VOID(co_await file_->flush());
  // Point the header at it.
  {
    std::uint8_t be[12];
    store_be64(be, h_.refcount_table_offset);
    store_be32(be + 8, h_.refcount_table_clusters);
    VMIC_CO_TRY_VOID(co_await file_->pwrite(48, be));
  }
  // Barrier: the switch-over must be durable before the old table's
  // clusters are released for reuse — a crash in between may leak the
  // old table, never point at a reclaimed one.
  VMIC_CO_TRY_VOID(co_await file_->flush());
  // Release the old table's clusters.
  const std::uint64_t old_first = old_off / cs;
  for (std::uint64_t i = 0; i < old_clusters; ++i) {
    refcounts_[old_first + i] = 0;
  }
  release_run(old_first, old_first + old_clusters);
  if (journal_) {
    if (!lazy_) {
      VMIC_CO_TRY_VOID(co_await journal_append(
          kJournalOpFree | kJournalRefRun, old_first, old_clusters,
          RefHint{48, /*run=*/true}));
    }
    // Earlier records may reference slots inside the *old* table (every
    // refcount-block record names its table entry by file offset). Those
    // clusters are free for reuse now, and reused bytes would break the
    // records' reference checks — checkpoint to retire every record
    // before any reuse can happen.
    VMIC_CO_TRY_VOID(co_await journal_checkpoint());
  } else if (!lazy_) {
    VMIC_CO_TRY_VOID(co_await write_refcount_entries(old_first, old_clusters));
  }
  free_guess_ = std::min(free_guess_, old_first);
  co_return ok_result();
}

// ===========================================================================
// read path (incl. copy-on-read)
// ===========================================================================

sim::Task<Result<void>> Qcow2Device::read_from_backing(
    std::uint64_t vaddr, std::span<std::uint8_t> dst) {
  if (fetch_hook_) {
    // Peer tier first; a miss/timeout there (false or an error) falls
    // through to the normal backing read, so the hook can only ever
    // divert traffic, never lose it.
    auto served = co_await fetch_hook_(vaddr, dst);
    if (served.ok() && *served) co_return ok_result();
  }
  if (!backing_) {
    std::memset(dst.data(), 0, dst.size());
    co_return ok_result();
  }
  ++stats_.backing_reads;
  stats_.bytes_from_backing += dst.size();
  bump(agg_.backing_reads);
  bump(agg_.bytes_from_backing, dst.size());
  if (vaddr >= backing_->size()) {
    std::memset(dst.data(), 0, dst.size());
    co_return ok_result();
  }
  const std::uint64_t avail = backing_->size() - vaddr;
  if (dst.size() <= avail) {
    co_return co_await backing_->read(vaddr, dst);
  }
  VMIC_CO_TRY_VOID(co_await backing_->read(vaddr, dst.first(avail)));
  std::memset(dst.data() + avail, 0, dst.size() - avail);
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::read(std::uint64_t off,
                                          std::span<std::uint8_t> dst) {
  if (off + dst.size() > h_.size) co_return Errc::out_of_range;
  ++stats_.guest_reads;
  stats_.bytes_read += dst.size();
  bump(agg_.guest_reads);
  bump(agg_.bytes_read, dst.size());

  std::uint64_t pos = off;
  const std::uint64_t end = off + dst.size();
  while (pos < end) {
    VMIC_CO_TRY(ext, co_await map_range(pos, end - pos));
    auto sub = dst.subspan(pos - off, ext.len);
    if (ext.kind == MapKind::data) {
      VMIC_CO_TRY_VOID(co_await file_->pread(ext.host_off, sub));
    } else if (ext.kind == MapKind::compressed) {
      VMIC_CO_TRY_VOID(co_await read_compressed(pos, ext, sub));
    } else if (ext.kind == MapKind::zero) {
      std::memset(sub.data(), 0, sub.size());
    } else if (backing_) {
      if (cache_ && cor_enabled_ && !read_only()) {
        VMIC_CO_TRY_VOID(co_await cor_fill_read(pos, sub));
      } else {
        VMIC_CO_TRY_VOID(co_await read_from_backing(pos, sub));
      }
    } else {
      std::memset(sub.data(), 0, sub.size());
    }
    pos += ext.len;
  }
  co_return ok_result();
}

sim::InlineMutex::Awaiter Qcow2Device::lock_alloc() noexcept {
  if (alloc_mutex_.locked()) {
    ++stats_.alloc_lock_waits;
    bump(agg_.alloc_lock_waits);
  }
  return alloc_mutex_.lock();
}

void Qcow2Device::cor_stop(Errc cause) {
  // Transition-once: the first quota (or medium) failure disables
  // population for the rest of this open; concurrent fills that fail in
  // the same window must not double-count the stop event (§4.3 "read" —
  // the guest reads themselves all succeed).
  if (!cor_enabled_) return;
  cor_enabled_ = false;
  ++stats_.cor_stopped;
  bump(agg_.cor_stopped);
  VMIC_LOG_DEBUG("cache population stopped: %s",
                 std::string(to_string(cause)).c_str());
}

/// Unallocated-extent read on a CoR-active cache image. With single-flight
/// enabled the first reader of a cluster range becomes the fill owner:
/// it holds the range in cor_inflight_ across backing fetch + store, so
/// fills to disjoint ranges proceed in parallel while overlapping readers
/// queue and are served locally afterwards — exactly one backing fetch
/// per cluster. Legacy mode reproduces the pre-range-lock behaviour:
/// every reader fetches from the backing image first (duplicates
/// possible), then fills serialise device-wide.
sim::Task<Result<void>> Qcow2Device::cor_fill_read(
    std::uint64_t pos, std::span<std::uint8_t> dst) {
  if (!cor_single_flight_) {
    VMIC_CO_TRY_VOID(co_await read_from_backing(pos, dst));
    if (!cor_enabled_) co_return ok_result();
    auto guard = co_await cor_inflight_.acquire(0, ~std::uint64_t{0});
    if (guard.waited()) {
      ++stats_.cor_inflight_waits;
      bump(agg_.cor_inflight_waits);
      if (!cor_enabled_) co_return ok_result();
    }
    obs::Span fill;
    if (obs::tracing(hub_)) {
      fill = hub_->tracer.span(track_, "qcow2.cor_fill", "qcow2",
                               "\"bytes\":" + std::to_string(dst.size()));
    }
    auto r = co_await cor_store(pos, dst);
    if (!r.ok()) cor_stop(r.error());
    co_return ok_result();
  }

  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t lo = align_down(pos, cs);
  const std::uint64_t hi = align_up(pos + dst.size(), cs);
  auto guard = co_await cor_inflight_.acquire(lo, hi);
  if (guard.waited()) {
    // Someone filled (or tried to fill) our clusters while we queued:
    // serve from the cache where possible instead of re-fetching.
    ++stats_.cor_inflight_waits;
    bump(agg_.cor_inflight_waits);
    co_return co_await cor_read_after_wait(pos, dst);
  }
  VMIC_CO_TRY_VOID(co_await read_from_backing(pos, dst));
  if (!cor_enabled_) co_return ok_result();  // stop raced with our fetch
  obs::Span fill;
  if (obs::tracing(hub_)) {
    fill = hub_->tracer.span(track_, "qcow2.cor_fill", "qcow2",
                             "\"bytes\":" + std::to_string(dst.size()));
  }
  auto r = co_await cor_store(pos, dst);
  if (!r.ok()) {
    // Quota exhausted (or the medium failed): stop populating, but the
    // guest read itself has succeeded (§4.3 "read").
    cor_stop(r.error());
  }
  co_return ok_result();
}

/// Re-examine a range whose fill we waited out (we now own the range
/// lock): allocated clusters are served locally (the dedup win), anything
/// still absent — the fill failed or stopped at the quota edge — falls
/// back to the backing image with a fill attempt of our own.
sim::Task<Result<void>> Qcow2Device::cor_read_after_wait(
    std::uint64_t pos, std::span<std::uint8_t> dst) {
  const std::uint64_t cs = ly_.cluster_size();
  std::uint64_t p = pos;
  const std::uint64_t end = pos + dst.size();
  while (p < end) {
    VMIC_CO_TRY(ext, co_await map_range(p, end - p));
    auto sub = dst.subspan(p - pos, ext.len);
    if (ext.kind == MapKind::data || ext.kind == MapKind::compressed) {
      if (ext.kind == MapKind::data) {
        VMIC_CO_TRY_VOID(co_await file_->pread(ext.host_off, sub));
      } else {
        VMIC_CO_TRY_VOID(co_await read_compressed(p, ext, sub));
      }
      const std::uint64_t clusters =
          (align_up(p + ext.len, cs) - align_down(p, cs)) / cs;
      stats_.cor_dedup_hits += clusters;
      bump(agg_.cor_dedup_hits, clusters);
    } else if (ext.kind == MapKind::zero) {
      std::memset(sub.data(), 0, sub.size());
    } else {
      VMIC_CO_TRY_VOID(co_await read_from_backing(p, sub));
      if (cor_enabled_ && !read_only()) {
        auto r = co_await cor_store(p, sub);
        if (!r.ok()) cor_stop(r.error());
      }
    }
    p += ext.len;
  }
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::cor_store(
    std::uint64_t vaddr, std::span<const std::uint8_t> data) {
  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t lo = align_down(vaddr, cs);
  const std::uint64_t hi = align_up(vaddr + data.size(), cs);

  // Cluster-granularity expansion: the head/tail fill is fetched from the
  // backing image. This is exactly the effect the paper measures in
  // Fig 9 — at 64 KiB clusters a small read forces a large fill, causing
  // *more* storage-node traffic than plain QCOW2; at 512 B clusters the
  // fill is empty for sector-aligned guest I/O.
  std::vector<std::uint8_t> buf(hi - lo, 0);
  std::memcpy(buf.data() + (vaddr - lo), data.data(), data.size());
  if (vaddr > lo) {
    VMIC_CO_TRY_VOID(
        co_await read_from_backing(lo, std::span(buf.data(), vaddr - lo)));
  }
  const std::uint64_t data_end = vaddr + data.size();
  if (hi > data_end) {
    const std::uint64_t fill_end = std::min(hi, h_.size);
    if (fill_end > data_end) {
      VMIC_CO_TRY_VOID(co_await read_from_backing(
          data_end,
          std::span(buf.data() + (data_end - lo), fill_end - data_end)));
    }
  }

  // Allocate and store runs of clusters that are still absent. Metadata
  // (L2/refcount mutation) happens under alloc_mutex_; the payload write
  // does not, so disjoint fills overlap on the bulk transfer. The L2
  // entries are published only after the data landed (publish-after-
  // write) — no reader can map a cluster whose bytes are still in
  // flight, and readers of *this* range are excluded by the range lock
  // anyway.
  std::uint64_t pos = lo;
  bool stored = false;
  while (pos < hi && pos < h_.size) {
    VMIC_CO_TRY(ext, co_await map_range(pos, hi - pos));
    if (ext.kind != MapKind::unallocated) {
      pos += ext.len;
      continue;
    }
    if (cor_compress_) {
      // Compressed mode decides compressed-vs-plain per cluster but
      // batches the whole run under one flush barrier, like the plain
      // path below.
      const std::uint64_t nclusters = div_ceil(ext.len, cs);
      VMIC_CO_TRY_VOID(co_await cor_store_compressed_run(
          pos, std::span<const std::uint8_t>(buf.data() + (pos - lo),
                                             nclusters * cs)));
      stored = true;
      pos += nclusters * cs;
      continue;
    }
    const std::uint64_t want = div_ceil(ext.len, cs);
    assert(want > 0);
    std::uint64_t got = want;
    std::uint64_t host = 0;
    RefHint slots{};
    {
      auto guard = co_await lock_alloc();
      // The L2 table is created before the data clusters: a quota failure
      // then never strands an unreferenced (leaked) data cluster.
      VMIC_CO_TRY_VOID(co_await ensure_l2_table(pos));
      slots.ref_off = (l1_[ly_.l1_index(pos)] & kOffsetMask) +
                      ly_.l2_index(pos) * 8;
      // All-or-nothing allocation first; near the quota edge, degrade to
      // one-cluster steps so the cache fills up to the quota exactly
      // ("the first n blocks are stored until the quota is reached",
      // §3.2).
      auto r = co_await alloc_clusters(want, slots);
      if (!r.ok() && r.error() == Errc::no_space && want > 1) {
        got = 1;
        r = co_await alloc_clusters(1, slots);
      }
      if (!r.ok()) co_return r.error();
      host = *r;
    }
    const std::uint64_t nbytes = got * cs;
    auto wr = co_await file_->pwrite(
        host, std::span(buf.data() + (pos - lo), nbytes));
    if (wr.ok()) {
      // Barrier: the payload must be durable before the L2 entry that
      // publishes it — a crash may lose the cluster (leak), never expose
      // a mapped cluster of torn bytes.
      wr = co_await file_->flush();
    }
    {
      auto guard = co_await lock_alloc();
      if (!wr.ok()) {
        // The data never landed: release the clusters (nothing leaks)
        // and surface the medium error.
        VMIC_CO_TRY_VOID(co_await free_clusters(host, got, slots));
        co_return wr.error();
      }
      VMIC_CO_TRY_VOID(co_await set_l2_entries(pos, host, got));
    }
    data_clusters_ += got;
    stats_.cor_clusters += got;
    stats_.cor_bytes += nbytes;
    bump(agg_.cor_clusters, got);
    bump(agg_.cor_bytes, nbytes);
    stored = true;
    pos += nbytes;
  }
  if (stored) {
    ++stats_.cor_fills;
    bump(agg_.cor_fills);
    if (fill_observer_) {
      // Every cluster in [lo, hi) within the disk is now servable from
      // this file: the loop published the previously-absent runs and
      // skipped only ranges that were already allocated.
      fill_observer_(lo, std::min(hi, h_.size));
    }
  }
  co_return ok_result();
}

// ===========================================================================
// compressed clusters
// ===========================================================================

void Qcow2Device::set_cor_compress(bool on) {
  if (on && journal_) {
    // The refcount journal's verified-recompute replay checks one
    // reference slot per recorded run and masks entries with kOffsetMask —
    // both break for shared compressed host clusters. Compression stays
    // off on journaled images (documented in DESIGN.md).
    return;
  }
  cor_compress_ = on;
  if (on && hub_ != nullptr && agg_.comp_clusters == nullptr) {
    const obs::Labels ls{{"image", is_cache_image() ? "cache" : "plain"}};
    auto& r = hub_->registry;
    agg_.comp_clusters = &r.counter("qcow2.compressed.clusters", ls);
    agg_.comp_bytes_saved = &r.counter("qcow2.compressed.bytes_saved", ls);
    agg_.comp_fallbacks = &r.counter("qcow2.compressed.fallbacks", ls);
    agg_.comp_reads = &r.counter("qcow2.compressed.reads", ls);
  }
}

sim::Task<Result<void>> Qcow2Device::read_compressed(
    std::uint64_t pos, const Extent& ext, std::span<std::uint8_t> dst) {
  const std::uint64_t cs = ly_.cluster_size();
  const Layout::CompressedDesc d = ly_.decode_compressed(ext.entry);
  if (!ly_.compressed_desc_sane(d)) co_return Errc::corrupt;
  std::vector<std::uint8_t> payload(d.sectors * 512, 0);
  VMIC_CO_TRY_VOID(co_await file_->pread(d.offset, payload));
  std::vector<std::uint8_t> cluster(cs, 0);
  if (!lzss_decompress(payload, cluster)) co_return Errc::corrupt;
  const std::uint64_t in_cl = pos & (cs - 1);
  std::memcpy(dst.data(), cluster.data() + in_cl, dst.size());
  bump(agg_.comp_reads);
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::incref_cluster(std::uint64_t cluster_idx) {
  assert(alloc_mutex_.locked() && "incref requires alloc_mutex_");
  assert(!journal_ && "compression is refused on journaled images");
  if (!refcounts_loaded_) {
    VMIC_CO_TRY_VOID(co_await load_refcounts());
  }
  VMIC_CO_TRY_VOID(co_await ensure_dirty());
  if (cluster_idx >= refcounts_.size() || refcounts_[cluster_idx] == 0 ||
      refcounts_[cluster_idx] == 0xffff) {
    co_return Errc::corrupt;
  }
  ++refcounts_[cluster_idx];
  VMIC_CO_TRY_VOID(co_await write_refcount_entries(cluster_idx, 1));
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::cor_store_compressed_run(
    std::uint64_t vaddr, std::span<const std::uint8_t> data) {
  const std::uint64_t cs = ly_.cluster_size();
  assert((vaddr & (cs - 1)) == 0 && data.size() % cs == 0 &&
         !data.empty());
  const std::uint64_t n = data.size() / cs;
  const std::uint64_t spc = cs / 512;  // sectors per cluster

  // Pass 1 — compress every cluster up front (pure CPU, no locks).
  // Payloads are sector-granular, so only a shrink of at least one full
  // sector saves anything; sectors == 0 marks an incompressible cluster
  // that is stored as a plain data cluster instead.
  struct Pend {
    std::uint64_t vaddr = 0;
    std::uint64_t off = 0;      // file offset of the payload
    std::uint64_t sectors = 0;  // 0 => plain full cluster
    RefHint slots{};
    std::vector<std::uint8_t> payload;  // sector-padded; empty when plain
  };
  std::vector<Pend> pend(static_cast<std::size_t>(n));
  for (std::uint64_t k = 0; k < n; ++k) {
    Pend& p = pend[static_cast<std::size_t>(k)];
    p.vaddr = vaddr + k * cs;
    if (cs > 512) {
      std::vector<std::uint8_t> comp(cs);
      const std::size_t csize =
          lzss_compress(data.subspan(k * cs, cs), comp, cs - 512);
      if (csize > 0) {
        p.sectors = div_ceil(static_cast<std::uint64_t>(csize),
                             std::uint64_t{512});
        p.payload.assign(p.sectors * 512, 0);
        std::memcpy(p.payload.data(), comp.data(), csize);
      }
    }
  }

  // Pass 2 — allocate space for every payload under one lock hold.
  // Compressed payloads pack into the open packing cluster (ordering:
  // the incref lands before the payload/publish — a crash in between
  // leaves an over-count only, which repair() drops); incompressible
  // clusters allocate plainly. A quota failure mid-run stops the run:
  // what was placed before it is still written and published, so the
  // cache fills up to the quota edge exactly like the plain path.
  std::optional<Errc> alloc_err;
  std::size_t got = 0;
  {
    auto guard = co_await lock_alloc();
    for (auto& p : pend) {
      auto place = [&]() -> sim::Task<Result<void>> {
        VMIC_CO_TRY_VOID(co_await ensure_l2_table(p.vaddr));
        p.slots.ref_off = (l1_[ly_.l1_index(p.vaddr)] & kOffsetMask) +
                          ly_.l2_index(p.vaddr) * 8;
        if (p.sectors == 0) {
          VMIC_CO_TRY(h, co_await alloc_clusters(1, p.slots));
          p.off = h;
          co_return ok_result();
        }
        if (comp_cluster_off_ != 0 && comp_next_sector_ + p.sectors <= spc) {
          VMIC_CO_TRY_VOID(co_await incref_cluster(comp_cluster_off_ / cs));
        } else {
          // Fresh packing cluster; the old one's free tail is wasted.
          VMIC_CO_TRY(host, co_await alloc_clusters(1, p.slots));
          comp_cluster_off_ = host;
          comp_next_sector_ = 0;
          ++data_clusters_;
        }
        p.off = comp_cluster_off_ + comp_next_sector_ * 512;
        comp_next_sector_ += p.sectors;
        if (comp_next_sector_ >= spc) {
          comp_cluster_off_ = 0;
          comp_next_sector_ = 0;
        }
        co_return ok_result();
      };
      auto r = co_await place();
      if (!r.ok()) {
        alloc_err = r.error();
        break;
      }
      ++got;
    }
  }

  // Pass 3 — payload writes (outside the lock: disjoint fills overlap on
  // the bulk transfer), coalescing file-contiguous payloads into single
  // writes, then ONE flush barrier for the whole run: every payload is
  // durable before any L2 entry publishes it. Flushing per cluster would
  // charge a disk positioning cost per 4 KiB and dominate fill latency.
  Result<void> wr = ok_result();
  {
    std::vector<std::uint8_t> chunk;
    std::uint64_t chunk_off = 0;
    auto flush_chunk = [&]() -> sim::Task<Result<void>> {
      if (chunk.empty()) co_return ok_result();
      auto r = co_await file_->pwrite(chunk_off, chunk);
      chunk.clear();
      co_return r;
    };
    for (std::size_t i = 0; i < got && wr.ok(); ++i) {
      const Pend& p = pend[i];
      const std::span<const std::uint8_t> bytes =
          p.sectors == 0 ? data.subspan(p.vaddr - vaddr, cs)
                         : std::span<const std::uint8_t>(p.payload);
      if (chunk.empty() || chunk_off + chunk.size() != p.off) {
        wr = co_await flush_chunk();
        if (!wr.ok()) break;
        chunk_off = p.off;
      }
      chunk.insert(chunk.end(), bytes.begin(), bytes.end());
    }
    if (wr.ok()) wr = co_await flush_chunk();
    if (wr.ok() && got > 0) wr = co_await file_->flush();
  }

  // Pass 4 — publish every placed cluster (or roll all of them back on a
  // write failure) under one lock hold. Virtually-contiguous entries in
  // the same L2 table publish in one metadata write.
  std::uint64_t comp_count = 0;
  std::uint64_t comp_saved = 0;
  std::uint64_t plain_count = 0;
  {
    auto guard = co_await lock_alloc();
    if (!wr.ok()) {
      // Nothing was published: drop every reference this run took (a
      // clean failure must not leak; packing-cluster over-counts are a
      // crash-only artefact).
      for (std::size_t i = 0; i < got; ++i) {
        const Pend& p = pend[i];
        const std::uint64_t host = align_down(p.off, cs);
        VMIC_CO_TRY_VOID(co_await free_clusters(host, 1, p.slots));
        if (p.sectors != 0 && refcounts_[host / cs] == 0) {
          --data_clusters_;
          if (comp_cluster_off_ == host) {
            comp_cluster_off_ = 0;
            comp_next_sector_ = 0;
          }
        }
      }
      co_return wr.error();
    }
    std::vector<std::uint64_t> entries;
    entries.reserve(got);
    for (std::size_t i = 0; i < got; ++i) {
      const Pend& p = pend[i];
      if (p.sectors == 0) {
        entries.push_back((p.off & kOffsetMask) | kFlagCopied);
        ++data_clusters_;
        ++plain_count;
      } else {
        entries.push_back(ly_.encode_compressed(
            Layout::CompressedDesc{p.off, p.sectors}));
        ++comp_count;
        comp_saved += cs - p.sectors * 512;
      }
    }
    if (got > 0) {
      VMIC_CO_TRY_VOID(co_await set_l2_raw_run(vaddr, entries));
    }
  }

  stats_.cor_clusters += got;
  stats_.cor_bytes += got * cs;
  bump(agg_.cor_clusters, got);
  bump(agg_.cor_bytes, got * cs);
  bump(agg_.comp_clusters, comp_count);
  bump(agg_.comp_bytes_saved, comp_saved);
  bump(agg_.comp_fallbacks, plain_count);
  if (alloc_err) co_return *alloc_err;
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::rewrite_compressed(
    std::uint64_t pos, const Extent& ext, std::span<const std::uint8_t> sub) {
  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t lo = align_down(pos, cs);

  // Decompress-modify: splice the write over the old cluster content.
  std::vector<std::uint8_t> cluster(cs, 0);
  {
    const Layout::CompressedDesc d = ly_.decode_compressed(ext.entry);
    if (!ly_.compressed_desc_sane(d)) co_return Errc::corrupt;
    std::vector<std::uint8_t> payload(d.sectors * 512, 0);
    VMIC_CO_TRY_VOID(co_await file_->pread(d.offset, payload));
    if (!lzss_decompress(payload, cluster)) co_return Errc::corrupt;
  }
  std::memcpy(cluster.data() + (pos - lo), sub.data(), sub.size());

  std::uint64_t host = 0;
  RefHint slots{};
  {
    auto guard = co_await lock_alloc();
    VMIC_CO_TRY_VOID(co_await ensure_l2_table(lo));
    slots.ref_off = (l1_[ly_.l1_index(lo)] & kOffsetMask) +
                    ly_.l2_index(lo) * 8;
    VMIC_CO_TRY(h, co_await alloc_clusters(1, slots));
    host = h;
  }
  auto wr = co_await file_->pwrite(host, cluster);
  if (wr.ok()) wr = co_await file_->flush();
  {
    auto guard = co_await lock_alloc();
    if (!wr.ok()) {
      VMIC_CO_TRY_VOID(co_await free_clusters(host, 1, slots));
      co_return wr.error();
    }
    VMIC_CO_TRY_VOID(co_await set_l2_entries(lo, host, 1));
    // Barrier: the new mapping must be durable before the old payload's
    // reference drops (free could hand the shared cluster out again).
    VMIC_CO_TRY_VOID(co_await file_->flush());
    VMIC_CO_TRY_VOID(co_await free_compressed_entry(ext.entry, slots));
  }
  ++data_clusters_;
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::free_compressed_entry(
    std::uint64_t entry, RefHint hint) {
  const std::uint64_t cs = ly_.cluster_size();
  const Layout::CompressedDesc d = ly_.decode_compressed(entry);
  if (!ly_.compressed_desc_sane(d)) co_return Errc::corrupt;
  const std::uint64_t host = align_down(d.offset, cs);
  VMIC_CO_TRY_VOID(co_await free_clusters(host, 1, hint));
  const std::uint64_t idx = host / cs;
  if (idx < refcounts_.size() && refcounts_[idx] == 0) {
    --data_clusters_;
    if (comp_cluster_off_ == host) {
      // Never append new payloads into a freed packing cluster.
      comp_cluster_off_ = 0;
      comp_next_sector_ = 0;
    }
  }
  co_return ok_result();
}

sim::Task<Result<Qcow2Device::CompressionStats>>
Qcow2Device::compression_stats() {
  CompressionStats out;
  const std::uint64_t cs = ly_.cluster_size();
  for (const std::uint64_t l1e : l1_) {
    const std::uint64_t l2_off = l1e & kOffsetMask;
    if (l2_off == 0) continue;
    VMIC_CO_TRY(l2, co_await load_l2(l2_off));
    for (const std::uint64_t e : *l2) {
      if ((e & kFlagCompressed) == 0) continue;
      const Layout::CompressedDesc d = ly_.decode_compressed(e);
      ++out.compressed_clusters;
      out.physical_bytes += d.sectors * 512;
      out.logical_bytes += cs;
    }
  }
  co_return out;
}

// ===========================================================================
// write path (guest writes, copy-on-write)
// ===========================================================================

sim::Task<Result<void>> Qcow2Device::write(
    std::uint64_t off, std::span<const std::uint8_t> src) {
  if (off + src.size() > h_.size) co_return Errc::out_of_range;
  if (read_only()) co_return Errc::read_only;
  if (is_cache_image()) {
    // Immutability w.r.t. the base (§3): the guest never writes a cache;
    // only internal copy-on-read populates it.
    co_return Errc::read_only;
  }
  ++stats_.guest_writes;
  stats_.bytes_written += src.size();
  bump(agg_.guest_writes);
  bump(agg_.bytes_written, src.size());

  std::uint64_t pos = off;
  const std::uint64_t end = off + src.size();
  while (pos < end) {
    VMIC_CO_TRY(ext, co_await map_range(pos, end - pos));
    auto sub = src.subspan(pos - off, ext.len);
    if (ext.kind == MapKind::data) {
      VMIC_CO_TRY_VOID(co_await file_->pwrite(ext.host_off, sub));
    } else if (ext.kind == MapKind::compressed) {
      VMIC_CO_TRY_VOID(co_await rewrite_compressed(pos, ext, sub));
    } else {
      // Unallocated clusters fill their edges from the backing chain;
      // zero-flagged clusters fill with zeros.
      VMIC_CO_TRY_VOID(
          co_await cow_write(pos, sub,
                             /*fill_from_backing=*/ext.kind ==
                                 MapKind::unallocated));
    }
    pos += ext.len;
  }
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::cow_write(
    std::uint64_t vaddr, std::span<const std::uint8_t> src,
    bool fill_from_backing) {
  // Precondition: [vaddr, vaddr+len) holds no data clusters here.
  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t lo = align_down(vaddr, cs);
  const std::uint64_t hi = align_up(vaddr + src.size(), cs);

  // Copy-on-write fill: the parts of the boundary clusters not covered by
  // the write come from the backing chain (which may itself populate a
  // cache image below us — data from the base is allowed into the cache).
  // Zero-flagged clusters fill with zeros instead.
  std::vector<std::uint8_t> buf(hi - lo, 0);
  std::memcpy(buf.data() + (vaddr - lo), src.data(), src.size());
  if (vaddr > lo && fill_from_backing) {
    VMIC_CO_TRY_VOID(
        co_await read_from_backing(lo, std::span(buf.data(), vaddr - lo)));
  }
  const std::uint64_t data_end = vaddr + src.size();
  if (hi > data_end && fill_from_backing) {
    const std::uint64_t fill_end = std::min(hi, h_.size);
    if (fill_end > data_end) {
      VMIC_CO_TRY_VOID(co_await read_from_backing(
          data_end,
          std::span(buf.data() + (data_end - lo), fill_end - data_end)));
    }
  }

  std::uint64_t pos = lo;
  while (pos < hi) {
    // Allocation runs must not cross an L2 boundary.
    const std::uint64_t l2_span = ly_.bytes_per_l2();
    const std::uint64_t chunk =
        std::min(hi - pos, l2_span - (pos & (l2_span - 1)));
    const std::uint64_t n = chunk / cs;
    std::uint64_t host = 0;
    {
      auto guard = co_await lock_alloc();
      VMIC_CO_TRY_VOID(co_await ensure_l2_table(pos));
      const RefHint slots{(l1_[ly_.l1_index(pos)] & kOffsetMask) +
                              ly_.l2_index(pos) * 8,
                          /*run=*/false};
      auto r = co_await alloc_clusters(n, slots);
      if (!r.ok()) co_return r.error();
      host = *r;
    }
    VMIC_CO_TRY_VOID(co_await file_->pwrite(
        host, std::span(buf.data() + (pos - lo), chunk)));
    // Barrier: payload before publish (same argument as cor_store).
    VMIC_CO_TRY_VOID(co_await file_->flush());
    {
      auto guard = co_await lock_alloc();
      VMIC_CO_TRY_VOID(co_await set_l2_entries(pos, host, n));
    }
    data_clusters_ += n;
    pos += chunk;
  }
  co_return ok_result();
}

// ===========================================================================
// zero clusters / discard / resize
// ===========================================================================

sim::Task<Result<void>> Qcow2Device::free_clusters(std::uint64_t host_off,
                                                   std::uint64_t count,
                                                   RefHint hint) {
  assert(alloc_mutex_.locked() && "freeing requires alloc_mutex_");
  const std::uint64_t first = host_off / ly_.cluster_size();
  if (!refcounts_loaded_) {
    VMIC_CO_TRY_VOID(co_await load_refcounts());
  }
  VMIC_CO_TRY_VOID(co_await ensure_dirty());
  for (std::uint64_t i = first; i < first + count; ++i) {
    if (i >= refcounts_.size() || refcounts_[i] == 0) {
      co_return Errc::corrupt;
    }
    --refcounts_[i];
    if (refcounts_[i] == 0) release_run(i, i + 1);
  }
  // Lazy refcounts: decrements stay in the mirror while the dirty bit is
  // set — a crash leaves the on-disk count stale-high (a leak repair()
  // drops), never stale-low. Clean close persists the mirror. The same
  // holds in journal mode: a free record that never becomes durable
  // leaves a replay-surviving leak, never a corruption (the dereference
  // was flushed before the record was appended).
  if (!lazy_) {
    if (journal_) {
      VMIC_CO_TRY_VOID(co_await journal_append(
          kJournalOpFree | (hint.run ? kJournalRefRun : 0), first, count,
          hint));
    } else {
      VMIC_CO_TRY_VOID(co_await write_refcount_entries(first, count));
    }
  }
  free_guess_ = std::min(free_guess_, first);
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::set_l2_raw(std::uint64_t vaddr,
                                                std::uint64_t entry,
                                                std::uint64_t count) {
  VMIC_CO_TRY_VOID(co_await ensure_dirty());
  VMIC_CO_TRY_VOID(co_await ensure_l2_table(vaddr));
  const std::uint64_t i1 = ly_.l1_index(vaddr);
  const std::uint64_t l2_off = l1_[i1] & kOffsetMask;
  VMIC_CO_TRY(l2, co_await load_l2(l2_off));
  const std::uint64_t i2 = ly_.l2_index(vaddr);
  assert(i2 + count <= ly_.l2_entries());
  std::vector<std::uint8_t> be(count * 8);
  for (std::uint64_t k = 0; k < count; ++k) {
    (*l2)[i2 + k] = entry;
    store_be64(be.data() + k * 8, entry);
  }
  VMIC_CO_TRY_VOID(co_await file_->pwrite(l2_off + i2 * 8, be));
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::set_l2_raw_run(
    std::uint64_t vaddr, std::span<const std::uint64_t> entries) {
  VMIC_CO_TRY_VOID(co_await ensure_dirty());
  const std::uint64_t cs = ly_.cluster_size();
  std::uint64_t done = 0;
  while (done < entries.size()) {
    const std::uint64_t pos = vaddr + done * cs;
    VMIC_CO_TRY_VOID(co_await ensure_l2_table(pos));
    const std::uint64_t l2_off = l1_[ly_.l1_index(pos)] & kOffsetMask;
    VMIC_CO_TRY(l2, co_await load_l2(l2_off));
    const std::uint64_t i2 = ly_.l2_index(pos);
    const std::uint64_t count = std::min<std::uint64_t>(
        entries.size() - done, ly_.l2_entries() - i2);
    std::vector<std::uint8_t> be(count * 8);
    for (std::uint64_t k = 0; k < count; ++k) {
      (*l2)[i2 + k] = entries[done + k];
      store_be64(be.data() + k * 8, entries[done + k]);
    }
    VMIC_CO_TRY_VOID(co_await file_->pwrite(l2_off + i2 * 8, be));
    done += count;
  }
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::write_zeroes(std::uint64_t off,
                                                  std::uint64_t len) {
  if (off + len > h_.size) co_return Errc::out_of_range;
  if (read_only() || is_cache_image()) co_return Errc::read_only;
  if (len == 0) co_return ok_result();
  const std::uint64_t cs = ly_.cluster_size();

  const std::uint64_t lo = align_up(off, cs);
  const std::uint64_t hi = align_down(off + len, cs);

  if (hi <= lo) {
    // Entire range inside one cluster: plain zero write.
    std::vector<std::uint8_t> zeros(len, 0);
    co_return co_await write(off, zeros);
  }
  // Head fragment.
  if (off < lo) {
    std::vector<std::uint8_t> zeros(lo - off, 0);
    VMIC_CO_TRY_VOID(co_await write(off, zeros));
  }
  // Whole clusters: flip to the zero flag, releasing any data clusters.
  // Metadata mutation throughout — hold the allocator mutex for the loop
  // (the head/tail write() fragments above/below must stay outside it:
  // cow_write acquires it itself).
  {
    auto guard = co_await lock_alloc();
    std::uint64_t pos = lo;
    while (pos < hi) {
      VMIC_CO_TRY(ext, co_await map_range(pos, hi - pos));
      const std::uint64_t clusters = div_ceil(ext.len, cs);
      if (ext.kind != MapKind::zero) {
        // Extents from map_range never cross an L2 boundary.
        VMIC_CO_TRY_VOID(co_await set_l2_raw(pos, kFlagZero, clusters));
      }
      if (ext.kind == MapKind::data) {
        // Barrier: the L2 dereference must be durable before the
        // refcounts drop — the reverse order could persist the decrement
        // alone and hand a still-referenced cluster to the allocator.
        VMIC_CO_TRY_VOID(co_await file_->flush());
        const RefHint slots{(l1_[ly_.l1_index(pos)] & kOffsetMask) +
                                ly_.l2_index(pos) * 8,
                            /*run=*/false};
        VMIC_CO_TRY_VOID(
            co_await free_clusters(ext.host_off, clusters, slots));
        data_clusters_ -= clusters;
      } else if (ext.kind == MapKind::compressed) {
        // Same dereference-before-free barrier; the payload's host
        // cluster only frees when its last sharer leaves.
        VMIC_CO_TRY_VOID(co_await file_->flush());
        const RefHint slots{(l1_[ly_.l1_index(pos)] & kOffsetMask) +
                                ly_.l2_index(pos) * 8,
                            /*run=*/false};
        VMIC_CO_TRY_VOID(co_await free_compressed_entry(ext.entry, slots));
      }
      pos += clusters * cs;
    }
  }
  // Tail fragment.
  if (off + len > hi) {
    std::vector<std::uint8_t> zeros(off + len - hi, 0);
    VMIC_CO_TRY_VOID(co_await write(hi, zeros));
  }
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::discard(std::uint64_t off,
                                             std::uint64_t len) {
  if (off + len > h_.size) co_return Errc::out_of_range;
  if (read_only() || is_cache_image()) co_return Errc::read_only;
  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t lo = align_up(off, cs);
  const std::uint64_t hi = align_down(off + len, cs);
  // Sub-cluster fragments of a discard are dropped (advisory semantics,
  // like real discard).
  if (hi <= lo) co_return ok_result();

  if (backing_ != nullptr) {
    // With a backing image, plain deallocation would resurface stale
    // backing data; leave zero clusters instead (QEMU does the same).
    co_return co_await write_zeroes(lo, hi - lo);
  }
  auto guard = co_await lock_alloc();
  std::uint64_t pos = lo;
  while (pos < hi) {
    VMIC_CO_TRY(ext, co_await map_range(pos, hi - pos));
    const std::uint64_t clusters = div_ceil(ext.len, cs);
    if (ext.kind != MapKind::unallocated) {
      VMIC_CO_TRY_VOID(co_await set_l2_raw(pos, 0, clusters));
    }
    if (ext.kind == MapKind::data) {
      // Barrier: dereference before free (same argument as write_zeroes).
      VMIC_CO_TRY_VOID(co_await file_->flush());
      const RefHint slots{(l1_[ly_.l1_index(pos)] & kOffsetMask) +
                              ly_.l2_index(pos) * 8,
                          /*run=*/false};
      VMIC_CO_TRY_VOID(co_await free_clusters(ext.host_off, clusters, slots));
      data_clusters_ -= clusters;
    } else if (ext.kind == MapKind::compressed) {
      VMIC_CO_TRY_VOID(co_await file_->flush());
      const RefHint slots{(l1_[ly_.l1_index(pos)] & kOffsetMask) +
                              ly_.l2_index(pos) * 8,
                          /*run=*/false};
      VMIC_CO_TRY_VOID(co_await free_compressed_entry(ext.entry, slots));
    }
    pos += clusters * cs;
  }
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::resize(std::uint64_t new_size) {
  if (read_only()) co_return Errc::read_only;
  if (new_size < h_.size) co_return Errc::invalid_argument;  // grow-only
  if (new_size == h_.size) co_return ok_result();

  const std::uint32_t needed = ly_.l1_entries_for(new_size);
  if (needed > l1_.size()) {
    // Relocate the L1 table into a larger run of clusters.
    auto guard = co_await lock_alloc();
    const std::uint64_t cs = ly_.cluster_size();
    const std::uint64_t new_clusters =
        div_ceil(std::uint64_t{needed} * 8, cs);
    // The relocated L1 is referenced by the header's l1_table_offset
    // field (offset 40) once the switch-over publishes.
    VMIC_CO_TRY(new_off,
                co_await alloc_clusters(new_clusters,
                                        RefHint{40, /*run=*/true}));

    std::vector<std::uint64_t> new_l1(new_clusters * cs / 8, 0);
    std::copy(l1_.begin(), l1_.end(), new_l1.begin());
    std::vector<std::uint8_t> be(new_clusters * cs, 0);
    for (std::size_t i = 0; i < new_l1.size(); ++i) {
      store_be64(be.data() + i * 8, new_l1[i]);
    }
    VMIC_CO_TRY_VOID(co_await file_->pwrite(new_off, be));
    // Barrier: the new table must be durable before the header points at
    // it.
    VMIC_CO_TRY_VOID(co_await file_->flush());

    // Release the old table and point the header at the new one.
    const std::uint64_t old_off = h_.l1_table_offset;
    const std::uint64_t old_clusters =
        div_ceil(std::uint64_t{h_.l1_size} * 8, cs);
    l1_ = std::move(new_l1);
    h_.l1_table_offset = new_off;
    h_.l1_size = static_cast<std::uint32_t>(l1_.size());
    std::uint8_t hdr[12];
    store_be32(hdr, h_.l1_size);
    store_be64(hdr + 4, h_.l1_table_offset);
    VMIC_CO_TRY_VOID(co_await file_->pwrite(36, hdr));
    // Barrier: the switch-over must be durable before the old table's
    // clusters are reusable.
    VMIC_CO_TRY_VOID(co_await file_->flush());
    VMIC_CO_TRY_VOID(co_await free_clusters(old_off, old_clusters,
                                            RefHint{40, /*run=*/true}));
    if (journal_) {
      // Earlier L2-table records name their L1 slot by file offset —
      // inside the *old* table, whose clusters are reusable now. Retire
      // every record before reuse can scramble their reference checks.
      VMIC_CO_TRY_VOID(co_await journal_checkpoint());
    }
  }

  h_.size = new_size;
  std::uint8_t be[8];
  store_be64(be, h_.size);
  VMIC_CO_TRY_VOID(co_await file_->pwrite(24, be));
  co_return ok_result();
}

// ===========================================================================
// flush / close
// ===========================================================================

sim::Task<Result<void>> Qcow2Device::flush() {
  VMIC_CO_TRY_VOID(co_await file_->flush());
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::close() {
  if (cache_ && !read_only() && !file_->read_only()) {
    // §4.3 "close": persist the cache's current size into the header
    // extension.
    cache_->current_size = file_bytes();
    std::uint8_t be[8];
    store_be64(be, cache_->current_size);
    VMIC_CO_TRY_VOID(
        co_await file_->pwrite(cache_ext_payload_offset_ + 8, be));
  }
  if (dirty_ && !dirty_inherited_ && !file_->read_only()) {
    // Clean shutdown: settle deferred refcounts, then drop the dirty
    // mark behind a barrier. In journal mode the on-disk blocks are
    // stale for every journaled mutation — a checkpoint writes them back
    // and retires the records; in lazy mode the mirror holds deferred
    // decrements. Inherited dirt (opened dirty with auto-repair off,
    // never repaired) stays — only repair() earns it.
    if (journal_) {
      VMIC_CO_TRY_VOID(co_await journal_checkpoint());
      if (lazy_) {
        VMIC_CO_TRY_VOID(co_await persist_refcounts());
      }
    } else if (lazy_) {
      VMIC_CO_TRY_VOID(co_await persist_refcounts());
    }
    VMIC_CO_TRY_VOID(co_await write_clean_bit());
  }
  VMIC_CO_TRY_VOID(co_await file_->flush());
  if (backing_) {
    VMIC_CO_TRY_VOID(co_await backing_->close());
  }
  co_return ok_result();
}

// ===========================================================================
// durability: dirty bit, lazy refcounts, repair
// ===========================================================================

sim::Task<Result<void>> Qcow2Device::ensure_dirty() {
  if (dirty_) co_return ok_result();
  assert(alloc_mutex_.locked() && "dirty transition requires alloc_mutex_");
  h_.incompatible_features |= kIncompatDirty;
  std::uint8_t be[8];
  store_be64(be, h_.incompatible_features);
  VMIC_CO_TRY_VOID(co_await file_->pwrite(72, be));
  // New session generation: retires any record a previous session left
  // behind (e.g. after a clean close, which does not rewind the journal).
  // The bump rides the same flush as the dirty bit, so every record this
  // session appends — all issued after this flush — sees a durable
  // generation; a cut before the flush leaves only stale-generation
  // records, which replay as no-ops against the cleanly persisted state.
  if (journal_) {
    ++journal_gen_;
    journal_seq_ = 0;
    journal_head_ = 1;
    journal_dirty_blocks_.clear();
    journal_header_bad_ = false;
    VMIC_CO_TRY_VOID(co_await journal_write_header());
  }
  // Barrier: the dirty mark must be durable before any metadata mutation
  // it covers — otherwise a crash could leave stale refcounts behind a
  // header that claims the image is clean.
  VMIC_CO_TRY_VOID(co_await file_->flush());
  dirty_ = true;
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::persist_refcounts() {
  assert(refcounts_loaded_);
  const std::uint64_t rpb = ly_.refcounts_per_block();
  for (std::size_t bi = 0; bi < rt_.size(); ++bi) {
    if ((rt_[bi] & kOffsetMask) == 0) continue;
    const std::uint64_t first = bi * rpb;
    if (first >= refcounts_.size()) break;
    const std::uint64_t count =
        std::min<std::uint64_t>(rpb, refcounts_.size() - first);
    VMIC_CO_TRY_VOID(co_await write_refcount_entries(first, count));
  }
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::write_clean_bit() {
  // Barrier: every metadata write of this session must be durable before
  // the image may claim to be clean again.
  VMIC_CO_TRY_VOID(co_await file_->flush());
  h_.incompatible_features &= ~kIncompatDirty;
  std::uint8_t be[8];
  store_be64(be, h_.incompatible_features);
  VMIC_CO_TRY_VOID(co_await file_->pwrite(72, be));
  VMIC_CO_TRY_VOID(co_await file_->flush());
  dirty_ = false;
  co_return ok_result();
}

// ===========================================================================
// refcount journal
// ===========================================================================

sim::Task<Result<void>> Qcow2Device::journal_write_header() {
  assert(journal_);
  std::uint8_t sec[kJournalSectorSize];
  encode_journal_header(JournalHeader{journal_gen_, journal_sector_count_},
                        sec);
  VMIC_CO_TRY_VOID(co_await file_->pwrite(journal_->offset, sec));
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::journal_append(std::uint32_t flags,
                                                    std::uint64_t first_cluster,
                                                    std::uint64_t count,
                                                    RefHint hint) {
  assert(journal_);
  assert(alloc_mutex_.locked() && "journal append requires alloc_mutex_");
  if (journal_head_ >= journal_sector_count_) {
    VMIC_CO_TRY_VOID(co_await journal_checkpoint());
  }
  JournalRecord r;
  r.flags = flags;
  r.generation = journal_gen_;
  r.seq = journal_seq_++;
  r.first_cluster = first_cluster;
  r.count = count;
  r.ref_off = hint.ref_off;
  std::uint8_t sec[kJournalSectorSize];
  encode_journal_record(r, sec);
  VMIC_CO_TRY_VOID(co_await file_->pwrite(
      journal_->offset + journal_head_ * std::uint64_t{kJournalSectorSize},
      sec));
  ++journal_head_;
  // The on-disk refcount blocks covering this run are stale until the
  // next checkpoint writes them back.
  const std::uint64_t rpb = ly_.refcounts_per_block();
  for (std::uint64_t bi = first_cluster / rpb;
       bi <= (first_cluster + count - 1) / rpb; ++bi) {
    journal_dirty_blocks_.insert(bi);
  }
  bump(agg_.journal_appends);
  co_return ok_result();
}

sim::Task<Result<void>> Qcow2Device::journal_checkpoint() {
  assert(journal_);
  assert(refcounts_loaded_);
  // Write every stale block back from the mirror, then retire the records
  // behind a barrier by bumping the header generation. Ordering: a cut
  // that keeps the bump but drops a block write-back is impossible — the
  // flush below makes the blocks durable before the header write is even
  // issued; a cut the other way round simply replays the (idempotent)
  // records again.
  const std::uint64_t rpb = ly_.refcounts_per_block();
  for (const std::uint64_t bi : journal_dirty_blocks_) {
    const std::uint64_t first = bi * rpb;
    if (first >= refcounts_.size()) continue;
    const std::uint64_t count =
        std::min<std::uint64_t>(rpb, refcounts_.size() - first);
    VMIC_CO_TRY_VOID(co_await write_refcount_entries(first, count));
  }
  VMIC_CO_TRY_VOID(co_await file_->flush());
  ++journal_gen_;
  journal_seq_ = 0;
  journal_head_ = 1;
  journal_dirty_blocks_.clear();
  VMIC_CO_TRY_VOID(co_await journal_write_header());
  bump(agg_.journal_checkpoints);
  co_return ok_result();
}

sim::Task<Result<Qcow2Device::JournalScan>> Qcow2Device::journal_scan() {
  assert(journal_);
  JournalScan out;
  std::vector<std::uint8_t> region(journal_->size, 0);
  VMIC_CO_TRY_VOID(co_await file_->pread(journal_->offset, region));

  JournalHeader jh;
  if (!decode_journal_header(std::span(region.data(), kJournalSectorSize),
                             jh) ||
      jh.sector_count != journal_sector_count_) {
    co_return out;  // header_ok stays false
  }
  out.header_ok = true;
  out.generation = jh.generation;

  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t file_size = file_->size();
  const std::uint64_t file_clusters = div_ceil(file_size, cs);

  for (std::uint64_t s = 1; s < journal_sector_count_; ++s) {
    JournalRecord r;
    if (!decode_journal_record(
            std::span(region.data() + s * kJournalSectorSize,
                      kJournalSectorSize),
            r)) {
      continue;  // torn/stale/garbage sector: discard
    }
    if (r.generation != jh.generation) continue;  // retired record
    ++out.entries;
    if (r.count == 0 ||
        r.count > file_clusters + ly_.refcounts_per_block()) {
      out.inconsistent = true;  // checksum-valid but nonsensical
      continue;
    }
    // Verified recompute: a cluster's effective refcount is 1 iff its
    // recorded reference slot durably points at it. Barrier ordering
    // guarantees at most one slot can (publishes ride a flush that makes
    // the record durable first), so any-match accumulation is sound and
    // replay is order-independent and idempotent.
    if ((r.flags & kJournalRefRun) != 0) {
      bool referenced = false;
      if (r.ref_off + 8 <= file_size) {
        std::uint8_t be[8];
        VMIC_CO_TRY_VOID(co_await file_->pread(r.ref_off, be));
        referenced = (load_be64(be) & kOffsetMask) == r.first_cluster * cs;
      }
      for (std::uint64_t k = 0; k < r.count; ++k) {
        auto& e = out.effective[r.first_cluster + k];
        if (referenced) e = 1;
      }
      if (referenced && r.first_cluster + r.count > file_clusters) {
        out.inconsistent = true;  // durable reference past EOF
      }
    } else {
      for (std::uint64_t k = 0; k < r.count; ++k) {
        const std::uint64_t c = r.first_cluster + k;
        bool referenced = false;
        const std::uint64_t slot = r.ref_off + k * 8;
        if (slot + 8 <= file_size) {
          std::uint8_t be[8];
          VMIC_CO_TRY_VOID(co_await file_->pread(slot, be));
          referenced = (load_be64(be) & kOffsetMask) == c * cs;
        }
        auto& e = out.effective[c];
        if (referenced) {
          e = 1;
          if (c >= file_clusters) out.inconsistent = true;
        }
      }
    }
  }
  co_return out;
}

sim::Task<Result<bool>> Qcow2Device::journal_repair_fast(RepairReport& rep) {
  assert(journal_);
  if (journal_header_bad_) co_return false;
  VMIC_CO_TRY(scan, co_await journal_scan());
  if (!scan.header_ok || scan.inconsistent) co_return false;

  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t rpb = ly_.refcounts_per_block();

  // Patch the touched refcount blocks — O(journal) I/O, no L1/L2 walk.
  // scan.effective is ordered by cluster, so blocks load at most once.
  std::vector<std::uint8_t> buf(cs, 0);
  std::uint64_t cur_bi = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t cur_off = 0;
  bool block_dirty = false;
  const auto flush_block = [&]() -> sim::Task<Result<void>> {
    if (block_dirty) {
      VMIC_CO_TRY_VOID(co_await file_->pwrite(cur_off, buf));
      block_dirty = false;
    }
    co_return ok_result();
  };
  for (const auto& [c, v] : scan.effective) {
    const std::uint64_t bi = c / rpb;
    if (bi >= rt_.size() || (rt_[bi] & kOffsetMask) == 0) {
      // No block to patch. A durable reference with nowhere to store its
      // count means the journal cannot prove consistency — fall back.
      if (v != 0) co_return false;
      continue;  // absent block already reads as refcount 0
    }
    if (bi != cur_bi) {
      VMIC_CO_TRY_VOID(co_await flush_block());
      cur_bi = bi;
      cur_off = rt_[bi] & kOffsetMask;
      VMIC_CO_TRY_VOID(co_await file_->pread(cur_off, buf));
    }
    const std::uint64_t k = c - bi * rpb;
    const std::uint16_t old = load_be16(buf.data() + k * 2);
    if (old == v) continue;
    if (old > v) {
      ++rep.leaks_dropped;
    } else {
      ++rep.corruptions_fixed;
    }
    store_be16(buf.data() + k * 2, v);
    block_dirty = true;
  }
  VMIC_CO_TRY_VOID(co_await flush_block());

  // Barrier: the patched blocks must be durable before the generation
  // bump retires the records they were derived from — a cut that kept the
  // bump but dropped a patch would silence the journal over a stale
  // block. The header write itself rides write_clean_bit()'s flush.
  VMIC_CO_TRY_VOID(co_await file_->flush());
  journal_gen_ = scan.generation + 1;
  journal_seq_ = 0;
  journal_head_ = 1;
  journal_dirty_blocks_.clear();
  VMIC_CO_TRY_VOID(co_await journal_write_header());
  VMIC_CO_TRY_VOID(co_await write_clean_bit());
  dirty_inherited_ = false;

  // Drop any stale in-memory mirror so the allocator reloads the repaired
  // truth (repair() at open runs before load_refcounts, but an explicit
  // repair() mid-session must refresh).
  if (refcounts_loaded_) {
    refcounts_loaded_ = false;
    refcounts_.clear();
    free_runs_.clear();
    free_guess_ = 0;
    VMIC_CO_TRY_VOID(co_await load_refcounts());
  }

  rep.journal_replayed = true;
  rep.journal_entries = scan.entries;
  bump(agg_.repair_runs);
  bump(agg_.journal_replays);
  bump(agg_.journal_entries_replayed, scan.entries);
  bump(agg_.repair_leaks_dropped, rep.leaks_dropped);
  bump(agg_.repair_corruptions_fixed, rep.corruptions_fixed);
  co_return true;
}

sim::Task<Result<RepairReport>> Qcow2Device::repair() {
  if (file_->read_only()) co_return Errc::read_only;
  RepairReport rep;
  rep.was_dirty = dirty_ || (h_.incompatible_features & kIncompatDirty) != 0;

  // O(journal) fast path: a dirty journaled image is repaired by
  // replaying the journal — no L1/L2 walk, no full refcount rebuild.
  // Falls through to the rebuild when replay cannot prove consistency.
  if (journal_ && rep.was_dirty) {
    VMIC_CO_TRY(done, co_await journal_repair_fast(rep));
    if (done) co_return rep;
    rep.journal_fallback = true;
    bump(agg_.journal_fallbacks);
  }

  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t rpb = ly_.refcounts_per_block();
  std::uint64_t file_clusters = div_ceil(file_->size(), cs);
  std::vector<std::uint16_t> expected(file_clusters, 0);
  std::uint64_t data_clusters = 0;
  std::uint64_t l2_clusters = 0;

  const auto valid = [&](std::uint64_t off) {
    return off != 0 && off % cs == 0 && off / cs < file_clusters;
  };
  const auto mark = [&](std::uint64_t off, std::uint64_t clusters) {
    const std::uint64_t first = off / cs;
    for (std::uint64_t i = 0; i < clusters; ++i) {
      if (expected[first + i] != 0xffff) ++expected[first + i];
    }
  };
  const auto clear_l1_entry = [&](std::size_t i1) -> sim::Task<Result<void>> {
    l1_[i1] = 0;
    ++rep.entries_cleared;
    const std::uint8_t be[8] = {0};
    co_return co_await file_->pwrite(h_.l1_table_offset + i1 * 8, be);
  };

  // The fixed infrastructure (header area, refcount table, L1) must be
  // sane — those offsets come from the header, which is only ever
  // rewritten in single-sector (atomic) writes, so a crash cannot damage
  // them. Anything else is beyond in-place repair.
  const std::uint64_t header_clusters =
      div_ceil(header_area_size(cache_, journal_, backing_path_), cs);
  const std::uint64_t l1_clusters =
      div_ceil(std::uint64_t{h_.l1_size} * 8, cs);
  const std::uint64_t journal_clusters =
      journal_ ? div_ceil(journal_->size, cs) : 0;
  if (header_clusters > file_clusters ||
      h_.refcount_table_offset % cs != 0 ||
      h_.refcount_table_offset / cs + h_.refcount_table_clusters >
          file_clusters ||
      h_.l1_table_offset % cs != 0 ||
      h_.l1_table_offset / cs + l1_clusters > file_clusters ||
      (journal_ &&
       journal_->offset / cs + journal_clusters > file_clusters)) {
    co_return Errc::corrupt;
  }
  mark(0, header_clusters);
  mark(h_.refcount_table_offset, h_.refcount_table_clusters);
  mark(h_.l1_table_offset, l1_clusters);
  if (journal_) mark(journal_->offset, journal_clusters);

  // Walk L1 -> L2, dropping invalid pointers: a cleared entry reads from
  // the backing chain / as zeros again, which is the only safe meaning
  // left for a pointer into nowhere.
  for (std::size_t i1 = 0; i1 < l1_.size(); ++i1) {
    const std::uint64_t l2_off = l1_[i1] & kOffsetMask;
    if (l2_off == 0) {
      if (l1_[i1] != 0) VMIC_CO_TRY_VOID(co_await clear_l1_entry(i1));
      continue;
    }
    if (!valid(l2_off)) {
      VMIC_CO_TRY_VOID(co_await clear_l1_entry(i1));
      continue;
    }
    mark(l2_off, 1);
    ++l2_clusters;
    VMIC_CO_TRY(l2, co_await load_l2(l2_off));
    bool table_changed = false;
    for (std::uint64_t i2 = 0; i2 < l2->size(); ++i2) {
      const std::uint64_t e = (*l2)[i2];
      if ((e & kFlagCompressed) != 0) {
        // A compressed payload holds one reference on its (possibly
        // shared) host cluster. Validate the descriptor's extent; a
        // pointer into nowhere is cleared like any other.
        const Layout::CompressedDesc d = ly_.decode_compressed(e);
        const std::uint64_t payload_end = d.offset + d.sectors * 512;
        if (!ly_.compressed_desc_sane(d) ||
            payload_end > file_clusters * cs) {
          (*l2)[i2] = 0;
          table_changed = true;
          ++rep.entries_cleared;
          continue;
        }
        const std::uint64_t host = align_down(d.offset, cs);
        if (expected[host / cs] == 0) ++data_clusters;
        mark(host, 1);
        continue;
      }
      const std::uint64_t off = e & kOffsetMask;
      if (off != 0 && !valid(off)) {
        (*l2)[i2] = 0;
        table_changed = true;
        ++rep.entries_cleared;
        continue;
      }
      if (off != 0) {
        mark(off, 1);
        ++data_clusters;
      }
    }
    if (table_changed) {
      std::vector<std::uint8_t> be(l2->size() * 8);
      pack_be64(l2->data(), l2->size(), be.data());
      VMIC_CO_TRY_VOID(co_await file_->pwrite(l2_off, be));
    }
  }

  // Keep valid existing refcount blocks (rebuilding reuses their
  // clusters), drop pointers into nowhere.
  for (std::size_t bi = 0; bi < rt_.size(); ++bi) {
    const std::uint64_t off = rt_[bi] & kOffsetMask;
    if (off == 0) {
      if (rt_[bi] != 0) {
        rt_[bi] = 0;
        ++rep.entries_cleared;
      }
      continue;
    }
    if (!valid(off)) {
      rt_[bi] = 0;
      ++rep.entries_cleared;
      continue;
    }
    mark(off, 1);
  }

  // Every referenced cluster needs a covering refcount block; allocate
  // missing blocks from clusters the walk proved free. A new block may
  // itself land in an uncovered range — iterate to the fixed point.
  std::uint64_t scan = 0;
  for (bool again = true; again;) {
    again = false;
    for (std::uint64_t i = 0; i < file_clusters; ++i) {
      if (expected[i] == 0) continue;
      const std::uint64_t bi = i / rpb;
      if (bi >= rt_.size()) {
        // Would need refcount-table growth: impossible for crash states
        // (growth is barrier-ordered), so treat as unrepairable.
        co_return Errc::corrupt;
      }
      if ((rt_[bi] & kOffsetMask) != 0) continue;
      while (scan < file_clusters && expected[scan] != 0) ++scan;
      std::uint64_t b = scan;
      if (b == file_clusters) {
        ++file_clusters;
        expected.resize(file_clusters, 0);
      }
      expected[b] = 1;
      rt_[bi] = b * cs;
      again = true;
    }
  }

  // Diff the rebuilt counts against the on-disk ones for the report.
  if (!refcounts_loaded_) {
    VMIC_CO_TRY_VOID(co_await load_refcounts());
  }
  for (std::uint64_t i = 0; i < file_clusters; ++i) {
    const std::uint16_t actual =
        i < refcounts_.size() ? refcounts_[i] : std::uint16_t{0};
    if (actual > expected[i]) {
      ++rep.leaks_dropped;
    } else if (actual < expected[i]) {
      ++rep.corruptions_fixed;
    }
  }

  // Persist: every allocated block from the rebuilt mirror, then the
  // table, then clear the dirty bit behind a barrier.
  //
  // Barrier: the L1/L2 entry clears above must be durable before any
  // lowered refcount lands — a cut that kept the lowered count but
  // dropped the clear would leave a referenced cluster the allocator
  // hands out again (refcount < references). Repair must survive a cut
  // mid-repair as well as any other writer.
  VMIC_CO_TRY_VOID(co_await file_->flush());
  refcounts_ = std::move(expected);
  refcounts_loaded_ = true;
  std::vector<std::uint8_t> buf(cs, 0);
  for (std::size_t bi = 0; bi < rt_.size(); ++bi) {
    const std::uint64_t off = rt_[bi] & kOffsetMask;
    if (off == 0) continue;
    std::memset(buf.data(), 0, buf.size());
    const std::uint64_t first = bi * rpb;
    for (std::uint64_t k = 0; k < rpb; ++k) {
      if (first + k < refcounts_.size() && refcounts_[first + k] != 0) {
        store_be16(buf.data() + k * 2, refcounts_[first + k]);
      }
    }
    VMIC_CO_TRY_VOID(co_await file_->pwrite(off, buf));
  }
  // Barrier: block contents before the table that publishes them — the
  // rebuild may have pointed table entries at fresh block clusters, and
  // a cut that kept such a pointer but dropped the block's contents
  // would publish a block of garbage counts.
  VMIC_CO_TRY_VOID(co_await file_->flush());
  {
    std::vector<std::uint8_t> tbuf(
        std::uint64_t{h_.refcount_table_clusters} * cs, 0);
    pack_be64(rt_.data(), rt_.size(), tbuf.data());
    VMIC_CO_TRY_VOID(co_await file_->pwrite(h_.refcount_table_offset, tbuf));
  }
  if (journal_) {
    // Retire every record: the rebuilt state is authoritative now.
    // Barrier first — the generation bump must not outlive a cut that
    // dropped part of the rebuild, or a re-open would trust a clean
    // journal over a half-persisted rebuild. The header write itself
    // rides write_clean_bit()'s leading flush.
    VMIC_CO_TRY_VOID(co_await file_->flush());
    ++journal_gen_;
    journal_seq_ = 0;
    journal_head_ = 1;
    journal_dirty_blocks_.clear();
    journal_header_bad_ = false;
    VMIC_CO_TRY_VOID(co_await journal_write_header());
  }
  VMIC_CO_TRY_VOID(co_await write_clean_bit());
  dirty_inherited_ = false;

  // Refresh the allocator's view of the world.
  data_clusters_ = data_clusters;
  l2_clusters_ = l2_clusters;
  free_guess_ = 0;
  index_free_runs();

  bump(agg_.repair_runs);
  bump(agg_.repair_entries_cleared, rep.entries_cleared);
  bump(agg_.repair_leaks_dropped, rep.leaks_dropped);
  bump(agg_.repair_corruptions_fixed, rep.corruptions_fixed);
  co_return rep;
}

// ===========================================================================
// consistency check
// ===========================================================================

sim::Task<Result<CheckResult>> Qcow2Device::check() {
  const std::uint64_t cs = ly_.cluster_size();
  const std::uint64_t file_clusters = div_ceil(file_->size(), cs);
  std::vector<std::uint16_t> expected(file_clusters, 0);
  // What marked each host cluster: 0 = nothing, 1 = a normal (exclusive)
  // reference, 2 = compressed payloads. Compressed payloads may share a
  // host cluster with each other (refcount = number of referencing L2
  // entries), never with a normal reference.
  std::vector<std::uint8_t> mark_kind(file_clusters, 0);
  CheckResult res;

  auto mark = [&](std::uint64_t off, std::uint64_t clusters,
                  bool metadata) -> bool {
    const std::uint64_t first = off / cs;
    if (off % cs != 0 || first + clusters > file_clusters) {
      ++res.corruptions;
      return false;
    }
    for (std::uint64_t i = 0; i < clusters; ++i) {
      if (expected[first + i] != 0) ++res.corruptions;  // overlap
      expected[first + i] = 1;
      mark_kind[first + i] = 1;
    }
    if (metadata) {
      res.metadata_clusters += clusters;
    } else {
      res.data_clusters += clusters;
    }
    return true;
  };

  auto mark_compressed = [&](std::uint64_t entry) {
    const Layout::CompressedDesc d = ly_.decode_compressed(entry);
    const std::uint64_t end = d.offset + d.sectors * 512;
    if (!ly_.compressed_desc_sane(d) || end > file_clusters * cs) {
      ++res.corruptions;
      return;
    }
    const std::uint64_t c = d.offset / cs;
    if (mark_kind[c] == 1) {
      ++res.corruptions;  // collides with an exclusive reference
      return;
    }
    if (mark_kind[c] == 0) {
      mark_kind[c] = 2;
      ++res.data_clusters;
    }
    if (expected[c] != 0xffff) ++expected[c];
    ++res.compressed_clusters;
  };

  // Header area.
  mark(0, div_ceil(header_area_size(cache_, journal_, backing_path_), cs),
       true);
  // Journal region.
  if (journal_) mark(journal_->offset, div_ceil(journal_->size, cs), true);
  // Refcount table and blocks.
  mark(h_.refcount_table_offset, h_.refcount_table_clusters, true);
  for (const std::uint64_t e : rt_) {
    if ((e & kOffsetMask) != 0) mark(e & kOffsetMask, 1, true);
  }
  // L1 and L2 tables, then data clusters.
  mark(h_.l1_table_offset, div_ceil(std::uint64_t{h_.l1_size} * 8, cs), true);
  for (const std::uint64_t l1e : l1_) {
    const std::uint64_t l2_off = l1e & kOffsetMask;
    if (l2_off == 0) continue;
    if (!mark(l2_off, 1, true)) continue;
    VMIC_CO_TRY(l2, co_await load_l2(l2_off));
    for (const std::uint64_t l2e : *l2) {
      if ((l2e & kFlagCompressed) != 0) {
        mark_compressed(l2e);
        continue;
      }
      const std::uint64_t off = l2e & kOffsetMask;
      if (off != 0) mark(off, 1, false);
    }
  }

  // Compare against the on-disk refcounts.
  if (!refcounts_loaded_) {
    VMIC_CO_TRY_VOID(co_await load_refcounts());
  }
  for (std::uint64_t i = 0; i < file_clusters; ++i) {
    const std::uint16_t actual =
        i < refcounts_.size() ? refcounts_[i] : std::uint16_t{0};
    if (actual > expected[i]) {
      ++res.leaked_clusters;
    } else if (actual < expected[i]) {
      ++res.corruptions;
    }
  }
  co_return res;
}

// ===========================================================================
// probing
// ===========================================================================

sim::Task<Result<block::DevicePtr>> open_any(io::BackendPtr file,
                                             const block::OpenOptions& opt) {
  if (file == nullptr) co_return Errc::invalid_argument;
  if (file->size() >= 4) {
    std::uint8_t magic[4];
    VMIC_CO_TRY_VOID(co_await file->pread(0, magic));
    if (load_be32(magic) == kMagic) {
      co_return co_await Qcow2Device::open(std::move(file), opt);
    }
  }
  if (!opt.writable) file->set_read_only(true);
  co_return block::RawDevice::open(std::move(file));
}

}  // namespace vmic::qcow2
