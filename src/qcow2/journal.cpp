#include "qcow2/journal.hpp"

#include <cassert>
#include <cstring>

#include "util/bytes.hpp"

namespace vmic::qcow2 {

namespace {

// Sector layouts (all integers big-endian, rest of the sector zero):
//   header: [0:4) magic  [8:16) generation  [16:24) sector_count
//           [24:32) checksum
//   record: [0:4) magic  [4:8) flags  [8:16) generation  [16:24) seq
//           [24:32) first_cluster  [32:40) count  [40:48) ref_off
//           [48:56) checksum
constexpr std::size_t kHeaderChecksumOff = 24;
constexpr std::size_t kRecordChecksumOff = 48;

std::uint64_t checksum_with_zeroed(std::span<const std::uint8_t> sector,
                                   std::size_t checksum_off) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < sector.size(); ++i) {
    const bool in_checksum = i >= checksum_off && i < checksum_off + 8;
    h ^= in_checksum ? std::uint8_t{0} : sector[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t journal_checksum(std::span<const std::uint8_t> sector) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::uint8_t b : sector) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

void encode_journal_header(const JournalHeader& h,
                           std::span<std::uint8_t> sector) {
  assert(sector.size() == kJournalSectorSize);
  std::memset(sector.data(), 0, sector.size());
  store_be32(sector.data() + 0, kJournalHeaderMagic);
  store_be64(sector.data() + 8, h.generation);
  store_be64(sector.data() + 16, h.sector_count);
  store_be64(sector.data() + kHeaderChecksumOff,
             checksum_with_zeroed(sector, kHeaderChecksumOff));
}

bool decode_journal_header(std::span<const std::uint8_t> sector,
                           JournalHeader& out) {
  if (sector.size() != kJournalSectorSize) return false;
  if (load_be32(sector.data() + 0) != kJournalHeaderMagic) return false;
  if (load_be64(sector.data() + kHeaderChecksumOff) !=
      checksum_with_zeroed(sector, kHeaderChecksumOff)) {
    return false;
  }
  out.generation = load_be64(sector.data() + 8);
  out.sector_count = load_be64(sector.data() + 16);
  return true;
}

void encode_journal_record(const JournalRecord& r,
                           std::span<std::uint8_t> sector) {
  assert(sector.size() == kJournalSectorSize);
  std::memset(sector.data(), 0, sector.size());
  store_be32(sector.data() + 0, kJournalRecordMagic);
  store_be32(sector.data() + 4, r.flags);
  store_be64(sector.data() + 8, r.generation);
  store_be64(sector.data() + 16, r.seq);
  store_be64(sector.data() + 24, r.first_cluster);
  store_be64(sector.data() + 32, r.count);
  store_be64(sector.data() + 40, r.ref_off);
  store_be64(sector.data() + kRecordChecksumOff,
             checksum_with_zeroed(sector, kRecordChecksumOff));
}

bool decode_journal_record(std::span<const std::uint8_t> sector,
                           JournalRecord& out) {
  if (sector.size() != kJournalSectorSize) return false;
  if (load_be32(sector.data() + 0) != kJournalRecordMagic) return false;
  if (load_be64(sector.data() + kRecordChecksumOff) !=
      checksum_with_zeroed(sector, kRecordChecksumOff)) {
    return false;
  }
  out.flags = load_be32(sector.data() + 4);
  out.generation = load_be64(sector.data() + 8);
  out.seq = load_be64(sector.data() + 16);
  out.first_cluster = load_be64(sector.data() + 24);
  out.count = load_be64(sector.data() + 32);
  out.ref_off = load_be64(sector.data() + 40);
  return true;
}

}  // namespace vmic::qcow2
