#pragma once

#include <cstdint>
#include <span>

namespace vmic::qcow2 {

// ---------------------------------------------------------------------------
// Refcount-journal on-disk records (see DESIGN.md "Refcount journal").
//
// The journal region (located by the kExtVmiJournal header extension) is a
// flat array of 512-byte sectors: sector 0 is the journal header, sectors
// 1..N-1 hold one record each. A 512-byte write is never torn by the crash
// model (and is a single atomic sector on real disks), so each append is an
// all-or-nothing publish. Every sector carries an FNV-1a checksum over the
// whole sector with the checksum field zeroed, so a dropped/garbage sector
// is detected and discarded during replay rather than trusted.
//
// Records are self-describing and replay is a *verified recompute*: a record
// names the cluster run it touched and the file offset of the table slot(s)
// that should reference it, so replay derives the correct refcount from
// what actually became durable instead of trusting a count delta. This
// makes replay order-independent and idempotent — holes in the record
// array (a dropped append between two durable ones) are harmless.
//
// The header's generation retires stale records: every writable session and
// every checkpoint bumps it, and replay ignores records whose generation
// does not match the header's.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kJournalSectorSize = 512;
inline constexpr std::uint32_t kJournalHeaderMagic = 0x764A4844;  // "vJHD"
inline constexpr std::uint32_t kJournalRecordMagic = 0x764A5243;  // "vJRC"

/// Record flags: operation …
inline constexpr std::uint32_t kJournalOpAlloc = 0x1;
inline constexpr std::uint32_t kJournalOpFree = 0x2;
/// … and reference shape. kJournalRefRun: `ref_off` holds ONE 8-byte table
/// slot whose pointer covers the whole run (L1 entry, refcount-table entry,
/// or the header's own L1/refcount-table pointer). Without it, slot k of
/// the run is referenced by the 8-byte slot at `ref_off + k*8` (contiguous
/// L2 entries).
inline constexpr std::uint32_t kJournalRefRun = 0x4;

struct JournalHeader {
  std::uint64_t generation = 0;
  std::uint64_t sector_count = 0;  ///< total sectors including this header
};

struct JournalRecord {
  std::uint32_t flags = 0;
  std::uint64_t generation = 0;
  std::uint64_t seq = 0;            ///< monotonic within a generation
  std::uint64_t first_cluster = 0;  ///< first cluster index of the run
  std::uint64_t count = 0;          ///< clusters in the run
  std::uint64_t ref_off = 0;        ///< file offset of referencing slot(s)
};

/// FNV-1a over a full sector (the encode helpers zero the checksum field
/// before hashing).
std::uint64_t journal_checksum(std::span<const std::uint8_t> sector);

void encode_journal_header(const JournalHeader& h,
                           std::span<std::uint8_t> sector);
/// Returns false when magic or checksum don't match.
bool decode_journal_header(std::span<const std::uint8_t> sector,
                           JournalHeader& out);

void encode_journal_record(const JournalRecord& r,
                           std::span<std::uint8_t> sector);
/// Returns false when magic or checksum don't match (torn/stale sector).
bool decode_journal_record(std::span<const std::uint8_t> sector,
                           JournalRecord& out);

}  // namespace vmic::qcow2
