#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/hub.hpp"

namespace vmic::cache {

/// Eviction policy for a pool of VMI cache images (§3.4: "eviction of VMI
/// caches whenever the allocated cache space is full ... a policy such as
/// LRU at the node or cloud level").
enum class EvictionPolicy { lru, fifo, none };

constexpr const char* to_string(EvictionPolicy p) noexcept {
  switch (p) {
    case EvictionPolicy::lru: return "lru";
    case EvictionPolicy::fifo: return "fifo";
    case EvictionPolicy::none: return "none";
  }
  return "?";
}

/// Accounting for the cache images stored at one location (a compute
/// node's disk, or the storage node's memory). Tracks which VMI caches
/// exist, enforces a byte budget, and decides what to evict. The actual
/// file create/delete is done by the caller (the deployment layer owns
/// the directories); the pool returns the victims.
class CachePool {
 public:
  CachePool(std::uint64_t capacity_bytes, EvictionPolicy policy)
      : capacity_(capacity_bytes), policy_(policy) {}

  ~CachePool() {
    if (hub_ != nullptr) hub_->registry.detach(this);
  }

  /// Export eviction/admission counters and quota-occupancy gauges as
  /// cache.pool.* under the given labels.
  void bind_obs(obs::Hub* hub, const obs::Labels& labels) {
    hub_ = hub;
    if (hub_ == nullptr) return;
    hub_->registry.attach_counter("cache.pool.evictions", labels, &evictions_,
                                  this);
    hub_->registry.attach_counter("cache.pool.admissions", labels,
                                  &admissions_, this);
    hub_->registry.attach_counter("cache.pool.rejections", labels,
                                  &rejections_, this);
    hub_->registry.attach_gauge_fn(
        "cache.pool.used_bytes", labels,
        [this] { return static_cast<double>(used_); }, this);
    hub_->registry.attach_gauge_fn(
        "cache.pool.capacity_bytes", labels,
        [this] { return static_cast<double>(capacity_); }, this);
    hub_->registry.attach_gauge_fn(
        "cache.pool.entries", labels,
        [this] { return static_cast<double>(entries_.size()); }, this);
  }

  [[nodiscard]] bool contains(const std::string& vmi) const {
    return entries_.count(vmi) != 0;
  }

  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] EvictionPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_;
  }

  /// Record a (warm-cache) hit; refreshes recency for LRU.
  void touch(const std::string& vmi) {
    auto it = entries_.find(vmi);
    if (it != entries_.end()) it->second.last_use = ++clock_;
  }

  /// Pin/unpin a cache entry while a running VM chains to its file: pinned
  /// entries are never picked as eviction victims (their files are open as
  /// backing images and cannot be deleted). Pins nest; unpinning an absent
  /// or unpinned entry is a no-op, so callers may release after the entry
  /// was invalidated (e.g. by a node crash).
  void pin(const std::string& vmi) {
    auto it = entries_.find(vmi);
    if (it != entries_.end()) ++it->second.pins;
  }
  void unpin(const std::string& vmi) {
    auto it = entries_.find(vmi);
    if (it != entries_.end() && it->second.pins > 0) --it->second.pins;
  }
  [[nodiscard]] bool pinned(const std::string& vmi) const {
    auto it = entries_.find(vmi);
    return it != entries_.end() && it->second.pins > 0;
  }

  /// Admit a cache image of `bytes`. Returns the list of VMIs evicted to
  /// make room — empty if none. If the policy is `none` (or the entry
  /// alone exceeds capacity) and there is no room, the admission fails
  /// and the returned vector contains just the rejected `vmi` itself
  /// with `admitted == false`.
  struct AdmitResult {
    bool admitted = false;
    std::vector<std::string> evicted;
  };
  AdmitResult admit(const std::string& vmi, std::uint64_t bytes) {
    AdmitResult res;
    if (auto it = entries_.find(vmi); it != entries_.end()) {
      // Size update (e.g. cache grew while warming).
      used_ -= it->second.bytes;
      it->second.bytes = bytes;
      it->second.last_use = ++clock_;
      used_ += bytes;
      res.admitted = true;
      return res;
    }
    if (bytes > capacity_) {  // can never fit
      ++rejections_;
      return res;
    }
    while (used_ + bytes > capacity_) {
      if (policy_ == EvictionPolicy::none) {
        ++rejections_;
        return res;
      }
      const auto victim = pick_victim();
      if (victim.empty()) {
        ++rejections_;
        return res;
      }
      res.evicted.push_back(victim);
      remove(victim);
      ++evictions_;
    }
    entries_[vmi] = Entry{bytes, ++clock_, ++clock_};
    used_ += bytes;
    ++admissions_;
    res.admitted = true;
    return res;
  }

  void remove(const std::string& vmi) {
    auto it = entries_.find(vmi);
    if (it == entries_.end()) return;
    used_ -= it->second.bytes;
    entries_.erase(it);
  }

 private:
  struct Entry {
    std::uint64_t bytes;
    std::uint64_t inserted;
    std::uint64_t last_use;
    int pins = 0;
  };

  [[nodiscard]] std::string pick_victim() const {
    std::string victim;
    std::uint64_t best = ~0ull;
    for (const auto& [vmi, e] : entries_) {
      if (e.pins > 0) continue;
      const std::uint64_t key =
          policy_ == EvictionPolicy::lru ? e.last_use : e.inserted;
      if (key < best) {
        best = key;
        victim = vmi;
      }
    }
    return victim;
  }

  std::uint64_t capacity_;
  EvictionPolicy policy_;
  std::map<std::string, Entry> entries_;
  std::uint64_t used_ = 0;
  std::uint64_t clock_ = 0;
  obs::Counter evictions_;
  obs::Counter admissions_;
  obs::Counter rejections_;
  obs::Hub* hub_ = nullptr;
};

}  // namespace vmic::cache
