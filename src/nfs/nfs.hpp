#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "io/directory.hpp"
#include "net/link.hpp"
#include "obs/hub.hpp"
#include "sim/env.hpp"
#include "storage/sim_directory.hpp"
#include "util/align.hpp"

namespace vmic::nfs {

/// NFS tuning knobs. The paper tunes rwsize to 64 KiB because "the
/// default NFS rwsize of 1 MB does not match well with the small-sized
/// read requests during boot time" (§5) — bench_ablation_rwsize
/// reproduces that comparison by raising rwsize/min_fetch back to 1 MiB.
struct NfsParams {
  /// Maximum payload per READ/WRITE RPC *and* the server's fetch
  /// granularity cap.
  std::uint32_t rwsize = 64 * 1024;
  /// Server-side fetch quantum: a READ is served at this alignment/
  /// granularity (kernel page granularity by default).
  std::uint32_t min_fetch = 4096;
  /// Fixed server processing time per RPC.
  double server_proc_us = 15.0;
  /// On-the-wire overhead per RPC message.
  std::uint32_t rpc_overhead_bytes = 120;
};

/// Server-side RPC counters, registry-backed: a bound registry exports
/// them as nfs.server.*{node=...} — nfs.server.bytes_tx is Fig 9/10's
/// y-axis.
struct NfsServerStats {
  obs::Counter read_rpcs;
  obs::Counter write_rpcs;
  obs::Counter other_rpcs;
  obs::Counter tx_payload_bytes;  ///< data served to clients
  obs::Counter rx_payload_bytes;  ///< data written by clients
  /// Total observable traffic at the storage node (Fig 9/10's metric).
  [[nodiscard]] std::uint64_t total_payload() const noexcept {
    return tx_payload_bytes + rx_payload_bytes;
  }
};

/// The storage node's NFS server: a set of exports, each backed by a
/// simulated directory (disk- or tmpfs-resident). All timing flows
/// through the export's medium and the shared network.
class NfsServer {
 public:
  NfsServer(sim::SimEnv& env, NfsParams params) : env_(env), p_(params) {}

  ~NfsServer() {
    if (hub_ != nullptr) hub_->registry.detach(this);
  }

  /// Export RPC counters as nfs.server.*{node=<node>} plus a per-READ
  /// served-size histogram, and trace RPC service onto an "nfs/<node>"
  /// track.
  void bind_obs(obs::Hub* hub, const std::string& node) {
    hub_ = hub;
    if (hub_ == nullptr) return;
    const obs::Labels ls{{"node", node}};
    hub_->registry.attach_counter("nfs.server.read_rpcs", ls,
                                  &stats_.read_rpcs, this);
    hub_->registry.attach_counter("nfs.server.write_rpcs", ls,
                                  &stats_.write_rpcs, this);
    hub_->registry.attach_counter("nfs.server.other_rpcs", ls,
                                  &stats_.other_rpcs, this);
    hub_->registry.attach_counter("nfs.server.bytes_tx", ls,
                                  &stats_.tx_payload_bytes, this);
    hub_->registry.attach_counter("nfs.server.bytes_rx", ls,
                                  &stats_.rx_payload_bytes, this);
    hub_->registry.attach_histogram("nfs.server.read_rpc_bytes", ls,
                                    &read_size_hist_, this);
    track_ = hub_->tracer.track("nfs/" + node);
  }

  void add_export(const std::string& name, storage::SimDirectory* dir) {
    exports_[name] = dir;
  }

  [[nodiscard]] Result<storage::SimDirectory*> lookup_export(
      const std::string& name) const {
    auto it = exports_.find(name);
    if (it == exports_.end()) return Errc::not_found;
    return it->second;
  }

  [[nodiscard]] const NfsParams& params() const noexcept { return p_; }
  [[nodiscard]] const NfsServerStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = NfsServerStats{}; }

 private:
  friend class NfsFileBackend;
  friend class NfsMount;

  sim::SimEnv& env_;
  NfsParams p_;
  std::map<std::string, storage::SimDirectory*> exports_;
  NfsServerStats stats_;
  /// Distribution of per-READ served payload (b - a): the paper's §5
  /// rwsize-tuning argument made measurable.
  obs::Histogram read_size_hist_{
      {512, 4096, 16384, 65536, 262144, 1048576}};
  obs::Hub* hub_ = nullptr;
  std::uint32_t track_ = 0;
};

/// Client-side handle to one file on an NFS export, speaking
/// request/response over the shared network. Reads are chunked at rwsize
/// and served at min_fetch granularity; writes are chunked at rwsize.
class NfsFileBackend final : public io::BlockBackend {
 public:
  NfsFileBackend(NfsServer& server, net::Network& net,
                 io::BackendPtr server_file, std::string path, bool writable)
      : server_(server), net_(net), file_(std::move(server_file)),
        path_(std::move(path)) {
    ro_ = !writable;
  }

  sim::Task<Result<void>> pread(std::uint64_t off,
                                std::span<std::uint8_t> dst) override {
    std::uint64_t pos = off;
    std::uint64_t remaining = dst.size();
    std::uint8_t* out = dst.data();
    std::vector<std::uint8_t> scratch;
    while (remaining > 0) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(remaining, server_.p_.rwsize);
      obs::Span rpc;
      if (obs::tracing(server_.hub_)) {
        rpc = server_.hub_->tracer.span(server_.track_, "nfs.read_rpc", "nfs",
                                        "\"bytes\":" + std::to_string(chunk));
      }
      // Request over the wire.
      co_await net_.up.transfer(server_.p_.rpc_overhead_bytes);
      co_await env().delay(sim::from_micros(server_.p_.server_proc_us));
      // The server reads at fetch-quantum granularity (capped at rwsize).
      const std::uint64_t a = align_down(pos, server_.p_.min_fetch);
      std::uint64_t b = align_up(pos + chunk, server_.p_.min_fetch);
      b = std::min(b, a + std::max<std::uint64_t>(server_.p_.rwsize, chunk));
      b = std::max(b, pos + chunk);
      scratch.resize(b - a);
      VMIC_CO_TRY_VOID(co_await file_->pread(a, scratch));
      ++server_.stats_.read_rpcs;
      server_.stats_.tx_payload_bytes += b - a;
      if (server_.hub_ != nullptr) {
        server_.read_size_hist_.observe(static_cast<double>(b - a));
      }
      // Response payload back over the wire.
      co_await net_.down.transfer((b - a) + server_.p_.rpc_overhead_bytes);
      std::memcpy(out, scratch.data() + (pos - a), chunk);
      pos += chunk;
      out += chunk;
      remaining -= chunk;
    }
    co_return ok_result();
  }

  sim::Task<Result<void>> pwrite(std::uint64_t off,
                                 std::span<const std::uint8_t> src) override {
    VMIC_CO_TRY_VOID(check_writable());
    std::uint64_t pos = off;
    std::uint64_t remaining = src.size();
    const std::uint8_t* in = src.data();
    while (remaining > 0) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(remaining, server_.p_.rwsize);
      obs::Span rpc;
      if (obs::tracing(server_.hub_)) {
        rpc = server_.hub_->tracer.span(server_.track_, "nfs.write_rpc",
                                        "nfs",
                                        "\"bytes\":" + std::to_string(chunk));
      }
      co_await net_.up.transfer(chunk + server_.p_.rpc_overhead_bytes);
      co_await env().delay(sim::from_micros(server_.p_.server_proc_us));
      VMIC_CO_TRY_VOID(co_await file_->pwrite(
          pos, {in, static_cast<std::size_t>(chunk)}));
      ++server_.stats_.write_rpcs;
      server_.stats_.rx_payload_bytes += chunk;
      co_await net_.down.transfer(server_.p_.rpc_overhead_bytes);  // reply
      pos += chunk;
      in += chunk;
      remaining -= chunk;
    }
    co_return ok_result();
  }

  sim::Task<Result<void>> flush() override {
    // COMMIT round trip.
    co_await net_.up.transfer(server_.p_.rpc_overhead_bytes);
    co_await env().delay(sim::from_micros(server_.p_.server_proc_us));
    ++server_.stats_.other_rpcs;
    VMIC_CO_TRY_VOID(co_await file_->flush());
    co_await net_.down.transfer(server_.p_.rpc_overhead_bytes);
    co_return ok_result();
  }

  sim::Task<Result<void>> truncate(std::uint64_t new_size) override {
    VMIC_CO_TRY_VOID(check_writable());
    co_await net_.up.transfer(server_.p_.rpc_overhead_bytes);
    ++server_.stats_.other_rpcs;
    VMIC_CO_TRY_VOID(co_await file_->truncate(new_size));
    co_await net_.down.transfer(server_.p_.rpc_overhead_bytes);
    co_return ok_result();
  }

  /// Size attribute (cached by the client between RPCs in real NFS; we
  /// read it from the server-side handle without charging a round trip).
  [[nodiscard]] std::uint64_t size() const override { return file_->size(); }

  [[nodiscard]] std::string describe() const override {
    return "nfs:" + path_;
  }

 private:
  [[nodiscard]] sim::SimEnv& env() const noexcept { return server_.env_; }

  NfsServer& server_;
  net::Network& net_;
  io::BackendPtr file_;  // server-side backend (charges the export medium)
  std::string path_;
};

/// A compute node's view of one export: an ImageDirectory whose files are
/// reached through the NFS client.
class NfsMount final : public io::ImageDirectory {
 public:
  NfsMount(NfsServer& server, net::Network& net, std::string export_name)
      : server_(server), net_(net), export_(std::move(export_name)) {}

  Result<io::BackendPtr> open_file(const std::string& name,
                                   bool writable) override {
    VMIC_TRY(dir, server_.lookup_export(export_));
    VMIC_TRY(file, dir->open_file(name, writable));
    return io::BackendPtr{std::make_unique<NfsFileBackend>(
        server_, net_, std::move(file), export_ + "/" + name, writable)};
  }

  Result<io::BackendPtr> create_file(const std::string& name) override {
    VMIC_TRY(dir, server_.lookup_export(export_));
    VMIC_TRY(file, dir->create_file(name));
    return io::BackendPtr{std::make_unique<NfsFileBackend>(
        server_, net_, std::move(file), export_ + "/" + name, true)};
  }

  [[nodiscard]] bool exists(const std::string& name) const override {
    auto dir = server_.lookup_export(export_);
    return dir.ok() && (*dir)->exists(name);
  }

 private:
  NfsServer& server_;
  net::Network& net_;
  std::string export_;
};

}  // namespace vmic::nfs
