// Unit tests for src/util: Result, alignment, endian helpers, buffers,
// interval sets, RNG and stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/align.hpp"
#include "util/compress.hpp"
#include "util/pool.hpp"
#include "util/bytes.hpp"
#include "util/interval_set.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/sparse_buffer.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace vmic {
namespace {

// --------------------------------------------------------------------------
// Result
// --------------------------------------------------------------------------

TEST(Result, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.error(), Errc::ok);
}

TEST(Result, HoldsError) {
  Result<int> r{Errc::no_space};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::no_space);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r{std::make_unique<int>(5)};
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(Result, CopySemantics) {
  Result<std::vector<int>> a{std::vector<int>{1, 2, 3}};
  Result<std::vector<int>> b = a;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 3u);
  b = Result<std::vector<int>>{Errc::io_error};
  EXPECT_FALSE(b.ok());
  EXPECT_TRUE(a.ok());
}

TEST(Result, VoidVariant) {
  Result<void> good = ok_result();
  EXPECT_TRUE(good.ok());
  Result<void> bad{Errc::read_only};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::read_only);
}

Result<int> try_helper(Result<int> in) {
  VMIC_TRY(v, std::move(in));
  return v + 1;
}

TEST(Result, TryMacroPropagates) {
  EXPECT_EQ(*try_helper(Result<int>{1}), 2);
  EXPECT_EQ(try_helper(Result<int>{Errc::corrupt}).error(), Errc::corrupt);
}

TEST(Result, ErrcToString) {
  EXPECT_EQ(to_string(Errc::no_space), "no_space");
  EXPECT_EQ(to_string(Errc::ok), "ok");
}

// --------------------------------------------------------------------------
// Alignment
// --------------------------------------------------------------------------

TEST(Align, PowersOfTwo) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(512));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
}

TEST(Align, UpDown) {
  EXPECT_EQ(align_down(1000, 512), 512u);
  EXPECT_EQ(align_up(1000, 512), 1024u);
  EXPECT_EQ(align_up(1024, 512), 1024u);
  EXPECT_EQ(align_down(1024, 512), 1024u);
  EXPECT_TRUE(is_aligned(65536, 65536));
  EXPECT_FALSE(is_aligned(65537, 65536));
}

TEST(Align, DivCeilAndLog2) {
  EXPECT_EQ(div_ceil(10, 3), 4u);
  EXPECT_EQ(div_ceil(9, 3), 3u);
  EXPECT_EQ(log2_exact(512), 9u);
  EXPECT_EQ(log2_exact(65536), 16u);
}

// --------------------------------------------------------------------------
// Endian / bytes
// --------------------------------------------------------------------------

TEST(Bytes, BigEndianRoundTrip) {
  std::uint8_t buf[8];
  store_be16(buf, 0xBEEF);
  EXPECT_EQ(load_be16(buf), 0xBEEF);
  EXPECT_EQ(buf[0], 0xBE);  // genuinely big-endian on disk
  store_be32(buf, 0xDEADBEEF);
  EXPECT_EQ(load_be32(buf), 0xDEADBEEFu);
  EXPECT_EQ(buf[0], 0xDE);
  store_be64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(load_be64(buf), 0x0123456789ABCDEFull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xEF);
}

TEST(Bytes, IsAllZero) {
  std::vector<std::uint8_t> z(10000, 0);
  EXPECT_TRUE(is_all_zero(z));
  z[9999] = 1;
  EXPECT_FALSE(is_all_zero(z));
  z[9999] = 0;
  z[0] = 1;
  EXPECT_FALSE(is_all_zero(z));
  EXPECT_TRUE(is_all_zero({z.data() + 1, 3}));  // unaligned short span
}

TEST(Bytes, Fnv1aStable) {
  const std::uint8_t d[] = {'a', 'b', 'c'};
  // Reference value for "abc" under 64-bit FNV-1a.
  EXPECT_EQ(fnv1a(d), 0xe71fa2190541574bull);
}

// --------------------------------------------------------------------------
// Units
// --------------------------------------------------------------------------

TEST(Units, Format) {
  using namespace vmic::literals;
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(93_MiB), "93.0 MiB");
  EXPECT_EQ(format_bytes(4_GiB), "4.0 GiB");
  EXPECT_EQ(format_seconds(1.5), "1.50 s");
  EXPECT_EQ(format_seconds(0.0171), "17.1 ms");
}

// --------------------------------------------------------------------------
// IntervalSet
// --------------------------------------------------------------------------

TEST(IntervalSet, InsertAndTotal) {
  IntervalSet s;
  s.insert(0, 100);
  s.insert(200, 300);
  EXPECT_EQ(s.total(), 200u);
  EXPECT_EQ(s.interval_count(), 2u);
}

TEST(IntervalSet, CoalescesOverlap) {
  IntervalSet s;
  s.insert(0, 100);
  s.insert(50, 150);
  EXPECT_EQ(s.total(), 150u);
  EXPECT_EQ(s.interval_count(), 1u);
}

TEST(IntervalSet, CoalescesAdjacent) {
  IntervalSet s;
  s.insert(0, 100);
  s.insert(100, 200);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.total(), 200u);
}

TEST(IntervalSet, BridgeMerge) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(5, 25);  // bridges both
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.total(), 30u);
}

TEST(IntervalSet, CoversAndIntersects) {
  IntervalSet s;
  s.insert(100, 200);
  EXPECT_TRUE(s.covers(100, 200));
  EXPECT_TRUE(s.covers(150, 160));
  EXPECT_FALSE(s.covers(50, 150));
  EXPECT_TRUE(s.intersects(150, 250));
  EXPECT_TRUE(s.intersects(50, 101));
  EXPECT_FALSE(s.intersects(50, 100));  // half-open: touch is no overlap
  EXPECT_FALSE(s.intersects(200, 300));
  EXPECT_TRUE(s.covers(120, 120));     // empty range trivially covered
  EXPECT_FALSE(s.intersects(120, 120));
}

TEST(IntervalSet, IdempotentReinsert) {
  IntervalSet s;
  for (int i = 0; i < 10; ++i) s.insert(1000, 2000);
  EXPECT_EQ(s.total(), 1000u);
  EXPECT_EQ(s.interval_count(), 1u);
}

// Property: total() always equals a brute-force bitmap count.
TEST(IntervalSet, PropertyMatchesBitmap) {
  Rng rng{123};
  IntervalSet s;
  std::vector<bool> bits(4096, false);
  for (int i = 0; i < 500; ++i) {
    const auto b = rng.below(4000);
    const auto e = b + 1 + rng.below(96);
    s.insert(b, e);
    for (auto j = b; j < e; ++j) bits[j] = true;
    std::uint64_t expect = 0;
    for (bool bit : bits) expect += bit ? 1 : 0;
    ASSERT_EQ(s.total(), expect) << "iteration " << i;
  }
}

// --------------------------------------------------------------------------
// SparseBuffer
// --------------------------------------------------------------------------

TEST(SparseBuffer, ReadsZeroWhenEmpty) {
  SparseBuffer b;
  std::vector<std::uint8_t> buf(100, 0xFF);
  b.read(1234, buf);
  EXPECT_TRUE(is_all_zero(buf));
  EXPECT_EQ(b.size(), 0u);
}

TEST(SparseBuffer, WriteReadRoundTrip) {
  SparseBuffer b;
  std::vector<std::uint8_t> data(10000);
  Rng rng{7};
  for (auto& x : data) x = static_cast<std::uint8_t>(rng.next());
  b.write(5000, data);
  EXPECT_EQ(b.size(), 15000u);
  std::vector<std::uint8_t> out(10000);
  b.read(5000, out);
  EXPECT_EQ(data, out);
  // Straddling read: 4096 zeros then the first data bytes.
  std::vector<std::uint8_t> straddle(2000);
  b.read(4000, straddle);
  EXPECT_TRUE(is_all_zero({straddle.data(), 1000}));
  EXPECT_EQ(0, std::memcmp(straddle.data() + 1000, data.data(), 1000));
}

TEST(SparseBuffer, ZeroWritesNotMaterialized) {
  SparseBuffer b;
  std::vector<std::uint8_t> zeros(1 * MiB, 0);
  b.write(0, zeros);
  EXPECT_EQ(b.size(), 1 * MiB);
  EXPECT_EQ(b.materialized_bytes(), 0u);
  // But a subsequent non-zero write into the same region still works.
  std::uint8_t one = 1;
  b.write(12345, {&one, 1});
  std::uint8_t out = 0;
  b.read(12345, {&out, 1});
  EXPECT_EQ(out, 1);
  EXPECT_EQ(b.materialized_bytes(), SparseBuffer::kPageSize);
}

TEST(SparseBuffer, OverwriteWithZerosInMaterializedPage) {
  SparseBuffer b;
  std::uint8_t v = 42;
  b.write(100, {&v, 1});
  std::uint8_t z = 0;
  b.write(100, {&z, 1});
  std::uint8_t out = 9;
  b.read(100, {&out, 1});
  EXPECT_EQ(out, 0);
}

TEST(SparseBuffer, ResizeTruncates) {
  SparseBuffer b;
  std::vector<std::uint8_t> data(8192, 0xAB);
  b.write(0, data);
  b.resize(100);
  EXPECT_EQ(b.size(), 100u);
  b.resize(8192);
  std::vector<std::uint8_t> out(8192);
  b.read(0, out);
  for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(out[i], 0xAB);
  EXPECT_TRUE(is_all_zero({out.data() + 100, out.size() - 100}));
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange) {
  Rng rng{9};
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.below(17), 17u);
    const auto v = rng.range(5, 10);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 10u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{11};
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng{13};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ForkIndependence) {
  Rng a{1};
  Rng child = a.fork();
  // The child stream should not replay the parent stream.
  Rng b{1};
  b.next();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

// --------------------------------------------------------------------------
// Stats
// --------------------------------------------------------------------------

TEST(Stats, OnlineMeanVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, EmptySamplesReportZero) {
  const Samples s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
}

TEST(Stats, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SlotPool, AllocFreeReusesLifo) {
  util::SlotPool<int, 4> pool;
  const std::uint32_t a = pool.alloc();
  const std::uint32_t b = pool.alloc();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.capacity(), 2u);
  pool.free(a);
  pool.free(b);
  EXPECT_EQ(pool.free_slots(), 2u);
  // LIFO: the most recently freed slot comes back first.
  EXPECT_EQ(pool.alloc(), b);
  EXPECT_EQ(pool.alloc(), a);
  EXPECT_EQ(pool.capacity(), 2u);  // no new slots created
}

TEST(SlotPool, SlabGrowthKeepsAddressesStable) {
  constexpr std::size_t kSlab = 4;
  util::SlotPool<int, kSlab> pool;
  std::vector<int*> addrs;
  for (std::uint32_t i = 0; i < 3 * kSlab; ++i) {
    const std::uint32_t idx = pool.alloc();
    pool[idx] = static_cast<int>(i);
    addrs.push_back(&pool[idx]);
  }
  // Growing by whole slabs never moves existing slots.
  for (std::uint32_t i = 0; i < 3 * kSlab; ++i) {
    EXPECT_EQ(&pool[i], addrs[i]);
    EXPECT_EQ(pool[i], static_cast<int>(i));
  }
}

TEST(FramePool, ReusesFreedBlocksInClass) {
#if VMIC_POOL_PASSTHROUGH
  GTEST_SKIP() << "pool is a passthrough under sanitizers";
#else
  const std::uint64_t reuses0 = util::FramePool::reuses();
  void* p = util::FramePool::allocate(100);  // class 1 (65..128 bytes)
  ASSERT_NE(p, nullptr);
  util::FramePool::deallocate(p, 100);
  void* q = util::FramePool::allocate(128);  // same class, reused block
  EXPECT_EQ(q, p);
  EXPECT_EQ(util::FramePool::reuses(), reuses0 + 1);
  util::FramePool::deallocate(q, 128);
#endif
}

TEST(FramePool, OversizeFallsThroughToHeap) {
  // Larger than the largest pooled class: must still round-trip.
  void* p = util::FramePool::allocate(64 * 1024);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 64 * 1024);
  util::FramePool::deallocate(p, 64 * 1024);
}

// --------------------------------------------------------------------------
// LZSS codec (qcow2 compressed clusters)
// --------------------------------------------------------------------------

TEST(Compress, RoundTripCompressible) {
  // Repetitive content (what OS images are full of) must shrink and
  // round-trip exactly.
  std::vector<std::uint8_t> src(4096);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>((i / 64) % 7);
  }
  std::vector<std::uint8_t> comp(src.size());
  const std::size_t n = lzss_compress(src, comp, src.size() - 512);
  ASSERT_GT(n, 0u);
  ASSERT_LT(n, src.size() - 512);
  std::vector<std::uint8_t> back(src.size(), 0xaa);
  ASSERT_TRUE(lzss_decompress({comp.data(), n}, back));
  EXPECT_EQ(src, back);
}

TEST(Compress, IncompressibleReturnsZero) {
  std::vector<std::uint8_t> src(4096);
  Rng rng{1234};
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next());
  std::vector<std::uint8_t> comp(src.size());
  EXPECT_EQ(lzss_compress(src, comp, src.size() - 512), 0u);
}

TEST(Compress, DecompressToleratesSectorPadding) {
  // Compressed payloads are stored sector-padded; the decoder must accept
  // trailing garbage once the output is complete.
  std::vector<std::uint8_t> src(4096, 0x5a);
  std::vector<std::uint8_t> comp(src.size());
  const std::size_t n = lzss_compress(src, comp, src.size() - 512);
  ASSERT_GT(n, 0u);
  const std::size_t padded = (n + 511) / 512 * 512;
  std::vector<std::uint8_t> stream(comp.begin(),
                                   comp.begin() + static_cast<long>(n));
  stream.resize(padded, 0);
  std::vector<std::uint8_t> back(src.size());
  ASSERT_TRUE(lzss_decompress(stream, back));
  EXPECT_EQ(src, back);
}

TEST(Compress, OverlappingRleMatches) {
  // A run of one byte forces offset-1 self-overlapping matches — the
  // classic LZSS RLE encoding; the decoder must copy byte-by-byte.
  std::vector<std::uint8_t> src(1000, 0x00);
  src[0] = 0x41;
  std::vector<std::uint8_t> comp(src.size());
  const std::size_t n = lzss_compress(src, comp, src.size());
  ASSERT_GT(n, 0u);
  std::vector<std::uint8_t> back(src.size(), 0xff);
  ASSERT_TRUE(lzss_decompress({comp.data(), n}, back));
  EXPECT_EQ(src, back);
}

TEST(Compress, TruncatedStreamRejected) {
  std::vector<std::uint8_t> src(2048, 0x11);
  std::vector<std::uint8_t> comp(src.size());
  const std::size_t n = lzss_compress(src, comp, src.size());
  ASSERT_GT(n, 1u);
  std::vector<std::uint8_t> back(src.size());
  EXPECT_FALSE(lzss_decompress({comp.data(), n / 2}, back));
}

TEST(Compress, RandomBuffersRoundTripWhenCompressible) {
  Rng rng{77};
  for (int iter = 0; iter < 50; ++iter) {
    // Mixed content: random runs + literal noise, varying sizes.
    std::vector<std::uint8_t> src(512 + rng.below(8192));
    std::size_t i = 0;
    while (i < src.size()) {
      const std::size_t run =
          std::min<std::size_t>(1 + rng.below(200), src.size() - i);
      const bool repeat = rng.below(2) == 0;
      const std::uint8_t v = static_cast<std::uint8_t>(rng.next());
      for (std::size_t k = 0; k < run; ++k) {
        src[i + k] = repeat ? v : static_cast<std::uint8_t>(rng.next());
      }
      i += run;
    }
    std::vector<std::uint8_t> comp(src.size());
    const std::size_t n = lzss_compress(src, comp, src.size());
    if (n == 0) continue;  // did not shrink — valid outcome
    std::vector<std::uint8_t> back(src.size());
    ASSERT_TRUE(lzss_decompress({comp.data(), n}, back));
    ASSERT_EQ(src, back) << "iteration " << iter;
  }
}

}  // namespace
}  // namespace vmic
