// Tests for the paper's VMI-cache extension: copy-on-read population,
// quota enforcement (ENOSPC semantics), immutability w.r.t. the base,
// close()-time size persistence, standalone boot from a warm cache, and
// the cluster-granularity traffic amplification of §5.1/Fig 9.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/env.hpp"
#include "sim/run.hpp"
#include "sim/task.hpp"
#include "storage/disk.hpp"
#include "storage/sim_directory.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace vmic::qcow2 {
namespace {

using block::DevicePtr;
using io::MemImageStore;
using sim::sync_wait;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

std::vector<std::uint8_t> pattern_bytes(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  Rng rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

class CacheTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBaseSize = 8_MiB;
  static constexpr std::uint64_t kBaseSeed = 77;

  MemImageStore store_;

  void SetUp() override {
    auto be = store_.create_file("base.img");
    ASSERT_TRUE(be.ok());
    auto data = pattern_bytes(kBaseSeed, kBaseSize);
    ASSERT_TRUE(sync_wait((*be)->pwrite(0, data)).ok());
  }

  /// Build the paper's chain: base <- cache(quota) <- cow. Returns the CoW
  /// device the "VM" boots from.
  DevicePtr make_chain(std::uint64_t quota, std::uint32_t cache_bits = 9) {
    auto c = sync_wait(create_cache_image(
        store_, "vmi.cache", "base.img", quota,
        {.cluster_bits = cache_bits, .virtual_size = 0}));
    EXPECT_TRUE(c.ok()) << to_string(c.error());
    auto w = sync_wait(create_cow_image(store_, "vm.cow", "vmi.cache"));
    EXPECT_TRUE(w.ok());
    auto dev = sync_wait(open_image(store_, "vm.cow"));
    EXPECT_TRUE(dev.ok()) << to_string(dev.error());
    return dev.ok() ? std::move(*dev) : nullptr;
  }

  Qcow2Device* cache_of(const DevicePtr& cow) {
    auto* c = dynamic_cast<Qcow2Device*>(cow->backing());
    EXPECT_NE(c, nullptr);
    return c;
  }

  std::uint64_t file_digest(const std::string& name) {
    auto buf = store_.buffer(name);
    EXPECT_TRUE(buf.ok());
    std::vector<std::uint8_t> all((*buf)->size());
    (*buf)->read(0, all);
    return fnv1a(all);
  }
};

TEST_F(CacheTest, ChainShape) {
  auto cow = make_chain(2_MiB);
  ASSERT_NE(cow, nullptr);
  EXPECT_FALSE(cow->is_cache_image());
  auto* cache = cache_of(cow);
  EXPECT_TRUE(cache->is_cache_image());
  EXPECT_EQ(cache->cache_quota(), 2_MiB);
  EXPECT_EQ(cache->cluster_size(), 512u);
  // The cache's backing is the (read-only demoted) raw base.
  ASSERT_NE(cache->backing(), nullptr);
  EXPECT_EQ(cache->backing()->format_name(), "raw");
  EXPECT_TRUE(cache->backing()->read_only());
  // The cache itself kept write permission (it is a cache image).
  EXPECT_FALSE(cache->read_only());
}

TEST_F(CacheTest, ReadsAreCorrectThroughCache) {
  auto cow = make_chain(4_MiB);
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  std::vector<std::uint8_t> out(300000);
  ASSERT_TRUE(sync_wait(cow->read(1_MiB + 512, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), expect.data() + 1_MiB + 512,
                           out.size()));
}

TEST_F(CacheTest, CopyOnReadPopulatesCache) {
  auto cow = make_chain(4_MiB);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> buf(64_KiB);
  ASSERT_TRUE(sync_wait(cow->read(0, buf)).ok());
  EXPECT_GT(cache->stats().cor_bytes, 0u);
  EXPECT_GE(cache->allocated_data_bytes(), buf.size());
  // The same range again: served from the cache, no new base traffic.
  const auto base_reads_before = cache->stats().backing_reads;
  ASSERT_TRUE(sync_wait(cow->read(0, buf)).ok());
  EXPECT_EQ(cache->stats().backing_reads, base_reads_before);
}

TEST_F(CacheTest, WarmCacheServesWithoutBase) {
  // §3: "the cache is standalone; a VM can start booting using it" —
  // once the working set is cached, the base sees zero reads.
  const std::uint64_t ws = 1_MiB;
  {
    auto cow = make_chain(4_MiB);
    std::vector<std::uint8_t> buf(ws);
    ASSERT_TRUE(sync_wait(cow->read(0, buf)).ok());
    ASSERT_TRUE(sync_wait(cow->close()).ok());
  }
  // New "VM", fresh CoW, same warm cache.
  ASSERT_TRUE(
      sync_wait(create_cow_image(store_, "vm2.cow", "vmi.cache")).ok());
  auto cow2 = sync_wait(open_image(store_, "vm2.cow"));
  ASSERT_TRUE(cow2.ok());
  auto* cache = dynamic_cast<Qcow2Device*>((*cow2)->backing());
  std::vector<std::uint8_t> buf(ws);
  ASSERT_TRUE(sync_wait((*cow2)->read(0, buf)).ok());
  EXPECT_EQ(cache->stats().backing_reads, 0u);
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  EXPECT_EQ(0, std::memcmp(buf.data(), expect.data(), ws));
}

TEST_F(CacheTest, QuotaIsNeverExceeded) {
  const std::uint64_t quota = 1_MiB;
  auto cow = make_chain(quota);
  auto* cache = cache_of(cow);
  // Read far more than the quota.
  std::vector<std::uint8_t> buf(256_KiB);
  for (std::uint64_t off = 0; off + buf.size() <= kBaseSize;
       off += buf.size()) {
    ASSERT_TRUE(sync_wait(cow->read(off, buf)).ok());
    ASSERT_LE(cache->file_bytes(), quota) << "off=" << off;
  }
  EXPECT_FALSE(cache->cor_active());  // population stopped
  EXPECT_GT(cache->stats().cor_stopped, 0u);
  EXPECT_LE(cache->file_bytes(), quota);
  // And reads remain correct after the quota hit.
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  std::vector<std::uint8_t> out(100000);
  ASSERT_TRUE(sync_wait(cow->read(kBaseSize - out.size(), out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(),
                           expect.data() + kBaseSize - out.size(),
                           out.size()));
}

TEST_F(CacheTest, CacheStaysConsistentAfterQuotaHit) {
  auto cow = make_chain(1_MiB);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> buf(512_KiB);
  ASSERT_TRUE(sync_wait(cow->read(0, buf)).ok());
  ASSERT_TRUE(sync_wait(cow->read(2_MiB, buf)).ok());
  ASSERT_TRUE(sync_wait(cow->read(4_MiB, buf)).ok());
  auto chk = sync_wait(cache->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean()) << "leaked=" << chk->leaked_clusters
                            << " corrupt=" << chk->corruptions;
}

TEST_F(CacheTest, GuestWritesToCacheRejected) {
  auto cow = make_chain(2_MiB);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> data(512, 0xAA);
  EXPECT_EQ(sync_wait(cache->write(0, data)).error(), Errc::read_only);
}

TEST_F(CacheTest, ImmutableWrtBase) {
  // Guest writes land in the CoW image; neither cache nor base change.
  auto cow = make_chain(4_MiB);
  std::vector<std::uint8_t> warm(1_MiB);
  ASSERT_TRUE(sync_wait(cow->read(0, warm)).ok());

  const auto base_digest = file_digest("base.img");
  const auto cache_digest = file_digest("vmi.cache");

  const auto data = pattern_bytes(5, 600000);
  ASSERT_TRUE(sync_wait(cow->write(100000, data)).ok());

  EXPECT_EQ(file_digest("base.img"), base_digest);
  EXPECT_EQ(file_digest("vmi.cache"), cache_digest);

  // And the write is visible through the chain.
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(sync_wait(cow->read(100000, out)).ok());
  EXPECT_EQ(data, out);
}

TEST_F(CacheTest, CowFillMayPopulateCache) {
  // A sub-cluster guest write to the CoW image fetches the fill from the
  // chain below — data coming *from the base* is allowed into the cache.
  auto cow = make_chain(4_MiB);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> tiny(100, 0xCD);
  ASSERT_TRUE(sync_wait(cow->write(3 * 64_KiB + 7, tiny)).ok());
  EXPECT_GT(cache->stats().cor_bytes, 0u);
  // Correctness: the merged cluster reads back as base-with-patch.
  auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  std::memcpy(expect.data() + 3 * 64_KiB + 7, tiny.data(), tiny.size());
  std::vector<std::uint8_t> out(128_KiB);
  ASSERT_TRUE(sync_wait(cow->read(2 * 64_KiB, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), expect.data() + 2 * 64_KiB,
                           out.size()));
}

TEST_F(CacheTest, ClosePersistsCurrentSize) {
  // §4.3 "close": the current size is written back into the header ext.
  std::uint64_t size_at_close = 0;
  {
    auto cow = make_chain(4_MiB);
    std::vector<std::uint8_t> buf(1_MiB);
    ASSERT_TRUE(sync_wait(cow->read(0, buf)).ok());
    size_at_close = cache_of(cow)->file_bytes();
    ASSERT_TRUE(sync_wait(cow->close()).ok());
  }
  auto be = store_.open_file("vmi.cache", /*writable=*/false);
  ASSERT_TRUE(be.ok());
  std::vector<std::uint8_t> hdr(512);
  ASSERT_TRUE(sync_wait((*be)->pread(0, hdr)).ok());
  auto parsed = parse_header_area(hdr);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->cache.has_value());
  EXPECT_EQ(parsed->cache->current_size, size_at_close);
  EXPECT_GT(size_at_close, 0u);
}

TEST_F(CacheTest, ReopenedWarmCacheKeepsServing) {
  {
    auto cow = make_chain(4_MiB);
    std::vector<std::uint8_t> buf(2_MiB);
    ASSERT_TRUE(sync_wait(cow->read(1_MiB, buf)).ok());
    ASSERT_TRUE(sync_wait(cow->close()).ok());
  }
  auto cow = sync_wait(open_image(store_, "vm.cow"));
  ASSERT_TRUE(cow.ok());
  auto* cache = dynamic_cast<Qcow2Device*>((*cow)->backing());
  std::vector<std::uint8_t> out(2_MiB);
  ASSERT_TRUE(sync_wait((*cow)->read(1_MiB, out)).ok());
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  EXPECT_EQ(0, std::memcmp(out.data(), expect.data() + 1_MiB, out.size()));
  EXPECT_EQ(cache->stats().backing_reads, 0u);  // all warm
}

// ---------------------------------------------------------------------------
// Cluster-granularity amplification (the Fig 9 mechanism, unit level)
// ---------------------------------------------------------------------------

TEST_F(CacheTest, SmallReadAmplifiedAt64KClusters) {
  auto cow = make_chain(4_MiB, /*cache_bits=*/16);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> tiny(512);
  ASSERT_TRUE(sync_wait(cow->read(100 * 512, tiny)).ok());
  // CoR had to fill the whole 64 KiB cluster from the base: the cache
  // pulled >= 64 KiB for a 512 B guest read.
  EXPECT_GE(cache->stats().bytes_from_backing, 64_KiB);
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  EXPECT_EQ(0, std::memcmp(tiny.data(), expect.data() + 100 * 512, 512));
}

TEST_F(CacheTest, SmallReadNotAmplifiedAt512Clusters) {
  auto cow = make_chain(4_MiB, /*cache_bits=*/9);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> tiny(512);
  ASSERT_TRUE(sync_wait(cow->read(100 * 512, tiny)).ok());
  // Sector-aligned sector-sized read: exactly one cluster fetched.
  EXPECT_EQ(cache->stats().bytes_from_backing, 512u);
}

// Parameterized property: for any cache cluster size and quota, reads
// through the chain always match the base, the quota holds, and the cache
// metadata stays consistent.
class CachePropertyTest
    : public CacheTest,
      public ::testing::WithParamInterface<std::tuple<std::uint32_t, int>> {};

TEST_P(CachePropertyTest, RandomReadsAlwaysCorrectAndBounded) {
  const auto [cache_bits, quota_mb] = GetParam();
  const std::uint64_t quota = static_cast<std::uint64_t>(quota_mb) * 1_MiB;
  auto cow = make_chain(quota, cache_bits);
  ASSERT_NE(cow, nullptr);
  auto* cache = cache_of(cow);
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);

  Rng rng{2024};
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t len = 512 * (1 + rng.below(128));
    const std::uint64_t off = 512 * rng.below((kBaseSize - len) / 512);
    std::vector<std::uint8_t> out(len);
    ASSERT_TRUE(sync_wait(cow->read(off, out)).ok());
    ASSERT_EQ(0, std::memcmp(out.data(), expect.data() + off, len))
        << "step " << i;
    ASSERT_LE(cache->file_bytes(), quota);
  }
  auto chk = sync_wait(cache->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean()) << "leaked=" << chk->leaked_clusters
                            << " corrupt=" << chk->corruptions;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CachePropertyTest,
    ::testing::Combine(::testing::Values(9u, 12u, 16u),
                       ::testing::Values(1, 4, 16)),
    [](const auto& info) {
      return "cb" + std::to_string(std::get<0>(info.param)) + "_q" +
             std::to_string(std::get<1>(info.param)) + "mb";
    });

// ---------------------------------------------------------------------------
// Concurrent copy-on-read: K readers racing on one cache image, with
// sim-timed I/O (SimDirectory over a MemMedium) so reads genuinely
// overlap. Covers the single-flight in-flight-fill protocol, the legacy
// (duplicate-fetch) ablation mode, determinism, and the quota edge.
// ---------------------------------------------------------------------------

struct ConcurrentResult {
  std::uint64_t backing_reads = 0;
  std::uint64_t inflight_waits = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t bytes_from_backing = 0;
  std::uint64_t cor_clusters = 0;
  std::uint64_t cor_stopped = 0;
  std::uint64_t file_bytes = 0;
  sim::SimTime makespan = 0;
  bool bytes_ok = false;
  bool check_clean = false;

  bool operator==(const ConcurrentResult&) const = default;
};

sim::Task<bool> write_file(io::BlockBackend& be,
                           std::span<const std::uint8_t> data) {
  auto r = co_await be.pwrite(0, data);
  co_return r.ok();
}

sim::Task<void> reader_task(block::BlockDevice& dev, std::uint64_t off,
                            std::span<std::uint8_t> dst, bool& ok) {
  auto r = co_await dev.read(off, dst);
  ok = r.ok();
}

/// Boot a base <- cache <- cow chain on a simulated medium and race `k`
/// readers, reader i reading `read_len` bytes at offset i * stride.
ConcurrentResult run_concurrent_readers(bool single_flight, int k,
                                        std::uint64_t stride,
                                        std::uint64_t read_len,
                                        std::uint64_t quota = 4_MiB,
                                        std::uint32_t cache_bits = 16) {
  constexpr std::uint64_t kSize = 8_MiB;
  constexpr std::uint64_t kSeed = 77;
  ConcurrentResult res;

  sim::SimEnv env;
  storage::MemMedium mem{env, {.latency_us = 200.0, .bandwidth_bps = 200e6}};
  storage::SimDirectory dir{mem};

  const auto expect = pattern_bytes(kSeed, kSize);
  {
    auto be = dir.create_file("base.img");
    EXPECT_TRUE(be.ok());
    if (!be.ok()) return res;
    EXPECT_TRUE(sim::run_sync(env, write_file(**be, expect)));
  }
  auto c = sim::run_sync(
      env, create_cache_image(dir, "vmi.cache", "base.img", quota,
                              {.cluster_bits = cache_bits, .virtual_size = 0}));
  EXPECT_TRUE(c.ok()) << to_string(c.error());
  auto w = sim::run_sync(env, create_cow_image(dir, "vm.cow", "vmi.cache"));
  EXPECT_TRUE(w.ok());
  auto opened = sim::run_sync(env, open_image(dir, "vm.cow"));
  EXPECT_TRUE(opened.ok()) << to_string(opened.error());
  if (!opened.ok()) return res;
  DevicePtr cow = std::move(*opened);
  for (block::BlockDevice* b = cow.get(); b != nullptr; b = b->backing())
    if (auto* q = dynamic_cast<Qcow2Device*>(b))
      q->set_cor_single_flight(single_flight);
  auto* cache = dynamic_cast<Qcow2Device*>(cow->backing());
  EXPECT_NE(cache, nullptr);
  if (cache == nullptr) return res;

  std::vector<std::vector<std::uint8_t>> bufs(k);
  std::deque<bool> oks(k, false);  // deque: real bool lvalues, not proxies
  const sim::SimTime start = env.now();
  for (int i = 0; i < k; ++i) {
    bufs[i].resize(read_len);
    env.spawn(reader_task(*cow, i * stride, bufs[i], oks[i]));
  }
  env.run();
  res.makespan = env.now() - start;

  res.bytes_ok = true;
  for (int i = 0; i < k; ++i) {
    if (!oks[i] ||
        std::memcmp(bufs[i].data(), expect.data() + i * stride, read_len) != 0)
      res.bytes_ok = false;
  }
  const auto& st = cache->stats();
  res.backing_reads = st.backing_reads;
  res.inflight_waits = st.cor_inflight_waits;
  res.dedup_hits = st.cor_dedup_hits;
  res.bytes_from_backing = st.bytes_from_backing;
  res.cor_clusters = st.cor_clusters;
  res.cor_stopped = st.cor_stopped;
  res.file_bytes = cache->file_bytes();
  auto chk = sim::run_sync(env, cache->check());
  EXPECT_TRUE(chk.ok());
  res.check_clean = chk.ok() && chk->clean();
  return res;
}

TEST(ConcurrentCoR, SameClusterSingleFlightFetchesOnce) {
  // 16 readers of the same 64 KiB cluster: exactly one backing fetch; the
  // other 15 queue on the in-flight range and are served locally.
  const auto r = run_concurrent_readers(/*single_flight=*/true, 16,
                                        /*stride=*/0, /*read_len=*/64_KiB);
  EXPECT_TRUE(r.bytes_ok);
  EXPECT_TRUE(r.check_clean);
  EXPECT_EQ(r.backing_reads, 1u);
  EXPECT_EQ(r.bytes_from_backing, 64_KiB);
  EXPECT_EQ(r.inflight_waits, 15u);
  EXPECT_EQ(r.dedup_hits, 15u);
  EXPECT_EQ(r.cor_clusters, 1u);
  EXPECT_EQ(r.cor_stopped, 0u);
}

TEST(ConcurrentCoR, LegacyModeDuplicatesFetches) {
  // Ablation baseline: with single-flight off every reader fetches the
  // cluster from the base for itself; only one copy lands in the cache.
  const auto r = run_concurrent_readers(/*single_flight=*/false, 16,
                                        /*stride=*/0, /*read_len=*/64_KiB);
  EXPECT_TRUE(r.bytes_ok);
  EXPECT_TRUE(r.check_clean);
  EXPECT_EQ(r.backing_reads, 16u);
  EXPECT_EQ(r.bytes_from_backing, 16 * 64_KiB);
  EXPECT_EQ(r.dedup_hits, 0u);
  EXPECT_EQ(r.cor_clusters, 1u);
}

TEST(ConcurrentCoR, DisjointClustersNoWaitsAndFasterThanLegacy) {
  // 8 readers on 8 different clusters: no contention, one fetch each, and
  // the cold population finishes sooner than the serialized legacy mode.
  const auto on = run_concurrent_readers(/*single_flight=*/true, 8,
                                         /*stride=*/1_MiB, /*read_len=*/64_KiB);
  EXPECT_TRUE(on.bytes_ok);
  EXPECT_TRUE(on.check_clean);
  EXPECT_EQ(on.backing_reads, 8u);
  EXPECT_EQ(on.inflight_waits, 0u);
  EXPECT_EQ(on.dedup_hits, 0u);
  EXPECT_EQ(on.cor_clusters, 8u);

  const auto off = run_concurrent_readers(/*single_flight=*/false, 8,
                                          /*stride=*/1_MiB,
                                          /*read_len=*/64_KiB);
  EXPECT_TRUE(off.bytes_ok);
  EXPECT_EQ(off.cor_clusters, 8u);
  EXPECT_LT(on.makespan, off.makespan);
}

TEST(ConcurrentCoR, DeterministicAcrossRuns) {
  const auto a = run_concurrent_readers(/*single_flight=*/true, 12,
                                        /*stride=*/256_KiB, /*read_len=*/96_KiB);
  const auto b = run_concurrent_readers(/*single_flight=*/true, 12,
                                        /*stride=*/256_KiB, /*read_len=*/96_KiB);
  EXPECT_TRUE(a.bytes_ok);
  EXPECT_TRUE(a == b);
}

TEST(ConcurrentCoR, QuotaEdgeUnderConcurrency) {
  // 16 racing readers want 1 MiB of 4 KiB clusters but the cache may only
  // grow to 256 KiB: the quota stop must fire exactly once, the file must
  // respect the quota, and every reader still gets correct bytes.
  const auto r = run_concurrent_readers(/*single_flight=*/true, 16,
                                        /*stride=*/64_KiB, /*read_len=*/64_KiB,
                                        /*quota=*/256_KiB, /*cache_bits=*/12);
  EXPECT_TRUE(r.bytes_ok);
  EXPECT_TRUE(r.check_clean);
  EXPECT_EQ(r.cor_stopped, 1u);
  EXPECT_LE(r.file_bytes, 256_KiB);
  EXPECT_GT(r.backing_reads, 0u);
}

}  // namespace
}  // namespace vmic::qcow2
