// Tests for the paper's VMI-cache extension: copy-on-read population,
// quota enforcement (ENOSPC semantics), immutability w.r.t. the base,
// close()-time size persistence, standalone boot from a warm cache, and
// the cluster-granularity traffic amplification of §5.1/Fig 9.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/task.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace vmic::qcow2 {
namespace {

using block::DevicePtr;
using io::MemImageStore;
using sim::sync_wait;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

std::vector<std::uint8_t> pattern_bytes(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  Rng rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

class CacheTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBaseSize = 8_MiB;
  static constexpr std::uint64_t kBaseSeed = 77;

  MemImageStore store_;

  void SetUp() override {
    auto be = store_.create_file("base.img");
    ASSERT_TRUE(be.ok());
    auto data = pattern_bytes(kBaseSeed, kBaseSize);
    ASSERT_TRUE(sync_wait((*be)->pwrite(0, data)).ok());
  }

  /// Build the paper's chain: base <- cache(quota) <- cow. Returns the CoW
  /// device the "VM" boots from.
  DevicePtr make_chain(std::uint64_t quota, std::uint32_t cache_bits = 9) {
    auto c = sync_wait(create_cache_image(
        store_, "vmi.cache", "base.img", quota,
        {.cluster_bits = cache_bits, .virtual_size = 0}));
    EXPECT_TRUE(c.ok()) << to_string(c.error());
    auto w = sync_wait(create_cow_image(store_, "vm.cow", "vmi.cache"));
    EXPECT_TRUE(w.ok());
    auto dev = sync_wait(open_image(store_, "vm.cow"));
    EXPECT_TRUE(dev.ok()) << to_string(dev.error());
    return dev.ok() ? std::move(*dev) : nullptr;
  }

  Qcow2Device* cache_of(const DevicePtr& cow) {
    auto* c = dynamic_cast<Qcow2Device*>(cow->backing());
    EXPECT_NE(c, nullptr);
    return c;
  }

  std::uint64_t file_digest(const std::string& name) {
    auto buf = store_.buffer(name);
    EXPECT_TRUE(buf.ok());
    std::vector<std::uint8_t> all((*buf)->size());
    (*buf)->read(0, all);
    return fnv1a(all);
  }
};

TEST_F(CacheTest, ChainShape) {
  auto cow = make_chain(2_MiB);
  ASSERT_NE(cow, nullptr);
  EXPECT_FALSE(cow->is_cache_image());
  auto* cache = cache_of(cow);
  EXPECT_TRUE(cache->is_cache_image());
  EXPECT_EQ(cache->cache_quota(), 2_MiB);
  EXPECT_EQ(cache->cluster_size(), 512u);
  // The cache's backing is the (read-only demoted) raw base.
  ASSERT_NE(cache->backing(), nullptr);
  EXPECT_EQ(cache->backing()->format_name(), "raw");
  EXPECT_TRUE(cache->backing()->read_only());
  // The cache itself kept write permission (it is a cache image).
  EXPECT_FALSE(cache->read_only());
}

TEST_F(CacheTest, ReadsAreCorrectThroughCache) {
  auto cow = make_chain(4_MiB);
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  std::vector<std::uint8_t> out(300000);
  ASSERT_TRUE(sync_wait(cow->read(1_MiB + 512, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), expect.data() + 1_MiB + 512,
                           out.size()));
}

TEST_F(CacheTest, CopyOnReadPopulatesCache) {
  auto cow = make_chain(4_MiB);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> buf(64_KiB);
  ASSERT_TRUE(sync_wait(cow->read(0, buf)).ok());
  EXPECT_GT(cache->stats().cor_bytes, 0u);
  EXPECT_GE(cache->allocated_data_bytes(), buf.size());
  // The same range again: served from the cache, no new base traffic.
  const auto base_reads_before = cache->stats().backing_reads;
  ASSERT_TRUE(sync_wait(cow->read(0, buf)).ok());
  EXPECT_EQ(cache->stats().backing_reads, base_reads_before);
}

TEST_F(CacheTest, WarmCacheServesWithoutBase) {
  // §3: "the cache is standalone; a VM can start booting using it" —
  // once the working set is cached, the base sees zero reads.
  const std::uint64_t ws = 1_MiB;
  {
    auto cow = make_chain(4_MiB);
    std::vector<std::uint8_t> buf(ws);
    ASSERT_TRUE(sync_wait(cow->read(0, buf)).ok());
    ASSERT_TRUE(sync_wait(cow->close()).ok());
  }
  // New "VM", fresh CoW, same warm cache.
  ASSERT_TRUE(
      sync_wait(create_cow_image(store_, "vm2.cow", "vmi.cache")).ok());
  auto cow2 = sync_wait(open_image(store_, "vm2.cow"));
  ASSERT_TRUE(cow2.ok());
  auto* cache = dynamic_cast<Qcow2Device*>((*cow2)->backing());
  std::vector<std::uint8_t> buf(ws);
  ASSERT_TRUE(sync_wait((*cow2)->read(0, buf)).ok());
  EXPECT_EQ(cache->stats().backing_reads, 0u);
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  EXPECT_EQ(0, std::memcmp(buf.data(), expect.data(), ws));
}

TEST_F(CacheTest, QuotaIsNeverExceeded) {
  const std::uint64_t quota = 1_MiB;
  auto cow = make_chain(quota);
  auto* cache = cache_of(cow);
  // Read far more than the quota.
  std::vector<std::uint8_t> buf(256_KiB);
  for (std::uint64_t off = 0; off + buf.size() <= kBaseSize;
       off += buf.size()) {
    ASSERT_TRUE(sync_wait(cow->read(off, buf)).ok());
    ASSERT_LE(cache->file_bytes(), quota) << "off=" << off;
  }
  EXPECT_FALSE(cache->cor_active());  // population stopped
  EXPECT_GT(cache->stats().cor_stopped, 0u);
  EXPECT_LE(cache->file_bytes(), quota);
  // And reads remain correct after the quota hit.
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  std::vector<std::uint8_t> out(100000);
  ASSERT_TRUE(sync_wait(cow->read(kBaseSize - out.size(), out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(),
                           expect.data() + kBaseSize - out.size(),
                           out.size()));
}

TEST_F(CacheTest, CacheStaysConsistentAfterQuotaHit) {
  auto cow = make_chain(1_MiB);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> buf(512_KiB);
  ASSERT_TRUE(sync_wait(cow->read(0, buf)).ok());
  ASSERT_TRUE(sync_wait(cow->read(2_MiB, buf)).ok());
  ASSERT_TRUE(sync_wait(cow->read(4_MiB, buf)).ok());
  auto chk = sync_wait(cache->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean()) << "leaked=" << chk->leaked_clusters
                            << " corrupt=" << chk->corruptions;
}

TEST_F(CacheTest, GuestWritesToCacheRejected) {
  auto cow = make_chain(2_MiB);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> data(512, 0xAA);
  EXPECT_EQ(sync_wait(cache->write(0, data)).error(), Errc::read_only);
}

TEST_F(CacheTest, ImmutableWrtBase) {
  // Guest writes land in the CoW image; neither cache nor base change.
  auto cow = make_chain(4_MiB);
  std::vector<std::uint8_t> warm(1_MiB);
  ASSERT_TRUE(sync_wait(cow->read(0, warm)).ok());

  const auto base_digest = file_digest("base.img");
  const auto cache_digest = file_digest("vmi.cache");

  const auto data = pattern_bytes(5, 600000);
  ASSERT_TRUE(sync_wait(cow->write(100000, data)).ok());

  EXPECT_EQ(file_digest("base.img"), base_digest);
  EXPECT_EQ(file_digest("vmi.cache"), cache_digest);

  // And the write is visible through the chain.
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(sync_wait(cow->read(100000, out)).ok());
  EXPECT_EQ(data, out);
}

TEST_F(CacheTest, CowFillMayPopulateCache) {
  // A sub-cluster guest write to the CoW image fetches the fill from the
  // chain below — data coming *from the base* is allowed into the cache.
  auto cow = make_chain(4_MiB);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> tiny(100, 0xCD);
  ASSERT_TRUE(sync_wait(cow->write(3 * 64_KiB + 7, tiny)).ok());
  EXPECT_GT(cache->stats().cor_bytes, 0u);
  // Correctness: the merged cluster reads back as base-with-patch.
  auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  std::memcpy(expect.data() + 3 * 64_KiB + 7, tiny.data(), tiny.size());
  std::vector<std::uint8_t> out(128_KiB);
  ASSERT_TRUE(sync_wait(cow->read(2 * 64_KiB, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), expect.data() + 2 * 64_KiB,
                           out.size()));
}

TEST_F(CacheTest, ClosePersistsCurrentSize) {
  // §4.3 "close": the current size is written back into the header ext.
  std::uint64_t size_at_close = 0;
  {
    auto cow = make_chain(4_MiB);
    std::vector<std::uint8_t> buf(1_MiB);
    ASSERT_TRUE(sync_wait(cow->read(0, buf)).ok());
    size_at_close = cache_of(cow)->file_bytes();
    ASSERT_TRUE(sync_wait(cow->close()).ok());
  }
  auto be = store_.open_file("vmi.cache", /*writable=*/false);
  ASSERT_TRUE(be.ok());
  std::vector<std::uint8_t> hdr(512);
  ASSERT_TRUE(sync_wait((*be)->pread(0, hdr)).ok());
  auto parsed = parse_header_area(hdr);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->cache.has_value());
  EXPECT_EQ(parsed->cache->current_size, size_at_close);
  EXPECT_GT(size_at_close, 0u);
}

TEST_F(CacheTest, ReopenedWarmCacheKeepsServing) {
  {
    auto cow = make_chain(4_MiB);
    std::vector<std::uint8_t> buf(2_MiB);
    ASSERT_TRUE(sync_wait(cow->read(1_MiB, buf)).ok());
    ASSERT_TRUE(sync_wait(cow->close()).ok());
  }
  auto cow = sync_wait(open_image(store_, "vm.cow"));
  ASSERT_TRUE(cow.ok());
  auto* cache = dynamic_cast<Qcow2Device*>((*cow)->backing());
  std::vector<std::uint8_t> out(2_MiB);
  ASSERT_TRUE(sync_wait((*cow)->read(1_MiB, out)).ok());
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  EXPECT_EQ(0, std::memcmp(out.data(), expect.data() + 1_MiB, out.size()));
  EXPECT_EQ(cache->stats().backing_reads, 0u);  // all warm
}

// ---------------------------------------------------------------------------
// Cluster-granularity amplification (the Fig 9 mechanism, unit level)
// ---------------------------------------------------------------------------

TEST_F(CacheTest, SmallReadAmplifiedAt64KClusters) {
  auto cow = make_chain(4_MiB, /*cache_bits=*/16);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> tiny(512);
  ASSERT_TRUE(sync_wait(cow->read(100 * 512, tiny)).ok());
  // CoR had to fill the whole 64 KiB cluster from the base: the cache
  // pulled >= 64 KiB for a 512 B guest read.
  EXPECT_GE(cache->stats().bytes_from_backing, 64_KiB);
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);
  EXPECT_EQ(0, std::memcmp(tiny.data(), expect.data() + 100 * 512, 512));
}

TEST_F(CacheTest, SmallReadNotAmplifiedAt512Clusters) {
  auto cow = make_chain(4_MiB, /*cache_bits=*/9);
  auto* cache = cache_of(cow);
  std::vector<std::uint8_t> tiny(512);
  ASSERT_TRUE(sync_wait(cow->read(100 * 512, tiny)).ok());
  // Sector-aligned sector-sized read: exactly one cluster fetched.
  EXPECT_EQ(cache->stats().bytes_from_backing, 512u);
}

// Parameterized property: for any cache cluster size and quota, reads
// through the chain always match the base, the quota holds, and the cache
// metadata stays consistent.
class CachePropertyTest
    : public CacheTest,
      public ::testing::WithParamInterface<std::tuple<std::uint32_t, int>> {};

TEST_P(CachePropertyTest, RandomReadsAlwaysCorrectAndBounded) {
  const auto [cache_bits, quota_mb] = GetParam();
  const std::uint64_t quota = static_cast<std::uint64_t>(quota_mb) * 1_MiB;
  auto cow = make_chain(quota, cache_bits);
  ASSERT_NE(cow, nullptr);
  auto* cache = cache_of(cow);
  const auto expect = pattern_bytes(kBaseSeed, kBaseSize);

  Rng rng{2024};
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t len = 512 * (1 + rng.below(128));
    const std::uint64_t off = 512 * rng.below((kBaseSize - len) / 512);
    std::vector<std::uint8_t> out(len);
    ASSERT_TRUE(sync_wait(cow->read(off, out)).ok());
    ASSERT_EQ(0, std::memcmp(out.data(), expect.data() + off, len))
        << "step " << i;
    ASSERT_LE(cache->file_bytes(), quota);
  }
  auto chk = sync_wait(cache->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean()) << "leaked=" << chk->leaked_clusters
                            << " corrupt=" << chk->corruptions;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CachePropertyTest,
    ::testing::Combine(::testing::Values(9u, 12u, 16u),
                       ::testing::Values(1, 4, 16)),
    [](const auto& info) {
      return "cb" + std::to_string(std::get<0>(info.param)) + "_q" +
             std::to_string(std::get<1>(info.param)) + "mb";
    });

}  // namespace
}  // namespace vmic::qcow2
