// Tests for the processor-sharing link model: single-flow timing, fair
// sharing, arrivals/departures, conservation.
#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "sim/run.hpp"

namespace vmic::net {
namespace {

using sim::SimEnv;
using sim::Task;

Task<void> xfer(Link& l, std::uint64_t bytes) { co_await l.transfer(bytes); }

Task<void> xfer_at(SimEnv& env, Link& l, sim::SimTime start,
                   std::uint64_t bytes, sim::SimTime& done) {
  co_await env.delay(start);
  co_await l.transfer(bytes);
  done = env.now();
}

TEST(Link, SingleFlowAtFullBandwidth) {
  SimEnv env;
  Link l{env, 125e6, sim::from_micros(50)};
  run_sync(env, xfer(l, 125'000'000));
  // 1 second of payload + 50 us latency.
  EXPECT_NEAR(sim::to_seconds(env.now()), 1.0 + 50e-6, 1e-4);
  EXPECT_EQ(l.stats().transfers, 1u);
  EXPECT_EQ(l.stats().bytes, 125'000'000u);
}

TEST(Link, ZeroByteTransferIsLatencyOnly) {
  SimEnv env;
  Link l{env, 125e6, sim::from_micros(50)};
  run_sync(env, xfer(l, 0));
  EXPECT_NEAR(sim::to_seconds(env.now()), 50e-6, 1e-9);
}

TEST(Link, TwoFlowsShareFairly) {
  SimEnv env;
  Link l{env, 100e6, 0};
  sim::SimTime d1 = 0, d2 = 0;
  env.spawn(xfer_at(env, l, 0, 100'000'000, d1));
  env.spawn(xfer_at(env, l, 0, 100'000'000, d2));
  env.run();
  // Each gets 50 MB/s => both finish at ~2 s.
  EXPECT_NEAR(sim::to_seconds(d1), 2.0, 1e-3);
  EXPECT_NEAR(sim::to_seconds(d2), 2.0, 1e-3);
}

TEST(Link, LateArrivalSlowsEarlyFlow) {
  SimEnv env;
  Link l{env, 100e6, 0};
  sim::SimTime d1 = 0, d2 = 0;
  env.spawn(xfer_at(env, l, 0, 100'000'000, d1));                      // 1s solo
  env.spawn(xfer_at(env, l, sim::from_seconds(0.5), 50'000'000, d2));
  env.run();
  // Flow 1: 0.5 s at full rate (50 MB left), then shares: both have
  // 50 MB at 50 MB/s => 1 s more. d1 = d2 = 1.5 s.
  EXPECT_NEAR(sim::to_seconds(d1), 1.5, 1e-2);
  EXPECT_NEAR(sim::to_seconds(d2), 1.5, 1e-2);
}

TEST(Link, ShortFlowDepartsAndRateRecovers) {
  SimEnv env;
  Link l{env, 100e6, 0};
  sim::SimTime dl = 0, ds = 0;
  env.spawn(xfer_at(env, l, 0, 150'000'000, dl));  // long
  env.spawn(xfer_at(env, l, 0, 25'000'000, ds));   // short
  env.run();
  // Shared 50 MB/s: short finishes at 0.5 s (long has 125 MB left);
  // long then runs at 100 MB/s: +1.25 s => 1.75 s.
  EXPECT_NEAR(sim::to_seconds(ds), 0.5, 1e-2);
  EXPECT_NEAR(sim::to_seconds(dl), 1.75, 1e-2);
}

TEST(Link, ManyFlowsAggregateToLinkRate) {
  SimEnv env;
  Link l{env, 125e6, sim::from_micros(50)};
  const int n = 64;
  const std::uint64_t each = 2'000'000;
  for (int i = 0; i < n; ++i) env.spawn(xfer(l, each));
  env.run();
  // Total bytes / link rate, regardless of flow count.
  const double expect = (static_cast<double>(n) * each) / 125e6;
  EXPECT_NEAR(sim::to_seconds(env.now()), expect, 0.02 * expect);
  EXPECT_EQ(l.stats().peak_flows, static_cast<std::size_t>(n));
}

TEST(Link, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimEnv env;
    Link l{env, 125e6, sim::from_micros(10)};
    std::vector<sim::SimTime> done(10);
    for (int i = 0; i < 10; ++i) {
      env.spawn(xfer_at(env, l, sim::from_millis(i), 1'000'000 * (i + 1),
                        done[i]));
    }
    env.run();
    return done;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Network, Presets) {
  SimEnv env;
  Network ge{env, gigabit_ethernet()};
  Network ib{env, infiniband_qdr()};
  EXPECT_EQ(ge.name(), "1GbE");
  EXPECT_EQ(ib.name(), "32GbIB");
  EXPECT_GT(ib.down.bandwidth(), 20 * ge.down.bandwidth());
  EXPECT_LT(ib.down.latency(), ge.down.latency());
}

}  // namespace
}  // namespace vmic::net
