// Failure-injection tests: the block layer must propagate (not mask, not
// crash on) backend I/O errors, and a failing cache medium must degrade
// to pass-through reads rather than failing the guest.
#include <gtest/gtest.h>

#include <memory>

#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/task.hpp"
#include "util/bytes.hpp"
#include "util/units.hpp"

namespace vmic {
namespace {

using sim::sync_wait;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

/// Backend wrapper that starts failing after a programmable number of
/// operations (reads and writes counted separately).
class FaultyBackend final : public io::BlockBackend {
 public:
  FaultyBackend(io::BackendPtr inner, std::int64_t reads_before_fail,
                std::int64_t writes_before_fail)
      : inner_(std::move(inner)),
        reads_left_(reads_before_fail),
        writes_left_(writes_before_fail) {}

  sim::Task<Result<void>> pread(std::uint64_t off,
                                std::span<std::uint8_t> dst) override {
    if (reads_left_-- <= 0) co_return Errc::io_error;
    co_return co_await inner_->pread(off, dst);
  }
  sim::Task<Result<void>> pwrite(std::uint64_t off,
                                 std::span<const std::uint8_t> src) override {
    if (writes_left_-- <= 0) co_return Errc::io_error;
    co_return co_await inner_->pwrite(off, src);
  }
  sim::Task<Result<void>> flush() override {
    co_return co_await inner_->flush();
  }
  sim::Task<Result<void>> truncate(std::uint64_t s) override {
    co_return co_await inner_->truncate(s);
  }
  [[nodiscard]] std::uint64_t size() const override { return inner_->size(); }
  [[nodiscard]] std::string describe() const override { return "faulty"; }

 private:
  io::BackendPtr inner_;
  std::int64_t reads_left_;
  std::int64_t writes_left_;
};

/// Directory that wraps every opened file in a FaultyBackend.
class FaultyStore final : public io::ImageDirectory {
 public:
  explicit FaultyStore(io::MemImageStore& inner) : inner_(inner) {}

  std::int64_t reads_before_fail = 1'000'000'000;
  std::int64_t writes_before_fail = 1'000'000'000;
  std::string faulty_file;  // only this file misbehaves ("" = none)

  Result<io::BackendPtr> open_file(const std::string& name,
                                   bool writable) override {
    VMIC_TRY(be, inner_.open_file(name, writable));
    if (name == faulty_file) {
      return io::BackendPtr{std::make_unique<FaultyBackend>(
          std::move(be), reads_before_fail, writes_before_fail)};
    }
    return io::BackendPtr{std::move(be)};
  }
  Result<io::BackendPtr> create_file(const std::string& name) override {
    return inner_.create_file(name);
  }
  [[nodiscard]] bool exists(const std::string& name) const override {
    return inner_.exists(name);
  }

 private:
  io::MemImageStore& inner_;
};

struct Rig {
  io::MemImageStore mem;
  FaultyStore store{mem};

  Rig() {
    auto be = mem.create_file("base.img");
    EXPECT_TRUE(be.ok());
    std::vector<std::uint8_t> data(4_MiB, 0x5A);
    EXPECT_TRUE(sync_wait((*be)->pwrite(0, data)).ok());
    EXPECT_TRUE(
        sync_wait(qcow2::create_cache_image(mem, "vmi.cache", "base.img",
                                            2_MiB, {.cluster_bits = 9,
                                                    .virtual_size = 0}))
            .ok());
    EXPECT_TRUE(
        sync_wait(qcow2::create_cow_image(mem, "vm.cow", "vmi.cache")).ok());
  }
};

TEST(FaultInjection, BaseReadFailurePropagates) {
  Rig rig;
  rig.store.faulty_file = "base.img";
  // Budget 1: the open-time format probe succeeds, the first real read
  // against the base fails.
  rig.store.reads_before_fail = 1;
  auto dev = sync_wait(qcow2::open_image(rig.store, "vm.cow"));
  ASSERT_TRUE(dev.ok());
  std::vector<std::uint8_t> buf(64_KiB);
  EXPECT_EQ(sync_wait((*dev)->read(0, buf)).error(), Errc::io_error);
}

TEST(FaultInjection, DeadBaseFailsOpen) {
  // A base that cannot even be probed fails the chain open cleanly.
  Rig rig;
  rig.store.faulty_file = "base.img";
  rig.store.reads_before_fail = 0;
  auto dev = sync_wait(qcow2::open_image(rig.store, "vm.cow"));
  ASSERT_FALSE(dev.ok());
  EXPECT_EQ(dev.error(), Errc::io_error);
}

TEST(FaultInjection, CacheWriteFailureDegradesToPassThrough) {
  // A cache that cannot be written must not fail the guest read: the
  // driver stops populating and serves from the base (same path as the
  // quota ENOSPC case).
  Rig rig;
  rig.store.faulty_file = "vmi.cache";
  rig.store.writes_before_fail = 0;  // CoR writes fail immediately
  auto dev = sync_wait(qcow2::open_image(rig.store, "vm.cow"));
  ASSERT_TRUE(dev.ok());
  auto* cache = dynamic_cast<qcow2::Qcow2Device*>((*dev)->backing());
  ASSERT_NE(cache, nullptr);

  std::vector<std::uint8_t> buf(64_KiB);
  ASSERT_TRUE(sync_wait((*dev)->read(0, buf)).ok());
  for (auto b : buf) ASSERT_EQ(b, 0x5A);
  EXPECT_FALSE(cache->cor_active());
  // Subsequent reads keep working (pass-through, no more cache writes).
  ASSERT_TRUE(sync_wait((*dev)->read(1_MiB, buf)).ok());
  for (auto b : buf) ASSERT_EQ(b, 0x5A);
}

TEST(FaultInjection, WarmCacheReadFailureSurfaces) {
  Rig rig;
  // Warm the cache fault-free first.
  {
    auto dev = sync_wait(qcow2::open_image(rig.store, "vm.cow"));
    ASSERT_TRUE(dev.ok());
    std::vector<std::uint8_t> buf(1_MiB);
    ASSERT_TRUE(sync_wait((*dev)->read(0, buf)).ok());
    ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  }
  // Now the cache medium dies shortly after open: warm reads that hit the
  // cache surface the error.
  rig.store.faulty_file = "vmi.cache";
  rig.store.reads_before_fail = 30;  // enough for open-time metadata
  auto dev = sync_wait(qcow2::open_image(rig.store, "vm.cow"));
  if (!dev.ok()) {
    EXPECT_EQ(dev.error(), Errc::io_error);
    return;
  }
  std::vector<std::uint8_t> buf(64_KiB);
  Errc last = Errc::ok;
  for (int i = 0; i < 16 && last == Errc::ok; ++i) {
    last = sync_wait((*dev)->read(static_cast<std::uint64_t>(i) * buf.size(),
                                  buf))
               .error();
  }
  EXPECT_EQ(last, Errc::io_error);
}

TEST(FaultInjection, CowWriteFailurePropagates) {
  Rig rig;
  rig.store.faulty_file = "vm.cow";
  rig.store.writes_before_fail = 0;
  auto dev = sync_wait(qcow2::open_image(rig.store, "vm.cow"));
  ASSERT_TRUE(dev.ok());
  std::vector<std::uint8_t> data(4_KiB, 1);
  EXPECT_EQ(sync_wait((*dev)->write(0, data)).error(), Errc::io_error);
  // Reads still work (they don't touch the failing write path).
  std::vector<std::uint8_t> buf(4_KiB);
  EXPECT_TRUE(sync_wait((*dev)->read(1_MiB, buf)).ok());
}

TEST(FaultInjection, TruncatedImageFileRejected) {
  io::MemImageStore store;
  {
    auto be = store.create_file("img.qcow2");
    qcow2::Qcow2Device::CreateOptions opt;
    opt.virtual_size = 1_MiB;
    ASSERT_TRUE(sync_wait(qcow2::Qcow2Device::create(**be, opt)).ok());
  }
  (*store.buffer("img.qcow2"))->resize(50);  // decapitate
  auto dev = sync_wait(qcow2::open_image(store, "img.qcow2"));
  EXPECT_FALSE(dev.ok());
}

TEST(FaultInjection, CorruptL1PointerDetectedByCheck) {
  io::MemImageStore store;
  {
    auto be = store.create_file("img.qcow2");
    qcow2::Qcow2Device::CreateOptions opt;
    opt.virtual_size = 4_MiB;
    opt.cluster_bits = 12;
    ASSERT_TRUE(sync_wait(qcow2::Qcow2Device::create(**be, opt)).ok());
  }
  {
    auto dev = sync_wait(qcow2::open_image(store, "img.qcow2"));
    ASSERT_TRUE(dev.ok());
    std::vector<std::uint8_t> data(64_KiB, 7);
    ASSERT_TRUE(sync_wait((*dev)->write(0, data)).ok());
    ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  }
  // Corrupt the first L1 entry: point it past the end of the file.
  {
    auto* buf = *store.buffer("img.qcow2");
    std::uint8_t hdr[104];
    buf->read(0, hdr);
    const std::uint64_t l1_off = load_be64(hdr + 40);
    std::uint8_t evil[8];
    store_be64(evil, (1ull << 40) | (1ull << 63));
    buf->write(l1_off, evil);
  }
  auto dev = sync_wait(qcow2::open_image(store, "img.qcow2"));
  ASSERT_TRUE(dev.ok());
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  auto chk = sync_wait(q->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_GT(chk->corruptions, 0u);
}

}  // namespace
}  // namespace vmic
