// Tests for the extension features: full-copy deployment, mixed warm/cold
// fractions, boot-time prefetch, snapshot-restore profiles, and the
// InlineMutex that makes concurrent CoR safe.
#include <gtest/gtest.h>

#include "boot/profile.hpp"
#include "boot/trace.hpp"
#include "boot/vm.hpp"
#include "cluster/scenario.hpp"
#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"
#include "sim/sync.hpp"
#include "util/units.hpp"

namespace vmic {
namespace {

using namespace vmic::cluster;
using vmic::literals::operator""_MiB;
using vmic::literals::operator""_GiB;

boot::OsProfile tiny_profile() {
  boot::OsProfile p = boot::centos63();
  p.image_size = 256_MiB;
  p.unique_read_bytes = 4_MiB;
  p.cpu_seconds = 1.0;
  p.write_bytes = 1_MiB;
  return p;
}

ClusterParams small_cluster(int nodes) {
  ClusterParams cp;
  cp.compute_nodes = nodes;
  cp.network = net::gigabit_ethernet();
  return cp;
}

// ---------------------------------------------------------------------------
// Full-copy deployment (§2 baseline)
// ---------------------------------------------------------------------------

TEST(FullCopy, MuchSlowerThanOnDemand) {
  ScenarioConfig sc;
  sc.profile = tiny_profile();
  sc.num_vms = 2;
  sc.num_vmis = 1;
  sc.mode = CacheMode::full_copy;
  const auto full = run_scenario(small_cluster(2), sc);

  sc.mode = CacheMode::none;
  const auto ondemand = run_scenario(small_cluster(2), sc);

  // 256 MiB image vs a 4 MiB working set: the full copy dominates.
  EXPECT_GT(full.mean_boot, ondemand.mean_boot + 1.5);
  EXPECT_GE(full.storage_payload_bytes, 2 * 256_MiB);
}

// ---------------------------------------------------------------------------
// Mixed warm/cold (§5.3.1)
// ---------------------------------------------------------------------------

TEST(MixedWarmCold, FractionSplitsOutcomes) {
  ScenarioConfig sc;
  sc.profile = tiny_profile();
  sc.num_vms = 4;
  sc.num_vmis = 1;
  sc.mode = CacheMode::compute_disk;
  sc.state = CacheState::warm;
  sc.warm_node_fraction = 0.5;
  sc.cache_quota = 64_MiB;
  const auto r = run_scenario(small_cluster(4), sc);

  int warm = 0, cold = 0;
  for (const auto& vm : r.vms) (vm.warm ? warm : cold)++;
  EXPECT_EQ(warm, 2);
  EXPECT_EQ(cold, 2);
  // Cold nodes still had to reach the storage node.
  EXPECT_GT(r.storage_payload_bytes, 4_MiB);
}

TEST(MixedWarmCold, FullFractionAllWarm) {
  ScenarioConfig sc;
  sc.profile = tiny_profile();
  sc.num_vms = 4;
  sc.num_vmis = 1;
  sc.mode = CacheMode::compute_disk;
  sc.state = CacheState::warm;
  sc.warm_node_fraction = 1.0;
  sc.cache_quota = 64_MiB;
  const auto r = run_scenario(small_cluster(4), sc);
  for (const auto& vm : r.vms) EXPECT_TRUE(vm.warm);
}

// ---------------------------------------------------------------------------
// Prefetch (§7.3)
// ---------------------------------------------------------------------------

TEST(Prefetch, WarmsCacheWithoutBreakingCorrectness) {
  io::MemImageStore store;
  const auto p = tiny_profile();
  {
    auto be = store.create_file("base.img");
    ASSERT_TRUE(sim::sync_wait((*be)->truncate(p.image_size)).ok());
  }
  sim::SimEnv env;
  const auto trace = boot::generate_boot_trace(p);
  const auto res = sim::run_sync(
      env, [&]() -> sim::Task<Result<boot::BootResult>> {
        VMIC_CO_TRY_VOID(co_await qcow2::create_cache_image(
            store, "c.cache", "base.img", 64_MiB,
            {.cluster_bits = 9, .virtual_size = p.image_size}));
        VMIC_CO_TRY_VOID(co_await qcow2::create_cow_image(
            store, "vm.cow", "c.cache",
            {.cluster_bits = 16, .virtual_size = p.image_size}));
        VMIC_CO_TRY(dev, co_await qcow2::open_image(store, "vm.cow"));
        boot::BootOptions opts;
        opts.prefetch_bytes = 64 * 1024;
        auto r = co_await boot::boot_vm(env, *dev, trace, opts);
        // The cache must be internally consistent despite concurrent CoR
        // from guest reads and prefetch.
        auto* cache = dynamic_cast<qcow2::Qcow2Device*>(dev->backing());
        auto chk = co_await cache->check();
        if (!chk.ok() || !chk->clean()) co_return Errc::corrupt;
        VMIC_CO_TRY_VOID(co_await dev->close());
        co_return r;
      }());
  ASSERT_TRUE(res.ok()) << to_string(res.error());
  EXPECT_GT(res->prefetched_bytes, 0u);
}

TEST(Prefetch, ScenarioDeterministicWithPrefetch) {
  ScenarioConfig sc;
  sc.profile = tiny_profile();
  sc.num_vms = 2;
  sc.num_vmis = 1;
  sc.mode = CacheMode::compute_disk;
  sc.state = CacheState::cold;
  sc.cache_quota = 64_MiB;
  sc.prefetch_bytes = 32 * 1024;
  const auto a = run_scenario(small_cluster(2), sc);
  const auto b = run_scenario(small_cluster(2), sc);
  ASSERT_EQ(a.vms.size(), b.vms.size());
  for (std::size_t i = 0; i < a.vms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.vms[i].boot.boot_seconds, b.vms[i].boot.boot_seconds);
    EXPECT_GT(a.vms[i].boot.prefetched_bytes, 0u);
  }
}

// ---------------------------------------------------------------------------
// Snapshot-restore profile (§8)
// ---------------------------------------------------------------------------

TEST(SnapshotProfile, DerivesSensibly) {
  const auto os = boot::centos63();
  const auto snap = boot::snapshot_restore_profile(os);
  EXPECT_LT(snap.cpu_seconds, os.cpu_seconds / 5);
  EXPECT_GT(snap.unique_read_bytes, os.unique_read_bytes);
  EXPECT_EQ(snap.image_size, 2_GiB);
  // The trace generator honours the derived profile.
  const auto t = boot::generate_boot_trace(snap);
  EXPECT_NEAR(static_cast<double>(t.unique_read_bytes),
              static_cast<double>(snap.unique_read_bytes),
              0.06 * static_cast<double>(snap.unique_read_bytes));
}

TEST(SnapshotProfile, WarmCachedResumeIsFast) {
  boot::OsProfile snap =
      boot::snapshot_restore_profile(tiny_profile());
  snap.unique_read_bytes = 4_MiB;
  ScenarioConfig sc;
  sc.profile = snap;
  sc.num_vms = 4;
  sc.num_vmis = 1;
  sc.mode = CacheMode::compute_disk;
  sc.state = CacheState::warm;
  sc.cache_quota = 64_MiB;
  const auto r = run_scenario(small_cluster(4), sc);
  // Resume ~ cpu_seconds (2.5 s) + local reads, far below a boot.
  EXPECT_LT(r.mean_boot, 4.0);
}

// ---------------------------------------------------------------------------
// InlineMutex
// ---------------------------------------------------------------------------

sim::Task<void> inline_critical(sim::SimEnv& env, sim::InlineMutex& m,
                                std::vector<int>& log, int id) {
  auto g = co_await m.lock();
  log.push_back(id);
  co_await env.delay(10);
  log.push_back(-id);
}

TEST(InlineMutex, SerializesAcrossSuspension) {
  sim::SimEnv env;
  sim::InlineMutex m;
  std::vector<int> log;
  env.spawn(inline_critical(env, m, log, 1));
  env.spawn(inline_critical(env, m, log, 2));
  env.spawn(inline_critical(env, m, log, 3));
  env.run();
  EXPECT_EQ(log, (std::vector<int>{1, -1, 2, -2, 3, -3}));
  EXPECT_FALSE(m.locked());
}

TEST(InlineMutex, WorksWithoutEnvironment) {
  // Host-side (sync_wait) usage: uncontended lock/unlock without any
  // event loop.
  sim::InlineMutex m;
  auto once = [&]() -> sim::Task<int> {
    auto g = co_await m.lock();
    co_return 7;
  };
  EXPECT_EQ(sim::sync_wait(once()), 7);
  EXPECT_FALSE(m.locked());
}

}  // namespace
}  // namespace vmic
