// Unit tests for the QCOW2 on-disk header/extension (de)serialisation and
// the address-translation math of §4.1.
#include <gtest/gtest.h>

#include <vector>

#include "qcow2/format.hpp"
#include "qcow2/layout.hpp"
#include "util/bytes.hpp"
#include "util/units.hpp"

namespace vmic::qcow2 {
namespace {

using vmic::literals::operator""_MiB;
using vmic::literals::operator""_GiB;

Header sample_header() {
  Header h;
  h.cluster_bits = 16;
  h.size = 10_GiB;
  h.l1_size = 20;
  h.l1_table_offset = 3 * 65536;
  h.refcount_table_offset = 1 * 65536;
  h.refcount_table_clusters = 1;
  return h;
}

TEST(Qcow2Format, HeaderRoundTripPlain) {
  Header h = sample_header();
  std::vector<std::uint8_t> buf(header_area_size(std::nullopt, std::nullopt, ""), 0);
  write_header_area(h, std::nullopt, std::nullopt, "", buf);

  auto parsed = parse_header_area(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->h.magic, kMagic);
  EXPECT_EQ(parsed->h.version, kVersion);
  EXPECT_EQ(parsed->h.cluster_bits, 16u);
  EXPECT_EQ(parsed->h.size, 10_GiB);
  EXPECT_EQ(parsed->h.l1_size, 20u);
  EXPECT_EQ(parsed->h.l1_table_offset, 3u * 65536);
  EXPECT_FALSE(parsed->cache.has_value());
  EXPECT_TRUE(parsed->backing_file.empty());
}

TEST(Qcow2Format, HeaderRoundTripWithCacheAndBacking) {
  Header h = sample_header();
  const std::string backing = "images/centos-6.3.img";
  h.backing_file_offset =
      header_area_size(CacheExtension{}, std::nullopt, backing) - backing.size();
  h.backing_file_size = static_cast<std::uint32_t>(backing.size());

  CacheExtension ce{250_MiB, 42 * 65536};
  std::vector<std::uint8_t> buf(header_area_size(ce, std::nullopt, backing), 0);
  const auto payload_off = write_header_area(h, ce, std::nullopt, backing, buf);
  EXPECT_GT(payload_off, 0u);

  auto parsed = parse_header_area(buf);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->cache.has_value());
  EXPECT_EQ(parsed->cache->quota, 250_MiB);
  EXPECT_EQ(parsed->cache->current_size, 42u * 65536);
  EXPECT_EQ(parsed->cache_ext_payload_offset, payload_off);
  EXPECT_EQ(parsed->backing_file, backing);
}

TEST(Qcow2Format, MagicIsQfi) {
  // "QFI\xfb" on disk, byte for byte.
  Header h = sample_header();
  std::vector<std::uint8_t> buf(header_area_size(std::nullopt, std::nullopt, ""), 0);
  write_header_area(h, std::nullopt, std::nullopt, "", buf);
  EXPECT_EQ(buf[0], 'Q');
  EXPECT_EQ(buf[1], 'F');
  EXPECT_EQ(buf[2], 'I');
  EXPECT_EQ(buf[3], 0xFB);
}

TEST(Qcow2Format, RejectsBadMagic) {
  std::vector<std::uint8_t> buf(kHeaderLength, 0);
  EXPECT_EQ(parse_header_area(buf).error(), Errc::invalid_format);
}

TEST(Qcow2Format, RejectsUnsupportedVersion) {
  Header h = sample_header();
  std::vector<std::uint8_t> buf(header_area_size(std::nullopt, std::nullopt, ""), 0);
  write_header_area(h, std::nullopt, std::nullopt, "", buf);
  store_be32(buf.data() + 4, 7);
  EXPECT_EQ(parse_header_area(buf).error(), Errc::unsupported);
}

TEST(Qcow2Format, RejectsBadClusterBits) {
  Header h = sample_header();
  std::vector<std::uint8_t> buf(header_area_size(std::nullopt, std::nullopt, ""), 0);
  for (std::uint32_t bits : {0u, 8u, 22u, 63u}) {
    write_header_area(h, std::nullopt, std::nullopt, "", buf);
    store_be32(buf.data() + 20, bits);
    EXPECT_EQ(parse_header_area(buf).error(), Errc::invalid_format)
        << "bits=" << bits;
  }
}

TEST(Qcow2Format, RejectsEncryptionAndSnapshots) {
  Header h = sample_header();
  std::vector<std::uint8_t> buf(header_area_size(std::nullopt, std::nullopt, ""), 0);
  write_header_area(h, std::nullopt, std::nullopt, "", buf);
  store_be32(buf.data() + 32, 1);  // crypt_method = AES
  EXPECT_EQ(parse_header_area(buf).error(), Errc::unsupported);

  write_header_area(h, std::nullopt, std::nullopt, "", buf);
  store_be32(buf.data() + 60, 3);  // nb_snapshots
  EXPECT_EQ(parse_header_area(buf).error(), Errc::unsupported);
}

TEST(Qcow2Format, SkipsUnknownExtensions) {
  // Backward compatibility the other way around: a reader (like a stock
  // QEMU) that does not know the cache extension must be able to skip it;
  // symmetrically, our parser skips extensions it does not know.
  Header h = sample_header();
  std::vector<std::uint8_t> buf(512, 0);
  write_header_area(h, std::nullopt, std::nullopt, "", buf);
  // Overwrite the end marker with {unknown ext, len 12} + end marker.
  std::size_t off = kHeaderLength;
  store_be32(buf.data() + off, 0xDEADF00D);
  store_be32(buf.data() + off + 4, 12);
  off += 8 + 16;  // payload padded to 8
  store_be32(buf.data() + off, kExtEnd);

  auto parsed = parse_header_area(buf);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->unknown_extensions.size(), 1u);
  EXPECT_EQ(parsed->unknown_extensions[0], 0xDEADF00Du);
}

TEST(Qcow2Format, ParsesVersion2Headers) {
  // qcow2 v2: 72-byte header, no extensions, no feature fields. Our
  // parser accepts it (read-only compatibility with old images).
  Header h = sample_header();
  std::vector<std::uint8_t> buf(header_area_size(std::nullopt, std::nullopt, ""), 0);
  write_header_area(h, std::nullopt, std::nullopt, "", buf);
  store_be32(buf.data() + 4, 2);  // version = 2
  auto parsed = parse_header_area(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->h.version, 2u);
  EXPECT_EQ(parsed->h.header_length, 72u);
  EXPECT_FALSE(parsed->cache.has_value());  // extensions not walked in v2
}

TEST(Qcow2Format, TruncatedExtensionAreaIsCorrupt) {
  Header h = sample_header();
  std::vector<std::uint8_t> full(header_area_size(std::nullopt, std::nullopt, ""), 0);
  write_header_area(h, std::nullopt, std::nullopt, "", full);
  // Chop off the end marker.
  std::vector<std::uint8_t> buf(full.begin(), full.begin() + kHeaderLength);
  EXPECT_EQ(parse_header_area(buf).error(), Errc::corrupt);
}

// --------------------------------------------------------------------------
// Layout math (§4.1)
// --------------------------------------------------------------------------

TEST(Qcow2Layout, SplitsAddressBits) {
  // With cluster_bits = d, an L2 table holds 2^(d-3) entries; the paper's
  // derivation m = d - 3 (8-byte entries in a one-cluster table).
  const Layout l64k{16};
  EXPECT_EQ(l64k.cluster_size(), 64u * KiB);
  EXPECT_EQ(l64k.l2_bits(), 13u);
  EXPECT_EQ(l64k.l2_entries(), 8192u);
  EXPECT_EQ(l64k.bytes_per_l2(), 512_MiB);

  const Layout l512{9};
  EXPECT_EQ(l512.cluster_size(), 512u);
  EXPECT_EQ(l512.l2_entries(), 64u);
  EXPECT_EQ(l512.bytes_per_l2(), 32u * KiB);
}

TEST(Qcow2Layout, IndexDecomposition) {
  const Layout ly{16};
  const std::uint64_t vaddr = 5_GiB + 123 * 64 * KiB + 777;
  // Recompose the address from its parts.
  const std::uint64_t recomposed =
      (ly.l1_index(vaddr) * ly.l2_entries() + ly.l2_index(vaddr)) *
          ly.cluster_size() +
      ly.in_cluster(vaddr);
  EXPECT_EQ(recomposed, vaddr);
  EXPECT_EQ(ly.in_cluster(vaddr), 777u);
}

TEST(Qcow2Layout, L1EntriesForImageSizes) {
  const Layout ly{16};
  EXPECT_EQ(ly.l1_entries_for(512_MiB), 1u);
  EXPECT_EQ(ly.l1_entries_for(512_MiB + 1), 2u);
  EXPECT_EQ(ly.l1_entries_for(10_GiB), 20u);
}

TEST(Qcow2Layout, L2BytesMatchPaperFigure) {
  // §5.1: "For a cache quota of 200 MB, only 3.1 MB is necessary for
  // L2-tables" — at 512 B clusters, 200 MiB of data needs
  // 200 MiB / 512 entries of 8 bytes = 3.125 MiB of L2 tables.
  const Layout ly{9};
  const std::uint64_t data = 200_MiB;
  const std::uint64_t l2_tables =
      div_ceil(data / ly.cluster_size(), ly.l2_entries());
  const double l2_bytes =
      static_cast<double>(l2_tables * ly.cluster_size()) / (1024.0 * 1024.0);
  EXPECT_NEAR(l2_bytes, 3.125, 0.01);
}

TEST(Qcow2Layout, RefcountGeometry) {
  const Layout ly{9};
  EXPECT_EQ(ly.refcounts_per_block(), 256u);      // 512/2
  EXPECT_EQ(ly.rt_entries_per_cluster(), 64u);    // 512/8
  EXPECT_EQ(ly.clusters_per_rt_cluster(), 16384u);
}

}  // namespace
}  // namespace vmic::qcow2
