// vmic::update tests: schedule determinism, changed-cluster clumping,
// versioned naming round-trips, policy parsing — plus the engine-level
// churn behaviour (rebase vs invalidate, determinism, golden-pin
// dormancy) and the workload edge cases the update PR hardened
// (empty catalogs, over-unity diurnal amplitude, degenerate flash
// crowds).

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "cloud/engine.hpp"
#include "update/update.hpp"

namespace vmic {
namespace {

using cloud::CloudConfig;
using cloud::CloudResult;
using cloud::run_cloud;

// --- schedule ---------------------------------------------------------------

update::UpdateParams churn_params() {
  update::UpdateParams p;
  p.enabled = true;
  p.rate_per_hour = 6.0;
  p.changed_frac = 0.1;
  return p;
}

TEST(UpdateSchedule, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  const auto s1 = update::generate_schedule(churn_params(), 4, 7200.0, a);
  const auto s2 = update::generate_schedule(churn_params(), 4, 7200.0, b);
  const auto s3 = update::generate_schedule(churn_params(), 4, 7200.0, c);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1[i].at_s, s2[i].at_s);
    EXPECT_EQ(s1[i].vmi, s2[i].vmi);
    EXPECT_EQ(s1[i].to_version, s2[i].to_version);
  }
  ASSERT_FALSE(s1.empty());
  ASSERT_FALSE(s3.empty());
  EXPECT_NE(s1[0].at_s, s3[0].at_s);
}

TEST(UpdateSchedule, RoundRobinVersionsCountUpPerImage) {
  Rng rng(7);
  const auto s = update::generate_schedule(churn_params(), 3, 4 * 3600.0, rng);
  ASSERT_GE(s.size(), 6u);
  std::map<int, std::uint32_t> last;
  double prev = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].vmi, static_cast<int>(i % 3));  // round-robin assignment
    EXPECT_EQ(s[i].to_version, ++last[s[i].vmi]);  // 1, 2, 3, ... per image
    EXPECT_GE(s[i].at_s, prev);
    prev = s[i].at_s;
  }
}

TEST(UpdateSchedule, MaxEventsCapsTheSchedule) {
  auto p = churn_params();
  p.max_events = 2;
  Rng rng(7);
  EXPECT_LE(update::generate_schedule(p, 4, 8 * 3600.0, rng).size(), 2u);
}

// --- changed-cluster model --------------------------------------------------

TEST(UpdateDiff, ChangesClumpIntoWholeRuns) {
  const std::uint64_t run = update::kChangedRunClusters;
  for (std::uint64_t r = 0; r < 64; ++r) {
    const bool first = update::cluster_changed(3, r * run, 1, 0.25);
    for (std::uint64_t c = 1; c < run; ++c) {
      EXPECT_EQ(update::cluster_changed(3, r * run + c, 1, 0.25), first);
    }
  }
}

TEST(UpdateDiff, FractionIsRoughlyHonoured) {
  int changed = 0;
  const int n = 80000;
  for (std::uint64_t c = 0; c < n; ++c) {
    if (update::cluster_changed(1, c, 2, 0.1)) ++changed;
  }
  EXPECT_GT(changed, n / 20);     // > 5%
  EXPECT_LT(changed, n * 3 / 20);  // < 15%
}

TEST(UpdateDiff, DegenerateFractionsAndVersionZero) {
  EXPECT_FALSE(update::cluster_changed(0, 5, 0, 0.5));  // v0 = the seed image
  for (std::uint64_t c = 0; c < 64; ++c) {
    EXPECT_TRUE(update::cluster_changed(0, c, 1, 1.0));
    EXPECT_FALSE(update::cluster_changed(0, c, 1, 0.0));
  }
  // Independent across versions: version 1's set differs from version 2's.
  bool differs = false;
  for (std::uint64_t c = 0; c < 512 && !differs; ++c) {
    differs = update::cluster_changed(2, c, 1, 0.3) !=
              update::cluster_changed(2, c, 2, 0.3);
  }
  EXPECT_TRUE(differs);
}

TEST(UpdateNames, VersionedNameRoundTrips) {
  EXPECT_EQ(update::versioned_name("img-3", 0), "img-3");
  EXPECT_EQ(update::versioned_name("img-3", 2), "img-3@2");
  EXPECT_EQ(update::version_of("img-3"), 0u);
  EXPECT_EQ(update::version_of("img-3@2"), 2u);
  EXPECT_EQ(update::version_of("img-3@17"), 17u);
  EXPECT_EQ(update::base_name("img-3@2"), "img-3");
  EXPECT_EQ(update::base_name("img-3"), "img-3");
}

TEST(UpdatePolicy, ParseAndPrint) {
  EXPECT_EQ(*update::parse_policy("invalidate"), update::Policy::invalidate);
  EXPECT_EQ(*update::parse_policy("rebase"), update::Policy::rebase);
  EXPECT_EQ(*update::parse_policy("auto"), update::Policy::auto_);
  EXPECT_FALSE(update::parse_policy("yes").ok());
  EXPECT_FALSE(update::parse_policy("").ok());
  EXPECT_STREQ(update::to_string(update::Policy::rebase), "rebase");
}

// --- workload hardening -----------------------------------------------------

TEST(WorkloadEdge, EmptyCatalogIsRejected) {
  EXPECT_THROW(cloud::ZipfPicker(0, 1.0), std::invalid_argument);
  EXPECT_THROW(cloud::ZipfPicker(-3, 1.0), std::invalid_argument);
  cloud::WorkloadConfig wc;
  wc.num_vmis = 0;
  EXPECT_FALSE(cloud::validate(wc).ok());
}

TEST(WorkloadEdge, ValidateRejectsTheNonsensical) {
  cloud::WorkloadConfig wc;
  EXPECT_TRUE(cloud::validate(wc).ok());
  wc.mean_interarrival_s = 0;
  EXPECT_FALSE(cloud::validate(wc).ok());
  wc = {};
  wc.zipf_exponent = -1;
  EXPECT_FALSE(cloud::validate(wc).ok());
  wc = {};
  wc.min_lifetime_s = -5;
  EXPECT_FALSE(cloud::validate(wc).ok());
  wc = {};
  wc.process = cloud::ArrivalProcess::diurnal;
  wc.diurnal_amplitude = -0.1;
  EXPECT_FALSE(cloud::validate(wc).ok());
  wc.diurnal_amplitude = 0.6;
  wc.diurnal_period_s = 0;
  EXPECT_FALSE(cloud::validate(wc).ok());
  wc = {};
  wc.process = cloud::ArrivalProcess::flash_crowd;
  wc.flash_factor = 0.5;  // < 1 would invert the thinning envelope
  EXPECT_FALSE(cloud::validate(wc).ok());
}

TEST(WorkloadEdge, OverUnityAmplitudeClampsInsteadOfBreaking) {
  cloud::WorkloadConfig wc;
  wc.process = cloud::ArrivalProcess::diurnal;
  wc.diurnal_amplitude = 1.8;  // trough rate would be negative unclamped
  wc.mean_interarrival_s = 30.0;
  EXPECT_TRUE(cloud::validate(wc).ok());
  Rng rng(5);
  const auto w = cloud::generate_workload(wc, 4 * 3600.0, rng);
  EXPECT_FALSE(w.empty());
  double prev = 0;
  for (const auto& r : w) {
    EXPECT_GE(r.arrival_s, prev);
    prev = r.arrival_s;
  }
}

TEST(WorkloadEdge, ZeroDurationFlashCrowdIsAPlainPoisson) {
  cloud::WorkloadConfig wc;
  wc.process = cloud::ArrivalProcess::flash_crowd;
  wc.flash_duration_s = 0;
  EXPECT_TRUE(cloud::validate(wc).ok());
  Rng rng(5);
  const auto w = cloud::generate_workload(wc, 3600.0, rng);
  EXPECT_FALSE(w.empty());
}

// --- engine-level churn -----------------------------------------------------

CloudConfig churn_config(std::uint64_t seed, update::Policy policy) {
  CloudConfig cfg;
  cfg.seed = seed;
  cfg.horizon_s = 1800.0;
  cfg.workload.mean_interarrival_s = 15.0;
  cfg.workload.num_vmis = 4;
  cfg.workload.min_lifetime_s = 30.0;
  cfg.workload.mean_extra_lifetime_s = 60.0;
  cfg.profile.image_size = 256 * MiB;  // keep publishes cheap host-side
  cfg.content_bytes = 32 * MiB;
  cfg.updates.enabled = true;
  cfg.updates.rate_per_hour = 8.0;
  cfg.updates.changed_frac = 0.1;
  cfg.updates.policy = policy;
  return cfg;
}

void expect_churn_accounting(const CloudResult& r) {
  EXPECT_EQ(r.completed + r.aborted + r.rejected, r.arrivals);
  EXPECT_EQ(r.leaked_slots, 0);
  EXPECT_GT(r.updates_published, 0);
  const auto& m = r.metrics;
  EXPECT_EQ(m.counter_total("update.published"),
            static_cast<std::uint64_t>(r.updates_published));
  EXPECT_EQ(m.counter_total("update.rebased"),
            static_cast<std::uint64_t>(r.caches_rebased));
  EXPECT_EQ(m.counter_total("update.invalidated"),
            static_cast<std::uint64_t>(r.update_invalidations));
  EXPECT_EQ(m.counter_total("update.rebase.patched_clusters"),
            r.rebase_patched_clusters);
  EXPECT_EQ(m.counter_total("update.rebase.reused_clusters"),
            r.rebase_reused_clusters);
}

TEST(UpdateChurn, DeterministicPerSeed) {
  const auto r1 = run_cloud(churn_config(9, update::Policy::rebase));
  const auto r2 = run_cloud(churn_config(9, update::Policy::rebase));
  expect_churn_accounting(r1);
  EXPECT_EQ(r1.metrics.to_text(), r2.metrics.to_text());  // byte-identical
}

TEST(UpdateChurn, RebaseBeatsInvalidateOnStorageBytes) {
  const auto inval = run_cloud(churn_config(9, update::Policy::invalidate));
  const auto rebase = run_cloud(churn_config(9, update::Policy::rebase));
  expect_churn_accounting(inval);
  expect_churn_accounting(rebase);
  EXPECT_GT(inval.update_invalidations, 0);
  EXPECT_GT(rebase.caches_rebased, 0);
  EXPECT_GT(rebase.rebase_reused_clusters, rebase.rebase_patched_clusters);
  // The point of the subsystem: patching only the diff must move fewer
  // storage-node bytes than cold refills after every publish.
  EXPECT_LT(rebase.post_update_storage_bytes,
            inval.post_update_storage_bytes);
}

TEST(UpdateChurn, AutoPolicyFollowsTheThreshold) {
  auto cfg = churn_config(9, update::Policy::auto_);
  cfg.updates.changed_frac = 0.1;
  cfg.updates.rebase_threshold = 0.5;
  const auto r1 = run_cloud(cfg);  // small diff: rebases
  EXPECT_GT(r1.caches_rebased, 0);
  cfg.updates.rebase_threshold = 0.05;
  const auto r2 = run_cloud(cfg);  // diff above threshold: invalidates
  EXPECT_EQ(r2.caches_rebased, 0);
  EXPECT_GT(r2.update_invalidations, 0);
}

TEST(UpdateChurn, UpdatesOffEmitsNoUpdateMetrics) {
  auto cfg = churn_config(9, update::Policy::rebase);
  cfg.updates.enabled = false;
  const auto r = run_cloud(cfg);
  EXPECT_EQ(r.updates_published, 0);
  EXPECT_EQ(r.post_update_storage_bytes, 0u);
  // Golden-pin rule: an updates-off run must not even create the
  // update.* instruments.
  EXPECT_EQ(r.metrics.find("update.published"), nullptr);
  EXPECT_EQ(r.metrics.find("update.rebased"), nullptr);
  EXPECT_EQ(r.metrics.find("update.post_storage_bytes"), nullptr);
}

TEST(UpdateChurn, SurvivesRestartWithManifestAdoption) {
  auto cfg = churn_config(11, update::Policy::rebase);
  cfg.manifest = true;
  cfg.restart_at_s = {900.0};
  cfg.restart_down_s = 20.0;
  const auto r = run_cloud(cfg);
  expect_churn_accounting(r);
  EXPECT_EQ(r.restarts, 1);
  // Adoption must never resurrect a superseded version: every re-adopted
  // or stale-dropped entry is accounted, nothing leaks.
  EXPECT_EQ(r.metrics.counter_total("cloud.adopt.ok"),
            static_cast<std::uint64_t>(r.caches_readopted));
  EXPECT_EQ(r.metrics.counter_total("cloud.adopt.stale"),
            static_cast<std::uint64_t>(r.adopt_stale));
}

TEST(UpdateChurn, SurvivesCrashesAndTiers) {
  auto cfg = churn_config(13, update::Policy::rebase);
  cfg.peer_transfer = true;
  cfg.dedup = true;
  Rng plan_rng(cfg.seed ^ 0xFA11'FA11'FA11'FA11ull);
  cfg.failures = cloud::plan_failures(2, 1, cfg.cluster.compute_nodes,
                                      cfg.horizon_s, plan_rng);
  const auto r = run_cloud(cfg);
  expect_churn_accounting(r);
  EXPECT_GT(r.node_crashes, 0);
}

}  // namespace
}  // namespace vmic
