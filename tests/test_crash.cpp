// Tests for vmic::crash — the volatile write-back CrashBackend, qcow2
// crash consistency (dirty bit, repair, lazy refcounts), and the
// exhaustive crash-point sweep (crash::explore).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crash/crash_backend.hpp"
#include "crash/explore.hpp"
#include "io/mem_backend.hpp"
#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "qcow2/format.hpp"
#include "sim/task.hpp"
#include "util/bytes.hpp"
#include "util/units.hpp"

namespace vmic::crash {
namespace {

using io::MemBackend;
using io::MemImageStore;
using sim::sync_wait;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

std::vector<std::uint8_t> filled(std::size_t n, std::uint8_t v) {
  return std::vector<std::uint8_t>(n, v);
}

// --- CrashBackend ------------------------------------------------------

TEST(CrashBackend, BuffersWritesUntilFlush) {
  MemBackend inner;
  CrashBackend cb(inner, CrashPlan{});

  const auto data = filled(4096, 0xAB);
  ASSERT_TRUE(sync_wait(cb.pwrite(0, data)).ok());

  // The writer reads its own unflushed write...
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(sync_wait(cb.pread(0, out)).ok());
  EXPECT_EQ(out, data);
  // ...but the inner backend has not seen a byte of it.
  EXPECT_EQ(inner.size(), 0u);
  EXPECT_EQ(cb.size(), 4096u);

  ASSERT_TRUE(sync_wait(cb.flush()).ok());
  EXPECT_EQ(inner.size(), 4096u);
  std::vector<std::uint8_t> persisted(4096);
  ASSERT_TRUE(sync_wait(inner.pread(0, persisted)).ok());
  EXPECT_EQ(persisted, data);
}

TEST(CrashBackend, OverlayHonorsWriteOrder) {
  MemBackend inner;
  ASSERT_TRUE(sync_wait(inner.pwrite(0, filled(1024, 0x11))).ok());
  CrashBackend cb(inner, CrashPlan{});

  // Two overlapping unflushed writes: the later one wins on the overlap.
  ASSERT_TRUE(sync_wait(cb.pwrite(0, filled(512, 0x22))).ok());
  ASSERT_TRUE(sync_wait(cb.pwrite(256, filled(512, 0x33))).ok());

  std::vector<std::uint8_t> out(1024);
  ASSERT_TRUE(sync_wait(cb.pread(0, out)).ok());
  EXPECT_EQ(out[0], 0x22);
  EXPECT_EQ(out[255], 0x22);
  EXPECT_EQ(out[256], 0x33);
  EXPECT_EQ(out[767], 0x33);
  EXPECT_EQ(out[768], 0x11);  // untouched inner bytes show through
}

TEST(CrashBackend, TruncateShrinkReadsZeroTail) {
  MemBackend inner;
  ASSERT_TRUE(sync_wait(inner.pwrite(0, filled(2048, 0x44))).ok());
  CrashBackend cb(inner, CrashPlan{});

  ASSERT_TRUE(sync_wait(cb.truncate(1024)).ok());
  EXPECT_EQ(cb.size(), 1024u);

  std::vector<std::uint8_t> out(2048);
  ASSERT_TRUE(sync_wait(cb.pread(0, out)).ok());
  EXPECT_EQ(out[0], 0x44);
  EXPECT_EQ(out[1023], 0x44);
  EXPECT_EQ(out[1024], 0x00);  // beyond the shadow size
  EXPECT_EQ(out[2047], 0x00);
  // Inner file still holds the old length until a flush applies the op.
  EXPECT_EQ(inner.size(), 2048u);
}

TEST(CrashBackend, ScheduledCutFiresAndKillsBackend) {
  MemBackend inner;
  CrashPlan plan;
  plan.cut_after_events = 3;
  plan.seed = 7;
  CrashBackend cb(inner, plan);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sync_wait(cb.pwrite(i * 4096ull, filled(512, 0x55))).ok());
  }
  EXPECT_TRUE(cb.alive());
  EXPECT_EQ(cb.events(), 3u);

  // Event 4 is where the power fails *instead of* the op.
  EXPECT_EQ(sync_wait(cb.pwrite(0, filled(512, 0x66))).error(),
            Errc::io_error);
  EXPECT_FALSE(cb.alive());
  EXPECT_EQ(cb.stats().power_cuts, 1u);
  // Every unflushed write was adjudicated exactly once.
  EXPECT_EQ(cb.stats().writes_kept + cb.stats().writes_dropped +
                cb.stats().writes_torn,
            3u);

  // Dead means dead, for every operation class.
  std::vector<std::uint8_t> out(16);
  EXPECT_EQ(sync_wait(cb.pread(0, out)).error(), Errc::io_error);
  EXPECT_EQ(sync_wait(cb.flush()).error(), Errc::io_error);
  EXPECT_EQ(sync_wait(cb.truncate(0)).error(), Errc::io_error);
}

TEST(CrashBackend, FlushedWritesSurviveTheCut) {
  MemBackend inner;
  CrashBackend cb(inner, CrashPlan{.cut_after_events = ~0ull, .seed = 3});

  const auto durable = filled(4096, 0x77);
  ASSERT_TRUE(sync_wait(cb.pwrite(0, durable)).ok());
  ASSERT_TRUE(sync_wait(cb.flush()).ok());
  ASSERT_TRUE(sync_wait(cb.pwrite(8192, filled(4096, 0x88))).ok());

  ASSERT_TRUE(sync_wait(cb.power_cut()).ok());
  ASSERT_TRUE(sync_wait(cb.power_cut()).ok());  // idempotent
  EXPECT_EQ(cb.stats().power_cuts, 1u);

  // Whatever happened to the unflushed tail, the flushed prefix is intact.
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(sync_wait(inner.pread(0, out)).ok());
  EXPECT_EQ(out, durable);
}

TEST(CrashBackend, CutIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    auto inner = std::make_unique<MemBackend>();
    CrashBackend cb(*inner, CrashPlan{.cut_after_events = ~0ull,
                                      .seed = seed});
    // A window wide enough that keep/drop/tear all have room to differ.
    for (int i = 0; i < 12; ++i) {
      std::vector<std::uint8_t> d(3 * 512, static_cast<std::uint8_t>(i + 1));
      EXPECT_TRUE(sync_wait(cb.pwrite(i * 2048ull, d)).ok());
    }
    EXPECT_TRUE(sync_wait(cb.power_cut()).ok());
    std::vector<std::uint8_t> img(12 * 2048);
    EXPECT_TRUE(sync_wait(inner->pread(0, img)).ok());
    return std::pair(img, cb.stats());
  };

  const auto [img_a, st_a] = run(5);
  const auto [img_b, st_b] = run(5);
  EXPECT_EQ(img_a, img_b);
  EXPECT_EQ(st_a.writes_kept, st_b.writes_kept);
  EXPECT_EQ(st_a.writes_dropped, st_b.writes_dropped);
  EXPECT_EQ(st_a.writes_torn, st_b.writes_torn);

  const auto [img_c, st_c] = run(6);
  EXPECT_NE(img_a, img_c);  // a different seed slices the window differently
}

// --- qcow2 repair ------------------------------------------------------

class RepairTest : public ::testing::Test {
 protected:
  MemImageStore store_;

  // Create a small image with one cluster of data and close it cleanly.
  void make_image(const std::string& name) {
    auto be = store_.create_file(name);
    ASSERT_TRUE(be.ok());
    qcow2::Qcow2Device::CreateOptions opt;
    opt.virtual_size = 8_MiB;
    opt.cluster_bits = 16;
    ASSERT_TRUE(sync_wait(qcow2::Qcow2Device::create(**be, opt)).ok());
    auto dev = sync_wait(qcow2::open_image(store_, name));
    ASSERT_TRUE(dev.ok());
    ASSERT_TRUE(sync_wait((*dev)->write(0, filled(64_KiB, 0x5A))).ok());
    ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  }

  SparseBuffer& raw(const std::string& name) {
    auto b = store_.buffer(name);
    EXPECT_TRUE(b.ok());
    return **b;
  }

  std::uint64_t header_u64(const std::string& name, std::uint64_t off) {
    std::uint8_t b[8];
    raw(name).read(off, b);
    return load_be64(b);
  }

  void poke_u64(const std::string& name, std::uint64_t off,
                std::uint64_t v) {
    std::uint8_t b[8];
    store_be64(b, v);
    raw(name).write(off, b);
  }
};

TEST_F(RepairTest, RepairClearsOutOfFilePointer) {
  make_image("a.qcow2");
  // Corrupt L1[0]: point it far beyond end-of-file (copied flag set).
  const std::uint64_t l1_off = header_u64("a.qcow2", 40);
  ASSERT_NE(l1_off, 0u);
  poke_u64("a.qcow2", l1_off, (1ull << 40) | qcow2::kFlagCopied);

  auto dev = sync_wait(qcow2::open_image(store_, "a.qcow2"));
  ASSERT_TRUE(dev.ok());
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  ASSERT_NE(q, nullptr);

  auto pre = sync_wait(q->check());
  ASSERT_TRUE(pre.ok());
  EXPECT_GT(pre->corruptions, 0u);

  auto rep = sync_wait(q->repair());
  ASSERT_TRUE(rep.ok());
  EXPECT_GT(rep->entries_cleared, 0u);

  auto post = sync_wait(q->check());
  ASSERT_TRUE(post.ok());
  EXPECT_TRUE(post->clean()) << "leaked=" << post->leaked_clusters
                             << " corrupt=" << post->corruptions;

  // The guest view of the orphaned cluster is now zero, not garbage.
  std::vector<std::uint8_t> out(64_KiB);
  ASSERT_TRUE(sync_wait((*dev)->read(0, out)).ok());
  EXPECT_TRUE(is_all_zero(out));
  ASSERT_TRUE(sync_wait((*dev)->close()).ok());
}

TEST_F(RepairTest, RepairRebuildsUndercountedRefcount) {
  make_image("b.qcow2");
  // Zero the whole first refcount block: every allocated cluster becomes
  // refcount 0 while still referenced -> corruption, fixed by rebuild.
  const std::uint64_t rt_off = header_u64("b.qcow2", 48);
  ASSERT_NE(rt_off, 0u);
  const std::uint64_t rb_off = header_u64("b.qcow2", rt_off);
  ASSERT_NE(rb_off, 0u);
  std::vector<std::uint8_t> zeros(64_KiB, 0);
  raw("b.qcow2").write(rb_off, zeros);

  auto dev = sync_wait(qcow2::open_image(store_, "b.qcow2"));
  ASSERT_TRUE(dev.ok());
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  ASSERT_NE(q, nullptr);

  auto pre = sync_wait(q->check());
  ASSERT_TRUE(pre.ok());
  EXPECT_GT(pre->corruptions, 0u);

  auto rep = sync_wait(q->repair());
  ASSERT_TRUE(rep.ok());
  EXPECT_GT(rep->corruptions_fixed, 0u);

  auto post = sync_wait(q->check());
  ASSERT_TRUE(post.ok());
  EXPECT_TRUE(post->clean());

  // Data was never touched; it reads back exactly.
  std::vector<std::uint8_t> out(64_KiB);
  ASSERT_TRUE(sync_wait((*dev)->read(0, out)).ok());
  EXPECT_EQ(out, filled(64_KiB, 0x5A));
  ASSERT_TRUE(sync_wait((*dev)->close()).ok());
}

TEST_F(RepairTest, DirtyBitAutoRepairsOnWritableOpen) {
  make_image("c.qcow2");
  // Simulate a crash: set the dirty bit by hand (byte 72, bit 0).
  poke_u64("c.qcow2", 72,
           header_u64("c.qcow2", 72) | qcow2::kIncompatDirty);

  // Default open (auto_repair_dirty) repairs and clears the bit.
  auto dev = sync_wait(qcow2::open_image(store_, "c.qcow2"));
  ASSERT_TRUE(dev.ok());
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  ASSERT_NE(q, nullptr);
  EXPECT_FALSE(q->dirty());
  auto chk = sync_wait(q->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean());
  ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  EXPECT_EQ(header_u64("c.qcow2", 72) & qcow2::kIncompatDirty, 0u);
}

TEST_F(RepairTest, InheritedDirtyBitSurvivesCloseWithoutRepair) {
  make_image("d.qcow2");
  poke_u64("d.qcow2", 72,
           header_u64("d.qcow2", 72) | qcow2::kIncompatDirty);

  // Observe-only open: auto-repair off. close() must NOT bless the image
  // clean — only a repair() earns that.
  auto be = store_.open_file("d.qcow2", /*writable=*/true);
  ASSERT_TRUE(be.ok());
  block::OpenOptions opt;
  opt.auto_repair_dirty = false;
  auto dev = sync_wait(qcow2::open_any(std::move(*be), opt));
  ASSERT_TRUE(dev.ok());
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->dirty());
  ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  EXPECT_NE(header_u64("d.qcow2", 72) & qcow2::kIncompatDirty, 0u);
}

// Crash the power at every instant *inside* repair itself, starting from
// an artificially corrupted image (out-of-file L1 pointer + dirty bit) so
// the rebuild's entry-clearing and refcount-lowering paths actually run —
// natural crash states never corrupt (the barriers see to that), so a
// sweep over them alone cannot reach those paths. After each nested cut
// the half-repaired image must reopen, repair again, and check clean.
TEST_F(RepairTest, RepairIsRestartableFromEveryInternalCrashPoint) {
  make_image("rr.qcow2");
  const std::uint64_t l1_off = header_u64("rr.qcow2", 40);
  poke_u64("rr.qcow2", l1_off + 8, (1ull << 40) | qcow2::kFlagCopied);
  poke_u64("rr.qcow2", 72,
           header_u64("rr.qcow2", 72) | qcow2::kIncompatDirty);
  const SparseBuffer& corrupted = raw("rr.qcow2");

  std::uint64_t nested = 0;
  for (std::uint64_t j = 0; j < 10000; ++j) {
    SparseBuffer disk = corrupted.clone();
    bool cut_fired = false;
    {
      io::MemBackend inner(&disk);
      auto cb = std::make_unique<CrashBackend>(
          inner, CrashPlan{.cut_after_events = j, .seed = 13});
      CrashBackend* cbp = cb.get();
      block::OpenOptions opt;
      opt.writable = true;
      auto dev = sync_wait(qcow2::open_any(io::BackendPtr{std::move(cb)},
                                           opt));
      if (dev.ok()) {
        cut_fired = !cbp->alive();
      } else {
        ASSERT_EQ(dev.error(), Errc::io_error);
        cut_fired = true;
      }
    }
    if (!cut_fired) break;
    ++nested;
    block::OpenOptions opt;
    opt.writable = true;
    auto dev = sync_wait(qcow2::open_any(
        io::BackendPtr{std::make_unique<io::MemBackend>(&disk)}, opt));
    ASSERT_TRUE(dev.ok()) << "nested crash point " << j;
    auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
    ASSERT_NE(q, nullptr);
    auto chk = sync_wait(q->check());
    ASSERT_TRUE(chk.ok());
    EXPECT_TRUE(chk->clean())
        << "nested crash point " << j << ": leaked=" << chk->leaked_clusters
        << " corrupt=" << chk->corruptions;
    // The surviving data cluster is untouched by any repair prefix.
    std::vector<std::uint8_t> out(64_KiB);
    ASSERT_TRUE(sync_wait((*dev)->read(0, out)).ok());
    EXPECT_EQ(out, filled(64_KiB, 0x5A));
    ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  }
  EXPECT_GT(nested, 0u);  // the sweep must have covered real cut points
}

// --- qcow2 refcount journal --------------------------------------------

class JournalRepairTest : public RepairTest {
 protected:
  // Like make_image, but with a refcount journal.
  void make_journal_image(const std::string& name,
                          std::uint32_t sectors = 64) {
    auto be = store_.create_file(name);
    ASSERT_TRUE(be.ok());
    qcow2::Qcow2Device::CreateOptions opt;
    opt.virtual_size = 8_MiB;
    opt.cluster_bits = 16;
    opt.journal_sectors = sectors;
    ASSERT_TRUE(sync_wait(qcow2::Qcow2Device::create(**be, opt)).ok());
    auto dev = sync_wait(qcow2::open_image(store_, name));
    ASSERT_TRUE(dev.ok());
    ASSERT_TRUE(sync_wait((*dev)->write(0, filled(64_KiB, 0x5A))).ok());
    ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  }

  std::uint64_t journal_offset(const std::string& name) {
    std::vector<std::uint8_t> hdr(4096);
    raw(name).read(0, hdr);
    auto parsed = qcow2::parse_header_area(hdr);
    EXPECT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed->journal.has_value());
    return parsed->journal->offset;
  }

  qcow2::Qcow2Device* as_q(const Result<block::DevicePtr>& dev) {
    return dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  }
};

TEST_F(JournalRepairTest, DirtyJournaledImageRepairsByReplay) {
  make_journal_image("j.qcow2");
  poke_u64("j.qcow2", 72,
           header_u64("j.qcow2", 72) | qcow2::kIncompatDirty);

  auto be = store_.open_file("j.qcow2", /*writable=*/true);
  ASSERT_TRUE(be.ok());
  block::OpenOptions opt;
  opt.auto_repair_dirty = false;
  auto dev = sync_wait(qcow2::open_any(std::move(*be), opt));
  ASSERT_TRUE(dev.ok());
  auto* q = as_q(dev);
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->has_journal());

  auto rep = sync_wait(q->repair());
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->journal_replayed);
  EXPECT_FALSE(rep->journal_fallback);
  // The clean close checkpointed: every surviving record is stale.
  EXPECT_EQ(rep->journal_entries, 0u);

  auto post = sync_wait(q->check());
  ASSERT_TRUE(post.ok());
  EXPECT_TRUE(post->clean());
  ASSERT_TRUE(sync_wait((*dev)->close()).ok());
}

TEST_F(JournalRepairTest, TornRecordSectorsAreDiscarded) {
  make_journal_image("t.qcow2");
  // Garbage in two record sectors (checksum cannot match) plus the dirty
  // bit: replay must discard them and still prove consistency.
  const std::uint64_t joff = journal_offset("t.qcow2");
  std::vector<std::uint8_t> garbage(512);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  raw("t.qcow2").write(joff + 512, garbage);
  raw("t.qcow2").write(joff + 3 * 512, garbage);
  poke_u64("t.qcow2", 72,
           header_u64("t.qcow2", 72) | qcow2::kIncompatDirty);

  auto be = store_.open_file("t.qcow2", /*writable=*/true);
  ASSERT_TRUE(be.ok());
  block::OpenOptions opt;
  opt.auto_repair_dirty = false;
  auto dev = sync_wait(qcow2::open_any(std::move(*be), opt));
  ASSERT_TRUE(dev.ok());
  auto* q = as_q(dev);
  ASSERT_NE(q, nullptr);

  auto rep = sync_wait(q->repair());
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->journal_replayed);
  EXPECT_EQ(rep->journal_entries, 0u);  // garbage never counts as a record

  auto post = sync_wait(q->check());
  ASSERT_TRUE(post.ok());
  EXPECT_TRUE(post->clean());
  ASSERT_TRUE(sync_wait((*dev)->close()).ok());
}

TEST_F(JournalRepairTest, CorruptJournalHeaderFallsBackToRebuild) {
  make_journal_image("f.qcow2");
  const std::uint64_t joff = journal_offset("f.qcow2");
  std::vector<std::uint8_t> garbage(512, 0xEE);
  raw("f.qcow2").write(joff, garbage);
  poke_u64("f.qcow2", 72,
           header_u64("f.qcow2", 72) | qcow2::kIncompatDirty);

  auto be = store_.open_file("f.qcow2", /*writable=*/true);
  ASSERT_TRUE(be.ok());
  block::OpenOptions opt;
  opt.auto_repair_dirty = false;
  auto dev = sync_wait(qcow2::open_any(std::move(*be), opt));
  ASSERT_TRUE(dev.ok());
  auto* q = as_q(dev);
  ASSERT_NE(q, nullptr);

  auto rep = sync_wait(q->repair());
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep->journal_replayed);
  EXPECT_TRUE(rep->journal_fallback);

  auto post = sync_wait(q->check());
  ASSERT_TRUE(post.ok());
  EXPECT_TRUE(post->clean());

  // The rebuild rewrote a valid journal header; data survived.
  std::vector<std::uint8_t> out(64_KiB);
  ASSERT_TRUE(sync_wait((*dev)->read(0, out)).ok());
  EXPECT_EQ(out, filled(64_KiB, 0x5A));
  ASSERT_TRUE(sync_wait((*dev)->close()).ok());

  // And the next dirty open replays instead of falling back again.
  poke_u64("f.qcow2", 72,
           header_u64("f.qcow2", 72) | qcow2::kIncompatDirty);
  auto again = sync_wait(qcow2::open_image(store_, "f.qcow2"));
  ASSERT_TRUE(again.ok());
  auto chk = sync_wait(as_q(again)->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean());
  ASSERT_TRUE(sync_wait((*again)->close()).ok());
}

// The fallback rebuild on a journaled image must also be restartable from
// every internal crash point. The sharp edge is the journal generation
// bump at the rebuild's end: if it became durable while part of the
// rebuild did not, the next open's O(journal) fast path would see an
// empty (retired) journal and bless a half-rebuilt image — prevented by
// the flush barrier ahead of the bump.
TEST_F(JournalRepairTest, FallbackRebuildIsRestartableFromEveryCrashPoint) {
  make_journal_image("rr2.qcow2");
  const std::uint64_t joff = journal_offset("rr2.qcow2");
  std::vector<std::uint8_t> garbage(512, 0xEE);
  raw("rr2.qcow2").write(joff, garbage);  // header bad -> fallback path
  // Point the first refcount-table entry into nowhere, so the rebuild has
  // a real table change to persist (it must clear the bogus pointer and
  // publish a replacement block) — a content-no-op rebuild cannot expose
  // ordering bugs between the rebuild writes and the journal retirement.
  const std::uint64_t rt_off = header_u64("rr2.qcow2", 48);
  poke_u64("rr2.qcow2", rt_off, 1ull << 40);
  poke_u64("rr2.qcow2", 72,
           header_u64("rr2.qcow2", 72) | qcow2::kIncompatDirty);
  const SparseBuffer& corrupted = raw("rr2.qcow2");

  // The dangerous window holds exactly two unflushed writes (the rebuilt
  // refcount table and the journal generation bump), adjudicated by one
  // RNG draw per cut point — so sweep many seeds to hit every keep/drop
  // combination, in particular "keep the bump, drop the table".
  std::uint64_t nested = 0;
  for (std::uint64_t seed = 17; seed < 17 + 32; ++seed) {
  for (std::uint64_t j = 0; j < 10000; ++j) {
    SparseBuffer disk = corrupted.clone();
    bool cut_fired = false;
    {
      io::MemBackend inner(&disk);
      auto cb = std::make_unique<CrashBackend>(
          inner, CrashPlan{.cut_after_events = j, .seed = seed});
      CrashBackend* cbp = cb.get();
      block::OpenOptions opt;
      opt.writable = true;
      auto dev = sync_wait(qcow2::open_any(io::BackendPtr{std::move(cb)},
                                           opt));
      if (dev.ok()) {
        cut_fired = !cbp->alive();
      } else {
        ASSERT_EQ(dev.error(), Errc::io_error);
        cut_fired = true;
      }
    }
    if (!cut_fired) break;
    ++nested;
    block::OpenOptions opt;
    opt.writable = true;
    auto dev = sync_wait(qcow2::open_any(
        io::BackendPtr{std::make_unique<io::MemBackend>(&disk)}, opt));
    ASSERT_TRUE(dev.ok()) << "nested crash point " << j;
    auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
    ASSERT_NE(q, nullptr);
    auto chk = sync_wait(q->check());
    ASSERT_TRUE(chk.ok());
    EXPECT_TRUE(chk->clean())
        << "nested crash point " << j << ": leaked=" << chk->leaked_clusters
        << " corrupt=" << chk->corruptions;
    std::vector<std::uint8_t> out(64_KiB);
    ASSERT_TRUE(sync_wait((*dev)->read(0, out)).ok());
    EXPECT_EQ(out, filled(64_KiB, 0x5A));
    ASSERT_TRUE(sync_wait((*dev)->close()).ok());
    if (HasFailure()) return;
  }
  }
  EXPECT_GT(nested, 0u);
}

// --- crash::explore sweeps ---------------------------------------------

TEST(Explore, EagerSweepPasses) {
  ExploreConfig cfg;
  cfg.seed = 2;
  cfg.guest_ops = 24;
  cfg.max_crash_points = 16;
  const ExploreReport r = explore(cfg);
  EXPECT_TRUE(r.pass()) << to_json(r, cfg);
  EXPECT_GT(r.crash_points, 0u);
  EXPECT_EQ(r.power_cuts, r.crash_points);
  EXPECT_GT(r.dirty_images, 0u);  // mid-run cuts leave the dirty bit set
  EXPECT_EQ(r.pre_repair_corruptions, 0u);  // the barrier induction claim
  EXPECT_EQ(r.lost_flushed_bytes, 0u);
}

TEST(Explore, LazySweepLeaksButNeverCorrupts) {
  ExploreConfig cfg;
  cfg.seed = 2;
  cfg.guest_ops = 24;
  cfg.lazy_refcounts = true;
  cfg.max_crash_points = 16;
  const ExploreReport r = explore(cfg);
  EXPECT_TRUE(r.pass()) << to_json(r, cfg);
  // Lazy mode defers refcount decrements: crashes may strand stale-high
  // refcounts (leaks, dropped by repair) but must never corrupt.
  EXPECT_EQ(r.pre_repair_corruptions, 0u);
}

TEST(Explore, CorChainSweepPasses) {
  ExploreConfig cfg;
  cfg.seed = 3;
  cfg.guest_ops = 24;
  cfg.cor_chain = true;
  cfg.max_crash_points = 16;
  const ExploreReport r = explore(cfg);
  EXPECT_TRUE(r.pass()) << to_json(r, cfg);
  EXPECT_GT(r.crash_points, 0u);
}

TEST(Explore, JournalSweepPasses) {
  ExploreConfig cfg;
  cfg.seed = 2;
  cfg.guest_ops = 24;
  cfg.journal_sectors = 64;
  cfg.max_crash_points = 16;
  const ExploreReport r = explore(cfg);
  EXPECT_TRUE(r.pass()) << to_json(r, cfg);
  // The whole point: dirty opens repair via O(journal) replay, and the
  // barrier discipline holds under the journal exactly as without it.
  EXPECT_GT(r.journal_replays, 0u);
  EXPECT_EQ(r.journal_fallbacks, 0u);
  EXPECT_EQ(r.pre_repair_corruptions, 0u);
  EXPECT_EQ(r.lost_flushed_bytes, 0u);
}

TEST(Explore, JournalCheckpointUnderCrashPasses) {
  // A 2-sector journal (header + one record) checkpoints on every second
  // append, so cuts land inside checkpoint windows all the time.
  ExploreConfig cfg;
  cfg.seed = 5;
  cfg.guest_ops = 24;
  cfg.journal_sectors = 2;
  cfg.max_crash_points = 16;
  const ExploreReport r = explore(cfg);
  EXPECT_TRUE(r.pass()) << to_json(r, cfg);
  EXPECT_GT(r.journal_replays, 0u);
  EXPECT_EQ(r.journal_fallbacks, 0u);
}

TEST(Explore, JournalLazySweepPasses) {
  // Lazy + journal: frees stay mirror-only, allocations are journaled.
  ExploreConfig cfg;
  cfg.seed = 2;
  cfg.guest_ops = 24;
  cfg.lazy_refcounts = true;
  cfg.journal_sectors = 16;
  cfg.max_crash_points = 16;
  const ExploreReport r = explore(cfg);
  EXPECT_TRUE(r.pass()) << to_json(r, cfg);
  EXPECT_EQ(r.pre_repair_corruptions, 0u);
}

TEST(Explore, RepairOfRepairSweepPasses) {
  // Cut the power again at every instant of every repair: repair must be
  // restartable from any of its own crash states.
  ExploreConfig cfg;
  cfg.seed = 3;
  cfg.guest_ops = 12;
  cfg.crash_during_repair = true;
  cfg.max_crash_points = 8;
  const ExploreReport r = explore(cfg);
  EXPECT_TRUE(r.pass()) << to_json(r, cfg);
  EXPECT_GT(r.repair_crash_points, 0u);
}

TEST(Explore, JournalRepairOfRepairSweepPasses) {
  ExploreConfig cfg;
  cfg.seed = 3;
  cfg.guest_ops = 12;
  cfg.journal_sectors = 8;
  cfg.crash_during_repair = true;
  cfg.max_crash_points = 8;
  const ExploreReport r = explore(cfg);
  EXPECT_TRUE(r.pass()) << to_json(r, cfg);
}

TEST(Explore, TwoFileSweepPasses) {
  // Cache + CoW overlay felled by one shared cut: no cross-file ordering
  // window may corrupt either image or lose flushed overlay writes.
  ExploreConfig cfg;
  cfg.seed = 9;
  cfg.guest_ops = 20;
  cfg.two_file = true;
  cfg.max_crash_points = 12;
  const ExploreReport r = explore(cfg);
  EXPECT_TRUE(r.pass()) << to_json(r, cfg);
  EXPECT_GT(r.crash_points, 0u);
  EXPECT_EQ(r.pre_repair_corruptions, 0u);
  EXPECT_EQ(r.lost_flushed_bytes, 0u);
}

TEST(Explore, DigestIsDeterministic) {
  ExploreConfig cfg;
  cfg.seed = 11;
  cfg.guest_ops = 16;
  cfg.max_crash_points = 8;
  const ExploreReport a = explore(cfg);
  const ExploreReport b = explore(cfg);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.pre_repair_leaks, b.pre_repair_leaks);
  EXPECT_EQ(a.leaks_dropped, b.leaks_dropped);

  cfg.seed = 12;
  const ExploreReport c = explore(cfg);
  EXPECT_NE(a.digest, c.digest);
}

TEST(Explore, CountersFlowIntoHub) {
  obs::Hub hub;
  ExploreConfig cfg;
  cfg.seed = 4;
  cfg.guest_ops = 12;
  cfg.max_crash_points = 6;
  cfg.hub = &hub;
  const ExploreReport r = explore(cfg);
  EXPECT_TRUE(r.pass()) << to_json(r, cfg);
  EXPECT_EQ(hub.registry.counter("crash.power_cuts", {}).value(),
            r.power_cuts);
}

}  // namespace
}  // namespace vmic::crash
