// Tests for vmic::manifest — the durable control plane's per-node cache
// manifest: record format round-trip, corruption rejection, A/B slot
// discipline, and a CrashBackend power-cut sweep over every publish
// mutation point proving load() never returns a manifest that was not
// published (torn slots fall back, garbage never decodes).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crash/crash_backend.hpp"
#include "io/mem_backend.hpp"
#include "io/mem_store.hpp"
#include "manifest/manifest.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "qcow2/format.hpp"
#include "sim/task.hpp"
#include "util/bytes.hpp"
#include "util/units.hpp"

namespace vmic::manifest {
namespace {

using io::MemImageStore;
using sim::sync_wait;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

/// Deterministic non-trivial manifest, parameterised so different
/// generations carry different content (a sweep can then verify that a
/// loaded generation matches exactly what that publish wrote). Coverage
/// lists are sized so the encoded record spans several 512-byte sectors —
/// otherwise the tear path of a power cut has nothing to tear.
NodeManifest sample(std::uint64_t k) {
  NodeManifest m;
  for (int i = 0; i < 3; ++i) {
    CacheEntry e;
    e.image = "img-" + std::to_string(i);
    e.cache_file = "cache-img-" + std::to_string(i) + ".qcow2";
    e.bytes = (i + 1) * 1_MiB + k;
    e.fill_generation = k * 10 + i;
    e.check_generation = k;
    e.dedup_indexed = (static_cast<std::uint64_t>(i) + k) % 2 == 0;
    for (std::uint64_t c = 0; c < 40; ++c) {
      e.coverage.emplace_back(c * 131072, c * 131072 + 65536);
    }
    m.entries.push_back(std::move(e));
  }
  return m;
}

// --- record format -----------------------------------------------------

TEST(ManifestFormat, EncodeDecodeRoundTrip) {
  NodeManifest m = sample(7);
  m.generation = 42;
  const auto bytes = encode(m);
  auto back = decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);

  // The empty manifest (a node with no caches) is a valid record too.
  NodeManifest empty;
  empty.generation = 1;
  auto eb = decode(encode(empty));
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(*eb, empty);
}

TEST(ManifestFormat, EverySingleByteFlipIsRejected) {
  NodeManifest m = sample(3);
  m.generation = 5;
  const auto bytes = encode(m);
  // Three checksum scopes (header, body, per-entry) mean no one-byte
  // corruption anywhere in the record can decode.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto mut = bytes;
    mut[i] ^= 0x40;
    EXPECT_FALSE(decode(mut).ok()) << "flipped byte " << i;
  }
}

TEST(ManifestFormat, EveryTruncationIsRejected) {
  NodeManifest m = sample(2);
  m.generation = 9;
  const auto bytes = encode(m);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode({bytes.data(), len}).ok()) << "prefix " << len;
  }
}

TEST(ManifestFormat, StaleTailBeyondBodyLengthIsIgnored) {
  // A cut that keeps the payload write but drops the truncate leaves the
  // old slot's tail behind the new record; decode must not care.
  NodeManifest m = sample(4);
  m.generation = 2;
  auto bytes = encode(m);
  bytes.insert(bytes.end(), 3000, 0xEE);
  auto back = decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

// --- A/B slot store ----------------------------------------------------

TEST(ManifestStore, PublishAlternatesSlotsAndLoadContinuesSequence) {
  MemImageStore dir;
  Store st(&dir);
  ASSERT_TRUE(sync_wait(st.publish(sample(1))).ok());
  EXPECT_TRUE(dir.exists(st.slot_a()));
  EXPECT_FALSE(dir.exists(st.slot_b()));
  ASSERT_TRUE(sync_wait(st.publish(sample(2))).ok());
  EXPECT_TRUE(dir.exists(st.slot_b()));
  EXPECT_EQ(st.generation(), 2u);

  // A fresh store (a restarted node) resynchronises from disk...
  Store re(&dir);
  auto loaded = sync_wait(re.load());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->has_value());
  EXPECT_EQ((*loaded)->generation, 2u);
  NodeManifest want = sample(2);
  want.generation = 2;
  EXPECT_EQ(**loaded, want);

  // ...and continues the generation sequence without reusing a number.
  ASSERT_TRUE(sync_wait(re.publish(sample(3))).ok());
  EXPECT_EQ(re.generation(), 3u);
  Store third(&dir);
  auto final_m = sync_wait(third.load());
  ASSERT_TRUE(final_m.ok() && final_m->has_value());
  EXPECT_EQ((*final_m)->generation, 3u);
}

TEST(ManifestStore, CorruptNewestSlotFallsBackToOlderGeneration) {
  MemImageStore dir;
  Store st(&dir);
  ASSERT_TRUE(sync_wait(st.publish(sample(1))).ok());
  ASSERT_TRUE(sync_wait(st.publish(sample(2))).ok());  // gen 2 in slot b

  auto buf = dir.buffer(st.slot_b());
  ASSERT_TRUE(buf.ok());
  std::vector<std::uint8_t> junk(64, 0xBD);
  (*buf)->write(20, junk);

  Store re(&dir);
  auto loaded = sync_wait(re.load());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->has_value());
  EXPECT_EQ((*loaded)->generation, 1u);
  NodeManifest want = sample(1);
  want.generation = 1;
  EXPECT_EQ(**loaded, want);
}

TEST(ManifestStore, BothSlotsGoneMeansStartCold) {
  MemImageStore dir;
  Store st(&dir);
  auto loaded = sync_wait(st.load());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->has_value());
  EXPECT_EQ(st.generation(), 0u);

  // Unreadable garbage in both slots is the same as no manifest.
  for (const auto& name : {st.slot_a(), st.slot_b()}) {
    auto be = dir.create_file(name);
    ASSERT_TRUE(be.ok());
    std::vector<std::uint8_t> junk(4_KiB, 0x5C);
    ASSERT_TRUE(sync_wait((*be)->pwrite(0, junk)).ok());
  }
  auto again = sync_wait(st.load());
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->has_value());
}

// --- power-cut sweep ---------------------------------------------------

/// ImageDirectory that wraps every opened backend in a CrashBackend on a
/// shared CrashDomain — one power rail for the whole slot pair, exactly
/// how the engine's node disk fails. The inner backends and their crash
/// wrappers are owned here and outlive the domain's cut (the domain keeps
/// raw member pointers), so callers get thin forwarding handles.
class CrashDirectory final : public io::ImageDirectory {
 public:
  CrashDirectory(MemImageStore& inner, crash::CrashDomain& dom)
      : inner_(inner), dom_(dom) {}

  Result<io::BackendPtr> open_file(const std::string& name,
                                   bool writable) override {
    auto be = inner_.open_file(name, writable);
    if (!be.ok()) return be.error();
    return wrap(std::move(*be));
  }

  Result<io::BackendPtr> create_file(const std::string& name) override {
    auto be = inner_.create_file(name);
    if (!be.ok()) return be.error();
    return wrap(std::move(*be));
  }

  [[nodiscard]] bool exists(const std::string& name) const override {
    return inner_.exists(name);
  }

 private:
  class Borrow final : public io::BlockBackend {
   public:
    explicit Borrow(io::BlockBackend& t) : t_(t) { ro_ = t.read_only(); }
    sim::Task<Result<void>> pread(std::uint64_t off,
                                  std::span<std::uint8_t> dst) override {
      co_return co_await t_.pread(off, dst);
    }
    sim::Task<Result<void>> pwrite(
        std::uint64_t off, std::span<const std::uint8_t> src) override {
      co_return co_await t_.pwrite(off, src);
    }
    sim::Task<Result<void>> flush() override { co_return co_await t_.flush(); }
    sim::Task<Result<void>> truncate(std::uint64_t n) override {
      co_return co_await t_.truncate(n);
    }
    [[nodiscard]] std::uint64_t size() const override { return t_.size(); }
    [[nodiscard]] std::string describe() const override {
      return t_.describe();
    }

   private:
    io::BlockBackend& t_;
  };

  Result<io::BackendPtr> wrap(io::BackendPtr inner) {
    held_.push_back(std::move(inner));
    wrapped_.push_back(
        std::make_unique<crash::CrashBackend>(*held_.back(), dom_));
    return io::BackendPtr{std::make_unique<Borrow>(*wrapped_.back())};
  }

  MemImageStore& inner_;
  crash::CrashDomain& dom_;
  std::vector<io::BackendPtr> held_;
  std::vector<std::unique_ptr<crash::CrashBackend>> wrapped_;
};

// Cut the power at every mutation point of a 4-publish script, across
// several tear seeds, and demand that the post-crash disk loads either
// the last acknowledged generation or the in-flight one persisted whole —
// never an older one, never a blend, never garbage — and that publishing
// resumes durably from whatever was loaded. This is satellite coverage
// for "reopen never adopts state the manifest can't verify": the engine
// only trusts entries load() hands it.
TEST(ManifestCrashSweep, LoadAfterAnyCutReturnsAPublishedGeneration) {
  constexpr int kPublishes = 4;
  std::uint64_t cuts = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (std::uint64_t j = 0;; ++j) {
      MemImageStore raw;
      crash::CrashDomain dom;
      dom.cut_after_events = j;
      dom.seed = seed;
      CrashDirectory cdir(raw, dom);
      Store st(&cdir);

      int published = 0;
      int attempted = 0;
      for (int k = 1; k <= kPublishes; ++k) {
        attempted = k;
        if (!sync_wait(st.publish(sample(k))).ok()) break;
        published = k;
      }
      if (!dom.dead) {
        // The cut point lies beyond the script: the sweep is exhaustive.
        ASSERT_EQ(published, kPublishes);
        break;
      }
      ++cuts;

      // Reopen the raw (post-crash) disk, as a restarted node would.
      Store re(&raw);
      auto loaded = sync_wait(re.load());
      ASSERT_TRUE(loaded.ok());
      std::uint64_t got_gen = 0;
      if (loaded->has_value()) {
        const NodeManifest& got = **loaded;
        got_gen = got.generation;
        // Only a generation someone actually wrote may surface: the last
        // acknowledged publish, or the unacknowledged in-flight one if
        // the cut happened to persist its whole window.
        ASSERT_GE(got_gen, static_cast<std::uint64_t>(published))
            << "seed " << seed << " cut " << j;
        ASSERT_LE(got_gen, static_cast<std::uint64_t>(attempted))
            << "seed " << seed << " cut " << j;
        NodeManifest want = sample(got_gen);
        want.generation = got_gen;
        EXPECT_EQ(got, want) << "seed " << seed << " cut " << j
                             << ": loaded generation does not match what "
                                "that publish wrote";
      } else {
        // Empty is only legal before the first publish was acknowledged.
        EXPECT_EQ(published, 0) << "seed " << seed << " cut " << j
                                << ": acknowledged generation vanished";
      }

      // Recovery must continue the sequence durably: the next publish
      // lands a strictly higher generation that a further reload sees.
      ASSERT_TRUE(sync_wait(re.publish(sample(99))).ok());
      Store verify(&raw);
      auto after = sync_wait(verify.load());
      ASSERT_TRUE(after.ok());
      ASSERT_TRUE(after->has_value());
      EXPECT_EQ((*after)->generation, got_gen + 1);
      NodeManifest want = sample(99);
      want.generation = got_gen + 1;
      EXPECT_EQ(**after, want);
      if (HasFailure()) return;
    }
  }
  // 4 publishes x 3 mutating ops each -> 12 real cut points per seed.
  EXPECT_EQ(cuts, 8u * 12u);
}

// --- adoption verification ---------------------------------------------

// The manifest is advisory: an entry's cache file must still prove itself
// through the qcow2 open/check path before the engine re-adopts it. This
// mirrors the engine's adoption predicate — open, require a qcow2 device
// (raw fallback is not a cache), require check() clean.
bool adoptable(MemImageStore& store, const std::string& name) {
  auto dev = sync_wait(qcow2::open_image(store, name));
  if (!dev.ok()) return false;
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  bool good = false;
  if (q != nullptr) {
    auto chk = sync_wait(q->check());
    good = chk.ok() && chk->clean();
  }
  (void)sync_wait((*dev)->close());
  return good;
}

// A file full of garbage — say, a cache whose payload writes were torn by
// the same power cut that tore nothing in the manifest — must degrade to
// a cold cache, never be adopted.
TEST(ManifestAdoption, UnverifiableCacheFileIsRejected) {
  MemImageStore store;
  auto be = store.create_file("cache-img-0.qcow2");
  ASSERT_TRUE(be.ok());
  std::vector<std::uint8_t> junk(64_KiB);
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<std::uint8_t>(i * 41 + 7);
  }
  ASSERT_TRUE(sync_wait((*be)->pwrite(0, junk)).ok());

  EXPECT_FALSE(adoptable(store, "cache-img-0.qcow2"));
}

// A crash-dirty but repairable cache IS adoptable: the writable open
// auto-repairs (exactly the salvage path) and the post-repair check is
// clean. Adoption preserves warm caches, it does not just discard on any
// blemish.
TEST(ManifestAdoption, DirtyButRepairableCacheIsAdopted) {
  MemImageStore store;
  {
    auto be = store.create_file("cache-img-1.qcow2");
    ASSERT_TRUE(be.ok());
    qcow2::Qcow2Device::CreateOptions opt;
    opt.virtual_size = 8_MiB;
    opt.cluster_bits = 16;
    ASSERT_TRUE(sync_wait(qcow2::Qcow2Device::create(**be, opt)).ok());
  }
  {
    auto dev = sync_wait(qcow2::open_image(store, "cache-img-1.qcow2"));
    ASSERT_TRUE(dev.ok());
    std::vector<std::uint8_t> data(64_KiB, 0x5A);
    ASSERT_TRUE(sync_wait((*dev)->write(0, data)).ok());
    ASSERT_TRUE(sync_wait((*dev)->close()).ok());
  }
  // Simulate the crash: set the incompatible dirty bit by hand.
  auto buf = store.buffer("cache-img-1.qcow2");
  ASSERT_TRUE(buf.ok());
  std::uint8_t b[8];
  (*buf)->read(72, b);
  std::uint64_t feats = load_be64(b);
  store_be64(b, feats | qcow2::kIncompatDirty);
  (*buf)->write(72, b);

  EXPECT_TRUE(adoptable(store, "cache-img-1.qcow2"));
}

}  // namespace
}  // namespace vmic::manifest
