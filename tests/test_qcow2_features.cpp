// Tests for the extended QCOW2 driver features: v3 zero clusters
// (write_zeroes), discard, resize, map_status, and commit.
#include <gtest/gtest.h>

#include <vector>

#include "io/mem_store.hpp"
#include "qcow2/chain.hpp"
#include "qcow2/device.hpp"
#include "sim/task.hpp"
#include "util/align.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace vmic::qcow2 {
namespace {

using io::MemImageStore;
using sim::sync_wait;
using vmic::literals::operator""_KiB;
using vmic::literals::operator""_MiB;

std::vector<std::uint8_t> pattern_bytes(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  Rng rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

class FeatureTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  std::uint32_t bits() const { return GetParam(); }
  std::uint64_t cs() const { return 1ull << bits(); }

  MemImageStore store_;

  Qcow2Device* make(const std::string& name, std::uint64_t size,
                    const std::string& backing = "") {
    auto be = store_.create_file(name);
    EXPECT_TRUE(be.ok());
    Qcow2Device::CreateOptions opt;
    opt.virtual_size = size;
    opt.cluster_bits = bits();
    opt.backing_file = backing;
    EXPECT_TRUE(sync_wait(Qcow2Device::create(**be, opt)).ok());
    auto dev = sync_wait(open_image(store_, name));
    EXPECT_TRUE(dev.ok());
    devs_.push_back(std::move(*dev));
    return dynamic_cast<Qcow2Device*>(devs_.back().get());
  }

  std::vector<block::DevicePtr> devs_;
};

TEST_P(FeatureTest, WriteZeroesReadsBackZero) {
  auto* dev = make("a.qcow2", 8_MiB);
  const auto data = pattern_bytes(1, 1_MiB);
  ASSERT_TRUE(sync_wait(dev->write(0, data)).ok());
  ASSERT_TRUE(sync_wait(dev->write_zeroes(100_KiB, 500_KiB)).ok());
  std::vector<std::uint8_t> out(1_MiB);
  ASSERT_TRUE(sync_wait(dev->read(0, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), data.data(), 100_KiB));
  EXPECT_TRUE(is_all_zero({out.data() + 100_KiB, 500_KiB}));
  EXPECT_EQ(0, std::memcmp(out.data() + 600_KiB, data.data() + 600_KiB,
                           out.size() - 600_KiB));
  auto chk = sync_wait(dev->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean()) << "leaked=" << chk->leaked_clusters
                            << " corrupt=" << chk->corruptions;
}

TEST_P(FeatureTest, WriteZeroesMasksBacking) {
  // Zero clusters must hide the backing image's content — the key
  // difference from plain deallocation.
  {
    auto be = store_.create_file("base.img");
    auto data = pattern_bytes(9, 4_MiB);
    ASSERT_TRUE(sync_wait((*be)->pwrite(0, data)).ok());
  }
  auto* dev = make("cow.qcow2", 4_MiB, "base.img");
  ASSERT_TRUE(sync_wait(dev->write_zeroes(0, 4_MiB)).ok());
  std::vector<std::uint8_t> out(1_MiB);
  ASSERT_TRUE(sync_wait(dev->read(1_MiB, out)).ok());
  EXPECT_TRUE(is_all_zero(out));
}

TEST_P(FeatureTest, WriteZeroesFreesDataClusters) {
  auto* dev = make("a.qcow2", 8_MiB);
  const auto data = pattern_bytes(1, 4_MiB);
  ASSERT_TRUE(sync_wait(dev->write(0, data)).ok());
  const auto before = dev->allocated_data_bytes();
  ASSERT_TRUE(sync_wait(dev->write_zeroes(0, 4_MiB)).ok());
  EXPECT_LT(dev->allocated_data_bytes(), before);
  // Freed clusters are substantially reused: rewriting 4 MiB elsewhere
  // grows the file far less than 4 MiB (some fragmentation from new L2
  // tables splitting freed runs is expected).
  const auto file_before = dev->file_bytes();
  ASSERT_TRUE(sync_wait(dev->write(4_MiB, data)).ok());
  EXPECT_LT(dev->file_bytes(), file_before + 3_MiB);
}

TEST_P(FeatureTest, OverwriteZeroCluster) {
  auto* dev = make("a.qcow2", 8_MiB);
  ASSERT_TRUE(sync_wait(dev->write_zeroes(0, 2 * cs())).ok());
  // Sub-cluster write into a zero cluster: the rest must stay zero, not
  // pick up stale/backing bytes.
  const auto data = pattern_bytes(2, 600);
  ASSERT_TRUE(sync_wait(dev->write(100, data)).ok());
  std::vector<std::uint8_t> out(2 * cs());
  ASSERT_TRUE(sync_wait(dev->read(0, out)).ok());
  EXPECT_TRUE(is_all_zero({out.data(), 100}));
  EXPECT_EQ(0, std::memcmp(out.data() + 100, data.data(), data.size()));
  EXPECT_TRUE(
      is_all_zero({out.data() + 100 + data.size(),
                   out.size() - 100 - data.size()}));
}

TEST_P(FeatureTest, DiscardWithoutBackingDeallocates) {
  auto* dev = make("a.qcow2", 8_MiB);
  const auto data = pattern_bytes(1, 2_MiB);
  ASSERT_TRUE(sync_wait(dev->write(0, data)).ok());
  ASSERT_TRUE(sync_wait(dev->discard(0, 2_MiB)).ok());
  auto st = sync_wait(dev->map_status(0, 2_MiB));
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->kind, Qcow2Device::MapKind::unallocated);
  std::vector<std::uint8_t> out(2_MiB);
  ASSERT_TRUE(sync_wait(dev->read(0, out)).ok());
  EXPECT_TRUE(is_all_zero(out));
}

TEST_P(FeatureTest, DiscardWithBackingLeavesZeroClusters) {
  {
    auto be = store_.create_file("base.img");
    auto data = pattern_bytes(9, 4_MiB);
    ASSERT_TRUE(sync_wait((*be)->pwrite(0, data)).ok());
  }
  auto* dev = make("cow.qcow2", 4_MiB, "base.img");
  const auto data = pattern_bytes(1, 1_MiB);
  ASSERT_TRUE(sync_wait(dev->write(0, data)).ok());
  ASSERT_TRUE(sync_wait(dev->discard(0, 1_MiB)).ok());
  auto st = sync_wait(dev->map_status(0, 1_MiB));
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->kind, Qcow2Device::MapKind::zero);  // not resurfacing base
  std::vector<std::uint8_t> out(1_MiB);
  ASSERT_TRUE(sync_wait(dev->read(0, out)).ok());
  EXPECT_TRUE(is_all_zero(out));
}

TEST_P(FeatureTest, MapStatusWalksExtents) {
  auto* dev = make("a.qcow2", 8_MiB);
  const auto data = pattern_bytes(1, cs());
  ASSERT_TRUE(sync_wait(dev->write(2 * cs(), data)).ok());
  ASSERT_TRUE(sync_wait(dev->write_zeroes(4 * cs(), cs())).ok());

  auto st0 = sync_wait(dev->map_status(0, 8_MiB));
  ASSERT_TRUE(st0.ok());
  EXPECT_EQ(st0->kind, Qcow2Device::MapKind::unallocated);
  EXPECT_EQ(st0->len, 2 * cs());

  auto st1 = sync_wait(dev->map_status(2 * cs(), 8_MiB));
  EXPECT_EQ(st1->kind, Qcow2Device::MapKind::data);
  EXPECT_EQ(st1->len, cs());

  auto st2 = sync_wait(dev->map_status(4 * cs(), 8_MiB));
  EXPECT_EQ(st2->kind, Qcow2Device::MapKind::zero);
  EXPECT_EQ(st2->len, cs());
}

TEST_P(FeatureTest, ResizeGrowsAndPersists) {
  auto* dev = make("a.qcow2", 2_MiB);
  const auto data = pattern_bytes(1, 1_MiB);
  ASSERT_TRUE(sync_wait(dev->write(0, data)).ok());
  ASSERT_TRUE(sync_wait(dev->resize(64_MiB)).ok());
  EXPECT_EQ(dev->size(), 64_MiB);
  // New space is readable (zeros) and writable.
  std::vector<std::uint8_t> out(1_MiB);
  ASSERT_TRUE(sync_wait(dev->read(50_MiB, out)).ok());
  EXPECT_TRUE(is_all_zero(out));
  ASSERT_TRUE(sync_wait(dev->write(50_MiB, data)).ok());
  ASSERT_TRUE(sync_wait(dev->close()).ok());

  auto re = sync_wait(open_image(store_, "a.qcow2"));
  ASSERT_TRUE(re.ok());
  EXPECT_EQ((*re)->size(), 64_MiB);
  ASSERT_TRUE(sync_wait((*re)->read(0, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), data.data(), out.size()));
  ASSERT_TRUE(sync_wait((*re)->read(50_MiB, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), data.data(), out.size()));
  auto* q = dynamic_cast<Qcow2Device*>(re->get());
  auto chk = sync_wait(q->check());
  ASSERT_TRUE(chk.ok());
  EXPECT_TRUE(chk->clean()) << "leaked=" << chk->leaked_clusters
                            << " corrupt=" << chk->corruptions;
}

TEST_P(FeatureTest, ResizeShrinkRejected) {
  auto* dev = make("a.qcow2", 2_MiB);
  EXPECT_EQ(sync_wait(dev->resize(1_MiB)).error(), Errc::invalid_argument);
}

// Property: random interleavings of read / write / write_zeroes / discard
// against a flat reference model stay byte-exact and metadata-clean, with
// and without a backing image.
TEST_P(FeatureTest, PropertyMixedOpsMatchReference) {
  const std::uint64_t size = 8_MiB;
  {
    auto be = store_.create_file("base.img");
    auto data = pattern_bytes(77, size);
    ASSERT_TRUE(sync_wait((*be)->pwrite(0, data)).ok());
  }
  for (const bool backed : {false, true}) {
    auto* dev = make(backed ? "b.qcow2" : "p.qcow2", size,
                     backed ? "base.img" : "");
    std::vector<std::uint8_t> model =
        backed ? pattern_bytes(77, size) : std::vector<std::uint8_t>(size, 0);
    Rng rng{backed ? 424u : 242u};
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t len = 512 * (1 + rng.below(200));
      const std::uint64_t off = 512 * rng.below((size - len) / 512);
      const double u = rng.uniform();
      if (u < 0.35) {
        std::vector<std::uint8_t> out(len);
        ASSERT_TRUE(sync_wait(dev->read(off, out)).ok());
        ASSERT_EQ(0, std::memcmp(out.data(), model.data() + off, len))
            << "step " << i << " backed=" << backed;
      } else if (u < 0.65) {
        const auto data = pattern_bytes(1000u + static_cast<unsigned>(i), len);
        ASSERT_TRUE(sync_wait(dev->write(off, data)).ok());
        std::memcpy(model.data() + off, data.data(), len);
      } else if (u < 0.85) {
        ASSERT_TRUE(sync_wait(dev->write_zeroes(off, len)).ok());
        std::memset(model.data() + off, 0, len);
      } else {
        ASSERT_TRUE(sync_wait(dev->discard(off, len)).ok());
        // Discard zeroes whole clusters only (sub-cluster fragments are
        // advisory no-ops); without a backing, deallocated clusters read
        // zero; with one, they get the zero flag — zeros either way.
        const std::uint64_t lo = align_up(off, cs());
        const std::uint64_t hi = align_down(off + len, cs());
        if (hi > lo) std::memset(model.data() + lo, 0, hi - lo);
      }
    }
    // Full-image compare + metadata check at the end.
    std::vector<std::uint8_t> all(size);
    ASSERT_TRUE(sync_wait(dev->read(0, all)).ok());
    ASSERT_EQ(0, std::memcmp(all.data(), model.data(), size));
    auto chk = sync_wait(dev->check());
    ASSERT_TRUE(chk.ok());
    EXPECT_TRUE(chk->clean())
        << "backed=" << backed << " leaked=" << chk->leaked_clusters
        << " corrupt=" << chk->corruptions;
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, FeatureTest,
                         ::testing::Values(9u, 16u),
                         [](const auto& info) {
                           return "cb" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// commit
// ---------------------------------------------------------------------------

TEST(Qcow2Commit, MergesOverlayIntoBacking) {
  MemImageStore store;
  {
    auto be = store.create_file("base.qcow2");
    Qcow2Device::CreateOptions opt;
    opt.virtual_size = 8_MiB;
    ASSERT_TRUE(sync_wait(Qcow2Device::create(**be, opt)).ok());
  }
  {
    auto base = sync_wait(open_image(store, "base.qcow2"));
    ASSERT_TRUE(base.ok());
    auto orig = pattern_bytes(1, 4_MiB);
    ASSERT_TRUE(sync_wait((*base)->write(0, orig)).ok());
    ASSERT_TRUE(sync_wait((*base)->close()).ok());
  }
  ASSERT_TRUE(
      sync_wait(create_cow_image(store, "top.qcow2", "base.qcow2")).ok());
  const auto patch = pattern_bytes(2, 1_MiB);
  {
    auto top = sync_wait(open_image(store, "top.qcow2"));
    ASSERT_TRUE(top.ok());
    ASSERT_TRUE(sync_wait((*top)->write(2_MiB, patch)).ok());
    auto* q = dynamic_cast<Qcow2Device*>(top->get());
    ASSERT_TRUE(sync_wait(q->write_zeroes(0, 1_MiB)).ok());
    ASSERT_TRUE(sync_wait((*top)->close()).ok());
  }

  auto committed = sync_wait(commit_image(store, "top.qcow2"));
  ASSERT_TRUE(committed.ok()) << to_string(committed.error());
  EXPECT_GE(*committed, 2_MiB);

  // The base alone now carries the merged state.
  auto base = sync_wait(open_image(store, "base.qcow2"));
  ASSERT_TRUE(base.ok());
  std::vector<std::uint8_t> out(1_MiB);
  ASSERT_TRUE(sync_wait((*base)->read(0, out)).ok());
  EXPECT_TRUE(is_all_zero(out));  // the zeroed range committed too
  ASSERT_TRUE(sync_wait((*base)->read(2_MiB, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), patch.data(), out.size()));
  const auto orig = pattern_bytes(1, 4_MiB);
  ASSERT_TRUE(sync_wait((*base)->read(1_MiB, out)).ok());
  EXPECT_EQ(0, std::memcmp(out.data(), orig.data() + 1_MiB, out.size()));
}

TEST(Qcow2Commit, RejectsStandaloneAndCacheImages) {
  MemImageStore store;
  {
    auto be = store.create_file("solo.qcow2");
    Qcow2Device::CreateOptions opt;
    opt.virtual_size = 1_MiB;
    ASSERT_TRUE(sync_wait(Qcow2Device::create(**be, opt)).ok());
  }
  EXPECT_EQ(sync_wait(commit_image(store, "solo.qcow2")).error(),
            Errc::invalid_argument);

  {
    auto be = store.create_file("base.img");
    ASSERT_TRUE(sync_wait((*be)->truncate(1_MiB)).ok());
  }
  ASSERT_TRUE(sync_wait(create_cache_image(store, "c.cache", "base.img",
                                           1_MiB,
                                           {.cluster_bits = 9,
                                            .virtual_size = 0}))
                  .ok());
  EXPECT_EQ(sync_wait(commit_image(store, "c.cache")).error(),
            Errc::invalid_argument);
}

}  // namespace
}  // namespace vmic::qcow2
