// Integration tests for the cluster scenario engine (scaled-down
// versions of the paper's experiments) and Algorithm 1 placement.
#include <gtest/gtest.h>

#include <random>

#include "cluster/node_index.hpp"
#include "cluster/placement.hpp"
#include "cluster/scenario.hpp"
#include "qcow2/chain.hpp"
#include "sim/run.hpp"
#include "util/units.hpp"

namespace vmic::cluster {
namespace {

using vmic::literals::operator""_MiB;
using vmic::literals::operator""_GiB;

/// Scaled-down CentOS-ish profile: keeps the tests fast while exercising
/// the full machinery.
boot::OsProfile tiny_profile() {
  boot::OsProfile p = boot::centos63();
  p.image_size = 1 * GiB;
  p.unique_read_bytes = 4_MiB;
  p.cpu_seconds = 2.0;
  p.write_bytes = 1_MiB;
  return p;
}

ClusterParams small_cluster(int nodes, net::NetworkParams net) {
  ClusterParams cp;
  cp.compute_nodes = nodes;
  cp.network = net;
  return cp;
}

TEST(Scenario, SingleVmPlainQcow2) {
  ScenarioConfig sc;
  sc.profile = tiny_profile();
  sc.num_vms = 1;
  sc.num_vmis = 1;
  sc.mode = CacheMode::none;
  auto r = run_scenario(small_cluster(1, net::gigabit_ethernet()), sc);
  ASSERT_EQ(r.vms.size(), 1u);
  // cpu 2 s + remote I/O; sane bounds.
  EXPECT_GT(r.mean_boot, 2.0);
  EXPECT_LT(r.mean_boot, 10.0);
  EXPECT_GT(r.storage_payload_bytes, sc.profile.unique_read_bytes);
}

TEST(Scenario, WarmComputeDiskCacheCutsStorageTraffic) {
  ScenarioConfig cold;
  cold.profile = tiny_profile();
  cold.num_vms = 4;
  cold.num_vmis = 1;
  cold.mode = CacheMode::none;
  auto base = run_scenario(small_cluster(4, net::gigabit_ethernet()), cold);

  ScenarioConfig warm = cold;
  warm.mode = CacheMode::compute_disk;
  warm.state = CacheState::warm;
  warm.cache_quota = 64_MiB;
  auto cached = run_scenario(small_cluster(4, net::gigabit_ethernet()), warm);

  // Warm caches almost eliminate measured-phase storage traffic...
  EXPECT_LT(cached.storage_payload_bytes, base.storage_payload_bytes / 10);
  // ...and never make boots slower.
  EXPECT_LE(cached.mean_boot, base.mean_boot * 1.05);
  EXPECT_GT(cached.warm_cache_file_bytes, tiny_profile().unique_read_bytes);
}

TEST(Scenario, ColdCacheBootsCloseToPlainQcow2) {
  // Fig 8/11: cold cache on memory has near-zero overhead.
  ScenarioConfig plain;
  plain.profile = tiny_profile();
  plain.num_vms = 4;
  plain.num_vmis = 1;
  plain.mode = CacheMode::none;
  auto base = run_scenario(small_cluster(4, net::gigabit_ethernet()), plain);

  ScenarioConfig cold = plain;
  cold.mode = CacheMode::compute_disk;
  cold.state = CacheState::cold;
  cold.cache_quota = 64_MiB;
  cold.cold_cache_on_mem = true;
  auto c = run_scenario(small_cluster(4, net::gigabit_ethernet()), cold);

  EXPECT_LT(c.mean_boot, base.mean_boot * 1.15);
  // Cold caches end up flushed to the node disks after shutdown.
}

TEST(Scenario, ColdCacheOnDiskIsSlower) {
  // Fig 8: synchronous cache writes on the compute disk slow the boot.
  ScenarioConfig mem;
  mem.profile = tiny_profile();
  mem.num_vms = 1;
  mem.num_vmis = 1;
  mem.mode = CacheMode::compute_disk;
  mem.state = CacheState::cold;
  mem.cache_quota = 64_MiB;
  mem.cache_cluster_bits = 16;
  mem.cold_cache_on_mem = true;
  auto on_mem = run_scenario(small_cluster(1, net::gigabit_ethernet()), mem);

  ScenarioConfig disk = mem;
  disk.cold_cache_on_mem = false;
  auto on_disk = run_scenario(small_cluster(1, net::gigabit_ethernet()), disk);

  EXPECT_GT(on_disk.mean_boot, on_mem.mean_boot * 1.3);
}

TEST(Scenario, StorageMemWarmAvoidsStorageDisk) {
  // Fig 14: with warm caches in storage memory, the storage disk sees
  // (almost) no reads even across many VMIs.
  ScenarioConfig sc;
  sc.profile = tiny_profile();
  sc.num_vms = 4;
  sc.num_vmis = 4;
  sc.mode = CacheMode::storage_mem;
  sc.state = CacheState::warm;
  sc.cache_quota = 64_MiB;
  auto r = run_scenario(small_cluster(4, net::infiniband_qdr()), sc);
  EXPECT_EQ(r.storage_disk_reads, 0u);
  EXPECT_GT(r.mean_boot, 2.0);
}

TEST(Scenario, StorageMemColdCreatorPushesBack) {
  ScenarioConfig sc;
  sc.profile = tiny_profile();
  sc.num_vms = 3;
  sc.num_vmis = 1;
  sc.mode = CacheMode::storage_mem;
  sc.state = CacheState::cold;
  sc.cache_quota = 64_MiB;
  auto r = run_scenario(small_cluster(3, net::gigabit_ethernet()), sc);
  // VM 0 is the creator: it pays a transfer; others don't.
  EXPECT_GT(r.vms[0].cache_transfer_seconds, 0.0);
  EXPECT_EQ(r.vms[1].cache_transfer_seconds, 0.0);
  EXPECT_EQ(r.vms[2].cache_transfer_seconds, 0.0);
}

TEST(Scenario, MoreVmisMoreStorageDiskTime) {
  // The Fig 3 mechanism at small scale: distinct VMIs defeat the storage
  // page cache, so disk reads grow with the number of VMIs.
  ScenarioConfig one;
  one.profile = tiny_profile();
  one.num_vms = 4;
  one.num_vmis = 1;
  one.mode = CacheMode::none;
  one.storage_cache_prewarmed = false;  // Fig 3 uses fresh image copies
  auto r1 = run_scenario(small_cluster(4, net::infiniband_qdr()), one);

  ScenarioConfig four = one;
  four.num_vmis = 4;
  auto r4 = run_scenario(small_cluster(4, net::infiniband_qdr()), four);

  EXPECT_GT(r4.storage_disk_bytes_read, 3 * r1.storage_disk_bytes_read);
  EXPECT_GE(r4.mean_boot, r1.mean_boot);
}

TEST(Scenario, DeterministicResults) {
  ScenarioConfig sc;
  sc.profile = tiny_profile();
  sc.num_vms = 3;
  sc.num_vmis = 2;
  sc.mode = CacheMode::compute_disk;
  sc.state = CacheState::warm;
  sc.cache_quota = 64_MiB;
  auto a = run_scenario(small_cluster(3, net::gigabit_ethernet()), sc);
  auto b = run_scenario(small_cluster(3, net::gigabit_ethernet()), sc);
  ASSERT_EQ(a.vms.size(), b.vms.size());
  for (std::size_t i = 0; i < a.vms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.vms[i].boot.boot_seconds, b.vms[i].boot.boot_seconds);
  }
  EXPECT_EQ(a.storage_payload_bytes, b.storage_payload_bytes);
}

// ---------------------------------------------------------------------------
// Algorithm 1 (§6)
// ---------------------------------------------------------------------------

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() : cl(small_cluster(2, net::gigabit_ethernet())) {
    auto be = cl.storage.disk_dir.create_file("img-0");
    EXPECT_TRUE(be.ok());
    (*cl.storage.disk_dir.buffer("img-0"))->resize(1 * GiB);
  }

  PlacementOutcome place(int node, std::uint64_t quota = 64_MiB) {
    auto r = sim::run_sync(
        cl.env, chain_to_proper_cache(cl, *cl.nodes[node], "img-0", quota, 9,
                                      1 * GiB));
    EXPECT_TRUE(r.ok()) << to_string(r.error());
    return *r;
  }

  Cluster cl;
};

TEST_F(PlacementTest, FreshCreatesLocallyAndMarksCopyBack) {
  auto out = place(0);
  EXPECT_EQ(out.action, PlacementOutcome::Action::created_fresh);
  EXPECT_EQ(out.backing, "disk/cache-img-0.qcow2");
  EXPECT_TRUE(out.copy_back_on_shutdown);
  EXPECT_TRUE(cl.nodes[0]->disk_dir.exists("cache-img-0.qcow2"));
}

TEST_F(PlacementTest, LocalWarmCacheWins) {
  place(0);
  auto out = place(0);  // second placement on the same node
  EXPECT_EQ(out.action, PlacementOutcome::Action::local_warm_hit);
  EXPECT_FALSE(out.copy_back_on_shutdown);
}

TEST_F(PlacementTest, StorageMemCacheGetsChained) {
  place(0);
  // Simulate the shutdown copy-back.
  ASSERT_TRUE(sim::run_sync(
                  cl.env, copy_cache_back(cl, *cl.nodes[0], "img-0"))
                  .ok());
  ASSERT_TRUE(cl.storage.mem_dir.exists("cache-img-0.qcow2"));
  // A different node now chains to the storage-memory cache.
  auto out = place(1);
  EXPECT_EQ(out.action, PlacementOutcome::Action::chained_to_storage);
  EXPECT_FALSE(out.copy_back_on_shutdown);
  EXPECT_FALSE(out.staged_disk_to_tmpfs);
  // The new node-local cache chains to nfs-mem (check the header).
  auto dev = sim::run_sync(
      cl.env, qcow2::open_image(cl.nodes[1]->fs, "disk/cache-img-0.qcow2",
                                /*writable=*/false));
  ASSERT_TRUE(dev.ok());
  auto* q = dynamic_cast<qcow2::Qcow2Device*>(dev->get());
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->backing_file(), "nfs-mem/cache-img-0.qcow2");
}

TEST_F(PlacementTest, DiskResidentStorageCacheStagedToTmpfs) {
  // Put a cache on the storage node's *disk* only.
  place(0);
  ASSERT_TRUE(storage::SimDirectory::clone_file(
                  cl.nodes[0]->disk_dir, "cache-img-0.qcow2",
                  cl.storage.disk_dir, "cache-img-0.qcow2")
                  .ok());
  auto out = place(1);
  EXPECT_EQ(out.action, PlacementOutcome::Action::chained_to_storage);
  EXPECT_TRUE(out.staged_disk_to_tmpfs);
  EXPECT_TRUE(cl.storage.mem_dir.exists("cache-img-0.qcow2"));
}

// --------------------------------------------------------------------------
// NodeIndex differential: the incremental index must return exactly what
// the reference linear scan (pick_node) returns on the same state, for
// every policy, across randomized mutations of running counts, capacity
// (node down/up) and warm sets.
// --------------------------------------------------------------------------

TEST(NodeIndex, MatchesLinearPickAcrossRandomizedStates) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::mt19937_64 rng(seed);
    const int n = 32;
    const int vmis = 6;
    std::vector<NodeState> nodes(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto& nd = nodes[static_cast<std::size_t>(i)];
      nd.id = i;
      nd.vm_capacity = 4;
      nd.load = static_cast<double>(rng() % 5);  // duplicate loads: ties
    }
    NodeIndex idx(&nodes);
    for (int step = 0; step < 400; ++step) {
      const int ni = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
      auto& nd = nodes[static_cast<std::size_t>(ni)];
      switch (rng() % 5) {
        case 0:
          if (nd.running_vms < nd.vm_capacity) ++nd.running_vms;
          idx.node_changed(ni);
          break;
        case 1:
          if (nd.running_vms > 0) --nd.running_vms;
          idx.node_changed(ni);
          break;
        case 2:  // crash / recover
          if (nd.vm_capacity == 0) {
            nd.vm_capacity = 4;
          } else {
            nd.vm_capacity = 0;
            nd.running_vms = 0;
          }
          idx.node_changed(ni);
          break;
        case 3: {
          const std::string img =
              "img-" + std::to_string(rng() % static_cast<std::uint64_t>(vmis));
          if (nd.warm_vmis.insert(img).second) idx.warm_added(ni, img);
          break;
        }
        case 4: {
          const std::string img =
              "img-" + std::to_string(rng() % static_cast<std::uint64_t>(vmis));
          if (nd.warm_vmis.erase(img) != 0) idx.warm_removed(ni, img);
          break;
        }
      }
      for (auto policy : {SchedPolicy::packing, SchedPolicy::striping,
                          SchedPolicy::load_aware}) {
        for (bool aware : {false, true}) {
          for (int v = 0; v < vmis; ++v) {
            const std::string img = "img-" + std::to_string(v);
            ASSERT_EQ(idx.pick(policy, img, aware),
                      pick_node(nodes, policy, img, aware))
                << "seed " << seed << " step " << step << " policy "
                << to_string(policy) << " aware " << aware << " vmi " << img;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace vmic::cluster
